// Tests for the cycle tracer and ASCII renderer (the machinery behind the
// paper's Figure 5/14 cycle diagrams).

#include <gtest/gtest.h>

#include "trace/cycle_trace.h"

namespace pbmg::trace {
namespace {

TEST(CycleTracer, RecordsEventsInOrder) {
  CycleTracer tracer;
  tracer.record(Op::kRelax, 5);
  tracer.record(Op::kRestrict, 5);
  tracer.record(Op::kDirect, 4);
  tracer.record(Op::kInterpolate, 5);
  ASSERT_EQ(tracer.events().size(), 4u);
  EXPECT_EQ(tracer.events()[0].op, Op::kRelax);
  EXPECT_EQ(tracer.events()[2].op, Op::kDirect);
  EXPECT_EQ(tracer.events()[2].level, 4);
  tracer.clear();
  EXPECT_TRUE(tracer.events().empty());
}

TEST(Render, EmptyTraceHasPlaceholder) {
  EXPECT_EQ(render_cycle({}), "(empty trace)\n");
}

TEST(Render, SimpleVCycleShape) {
  // relax(2) \ direct(1) / relax(2): the classic smallest V.
  std::vector<Event> events{
      {Op::kRelax, 2, 0},    {Op::kRestrict, 2, 0}, {Op::kDirect, 1, 0},
      {Op::kInterpolate, 2, 0}, {Op::kRelax, 2, 0},
  };
  const std::string art = render_cycle(events);
  // Level rows are labelled.
  EXPECT_NE(art.find("level  2 |"), std::string::npos);
  EXPECT_NE(art.find("level  1 |"), std::string::npos);
  // The coarse row contains the direct marker, the fine row two stars.
  EXPECT_NE(art.find('D'), std::string::npos);
  EXPECT_NE(art.find('\\'), std::string::npos);
  EXPECT_NE(art.find('/'), std::string::npos);
  // Star appears before the backslash column-wise on the fine row.
  const auto fine_row = art.substr(0, art.find('\n'));
  EXPECT_NE(fine_row.find('*'), std::string::npos);
}

TEST(Render, IterativeSolveShowsSweepCount) {
  std::vector<Event> events{{Op::kIterative, 3, 17}};
  const std::string art = render_cycle(events);
  EXPECT_NE(art.find("S17"), std::string::npos);
}

TEST(Render, LevelsSpanFinestToCoarsest) {
  std::vector<Event> events{
      {Op::kRestrict, 10, 0}, {Op::kRestrict, 9, 0}, {Op::kDirect, 8, 0},
      {Op::kInterpolate, 9, 0}, {Op::kInterpolate, 10, 0},
  };
  const std::string art = render_cycle(events);
  EXPECT_NE(art.find("level 10"), std::string::npos);
  EXPECT_NE(art.find("level  8"), std::string::npos);
  // No level 7 row (nothing descended below 8).
  EXPECT_EQ(art.find("level  7"), std::string::npos);
}

TEST(Render, ColumnsAdvanceMonotonically) {
  // Two relaxations at the same level must occupy different columns.
  std::vector<Event> events{{Op::kRelax, 4, 0}, {Op::kRelax, 4, 0}};
  const std::string art = render_cycle(events);
  const std::string row = art.substr(0, art.find('\n'));
  const auto first = row.find('*');
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(row.find('*', first + 1), std::string::npos);
}

TEST(Summarize, CountsAllOps) {
  std::vector<Event> events{
      {Op::kRelax, 2, 0},   {Op::kRelax, 2, 0},    {Op::kRestrict, 2, 0},
      {Op::kDirect, 1, 0},  {Op::kInterpolate, 2, 0}, {Op::kIterative, 2, 9},
  };
  const std::string s = summarize(events);
  EXPECT_NE(s.find("relax=2"), std::string::npos);
  EXPECT_NE(s.find("restrict=1"), std::string::npos);
  EXPECT_NE(s.find("interpolate=1"), std::string::npos);
  EXPECT_NE(s.find("direct=1"), std::string::npos);
  EXPECT_NE(s.find("iterative=1"), std::string::npos);
}

}  // namespace
}  // namespace pbmg::trace
