// Tests for the cycle tracer and ASCII renderer (the machinery behind the
// paper's Figure 5/14 cycle diagrams).

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "support/error.h"
#include "trace/cycle_trace.h"

namespace pbmg::trace {
namespace {

TEST(CycleTracer, RecordsEventsInOrder) {
  CycleTracer tracer;
  tracer.record(Op::kRelax, 5);
  tracer.record(Op::kRestrict, 5);
  tracer.record(Op::kDirect, 4);
  tracer.record(Op::kInterpolate, 5);
  ASSERT_EQ(tracer.events().size(), 4u);
  EXPECT_EQ(tracer.events()[0].op, Op::kRelax);
  EXPECT_EQ(tracer.events()[2].op, Op::kDirect);
  EXPECT_EQ(tracer.events()[2].level, 4);
  tracer.clear();
  EXPECT_TRUE(tracer.events().empty());
}

TEST(Render, EmptyTraceHasPlaceholder) {
  EXPECT_EQ(render_cycle({}), "(empty trace)\n");
}

TEST(Render, SimpleVCycleShape) {
  // relax(2) \ direct(1) / relax(2): the classic smallest V.
  std::vector<Event> events{
      {Op::kRelax, 2, 0},    {Op::kRestrict, 2, 0}, {Op::kDirect, 1, 0},
      {Op::kInterpolate, 2, 0}, {Op::kRelax, 2, 0},
  };
  const std::string art = render_cycle(events);
  // Level rows are labelled.
  EXPECT_NE(art.find("level  2 |"), std::string::npos);
  EXPECT_NE(art.find("level  1 |"), std::string::npos);
  // The coarse row contains the direct marker, the fine row two stars.
  EXPECT_NE(art.find('D'), std::string::npos);
  EXPECT_NE(art.find('\\'), std::string::npos);
  EXPECT_NE(art.find('/'), std::string::npos);
  // Star appears before the backslash column-wise on the fine row.
  const auto fine_row = art.substr(0, art.find('\n'));
  EXPECT_NE(fine_row.find('*'), std::string::npos);
}

TEST(Render, IterativeSolveShowsSweepCount) {
  std::vector<Event> events{{Op::kIterative, 3, 17}};
  const std::string art = render_cycle(events);
  EXPECT_NE(art.find("S17"), std::string::npos);
}

TEST(Render, LevelsSpanFinestToCoarsest) {
  std::vector<Event> events{
      {Op::kRestrict, 10, 0}, {Op::kRestrict, 9, 0}, {Op::kDirect, 8, 0},
      {Op::kInterpolate, 9, 0}, {Op::kInterpolate, 10, 0},
  };
  const std::string art = render_cycle(events);
  EXPECT_NE(art.find("level 10"), std::string::npos);
  EXPECT_NE(art.find("level  8"), std::string::npos);
  // No level 7 row (nothing descended below 8).
  EXPECT_EQ(art.find("level  7"), std::string::npos);
}

TEST(Render, ColumnsAdvanceMonotonically) {
  // Two relaxations at the same level must occupy different columns.
  std::vector<Event> events{{Op::kRelax, 4, 0}, {Op::kRelax, 4, 0}};
  const std::string art = render_cycle(events);
  const std::string row = art.substr(0, art.find('\n'));
  const auto first = row.find('*');
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(row.find('*', first + 1), std::string::npos);
}

#if defined(PBMG_ASSERTIONS)
TEST(CycleTracer, SecondThreadRecordThrowsUnderAssertions) {
  CycleTracer tracer;
  tracer.record(Op::kRelax, 3);  // claims the tracer for this thread
  bool threw = false;
  std::thread other([&tracer, &threw] {
    try {
      tracer.record(Op::kRelax, 3);
    } catch (const InvalidArgument&) {
      threw = true;
    }
  });
  other.join();
  EXPECT_TRUE(threw);
  // clear() releases the claim: a different thread may then record.
  tracer.clear();
  std::thread fresh([&tracer] { tracer.record(Op::kDirect, 1); });
  fresh.join();
  EXPECT_EQ(tracer.events().size(), 1u);
}
#endif

TEST(ToString, NamesEveryOp) {
  EXPECT_STREQ(to_string(Op::kRelax), "relax");
  EXPECT_STREQ(to_string(Op::kRestrict), "restrict");
  EXPECT_STREQ(to_string(Op::kInterpolate), "interpolate");
  EXPECT_STREQ(to_string(Op::kDirect), "direct");
  EXPECT_STREQ(to_string(Op::kIterative), "iterative");
}

TEST(ToJson, EmitsEventRowsInOrder) {
  std::vector<Event> events{
      {Op::kRelax, 5, 0}, {Op::kRestrict, 5, 0}, {Op::kIterative, 4, 9},
  };
  const std::string json = to_json(events).dump();
  EXPECT_NE(json.find("\"op\":\"relax\""), std::string::npos);
  EXPECT_NE(json.find("\"op\":\"restrict\""), std::string::npos);
  EXPECT_NE(json.find("\"op\":\"iterative\""), std::string::npos);
  EXPECT_NE(json.find("\"detail\":9"), std::string::npos);
  // Zero details are elided.
  EXPECT_EQ(json.find("\"detail\":0"), std::string::npos);
  // Relax (first event) precedes iterative (last).
  EXPECT_LT(json.find("relax"), json.find("iterative"));
  EXPECT_EQ(to_json({}).dump(), "[]");
}

TEST(Summarize, CountsAllOps) {
  std::vector<Event> events{
      {Op::kRelax, 2, 0},   {Op::kRelax, 2, 0},    {Op::kRestrict, 2, 0},
      {Op::kDirect, 1, 0},  {Op::kInterpolate, 2, 0}, {Op::kIterative, 2, 9},
  };
  const std::string s = summarize(events);
  EXPECT_NE(s.find("relax=2"), std::string::npos);
  EXPECT_NE(s.find("restrict=1"), std::string::npos);
  EXPECT_NE(s.find("interpolate=1"), std::string::npos);
  EXPECT_NE(s.find("direct=1"), std::string::npos);
  EXPECT_NE(s.find("iterative=1"), std::string::npos);
}

}  // namespace
}  // namespace pbmg::trace
