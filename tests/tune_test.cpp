// Tests for the autotuner: accuracy metric, tuned-config tables and
// serialization, the DP trainer's contracts (tuned algorithms meet their
// accuracy levels on held-out inputs), heuristic training, executors, and
// the config disk cache.

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/solve_session.h"
#include "grid/grid_ops.h"
#include "grid/level.h"
#include "solvers/relax.h"
#include "support/rng.h"
#include "test_problems.h"
#include "trace/cycle_trace.h"
#include "tune/accuracy.h"
#include "tune/config_cache.h"
#include "tune/executor.h"
#include "tune/table.h"
#include "tune/trainer.h"

namespace pbmg::tune {
namespace {

Engine& engine() {
  static Engine instance([] {
    rt::MachineProfile p;
    p.name = "tune-test";
    p.threads = 4;
    p.grain_rows = 4;
    return p;
  }());
  return instance;
}

rt::Scheduler& sched() { return engine().scheduler(); }


TrainerOptions small_options() {
  TrainerOptions options;
  options.max_level = 5;  // up to N = 33: fast enough for unit tests
  options.training_instances = 2;
  options.seed = 77;
  return options;
}

/// Trains once and shares the config across tests (training is the
/// expensive part of this suite).
const TunedConfig& trained() {
  static const TunedConfig config = [] {
    Trainer trainer(small_options(), engine());
    return trainer.train();
  }();
  return config;
}

// ------------------------------------------------------------- accuracy --

TEST(Accuracy, InstanceMetricBehaves) {
  Rng rng(5);
  auto inst = make_training_instance(17, InputDistribution::kUnbiased, rng,
                                     sched());
  EXPECT_GT(inst.initial_error, 0.0);
  // The starting guess has accuracy exactly 1.
  EXPECT_NEAR(accuracy_of(inst, inst.problem.x0, sched()), 1.0, 1e-12);
  // The exact solution has infinite (or at least astronomically large)
  // accuracy.
  EXPECT_GT(accuracy_of(inst, inst.x_opt, sched()), 1e12);
}

TEST(Accuracy, TrainingSetIsDeterministicInSeed) {
  const Rng base(123);
  auto a = make_training_set(9, InputDistribution::kBiased, base, 2, sched());
  auto b = make_training_set(9, InputDistribution::kBiased, base, 2, sched());
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0].problem.b(1, 1), b[0].problem.b(1, 1));
  EXPECT_EQ(a[1].problem.b(2, 3), b[1].problem.b(2, 3));
  EXPECT_NE(a[0].problem.b(1, 1), a[1].problem.b(1, 1));  // distinct streams
}

// ---------------------------------------------------------------- table --

TEST(TunedConfig, ValidatesConstruction) {
  EXPECT_THROW(TunedConfig({}, 3), InvalidArgument);
  EXPECT_THROW(TunedConfig({10.0, 10.0}, 3), InvalidArgument);  // not ascending
  EXPECT_THROW(TunedConfig({0.5, 10.0}, 3), InvalidArgument);   // <= 1
  EXPECT_THROW(TunedConfig({10.0}, 0), InvalidArgument);
  const TunedConfig config(paper_accuracies(), 4);
  EXPECT_EQ(config.accuracy_count(), 5);
  EXPECT_EQ(config.max_level(), 4);
}

TEST(TunedConfig, LevelOneIsDirectBaseCase) {
  const TunedConfig config(paper_accuracies(), 3);
  for (int i = 0; i < config.accuracy_count(); ++i) {
    EXPECT_EQ(config.v_entry(1, i).choice.kind, VKind::kDirect);
    EXPECT_TRUE(config.v_entry(1, i).trained);
    EXPECT_EQ(config.fmg_entry(1, i).choice.kind, FmgKind::kDirect);
  }
}

TEST(TunedConfig, AccuracyIndexLookup) {
  const TunedConfig config(paper_accuracies(), 3);
  EXPECT_EQ(config.accuracy_index(1e1), 0);
  EXPECT_EQ(config.accuracy_index(1e9), 4);
  EXPECT_THROW(config.accuracy_index(1e2), InvalidArgument);
}

TEST(TunedConfig, CellRangeChecks) {
  TunedConfig config(paper_accuracies(), 3);
  EXPECT_THROW(config.v_entry(0, 0), InvalidArgument);
  EXPECT_THROW(config.v_entry(4, 0), InvalidArgument);
  EXPECT_THROW(config.v_entry(2, 5), InvalidArgument);
  EXPECT_THROW(config.fmg_entry(2, -1), InvalidArgument);
}

TEST(TunedConfig, JsonRoundTripPreservesEverything) {
  const TunedConfig& config = trained();
  const TunedConfig copy = TunedConfig::from_json(config.to_json());
  EXPECT_EQ(copy.max_level(), config.max_level());
  EXPECT_EQ(copy.accuracies(), config.accuracies());
  EXPECT_EQ(copy.profile_name, config.profile_name);
  EXPECT_EQ(copy.distribution, config.distribution);
  EXPECT_EQ(copy.seed, config.seed);
  EXPECT_EQ(copy.strategy, "autotuned");
  for (int level = 1; level <= config.max_level(); ++level) {
    for (int i = 0; i < config.accuracy_count(); ++i) {
      const VEntry& a = config.v_entry(level, i);
      const VEntry& b = copy.v_entry(level, i);
      ASSERT_EQ(a.choice.kind, b.choice.kind);
      ASSERT_EQ(a.choice.sub_accuracy, b.choice.sub_accuracy);
      ASSERT_EQ(a.choice.iterations, b.choice.iterations);
      ASSERT_EQ(a.choice.smoother, b.choice.smoother);
      ASSERT_EQ(a.trained, b.trained);
      const FmgEntry& fa = config.fmg_entry(level, i);
      const FmgEntry& fb = copy.fmg_entry(level, i);
      ASSERT_EQ(fa.choice.kind, fb.choice.kind);
      ASSERT_EQ(fa.choice.estimate_accuracy, fb.choice.estimate_accuracy);
      ASSERT_EQ(fa.choice.solve_accuracy, fb.choice.solve_accuracy);
      ASSERT_EQ(fa.choice.iterations, fb.choice.iterations);
      ASSERT_EQ(fa.choice.smoother, fb.choice.smoother);
    }
  }
}

TEST(TunedConfig, RejectsMalformedDocuments) {
  EXPECT_THROW(TunedConfig::from_json(Json::parse("{}")), ConfigError);
  Json bad = trained().to_json();
  bad.set("format", "other");
  EXPECT_THROW(TunedConfig::from_json(bad), ConfigError);
  Json truncated = trained().to_json();
  truncated.at("multigrid_v");  // ensure key exists
  truncated.set("multigrid_v", Json::array());
  EXPECT_THROW(TunedConfig::from_json(truncated), ConfigError);
}

TEST(TunedConfig, RejectsOutOfRangeReferences) {
  TunedConfig config(paper_accuracies(), 3);
  for (int level = 2; level <= 3; ++level) {
    for (int i = 0; i < 5; ++i) {
      VEntry e;
      e.choice.kind = VKind::kRecurse;
      e.choice.sub_accuracy = 9;  // invalid
      e.choice.iterations = 1;
      e.trained = true;
      config.v_entry(level, i) = e;
      FmgEntry f;
      f.choice.kind = FmgKind::kDirect;
      f.trained = true;
      config.fmg_entry(level, i) = f;
    }
  }
  EXPECT_THROW(TunedConfig::from_json(config.to_json()), ConfigError);
}

TEST(TunedConfig, SaveLoadFileRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "pbmg_config_test.json";
  trained().save(path.string());
  const TunedConfig loaded = TunedConfig::load(path.string());
  EXPECT_EQ(loaded.max_level(), trained().max_level());
  std::filesystem::remove(path);
  EXPECT_THROW(TunedConfig::load(path.string()), ConfigError);
}

// -------------------------------------------------------------- trainer --

TEST(Trainer, ValidatesOptions) {
  TrainerOptions bad = small_options();
  bad.max_level = 1;
  EXPECT_THROW(Trainer(bad, engine()), InvalidArgument);
  bad = small_options();
  bad.training_instances = 0;
  EXPECT_THROW(Trainer(bad, engine()), InvalidArgument);
  bad = small_options();
  bad.prune_factor = 0.5;
  EXPECT_THROW(Trainer(bad, engine()), InvalidArgument);
}

TEST(Trainer, AllCellsTrainedWithValidChoices) {
  const TunedConfig& config = trained();
  for (int level = 2; level <= config.max_level(); ++level) {
    for (int i = 0; i < config.accuracy_count(); ++i) {
      const VEntry& v = config.v_entry(level, i);
      ASSERT_TRUE(v.trained) << "V cell " << level << "," << i;
      if (v.choice.kind == VKind::kRecurse) {
        // kClassicalCoarse marks the classical single-body V-cycle coarse
        // call; any other value must be a valid ladder index.
        ASSERT_GE(v.choice.sub_accuracy, kClassicalCoarse);
        ASSERT_LT(v.choice.sub_accuracy, config.accuracy_count());
        ASSERT_GE(v.choice.iterations, 1);
      }
      const FmgEntry& f = config.fmg_entry(level, i);
      ASSERT_TRUE(f.trained) << "FMG cell " << level << "," << i;
      if (f.choice.kind != FmgKind::kDirect) {
        ASSERT_GE(f.choice.estimate_accuracy, 0);
        ASSERT_GE(f.choice.iterations, 0);  // 0 = estimate alone sufficed
      }
    }
  }
}

TEST(Trainer, SmallLevelsShortcutToTheDirectSolver) {
  // The paper observes a "marked difference for small problem sizes due to
  // the ... direct solve without incurring the overhead of recursion".
  // Individual cell choices at microsecond scales are subject to timing
  // noise, so assert the aggregate shape: somewhere in the small levels
  // (N <= 17) the tuner must shortcut to the direct solver for the
  // high-accuracy targets, where an exact solve is almost free compared to
  // iterating.
  const TunedConfig& config = trained();
  bool any_direct = false;
  for (int level = 2; level <= std::min(4, config.max_level()); ++level) {
    for (int i = 2; i < config.accuracy_count(); ++i) {
      any_direct = any_direct ||
                   config.v_entry(level, i).choice.kind == VKind::kDirect;
    }
  }
  EXPECT_TRUE(any_direct);
}

TEST(Trainer, ExpectedTimeIsMonotoneInAccuracy) {
  // Demanding more accuracy can never be *faster* at the same level (the
  // optimal-set construction guarantees it up to measurement noise; we
  // allow a small tolerance).
  const TunedConfig& config = trained();
  for (int level = 2; level <= config.max_level(); ++level) {
    for (int i = 1; i < config.accuracy_count(); ++i) {
      EXPECT_LE(config.v_entry(level, i - 1).expected_time,
                config.v_entry(level, i).expected_time * 1.5 + 1e-4)
          << "level " << level << " i " << i;
    }
  }
}

/// Central contract: the tuned MULTIGRID-V_i reaches accuracy p_i on
/// held-out instances (fresh seeds) at every trained level.
TEST(Trainer, TunedVMeetsAccuracyOnHeldOutInputs) {
  const TunedConfig& config = trained();
  // A fresh table may carry Galerkin-RAP cells (the coarsening axis is
  // raced by default); a bare executor builds the Poisson RAP ladder for
  // each executed top level on demand.
  TunedExecutor executor(config, sched(), engine().direct(),
                         engine().scratch());
  Rng rng(990001);
  for (int level = 2; level <= config.max_level(); ++level) {
    const int n = size_of_level(level);
    auto inst = make_training_instance(n, InputDistribution::kUnbiased, rng,
                                       sched());
    for (int i = 0; i < config.accuracy_count(); ++i) {
      Grid2D x(n, 0.0);
      x.copy_from(inst.problem.x0);
      executor.run_v(x, inst.problem.b, i);
      const double achieved = accuracy_of(inst, x, sched());
      const double target = config.accuracies()[static_cast<std::size_t>(i)];
      // Allow modest slack: training measured iteration counts on its own
      // instances; held-out inputs may need a whisker more.
      EXPECT_GE(achieved, 0.2 * target)
          << "level " << level << " accuracy " << target;
    }
  }
}

TEST(Trainer, TunedFmgMeetsAccuracyOnHeldOutInputs) {
  const TunedConfig& config = trained();
  TunedExecutor executor(config, sched(), engine().direct(),
                         engine().scratch());
  Rng rng(990002);
  for (int level = 2; level <= config.max_level(); ++level) {
    const int n = size_of_level(level);
    auto inst = make_training_instance(n, InputDistribution::kUnbiased, rng,
                                       sched());
    for (int i = 0; i < config.accuracy_count(); ++i) {
      Grid2D x(n, 0.0);
      x.copy_from(inst.problem.x0);
      executor.run_fmg(x, inst.problem.b, i);
      const double achieved = accuracy_of(inst, x, sched());
      const double target = config.accuracies()[static_cast<std::size_t>(i)];
      EXPECT_GE(achieved, 0.2 * target)
          << "level " << level << " accuracy " << target;
    }
  }
}

TEST(Trainer, HeuristicRestrictsChoices) {
  TrainerOptions options = small_options();
  options.train_fmg = false;
  Trainer trainer(options, engine());
  const int fixed = 2;  // 10^5
  const TunedConfig config = trainer.train_heuristic(fixed);
  EXPECT_NE(config.strategy.find("heuristic"), std::string::npos);
  for (int level = 2; level <= config.max_level(); ++level) {
    for (int i = 0; i < config.accuracy_count(); ++i) {
      const VChoice& choice = config.v_entry(level, i).choice;
      ASSERT_TRUE(choice.kind == VKind::kDirect ||
                  (choice.kind == VKind::kRecurse &&
                   choice.sub_accuracy == fixed))
          << "level " << level << " i " << i;
    }
  }
  // The heuristic still meets the top accuracy on held-out data.
  TunedExecutor executor(config, sched(), engine().direct(),
                         engine().scratch());
  Rng rng(990003);
  auto inst = make_training_instance(size_of_level(config.max_level()),
                                     InputDistribution::kUnbiased, rng,
                                     sched());
  Grid2D x(inst.problem.x0.n(), 0.0);
  x.copy_from(inst.problem.x0);
  executor.run_v(x, inst.problem.b, config.accuracy_count() - 1);
  EXPECT_GE(accuracy_of(inst, x, sched()),
            0.2 * config.accuracies().back());
}

TEST(Trainer, HeuristicValidatesSubAccuracy) {
  Trainer trainer(small_options(), engine());
  EXPECT_THROW(trainer.train_heuristic(-1), InvalidArgument);
  EXPECT_THROW(trainer.train_heuristic(99), InvalidArgument);
}

TEST(Trainer, ValidatesSmootherCandidateList) {
  TrainerOptions bad = small_options();
  bad.smoothers.clear();
  EXPECT_THROW(Trainer(bad, engine()), InvalidArgument);
  bad = small_options();
  bad.smoothers = {solvers::RelaxKind::kJacobi};  // ablation-only smoother
  EXPECT_THROW(Trainer(bad, engine()), InvalidArgument);
}

TEST(Trainer, ValidatesCoarseningCandidateList) {
  TrainerOptions bad = small_options();
  bad.coarsenings.clear();
  EXPECT_THROW(Trainer(bad, engine()), InvalidArgument);
  bad = small_options();
  bad.coarsenings = {static_cast<grid::Coarsening>(42)};  // stray byte
  EXPECT_THROW(Trainer(bad, engine()), InvalidArgument);
}

TEST(Trainer, HeuristicTablesStayPointOnly) {
  // The Figure-7 heuristics reproduce the paper's restricted space
  // exactly; the smoother axis must not leak into them.
  TrainerOptions options = small_options();
  options.max_level = 3;
  options.train_fmg = false;
  Trainer trainer(options, engine());
  const TunedConfig config = trainer.train_heuristic(1);
  for (int level = 2; level <= config.max_level(); ++level) {
    for (int i = 0; i < config.accuracy_count(); ++i) {
      EXPECT_EQ(config.v_entry(level, i).choice.smoother,
                solvers::RelaxKind::kSor)
          << "level " << level << " i " << i;
      // Nor the coarsening axis: heuristics keep the averaged ladder.
      EXPECT_EQ(config.v_entry(level, i).choice.coarsening,
                grid::Coarsening::kAverage)
          << "level " << level << " i " << i;
    }
  }
}

/// The ISSUE-4 regression: the relaxation axis exists so the autotuner
/// can *discover* line smoothing where point relaxation stalls.  With the
/// aniso-1000:1 operator, levels 5–6 (N = 33/65) have no competitive
/// non-line candidate — point RECURSE cannot reach even the first
/// accuracy rung within its iteration cap (contraction ~0.999/cycle),
/// the direct solver's O(N⁴) cost is already beaten, and point SOR needs
/// thousands of sweeps — so the trained table must select a line/zebra
/// smoother on both of the finest two levels.
TEST(Trainer, DiscoversLineSmootherAtExtremeAnisotropy) {
  TrainerOptions options;
  options.accuracies = {10.0, 1e3, 1e5};
  options.max_level = 6;
  options.training_instances = 2;
  options.train_fmg = false;
  options.seed = 77;
  options.op_family = OperatorFamily::kAnisotropic1000;
  Trainer trainer(options, engine());
  const TunedConfig config = trainer.train();
  EXPECT_EQ(config.op_family, "aniso1000");
  const int top = config.accuracy_count() - 1;
  for (int level = 5; level <= 6; ++level) {
    const VChoice& choice = config.v_entry(level, top).choice;
    ASSERT_EQ(choice.kind, VKind::kRecurse) << "level " << level;
    EXPECT_TRUE(solvers::is_line_relax(choice.smoother))
        << "level " << level << " chose "
        << solvers::to_string(choice.smoother);
  }
  // The discovered tables honour their accuracy contract on held-out
  // inputs (same 10× slack as the session suite).
  const int n = size_of_level(options.max_level);
  SolveSession session(engine(), config,
                       make_operator(n, options.op_family));
  const auto inst = pbmg::testing::make_family_instance(
      options.op_family, n, 2026'07'28, sched());
  Grid2D x = inst.problem.x0;
  session.solve_v(x, inst.problem.b, top);
  EXPECT_GE(accuracy_of(inst, x, sched()),
            0.1 * config.accuracies().back());
}

// ------------------------------------------------------------- executor --

TEST(Executor, RunsFixedShapesIndependentOfInput) {
  // Tuned algorithms execute a static cycle shape: the traced event
  // sequence must be identical across inputs.
  const TunedConfig& config = trained();
  const int level = config.max_level();
  const int n = size_of_level(level);
  Rng rng(31337);
  auto p1 = make_problem(n, InputDistribution::kUnbiased, rng);
  auto p2 = make_problem(n, InputDistribution::kBiased, rng);
  trace::CycleTracer t1, t2;
  {
    TunedExecutor executor(config, sched(), engine().direct(),
                           engine().scratch(), &t1);
    Grid2D x = p1.x0;
    executor.run_v(x, p1.b, 3);
  }
  {
    TunedExecutor executor(config, sched(), engine().direct(),
                           engine().scratch(), &t2);
    Grid2D x = p2.x0;
    executor.run_v(x, p2.b, 3);
  }
  ASSERT_EQ(t1.events().size(), t2.events().size());
  for (std::size_t e = 0; e < t1.events().size(); ++e) {
    ASSERT_EQ(t1.events()[e].op, t2.events()[e].op);
    ASSERT_EQ(t1.events()[e].level, t2.events()[e].level);
  }
  EXPECT_FALSE(t1.events().empty());
}

TEST(Executor, TraceRendersACycle) {
  const TunedConfig& config = trained();
  trace::CycleTracer tracer;
  TunedExecutor executor(config, sched(), engine().direct(),
                           engine().scratch(), &tracer);
  Rng rng(424242);
  const int n = size_of_level(config.max_level());
  auto p = make_problem(n, InputDistribution::kUnbiased, rng);
  Grid2D x = p.x0;
  executor.run_fmg(x, p.b, config.accuracy_count() - 1);
  const std::string art = trace::render_cycle(tracer.events());
  EXPECT_NE(art.find("level"), std::string::npos);
  EXPECT_NE(art.find('D'), std::string::npos);  // bottoms out in direct solves
}

TEST(Executor, RejectsUntrainedCellsAndBadSizes) {
  TunedConfig config(paper_accuracies(), 4);  // untrained above level 1
  TunedExecutor executor(config, sched(), engine().direct(),
                         engine().scratch());
  Grid2D x(17, 0.0), b(17, 0.0);
  EXPECT_THROW(executor.run_v(x, b, 0), InvalidArgument);
  Grid2D small(3, 0.0), wrong(5, 0.0);
  EXPECT_THROW(executor.run_v(small, wrong, 0), InvalidArgument);
  // Level above max_level:
  Grid2D huge(65, 0.0), bh(65, 0.0);
  EXPECT_THROW(executor.run_v(huge, bh, 0), InvalidArgument);
}

TEST(Executor, CallStackRenderingsDescribeChoices) {
  const TunedConfig& config = trained();
  const std::string v = render_call_stack(config, config.max_level(), 3);
  EXPECT_NE(v.find("MULTIGRID-V[10^7]"), std::string::npos);
  EXPECT_NE(v.find("level"), std::string::npos);
  const std::string f =
      render_fmg_call_stack(config, config.max_level(), 3);
  EXPECT_NE(f.find("FULL-MG[10^7]"), std::string::npos);
}

// ----------------------------------------------------------- config IO --

TEST(ConfigCache, TrainsOnceThenLoads) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "pbmg_cache_test_dir";
  std::filesystem::remove_all(dir);
  TrainerOptions options = small_options();
  options.max_level = 3;
  bool from_cache = true;
  const TunedConfig first = load_or_train(options, engine(),
                                          dir.string(), -1, &from_cache);
  EXPECT_FALSE(from_cache);
  const TunedConfig second = load_or_train(options, engine(),
                                           dir.string(), -1, &from_cache);
  EXPECT_TRUE(from_cache);
  EXPECT_EQ(first.to_json().dump(), second.to_json().dump());
  std::filesystem::remove_all(dir);
}

TEST(ConfigCache, KeysSeparateStrategiesAndSettings) {
  TrainerOptions a = small_options();
  TrainerOptions b = small_options();
  b.max_level = 4;
  EXPECT_NE(config_cache_key(a, "p", "autotuned"),
            config_cache_key(b, "p", "autotuned"));
  EXPECT_NE(config_cache_key(a, "p", "autotuned"),
            config_cache_key(a, "q", "autotuned"));
  EXPECT_NE(config_cache_key(a, "p", "autotuned"),
            config_cache_key(a, "p", "heuristic2"));
  b = small_options();
  b.distribution = InputDistribution::kBiased;
  EXPECT_NE(config_cache_key(a, "p", "autotuned"),
            config_cache_key(b, "p", "autotuned"));
}

TEST(ConfigCache, CorruptCacheEntryIsRetrained) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "pbmg_cache_corrupt_dir";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  TrainerOptions options = small_options();
  options.max_level = 3;
  const std::string key =
      config_cache_key(options, sched().profile().name, "autotuned");
  write_text_file((dir / (key + ".json")).string(), "{not json");
  bool from_cache = true;
  const TunedConfig config = load_or_train(options, engine(),
                                           dir.string(), -1, &from_cache);
  EXPECT_FALSE(from_cache);
  EXPECT_EQ(config.max_level(), 3);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace pbmg::tune
