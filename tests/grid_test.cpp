// Tests for the grid substrate: Grid2D semantics, level math, the 5-point
// operator and residual, transfer operators, norms, the scratch-grid pool
// (reuse/trim/stats), and the paper's input distributions.

#include <cmath>

#include <gtest/gtest.h>

#include "grid/grid2d.h"
#include "grid/grid_ops.h"
#include "grid/level.h"
#include "grid/problem.h"
#include "grid/scratch.h"
#include "runtime/scheduler.h"
#include "support/error.h"
#include "support/rng.h"

namespace pbmg {
namespace {

rt::Scheduler& sched() {
  static rt::Scheduler instance([] {
    rt::MachineProfile p;
    p.name = "grid-test";
    p.threads = 4;
    p.grain_rows = 2;
    return p;
  }());
  return instance;
}

// ---------------------------------------------------------- ScratchPool --

TEST(ScratchPool, ReusesReleasedGridsAndCountsHits) {
  grid::ScratchPool pool;
  { auto lease = pool.acquire(17); }  // miss: fresh allocation
  EXPECT_EQ(pool.pooled(), 1u);
  { auto lease = pool.acquire(17); }  // hit: recycled
  { auto lease = pool.acquire(33); }  // miss: different size
  const auto stats = pool.stats();
  EXPECT_EQ(stats.acquires, 3);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_NEAR(stats.hit_rate(), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(stats.pooled_grids, 2u);
  EXPECT_EQ(stats.pooled_bytes, (17u * 17u + 33u * 33u) * sizeof(double));
}

TEST(ScratchPool, ConcurrentLeasesOfOneSizeAreDistinctGrids) {
  grid::ScratchPool pool;
  auto a = pool.acquire(9);
  auto b = pool.acquire(9);
  EXPECT_NE(&a.get(), &b.get());
  a.get()(1, 1) = 1.0;
  b.get()(1, 1) = 2.0;
  EXPECT_EQ(a.get()(1, 1), 1.0);
}

TEST(ScratchPool, TrimFreesPooledBytesButKeepsCounters) {
  grid::ScratchPool pool;
  { auto lease = pool.acquire(17); }
  { auto lease = pool.acquire(33); }
  const std::size_t expected = (17u * 17u + 33u * 33u) * sizeof(double);
  EXPECT_EQ(pool.trim(), expected);
  EXPECT_EQ(pool.pooled(), 0u);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.acquires, 2);  // counters survive the trim
  EXPECT_EQ(stats.trims, 1);
  EXPECT_EQ(stats.pooled_bytes, 0u);
  EXPECT_EQ(stats.high_water_bytes, expected);  // high water is sticky
  // Trimming an empty pool frees nothing but still counts: trims counts
  // CALLS, matching ServiceStats::trims, so pool- and service-level trim
  // telemetry agree instead of silently diverging on no-op trims.
  EXPECT_EQ(pool.trim(), 0u);
  EXPECT_EQ(pool.stats().trims, 2);
  // The pool keeps working after a trim.
  { auto lease = pool.acquire(17); }
  EXPECT_EQ(pool.pooled(), 1u);
}

TEST(ScratchPool, HighWaterTracksPeakNotCurrent) {
  grid::ScratchPool pool;
  {
    auto a = pool.acquire(9);
    auto b = pool.acquire(9);
    auto c = pool.acquire(9);
  }  // all three released: peak pooled = 3 grids
  const std::size_t grid_bytes = 9u * 9u * sizeof(double);
  EXPECT_EQ(pool.stats().high_water_bytes, 3 * grid_bytes);
  { auto lease = pool.acquire(9); }  // pooled dips to 2 then back to 3
  EXPECT_EQ(pool.stats().high_water_bytes, 3 * grid_bytes);
}

TEST(ScratchPool, ClearResetsCountersAndFreesGrids) {
  grid::ScratchPool pool;
  { auto lease = pool.acquire(17); }
  pool.clear();
  EXPECT_EQ(pool.pooled(), 0u);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.acquires, 0);
  EXPECT_EQ(stats.high_water_bytes, 0u);
}

// --------------------------------------------------------------- Grid2D --

TEST(Grid2D, ConstructionAndIndexing) {
  Grid2D g(5, 1.5);
  EXPECT_EQ(g.n(), 5);
  EXPECT_EQ(g.size(), 25u);
  EXPECT_DOUBLE_EQ(g(2, 3), 1.5);
  g(2, 3) = -2.0;
  EXPECT_DOUBLE_EQ(g.at(2, 3), -2.0);
  EXPECT_THROW(g.at(5, 0), InvalidArgument);
  EXPECT_THROW(g.at(0, -1), InvalidArgument);
}

TEST(Grid2D, FillInteriorLeavesRing) {
  Grid2D g(5, 7.0);
  g.fill_interior(0.0);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      const bool ring = i == 0 || j == 0 || i == 4 || j == 4;
      EXPECT_DOUBLE_EQ(g(i, j), ring ? 7.0 : 0.0);
    }
  }
}

TEST(Grid2D, CopyBoundaryFrom) {
  Grid2D src(5, 0.0), dst(5, 0.0);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) src(i, j) = i * 10.0 + j;
  }
  dst.copy_boundary_from(src);
  EXPECT_DOUBLE_EQ(dst(0, 3), 3.0);
  EXPECT_DOUBLE_EQ(dst(4, 1), 41.0);
  EXPECT_DOUBLE_EQ(dst(2, 0), 20.0);
  EXPECT_DOUBLE_EQ(dst(2, 4), 24.0);
  EXPECT_DOUBLE_EQ(dst(2, 2), 0.0);  // interior untouched
  Grid2D wrong(3, 0.0);
  EXPECT_THROW(wrong.copy_boundary_from(src), InvalidArgument);
}

TEST(Grid2D, SwapExchangesStorage) {
  Grid2D a(3, 1.0), b(5, 2.0);
  a.swap(b);
  EXPECT_EQ(a.n(), 5);
  EXPECT_EQ(b.n(), 3);
  EXPECT_DOUBLE_EQ(a(2, 2), 2.0);
  EXPECT_DOUBLE_EQ(b(1, 1), 1.0);
}

// ---------------------------------------------------------------- level --

TEST(Level, SizeAndLevelRoundTrip) {
  for (int k = 1; k <= 12; ++k) {
    EXPECT_EQ(level_of_size(size_of_level(k)), k);
  }
  EXPECT_EQ(size_of_level(1), 3);
  EXPECT_EQ(size_of_level(5), 33);
}

TEST(Level, RejectsInvalidSizes) {
  EXPECT_THROW(level_of_size(4), InvalidArgument);
  EXPECT_THROW(level_of_size(2), InvalidArgument);
  EXPECT_FALSE(is_valid_grid_size(6));
  EXPECT_TRUE(is_valid_grid_size(9));
  EXPECT_FALSE(is_valid_grid_size(0));
}

TEST(Level, MeshAndCoarseSize) {
  EXPECT_DOUBLE_EQ(mesh_width(5), 0.25);
  EXPECT_EQ(coarse_size(9), 5);
  EXPECT_EQ(coarse_size(5), 3);
}

// ------------------------------------------------------------- grid_ops --

/// Brute-force 5-point operator for cross-validation.
void naive_apply(const Grid2D& x, Grid2D& out) {
  const int n = x.n();
  const double inv_h2 =
      static_cast<double>(n - 1) * static_cast<double>(n - 1);
  out.fill(0.0);
  for (int i = 1; i < n - 1; ++i) {
    for (int j = 1; j < n - 1; ++j) {
      out(i, j) = (4 * x(i, j) - x(i - 1, j) - x(i + 1, j) - x(i, j - 1) -
                   x(i, j + 1)) *
                  inv_h2;
    }
  }
}

Grid2D random_grid(int n, std::uint64_t seed) {
  Rng rng(seed);
  Grid2D g(n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) g(i, j) = rng.uniform(-1.0, 1.0);
  }
  return g;
}

TEST(GridOps, ApplyPoissonMatchesNaive) {
  for (int n : {3, 5, 9, 17, 33}) {
    const Grid2D x = random_grid(n, 100 + static_cast<std::uint64_t>(n));
    Grid2D fast(n, 0.0), naive(n, 0.0);
    grid::apply_poisson(x, fast, sched());
    naive_apply(x, naive);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        ASSERT_NEAR(fast(i, j), naive(i, j), 1e-9 * (std::abs(naive(i, j)) + 1))
            << "n=" << n << " (" << i << "," << j << ")";
      }
    }
  }
}

TEST(GridOps, ResidualIsZeroForExactSolve) {
  // If b = A·x then residual(x, b) must vanish.
  const int n = 17;
  const Grid2D x = random_grid(n, 7);
  Grid2D b(n, 0.0), r(n, 0.0);
  grid::apply_poisson(x, b, sched());
  grid::residual(x, b, r, sched());
  EXPECT_LE(grid::max_abs_interior(r, sched()),
            1e-6);  // inv_h2 amplifies rounding; scale-aware bound
}

TEST(GridOps, ResidualMatchesDefinition) {
  const int n = 9;
  const Grid2D x = random_grid(n, 8);
  const Grid2D b = random_grid(n, 9);
  Grid2D ax(n, 0.0), r(n, 0.0);
  grid::apply_poisson(x, ax, sched());
  grid::residual(x, b, r, sched());
  for (int i = 1; i < n - 1; ++i) {
    for (int j = 1; j < n - 1; ++j) {
      ASSERT_NEAR(r(i, j), b(i, j) - ax(i, j), 1e-9 * (std::abs(ax(i, j)) + 1));
    }
  }
}

TEST(GridOps, RestrictionPreservesConstants) {
  // Full weighting of a constant interior (with matching ring) returns the
  // same constant at coarse interior points.
  const int n = 17;
  Grid2D fine(n, 3.25);
  Grid2D coarse(coarse_size(n), 0.0);
  grid::restrict_full_weighting(fine, coarse, sched());
  for (int i = 1; i < coarse.n() - 1; ++i) {
    for (int j = 1; j < coarse.n() - 1; ++j) {
      ASSERT_NEAR(coarse(i, j), 3.25, 1e-12);
    }
  }
}

TEST(GridOps, RestrictionStencilIsFullWeighting) {
  const int n = 9;
  Grid2D fine(n, 0.0);
  fine(4, 4) = 16.0;  // aligned with coarse point (2,2)
  Grid2D coarse(5, 0.0);
  grid::restrict_full_weighting(fine, coarse, sched());
  EXPECT_DOUBLE_EQ(coarse(2, 2), 4.0);   // centre weight 4/16
  EXPECT_DOUBLE_EQ(coarse(1, 2), 0.0);   // outside stencil
  fine.fill(0.0);
  fine(3, 4) = 16.0;  // edge-adjacent fine point
  grid::restrict_full_weighting(fine, coarse, sched());
  EXPECT_DOUBLE_EQ(coarse(1, 2), 2.0);  // weight 2/16 below
  EXPECT_DOUBLE_EQ(coarse(2, 2), 2.0);  // weight 2/16 above
}

TEST(GridOps, InjectionCopiesEvenPointsIncludingRing) {
  const int n = 9;
  Grid2D fine = random_grid(n, 11);
  Grid2D coarse(5, 0.0);
  grid::restrict_inject(fine, coarse, sched());
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      ASSERT_DOUBLE_EQ(coarse(i, j), fine(2 * i, 2 * j));
    }
  }
}

TEST(GridOps, InterpolationIsExactForBilinearFunctions) {
  // Bilinear interpolation reproduces functions u = a + bx + cy + dxy.
  const int nc = 5, nf = 9;
  Grid2D coarse(nc, 0.0), fine(nf, 0.0), expected(nf, 0.0);
  const auto u = [](double x, double y) {
    return 1.0 + 2.0 * x - 0.5 * y + 3.0 * x * y;
  };
  for (int i = 0; i < nc; ++i) {
    for (int j = 0; j < nc; ++j) {
      coarse(i, j) = u(j * mesh_width(nc), i * mesh_width(nc));
    }
  }
  for (int i = 0; i < nf; ++i) {
    for (int j = 0; j < nf; ++j) {
      expected(i, j) = u(j * mesh_width(nf), i * mesh_width(nf));
    }
  }
  grid::interpolate_assign(coarse, fine, sched());
  for (int i = 1; i < nf - 1; ++i) {
    for (int j = 1; j < nf - 1; ++j) {
      ASSERT_NEAR(fine(i, j), expected(i, j), 1e-12);
    }
  }
}

TEST(GridOps, InterpolateAddAccumulates) {
  const int nc = 3, nf = 5;
  Grid2D coarse(nc, 1.0);
  Grid2D fine(nf, 2.0);
  grid::interpolate_add(coarse, fine, sched());
  // Every interior fine point receives interpolated value 1 (constant
  // coarse grid including its ring).
  for (int i = 1; i < nf - 1; ++i) {
    for (int j = 1; j < nf - 1; ++j) {
      ASSERT_DOUBLE_EQ(fine(i, j), 3.0);
    }
  }
  // Ring untouched.
  EXPECT_DOUBLE_EQ(fine(0, 0), 2.0);
}

TEST(GridOps, TransferOperatorsSatisfyVariationalScaling) {
  // Full weighting R and bilinear interpolation P satisfy R = P^T / 4 in
  // 2-D: <R f, c> = <f, P c> / 4 for zero-ring grids.
  const int nf = 17, nc = 9;
  Grid2D f = random_grid(nf, 21);
  Grid2D c = random_grid(nc, 22);
  // Zero the rings so boundary terms vanish.
  for (int j = 0; j < nf; ++j) {
    f(0, j) = f(nf - 1, j) = 0.0;
  }
  for (int i = 0; i < nf; ++i) {
    f(i, 0) = f(i, nf - 1) = 0.0;
  }
  for (int j = 0; j < nc; ++j) {
    c(0, j) = c(nc - 1, j) = 0.0;
  }
  for (int i = 0; i < nc; ++i) {
    c(i, 0) = c(i, nc - 1) = 0.0;
  }
  Grid2D rf(nc, 0.0);
  grid::restrict_full_weighting(f, rf, sched());
  Grid2D pc(nf, 0.0);
  grid::interpolate_assign(c, pc, sched());
  double lhs = 0.0, rhs = 0.0;
  for (int i = 1; i < nc - 1; ++i) {
    for (int j = 1; j < nc - 1; ++j) lhs += rf(i, j) * c(i, j);
  }
  for (int i = 1; i < nf - 1; ++i) {
    for (int j = 1; j < nf - 1; ++j) rhs += f(i, j) * pc(i, j);
  }
  EXPECT_NEAR(lhs, rhs / 4.0, 1e-10 * (std::abs(lhs) + 1.0));
}

TEST(GridOps, NormsMatchSerialComputation) {
  const int n = 33;
  const Grid2D a = random_grid(n, 31);
  const Grid2D b = random_grid(n, 32);
  double ss = 0.0, sd = 0.0, mx = 0.0;
  for (int i = 1; i < n - 1; ++i) {
    for (int j = 1; j < n - 1; ++j) {
      ss += a(i, j) * a(i, j);
      const double d = a(i, j) - b(i, j);
      sd += d * d;
      mx = std::max(mx, std::abs(a(i, j)));
    }
  }
  EXPECT_NEAR(grid::norm2_interior(a, sched()), std::sqrt(ss), 1e-12);
  EXPECT_NEAR(grid::norm2_diff_interior(a, b, sched()), std::sqrt(sd), 1e-12);
  EXPECT_DOUBLE_EQ(grid::max_abs_interior(a, sched()), mx);
}

TEST(GridOps, AxpyInterior) {
  const int n = 9;
  const Grid2D x = random_grid(n, 41);
  Grid2D y = random_grid(n, 42);
  const Grid2D y0 = y;
  grid::axpy_interior(0.5, x, y, sched());
  for (int i = 1; i < n - 1; ++i) {
    for (int j = 1; j < n - 1; ++j) {
      ASSERT_NEAR(y(i, j), y0(i, j) + 0.5 * x(i, j), 1e-12);
    }
  }
  EXPECT_DOUBLE_EQ(y(0, 0), y0(0, 0));
}

TEST(GridOps, SizeMismatchesThrow) {
  Grid2D a(5, 0.0), b(9, 0.0), c5(5, 0.0), c3(3, 0.0);
  EXPECT_THROW(grid::apply_poisson(a, b, sched()), InvalidArgument);
  EXPECT_THROW(grid::residual(a, b, c5, sched()), InvalidArgument);
  EXPECT_THROW(grid::restrict_full_weighting(a, c5, sched()), InvalidArgument);
  EXPECT_THROW(grid::interpolate_add(c5, a, sched()), InvalidArgument);
  Grid2D bad(6, 0.0), bad_out(6, 0.0);
  EXPECT_THROW(grid::apply_poisson(bad, bad_out, sched()), InvalidArgument);
}

// -------------------------------------------------------------- problem --

TEST(Problem, DistributionNamesRoundTrip) {
  for (auto dist :
       {InputDistribution::kUnbiased, InputDistribution::kBiased,
        InputDistribution::kPointSources}) {
    EXPECT_EQ(parse_distribution(to_string(dist)), dist);
  }
  EXPECT_THROW(parse_distribution("gaussian"), InvalidArgument);
}

TEST(Problem, UnbiasedEntriesSpanPaperRange) {
  Rng rng(5);
  const auto p = make_problem(65, InputDistribution::kUnbiased, rng);
  double lo = 0.0, hi = 0.0, sum = 0.0;
  int count = 0;
  for (int i = 1; i < 64; ++i) {
    for (int j = 1; j < 64; ++j) {
      lo = std::min(lo, p.b(i, j));
      hi = std::max(hi, p.b(i, j));
      sum += p.b(i, j);
      ++count;
    }
  }
  constexpr double kTwo32 = 4294967296.0;
  EXPECT_GE(lo, -kTwo32);
  EXPECT_LE(hi, kTwo32);
  EXPECT_LT(lo, -0.5 * kTwo32);  // actually spans the range
  EXPECT_GT(hi, 0.5 * kTwo32);
  EXPECT_LT(std::abs(sum / count), 0.2 * kTwo32);  // centred near zero
}

TEST(Problem, BiasedDistributionIsShifted) {
  Rng rng(6);
  const auto p = make_problem(65, InputDistribution::kBiased, rng);
  double sum = 0.0;
  int count = 0;
  for (int i = 1; i < 64; ++i) {
    for (int j = 1; j < 64; ++j) {
      sum += p.b(i, j);
      ++count;
    }
  }
  constexpr double kTwo31 = 2147483648.0;
  EXPECT_NEAR(sum / count, kTwo31, 0.25 * kTwo31);
}

TEST(Problem, BoundaryValuesPopulatedInteriorGuessZero) {
  Rng rng(7);
  const auto p = make_problem(17, InputDistribution::kUnbiased, rng);
  bool ring_nonzero = false;
  for (int j = 0; j < 17; ++j) {
    ring_nonzero = ring_nonzero || p.x0(0, j) != 0.0 || p.x0(16, j) != 0.0;
  }
  EXPECT_TRUE(ring_nonzero);
  for (int i = 1; i < 16; ++i) {
    for (int j = 1; j < 16; ++j) {
      ASSERT_EQ(p.x0(i, j), 0.0);
    }
  }
}

TEST(Problem, PointSourcesAreSparseWithZeroBoundary) {
  Rng rng(8);
  const auto p = make_problem(33, InputDistribution::kPointSources, rng);
  int nonzero = 0;
  for (int i = 1; i < 32; ++i) {
    for (int j = 1; j < 32; ++j) {
      if (p.b(i, j) != 0.0) ++nonzero;
    }
  }
  EXPECT_GE(nonzero, 1);
  EXPECT_LE(nonzero, 5);
  for (int j = 0; j < 33; ++j) {
    ASSERT_EQ(p.x0(0, j), 0.0);
    ASSERT_EQ(p.x0(32, j), 0.0);
  }
}

TEST(Problem, SameRngStateSameProblem) {
  Rng r1(99), r2(99);
  const auto p1 = make_problem(17, InputDistribution::kBiased, r1);
  const auto p2 = make_problem(17, InputDistribution::kBiased, r2);
  for (int i = 0; i < 17; ++i) {
    for (int j = 0; j < 17; ++j) {
      ASSERT_EQ(p1.b(i, j), p2.b(i, j));
      ASSERT_EQ(p1.x0(i, j), p2.x0(i, j));
    }
  }
}

TEST(Problem, ManufacturedProblemHasExactDiscreteSolution) {
  const auto mp = make_manufactured_problem(17, sched());
  Grid2D r(17, 0.0);
  grid::residual(mp.exact, mp.problem.b, r, sched());
  EXPECT_LE(grid::max_abs_interior(r, sched()), 1e-8);
  // Boundary of the problem matches the exact solution's ring.
  EXPECT_DOUBLE_EQ(mp.problem.x0(0, 5), mp.exact(0, 5));
  EXPECT_THROW(make_manufactured_problem(10, sched()), InvalidArgument);
}

}  // namespace
}  // namespace pbmg
