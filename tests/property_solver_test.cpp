// Parameterized convergence sweeps across solvers, sizes, and input
// distributions: every solver must converge on every distribution, V-cycle
// contraction factors must be size-independent (the defining property of
// multigrid), and relaxation behaviour must respond to ω as theory says.

#include <cmath>

#include <gtest/gtest.h>

#include "fft/fast_poisson.h"
#include "grid/grid_ops.h"
#include "grid/level.h"
#include "grid/problem.h"
#include "grid/scratch.h"
#include "grid/stencil_op.h"
#include "runtime/scheduler.h"
#include "solvers/direct.h"
#include "solvers/line_relax.h"
#include "solvers/multigrid.h"
#include "solvers/relax.h"
#include "support/rng.h"
#include "test_problems.h"
#include "tune/accuracy.h"

namespace pbmg::solvers {
namespace {

rt::Scheduler& sched() {
  static rt::Scheduler instance([] {
    rt::MachineProfile p;
    p.name = "prop-solver";
    p.threads = 4;
    p.grain_rows = 4;
    return p;
  }());
  return instance;
}

grid::ScratchPool& pool() {
  static grid::ScratchPool instance;
  return instance;
}

inline std::string dist_label(int index) {
  switch (index) {
    case 0: return "unbiased";
    case 1: return "biased";
    default: return "pointsources";
  }
}

// Shared manufactured-problem helpers (tests/test_problems.h), bound to
// this suite's scheduler.
using Instance = testing::PoissonInstance;

Instance make_instance(int n, InputDistribution dist, std::uint64_t seed) {
  return testing::make_poisson_instance(n, dist, seed, sched());
}

double error_of(const Instance& inst, const Grid2D& x) {
  return grid::norm2_diff_interior(x, inst.exact, sched());
}

class SolverSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

INSTANTIATE_TEST_SUITE_P(
    Cases, SolverSweep,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(17, 33, 65)),
    [](const auto& info) {
      return dist_label(std::get<0>(info.param)) + "_N" +
             std::to_string(std::get<1>(info.param));
    });

TEST_P(SolverSweep, DirectSolvesEveryDistributionExactly) {
  const auto dist = static_cast<InputDistribution>(std::get<0>(GetParam()));
  const int n = std::get<1>(GetParam());
  const auto inst = make_instance(n, dist, 100);
  DirectSolver direct;
  Grid2D x = inst.problem.x0;
  direct.solve(inst.problem.b, x);
  EXPECT_LE(error_of(inst, x), 1e-9 * (inst.e0 + 1.0));
}

TEST_P(SolverSweep, SorConvergesOnEveryDistribution) {
  const auto dist = static_cast<InputDistribution>(std::get<0>(GetParam()));
  const int n = std::get<1>(GetParam());
  const auto inst = make_instance(n, dist, 200);
  if (inst.e0 == 0.0) GTEST_SKIP() << "degenerate zero instance";
  Grid2D x = inst.problem.x0;
  for (int s = 0; s < 12 * n; ++s) {
    sor_sweep(x, inst.problem.b, omega_opt(n), sched());
  }
  EXPECT_LE(error_of(inst, x), 1e-6 * inst.e0);
}

TEST_P(SolverSweep, VCycleConvergesOnEveryDistribution) {
  const auto dist = static_cast<InputDistribution>(std::get<0>(GetParam()));
  const int n = std::get<1>(GetParam());
  const auto inst = make_instance(n, dist, 300);
  if (inst.e0 == 0.0) GTEST_SKIP() << "degenerate zero instance";
  DirectSolver direct;
  Grid2D x = inst.problem.x0;
  for (int c = 0; c < 25; ++c) {
    vcycle(x, inst.problem.b, VCycleOptions{}, sched(), direct, pool());
  }
  EXPECT_LE(error_of(inst, x), 1e-8 * inst.e0);
}

TEST_P(SolverSweep, FullMultigridConvergesOnEveryDistribution) {
  const auto dist = static_cast<InputDistribution>(std::get<0>(GetParam()));
  const int n = std::get<1>(GetParam());
  const auto inst = make_instance(n, dist, 400);
  if (inst.e0 == 0.0) GTEST_SKIP() << "degenerate zero instance";
  DirectSolver direct;
  Grid2D x = inst.problem.x0;
  full_multigrid(x, inst.problem.b, VCycleOptions{}, sched(), direct, pool());
  for (int c = 0; c < 24; ++c) {
    vcycle(x, inst.problem.b, VCycleOptions{}, sched(), direct, pool());
  }
  EXPECT_LE(error_of(inst, x), 1e-8 * inst.e0);
}

// ------------------------------------------- stencil-aware relaxation --

constexpr int kFamilyCount =
    static_cast<int>(std::size(kAllOperatorFamilies));

class StencilRelaxSweep : public ::testing::TestWithParam<int> {
 protected:
  OperatorFamily family() const {
    return kAllOperatorFamilies[static_cast<std::size_t>(GetParam())];
  }
};

INSTANTIATE_TEST_SUITE_P(Families, StencilRelaxSweep,
                         ::testing::Range(0, kFamilyCount),
                         [](const auto& info) {
                           return testing::gtest_name(
                               to_string(kAllOperatorFamilies[
                                   static_cast<std::size_t>(info.param)]));
                         });

TEST_P(StencilRelaxSweep, SorWithTrueDiagonalReducesError) {
  // A convergent SOR sweep for an SPD system requires dividing by the
  // actual row diagonal; 2n sweeps must visibly reduce the error for
  // every family (full convergence is the V-cycle suite's job).
  const int n = 33;
  const grid::StencilOp op = make_operator(n, family());
  Rng rng(4100);
  const auto inst = tune::make_training_instance(
      op, InputDistribution::kUnbiased, rng, sched());
  if (inst.initial_error == 0.0) GTEST_SKIP() << "degenerate zero instance";
  Grid2D x = inst.problem.x0;
  for (int s = 0; s < 2 * n; ++s) {
    sor_sweep(op, x, inst.problem.b, 1.15, sched());
  }
  EXPECT_LT(grid::norm2_diff_interior(x, inst.x_opt, sched()),
            0.5 * inst.initial_error)
      << to_string(family());
}

TEST_P(StencilRelaxSweep, JacobiWithTrueDiagonalReducesError) {
  const int n = 33;
  const grid::StencilOp op = make_operator(n, family());
  Rng rng(4200);
  const auto inst = tune::make_training_instance(
      op, InputDistribution::kUnbiased, rng, sched());
  if (inst.initial_error == 0.0) GTEST_SKIP() << "degenerate zero instance";
  Grid2D x = inst.problem.x0;
  Grid2D scratch(n, 0.0);
  for (int s = 0; s < 4 * n; ++s) {
    jacobi_sweep(op, x, inst.problem.b, kJacobiOmega, scratch, sched());
  }
  EXPECT_LT(grid::norm2_diff_interior(x, inst.x_opt, sched()),
            0.5 * inst.initial_error)
      << to_string(family());
}

double dot_interior(const Grid2D& a, const Grid2D& b) {
  double sum = 0.0;
  for (int i = 1; i < a.n() - 1; ++i) {
    for (int j = 1; j < a.n() - 1; ++j) sum += a(i, j) * b(i, j);
  }
  return sum;
}

/// Energy (A-)norm squared of the error of `x`: <e, A e> with
/// e = x − x_opt (zero Dirichlet ring: x carries x_opt's ring).
double error_energy(const grid::StencilOp& op,
                    const tune::TrainingInstance& inst, const Grid2D& x) {
  const int n = x.n();
  Grid2D e(n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) e(i, j) = x(i, j) - inst.x_opt(i, j);
  }
  Grid2D ae(n, 0.0);
  grid::apply_op(op, e, ae, sched());
  return dot_interior(e, ae);
}

TEST_P(StencilRelaxSweep, LineRelaxationNeverIncreasesEnergyNorm) {
  // Each line update solves its block row of the SPD system exactly —
  // a block Gauss-Seidel step, which minimizes the energy norm over the
  // updated block and therefore can never increase <e, A e>.  This is
  // the property that makes line relaxation safe to mix into any cycle
  // the tuner composes.  Checked per sweep, cycling through all three
  // variants, with a 1e-12 relative slack for the two O(n²) rounding-
  // dominated energy evaluations.
  const int n = 33;
  const grid::StencilOp op = make_operator(n, family());
  Rng rng(4300);
  const auto inst = tune::make_training_instance(
      op, InputDistribution::kUnbiased, rng, sched());
  if (inst.initial_error == 0.0) GTEST_SKIP() << "degenerate zero instance";
  Grid2D x = inst.problem.x0;
  double energy = error_energy(op, inst, x);
  ASSERT_GT(energy, 0.0);
  const RelaxKind kinds[] = {RelaxKind::kLineX, RelaxKind::kLineY,
                             RelaxKind::kLineZebraAlt};
  for (int sweep = 0; sweep < 9; ++sweep) {
    const RelaxKind kind = kinds[sweep % 3];
    line_relax_sweep(op, x, inst.problem.b, kind, sched(), pool());
    const double next = error_energy(op, inst, x);
    EXPECT_LE(next, energy * (1.0 + 1e-12))
        << to_string(family()) << " sweep " << sweep << " ("
        << to_string(kind) << ")";
    energy = next;
  }
}

TEST(StencilRelaxProperty, LinePairBeatsTwoPointSweepsOnStrongAnisotropy) {
  // The quantitative motivation for the tuner's new axis: at 32:1 and
  // beyond, one x-line plus one y-line sweep must reduce the residual at
  // least as much as two point red-black SOR sweeps (equal sweep count,
  // and the line pair covers both directions).  At 1000:1 the margin is
  // orders of magnitude; at 32:1 it is comfortable but finite.
  for (const OperatorFamily family :
       {OperatorFamily::kAnisotropic, OperatorFamily::kAnisotropic1000}) {
    const int n = 65;
    const grid::StencilOp op = make_operator(n, family);
    Rng rng(4400);
    const auto inst = tune::make_training_instance(
        op, InputDistribution::kUnbiased, rng, sched());
    const auto residual_norm = [&](const Grid2D& x) {
      Grid2D r(n, 0.0);
      grid::residual_op(op, x, inst.problem.b, r, sched());
      return grid::norm2_interior(r, sched());
    };
    Grid2D lines = inst.problem.x0;
    line_relax_sweep(op, lines, inst.problem.b, RelaxKind::kLineX, sched(),
                     pool());
    line_relax_sweep(op, lines, inst.problem.b, RelaxKind::kLineY, sched(),
                     pool());
    Grid2D points = inst.problem.x0;
    sor_sweep(op, points, inst.problem.b, 1.15, sched());
    sor_sweep(op, points, inst.problem.b, 1.15, sched());
    EXPECT_LE(residual_norm(lines), residual_norm(points))
        << to_string(family);
  }
}

TEST(StencilRelaxFastPath, PoissonOpSweepsAreBitwiseIdenticalToLegacy) {
  // The op-aware sweeps must dispatch the Poisson fast path to the
  // original kernels, bit for bit — same state after any sweep count.
  const int n = 33;
  const grid::StencilOp op = grid::StencilOp::poisson(n);
  const auto inst = make_instance(n, InputDistribution::kUnbiased, 4300);
  Grid2D via_op = inst.problem.x0;
  Grid2D legacy = inst.problem.x0;
  for (int s = 0; s < 5; ++s) {
    sor_sweep(op, via_op, inst.problem.b, 1.15, sched());
    sor_sweep(legacy, inst.problem.b, 1.15, sched());
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      ASSERT_EQ(via_op(i, j), legacy(i, j)) << "sor at " << i << "," << j;
    }
  }
  Grid2D j_op = inst.problem.x0;
  Grid2D j_legacy = inst.problem.x0;
  Grid2D s1(n, 0.0), s2(n, 0.0);
  for (int s = 0; s < 5; ++s) {
    jacobi_sweep(op, j_op, inst.problem.b, kJacobiOmega, s1, sched());
    jacobi_sweep(j_legacy, inst.problem.b, kJacobiOmega, s2, sched());
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      ASSERT_EQ(j_op(i, j), j_legacy(i, j)) << "jacobi at " << i << "," << j;
    }
  }
}

// ------------------------------------------------- contraction factors --

class ContractionSweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Sizes, ContractionSweep,
                         ::testing::Values(33, 65, 129, 257),
                         [](const auto& info) {
                           return "N" + std::to_string(info.param);
                         });

TEST_P(ContractionSweep, VCycleContractionIsSizeIndependent) {
  // The defining multigrid property: the per-cycle error contraction
  // factor stays bounded away from 1 uniformly in N.
  const int n = GetParam();
  const auto inst = make_instance(n, InputDistribution::kUnbiased, 500);
  DirectSolver direct;
  Grid2D x = inst.problem.x0;
  // Skip the first cycles (transient), then measure the asymptotic rate.
  for (int c = 0; c < 3; ++c) {
    vcycle(x, inst.problem.b, VCycleOptions{}, sched(), direct, pool());
  }
  const double e_before = error_of(inst, x);
  for (int c = 0; c < 3; ++c) {
    vcycle(x, inst.problem.b, VCycleOptions{}, sched(), direct, pool());
  }
  const double e_after = error_of(inst, x);
  const double rate = std::cbrt(e_after / e_before);
  EXPECT_LT(rate, 0.5) << "V-cycle contraction degraded at N=" << n;
}

TEST_P(ContractionSweep, SorContractionDegradesWithSize) {
  // Counterpoint: SOR's per-sweep contraction approaches 1 as N grows
  // (the O(N) iteration count the paper's complexity table quotes).
  const int n = GetParam();
  if (n > 129) GTEST_SKIP() << "slow; covered by smaller sizes";
  const auto inst = make_instance(n, InputDistribution::kUnbiased, 600);
  Grid2D x = inst.problem.x0;
  for (int s = 0; s < n; ++s) {
    sor_sweep(x, inst.problem.b, omega_opt(n), sched());
  }
  const double e_mid = error_of(inst, x);
  for (int s = 0; s < n; ++s) {
    sor_sweep(x, inst.problem.b, omega_opt(n), sched());
  }
  const double e_end = error_of(inst, x);
  const double per_sweep = std::pow(e_end / e_mid, 1.0 / n);
  // Must still converge, but noticeably slower than the V-cycle's rate.
  EXPECT_LT(per_sweep, 1.0);
  EXPECT_GT(per_sweep, 0.5);
}

// ------------------------------------------------------------- omegas --

class OmegaSweep : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Weights, OmegaSweep,
                         ::testing::Values(0.8, 1.0, 1.15, 1.5),
                         [](const auto& info) {
                           return "w" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

TEST_P(OmegaSweep, SorConvergesForStableWeights) {
  // SOR converges for 0 < ω < 2 on SPD systems; all tested weights must
  // reduce the error.
  const double omega = GetParam();
  const auto inst = make_instance(33, InputDistribution::kUnbiased, 700);
  Grid2D x = inst.problem.x0;
  for (int s = 0; s < 200; ++s) {
    sor_sweep(x, inst.problem.b, omega, sched());
  }
  EXPECT_LT(error_of(inst, x), 0.5 * inst.e0) << "omega=" << omega;
}

TEST(OmegaOptimality, OptimalOmegaBeatsNeighbours) {
  // ω_opt minimises the SOR spectral radius: at a fixed sweep budget it
  // should beat clearly smaller and clearly larger weights.
  const int n = 65;
  const auto inst = make_instance(n, InputDistribution::kUnbiased, 800);
  const double w_opt = omega_opt(n);
  const auto error_after = [&](double omega) {
    Grid2D x = inst.problem.x0;
    for (int s = 0; s < 2 * n; ++s) {
      sor_sweep(x, inst.problem.b, omega, sched());
    }
    return error_of(inst, x);
  };
  const double at_opt = error_after(w_opt);
  EXPECT_LT(at_opt, error_after(1.0));
  EXPECT_LT(at_opt, error_after(std::min(1.99, w_opt + 0.15)));
}

// ----------------------------------------------- V-cycle option sweeps --

class CycleOptionSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

INSTANTIATE_TEST_SUITE_P(PrePost, CycleOptionSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(0, 1, 2)),
                         [](const auto& info) {
                           return "pre" +
                                  std::to_string(std::get<0>(info.param)) +
                                  "_post" +
                                  std::to_string(std::get<1>(info.param));
                         });

TEST_P(CycleOptionSweep, AnySmoothingCombinationConverges) {
  const int pre = std::get<0>(GetParam());
  const int post = std::get<1>(GetParam());
  if (pre == 0 && post == 0) {
    GTEST_SKIP() << "no smoothing: coarse-grid correction alone need not "
                    "converge";
  }
  const auto inst = make_instance(33, InputDistribution::kUnbiased, 900);
  DirectSolver direct;
  VCycleOptions options;
  options.pre_relax = pre;
  options.post_relax = post;
  Grid2D x = inst.problem.x0;
  for (int c = 0; c < 30; ++c) {
    vcycle(x, inst.problem.b, options, sched(), direct, pool());
  }
  EXPECT_LT(error_of(inst, x), 1e-4 * inst.e0);
}

}  // namespace
}  // namespace pbmg::solvers
