// Galerkin RAP coarsening and 9-point operator tests: the coarse operator
// must equal the explicitly assembled triple product R·A·P entry for
// entry, RAP of the Poisson fast path must reproduce the standard 9-point
// coarse Poisson stencil (edges ½, corners ¼, centre 3 in coupling
// units), 9-point operators must stay symmetric positive definite down
// the ladder, the θ = 45° rotated-anisotropy family must converge on the
// RAP ladder, and the restriction-robustness fixes (always-on degenerate
// edge-pair guard, coarsening serialization with missing ⇒ legacy) are
// pinned here.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "grid/grid_ops.h"
#include "grid/level.h"
#include "grid/problem.h"
#include "grid/stencil_op.h"
#include "linalg/band_matrix.h"
#include "linalg/poisson_assembly.h"
#include "solvers/line_relax.h"
#include "solvers/multigrid.h"
#include "solvers/relax.h"
#include "test_problems.h"
#include "tune/accuracy.h"
#include "tune/table.h"

namespace pbmg {
namespace {

Engine& engine() {
  static Engine instance([] {
    rt::MachineProfile p;
    p.name = "rap-test";
    p.threads = 4;
    p.grain_rows = 2;
    return EngineOptions{p, {}, {}, 0};
  }());
  return instance;
}

rt::Scheduler& sched() { return engine().scheduler(); }

using Dense = std::vector<double>;  // row-major

/// Full-weighting restriction R over interior unknowns:
/// (nc−2)² × (n−2)², R(C,p) = [1 2 1; 2 4 2; 1 2 1]/16 around p = 2C.
Dense dense_restriction(int n) {
  const int nc = coarse_size(n);
  const int mf = n - 2;
  const int mcs = nc - 2;
  Dense r(static_cast<std::size_t>(mcs * mcs) *
          static_cast<std::size_t>(mf * mf));
  const double w[3] = {0.25, 0.5, 0.25};
  for (int ci = 1; ci <= mcs; ++ci) {
    for (int cj = 1; cj <= mcs; ++cj) {
      const int row = (ci - 1) * mcs + (cj - 1);
      for (int di = -1; di <= 1; ++di) {
        for (int dj = -1; dj <= 1; ++dj) {
          const int pi = 2 * ci + di;
          const int pj = 2 * cj + dj;
          if (pi < 1 || pi > mf || pj < 1 || pj > mf) continue;
          const int col = (pi - 1) * mf + (pj - 1);
          r[static_cast<std::size_t>(row) * (mf * mf) + col] =
              w[di + 1] * w[dj + 1];
        }
      }
    }
  }
  return r;
}

/// Bilinear interpolation P over interior unknowns: (n−2)² × (nc−2)²,
/// P(q,D) = 2^-(|q−2D|₁) for |q − 2D|∞ <= 1.
Dense dense_interpolation(int n) {
  const int nc = coarse_size(n);
  const int mf = n - 2;
  const int mcs = nc - 2;
  Dense p(static_cast<std::size_t>(mf * mf) *
          static_cast<std::size_t>(mcs * mcs));
  for (int qi = 1; qi <= mf; ++qi) {
    for (int qj = 1; qj <= mf; ++qj) {
      const int row = (qi - 1) * mf + (qj - 1);
      for (int di = 1; di <= mcs; ++di) {
        for (int dj = 1; dj <= mcs; ++dj) {
          const int dx = qi - 2 * di;
          const int dy = qj - 2 * dj;
          if (std::abs(dx) > 1 || std::abs(dy) > 1) continue;
          const int col = (di - 1) * mcs + (dj - 1);
          p[static_cast<std::size_t>(row) * (mcs * mcs) + col] =
              1.0 / static_cast<double>(1 << (std::abs(dx) + std::abs(dy)));
        }
      }
    }
  }
  return p;
}

Dense matmul(const Dense& a, int ar, int ac, const Dense& b, int bc) {
  Dense out(static_cast<std::size_t>(ar) * static_cast<std::size_t>(bc), 0.0);
  for (int i = 0; i < ar; ++i) {
    for (int k = 0; k < ac; ++k) {
      const double v = a[static_cast<std::size_t>(i) * ac + k];
      if (v == 0.0) continue;
      for (int j = 0; j < bc; ++j) {
        out[static_cast<std::size_t>(i) * bc + j] +=
            v * b[static_cast<std::size_t>(k) * bc + j];
      }
    }
  }
  return out;
}

void expect_matches_triple_product(const grid::StencilOp& fine,
                                   const std::string& label) {
  const int n = fine.n();
  const int nc = coarse_size(n);
  const int mf = n - 2;
  const int mcs = nc - 2;
  const Dense a = linalg::assemble_stencil_band(fine).to_dense();
  const Dense r = dense_restriction(n);
  const Dense p = dense_interpolation(n);
  const Dense ap = matmul(a, mf * mf, mf * mf, p, mcs * mcs);
  const Dense rap = matmul(r, mcs * mcs, mf * mf, ap, mcs * mcs);

  const grid::StencilOp coarse = fine.galerkin_coarse();
  ASSERT_TRUE(coarse.is_nine_point()) << label;
  const Dense got = linalg::assemble_stencil_band(coarse).to_dense();
  ASSERT_EQ(got.size(), rap.size()) << label;
  double scale = 0.0;
  for (const double v : rap) scale = std::max(scale, std::abs(v));
  for (int i = 0; i < mcs * mcs; ++i) {
    for (int j = 0; j < mcs * mcs; ++j) {
      const std::size_t idx = static_cast<std::size_t>(i) * (mcs * mcs) + j;
      // Exact in exact arithmetic; 1e-12·scale absorbs the different
      // summation orders of the local stencil accumulation vs the dense
      // triple product.
      EXPECT_NEAR(got[idx], rap[idx], 1e-12 * scale)
          << label << " entry (" << i << "," << j << ")";
    }
  }
}

TEST(GalerkinRap, FivePointVariableOperatorMatchesExplicitTripleProduct) {
  // A genuinely variable 5-point operator (smooth coefficients + jump
  // contrast + reaction term) at n = 9: the kernel-level coarse operator
  // must be the matrix R·A·P, entry for entry.
  const int n = 9;
  const grid::StencilOp op = grid::StencilOp::from_coefficients(
      n,
      [](double x, double y) {
        return 1.0 + 0.5 * std::sin(3.0 * x) * std::cos(2.0 * y) +
               (x > 0.5 ? 5.0 : 0.0);
      },
      [](double x, double y) { return 2.0 + x + 0.25 * y; }, 0.75);
  expect_matches_triple_product(op, "variable-5pt");
}

TEST(GalerkinRap, NinePointTensorOperatorMatchesExplicitTripleProduct) {
  const int n = 9;
  const grid::StencilOp op =
      make_operator(n, OperatorFamily::kAnisoTheta45);
  ASSERT_TRUE(op.is_nine_point());
  expect_matches_triple_product(op, "tensor-9pt");
}

TEST(GalerkinRap, SecondCoarseningMatchesTripleProductToo) {
  // RAP of a RAP operator (the generic 9-point → 9-point path a deep
  // ladder exercises).
  const grid::StencilOp fine =
      make_operator(17, OperatorFamily::kAnisoTheta30);
  expect_matches_triple_product(fine.galerkin_coarse(), "rap-of-rap");
}

TEST(GalerkinRap, PoissonCoarsensToTheStandardNinePointStencil) {
  // The classical result: full-weighting/bilinear Galerkin coarsening of
  // the 5-point Laplacian is the 9-point stencil
  //   (1/h_c²)·[[-¼,-½,-¼],[-½,3,-½],[-¼,-½,-¼]]
  // away from the boundary — edge couplings ½, corner couplings ¼,
  // centre 3 in this repo's coupling units.
  const int n = 17;
  const grid::StencilOp coarse = grid::StencilOp::poisson(n).galerkin_coarse();
  ASSERT_TRUE(coarse.is_nine_point());
  ASSERT_FALSE(coarse.is_poisson());
  const int nc = coarse.n();
  ASSERT_EQ(nc, coarse_size(n));
  for (int i = 2; i < nc - 3; ++i) {
    for (int j = 2; j < nc - 3; ++j) {
      EXPECT_NEAR(coarse.ax(i, j), 0.5, 1e-13) << i << "," << j;
      EXPECT_NEAR(coarse.ay(i, j), 0.5, 1e-13) << i << "," << j;
      EXPECT_NEAR(coarse.ase(i, j), 0.25, 1e-13) << i << "," << j;
      EXPECT_NEAR(coarse.asw(i, j), 0.25, 1e-13) << i << "," << j;
      EXPECT_NEAR(coarse.center(i, j), 3.0, 1e-13) << i << "," << j;
    }
  }
  // The averaged path still short-circuits to the fast path, untouched.
  EXPECT_TRUE(grid::StencilOp::poisson(n).restricted().is_poisson());
}

TEST(GalerkinRap, LadderStaysSymmetricPositiveDefinite) {
  // RAP of an SPD operator with full-rank P is SPD (R = ¼·Pᵀ here), so
  // banded Cholesky must factor every level of every family's RAP
  // ladder without meeting a non-positive pivot.
  for (const OperatorFamily family : kAllOperatorFamilies) {
    const int n = 33;
    const grid::StencilHierarchy ladder(make_operator(n, family),
                                        grid::Coarsening::kRap);
    for (int level = ladder.top_level(); level >= 1; --level) {
      linalg::BandMatrix a = linalg::assemble_stencil_band(ladder.at(level));
      EXPECT_NO_THROW(linalg::band_cholesky_factor(a))
          << to_string(family) << " level " << level;
    }
  }
}

TEST(GalerkinRap, NinePointApplyIsSymmetric) {
  // <A u, v> == <u, A v> on zero-ring grids: every coupling (edges and
  // corners) is shared by its two endpoints.
  const int n = 17;
  for (const auto mode :
       {grid::Coarsening::kAverage, grid::Coarsening::kRap}) {
    const grid::StencilOp op =
        make_operator(n, OperatorFamily::kAnisoTheta45).coarsened(mode);
    Rng rng(77);
    Grid2D u(op.n(), 0.0), v(op.n(), 0.0);
    for (int i = 1; i < op.n() - 1; ++i) {
      for (int j = 1; j < op.n() - 1; ++j) {
        u(i, j) = rng.uniform(-1.0, 1.0);
        v(i, j) = rng.uniform(-1.0, 1.0);
      }
    }
    Grid2D au(op.n(), 0.0), av(op.n(), 0.0);
    grid::apply_op(op, u, au, sched());
    grid::apply_op(op, v, av, sched());
    double lhs = 0.0, rhs = 0.0;
    for (int i = 1; i < op.n() - 1; ++i) {
      for (int j = 1; j < op.n() - 1; ++j) {
        lhs += au(i, j) * v(i, j);
        rhs += u(i, j) * av(i, j);
      }
    }
    EXPECT_NEAR(lhs, rhs, 1e-9 * (std::abs(lhs) + std::abs(rhs) + 1.0))
        << grid::to_string(mode);
  }
}

TEST(GalerkinRap, AveragedCoarseningOfNinePointDropsCorners) {
  // restricted() on a 9-point operator is the documented 5-point
  // approximation: edge averaging applies, corner couplings vanish —
  // the fig20 baseline arm's ladder.
  const grid::StencilOp fine = make_operator(17, OperatorFamily::kAnisoTheta45);
  const grid::StencilOp coarse = fine.restricted();
  EXPECT_FALSE(coarse.is_nine_point());
  EXPECT_EQ(coarse.n(), coarse_size(17));
  for (int i = 1; i < coarse.n() - 1; ++i) {
    for (int j = 1; j < coarse.n() - 1; ++j) {
      EXPECT_EQ(coarse.ase(i, j), 0.0);
      EXPECT_EQ(coarse.asw(i, j), 0.0);
      EXPECT_GT(coarse.diag(i, j), 0.0);
    }
  }
}

// ------------------------------------------------------- 9-point sweeps --

TEST(NinePointRelax, ZebraLineSweepSolvesSecondParityRowsExactly) {
  // After a full x-line zebra sweep (odd rows first, then even rows) the
  // even interior rows were solved against their final neighbours — the
  // odd rows, frozen by parity — so their residual rows must vanish to
  // rounding.  This is the 9-point analogue of the 5-point exactness pin
  // in line_relax_test, with the corner couplings folded into the RHS.
  const int n = 17;
  const grid::StencilOp op = make_operator(n, OperatorFamily::kAnisoTheta45);
  ASSERT_TRUE(op.is_nine_point());
  const auto inst = testing::make_family_instance(
      OperatorFamily::kAnisoTheta45, n, 515, sched());
  Grid2D x = inst.problem.x0;
  solvers::line_relax_sweep(op, x, inst.problem.b, solvers::RelaxKind::kLineX,
                            sched(), engine().scratch());
  Grid2D r(n, 0.0);
  grid::residual_op(op, x, inst.problem.b, r, sched());
  const double scale = grid::max_abs_interior(inst.problem.b, sched()) + 1.0;
  for (int i = 2; i < n - 1; i += 2) {
    for (int j = 1; j < n - 1; ++j) {
      EXPECT_LE(std::abs(r(i, j)), 1e-10 * scale) << "row " << i;
    }
  }
}

TEST(NinePointRelax, FourColorSorReducesError) {
  // The 9-point SOR sweep uses four colours (diagonal neighbours share
  // red-black parity); it must still behave like a convergent smoother.
  const int n = 33;
  const grid::StencilOp op = make_operator(n, OperatorFamily::kAnisoTheta30);
  const auto inst = testing::make_family_instance(
      OperatorFamily::kAnisoTheta30, n, 516, sched());
  if (inst.initial_error == 0.0) GTEST_SKIP();
  Grid2D x = inst.problem.x0;
  for (int s = 0; s < 2 * n; ++s) {
    solvers::sor_sweep(op, x, inst.problem.b, 1.15, sched());
  }
  EXPECT_LT(testing::error_against_exact(inst, x, sched()),
            0.5 * inst.initial_error);
}

TEST(NinePointRelax, Theta45VCycleContractsOnTheRapLadder) {
  // The acceptance scenario: θ = 45°, ε = 10⁻².  On the Galerkin ladder
  // with alternating zebra lines the V-cycle must make steady progress —
  // a 10⁶ error reduction within 40 cycles (≈0.7/cycle; measured rates
  // are better, the bound absorbs instance variation).
  const int n = 65;
  const auto inst = testing::make_family_instance(
      OperatorFamily::kAnisoTheta45, n, 517, sched());
  ASSERT_GT(inst.initial_error, 0.0);
  const grid::StencilHierarchy ladder(
      make_operator(n, OperatorFamily::kAnisoTheta45), grid::Coarsening::kRap);
  solvers::VCycleOptions options;
  options.relaxation = solvers::RelaxKind::kLineZebraAlt;
  Grid2D x = inst.problem.x0;
  int cycles = 0;
  double err = inst.initial_error;
  while (cycles < 40 && err > 1e-6 * inst.initial_error) {
    solvers::vcycle(ladder, x, inst.problem.b, options, sched(),
                    engine().direct(), engine().scratch());
    ++cycles;
    err = testing::error_against_exact(inst, x, sched());
  }
  EXPECT_LE(err, 1e-6 * inst.initial_error)
      << "stalled at relative error " << err / inst.initial_error << " after "
      << cycles << " cycles";
}

// ------------------------------------------------- restriction robustness --

TEST(RestrictionRobustness, DegenerateEdgePairThrowsInEveryBuild) {
  // series() used to guard a1 + a2 > 0 only under PBMG_NUM_ASSERT: in
  // plain Release a degenerate pair produced an Inf/NaN coarse
  // coefficient that propagated silently down the whole hierarchy.  The
  // guard is now an always-on PBMG_CHECK.  Under PBMG_ASSERTIONS the
  // construction itself already rejects the zero edge; either way the
  // sequence must throw instead of yielding a poisoned operator.
  const int n = 9;
  Grid2D ax(n, 1.0);
  Grid2D ay(n, 1.0);
  ax(2, 2) = 0.0;  // one coarse x-path sees the pair (0, 0) → sum == 0
  ax(2, 3) = 0.0;
  EXPECT_THROW(
      {
        const grid::StencilOp op =
            grid::StencilOp::variable(std::move(ax), std::move(ay), 0.0);
        (void)op.restricted();
      },
      Error);
}

// --------------------------------------------------- table serialization --

TEST(CoarseningSerialization, RoundTripsAndMissingFieldReadsAsLegacy) {
  tune::TunedConfig config(tune::paper_accuracies(), 3);
  for (int level = 2; level <= 3; ++level) {
    for (int i = 0; i < config.accuracy_count(); ++i) {
      tune::VEntry v;
      v.choice.kind = tune::VKind::kRecurse;
      v.choice.sub_accuracy = 0;
      v.choice.iterations = 2;
      v.choice.coarsening =
          i % 2 == 0 ? grid::Coarsening::kRap : grid::Coarsening::kAverage;
      v.trained = true;
      config.v_entry(level, i) = v;
      tune::FmgEntry f;
      f.choice.kind = tune::FmgKind::kEstimateThenRecurse;
      f.choice.estimate_accuracy = 0;
      f.choice.solve_accuracy = 0;
      f.choice.iterations = 1;
      f.choice.coarsening = grid::Coarsening::kRap;
      f.trained = true;
      config.fmg_entry(level, i) = f;
    }
  }
  const std::string dumped = config.to_json().dump(2);
  const tune::TunedConfig loaded =
      tune::TunedConfig::from_json(Json::parse(dumped));
  EXPECT_EQ(loaded.to_json().dump(2), dumped);
  EXPECT_EQ(loaded.v_entry(2, 0).choice.coarsening, grid::Coarsening::kRap);
  EXPECT_EQ(loaded.v_entry(2, 1).choice.coarsening,
            grid::Coarsening::kAverage);

  // Documents written before the coarsening axis carry no such field:
  // renaming the key simulates them, and every cell must read as the
  // legacy averaged ladder.
  std::string legacy = dumped;
  const std::string needle = "\"coarsening\"";
  for (std::size_t pos = legacy.find(needle); pos != std::string::npos;
       pos = legacy.find(needle, pos + 1)) {
    legacy.replace(pos, needle.size(), "\"coarsening_unknown_key\"");
  }
  const tune::TunedConfig pre_rap =
      tune::TunedConfig::from_json(Json::parse(legacy));
  for (int level = 2; level <= 3; ++level) {
    for (int i = 0; i < pre_rap.accuracy_count(); ++i) {
      EXPECT_EQ(pre_rap.v_entry(level, i).choice.coarsening,
                grid::Coarsening::kAverage);
      EXPECT_EQ(pre_rap.fmg_entry(level, i).choice.coarsening,
                grid::Coarsening::kAverage);
    }
  }
}

}  // namespace
}  // namespace pbmg
