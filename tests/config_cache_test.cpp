// Focused tests for the tuned-config disk cache: key stability and
// per-field divergence, save→load round trips, corrupt-entry recovery
// (every flavour of damage must read as a cache miss), and the combined
// search-then-train artifact with its "searched_profile" section.

#include <filesystem>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "solvers/relax.h"
#include "support/json.h"
#include "tune/config_cache.h"
#include "tune/table.h"
#include "tune/trainer.h"

namespace pbmg::tune {
namespace {

Engine& engine() {
  static Engine instance(rt::serial_profile());
  return instance;
}

rt::Scheduler& sched() { return engine().scheduler(); }

TrainerOptions tiny_options() {
  TrainerOptions options;
  options.max_level = 3;  // N <= 9: training takes milliseconds
  options.training_instances = 1;
  options.train_fmg = false;
  options.seed = 99;
  return options;
}

std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// A hand-built config exercising every choice kind, for IO tests that
/// should not pay for training.
TunedConfig handmade_config() {
  TunedConfig config(paper_accuracies(), 3);
  config.profile_name = "serial";
  config.distribution = "unbiased";
  config.seed = 7;
  config.strategy = "autotuned";
  for (int level = 2; level <= 3; ++level) {
    for (int i = 0; i < config.accuracy_count(); ++i) {
      VEntry v;
      v.choice.kind = (i % 2 == 0) ? VKind::kRecurse : VKind::kIterSor;
      v.choice.sub_accuracy = (i % 2 == 0) ? i : -1;
      v.choice.iterations = i + 1;
      v.expected_time = 0.001 * (level + i);
      v.measured_accuracy = 12.5 * (i + 1);
      v.trained = true;
      config.v_entry(level, i) = v;
      FmgEntry f;
      f.choice.kind = FmgKind::kEstimateThenRecurse;
      f.choice.estimate_accuracy = i;
      f.choice.solve_accuracy = i;
      f.choice.iterations = i;
      f.trained = true;
      config.fmg_entry(level, i) = f;
    }
  }
  return config;
}

// ------------------------------------------------------------- cache key --

TEST(ConfigCacheKey, StableAcrossIdenticalOptions) {
  const TrainerOptions a = tiny_options();
  const TrainerOptions b = tiny_options();
  EXPECT_EQ(config_cache_key(a, "serial", "autotuned"),
            config_cache_key(b, "serial", "autotuned"));
}

TEST(ConfigCacheKey, DivergesWhenAnyFieldChanges) {
  const TrainerOptions base = tiny_options();
  const std::string reference = config_cache_key(base, "serial", "autotuned");

  TrainerOptions changed = tiny_options();
  changed.max_level = 4;
  EXPECT_NE(config_cache_key(changed, "serial", "autotuned"), reference);

  changed = tiny_options();
  changed.training_instances = 2;
  EXPECT_NE(config_cache_key(changed, "serial", "autotuned"), reference);

  changed = tiny_options();
  changed.seed = 100;
  EXPECT_NE(config_cache_key(changed, "serial", "autotuned"), reference);

  changed = tiny_options();
  changed.distribution = InputDistribution::kBiased;
  EXPECT_NE(config_cache_key(changed, "serial", "autotuned"), reference);

  changed = tiny_options();
  changed.accuracies = {10.0, 1e3, 1e5};  // shorter ladder
  EXPECT_NE(config_cache_key(changed, "serial", "autotuned"), reference);

  changed = tiny_options();
  changed.accuracies = {10.0, 1e3, 1e5, 1e7, 1e11};  // different top rung
  EXPECT_NE(config_cache_key(changed, "serial", "autotuned"), reference);

  EXPECT_NE(config_cache_key(base, "niagara", "autotuned"), reference);
  EXPECT_NE(config_cache_key(base, "serial", "heuristic1"), reference);
}

// ------------------------------------------------------- problem specs --

TEST(ProblemSpecKey, DistinctOperatorFamiliesProduceDistinctKeys) {
  const TrainerOptions base = tiny_options();
  std::vector<std::string> keys;
  for (OperatorFamily family : kAllOperatorFamilies) {
    TrainerOptions options = tiny_options();
    options.op_family = family;
    keys.push_back(config_cache_key(options, "serial", "autotuned"));
  }
  for (std::size_t a = 0; a < keys.size(); ++a) {
    for (std::size_t b = a + 1; b < keys.size(); ++b) {
      EXPECT_NE(keys[a], keys[b])
          << to_string(kAllOperatorFamilies[a]) << " vs "
          << to_string(kAllOperatorFamilies[b]);
    }
  }
  // The searched-mode key inherits the operator token too.
  search::ProfileSearchOptions search_options;
  search_options.base = rt::serial_profile();
  TrainerOptions aniso = tiny_options();
  aniso.op_family = OperatorFamily::kAnisotropic;
  EXPECT_NE(searched_config_cache_key(aniso, search_options),
            searched_config_cache_key(base, search_options));
}

TEST(ProblemSpecKey, SpecRoundTripsBitwise) {
  for (OperatorFamily family : kAllOperatorFamilies) {
    for (int dist = 0; dist < 3; ++dist) {
      ProblemSpec spec;
      spec.op = family;
      spec.distribution = static_cast<InputDistribution>(dist);
      spec.level = 7;
      const ProblemSpec back = ProblemSpec::from_json(spec.to_json());
      EXPECT_TRUE(back == spec) << spec.cache_token();
      EXPECT_EQ(back.to_json().dump(), spec.to_json().dump());
      // And the token is injective across the fields it encodes.
      ProblemSpec other = spec;
      other.level = 8;
      EXPECT_NE(other.cache_token(), spec.cache_token());
    }
  }
}

TEST(ProblemSpecKey, TrainerOptionsExposeTheirSpec) {
  TrainerOptions options = tiny_options();
  options.op_family = OperatorFamily::kJumpCoefficient;
  options.distribution = InputDistribution::kBiased;
  const ProblemSpec spec = options.problem_spec();
  EXPECT_EQ(spec.op, OperatorFamily::kJumpCoefficient);
  EXPECT_EQ(spec.distribution, InputDistribution::kBiased);
  EXPECT_EQ(spec.level, options.max_level);
}

TEST(ProblemSpecKey, OldPoissonOnlySchemaIsACleanMiss) {
  // A cache written before operator families existed used the v2 key
  // layout (no operator token).  The new code must neither load nor
  // disturb such an entry: its key simply never matches, so the config is
  // retrained and stored beside the legacy file.
  const auto dir = fresh_dir("pbmg_cc_oldschema");
  const TrainerOptions options = tiny_options();
  // The exact v2 layout for tiny_options (see PR 1's config_cache.cpp):
  // v2_<strategy>_<profile>_<dist>_L<level>_m<rungs>_p<top-exp>_i<n>_s<seed>.
  const std::string old_key = "v2_autotuned_serial_unbiased_L3_m5_p9_i1_s99";
  ASSERT_NE(config_cache_key(options, "serial", "autotuned"), old_key);
  const auto old_path = dir / (old_key + ".json");
  const std::string old_content = handmade_config().to_json().dump(2) + "\n";
  write_text_file(old_path.string(), old_content);

  bool from_cache = true;
  const TunedConfig config =
      load_or_train(options, engine(), dir.string(), -1, &from_cache);
  EXPECT_FALSE(from_cache);
  EXPECT_EQ(config.max_level(), options.max_level);
  // The legacy entry is untouched; the retrained config landed under the
  // new key.
  EXPECT_EQ(read_text_file(old_path.string()), old_content);
  const auto new_path =
      dir / (config_cache_key(options, sched().profile().name, "autotuned") +
             ".json");
  EXPECT_TRUE(std::filesystem::exists(new_path));
  std::filesystem::remove_all(dir);
}

TEST(ProblemSpecKey, OldV3SmootherlessSchemaIsACleanMiss) {
  // v3 keys predate the smoother choice dimension (ISSUE 4): their tables
  // carry no per-cell smoother and their trainer raced a different
  // candidate stream, so a v3 entry must never be loaded.  The current
  // prefix (plus the _sm token) guarantees the old filename simply never
  // matches: retrain, store beside the legacy file, leave it untouched.
  const auto dir = fresh_dir("pbmg_cc_v3schema");
  const TrainerOptions options = tiny_options();
  const std::string new_key = config_cache_key(options, "serial", "autotuned");
  EXPECT_EQ(new_key.rfind("v7_", 0), 0u);
  EXPECT_NE(new_key.find("_sm"), std::string::npos);
  // The exact v3 layout for tiny_options (see PR 3's config_cache.cpp):
  // v3_<strategy>_<profile>_<op>_<dist>_L<level>_m<rungs>_p<exp>_i<n>_s<seed>.
  const std::string old_key = "v3_autotuned_serial_poisson_unbiased_L3_m5_p9_i1_s99";
  ASSERT_NE(new_key, old_key);
  const auto old_path = dir / (old_key + ".json");
  const std::string old_content = handmade_config().to_json().dump(2) + "\n";
  write_text_file(old_path.string(), old_content);

  bool from_cache = true;
  const TunedConfig config =
      load_or_train(options, engine(), dir.string(), -1, &from_cache);
  EXPECT_FALSE(from_cache);
  EXPECT_EQ(config.max_level(), options.max_level);
  EXPECT_EQ(read_text_file(old_path.string()), old_content);
  EXPECT_TRUE(std::filesystem::exists(dir / (new_key + ".json")));
  std::filesystem::remove_all(dir);
}

TEST(ProblemSpecKey, OldV6BaselinelessSchemaIsACleanMiss) {
  // v6 keys predate the latency-baseline section (ISSUE 8): their
  // searched entries carry no "latency_baseline", so they cannot seed a
  // drift watcher.  The v7 prefix guarantees the old filename never
  // matches: retrain, store beside the legacy file, leave it untouched.
  const auto dir = fresh_dir("pbmg_cc_v6schema");
  const TrainerOptions options = tiny_options();
  const std::string new_key = config_cache_key(options, "serial", "autotuned");
  EXPECT_EQ(new_key.rfind("v7_", 0), 0u);
  // The exact v6 layout for tiny_options (see PR 7's config_cache.cpp):
  // v6_<strategy>_<profile>_<op>_<dist>_L<level>_m<rungs>_p<exp>_i<n>_
  // s<seed>_sm<smoothers>_co<coarsenings>.
  const std::string old_key =
      "v6_autotuned_serial_poisson_unbiased_L3_m5_p9_i1_s99_smzxyp_cora";
  ASSERT_NE(new_key, old_key);
  const auto old_path = dir / (old_key + ".json");
  const std::string old_content = handmade_config().to_json().dump(2) + "\n";
  write_text_file(old_path.string(), old_content);

  bool from_cache = true;
  const TunedConfig config =
      load_or_train(options, engine(), dir.string(), -1, &from_cache);
  EXPECT_FALSE(from_cache);
  EXPECT_EQ(config.max_level(), options.max_level);
  EXPECT_EQ(read_text_file(old_path.string()), old_content);
  EXPECT_TRUE(std::filesystem::exists(dir / (new_key + ".json")));
  std::filesystem::remove_all(dir);
}

TEST(ProblemSpecKey, OldV4CoarseninglessSchemaIsACleanMiss) {
  // v4 keys predate the coarsening choice dimension (ISSUE 5): their
  // tables carry no per-cell coarsening and their trainer never raced
  // Galerkin-RAP candidates, so a v4 entry must read as a clean miss.
  // The v5 prefix plus the new _co token guarantee the old filename
  // never matches: retrain, store beside the legacy file, leave it
  // untouched.
  const auto dir = fresh_dir("pbmg_cc_v4schema");
  const TrainerOptions options = tiny_options();
  const std::string new_key = config_cache_key(options, "serial", "autotuned");
  EXPECT_EQ(new_key.rfind("v7_", 0), 0u);
  EXPECT_NE(new_key.find("_co"), std::string::npos);
  // The exact v4 layout for tiny_options (see PR 4's config_cache.cpp):
  // v4_<strategy>_<profile>_<op>_<dist>_L<level>_m<rungs>_p<exp>_i<n>_
  // s<seed>_sm<smoothers>.
  const std::string old_key =
      "v4_autotuned_serial_poisson_unbiased_L3_m5_p9_i1_s99_smzxyp";
  ASSERT_NE(new_key, old_key);
  const auto old_path = dir / (old_key + ".json");
  const std::string old_content = handmade_config().to_json().dump(2) + "\n";
  write_text_file(old_path.string(), old_content);

  bool from_cache = true;
  const TunedConfig config =
      load_or_train(options, engine(), dir.string(), -1, &from_cache);
  EXPECT_FALSE(from_cache);
  EXPECT_EQ(config.max_level(), options.max_level);
  EXPECT_EQ(read_text_file(old_path.string()), old_content);
  EXPECT_TRUE(std::filesystem::exists(dir / (new_key + ".json")));
  std::filesystem::remove_all(dir);
}

TEST(ProblemSpecKey, OldV5KernelPolicylessSchemaIsACleanMiss) {
  // v5 keys predate the kernel-policy axes (packed stencil layout and
  // SIMD width): their searched profiles never raced the packed kernels,
  // so the timings behind every stored table are stale.  The current
  // prefix guarantees the old filename never matches: retrain, store
  // beside the legacy file, leave it untouched.
  const auto dir = fresh_dir("pbmg_cc_v5schema");
  const TrainerOptions options = tiny_options();
  const std::string new_key = config_cache_key(options, "serial", "autotuned");
  EXPECT_EQ(new_key.rfind("v7_", 0), 0u);
  // The exact v5 layout for tiny_options (see PR 5's config_cache.cpp):
  // v5_<strategy>_<profile>_<op>_<dist>_L<level>_m<rungs>_p<exp>_i<n>_
  // s<seed>_sm<smoothers>_co<coarsenings>.
  const std::string old_key =
      "v5_autotuned_serial_poisson_unbiased_L3_m5_p9_i1_s99_smzxyp_cora";
  ASSERT_NE(new_key, old_key);
  const auto old_path = dir / (old_key + ".json");
  const std::string old_content = handmade_config().to_json().dump(2) + "\n";
  write_text_file(old_path.string(), old_content);

  bool from_cache = true;
  const TunedConfig config =
      load_or_train(options, engine(), dir.string(), -1, &from_cache);
  EXPECT_FALSE(from_cache);
  EXPECT_EQ(config.max_level(), options.max_level);
  EXPECT_EQ(read_text_file(old_path.string()), old_content);
  EXPECT_TRUE(std::filesystem::exists(dir / (new_key + ".json")));
  std::filesystem::remove_all(dir);
}

TEST(ProblemSpecKey, CoarseningListJoinsTheKey) {
  // Average-only training (the fig20 baseline arm) and the default
  // RAP-first space must never share tuned tables; the list's *order* is
  // keyed too, since measurement order drives budget pruning.
  const TrainerOptions base = tiny_options();
  TrainerOptions avg_only = tiny_options();
  avg_only.coarsenings = {grid::Coarsening::kAverage};
  EXPECT_NE(config_cache_key(base, "serial", "autotuned"),
            config_cache_key(avg_only, "serial", "autotuned"));
  TrainerOptions reordered = tiny_options();
  std::swap(reordered.coarsenings.front(), reordered.coarsenings.back());
  EXPECT_NE(config_cache_key(base, "serial", "autotuned"),
            config_cache_key(reordered, "serial", "autotuned"));
}

TEST(ProblemSpecKey, SmootherListJoinsTheKey) {
  // Point-only training (the fig19 baseline arm) and the default
  // line-enabled space must never share tuned tables; the list's *order*
  // is keyed too, since measurement order drives budget pruning.
  const TrainerOptions base = tiny_options();
  TrainerOptions point_only = tiny_options();
  point_only.smoothers = {solvers::RelaxKind::kSor};
  EXPECT_NE(config_cache_key(base, "serial", "autotuned"),
            config_cache_key(point_only, "serial", "autotuned"));
  TrainerOptions reordered = tiny_options();
  std::swap(reordered.smoothers.front(), reordered.smoothers.back());
  EXPECT_NE(config_cache_key(base, "serial", "autotuned"),
            config_cache_key(reordered, "serial", "autotuned"));
}

// ------------------------------------------------------------ round trip --

TEST(ConfigCacheIO, SaveLoadRoundTripEquality) {
  const TunedConfig config = handmade_config();
  const auto dir = fresh_dir("pbmg_cc_roundtrip");
  const auto path = dir / "config.json";
  config.save(path.string());
  const TunedConfig loaded = TunedConfig::load(path.string());
  EXPECT_EQ(loaded.to_json().dump(), config.to_json().dump());
  EXPECT_EQ(loaded.profile_name, config.profile_name);
  EXPECT_EQ(loaded.seed, config.seed);
  EXPECT_EQ(loaded.strategy, config.strategy);
  std::filesystem::remove_all(dir);
}

// --------------------------------------------------------- corrupt cache --

class CorruptCacheTest : public ::testing::Test {
 protected:
  /// Plants `content` at the cache path load_or_train will consult, then
  /// verifies the call retrains (miss) and overwrites with a valid entry.
  void expect_miss_and_recover(const std::string& tag,
                               const std::string& content) {
    const auto dir = fresh_dir("pbmg_cc_corrupt_" + tag);
    const TrainerOptions options = tiny_options();
    const std::string key =
        config_cache_key(options, sched().profile().name, "autotuned");
    const auto path = dir / (key + ".json");
    write_text_file(path.string(), content);
    bool from_cache = true;
    const TunedConfig config = load_or_train(options, engine(),
                                             dir.string(), -1, &from_cache);
    EXPECT_FALSE(from_cache) << tag;
    EXPECT_EQ(config.max_level(), options.max_level) << tag;
    // The rewritten entry must now be a hit.
    const TunedConfig again = load_or_train(options, engine(),
                                             dir.string(), -1, &from_cache);
    EXPECT_TRUE(from_cache) << tag;
    EXPECT_EQ(again.to_json().dump(), config.to_json().dump()) << tag;
    std::filesystem::remove_all(dir);
  }
};

TEST_F(CorruptCacheTest, UnparseableText) {
  expect_miss_and_recover("garbage", "{this is not json");
}

TEST_F(CorruptCacheTest, TruncatedDocument) {
  const std::string full = handmade_config().to_json().dump(2);
  expect_miss_and_recover("truncated", full.substr(0, full.size() / 2));
}

TEST_F(CorruptCacheTest, WrongSchema) {
  expect_miss_and_recover("schema", "[1, 2, 3]\n");
}

TEST_F(CorruptCacheTest, UnrecognisedSmootherName) {
  // smoother_from_json defaults a *missing* key to point_rb, but an
  // unrecognised name — e.g. written by a future version whose smoother
  // set grew — must fail as a ConfigError that load_or_train treats as a
  // clean miss, never as an exception escaping to the caller.
  Json doc = handmade_config().to_json();
  Json v_levels = doc.at("multigrid_v");
  v_levels.as_array()[0].as_array()[0].set("smoother",
                                           std::string("warp_drive"));
  doc.set("multigrid_v", std::move(v_levels));
  expect_miss_and_recover("badsmoother", doc.dump(2) + "\n");
}

TEST_F(CorruptCacheTest, UnrecognisedCoarseningName) {
  // Same contract for the coarsening field introduced with Galerkin RAP.
  Json doc = handmade_config().to_json();
  Json v_levels = doc.at("multigrid_v");
  v_levels.as_array()[0].as_array()[0].set("coarsening",
                                           std::string("octree"));
  doc.set("multigrid_v", std::move(v_levels));
  expect_miss_and_recover("badcoarsening", doc.dump(2) + "\n");
}

TEST_F(CorruptCacheTest, OutOfRangeNumberLiteral) {
  // std::stod raises std::out_of_range (not a pbmg::Error) for this
  // literal; the loader must still treat it as a miss.
  expect_miss_and_recover(
      "overflow",
      "{\"format\": \"pbmg-tuned-config-v1\", \"max_level\": 3,"
      " \"accuracies\": [1e400]}");
}

// ---------------------------------------------------- searched profiles --

TEST(SearchedConfigCache, KeyIncludesSearchSeedAndBudget) {
  const TrainerOptions options = tiny_options();
  search::ProfileSearchOptions search_options;
  search_options.base = rt::serial_profile();
  const std::string reference =
      searched_config_cache_key(options, search_options);

  search::ProfileSearchOptions changed = search_options;
  changed.seed += 1;
  EXPECT_NE(searched_config_cache_key(options, changed), reference);

  changed = search_options;
  changed.population.generations += 1;
  EXPECT_NE(searched_config_cache_key(options, changed), reference);

  changed = search_options;
  changed.population.population += 1;
  EXPECT_NE(searched_config_cache_key(options, changed), reference);

  changed = search_options;
  changed.level += 1;
  EXPECT_NE(searched_config_cache_key(options, changed), reference);

  changed = search_options;
  changed.distribution = InputDistribution::kBiased;
  EXPECT_NE(searched_config_cache_key(options, changed), reference);

  changed = search_options;
  changed.op_family = OperatorFamily::kAnisotropic;
  EXPECT_NE(searched_config_cache_key(options, changed), reference);

  changed = search_options;
  changed.relax_only = true;
  EXPECT_NE(searched_config_cache_key(options, changed), reference);

  changed = search_options;
  changed.target_accuracy *= 2;  // same decade, different target
  EXPECT_NE(searched_config_cache_key(options, changed), reference);

  changed = search_options;
  changed.max_cycles += 1;
  EXPECT_NE(searched_config_cache_key(options, changed), reference);

  // Offspring mixes with equal totals consume the RNG differently and must
  // not collide (mutants×population + immigrants would both be 9 here).
  search::ProfileSearchOptions mix_a = search_options;
  mix_a.population.population = 4;
  mix_a.population.mutants_per_elite = 2;
  mix_a.population.immigrants = 1;
  search::ProfileSearchOptions mix_b = search_options;
  mix_b.population.population = 4;
  mix_b.population.mutants_per_elite = 1;
  mix_b.population.immigrants = 5;
  EXPECT_NE(searched_config_cache_key(options, mix_a),
            searched_config_cache_key(options, mix_b));

  // Trainer-side fields still matter too.
  TrainerOptions trainer_changed = tiny_options();
  trainer_changed.seed += 1;
  EXPECT_NE(searched_config_cache_key(trainer_changed, search_options),
            reference);
}

TEST(SearchedConfigCache, SearchTrainRoundTripsThroughTheCache) {
  const auto dir = fresh_dir("pbmg_cc_searched");
  const TrainerOptions options = tiny_options();
  search::ProfileSearchOptions search_options;
  search_options.base = rt::serial_profile();
  search_options.level = 3;
  search_options.instances = 1;
  search_options.seed = 31;
  search_options.population.population = 2;
  search_options.population.mutants_per_elite = 1;
  search_options.population.immigrants = 1;
  search_options.population.generations = 1;

  bool from_cache = true;
  const SearchTrainResult first = load_or_search_train(
      options, search_options, dir.string(), &from_cache);
  EXPECT_FALSE(from_cache);
  EXPECT_EQ(first.searched.profile.name, "serial+searched");
  EXPECT_EQ(first.config.max_level(), options.max_level);

  const SearchTrainResult second = load_or_search_train(
      options, search_options, dir.string(), &from_cache);
  EXPECT_TRUE(from_cache);
  EXPECT_EQ(second.config.to_json().dump(), first.config.to_json().dump());
  EXPECT_EQ(second.searched.to_json().dump(), first.searched.to_json().dump());

  // A different search budget is a different artifact.
  search::ProfileSearchOptions bigger = search_options;
  bigger.population.generations = 2;
  EXPECT_NE(searched_config_cache_key(options, bigger),
            searched_config_cache_key(options, search_options));
  std::filesystem::remove_all(dir);
}

TEST(SearchedConfigCache, CorruptedTunablesFallBackToRetraining) {
  // Regression for the load_or_train / load_or_search_train asymmetry:
  // the searched path deserializes relaxation weights that are later
  // installed straight into an Engine, whose constructor throws for
  // out-of-range values.  A cache entry whose tunables were corrupted
  // (here: recurse_omega = 5, far outside SOR's (0,2) stability interval)
  // must therefore be validated with validate_relax_tunables at load time
  // and treated as a miss — re-search, retrain, overwrite — instead of
  // detonating at Engine construction.
  const auto dir = fresh_dir("pbmg_cc_badtunables");
  const TrainerOptions options = tiny_options();
  search::ProfileSearchOptions search_options;
  search_options.base = rt::serial_profile();
  search_options.level = 3;
  search_options.instances = 1;
  search_options.seed = 41;
  search_options.population.population = 2;
  search_options.population.mutants_per_elite = 1;
  search_options.population.immigrants = 1;
  search_options.population.generations = 1;

  bool from_cache = true;
  const SearchTrainResult first = load_or_search_train(
      options, search_options, dir.string(), &from_cache);
  ASSERT_FALSE(from_cache);

  // Corrupt only the tunables; everything else stays schema-valid.
  const auto path =
      dir / (searched_config_cache_key(options, search_options) + ".json");
  ASSERT_TRUE(std::filesystem::exists(path));
  Json doc = Json::parse(read_text_file(path.string()));
  Json searched = doc.at("searched_profile");
  searched.set("recurse_omega", 5.0);
  doc.set("searched_profile", std::move(searched));
  write_text_file(path.string(), doc.dump(2) + "\n");

  const SearchTrainResult recovered = load_or_search_train(
      options, search_options, dir.string(), &from_cache);
  EXPECT_FALSE(from_cache);  // corrupt entry read as a miss, not a crash
  EXPECT_NO_THROW(solvers::validate_relax_tunables(recovered.searched.relax));
  // An Engine accepts the recovered parameters (the whole point of
  // validating before installing).
  EXPECT_NO_THROW(
      Engine(recovered.searched.profile, recovered.searched.relax));

  // The overwritten entry is valid again and hits.
  const SearchTrainResult again = load_or_search_train(
      options, search_options, dir.string(), &from_cache);
  EXPECT_TRUE(from_cache);
  EXPECT_EQ(again.searched.to_json().dump(),
            recovered.searched.to_json().dump());
  std::filesystem::remove_all(dir);
}

TEST(SearchedConfigCache, UnrecognisedSmootherNameIsACleanMiss) {
  // A searched-profile entry whose smoother carries a name this version
  // does not know (e.g. written by a future version) must surface as a
  // clean cache miss — re-search, retrain, overwrite — and never as an
  // exception escaping load_or_search_train.
  const auto dir = fresh_dir("pbmg_cc_badsmoothername");
  const TrainerOptions options = tiny_options();
  search::ProfileSearchOptions search_options;
  search_options.base = rt::serial_profile();
  search_options.level = 3;
  search_options.instances = 1;
  search_options.seed = 43;
  search_options.population.population = 2;
  search_options.population.mutants_per_elite = 1;
  search_options.population.immigrants = 1;
  search_options.population.generations = 1;

  bool from_cache = true;
  const SearchTrainResult first = load_or_search_train(
      options, search_options, dir.string(), &from_cache);
  ASSERT_FALSE(from_cache);

  const auto path =
      dir / (searched_config_cache_key(options, search_options) + ".json");
  ASSERT_TRUE(std::filesystem::exists(path));
  const auto corrupt_field = [&](const std::string& key,
                                 const std::string& value) {
    Json doc = Json::parse(read_text_file(path.string()));
    Json searched = doc.at("searched_profile");
    searched.set(key, value);
    doc.set("searched_profile", std::move(searched));
    write_text_file(path.string(), doc.dump(2) + "\n");
  };

  corrupt_field("smoother", "warp_drive");
  SearchTrainResult recovered;
  EXPECT_NO_THROW(recovered = load_or_search_train(
                      options, search_options, dir.string(), &from_cache));
  EXPECT_FALSE(from_cache);
  EXPECT_NO_THROW(solvers::validate_relax_tunables(recovered.searched.relax));

  // Same contract for the coarsening field introduced with Galerkin RAP.
  corrupt_field("coarsening", "octree");
  EXPECT_NO_THROW(recovered = load_or_search_train(
                      options, search_options, dir.string(), &from_cache));
  EXPECT_FALSE(from_cache);

  const SearchTrainResult again = load_or_search_train(
      options, search_options, dir.string(), &from_cache);
  EXPECT_TRUE(from_cache);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace pbmg::tune
