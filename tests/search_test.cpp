// Tests for the population-based runtime-parameter search (src/search/):
// parameter-space construction/mutation/serialization, candidate testing
// with early-abandon and timeout pruning, the deterministic elitist
// population engine, and the concrete machine-profile search wiring.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "grid/grid_ops.h"
#include "grid/level.h"
#include "grid/packed_kernels.h"
#include "grid/problem.h"
#include "runtime/scheduler.h"
#include "search/candidate_tester.h"
#include "search/param_space.h"
#include "search/population.h"
#include "search/profile_search.h"
#include "solvers/direct.h"
#include "solvers/line_relax.h"
#include "solvers/relax.h"
#include "support/rng.h"
#include "support/timer.h"

namespace pbmg::search {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

ParamSpace toy_space() {
  ParamSpace space;
  space.add_int("a", 0, 64, 32)
      .add_log_int("g", 1, 256, 8)
      .add_float("w", 0.0, 2.0, 1.0)
      .add_categorical("c", {"x", "y", "z"}, 0);
  return space;
}

rt::Scheduler& serial_sched() {
  static rt::Scheduler instance(rt::serial_profile());
  return instance;
}

std::vector<tune::TrainingInstance> tiny_instances(int count = 1) {
  Rng rng(42);
  std::vector<tune::TrainingInstance> instances;
  for (int i = 0; i < count; ++i) {
    instances.push_back(tune::make_training_instance(
        5, InputDistribution::kUnbiased, rng, serial_sched()));
  }
  return instances;
}

// ----------------------------------------------------------- param space --

TEST(ParamSpace, BuildersValidate) {
  ParamSpace space;
  EXPECT_THROW(space.add_int("a", 5, 4, 5), InvalidArgument);       // empty
  EXPECT_THROW(space.add_int("a", 0, 4, 9), InvalidArgument);       // default
  EXPECT_THROW(space.add_log_int("a", 0, 4, 1), InvalidArgument);   // lo < 1
  EXPECT_THROW(space.add_categorical("a", {}, 0), InvalidArgument); // empty
  space.add_int("a", 0, 4, 2);
  EXPECT_THROW(space.add_float("a", 0, 1, 0), InvalidArgument);     // dup name
  EXPECT_EQ(space.size(), 1);
  EXPECT_EQ(space.index_of("a"), 0);
  EXPECT_THROW(space.index_of("nope"), InvalidArgument);
}

TEST(ParamSpace, DefaultsAndTypedAccessors) {
  const ParamSpace space = toy_space();
  const Candidate def = space.default_candidate();
  EXPECT_EQ(space.int_value(def, "a"), 32);
  EXPECT_EQ(space.int_value(def, "g"), 8);
  EXPECT_DOUBLE_EQ(space.float_value(def, "w"), 1.0);
  EXPECT_EQ(space.categorical_value(def, "c"), "x");
  EXPECT_THROW(space.float_value(def, "a"), InvalidArgument);  // kind mismatch
  EXPECT_THROW(space.int_value(def, "w"), InvalidArgument);
  EXPECT_THROW(space.categorical_value(def, "a"), InvalidArgument);
}

TEST(ParamSpace, RandomAndMutatedStayInBounds) {
  const ParamSpace space = toy_space();
  Rng rng(7);
  Candidate current = space.default_candidate();
  for (int i = 0; i < 500; ++i) {
    const Candidate c =
        (i % 2 == 0) ? space.random_candidate(rng) : space.mutated(current, rng);
    ASSERT_EQ(c.values.size(), static_cast<std::size_t>(space.size()));
    for (int d = 0; d < space.size(); ++d) {
      const Dimension& dim = space.dimensions()[static_cast<std::size_t>(d)];
      ASSERT_GE(c.values[static_cast<std::size_t>(d)], dim.lo) << dim.name;
      ASSERT_LE(c.values[static_cast<std::size_t>(d)], dim.hi) << dim.name;
      if (dim.kind != DimKind::kFloat) {
        ASSERT_EQ(c.values[static_cast<std::size_t>(d)],
                  std::round(c.values[static_cast<std::size_t>(d)]))
            << dim.name << " must stay integral";
      }
    }
    current = c;
  }
}

TEST(ParamSpace, MutationChangesExactlyOneDimension) {
  const ParamSpace space = toy_space();
  Rng rng(11);
  const Candidate base = space.default_candidate();
  for (int i = 0; i < 100; ++i) {
    const Candidate m = space.mutated(base, rng);
    int changed = 0;
    for (std::size_t d = 0; d < base.values.size(); ++d) {
      if (m.values[d] != base.values[d]) ++changed;
    }
    ASSERT_LE(changed, 1);
  }
}

TEST(ParamSpace, MutationIsDeterministicInSeed) {
  const ParamSpace space = toy_space();
  Rng a(99), b(99);
  Candidate ca = space.default_candidate();
  Candidate cb = space.default_candidate();
  for (int i = 0; i < 50; ++i) {
    ca = space.mutated(ca, a);
    cb = space.mutated(cb, b);
    ASSERT_EQ(ca.values, cb.values);
  }
}

TEST(ParamSpace, JsonRoundTrip) {
  const ParamSpace space = toy_space();
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const Candidate c = space.random_candidate(rng);
    const Candidate back = space.from_json(space.to_json(c));
    EXPECT_EQ(back.values, c.values);
  }
  // Missing keys fall back to defaults; unknown keys are ignored.
  Json partial = Json::object();
  partial.set("a", 7);
  partial.set("not_a_dimension", 1.5);
  const Candidate c = space.from_json(partial);
  EXPECT_EQ(space.int_value(c, "a"), 7);
  EXPECT_EQ(space.int_value(c, "g"), 8);
  // Unknown categorical labels are rejected, not silently defaulted.
  Json bad = Json::object();
  bad.set("c", "not-a-label");
  EXPECT_THROW(space.from_json(bad), ConfigError);
}

TEST(ParamSpace, DescribeAndFingerprint) {
  const ParamSpace space = toy_space();
  const Candidate def = space.default_candidate();
  const std::string desc = space.describe(def);
  EXPECT_NE(desc.find("a=32"), std::string::npos);
  EXPECT_NE(desc.find("c=x"), std::string::npos);
  Candidate other = def;
  other.values[0] = 33;
  EXPECT_NE(space.fingerprint(def), space.fingerprint(other));
  EXPECT_EQ(space.fingerprint(def), space.fingerprint(def));
}

// ------------------------------------------------------ candidate tester --

TEST(CandidateTester, AveragesOverInstances) {
  const ParamSpace space = toy_space();
  CandidateTester tester(
      space,
      [&](const Candidate& c, const tune::TrainingInstance&, const Deadline&) {
        return 0.25 + 0.001 * space.float_value(c, "w");
      },
      tiny_instances(2));
  const TestResult r = tester.test(space.default_candidate());
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.instances_run, 2);
  EXPECT_NEAR(r.total_seconds, 2 * (0.25 + 0.001), 1e-12);
  EXPECT_NEAR(r.mean_seconds, 0.25 + 0.001, 1e-12);
  EXPECT_EQ(tester.evaluations(), 2);
}

TEST(CandidateTester, EarlyAbandonsAgainstIncumbent) {
  const ParamSpace space = toy_space();
  int calls = 0;
  CandidateTester tester(
      space,
      [&](const Candidate&, const tune::TrainingInstance&, const Deadline&) {
        ++calls;
        return 1.0;
      },
      tiny_instances(3));
  // Incumbent total 0.1 ⇒ budget ≈ 0.2; the first instance alone blows it.
  const TestResult r = tester.test(space.default_candidate(), 0.1);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.instances_run, 1);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(r.total_seconds, kInf);
  // Without an incumbent the same candidate completes.
  const TestResult full = tester.test(space.default_candidate());
  EXPECT_TRUE(full.completed);
  EXPECT_EQ(full.instances_run, 3);
}

TEST(CandidateTester, InfiniteCostMeansFailure) {
  const ParamSpace space = toy_space();
  CandidateTester tester(
      space,
      [](const Candidate&, const tune::TrainingInstance&, const Deadline&) {
        return kInf;
      },
      tiny_instances(2));
  const TestResult r = tester.test(space.default_candidate());
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.instances_run, 1);
}

TEST(CandidateTester, TimeoutStopsBetweenInstances) {
  const ParamSpace space = toy_space();
  TesterOptions options;
  options.timeout_seconds = 1e-9;  // expired before the first check
  CandidateTester tester(
      space,
      [](const Candidate&, const tune::TrainingInstance&, const Deadline&) {
        return 0.001;
      },
      tiny_instances(3), options);
  const TestResult r = tester.test(space.default_candidate());
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.instances_run, 1);
}

// ---------------------------------------------------- population search --

/// Deterministic synthetic objective with a known optimum, computed
/// through a 1-worker scheduler so floating-point reduction order is fixed.
double synthetic_cost(const ParamSpace& space, const Candidate& c) {
  const double a = static_cast<double>(space.int_value(c, "a"));
  const double g = static_cast<double>(space.int_value(c, "g"));
  const double w = space.float_value(c, "w");
  const std::string& label = space.categorical_value(c, "c");
  const double base = serial_sched().parallel_reduce_sum(
      0, 8, 8, [&](std::int64_t lo, std::int64_t hi) {
        double s = 0.0;
        for (std::int64_t i = lo; i < hi; ++i) {
          s += (a - 17.0) * (a - 17.0) / 4096.0 +
               (std::log2(g) - 5.0) * (std::log2(g) - 5.0) / 64.0 +
               (w - 1.3) * (w - 1.3);
        }
        return s;
      });
  return 1e-3 * (1.0 + base) + (label == "y" ? 0.0 : 1e-4);
}

PopulationOptions fast_population_options(std::uint64_t seed = 20091114) {
  PopulationOptions options;
  options.population = 4;
  options.mutants_per_elite = 2;
  options.immigrants = 1;
  options.generations = 12;
  options.seed = seed;
  return options;
}

TEST(PopulationSearch, ImprovesOnTheDefault) {
  const ParamSpace space = toy_space();
  CandidateTester tester(
      space,
      [&](const Candidate& c, const tune::TrainingInstance&, const Deadline&) {
        return synthetic_cost(space, c);
      },
      tiny_instances(1));
  PopulationSearch engine(space, tester, fast_population_options());
  const SearchResult result = engine.run();
  const double default_cost =
      synthetic_cost(space, space.default_candidate());
  EXPECT_LT(result.best.total_seconds, default_cost);
  EXPECT_NEAR(result.default_total_seconds, default_cost, 1e-12);
  EXPECT_GT(result.evaluations, 0);
  EXPECT_EQ(result.generations_run, 12);
  EXPECT_EQ(result.best_history.size(), 12u);
  // History is monotonically non-increasing (elitism never loses ground).
  for (std::size_t i = 1; i < result.best_history.size(); ++i) {
    EXPECT_LE(result.best_history[i], result.best_history[i - 1]);
  }
}

/// Satellite contract: a fixed seed returns an identical best candidate
/// across two runs on a 1-thread scheduler.
TEST(PopulationSearch, DeterministicBestWithFixedSeed) {
  const ParamSpace space = toy_space();
  const auto run_once = [&] {
    CandidateTester tester(
        space,
        [&](const Candidate& c, const tune::TrainingInstance&,
            const Deadline&) { return synthetic_cost(space, c); },
        tiny_instances(1));
    PopulationSearch engine(space, tester, fast_population_options(777));
    return engine.run();
  };
  const SearchResult first = run_once();
  const SearchResult second = run_once();
  EXPECT_EQ(first.best.candidate.values, second.best.candidate.values);
  EXPECT_EQ(first.best.total_seconds, second.best.total_seconds);
  EXPECT_EQ(first.evaluations, second.evaluations);
  EXPECT_EQ(first.best_history, second.best_history);
}

TEST(PopulationSearch, RecoversWhenOnlyOneCategoricalValueIsFeasible) {
  // Regression for the smoother choice dimension: a categorical axis can
  // make most of the space infeasible on a given workload (only the
  // alternating-zebra smoother converges on the rotated-anisotropy
  // family), and the default plus the random seed round may then be
  // all-DNF.  The search must keep racing immigrants until it finds the
  // feasible region instead of throwing after the seed round.
  const ParamSpace space = toy_space();  // default "c" label is "x"
  CandidateTester tester(
      space,
      [&](const Candidate& c, const tune::TrainingInstance&,
          const Deadline&) {
        // Feasible only at the non-default label "z"; faster for small a.
        if (space.categorical_value(c, "c") != "z") return kInf;
        return 1e-4 + 1e-6 * static_cast<double>(space.int_value(c, "a"));
      },
      tiny_instances(1));
  PopulationOptions options = fast_population_options(7);
  PopulationSearch engine(space, tester, options);
  const SearchResult result = engine.run();
  EXPECT_EQ(space.categorical_value(result.best.candidate, "c"), "z");
  EXPECT_TRUE(std::isinf(result.default_total_seconds));
  EXPECT_TRUE(std::isfinite(result.best.total_seconds));
}

TEST(PopulationSearch, ThrowsWhenNothingCompletes) {
  const ParamSpace space = toy_space();
  CandidateTester tester(
      space,
      [](const Candidate&, const tune::TrainingInstance&, const Deadline&) {
        return kInf;
      },
      tiny_instances(1));
  PopulationSearch engine(space, tester, fast_population_options());
  EXPECT_THROW(engine.run(), NumericalError);
}

// ------------------------------------------------------- profile search --

TEST(ProfileSearch, SpaceDefaultsReproduceTheBaseProfile) {
  rt::MachineProfile base;
  base.threads = 2;
  base.grain_rows = 16;
  base.sequential_cutoff_cells = 4096;
  const ParamSpace space = make_profile_space(base);
  const RuntimeParams params =
      decode_runtime_params(space, space.default_candidate(), base);
  EXPECT_EQ(params.profile.threads, base.threads);
  EXPECT_EQ(params.profile.grain_rows, base.grain_rows);
  EXPECT_EQ(params.profile.sequential_cutoff_cells,
            base.sequential_cutoff_cells);
  EXPECT_DOUBLE_EQ(params.relax.recurse_omega, solvers::kRecurseOmega);
  EXPECT_DOUBLE_EQ(params.relax.omega_scale, 1.0);
  EXPECT_EQ(params.relax.kernels.layout, grid::StencilLayout::kLegacy);
  EXPECT_EQ(params.relax.kernels.simd_width, 1);
}

TEST(ProfileSearch, KernelPolicyAxesAreSearchedEvenRelaxOnly) {
  // The layout / simd_width axes ride in the relaxation group (like the
  // smoother and coarsening axes): a relax_only space must still race
  // them, and their decoded values must land in RelaxTunables::kernels.
  const rt::MachineProfile base;
  for (const bool machine : {true, false}) {
    const ParamSpace space = make_profile_space(base, machine);
    Candidate candidate = space.default_candidate();
    const auto index_of = [&](const std::string& name) {
      const auto& dims = space.dimensions();
      for (std::size_t d = 0; d < dims.size(); ++d) {
        if (dims[d].name == name) return d;
      }
      ADD_FAILURE() << "missing dimension " << name
                    << " (machine=" << machine << ")";
      return std::size_t{0};
    };
    candidate.values[index_of("layout")] = 1.0;      // "packed"
    candidate.values[index_of("simd_width")] = 2.0;  // "4"
    const RuntimeParams params = decode_runtime_params(space, candidate, base);
    EXPECT_EQ(params.relax.kernels.layout, grid::StencilLayout::kPacked);
    EXPECT_EQ(params.relax.kernels.simd_width, 4);
  }
}

TEST(ProfileSearch, ProfileTunablesRoundTripThroughWithTunable) {
  const rt::MachineProfile base;
  for (const rt::ProfileTunable& t : rt::profile_tunables(base)) {
    const rt::MachineProfile p = rt::with_tunable(base, t.name, t.hi);
    EXPECT_NE(rt::profile_to_json(p).dump(),
              rt::profile_to_json(rt::with_tunable(base, t.name, t.lo)).dump())
        << t.name;
  }
  EXPECT_THROW(rt::with_tunable(base, "spawn_overhead_ns", 1), InvalidArgument);
}

TEST(ProfileSearch, SearchedProfileJsonRoundTrip) {
  SearchedProfile sp;
  sp.profile = rt::barcelona_profile();
  sp.profile.name = "barcelona+searched";
  sp.relax.recurse_omega = 1.21;
  sp.relax.omega_scale = 0.95;
  sp.default_seconds = 0.5;
  sp.searched_seconds = 0.25;
  sp.evaluations = 17;
  sp.seed = 1234;
  sp.generations = 4;
  sp.population = 3;
  sp.relax.kernels.layout = grid::StencilLayout::kPacked;
  sp.relax.kernels.simd_width = 4;
  const SearchedProfile back = SearchedProfile::from_json(sp.to_json());
  EXPECT_EQ(back.profile.name, sp.profile.name);
  EXPECT_EQ(back.profile.threads, sp.profile.threads);
  EXPECT_EQ(back.profile.grain_rows, sp.profile.grain_rows);
  EXPECT_EQ(back.profile.sequential_cutoff_cells,
            sp.profile.sequential_cutoff_cells);
  EXPECT_DOUBLE_EQ(back.relax.recurse_omega, sp.relax.recurse_omega);
  EXPECT_DOUBLE_EQ(back.relax.omega_scale, sp.relax.omega_scale);
  EXPECT_EQ(back.seed, sp.seed);
  EXPECT_EQ(back.generations, sp.generations);
  EXPECT_EQ(back.population, sp.population);
  EXPECT_EQ(back.relax.kernels.layout, grid::StencilLayout::kPacked);
  EXPECT_EQ(back.relax.kernels.simd_width, 4);
  // Out-of-range relax weights are rejected on load.
  Json bad = sp.to_json();
  bad.set("recurse_omega", 2.5);
  EXPECT_THROW(SearchedProfile::from_json(bad), ConfigError);
  // Documents from before the kernel-policy axes read as legacy scalar
  // kernels; invalid widths are rejected like any bad relax field.
  Json old = sp.to_json();
  old.as_object().erase("layout");
  old.as_object().erase("simd_width");
  const SearchedProfile migrated = SearchedProfile::from_json(old);
  EXPECT_EQ(migrated.relax.kernels.layout, grid::StencilLayout::kLegacy);
  EXPECT_EQ(migrated.relax.kernels.simd_width, 1);
  Json bad_width = sp.to_json();
  bad_width.set("simd_width", std::int64_t{3});
  EXPECT_THROW(SearchedProfile::from_json(bad_width), ConfigError);
}

TEST(ProfileSearch, EndToEndOnATinyWorkload) {
  search::ProfileSearchOptions options;
  options.base = rt::serial_profile();
  options.base.name = "serial";
  options.level = 3;  // N = 9: each evaluation is sub-millisecond
  options.instances = 1;
  options.seed = 5;
  options.population.population = 2;
  options.population.mutants_per_elite = 1;
  options.population.immigrants = 1;
  options.population.generations = 2;
  const SearchedProfile searched = search_profile(options);
  EXPECT_EQ(searched.profile.name, "serial+searched");
  // The default candidate is always raced first, so the winner can never
  // be slower than the un-searched configuration.
  EXPECT_LE(searched.searched_seconds, searched.default_seconds);
  EXPECT_GT(searched.evaluations, 0);
  EXPECT_GT(searched.relax.recurse_omega, 0.0);
  EXPECT_LT(searched.relax.recurse_omega, 2.0);
}

// ------------------------------------------------ packed-layout discovery --

/// The ISSUE-7 contract, mirroring the trainer's line-smoother discovery
/// (tune_test's DiscoversLineSmootherAtExtremeAnisotropy): the layout /
/// simd_width axes exist so the *search* can pick the packed SoA kernels
/// where they pay — the fig20-class 9-point operators whose legacy sweeps
/// stream nine separate coefficient grids.  The two arms are bitwise
/// identical, so the outcome is decided purely by measured time; that
/// makes the test machine-dependent by construction, and it calibrates
/// the arms head-to-head first — when this machine shows no clear
/// separation there is nothing to discover and the test skips rather
/// than flakes.
TEST(ProfileSearch, DiscoversPackedLayoutOnNinePointWork) {
#ifdef PBMG_SANITIZER_BUILD
  // At -O1 under sanitizer instrumentation the search objective is
  // dominated by check overhead, not kernel memory traffic, so the raw
  // sweep calibration below no longer predicts what the search measures
  // inside full solves — the contract only holds under release codegen.
  GTEST_SKIP() << "timing contract requires release codegen";
#endif
  const int level = 6;
  const int n = size_of_level(level);
  const OperatorFamily family = OperatorFamily::kAnisoTheta30;
  const grid::StencilOp op = make_operator(n, family);
  op.packed();  // prewarm: keep the one-time pack out of both arms
  Engine eng(rt::MachineProfile{});
  rt::Scheduler& sched = eng.scheduler();

  grid::KernelPolicy packed;
  packed.layout = grid::StencilLayout::kPacked;
  packed.simd_width = grid::clamp_simd_width(4);

  // The workload mix the profile search times on this family: residual
  // formation plus point-SOR and zebra smoothing.  Best-of-3 batches so
  // one scheduling hiccup cannot decide an arm.
  const auto time_arm = [&](const grid::KernelPolicy& k) {
    Rng rng(0xCA11B);
    Grid2D x(n, 0.0);
    Grid2D b(n, 0.0);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        x(i, j) = rng.uniform(-1.0, 1.0);
        b(i, j) = rng.uniform(-1.0, 1.0);
      }
    }
    Grid2D r(n, 0.0);
    double best = kInf;
    for (int batch = 0; batch < 3; ++batch) {
      const double t0 = now_seconds();
      for (int rep = 0; rep < 10; ++rep) {
        grid::residual_op(op, x, b, r, sched, k);
        solvers::sor_sweep(op, x, b, 1.15, sched, k);
        solvers::line_relax_sweep(op, x, b,
                                  solvers::RelaxKind::kLineZebraAlt, sched,
                                  eng.scratch(), k);
      }
      best = std::min(best, now_seconds() - t0);
    }
    return best;
  };
  time_arm(grid::KernelPolicy{});  // warm caches/pools before either arm
  const double legacy_seconds = time_arm(grid::KernelPolicy{});
  const double packed_seconds = time_arm(packed);
  const bool packed_faster = packed_seconds * 1.2 < legacy_seconds;
  const bool legacy_faster = legacy_seconds * 1.2 < packed_seconds;
  if (!packed_faster && !legacy_faster) {
    GTEST_SKIP() << "arms within noise on this machine: legacy "
                 << legacy_seconds * 1e3 << " ms vs packed "
                 << packed_seconds * 1e3 << " ms";
  }

  ProfileSearchOptions options;
  options.base = rt::MachineProfile{};
  options.base.name = "packed-discovery";
  options.level = level;
  options.op_family = family;
  options.relax_only = true;  // the layout axis rides in the relax group
  options.target_accuracy = 1e3;
  options.max_cycles = 40;
  options.instances = 1;
  options.seed = 7;
  options.population.population = 4;
  options.population.mutants_per_elite = 2;
  options.population.immigrants = 2;
  options.population.generations = 3;
  const SearchedProfile searched = search_profile(options);
  EXPECT_EQ(searched.relax.kernels.layout,
            packed_faster ? grid::StencilLayout::kPacked
                          : grid::StencilLayout::kLegacy)
      << "calibration said legacy " << legacy_seconds * 1e3
      << " ms vs packed " << packed_seconds * 1e3 << " ms";
}

}  // namespace
}  // namespace pbmg::search
