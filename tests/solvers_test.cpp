// Tests for the solver layer: relaxation kernels, the cached/uncached
// direct solver, V-cycles, full multigrid, and the reference
// iterate-until-converged drivers the paper benchmarks against.

#include <cmath>

#include <gtest/gtest.h>

#include "fft/fast_poisson.h"
#include "grid/grid_ops.h"
#include "grid/scratch.h"
#include "grid/level.h"
#include "grid/problem.h"
#include "runtime/scheduler.h"
#include "solvers/direct.h"
#include "solvers/multigrid.h"
#include "solvers/relax.h"
#include "support/rng.h"

namespace pbmg::solvers {
namespace {

rt::Scheduler& sched() {
  static rt::Scheduler instance([] {
    rt::MachineProfile p;
    p.name = "solver-test";
    p.threads = 4;
    p.grain_rows = 4;
    return p;
  }());
  return instance;
}

/// Error of x against the exact discrete solution of (b, boundary-of-x0).
double solution_error(const PoissonProblem& problem, const Grid2D& x) {
  fft::FastPoissonSolver oracle(problem.n());
  Grid2D x_opt(problem.n(), 0.0);
  oracle.solve(problem.b, problem.x0, x_opt, sched());
  return grid::norm2_diff_interior(x, x_opt, sched());
}

grid::ScratchPool& pool() {
  static grid::ScratchPool instance;
  return instance;
}

PoissonProblem test_problem(int n, std::uint64_t seed,
                            InputDistribution dist = InputDistribution::kUnbiased) {
  Rng rng(seed);
  return make_problem(n, dist, rng);
}

// ---------------------------------------------------------------- relax --

TEST(Relax, OmegaOptFormula) {
  // ω = 2/(1 + sin(πh)).
  EXPECT_NEAR(omega_opt(3), 2.0 / (1.0 + std::sin(M_PI / 2)), 1e-12);
  EXPECT_NEAR(omega_opt(65), 2.0 / (1.0 + std::sin(M_PI / 64)), 1e-12);
  EXPECT_GT(omega_opt(1025), 1.9);  // approaches 2 as h → 0
  EXPECT_THROW(omega_opt(2), InvalidArgument);
}

TEST(Relax, SorSweepReducesError) {
  auto problem = test_problem(33, 11);
  Grid2D x = problem.x0;
  const double e0 = solution_error(problem, x);
  for (int s = 0; s < 10; ++s) sor_sweep(x, problem.b, omega_opt(33), sched());
  EXPECT_LT(solution_error(problem, x), e0);
}

TEST(Relax, SorConvergesToExactSolution) {
  auto problem = test_problem(9, 12);
  Grid2D x = problem.x0;
  const double e0 = solution_error(problem, x);
  for (int s = 0; s < 300; ++s) sor_sweep(x, problem.b, omega_opt(9), sched());
  EXPECT_LT(solution_error(problem, x), 1e-9 * e0);
}

TEST(Relax, SorWithOptimalOmegaBeatsGaussSeidel) {
  auto problem = test_problem(33, 13);
  Grid2D x_opt_w = problem.x0;
  Grid2D x_gs = problem.x0;
  for (int s = 0; s < 60; ++s) {
    sor_sweep(x_opt_w, problem.b, omega_opt(33), sched());
    sor_sweep(x_gs, problem.b, 1.0, sched());
  }
  EXPECT_LT(solution_error(problem, x_opt_w), solution_error(problem, x_gs));
}

TEST(Relax, SorPreservesBoundary) {
  auto problem = test_problem(17, 14);
  Grid2D x = problem.x0;
  sor_sweep(x, problem.b, 1.15, sched());
  for (int j = 0; j < 17; ++j) {
    ASSERT_EQ(x(0, j), problem.x0(0, j));
    ASSERT_EQ(x(16, j), problem.x0(16, j));
  }
}

TEST(Relax, JacobiSweepReducesErrorAndPreservesBoundary) {
  auto problem = test_problem(17, 15);
  Grid2D x = problem.x0;
  Grid2D scratch(17, 0.0);
  const double e0 = solution_error(problem, x);
  for (int s = 0; s < 40; ++s) {
    jacobi_sweep(x, problem.b, kJacobiOmega, scratch, sched());
  }
  EXPECT_LT(solution_error(problem, x), e0);
  for (int i = 0; i < 17; ++i) {
    ASSERT_EQ(x(i, 0), problem.x0(i, 0));
    ASSERT_EQ(x(i, 16), problem.x0(i, 16));
  }
}

TEST(Relax, SorBeatsJacobiPerSweep) {
  // The paper picked SOR over weighted Jacobi on its training data; verify
  // the same ordering here for equal sweep counts.
  auto problem = test_problem(33, 16);
  Grid2D x_sor = problem.x0;
  Grid2D x_jac = problem.x0;
  Grid2D scratch(33, 0.0);
  for (int s = 0; s < 30; ++s) {
    sor_sweep(x_sor, problem.b, omega_opt(33), sched());
    jacobi_sweep(x_jac, problem.b, kJacobiOmega, scratch, sched());
  }
  EXPECT_LT(solution_error(problem, x_sor), solution_error(problem, x_jac));
}

TEST(Relax, InputValidation) {
  Grid2D x(9, 0.0), b(17, 0.0), scratch(9, 0.0);
  EXPECT_THROW(sor_sweep(x, b, 1.0, sched()), InvalidArgument);
  EXPECT_THROW(jacobi_sweep(x, b, 1.0, scratch, sched()), InvalidArgument);
  Grid2D bad(8, 0.0);
  EXPECT_THROW(sor_sweep(bad, bad, 1.0, sched()), InvalidArgument);
}

// --------------------------------------------------------------- direct --

TEST(Direct, SolvesExactlyAtAllSmallSizes) {
  DirectSolver direct;
  for (int n : {3, 5, 9, 17, 33, 65}) {
    auto problem = test_problem(n, 20 + static_cast<std::uint64_t>(n));
    Grid2D x = problem.x0;
    direct.solve(problem.b, x);
    const double e0 = grid::norm2_interior(problem.b, sched()) + 1.0;
    EXPECT_LE(solution_error(problem, x) / e0, 1e-10) << "n=" << n;
  }
}

TEST(Direct, CacheModesBothCorrectAndCacheObservable) {
  DirectSolver uncached(0);
  DirectSolver cached(64);
  auto problem = test_problem(17, 33);
  Grid2D xa = problem.x0;
  Grid2D xb = problem.x0;
  uncached.solve(problem.b, xa);
  cached.solve(problem.b, xb);
  EXPECT_EQ(uncached.cached_sizes(), 0u);
  EXPECT_EQ(cached.cached_sizes(), 1u);
  for (int i = 0; i < 17; ++i) {
    for (int j = 0; j < 17; ++j) {
      ASSERT_DOUBLE_EQ(xa(i, j), xb(i, j));
    }
  }
  cached.clear_cache();
  EXPECT_EQ(cached.cached_sizes(), 0u);
}

TEST(Direct, CacheRespectsSizeLimit) {
  DirectSolver solver(16);  // caches n <= 16 only
  auto small = test_problem(9, 41);
  auto large = test_problem(33, 42);
  Grid2D xs = small.x0;
  Grid2D xl = large.x0;
  solver.solve(small.b, xs);
  solver.solve(large.b, xl);
  EXPECT_EQ(solver.cached_sizes(), 1u);
}

TEST(Direct, ValidatesInputSizes) {
  DirectSolver direct;
  Grid2D b(9, 0.0), x(17, 0.0);
  EXPECT_THROW(direct.solve(b, x), InvalidArgument);
  Grid2D bad(6, 0.0);
  EXPECT_THROW(direct.solve(bad, bad), InvalidArgument);
}

// ------------------------------------------------------------- multigrid --

TEST(Multigrid, VCycleContractsErrorQuickly) {
  auto problem = test_problem(65, 50);
  Grid2D x = problem.x0;
  DirectSolver direct;
  const double e0 = solution_error(problem, x);
  vcycle(x, problem.b, VCycleOptions{}, sched(), direct, pool());
  const double e1 = solution_error(problem, x);
  // A 1-pre/1-post SOR(1.15) V-cycle contracts 2-D Poisson error by well
  // over 2× per cycle; typical factors are ~10×.
  EXPECT_LT(e1, 0.5 * e0);
  vcycle(x, problem.b, VCycleOptions{}, sched(), direct, pool());
  EXPECT_LT(solution_error(problem, x), 0.5 * e1);
}

TEST(Multigrid, VCycleConvergesToHighAccuracy) {
  auto problem = test_problem(33, 51, InputDistribution::kBiased);
  Grid2D x = problem.x0;
  DirectSolver direct;
  const double e0 = solution_error(problem, x);
  for (int c = 0; c < 30; ++c) {
    vcycle(x, problem.b, VCycleOptions{}, sched(), direct, pool());
  }
  EXPECT_LT(solution_error(problem, x), 1e-9 * e0);
}

TEST(Multigrid, DeeperDirectLevelStillConverges) {
  auto problem = test_problem(33, 52);
  DirectSolver direct;
  for (int direct_level : {1, 2, 3}) {
    Grid2D x = problem.x0;
    VCycleOptions options;
    options.direct_level = direct_level;
    const double e0 = solution_error(problem, x);
    for (int c = 0; c < 10; ++c) {
      vcycle(x, problem.b, options, sched(), direct, pool());
    }
    EXPECT_LT(solution_error(problem, x), 1e-4 * e0)
        << "direct_level=" << direct_level;
  }
}

TEST(Multigrid, MorePreSmoothingContractsFasterPerCycle) {
  auto problem = test_problem(65, 53);
  DirectSolver direct;
  VCycleOptions one;
  VCycleOptions three;
  three.pre_relax = 3;
  three.post_relax = 3;
  Grid2D x1 = problem.x0;
  Grid2D x3 = problem.x0;
  vcycle(x1, problem.b, one, sched(), direct, pool());
  vcycle(x3, problem.b, three, sched(), direct, pool());
  EXPECT_LT(solution_error(problem, x3), solution_error(problem, x1));
}

TEST(Multigrid, FullMultigridPassContractsStrongly) {
  // A single FMG pass (coarse estimate + one V-cycle per level) must
  // contract the initial error substantially on both input distributions.
  for (auto dist :
       {InputDistribution::kUnbiased, InputDistribution::kBiased}) {
    auto problem = test_problem(65, 54, dist);
    DirectSolver direct;
    Grid2D x = problem.x0;
    const double e0 = solution_error(problem, x);
    full_multigrid(x, problem.b, VCycleOptions{}, sched(), direct, pool());
    EXPECT_LT(solution_error(problem, x), 0.2 * e0)
        << "distribution " << to_string(dist);
  }
}

TEST(Multigrid, FullMultigridReachesTruncationLevelAccuracy) {
  // One FMG pass classically reduces the algebraic error to the order of
  // discretisation error; for our metric expect a large reduction factor.
  auto problem = test_problem(129, 55);
  DirectSolver direct;
  Grid2D x = problem.x0;
  const double e0 = solution_error(problem, x);
  full_multigrid(x, problem.b, VCycleOptions{}, sched(), direct, pool());
  EXPECT_LT(solution_error(problem, x), 0.05 * e0);
}

TEST(Multigrid, BaseCaseGridIsSolvedDirectly) {
  auto problem = test_problem(3, 56);
  DirectSolver direct;
  Grid2D x = problem.x0;
  vcycle(x, problem.b, VCycleOptions{}, sched(), direct, pool());
  EXPECT_LE(solution_error(problem, x),
            1e-10 * (grid::norm2_interior(problem.b, sched()) + 1.0));
}

TEST(Multigrid, SizeMismatchThrows) {
  Grid2D x(9, 0.0), b(17, 0.0);
  DirectSolver direct;
  EXPECT_THROW(vcycle(x, b, VCycleOptions{}, sched(), direct, pool()),
               InvalidArgument);
  EXPECT_THROW(full_multigrid(x, b, VCycleOptions{}, sched(), direct, pool()),
               InvalidArgument);
}

// ------------------------------------------------------------ reference --

TEST(Reference, IteratedSorStopsAtPredicate) {
  auto problem = test_problem(17, 60);
  fft::FastPoissonSolver oracle(17);
  Grid2D x_opt(17, 0.0);
  oracle.solve(problem.b, problem.x0, x_opt, sched());
  const double e0 = grid::norm2_diff_interior(problem.x0, x_opt, sched());

  Grid2D x = problem.x0;
  const auto outcome = solve_iterated_sor(
      x, problem.b, omega_opt(17), 100000,
      [&](const Grid2D& state, int) {
        return e0 / grid::norm2_diff_interior(state, x_opt, sched()) >= 1e3;
      },
      sched());
  EXPECT_TRUE(outcome.converged);
  EXPECT_GT(outcome.iterations, 1);
  EXPECT_GE(e0 / grid::norm2_diff_interior(x, x_opt, sched()), 1e3);
}

TEST(Reference, IteratedSorReportsNonConvergence) {
  auto problem = test_problem(33, 61);
  Grid2D x = problem.x0;
  const auto outcome = solve_iterated_sor(
      x, problem.b, omega_opt(33), 3,
      [](const Grid2D&, int) { return false; }, sched());
  EXPECT_FALSE(outcome.converged);
  EXPECT_EQ(outcome.iterations, 3);
}

TEST(Reference, VCycleDriverConvergesToTarget) {
  auto problem = test_problem(65, 62);
  fft::FastPoissonSolver oracle(65);
  Grid2D x_opt(65, 0.0);
  oracle.solve(problem.b, problem.x0, x_opt, sched());
  const double e0 = grid::norm2_diff_interior(problem.x0, x_opt, sched());
  DirectSolver direct;
  Grid2D x = problem.x0;
  const auto outcome = solve_reference_v(
      x, problem.b, VCycleOptions{}, 200,
      [&](const Grid2D& state, int) {
        return e0 / grid::norm2_diff_interior(state, x_opt, sched()) >= 1e9;
      },
      sched(), direct, pool());
  EXPECT_TRUE(outcome.converged);
  EXPECT_LT(outcome.iterations, 40);
}

TEST(Reference, FmgDriverNeedsNoMoreCyclesThanV) {
  auto problem = test_problem(65, 63, InputDistribution::kBiased);
  fft::FastPoissonSolver oracle(65);
  Grid2D x_opt(65, 0.0);
  oracle.solve(problem.b, problem.x0, x_opt, sched());
  const double e0 = grid::norm2_diff_interior(problem.x0, x_opt, sched());
  DirectSolver direct;
  const auto stop = [&](const Grid2D& state, int) {
    return e0 / grid::norm2_diff_interior(state, x_opt, sched()) >= 1e5;
  };
  Grid2D xv = problem.x0;
  const auto v = solve_reference_v(xv, problem.b, VCycleOptions{}, 200, stop,
                                   sched(), direct, pool());
  Grid2D xf = problem.x0;
  const auto f = solve_reference_fmg(xf, problem.b, VCycleOptions{}, 200,
                                     stop, sched(), direct, pool());
  EXPECT_TRUE(v.converged);
  EXPECT_TRUE(f.converged);
  EXPECT_LE(f.iterations, v.iterations);
}

}  // namespace
}  // namespace pbmg::solvers
