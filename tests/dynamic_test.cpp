// Tests for the dynamic-tuning extension (paper §6 future work): the
// runtime-adaptive driver over statically tuned variants must converge on
// in-distribution inputs without escalating much, escalate on inputs that
// respond worse than the trained class promises — up the accuracy ladder
// and, when bound to a multi-family ladder, across families — respect its
// iteration budget, and share every bind-time prewarmed structure across
// consecutive solves.

#include <gtest/gtest.h>

#include <memory>

#include "engine/engine.h"
#include "grid/grid_ops.h"
#include "grid/level.h"
#include "grid/problem.h"
#include "obs/phase_profile.h"
#include "support/rng.h"
#include "tune/accuracy.h"
#include "tune/dynamic.h"
#include "tune/trainer.h"

namespace pbmg::tune {
namespace {

Engine& engine() {
  static Engine instance([] {
    rt::MachineProfile p;
    p.name = "dynamic-test";
    p.threads = 4;
    p.grain_rows = 4;
    return p;
  }());
  return instance;
}

rt::Scheduler& sched() { return engine().scheduler(); }

const TunedConfig& trained() {
  static const TunedConfig config = [] {
    TrainerOptions options;
    options.max_level = 5;
    options.train_fmg = false;
    options.seed = 1717;
    Trainer trainer(options, engine());
    return trainer.train();
  }();
  return config;
}

DynamicSolver poisson_solver(int n) {
  return DynamicSolver(trained(), grid::StencilOp::poisson(n), sched(),
                      engine().direct(), engine().scratch());
}

/// Hand-built RAP config: every non-base cell recurses against the
/// Galerkin ladder with 2·(i+1) iterations.  Deterministic (no training
/// run) and it exercises the second coefficient hierarchy, which is what
/// the prewarm-sharing regression below needs live.
TunedConfig rap_config(int max_level, const std::string& family) {
  TunedConfig config(paper_accuracies(), max_level);
  for (int level = 2; level <= max_level; ++level) {
    for (int i = 0; i < config.accuracy_count(); ++i) {
      VEntry& cell = config.v_entry(level, i);
      cell.choice.kind = VKind::kRecurse;
      cell.choice.sub_accuracy = kClassicalCoarse;
      cell.choice.iterations = 2 * (i + 1);
      cell.choice.coarsening = grid::Coarsening::kRap;
      cell.trained = true;
    }
  }
  config.op_family = family;
  config.strategy = "hand-built";
  return config;
}

double residual_norm(const Grid2D& x, const Grid2D& b) {
  Grid2D r(x.n(), 0.0);
  grid::residual(x, b, r, sched());
  return grid::norm2_interior(r, sched());
}

TEST(DynamicSolver, ConvergesToResidualTargetInDistribution) {
  const int n = size_of_level(5);
  const DynamicSolver solver = poisson_solver(n);
  Rng rng(42);
  auto problem = make_problem(n, InputDistribution::kUnbiased, rng);
  Grid2D x = problem.x0;
  const double r0 = residual_norm(x, problem.b);
  const auto result = solver.solve(x, problem.b, 1e8);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(residual_norm(x, problem.b), r0 / 1e8 * 1.0001);
  EXPECT_GE(result.residual_reduction, 1e8);
  // Honest-stats contract: the audit residuals match an independent
  // recomputation, and the per-variant log accounts for every invocation.
  EXPECT_EQ(static_cast<int>(result.variants.size()), result.iterations);
  EXPECT_NEAR(result.initial_residual, r0, 1e-12 * r0);
  for (const VariantRun& run : result.variants) {
    EXPECT_EQ(run.family, "poisson");
    EXPECT_GE(run.cycles, 1);
  }
}

TEST(DynamicSolver, ConvergesAcrossDistributions) {
  // The point of dynamic tuning: one config, robust behaviour on inputs
  // from other distribution classes.
  const int n = size_of_level(5);
  const DynamicSolver solver = poisson_solver(n);
  for (auto dist :
       {InputDistribution::kBiased, InputDistribution::kPointSources}) {
    Rng rng(43);
    auto problem = make_problem(n, dist, rng);
    Grid2D x = problem.x0;
    const auto result = solver.solve(x, problem.b, 1e6);
    EXPECT_TRUE(result.converged) << to_string(dist);
  }
}

TEST(DynamicSolver, TrivialTargetNeedsNoEscalation) {
  const int n = size_of_level(4);
  const DynamicSolver solver = poisson_solver(n);
  Rng rng(44);
  auto problem = make_problem(n, InputDistribution::kUnbiased, rng);
  Grid2D x = problem.x0;
  const auto result = solver.solve(x, problem.b, 2.0);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.escalations, 0);
  EXPECT_EQ(result.family_switches, 0);
  EXPECT_LE(result.iterations, 2);
}

TEST(DynamicSolver, DeepTargetsClimbTheLadder) {
  // Demanding far more reduction than the cheapest variant delivers per
  // call forces the driver up the accuracy ladder.
  const int n = size_of_level(5);
  const DynamicSolver solver = poisson_solver(n);
  Rng rng(45);
  auto problem = make_problem(n, InputDistribution::kUnbiased, rng);
  Grid2D x = problem.x0;
  const auto result = solver.solve(x, problem.b, 1e12, 64);
  EXPECT_GE(result.final_accuracy_index, 0);
  EXPECT_LE(result.final_accuracy_index, trained().accuracy_count() - 1);
  // Either converged, or honestly reported non-convergence within budget.
  if (!result.converged) {
    EXPECT_EQ(result.iterations, 64);
  }
}

TEST(DynamicSolver, RespectsIterationBudget) {
  const int n = size_of_level(5);
  const DynamicSolver solver = poisson_solver(n);
  Rng rng(46);
  auto problem = make_problem(n, InputDistribution::kUnbiased, rng);
  Grid2D x = problem.x0;
  const auto result = solver.solve(x, problem.b, 1e30, 3);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 3);
  EXPECT_EQ(result.variants.size(), 3u);
}

TEST(DynamicSolver, AlreadyConvergedInputReturnsImmediately) {
  const int n = size_of_level(4);
  const DynamicSolver solver = poisson_solver(n);
  // x solves A·x = b exactly when b = A·x by construction.
  Rng rng(47);
  Grid2D x(n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) x(i, j) = rng.uniform(-1.0, 1.0);
  }
  Grid2D b(n, 0.0);
  grid::apply_poisson(x, b, sched());
  Grid2D guess = x;  // start at the exact solution
  const auto result = solver.solve(guess, b, 1e6);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.iterations, 1);
}

TEST(DynamicSolver, ValidatesArguments) {
  const DynamicSolver solver = poisson_solver(17);
  Grid2D x(17, 0.0), b(33, 0.0);
  EXPECT_THROW(solver.solve(x, b, 10.0), InvalidArgument);
  Grid2D b17(17, 0.0);
  EXPECT_THROW(solver.solve(x, b17, 0.5), InvalidArgument);
  EXPECT_THROW(
      DynamicSolver(grid::StencilOp::poisson(17), {}, sched(),
                    engine().direct(), engine().scratch()),
      InvalidArgument);
}

TEST(DynamicSolver, PrewarmSharedAcrossSolves) {
  // Regression for the per-call executor rebuild: solve() used to
  // construct a TunedExecutor (and let it lazily rebuild its RAP ladder)
  // on every invocation.  Bind a RAP config to a variable-coefficient
  // operator and run two consecutive profiled solves: neither may spend a
  // nanosecond in RAP setup (the Galerkin ladder was coarsened at bind
  // time), and the operator hierarchy's footprint must not move between
  // solves (nothing re-materializes per call).
  const int level = 4;
  const int n = size_of_level(level);
  const grid::StencilOp op =
      make_operator(n, OperatorFamily::kJumpCoefficient);
  const DynamicSolver solver(rap_config(level, "jump"), op, sched(),
                             engine().direct(), engine().scratch());
  const std::size_t bytes_before = solver.operators().bytes();
  Rng rng(48);
  auto problem = make_problem(n, InputDistribution::kUnbiased, rng);
  for (int pass = 0; pass < 2; ++pass) {
    obs::PhaseProfile profile;
    Grid2D x = problem.x0;
    const auto result = solver.solve(x, problem.b, 1e3, 64, &profile);
    EXPECT_TRUE(result.converged) << "pass " << pass;
    EXPECT_EQ(profile.phase_seconds(obs::Phase::kRapSetup), 0.0)
        << "pass " << pass << " re-built the Galerkin ladder";
  }
  EXPECT_EQ(solver.operators().bytes(), bytes_before);
}

TEST(DynamicSolver, JumpUnderPoissonStartEscalatesCrossFamily) {
  // The cross-family half of the §6 loop: a high-contrast jump operator
  // under a Poisson-trained start.  The Poisson tables' cycle shapes were
  // certified on constant coefficients; on the jump interface their
  // per-invocation reductions fall under each accuracy class's promise,
  // so the driver climbs the accuracy ladder, exhausts it, and switches
  // to the jump rung (Galerkin RAP tables) to finish.
  const int level = 5;
  const int n = size_of_level(level);
  const grid::StencilOp op =
      make_operator(n, OperatorFamily::kJumpCoefficient);
  std::vector<FamilyConfig> ladder;
  ladder.push_back(
      {"poisson", std::make_shared<const TunedConfig>(trained())});
  ladder.push_back({"jump", std::make_shared<const TunedConfig>(
                                rap_config(level, "jump"))});
  const DynamicSolver solver(op, std::move(ladder), sched(),
                             engine().direct(), engine().scratch());
  EXPECT_EQ(solver.families(),
            (std::vector<std::string>{"poisson", "jump"}));
  Rng rng(49);
  auto problem = make_problem(n, InputDistribution::kUnbiased, rng);
  Grid2D x = problem.x0;
  const auto result = solver.solve(x, problem.b, 1e6, 64);
  EXPECT_TRUE(result.converged);
  EXPECT_GE(result.family_switches, 1);
  EXPECT_EQ(result.final_family, "jump");
  EXPECT_GE(result.residual_reduction, 1e6);
}

}  // namespace
}  // namespace pbmg::tune
