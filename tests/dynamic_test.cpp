// Tests for the dynamic-tuning extension (paper §6 future work): the
// runtime-adaptive driver over statically tuned variants must converge on
// in-distribution inputs without escalating much, escalate on inputs that
// respond worse than the trained class promises, and respect its
// iteration budget.

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "grid/grid_ops.h"
#include "grid/level.h"
#include "grid/problem.h"
#include "support/rng.h"
#include "tune/accuracy.h"
#include "tune/dynamic.h"
#include "tune/trainer.h"

namespace pbmg::tune {
namespace {

Engine& engine() {
  static Engine instance([] {
    rt::MachineProfile p;
    p.name = "dynamic-test";
    p.threads = 4;
    p.grain_rows = 4;
    return p;
  }());
  return instance;
}

rt::Scheduler& sched() { return engine().scheduler(); }

const TunedConfig& trained() {
  static const TunedConfig config = [] {
    TrainerOptions options;
    options.max_level = 5;
    options.train_fmg = false;
    options.seed = 1717;
    Trainer trainer(options, engine());
    return trainer.train();
  }();
  return config;
}

double residual_norm(const Grid2D& x, const Grid2D& b) {
  Grid2D r(x.n(), 0.0);
  grid::residual(x, b, r, sched());
  return grid::norm2_interior(r, sched());
}

TEST(DynamicSolver, ConvergesToResidualTargetInDistribution) {
  DynamicSolver solver(trained(), sched(), engine().direct(),
                       engine().scratch());
  const int n = size_of_level(5);
  Rng rng(42);
  auto problem = make_problem(n, InputDistribution::kUnbiased, rng);
  Grid2D x = problem.x0;
  const double r0 = residual_norm(x, problem.b);
  const auto result = solver.solve(x, problem.b, 1e8);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(residual_norm(x, problem.b), r0 / 1e8 * 1.0001);
  EXPECT_GE(result.residual_reduction, 1e8);
}

TEST(DynamicSolver, ConvergesAcrossDistributions) {
  // The point of dynamic tuning: one config, robust behaviour on inputs
  // from other distribution classes.
  DynamicSolver solver(trained(), sched(), engine().direct(),
                       engine().scratch());
  const int n = size_of_level(5);
  for (auto dist :
       {InputDistribution::kBiased, InputDistribution::kPointSources}) {
    Rng rng(43);
    auto problem = make_problem(n, dist, rng);
    Grid2D x = problem.x0;
    const auto result = solver.solve(x, problem.b, 1e6);
    EXPECT_TRUE(result.converged) << to_string(dist);
  }
}

TEST(DynamicSolver, TrivialTargetNeedsNoEscalation) {
  DynamicSolver solver(trained(), sched(), engine().direct(),
                       engine().scratch());
  const int n = size_of_level(4);
  Rng rng(44);
  auto problem = make_problem(n, InputDistribution::kUnbiased, rng);
  Grid2D x = problem.x0;
  const auto result = solver.solve(x, problem.b, 2.0);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.escalations, 0);
  EXPECT_LE(result.iterations, 2);
}

TEST(DynamicSolver, DeepTargetsClimbTheLadder) {
  // Demanding far more reduction than the cheapest variant delivers per
  // call forces the driver up the accuracy ladder.
  DynamicSolver solver(trained(), sched(), engine().direct(),
                       engine().scratch());
  const int n = size_of_level(5);
  Rng rng(45);
  auto problem = make_problem(n, InputDistribution::kUnbiased, rng);
  Grid2D x = problem.x0;
  const auto result = solver.solve(x, problem.b, 1e12, 64);
  EXPECT_GE(result.final_accuracy_index, 0);
  EXPECT_LE(result.final_accuracy_index, trained().accuracy_count() - 1);
  // Either converged, or honestly reported non-convergence within budget.
  if (!result.converged) {
    EXPECT_EQ(result.iterations, 64);
  }
}

TEST(DynamicSolver, RespectsIterationBudget) {
  DynamicSolver solver(trained(), sched(), engine().direct(),
                       engine().scratch());
  const int n = size_of_level(5);
  Rng rng(46);
  auto problem = make_problem(n, InputDistribution::kUnbiased, rng);
  Grid2D x = problem.x0;
  const auto result = solver.solve(x, problem.b, 1e30, 3);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 3);
}

TEST(DynamicSolver, AlreadyConvergedInputReturnsImmediately) {
  DynamicSolver solver(trained(), sched(), engine().direct(),
                       engine().scratch());
  const int n = size_of_level(4);
  // x solves A·x = b exactly when b = A·x by construction.
  Rng rng(47);
  Grid2D x(n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) x(i, j) = rng.uniform(-1.0, 1.0);
  }
  Grid2D b(n, 0.0);
  grid::apply_poisson(x, b, sched());
  Grid2D guess = x;  // start at the exact solution
  const auto result = solver.solve(guess, b, 1e6);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.iterations, 1);
}

TEST(DynamicSolver, ValidatesArguments) {
  DynamicSolver solver(trained(), sched(), engine().direct(),
                       engine().scratch());
  Grid2D x(17, 0.0), b(33, 0.0);
  EXPECT_THROW(solver.solve(x, b, 10.0), InvalidArgument);
  Grid2D b17(17, 0.0);
  EXPECT_THROW(solver.solve(x, b17, 0.5), InvalidArgument);
}

}  // namespace
}  // namespace pbmg::tune
