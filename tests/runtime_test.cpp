// Tests for the work-stealing scheduler: coverage of parallel_for and
// parallel_reduce, nested parallelism, exception propagation, stealing,
// machine profiles, and the Spinlock primitive.

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/machine_profile.h"
#include "runtime/scheduler.h"
#include "support/error.h"

namespace pbmg::rt {
namespace {

MachineProfile test_profile(int threads, int grain = 1) {
  MachineProfile p;
  p.name = "test";
  p.threads = threads;
  p.grain_rows = grain;
  return p;
}

TEST(Scheduler, RejectsNonPositiveThreadCount) {
  MachineProfile p = test_profile(0);
  EXPECT_THROW(Scheduler s(p), InvalidArgument);
}

TEST(Scheduler, ParallelForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    Scheduler sched(test_profile(threads));
    constexpr std::int64_t kN = 10007;
    std::vector<std::atomic<int>> hits(kN);
    sched.parallel_for(0, kN, 16, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
      }
    });
    for (std::int64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "index " << i << " threads " << threads;
    }
  }
}

TEST(Scheduler, ParallelForHandlesEmptyAndTinyRanges) {
  Scheduler sched(test_profile(4));
  int calls = 0;
  sched.parallel_for(5, 5, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<std::int64_t> sum{0};
  sched.parallel_for(3, 4, 10, [&](std::int64_t b, std::int64_t e) {
    sum.fetch_add(e - b);
  });
  EXPECT_EQ(sum.load(), 1);
}

TEST(Scheduler, ParallelForRespectsGrainAsLeafUpperBound) {
  Scheduler sched(test_profile(4));
  std::atomic<bool> oversized{false};
  sched.parallel_for(0, 1000, 32, [&](std::int64_t b, std::int64_t e) {
    if (e - b > 32) oversized.store(true);
  });
  EXPECT_FALSE(oversized.load());
}

TEST(Scheduler, ParallelReduceSumMatchesSerial) {
  Scheduler sched(test_profile(8));
  constexpr std::int64_t kN = 100000;
  const double parallel = sched.parallel_reduce_sum(
      0, kN, 64, [](std::int64_t b, std::int64_t e) {
        double acc = 0.0;
        for (std::int64_t i = b; i < e; ++i) acc += static_cast<double>(i);
        return acc;
      });
  const double expected =
      static_cast<double>(kN - 1) * static_cast<double>(kN) / 2.0;
  EXPECT_DOUBLE_EQ(parallel, expected);
}

TEST(Scheduler, NestedParallelForDoesNotDeadlock) {
  Scheduler sched(test_profile(4));
  std::atomic<std::int64_t> total{0};
  sched.parallel_for(0, 16, 1, [&](std::int64_t ob, std::int64_t oe) {
    for (std::int64_t o = ob; o < oe; ++o) {
      sched.parallel_for(0, 64, 4, [&](std::int64_t b, std::int64_t e) {
        total.fetch_add(e - b);
      });
    }
  });
  EXPECT_EQ(total.load(), 16 * 64);
}

TEST(Scheduler, TaskExceptionPropagatesToWaiter) {
  Scheduler sched(test_profile(4));
  EXPECT_THROW(
      sched.parallel_for(0, 100, 1,
                         [&](std::int64_t b, std::int64_t) {
                           if (b == 50) throw NumericalError("boom");
                         }),
      NumericalError);
  // The scheduler must stay usable afterwards.
  std::atomic<std::int64_t> sum{0};
  sched.parallel_for(0, 10, 1,
                     [&](std::int64_t b, std::int64_t e) { sum += e - b; });
  EXPECT_EQ(sum.load(), 10);
}

TEST(Scheduler, SpawnAndWaitRunsEveryTask) {
  Scheduler sched(test_profile(4));
  TaskGroup group;
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    sched.spawn(group, [&] { count.fetch_add(1); });
  }
  sched.wait(group);
  EXPECT_EQ(count.load(), 200);
}

TEST(Scheduler, TaskGroupIsReusableAfterWait) {
  Scheduler sched(test_profile(2));
  TaskGroup group;
  std::atomic<int> count{0};
  sched.spawn(group, [&] { count.fetch_add(1); });
  sched.wait(group);
  sched.spawn(group, [&] { count.fetch_add(1); });
  sched.wait(group);
  EXPECT_EQ(count.load(), 2);
}

TEST(Scheduler, StealsHappenUnderImbalance) {
  Scheduler sched(test_profile(4));
  // One external submission chain creates deep imbalance; with multiple
  // workers the only way other threads obtain work is stealing.  On a
  // machine with fewer cores than workers a single round can complete
  // before any other worker is scheduled, so repeat until a steal lands.
  for (int round = 0; round < 50 && sched.steal_count() == 0; ++round) {
    std::atomic<std::int64_t> sum{0};
    sched.parallel_for(0, 1 << 14, 1, [&](std::int64_t b, std::int64_t e) {
      volatile double sink = 0.0;
      for (std::int64_t i = b; i < e; ++i) {
        sink = sink + static_cast<double>(i);
      }
      sum.fetch_add(e - b);
    });
    ASSERT_EQ(sum.load(), 1 << 14);
  }
  EXPECT_GT(sched.steal_count(), 0);
}

TEST(Scheduler, OnWorkerThreadDetection) {
  Scheduler sched(test_profile(2));
  EXPECT_FALSE(sched.on_worker_thread());
  std::atomic<bool> inside{false};
  TaskGroup group;
  sched.spawn(group, [&] { inside.store(sched.on_worker_thread()); });
  sched.wait(group);
  EXPECT_TRUE(inside.load());
}

TEST(Scheduler, SingleThreadRunsInline) {
  Scheduler sched(test_profile(1));
  std::int64_t sum = 0;  // no atomics needed: everything runs inline
  sched.parallel_for(0, 1000, 10,
                     [&](std::int64_t b, std::int64_t e) { sum += e - b; });
  EXPECT_EQ(sum, 1000);
}

TEST(Scheduler, SpawnOverheadInjectionSlowsSpawns) {
  MachineProfile slow = test_profile(2);
  slow.spawn_overhead_ns = 200000;  // 0.2 ms per spawn, easily measurable
  Scheduler sched(slow);
  TaskGroup group;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 20; ++i) sched.spawn(group, [] {});
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  sched.wait(group);
  EXPECT_GE(std::chrono::duration<double>(elapsed).count(), 20 * 0.0002 * 0.5);
}

// ------------------------------------------------------------ profiles --

TEST(Scheduler, ActiveWorkerThrottleNarrowsAndRestoresThePool) {
  Scheduler sched(test_profile(4));
  EXPECT_EQ(sched.active_workers(), 4);

  // Throttled to one worker, every index must still be covered exactly
  // once — parked workers' tasks stay stealable, nothing is lost.
  sched.set_active_workers(1);
  EXPECT_EQ(sched.active_workers(), 1);
  constexpr std::int64_t kN = 4096;
  std::vector<std::atomic<int>> hits(kN);
  sched.parallel_for(0, kN, 16, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    }
  });
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }

  // Out-of-range requests clamp instead of throwing: the throttle models
  // a degraded machine, and a watchdog poking it must never kill the pool.
  sched.set_active_workers(0);
  EXPECT_EQ(sched.active_workers(), 1);
  sched.set_active_workers(99);
  EXPECT_EQ(sched.active_workers(), 4);

  // Restored pool still covers ranges (workers woke back up).
  std::vector<std::atomic<int>> again(kN);
  sched.parallel_for(0, kN, 16, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      again[static_cast<std::size_t>(i)].fetch_add(1);
    }
  });
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(again[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(Scheduler, ThrottleTogglesUnderConcurrentLoadWithoutLosingWork) {
  // Race the throttle against live parallel work: a driver thread flips
  // the active-worker limit while parallel_for regions run.  Every index
  // must be covered exactly once regardless of where the toggles land.
  Scheduler sched(test_profile(4));
  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    int width = 1;
    while (!stop.load(std::memory_order_acquire)) {
      sched.set_active_workers(width);
      width = width == 1 ? 4 : 1;
      std::this_thread::yield();
    }
  });
  constexpr std::int64_t kN = 2048;
  for (int round = 0; round < 20; ++round) {
    std::vector<std::atomic<int>> hits(kN);
    sched.parallel_for(0, kN, 8, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
      }
    });
    for (std::int64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "round " << round << " index " << i;
    }
  }
  stop.store(true, std::memory_order_release);
  toggler.join();
  sched.set_active_workers(4);
}

TEST(MachineProfile, PresetsAreDistinctAndValid) {
  const auto names = profile_names();
  EXPECT_GE(names.size(), 4u);
  for (const auto& name : names) {
    const MachineProfile p = profile_by_name(name);
    EXPECT_GE(p.threads, 1) << name;
    EXPECT_GE(p.grain_rows, 1) << name;
  }
  EXPECT_THROW(profile_by_name("cray-1"), InvalidArgument);
  // The three paper testbeds must differ in scheduling character.
  const MachineProfile a = harpertown_profile();
  const MachineProfile b = barcelona_profile();
  const MachineProfile c = niagara_profile();
  EXPECT_NE(a.grain_rows, b.grain_rows);
  EXPECT_NE(b.spawn_overhead_ns, c.spawn_overhead_ns);
}

TEST(MachineProfile, SerialProfileNeverSplits) {
  Scheduler sched(serial_profile());
  EXPECT_EQ(sched.thread_count(), 1);
}

TEST(Spinlock, MutualExclusionUnderContention) {
  Spinlock lock;
  std::int64_t counter = 0;  // deliberately unsynchronized except via lock
  constexpr int kThreads = 4;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(Spinlock, TryLockReportsContention) {
  Spinlock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());  // already held
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

}  // namespace
}  // namespace pbmg::rt
