// Line-relaxation suite: Thomas-solver exactness against the banded
// Cholesky backend the DirectSolver runs, zebra ordering/threading
// invariance (bitwise), per-family V-cycle contraction with line
// smoothing at 32:1 and 1000:1 anisotropy (tolerance rationale at each
// bound), bitwise determinism of threaded line sweeps across repeated
// solves, and StencilOp-vs-Poisson fast-path parity on constant
// coefficients.

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "grid/grid_ops.h"
#include "grid/level.h"
#include "grid/problem.h"
#include "grid/stencil_op.h"
#include "linalg/band_matrix.h"
#include "solvers/line_relax.h"
#include "solvers/multigrid.h"
#include "support/rng.h"
#include "test_problems.h"

namespace pbmg::solvers {
namespace {

Engine& engine() {
  static Engine instance([] {
    rt::MachineProfile p;
    p.name = "line-relax-test";
    p.threads = 4;
    p.grain_rows = 2;
    return EngineOptions{p, {}, {}, 0};
  }());
  return instance;
}

rt::Scheduler& sched() { return engine().scheduler(); }

// --------------------------------------------------------------- Thomas --

TEST(ThomasSolver, MatchesBandedCholeskyOnRandomSpdTridiagonals) {
  // The Thomas algorithm must agree with the banded Cholesky machinery
  // (linalg/band_matrix.h, bandwidth 1) that DirectSolver's solves run
  // on — the single-line system is exactly what one line relaxation
  // solves per row/column.
  Rng rng(0x7110'AA5);
  for (const int m : {1, 2, 3, 8, 31, 64}) {
    std::vector<double> sub(static_cast<std::size_t>(m), 0.0);
    std::vector<double> diag(static_cast<std::size_t>(m), 0.0);
    std::vector<double> sup(static_cast<std::size_t>(m), 0.0);
    std::vector<double> rhs(static_cast<std::size_t>(m), 0.0);
    // Diagonally dominant with negative off-diagonals (the shape every
    // flux-form line system has) => SPD.
    for (int k = 0; k + 1 < m; ++k) {
      const double off = -rng.uniform(0.1, 1.0);
      sup[static_cast<std::size_t>(k)] = off;
      sub[static_cast<std::size_t>(k) + 1] = off;
    }
    for (int k = 0; k < m; ++k) {
      diag[static_cast<std::size_t>(k)] =
          std::abs(sub[static_cast<std::size_t>(k)]) +
          std::abs(sup[static_cast<std::size_t>(k)]) + rng.uniform(0.2, 1.0);
      rhs[static_cast<std::size_t>(k)] = rng.uniform(-10.0, 10.0);
    }

    linalg::BandMatrix a(m, std::min(1, m - 1));
    for (int k = 0; k < m; ++k) {
      a.band(k, 0) = diag[static_cast<std::size_t>(k)];
      if (k + 1 < m && a.bandwidth() >= 1) {
        a.band(k, 1) = sup[static_cast<std::size_t>(k)];
      }
    }
    std::vector<double> reference = rhs;
    linalg::band_spd_solve(a, reference);

    std::vector<double> thomas = rhs;
    std::vector<double> work(static_cast<std::size_t>(m), 0.0);
    thomas_solve(sub.data(), diag.data(), sup.data(), thomas.data(),
                 work.data(), m);

    for (int k = 0; k < m; ++k) {
      // Both are backward-stable O(m) eliminations of a well-conditioned
      // system; they agree to rounding.
      EXPECT_NEAR(thomas[static_cast<std::size_t>(k)],
                  reference[static_cast<std::size_t>(k)],
                  1e-12 * (1.0 + std::abs(reference[static_cast<std::size_t>(k)])))
          << "m=" << m << " k=" << k;
    }
  }
}

TEST(ThomasSolver, RelaxedLinesSatisfyTheirEquationsExactly) {
  // After one x-line zebra sweep the even interior rows were solved last:
  // their neighbours (the odd rows) did not change afterwards, so their
  // row equations hold to rounding — line relaxation is an *exact* block
  // solve, not an approximate update.  The instance carries the unbiased
  // ±2³² data scaling (test_problems.h), so "rounding" is relative to
  // ‖b‖_∞ ~ 1e13.
  const int n = 33;
  const auto inst = testing::make_family_instance(OperatorFamily::kAnisotropic,
                                                  n, 0x7110'0002, sched());
  const grid::StencilOp op = make_operator(n, OperatorFamily::kAnisotropic);
  Grid2D x = inst.problem.x0;
  line_relax_sweep(op, x, inst.problem.b, RelaxKind::kLineX, sched(),
                   engine().scratch());
  Grid2D r(n, 0.0);
  grid::residual_op(op, x, inst.problem.b, r, sched());
  const double scale = grid::max_abs_interior(inst.problem.b, sched());
  for (int i = 2; i < n - 1; i += 2) {
    for (int j = 1; j < n - 1; ++j) {
      ASSERT_LE(std::abs(r(i, j)), 1e-10 * (scale + 1.0))
          << "row " << i << " col " << j;
    }
  }
}

// ------------------------------------------------ ordering & threading --

class LineKinds : public ::testing::TestWithParam<RelaxKind> {};

INSTANTIATE_TEST_SUITE_P(Kinds, LineKinds,
                         ::testing::Values(RelaxKind::kLineX,
                                           RelaxKind::kLineY,
                                           RelaxKind::kLineZebraAlt),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST_P(LineKinds, SweepIsBitwiseIdenticalAcrossThreadCounts) {
  // Lines of one zebra parity touch disjoint memory and read only frozen
  // lines of the other parity, so scheduling must not change a single
  // bit — the same invariance the red-black point sweeps have.
  const int n = 65;
  const auto inst = testing::make_family_instance(OperatorFamily::kAnisoRotated,
                                                  n, 0x7110'0003, sched());
  const grid::StencilOp op = make_operator(n, OperatorFamily::kAnisoRotated);

  Engine serial(rt::serial_profile());
  Grid2D x_serial = inst.problem.x0;
  Grid2D x_threaded = inst.problem.x0;
  for (int s = 0; s < 3; ++s) {
    line_relax_sweep(op, x_serial, inst.problem.b, GetParam(),
                     serial.scheduler(), serial.scratch());
    line_relax_sweep(op, x_threaded, inst.problem.b, GetParam(), sched(),
                     engine().scratch());
  }
  ASSERT_EQ(0, std::memcmp(x_serial.data(), x_threaded.data(),
                           x_threaded.size() * sizeof(double)));
}

TEST_P(LineKinds, ThreadedSweepsAreDeterministicAcrossRepeatedSolves) {
  const int n = 65;
  const auto inst = testing::make_family_instance(
      OperatorFamily::kAnisotropic1000, n, 0x7110'0004, sched());
  const grid::StencilOp op =
      make_operator(n, OperatorFamily::kAnisotropic1000);
  Grid2D reference = inst.problem.x0;
  for (int s = 0; s < 4; ++s) {
    line_relax_sweep(op, reference, inst.problem.b, GetParam(), sched(),
                     engine().scratch());
  }
  for (int repeat = 0; repeat < 3; ++repeat) {
    Grid2D x = inst.problem.x0;
    for (int s = 0; s < 4; ++s) {
      line_relax_sweep(op, x, inst.problem.b, GetParam(), sched(),
                       engine().scratch());
    }
    ASSERT_EQ(0, std::memcmp(x.data(), reference.data(),
                             reference.size() * sizeof(double)))
        << "repeat " << repeat;
  }
}

// ------------------------------------------------- V-cycle contraction --

struct ContractionCase {
  OperatorFamily family;
  RelaxKind smoother;
  double bound;
  const char* label;
};

/// Per-cycle error-contraction bounds for V(1,1) with line smoothing.
/// Rationale:
///  - aniso 32:1 / x-lines: the strong direction lives inside the rows,
///    so zebra x-line relaxation restores textbook rates (~0.1–0.25
///    measured); 0.45 absorbs small-grid boundary effects.
///  - aniso 1000:1 / x-lines and zebra-alt: the rows decouple almost
///    completely and the line solve is nearly exact per row; measured
///    rates stay under ~0.25.  Bounded by 0.45 like the 32:1 case —
///    the point of the test is "bounded away from 1 uniformly in the
///    anisotropy", not the sharpest constant.
///  - aniso-rot / zebra-alt: each half-domain is served by one pass of
///    the alternating sweep while the other pass is wasted there;
///    measured ~0.3–0.5, bounded by 0.65.
class LineContraction : public ::testing::TestWithParam<ContractionCase> {};

INSTANTIATE_TEST_SUITE_P(
    Cases, LineContraction,
    ::testing::Values(
        ContractionCase{OperatorFamily::kAnisotropic, RelaxKind::kLineX,
                        0.45, "aniso32_line_x"},
        ContractionCase{OperatorFamily::kAnisotropic1000, RelaxKind::kLineX,
                        0.45, "aniso1000_line_x"},
        ContractionCase{OperatorFamily::kAnisotropic1000,
                        RelaxKind::kLineZebraAlt, 0.45,
                        "aniso1000_zebra_alt"},
        ContractionCase{OperatorFamily::kAnisoRotated,
                        RelaxKind::kLineZebraAlt, 0.65, "rot_zebra_alt"}),
    [](const auto& info) { return std::string(info.param.label); });

TEST_P(LineContraction, VCycleWithLineSmoothingContracts) {
  const ContractionCase c = GetParam();
  for (const int level : {5, 6}) {
    const int n = size_of_level(level);
    const auto inst =
        testing::make_family_instance(c.family, n, 0x7110'0005, sched());
    if (inst.initial_error == 0.0) GTEST_SKIP() << "degenerate instance";
    const grid::StencilHierarchy ops(make_operator(n, c.family));
    VCycleOptions options;
    options.relaxation = c.smoother;
    Grid2D x = inst.problem.x0;
    const double floor = 1e-12 * inst.initial_error;
    double prev = inst.initial_error;
    for (int cycle = 1; cycle <= 6; ++cycle) {
      vcycle(ops, x, inst.problem.b, options, sched(), engine().direct(),
             engine().scratch());
      const double err = testing::error_against_exact(inst, x, sched());
      if (err <= floor) break;
      EXPECT_LE(err, c.bound * prev)
          << c.label << " N=" << n << " cycle " << cycle;
      prev = err;
    }
  }
}

TEST(LineContraction, PointSmoothingStallsAtExtremeAnisotropy) {
  // The motivating failure, pinned: at 1000:1 a point-relaxed V(1,1)
  // cycle barely contracts (asymptotic rate ~0.99+), which is why the
  // smoother must be a tuned choice rather than a constant.  Measured
  // after a 2-cycle transient; >= 0.9 demonstrates the stall without
  // being sensitive to the exact rate.
  const int n = 65;
  const auto inst = testing::make_family_instance(
      OperatorFamily::kAnisotropic1000, n, 0x7110'0006, sched());
  const grid::StencilHierarchy ops(
      make_operator(n, OperatorFamily::kAnisotropic1000));
  Grid2D x = inst.problem.x0;
  const auto cycles = [&](int count) {
    for (int c = 0; c < count; ++c) {
      vcycle(ops, x, inst.problem.b, VCycleOptions{}, sched(),
             engine().direct(), engine().scratch());
    }
  };
  cycles(2);
  const double e_before = testing::error_against_exact(inst, x, sched());
  cycles(3);
  const double e_after = testing::error_against_exact(inst, x, sched());
  const double rate = std::cbrt(e_after / e_before);
  EXPECT_GE(rate, 0.9);
}

// ------------------------------------------------------ fast-path parity --

TEST(LineFastPath, ExplicitConstantCoefficientsMatchPoissonBitwise) {
  // A StencilOp holding explicit all-ones coefficient grids is *not* the
  // fast path (it stores grids), yet its line systems are algebraically
  // the Poisson systems with the same association order, and every band
  // value is an exact small integer — the sweeps must agree bit for bit
  // with the dedicated constant-coefficient kernels.
  const int n = 33;
  Grid2D ones_ax(n, 1.0), ones_ay(n, 1.0);
  const grid::StencilOp explicit_op =
      grid::StencilOp::variable(std::move(ones_ax), std::move(ones_ay), 0.0);
  ASSERT_FALSE(explicit_op.is_poisson());
  const auto inst = testing::make_family_instance(OperatorFamily::kPoisson, n,
                                                  0x7110'0007, sched());
  for (const RelaxKind kind :
       {RelaxKind::kLineX, RelaxKind::kLineY, RelaxKind::kLineZebraAlt}) {
    Grid2D via_op = inst.problem.x0;
    Grid2D via_poisson = inst.problem.x0;
    for (int s = 0; s < 3; ++s) {
      line_relax_sweep(explicit_op, via_op, inst.problem.b, kind, sched(),
                       engine().scratch());
      line_relax_sweep(via_poisson, inst.problem.b, kind, sched(),
                       engine().scratch());
    }
    ASSERT_EQ(0, std::memcmp(via_op.data(), via_poisson.data(),
                             via_poisson.size() * sizeof(double)))
        << to_string(kind);
  }
}

TEST(LineFastPath, PoissonOpDispatchesToConstantKernel) {
  // StencilOp::poisson routes to the Poisson overload, bit for bit (same
  // contract as the point sweeps).
  const int n = 33;
  const grid::StencilOp op = grid::StencilOp::poisson(n);
  const auto inst = testing::make_family_instance(OperatorFamily::kPoisson, n,
                                                  0x7110'0008, sched());
  Grid2D via_op = inst.problem.x0;
  Grid2D direct_call = inst.problem.x0;
  for (int s = 0; s < 3; ++s) {
    line_relax_sweep(op, via_op, inst.problem.b, RelaxKind::kLineZebraAlt,
                     sched(), engine().scratch());
    line_relax_sweep(direct_call, inst.problem.b, RelaxKind::kLineZebraAlt,
                     sched(), engine().scratch());
  }
  ASSERT_EQ(0, std::memcmp(via_op.data(), direct_call.data(),
                           direct_call.size() * sizeof(double)));
}

TEST(LineRelax, RejectsInvalidOperands) {
  Grid2D x(17, 0.0), wrong(9, 0.0);
  EXPECT_THROW(line_relax_sweep(x, wrong, RelaxKind::kLineX, sched(),
                                engine().scratch()),
               InvalidArgument);
  EXPECT_THROW(line_relax_sweep(x, x, RelaxKind::kSor, sched(),
                                engine().scratch()),
               InvalidArgument);
  const grid::StencilOp op = make_operator(9, OperatorFamily::kAnisotropic);
  Grid2D b(17, 0.0);
  EXPECT_THROW(line_relax_sweep(op, x, b, RelaxKind::kLineY, sched(),
                                engine().scratch()),
               InvalidArgument);
}

}  // namespace
}  // namespace pbmg::solvers
