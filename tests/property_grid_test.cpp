// Property-based (parameterized) tests for the grid substrate: algebraic
// identities of the discrete operator and the transfer operators, swept
// across grid sizes and random inputs, plus the same identities for every
// variable-coefficient operator family (stencil_op.h).

#include <cmath>

#include <gtest/gtest.h>

#include "grid/grid2d.h"
#include "grid/grid_ops.h"
#include "grid/level.h"
#include "grid/problem.h"
#include "grid/stencil_op.h"
#include "runtime/scheduler.h"
#include "support/rng.h"
#include "test_problems.h"

namespace pbmg {
namespace {

rt::Scheduler& sched() {
  static rt::Scheduler instance([] {
    rt::MachineProfile p;
    p.name = "prop-grid";
    p.threads = 4;
    p.grain_rows = 2;
    p.sequential_cutoff_cells = 64;  // force the parallel paths even at n=5
    return p;
  }());
  return instance;
}

inline std::string dist_label(int index) {
  switch (index) {
    case 0: return "unbiased";
    case 1: return "biased";
    default: return "pointsources";
  }
}

Grid2D random_interior(int n, std::uint64_t seed) {
  Rng rng(seed);
  Grid2D g(n, 0.0);
  for (int i = 1; i < n - 1; ++i) {
    for (int j = 1; j < n - 1; ++j) g(i, j) = rng.uniform(-1.0, 1.0);
  }
  return g;
}

double dot_interior(const Grid2D& a, const Grid2D& b) {
  double acc = 0.0;
  for (int i = 1; i < a.n() - 1; ++i) {
    for (int j = 1; j < a.n() - 1; ++j) acc += a(i, j) * b(i, j);
  }
  return acc;
}

class GridProperty : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Sizes, GridProperty,
                         ::testing::Values(5, 9, 17, 33, 65, 129),
                         [](const auto& info) {
                           return "N" + std::to_string(info.param);
                         });

TEST_P(GridProperty, OperatorIsSymmetricOnZeroRingGrids) {
  // <A u, v> == <u, A v> for grids with zero Dirichlet rings.
  const int n = GetParam();
  const Grid2D u = random_interior(n, 11u + static_cast<std::uint64_t>(n));
  const Grid2D v = random_interior(n, 23u + static_cast<std::uint64_t>(n));
  Grid2D au(n, 0.0), av(n, 0.0);
  grid::apply_poisson(u, au, sched());
  grid::apply_poisson(v, av, sched());
  const double lhs = dot_interior(au, v);
  const double rhs = dot_interior(u, av);
  EXPECT_NEAR(lhs, rhs, 1e-9 * (std::abs(lhs) + 1.0));
}

TEST_P(GridProperty, OperatorIsPositiveDefinite) {
  // <A u, u> > 0 for u != 0 with zero ring.
  const int n = GetParam();
  const Grid2D u = random_interior(n, 37u + static_cast<std::uint64_t>(n));
  Grid2D au(n, 0.0);
  grid::apply_poisson(u, au, sched());
  EXPECT_GT(dot_interior(au, u), 0.0);
}

TEST_P(GridProperty, OperatorAnnihilatesConstantsUpToBoundary) {
  // A applied to a constant grid is zero strictly inside (only cells
  // adjacent to the ring see the boundary).
  const int n = GetParam();
  Grid2D u(n, 2.5);
  Grid2D au(n, 0.0);
  grid::apply_poisson(u, au, sched());
  for (int i = 2; i < n - 2; ++i) {
    for (int j = 2; j < n - 2; ++j) {
      ASSERT_NEAR(au(i, j), 0.0, 1e-7) << i << "," << j;
    }
  }
}

TEST_P(GridProperty, ResidualIsLinearInX) {
  // r(x1 + x2, b) + A·0 == r(x1, b) + r(x2, 0): residual affine structure.
  const int n = GetParam();
  const Grid2D x1 = random_interior(n, 41u + static_cast<std::uint64_t>(n));
  const Grid2D x2 = random_interior(n, 43u + static_cast<std::uint64_t>(n));
  const Grid2D b = random_interior(n, 47u + static_cast<std::uint64_t>(n));
  Grid2D sum(n, 0.0);
  for (int i = 1; i < n - 1; ++i) {
    for (int j = 1; j < n - 1; ++j) sum(i, j) = x1(i, j) + x2(i, j);
  }
  Grid2D r_sum(n, 0.0), r1(n, 0.0), r2_zero(n, 0.0);
  Grid2D zero_b(n, 0.0);
  grid::residual(sum, b, r_sum, sched());
  grid::residual(x1, b, r1, sched());
  grid::residual(x2, zero_b, r2_zero, sched());
  for (int i = 1; i < n - 1; ++i) {
    for (int j = 1; j < n - 1; ++j) {
      ASSERT_NEAR(r_sum(i, j), r1(i, j) + r2_zero(i, j),
                  1e-6 * (std::abs(r1(i, j)) + std::abs(r2_zero(i, j)) + 1.0));
    }
  }
}

TEST_P(GridProperty, RestrictionThenInterpolationIsBoundedContraction) {
  // P·R has operator norm <= 1 on smooth data: applying it to a sampled
  // smooth function changes it only slightly (classic two-grid sanity).
  const int n = GetParam();
  if (n < 9) GTEST_SKIP() << "too coarse for smoothness arguments";
  Grid2D u(n, 0.0);
  const double h = mesh_width(n);
  for (int i = 1; i < n - 1; ++i) {
    for (int j = 1; j < n - 1; ++j) {
      u(i, j) = std::sin(M_PI * i * h) * std::sin(M_PI * j * h);
    }
  }
  Grid2D coarse(coarse_size(n), 0.0);
  grid::restrict_full_weighting(u, coarse, sched());
  Grid2D back(n, 0.0);
  grid::interpolate_assign(coarse, back, sched());
  const double diff = grid::norm2_diff_interior(u, back, sched());
  const double norm = grid::norm2_interior(u, sched());
  EXPECT_LT(diff, 0.2 * norm);  // smooth modes survive the round trip
}

TEST_P(GridProperty, RestrictionNeverAmplifies) {
  // Full weighting averages: ||R f||_inf <= ||f||_inf.
  const int n = GetParam();
  const Grid2D f = random_interior(n, 53u + static_cast<std::uint64_t>(n));
  Grid2D coarse(coarse_size(n), 0.0);
  grid::restrict_full_weighting(f, coarse, sched());
  EXPECT_LE(grid::max_abs_interior(coarse, sched()),
            grid::max_abs_interior(f, sched()) + 1e-12);
}

TEST_P(GridProperty, InterpolationNeverAmplifies) {
  // Bilinear interpolation is a convex combination: max preserved.
  const int n = GetParam();
  const int nc = coarse_size(n);
  const Grid2D c = random_interior(nc, 59u + static_cast<std::uint64_t>(n));
  Grid2D fine(n, 0.0);
  grid::interpolate_assign(c, fine, sched());
  EXPECT_LE(grid::max_abs_interior(fine, sched()),
            grid::max_abs_interior(c, sched()) + 1e-12);
}

TEST_P(GridProperty, NormTriangleInequality) {
  const int n = GetParam();
  const Grid2D a = random_interior(n, 61u + static_cast<std::uint64_t>(n));
  const Grid2D b = random_interior(n, 67u + static_cast<std::uint64_t>(n));
  Grid2D zero(n, 0.0);
  const double na = grid::norm2_diff_interior(a, zero, sched());
  const double nb = grid::norm2_diff_interior(b, zero, sched());
  const double nab = grid::norm2_diff_interior(a, b, sched());
  EXPECT_LE(nab, na + nb + 1e-12);
  EXPECT_GE(nab, std::abs(na - nb) - 1e-12);
}

TEST_P(GridProperty, InjectionIsLeftInverseOfInterpolationOnCoarsePoints) {
  // (R_inject ∘ P) c == c: bilinear interpolation is exact at coarse
  // points.
  const int n = GetParam();
  const int nc = coarse_size(n);
  const Grid2D c = random_interior(nc, 71u + static_cast<std::uint64_t>(n));
  Grid2D fine(n, 0.0);
  grid::interpolate_assign(c, fine, sched());
  Grid2D back(nc, 0.0);
  grid::restrict_inject(fine, back, sched());
  for (int i = 1; i < nc - 1; ++i) {
    for (int j = 1; j < nc - 1; ++j) {
      ASSERT_NEAR(back(i, j), c(i, j), 1e-12);
    }
  }
}

// --------------------------------------------- stencil operator families --

Grid2D random_full(int n, std::uint64_t seed) {
  Rng rng(seed);
  Grid2D g(n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) g(i, j) = rng.uniform(-1.0, 1.0);
  }
  return g;
}

constexpr int kFamilyCount =
    static_cast<int>(std::size(kAllOperatorFamilies));

class StencilFamilyProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  OperatorFamily family() const {
    return kAllOperatorFamilies[static_cast<std::size_t>(
        std::get<0>(GetParam()))];
  }
  int n() const { return std::get<1>(GetParam()); }
};

INSTANTIATE_TEST_SUITE_P(
    Cases, StencilFamilyProperty,
    ::testing::Combine(::testing::Range(0, kFamilyCount),
                       ::testing::Values(9, 33, 65)),
    [](const auto& info) {
      return testing::gtest_name(
          to_string(kAllOperatorFamilies[static_cast<std::size_t>(
              std::get<0>(info.param))]) +
          "_N" + std::to_string(std::get<1>(info.param)));
    });

TEST_P(StencilFamilyProperty, AssembledOperatorIsSymmetric) {
  // <A u, v> == <u, A v> on zero-ring grids: every edge coefficient is
  // shared by its two endpoints, so the assembled matrix is symmetric for
  // every family.
  const grid::StencilOp op = make_operator(n(), family());
  const Grid2D u = random_interior(n(), 211u + static_cast<std::uint64_t>(n()));
  const Grid2D v = random_interior(n(), 223u + static_cast<std::uint64_t>(n()));
  Grid2D au(n(), 0.0), av(n(), 0.0);
  grid::apply_op(op, u, au, sched());
  grid::apply_op(op, v, av, sched());
  const double lhs = dot_interior(au, v);
  const double rhs = dot_interior(u, av);
  // The jump family's 100× contrast amplifies rounding in the two dot
  // products; 1e-9 relative still certifies exact-arithmetic symmetry.
  EXPECT_NEAR(lhs, rhs, 1e-9 * (std::abs(lhs) + std::abs(rhs) + 1.0));
}

TEST_P(StencilFamilyProperty, OperatorIsPositiveDefinite) {
  // Positive edge coefficients + c >= 0 + Dirichlet ring ⇒ SPD.
  const grid::StencilOp op = make_operator(n(), family());
  const Grid2D u = random_interior(n(), 227u + static_cast<std::uint64_t>(n()));
  Grid2D au(n(), 0.0);
  grid::apply_op(op, u, au, sched());
  EXPECT_GT(dot_interior(au, u), 0.0);
}

TEST_P(StencilFamilyProperty, ResidualVanishesOnManufacturedSolution) {
  // b := A·x ⇒ residual(x, b) ≡ 0.  Residual and apply share one code
  // path, so the cancellation is exact up to the sign of zero; the bound
  // is relative to ‖b‖_inf only to stay robust under FP-contract
  // differences across compilers.
  const grid::StencilOp op = make_operator(n(), family());
  const Grid2D x = random_full(n(), 229u + static_cast<std::uint64_t>(n()));
  Grid2D b(n(), 0.0), r(n(), 0.0);
  grid::apply_op(op, x, b, sched());
  grid::residual_op(op, x, b, r, sched());
  const double scale = grid::max_abs_interior(b, sched());
  EXPECT_LE(grid::max_abs_interior(r, sched()), 1e-12 * (scale + 1.0));
}

TEST_P(StencilFamilyProperty, RestrictedCoefficientsStayPositive) {
  // Harmonic/arithmetic averaging of positive numbers is positive: the
  // whole hierarchy must keep SPD operators, even for the 100× jump.
  grid::StencilOp op = make_operator(n(), family());
  while (op.n() >= 5) {
    op = op.restricted();
    const int nc = op.n();
    for (int i = 1; i < nc - 1; ++i) {
      for (int j = 1; j < nc - 1; ++j) {
        ASSERT_GT(op.diag(i, j), 0.0)
            << to_string(family()) << " N=" << nc << " at " << i << "," << j;
      }
    }
  }
}

TEST(StencilFastPathProperty, GenericPathMatchesPoissonKernelToTheLastUlp) {
  // A *variable* operator whose coefficients happen to be exactly 1 with
  // c = 0 takes the generic loop, yet must agree with the specialised
  // Poisson kernel to the last ulp: the generic accumulation mirrors the
  // fast path term for term (the only permitted difference is the sign of
  // zero, which operator== ignores).
  for (const int n : {5, 17, 65}) {
    const grid::StencilOp generic =
        grid::StencilOp::variable(Grid2D(n, 1.0), Grid2D(n, 1.0), 0.0);
    ASSERT_FALSE(generic.is_poisson());
    const Grid2D x = random_full(n, 233u + static_cast<std::uint64_t>(n));
    const Grid2D b = random_full(n, 239u + static_cast<std::uint64_t>(n));
    Grid2D via_generic(n, 0.0), via_poisson(n, 0.0);
    grid::apply_op(generic, x, via_generic, sched());
    grid::apply_poisson(x, via_poisson, sched());
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        ASSERT_EQ(via_generic(i, j), via_poisson(i, j))
            << "apply N=" << n << " at " << i << "," << j;
      }
    }
    Grid2D r_generic(n, 0.0), r_poisson(n, 0.0);
    grid::residual_op(generic, x, b, r_generic, sched());
    grid::residual(x, b, r_poisson, sched());
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        ASSERT_EQ(r_generic(i, j), r_poisson(i, j))
            << "residual N=" << n << " at " << i << "," << j;
      }
    }
  }
}

TEST(StencilFastPathProperty, PoissonOpDispatchesBitwiseToPoissonKernels) {
  const int n = 33;
  const grid::StencilOp op = grid::StencilOp::poisson(n);
  ASSERT_TRUE(op.is_poisson());
  const Grid2D x = random_full(n, 241);
  Grid2D via_op(n, 0.0), direct(n, 0.0);
  grid::apply_op(op, x, via_op, sched());
  grid::apply_poisson(x, direct, sched());
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      ASSERT_EQ(via_op(i, j), direct(i, j));
    }
  }
}

TEST(StencilRestriction, UnitCoefficientsRestrictToUnitCoefficients) {
  // H(1,1) = 1 and the ½/¼/¼ weights sum to 1, so constants survive
  // coarsening exactly — the property that makes the Poisson shortcut in
  // restricted() legitimate rather than an approximation.
  const int n = 33;
  const grid::StencilOp unit =
      grid::StencilOp::variable(Grid2D(n, 1.0), Grid2D(n, 1.0), 0.5);
  const grid::StencilOp coarse = unit.restricted();
  EXPECT_EQ(coarse.n(), coarse_size(n));
  EXPECT_EQ(coarse.c(), 0.5);  // the reaction term rides along unchanged
  for (int i = 0; i < coarse.n(); ++i) {
    for (int j = 0; j + 1 < coarse.n(); ++j) {
      ASSERT_EQ(coarse.ax(i, j), 1.0) << i << "," << j;
      ASSERT_EQ(coarse.ay(j, i), 1.0) << j << "," << i;
    }
  }
  // And the true fast path short-circuits without arithmetic.
  EXPECT_TRUE(grid::StencilOp::poisson(n).restricted().is_poisson());
}

TEST(StencilReaction, PositiveReactionTermStrengthensTheDiagonal) {
  // diag = (aW+aE+aN+aS)/h² + c must grow by exactly c.
  const int n = 17;
  const grid::StencilOp base =
      grid::StencilOp::variable(Grid2D(n, 2.0), Grid2D(n, 2.0), 0.0);
  const grid::StencilOp shifted =
      grid::StencilOp::variable(Grid2D(n, 2.0), Grid2D(n, 2.0), 3.0);
  for (int i = 1; i < n - 1; ++i) {
    for (int j = 1; j < n - 1; ++j) {
      ASSERT_DOUBLE_EQ(shifted.diag(i, j), base.diag(i, j) + 3.0);
    }
  }
}

// ------------------------------------------------------- distributions --

struct DistCase {
  InputDistribution dist;
  int n;
};

class ProblemProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

INSTANTIATE_TEST_SUITE_P(
    Cases, ProblemProperty,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(9, 33, 129)),
    [](const auto& info) {
      return dist_label(std::get<0>(info.param)) + "_N" +
             std::to_string(std::get<1>(info.param));
    });

TEST_P(ProblemProperty, InstancesAreFiniteAndSeedDeterministic) {
  const auto dist = static_cast<InputDistribution>(std::get<0>(GetParam()));
  const int n = std::get<1>(GetParam());
  Rng a(321), b(321);
  const auto p1 = make_problem(n, dist, a);
  const auto p2 = make_problem(n, dist, b);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      ASSERT_EQ(p1.b(i, j), p2.b(i, j));
      ASSERT_EQ(p1.x0(i, j), p2.x0(i, j));
      ASSERT_TRUE(std::isfinite(p1.b(i, j)));
      ASSERT_TRUE(std::isfinite(p1.x0(i, j)));
    }
  }
}

TEST_P(ProblemProperty, InteriorGuessIsAlwaysZero) {
  const auto dist = static_cast<InputDistribution>(std::get<0>(GetParam()));
  const int n = std::get<1>(GetParam());
  Rng rng(654);
  const auto p = make_problem(n, dist, rng);
  for (int i = 1; i < n - 1; ++i) {
    for (int j = 1; j < n - 1; ++j) {
      ASSERT_EQ(p.x0(i, j), 0.0);
    }
  }
}

}  // namespace
}  // namespace pbmg
