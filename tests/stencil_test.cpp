// Convergence regression tests for the variable-coefficient operator
// layer: V-cycle and FMG must contract the error for every operator
// family at every grid size the trainer visits, the direct solver must
// reproduce manufactured solutions exactly, per-operator trained sessions
// must deliver their tuned accuracies, and the Poisson fast path must be
// bitwise identical to the pre-operator code path.  Fixed seeds
// throughout; tolerance rationale inline at each assertion.

#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/solve_session.h"
#include "grid/grid_ops.h"
#include "grid/level.h"
#include "grid/problem.h"
#include "grid/stencil_op.h"
#include "solvers/multigrid.h"
#include "test_problems.h"
#include "tune/accuracy.h"
#include "tune/executor.h"
#include "tune/trainer.h"

namespace pbmg {
namespace {

Engine& engine() {
  static Engine instance([] {
    rt::MachineProfile p;
    p.name = "stencil-test";
    p.threads = 4;
    p.grain_rows = 2;
    return EngineOptions{p, {}, {}, 0};
  }());
  return instance;
}

rt::Scheduler& sched() { return engine().scheduler(); }

constexpr int kFamilyCount =
    static_cast<int>(std::size(kAllOperatorFamilies));

std::string family_label(int index) {
  return testing::gtest_name(
      to_string(kAllOperatorFamilies[static_cast<std::size_t>(index)]));
}

// Shared manufactured-problem helpers (tests/test_problems.h), bound to
// this suite's engine.
tune::TrainingInstance make_instance(OperatorFamily family, int n,
                                     std::uint64_t seed) {
  return testing::make_family_instance(family, n, seed, sched());
}

double error_of(const tune::TrainingInstance& inst, const Grid2D& x) {
  return testing::error_against_exact(inst, x, sched());
}

/// Cycle options this suite certifies per family: the extreme-anisotropy
/// families are *only* tractable with line smoothing (that failure is
/// pinned in line_relax_test's PointSmoothingStallsAtExtremeAnisotropy),
/// so their convergence contract runs the smoother a tuned table would
/// select — x-lines for 1000:1 (the strong direction lives in the rows),
/// alternating zebra for the direction-flipping operator.  Everything
/// else keeps the paper's point red-black SOR.
solvers::VCycleOptions family_cycle_options(OperatorFamily family) {
  solvers::VCycleOptions options;
  switch (family) {
    case OperatorFamily::kAnisotropic1000:
      options.relaxation = solvers::RelaxKind::kLineX;
      break;
    case OperatorFamily::kAnisoRotated:
    case OperatorFamily::kAnisoTheta30:
    case OperatorFamily::kAnisoTheta45:
      options.relaxation = solvers::RelaxKind::kLineZebraAlt;
      break;
    default:
      break;
  }
  return options;
}

/// Hierarchy this suite certifies per family: the genuinely rotated
/// (9-point) families run on Galerkin RAP coarse operators — the ladder a
/// tuned table discovers for them — because the averaged 5-point ladder
/// drops their corner couplings and only limps to high accuracy;
/// everything else keeps the historical averaged-coefficient ladder.
grid::StencilHierarchy family_hierarchy(OperatorFamily family, int n) {
  const grid::Coarsening mode = (family == OperatorFamily::kAnisoTheta30 ||
                                 family == OperatorFamily::kAnisoTheta45)
                                    ? grid::Coarsening::kRap
                                    : grid::Coarsening::kAverage;
  return grid::StencilHierarchy(make_operator(n, family), mode);
}

/// Per-family V-cycle contraction bound (error reduction per cycle) under
/// family_cycle_options.  Rationale:
///  - poisson / smooth: classical V(1,1) with red-black SOR contracts at
///    ~0.1–0.2 per cycle for smooth coefficients; 0.5 leaves headroom for
///    the smallest grids, where the boundary dominates.
///  - aniso (32:1): point relaxation smooths the weak direction poorly;
///    measured V(1,1) rates at ε = 1/32 are ~0.75–0.80 per cycle across
///    these sizes, bounded by 0.9 to absorb instance-to-instance
///    variation.  (line_relax_test certifies the ~0.2 line-smoothed rate.)
///  - aniso1000 / aniso-rot: line smoothing restores strong rates
///    (~0.1–0.5 measured); 0.65 absorbs the rotated family's half-wasted
///    sweep passes at small N.
///  - jump (contrast 100): the error iteration is non-normal, so this
///    per-cycle bound does not apply — the test body measures the
///    asymptotic geometric-mean rate instead (see comment there).
double contraction_bound(OperatorFamily family) {
  switch (family) {
    case OperatorFamily::kPoisson:
    case OperatorFamily::kSmoothVariable:
      return 0.5;
    case OperatorFamily::kJumpCoefficient:
    case OperatorFamily::kAnisotropic:
      return 0.9;
    case OperatorFamily::kAnisotropic1000:
    case OperatorFamily::kAnisoRotated:
      return 0.65;
    case OperatorFamily::kAnisoTheta30:
    case OperatorFamily::kAnisoTheta45:
      // Rotated anisotropy at ε = 10⁻²: alternating zebra lines cannot
      // follow the characteristic exactly (it lies between the axes —
      // worst at 45°), but Galerkin RAP coarse operators keep the
      // correction honest; measured rates are ~0.3–0.7 per cycle.
      return 0.9;
  }
  return 0.9;
}

// The trainer visits every level in [2, max_level]; sweep the sizes its
// default test-scale runs touch (N = 5 … 65).
class StencilConvergence
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

INSTANTIATE_TEST_SUITE_P(
    Cases, StencilConvergence,
    ::testing::Combine(::testing::Range(0, kFamilyCount),
                       ::testing::Values(2, 3, 4, 5, 6)),
    [](const auto& info) {
      return family_label(std::get<0>(info.param)) + "_L" +
             std::to_string(std::get<1>(info.param));
    });

TEST_P(StencilConvergence, VCycleContractsError) {
  const auto family = kAllOperatorFamilies[static_cast<std::size_t>(
      std::get<0>(GetParam()))];
  const int n = size_of_level(std::get<1>(GetParam()));
  const auto inst = make_instance(family, n, 2026'07'01);
  if (inst.initial_error == 0.0) GTEST_SKIP() << "degenerate zero instance";
  const grid::StencilHierarchy ops = family_hierarchy(family, n);
  // Near the rounding floor the ratio test is meaningless: once the error
  // is ~1e-12 of the start it is dominated by accumulation noise.
  const double floor = 1e-12 * inst.initial_error;
  const auto run_cycles = [&](Grid2D& x, int count) {
    for (int c = 0; c < count; ++c) {
      solvers::vcycle(ops, x, inst.problem.b, family_cycle_options(family),
                      sched(), engine().direct(), engine().scratch());
    }
  };

  Grid2D x = inst.problem.x0;
  if (family == OperatorFamily::kJumpCoefficient) {
    // The 100× jump makes the error iteration strongly non-normal at
    // small N: individual cycles can transiently *grow* the error norm
    // even though the spectral radius is < 1.  Certify the asymptotic
    // geometric-mean rate over six cycles after a three-cycle transient
    // instead of per-cycle monotonicity (same pattern as the existing
    // ContractionSweep), bounded by 0.95 — still > 10^1.3 gain per 60
    // cycles, i.e. genuine convergence, which the FMG test below then
    // drives to 1e-8.
    run_cycles(x, 3);
    const double e_start = error_of(inst, x);
    if (e_start <= floor) return;  // already at machine precision
    run_cycles(x, 6);
    const double e_end = error_of(inst, x);
    if (e_end <= floor) return;
    const double rate = std::pow(e_end / e_start, 1.0 / 6.0);
    EXPECT_LT(rate, 0.95) << "jump N=" << n;
    return;
  }
  // The normal-behaved families must contract on *every* cycle, at every
  // size the trainer visits (bounds: see contraction_bound).
  const double bound = contraction_bound(family);
  double prev = inst.initial_error;
  for (int cycle = 1; cycle <= 6; ++cycle) {
    run_cycles(x, 1);
    const double err = error_of(inst, x);
    if (err <= floor) break;
    EXPECT_LE(err, bound * prev)
        << to_string(family) << " N=" << n << " cycle " << cycle;
    prev = err;
  }
}

TEST_P(StencilConvergence, FmgThenVCyclesReachHighAccuracy) {
  const auto family = kAllOperatorFamilies[static_cast<std::size_t>(
      std::get<0>(GetParam()))];
  const int n = size_of_level(std::get<1>(GetParam()));
  const auto inst = make_instance(family, n, 2026'07'02);
  if (inst.initial_error == 0.0) GTEST_SKIP() << "degenerate zero instance";
  const grid::StencilHierarchy ops = family_hierarchy(family, n);
  Grid2D x = inst.problem.x0;
  // One FMG ramp plus V-cycles: with the weakest certified per-cycle
  // contraction (0.9, see contraction_bound) 200 cycles still guarantee
  // a 10^8 reduction; the well-conditioned families reach it within ~15.
  const auto outcome = solvers::solve_reference_fmg(
      ops, x, inst.problem.b, family_cycle_options(family), 200,
      [&](const Grid2D& it, int) {
        return error_of(inst, it) <= 1e-8 * inst.initial_error;
      },
      sched(), engine().direct(), engine().scratch());
  EXPECT_TRUE(outcome.converged)
      << to_string(family) << " N=" << n << " stalled at relative error "
      << error_of(inst, x) / inst.initial_error;
}

TEST_P(StencilConvergence, DirectSolveReproducesManufacturedSolution) {
  const auto family = kAllOperatorFamilies[static_cast<std::size_t>(
      std::get<0>(GetParam()))];
  const int n = size_of_level(std::get<1>(GetParam()));
  if (n > 33) GTEST_SKIP() << "O(N^4) factorization; covered below 65";
  const auto inst = make_instance(family, n, 2026'07'03);
  const grid::StencilOp op = make_operator(n, family);
  Grid2D x = inst.problem.x0;
  engine().direct().solve(op, inst.problem.b, x);
  // Banded Cholesky is backward stable: the error is O(κ·eps)·‖x‖, with
  // κ ≲ 1e4 at these sizes (1e4·1e-16 = 1e-12; 1e-9 covers the jump
  // family's extra 100× contrast in κ).
  EXPECT_LE(error_of(inst, x), 1e-9 * (inst.initial_error + 1.0))
      << to_string(family) << " N=" << n;
}

// ------------------------------------------------------ tuned sessions --

tune::TrainerOptions tiny_training(OperatorFamily family) {
  tune::TrainerOptions options;
  options.accuracies = {10.0, 1e3, 1e5};
  options.max_level = 4;  // N <= 17: trains in milliseconds
  // Two instances per level: a single-instance table can certify an
  // iteration count that a held-out instance misses by a hair, which is
  // exactly the flakiness this suite must not have.
  options.training_instances = 2;
  options.train_fmg = true;
  options.seed = 77;
  options.op_family = family;
  return options;
}

tune::TunedConfig train_for(OperatorFamily family) {
  tune::Trainer trainer(tiny_training(family), engine());
  return trainer.train();
}

class StencilSession : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Families, StencilSession,
                         ::testing::Range(0, kFamilyCount),
                         [](const auto& info) {
                           return family_label(info.param);
                         });

TEST_P(StencilSession, PerOperatorTrainedSessionDeliversTunedAccuracies) {
  const auto family =
      kAllOperatorFamilies[static_cast<std::size_t>(GetParam())];
  const tune::TunedConfig config = train_for(family);
  EXPECT_EQ(config.op_family, to_string(family));
  const int n = size_of_level(4);
  SolveSession session(engine(), config, make_operator(n, family));
  const auto inst = make_instance(family, n, 2026'07'04);
  for (int i = 0; i < config.accuracy_count(); ++i) {
    Grid2D x = inst.problem.x0;
    session.solve_v(x, inst.problem.b, i);
    const double achieved = tune::accuracy_of(inst, x, sched());
    // The trainer certifies each cell on its training inputs; a held-out
    // instance of the same (operator, distribution, size) scenario may
    // land somewhat below, but an order of magnitude is a training bug
    // (same 10× contract run_tuned_v enforces in the bench harness).
    EXPECT_GE(achieved, 0.1 * config.accuracies()[static_cast<std::size_t>(i)])
        << to_string(family) << " accuracy index " << i;
  }
}

TEST_P(StencilSession, ConcurrentStencilSolvesAreBitIdenticalToSerial) {
  const auto family =
      kAllOperatorFamilies[static_cast<std::size_t>(GetParam())];
  const tune::TunedConfig config = train_for(family);
  const int n = size_of_level(4);
  SolveSession session(engine(), config, make_operator(n, family));
  const auto inst = make_instance(family, n, 2026'07'05);
  const int top = config.accuracy_count() - 1;

  Grid2D reference = inst.problem.x0;
  session.solve_v(reference, inst.problem.b, top);

  constexpr int kThreads = 4;
  std::vector<Grid2D> results(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Grid2D x = inst.problem.x0;
      session.solve_v(x, inst.problem.b, top);
      results[static_cast<std::size_t>(t)] = std::move(x);
    });
  }
  for (auto& w : workers) w.join();
  for (const Grid2D& x : results) {
    ASSERT_EQ(0, std::memcmp(x.data(), reference.data(),
                             reference.size() * sizeof(double)))
        << to_string(family);
  }
}

// ------------------------------------------------- classical coarse call --

TEST(ClassicalCoarse, RecurseClassicalCellIsBitwiseAClassicalVCycle) {
  // A kRecurse cell with sub_accuracy = kClassicalCoarse must execute the
  // classical V-cycle exactly: one body per level, direct at the base,
  // recurse-ω pre/post sweeps — i.e. solvers::vcycle with matching
  // options.  This cell type is what lets per-operator tuned tables
  // escape the accuracy ladder's coarse-solve floor on slowly converging
  // operators (tune/table.h); pin its semantics bit for bit.
  const auto family = OperatorFamily::kAnisotropic;
  const int n = size_of_level(5);
  const auto inst = make_instance(family, n, 2026'07'08);
  const grid::StencilHierarchy ops(make_operator(n, family));

  // Both for the historical point-SOR shape and for a line smoother: the
  // cell's smoother must travel down the classical ramp exactly as
  // VCycleOptions::relaxation would.
  for (const solvers::RelaxKind smoother :
       {solvers::RelaxKind::kSor, solvers::RelaxKind::kLineZebraAlt}) {
    tune::TunedConfig config(tune::paper_accuracies(), 5);
    for (int level = 2; level <= 5; ++level) {
      for (int i = 0; i < config.accuracy_count(); ++i) {
        tune::VEntry cell;
        cell.choice.kind = tune::VKind::kRecurse;
        cell.choice.sub_accuracy = tune::kClassicalCoarse;
        cell.choice.iterations = 3;
        cell.choice.smoother = smoother;
        cell.trained = true;
        config.v_entry(level, i) = cell;
      }
    }
    const tune::TunedExecutor executor(config, sched(), engine().direct(),
                                       engine().scratch(), nullptr,
                                       engine().relax(), &ops);
    Grid2D via_executor = inst.problem.x0;
    executor.run_v(via_executor, inst.problem.b, 0);

    solvers::VCycleOptions options;  // defaults: 1 pre/post sweep at 1.15,
    options.omega = engine().relax().recurse_omega;  // direct_level 1
    options.relaxation = smoother;
    Grid2D via_vcycle = inst.problem.x0;
    for (int c = 0; c < 3; ++c) {
      solvers::vcycle(ops, via_vcycle, inst.problem.b, options, sched(),
                      engine().direct(), engine().scratch());
    }
    ASSERT_EQ(0, std::memcmp(via_executor.data(), via_vcycle.data(),
                             via_vcycle.size() * sizeof(double)))
        << solvers::to_string(smoother);
  }
}

// ----------------------------------------------------- fast-path parity --

TEST(StencilFastPath, PoissonSessionSolveIsBitwiseIdenticalToLegacyPath) {
  // Acceptance gate: a constant-coefficient solve routed through
  // StencilOp's fast path (session → executor → op-aware kernels) must be
  // bit-for-bit what the pre-operator executor produced.  The parity
  // contract is about the *fast path*, so the table is trained in the
  // pre-RAP space (averaged coarsening only): a table with Galerkin-RAP
  // cells runs genuinely different — 9-point — arithmetic by design.
  tune::TrainerOptions legacy_options = tiny_training(OperatorFamily::kPoisson);
  legacy_options.coarsenings = {grid::Coarsening::kAverage};
  const tune::TunedConfig config =
      tune::Trainer(legacy_options, engine()).train();
  const int n = size_of_level(4);
  const auto inst = make_instance(OperatorFamily::kPoisson, n, 2026'07'06);
  SolveSession session(engine(), config, n);  // Poisson fast path

  // The legacy path: an executor with no operator hierarchy, exactly what
  // SolveSession constructed before operators existed.
  const tune::TunedExecutor legacy(config, sched(), engine().direct(),
                                   engine().scratch(), nullptr,
                                   engine().relax());
  for (int i = 0; i < config.accuracy_count(); ++i) {
    Grid2D via_session = inst.problem.x0;
    session.solve_v(via_session, inst.problem.b, i);
    Grid2D via_legacy = inst.problem.x0;
    legacy.run_v(via_legacy, inst.problem.b, i);
    ASSERT_EQ(0, std::memcmp(via_session.data(), via_legacy.data(),
                             via_legacy.size() * sizeof(double)))
        << "V accuracy index " << i;

    Grid2D fmg_session = inst.problem.x0;
    session.solve_fmg(fmg_session, inst.problem.b, i);
    Grid2D fmg_legacy = inst.problem.x0;
    legacy.run_fmg(fmg_legacy, inst.problem.b, i);
    ASSERT_EQ(0, std::memcmp(fmg_session.data(), fmg_legacy.data(),
                             fmg_legacy.size() * sizeof(double)))
        << "FMG accuracy index " << i;
  }
}

TEST(StencilFastPath, PoissonReferenceCyclesAreBitwiseIdenticalToLegacyPath) {
  const int n = 33;
  const auto inst = make_instance(OperatorFamily::kPoisson, n, 2026'07'07);
  const grid::StencilHierarchy ops(grid::StencilOp::poisson(n));

  Grid2D via_ops = inst.problem.x0;
  Grid2D legacy = inst.problem.x0;
  for (int c = 0; c < 4; ++c) {
    solvers::vcycle(ops, via_ops, inst.problem.b, solvers::VCycleOptions{},
                    sched(), engine().direct(), engine().scratch());
    solvers::vcycle(legacy, inst.problem.b, solvers::VCycleOptions{}, sched(),
                    engine().direct(), engine().scratch());
  }
  ASSERT_EQ(0, std::memcmp(via_ops.data(), legacy.data(),
                           legacy.size() * sizeof(double)));

  Grid2D fmg_ops = inst.problem.x0;
  Grid2D fmg_legacy = inst.problem.x0;
  solvers::full_multigrid(ops, fmg_ops, inst.problem.b,
                          solvers::VCycleOptions{}, sched(), engine().direct(),
                          engine().scratch());
  solvers::full_multigrid(fmg_legacy, inst.problem.b, solvers::VCycleOptions{},
                          sched(), engine().direct(), engine().scratch());
  ASSERT_EQ(0, std::memcmp(fmg_ops.data(), fmg_legacy.data(),
                           fmg_legacy.size() * sizeof(double)));
}

}  // namespace
}  // namespace pbmg
