// Drift detection & background retune: KS-style bucket-mass distance,
// latency-baseline serialization, DriftWatcher policy behaviour (inflated
// samples fire, stationary load never does), honest SolveStats (real
// iteration counts, residual-audited converged flag), request validation,
// and the SolveService generation swap — including race-freedom of
// install() under concurrent solves (this suite runs under TSan in CI).

#include <atomic>
#include <chrono>
#include <cstring>
#include <initializer_list>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/solve_service.h"
#include "grid/level.h"
#include "obs/drift.h"
#include "runtime/machine_profile.h"
#include "support/error.h"
#include "support/rng.h"
#include "tune/accuracy.h"
#include "tune/baseline.h"
#include "tune/trainer.h"

namespace pbmg {
namespace {

constexpr int kMaxLevel = 4;

Engine& engine() {
  static Engine instance([] {
    rt::MachineProfile p;
    p.name = "drift-test";
    p.threads = 4;
    p.grain_rows = 4;
    return p;
  }());
  return instance;
}

const tune::TunedConfig& trained() {
  static const tune::TunedConfig config = [] {
    tune::TrainerOptions options;
    options.max_level = kMaxLevel;
    options.seed = 4242;
    tune::Trainer trainer(options, engine());
    return trainer.train();
  }();
  return config;
}

obs::HistogramSnapshot snapshot_of(std::initializer_list<double> values) {
  obs::Histogram hist;
  for (double v : values) hist.record(v);
  return hist.snapshot();
}

obs::HistogramSnapshot snapshot_at(double value, int count) {
  obs::Histogram hist;
  for (int i = 0; i < count; ++i) hist.record(value);
  return hist.snapshot();
}

// ---------------------------------------------------------- ks_distance --

TEST(KsDistance, IdenticalDistributionsScoreZero) {
  const auto a = snapshot_of({1e-3, 2e-3, 4e-3, 8e-3});
  EXPECT_DOUBLE_EQ(obs::ks_distance(a, a), 0.0);
}

TEST(KsDistance, DisjointDistributionsScoreOne) {
  const auto fast = snapshot_at(1e-5, 16);
  const auto slow = snapshot_at(1e-2, 16);
  EXPECT_DOUBLE_EQ(obs::ks_distance(fast, slow), 1.0);
}

TEST(KsDistance, EmptyHistogramScoresZero) {
  const obs::HistogramSnapshot empty;
  const auto a = snapshot_of({1e-3});
  EXPECT_DOUBLE_EQ(obs::ks_distance(empty, a), 0.0);
  EXPECT_DOUBLE_EQ(obs::ks_distance(a, empty), 0.0);
}

TEST(KsDistance, PartialOverlapScoresBetween) {
  obs::Histogram a, b;
  for (int i = 0; i < 8; ++i) a.record(1e-4);
  for (int i = 0; i < 8; ++i) a.record(1e-3);
  for (int i = 0; i < 8; ++i) b.record(1e-3);
  for (int i = 0; i < 8; ++i) b.record(1e-2);
  // CDFs meet only on the shared 1e-3 mass: distance is exactly 1/2.
  EXPECT_DOUBLE_EQ(obs::ks_distance(a.snapshot(), b.snapshot()), 0.5);
}

// ------------------------------------------------- baseline persistence --

TEST(LatencyBaseline, JsonRoundTripPreservesEveryEntry) {
  obs::LatencyBaseline baseline;
  baseline.set(17, 0, snapshot_of({1e-4, 2e-4, 3e-4}));
  baseline.set(33, 2, snapshot_of({5e-3, 6e-3}));

  const obs::LatencyBaseline copy =
      obs::LatencyBaseline::from_json(baseline.to_json());
  ASSERT_EQ(copy.size(), 2u);
  const obs::HistogramSnapshot* small = copy.find(17, 0);
  ASSERT_NE(small, nullptr);
  EXPECT_EQ(small->count, 3);
  EXPECT_DOUBLE_EQ(small->sum, baseline.find(17, 0)->sum);
  EXPECT_DOUBLE_EQ(small->min, baseline.find(17, 0)->min);
  EXPECT_DOUBLE_EQ(small->max, baseline.find(17, 0)->max);
  EXPECT_EQ(small->buckets, baseline.find(17, 0)->buckets);
  ASSERT_NE(copy.find(33, 2), nullptr);
  EXPECT_EQ(copy.find(33, 2)->count, 2);
  EXPECT_EQ(copy.find(99, 0), nullptr);
}

TEST(LatencyBaseline, RejectsCorruptSnapshots) {
  Json entry = obs::snapshot_to_json(snapshot_of({1e-3, 2e-3}));
  entry.set("count", 7);  // bucket sum no longer matches
  EXPECT_THROW(obs::snapshot_from_json(entry), ConfigError);

  Json too_wide = obs::snapshot_to_json(snapshot_of({1e-3}));
  Json buckets = Json::array();
  for (int i = 0; i < obs::Histogram::kBucketCount + 5; ++i) {
    buckets.push_back(std::int64_t{0});
  }
  too_wide.set("buckets", std::move(buckets));
  too_wide.set("count", 0);
  EXPECT_THROW(obs::snapshot_from_json(too_wide), ConfigError);
}

TEST(LatencyBaseline, MeasuredBaselineCoversEveryTrainedCell) {
  const obs::LatencyBaseline baseline = [] {
    tune::BaselineOptions options;
    options.samples = 2;
    return tune::measure_latency_baseline(engine(), trained(), options);
  }();
  const int cells = (kMaxLevel - 1) * trained().accuracy_count();
  EXPECT_EQ(baseline.size(), static_cast<std::size_t>(cells));
  for (int level = 2; level <= kMaxLevel; ++level) {
    for (int acc = 0; acc < trained().accuracy_count(); ++acc) {
      const obs::HistogramSnapshot* cell =
          baseline.find(size_of_level(level), acc);
      ASSERT_NE(cell, nullptr) << "level " << level << " acc " << acc;
      EXPECT_EQ(cell->count, 2);
      EXPECT_GT(cell->sum, 0.0);
    }
  }
}

// --------------------------------------------------------- DriftWatcher --

obs::DriftPolicy tight_policy() {
  obs::DriftPolicy policy;
  policy.min_window_samples = 8;
  policy.sustained_windows = 2;
  return policy;
}

TEST(DriftWatcher, StationarySamplesNeverFire) {
  obs::LatencyBaseline baseline;
  baseline.set(33, 1, snapshot_at(1e-3, 32));
  obs::DriftWatcher watcher(std::move(baseline), tight_policy());
  for (int i = 0; i < 200; ++i) {
    const obs::DriftObservation obs = watcher.observe(33, 1, 1e-3);
    EXPECT_TRUE(obs.baselined);
    EXPECT_FALSE(obs.drifted);
    EXPECT_FALSE(obs.retune);
  }
}

TEST(DriftWatcher, InflatedSamplesFireAfterSustainedWindows) {
  obs::LatencyBaseline baseline;
  baseline.set(33, 1, snapshot_at(1e-3, 32));
  obs::DriftWatcher watcher(std::move(baseline), tight_policy());
  // 5× slower than baseline: p90 ratio ≈ 5 (> 1.5), KS = 1 (> 0.30).
  // Windows close every 8 samples; the 2nd drifted window must fire.
  int retunes = 0;
  int windows = 0;
  for (int i = 0; i < 16; ++i) {
    const obs::DriftObservation obs = watcher.observe(33, 1, 5e-3);
    if (obs.window_complete) {
      ++windows;
      EXPECT_TRUE(obs.drifted);
      EXPECT_GT(obs.p90_ratio, 1.5);
      EXPECT_GT(obs.ks, 0.30);
    }
    if (obs.retune) ++retunes;
  }
  EXPECT_EQ(windows, 2);
  EXPECT_EQ(retunes, 1);
  // The streak was consumed by the fire: the very next drifted window must
  // NOT re-fire (it takes another sustained run — this is what keeps the
  // watcher quiet while a background retune is in flight).
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(watcher.observe(33, 1, 5e-3).retune);
  }
}

TEST(DriftWatcher, OneNoisyWindowDoesNotFire) {
  obs::LatencyBaseline baseline;
  baseline.set(33, 1, snapshot_at(1e-3, 32));
  obs::DriftWatcher watcher(std::move(baseline), tight_policy());
  // One slow window, then recovery: the streak resets, nothing fires.
  for (int i = 0; i < 8; ++i) watcher.observe(33, 1, 5e-3);
  for (int i = 0; i < 80; ++i) {
    EXPECT_FALSE(watcher.observe(33, 1, 1e-3).retune);
  }
}

TEST(DriftWatcher, SkipsKeysWithoutBaseline) {
  obs::LatencyBaseline baseline;
  baseline.set(33, 1, snapshot_at(1e-3, 32));
  obs::DriftWatcher watcher(std::move(baseline), tight_policy());
  for (int i = 0; i < 100; ++i) {
    const obs::DriftObservation obs = watcher.observe(65, 0, 10.0);
    EXPECT_FALSE(obs.baselined);
    EXPECT_FALSE(obs.retune);
  }
}

TEST(DriftWatcher, RebaseDropsWindowsAndStreaks) {
  obs::LatencyBaseline baseline;
  baseline.set(33, 1, snapshot_at(1e-3, 32));
  obs::DriftWatcher watcher(std::move(baseline), tight_policy());
  // One drifted window plus most of a second: one more sample would fire.
  for (int i = 0; i < 15; ++i) watcher.observe(33, 1, 5e-3);
  obs::LatencyBaseline fresh;
  fresh.set(33, 1, snapshot_at(5e-3, 32));
  watcher.rebase(std::move(fresh));
  // Against the rebased baseline these samples are healthy — and the old
  // streak must be gone.
  for (int i = 0; i < 100; ++i) {
    const obs::DriftObservation obs = watcher.observe(33, 1, 5e-3);
    EXPECT_FALSE(obs.drifted);
    EXPECT_FALSE(obs.retune);
  }
}

TEST(DriftWatcher, ResidualStatsAccumulateEvenWithoutBaseline) {
  // The input-distribution half of drift: initial-residual summaries
  // accumulate from the first request, including for request shapes that
  // have no latency baseline to compare against.
  obs::DriftWatcher watcher(obs::LatencyBaseline{}, tight_policy());
  // 1e2 and 1e4: mean log10 = 3, population stddev = 1.
  watcher.observe(33, 0, 1e-3, false, 1e2);
  watcher.observe(33, 0, 1e-3, false, 1e4);
  // Unaudited solves (NaN default) and degenerate residuals don't count.
  watcher.observe(33, 0, 1e-3, false);
  watcher.observe(33, 0, 1e-3, false, 0.0);
  const auto stats = watcher.residual_stats();
  ASSERT_EQ(stats.size(), 1u);
  const auto& entry = stats.at(obs::LatencyBaseline::Key{33, 0, false});
  EXPECT_EQ(entry.count, 2);
  EXPECT_NEAR(entry.mean_log10, 3.0, 1e-12);
  EXPECT_NEAR(entry.stddev_log10, 1.0, 1e-12);
}

TEST(DriftWatcher, ResidualStatsSplitPerKeyAndRebaseClears) {
  obs::DriftWatcher watcher(obs::LatencyBaseline{}, tight_policy());
  watcher.observe(33, 0, 1e-3, false, 1e3);
  watcher.observe(33, 0, 1e-3, true, 1e5);   // FMG: separate key
  watcher.observe(65, 1, 1e-3, false, 1e1);  // different shape
  auto stats = watcher.residual_stats();
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_NEAR(stats.at(obs::LatencyBaseline::Key{33, 0, false}).mean_log10,
              3.0, 1e-12);
  EXPECT_NEAR(stats.at(obs::LatencyBaseline::Key{33, 0, true}).mean_log10,
              5.0, 1e-12);
  EXPECT_NEAR(stats.at(obs::LatencyBaseline::Key{65, 1, false}).mean_log10,
              1.0, 1e-12);
  // A retune/install rebases the watcher: the workload summary restarts
  // with the new generation, like the latency windows do.
  watcher.rebase(obs::LatencyBaseline{});
  EXPECT_TRUE(watcher.residual_stats().empty());
}

TEST(LatencyBaseline, FmgKeysAreSeparateAndSurviveJsonRoundTrip) {
  obs::LatencyBaseline baseline;
  baseline.set(33, 1, snapshot_at(1e-3, 4));
  baseline.set(33, 1, snapshot_at(3e-3, 4), /*fmg=*/true);
  ASSERT_EQ(baseline.size(), 2u);
  ASSERT_NE(baseline.find(33, 1), nullptr);
  ASSERT_NE(baseline.find(33, 1, /*fmg=*/true), nullptr);
  EXPECT_NE(baseline.find(33, 1)->sum, baseline.find(33, 1, true)->sum);

  const obs::LatencyBaseline copy =
      obs::LatencyBaseline::from_json(baseline.to_json());
  ASSERT_EQ(copy.size(), 2u);
  EXPECT_DOUBLE_EQ(copy.find(33, 1)->sum, baseline.find(33, 1)->sum);
  EXPECT_DOUBLE_EQ(copy.find(33, 1, true)->sum,
                   baseline.find(33, 1, true)->sum);

  // Documents written before the fmg key existed carry no "fmg" field;
  // they must keep loading as V-cycle (fmg = false) entries.
  obs::LatencyBaseline v_only;
  v_only.set(17, 0, snapshot_at(1e-4, 2));
  const obs::LatencyBaseline old_doc =
      obs::LatencyBaseline::from_json(v_only.to_json());
  ASSERT_NE(old_doc.find(17, 0), nullptr);
  EXPECT_EQ(old_doc.find(17, 0, /*fmg=*/true), nullptr);
}

TEST(DriftWatcher, MixedVAndFmgWorkloadsKeepSeparateWindows) {
  // FMG solves are legitimately slower than V-cycles (the ramp).  Keyed
  // together — the old bug — a workload shifting between modes read as
  // drift; keyed apart, each mode is judged against its own baseline.
  obs::LatencyBaseline baseline;
  baseline.set(33, 1, snapshot_at(1e-3, 32));
  baseline.set(33, 1, snapshot_at(3e-3, 32), /*fmg=*/true);
  obs::DriftWatcher watcher(std::move(baseline), tight_policy());
  // Interleaved healthy traffic of both modes: no window ever drifts,
  // even though the FMG samples are 3× the V baseline.
  for (int i = 0; i < 64; ++i) {
    const bool fmg = (i % 2) == 1;
    const obs::DriftObservation obs =
        watcher.observe(33, 1, fmg ? 3e-3 : 1e-3, fmg);
    EXPECT_TRUE(obs.baselined);
    EXPECT_FALSE(obs.drifted) << "i=" << i << " fmg=" << fmg;
    EXPECT_FALSE(obs.retune);
  }
  // Drift in ONE mode fires without the healthy mode masking it: V-cycle
  // latency inflates 5×, FMG stays at its baseline.
  int retunes = 0;
  for (int i = 0; i < 32; ++i) {
    const bool fmg = (i % 2) == 1;
    const obs::DriftObservation obs =
        watcher.observe(33, 1, fmg ? 3e-3 : 5e-3, fmg);
    if (fmg) EXPECT_FALSE(obs.drifted);
    if (obs.retune) ++retunes;
  }
  EXPECT_EQ(retunes, 1);
}

TEST(LatencyBaseline, MeasuredBaselineSplitsFmgIntoOwnKeys) {
  const obs::LatencyBaseline baseline = [] {
    tune::BaselineOptions options;
    options.samples = 1;
    options.include_fmg = true;
    return tune::measure_latency_baseline(engine(), trained(), options);
  }();
  const int cells = (kMaxLevel - 1) * trained().accuracy_count();
  EXPECT_EQ(baseline.size(), static_cast<std::size_t>(2 * cells));
  for (int level = 2; level <= kMaxLevel; ++level) {
    for (int acc = 0; acc < trained().accuracy_count(); ++acc) {
      const int n = size_of_level(level);
      const obs::HistogramSnapshot* v = baseline.find(n, acc);
      const obs::HistogramSnapshot* fmg = baseline.find(n, acc, true);
      ASSERT_NE(v, nullptr) << "level " << level << " acc " << acc;
      ASSERT_NE(fmg, nullptr) << "level " << level << " acc " << acc;
      EXPECT_EQ(v->count, 1);
      EXPECT_EQ(fmg->count, 1);
    }
  }
}

// ---------------------------------------------------- honest SolveStats --

TEST(HonestStats, TunedSolveReportsRealIterationCounts) {
  SolveService service(engine(), trained());
  const int n = size_of_level(3);
  Rng rng(11);
  const auto inst = tune::make_training_instance(
      n, InputDistribution::kUnbiased, rng, engine().scheduler());
  for (bool fmg : {false, true}) {
    SolveRequest request;
    request.accuracy_index = trained().accuracy_count() - 1;
    request.fmg = fmg;
    Grid2D x(n, 0.0);
    x.copy_from(inst.problem.x0);
    const SolveStats stats = service.solve(x, inst.problem.b, request);
    // A tuned plan executes at least one top-level iteration (a direct
    // solve reports 1); the fabricated `iterations = 0` is gone.
    EXPECT_GE(stats.iterations, 1) << "fmg=" << fmg;
    EXPECT_FALSE(stats.residual_checked);
    EXPECT_TRUE(stats.converged);
  }
}

TEST(HonestStats, ResidualAuditConfirmsConvergenceAndCatchesFailure) {
  SolveService service(engine(), trained());
  const int n = size_of_level(4);
  Rng rng(12);
  const auto inst = tune::make_training_instance(
      n, InputDistribution::kUnbiased, rng, engine().scheduler());

  SolveRequest audited;
  audited.accuracy_index = trained().accuracy_count() - 1;
  audited.residual.enabled = true;  // default ratio_limit 1.0: don't diverge
  Grid2D x(n, 0.0);
  x.copy_from(inst.problem.x0);
  const SolveStats good = service.solve(x, inst.problem.b, audited);
  EXPECT_TRUE(good.residual_checked);
  EXPECT_TRUE(good.converged);
  EXPECT_GT(good.initial_residual, 0.0);
  // The top ladder rung cuts the residual by orders of magnitude.
  EXPECT_LT(good.final_residual, 1e-2 * good.initial_residual);

  // An unmeetable ratio_limit flags the same solve unconverged — and the
  // service reports it under the "unconverged" outcome, not "ok".
  SolveRequest impossible = audited;
  impossible.residual.ratio_limit = 0.0;
  x.copy_from(inst.problem.x0);
  const SolveStats bad = service.solve(x, inst.problem.b, impossible);
  EXPECT_TRUE(bad.residual_checked);
  EXPECT_FALSE(bad.converged);
  const auto snapshot = service.metrics_snapshot();
  EXPECT_EQ(snapshot.counters.at("pbmg_solve_requests_total{outcome=\"ok\"}"),
            1);
  EXPECT_EQ(snapshot.counters.at(
                "pbmg_solve_requests_total{outcome=\"unconverged\"}"),
            1);
}

TEST(HonestStats, AuditedAndPlainSolvesShareOneLatencySeries) {
  // The residual audit runs outside the timed window, so audited and
  // unaudited solves stay comparable and land in the same per-(n, acc)
  // latency histogram.
  SolveService service(engine(), trained());
  const int n = size_of_level(3);
  Rng rng(13);
  const auto inst = tune::make_training_instance(
      n, InputDistribution::kUnbiased, rng, engine().scheduler());
  SolveRequest request;
  request.accuracy_index = 0;
  Grid2D x(n, 0.0);
  x.copy_from(inst.problem.x0);
  service.solve(x, inst.problem.b, request);
  request.residual.enabled = true;
  x.copy_from(inst.problem.x0);
  service.solve(x, inst.problem.b, request);
  const auto snapshot = service.metrics_snapshot();
  const std::string series = "pbmg_solve_latency_seconds{n=\"" +
                             std::to_string(n) + "\",acc=\"0\"}";
  EXPECT_EQ(snapshot.histograms.at(series).count, 2);
}

// --------------------------------------------------- request validation --

TEST(RequestValidation, DefaultRequestThrowsConfigError) {
  SolveService service(engine(), trained());
  const int n = size_of_level(3);
  Grid2D x(n, 0.0), b(n, 0.0);
  // accuracy_index = -1 with target_accuracy = 0.0 selects nothing; the
  // old code fell through to accuracy_index(0.0)'s opaque failure.
  EXPECT_THROW(service.solve(x, b, SolveRequest{}), ConfigError);
}

TEST(RequestValidation, OutOfRangeIndexThrowsConfigError) {
  SolveService service(engine(), trained());
  const int n = size_of_level(3);
  Grid2D x(n, 0.0), b(n, 0.0);
  SolveRequest request;
  request.accuracy_index = trained().accuracy_count();  // one past the end
  EXPECT_THROW(service.solve(x, b, request), ConfigError);
  request.accuracy_index = trained().accuracy_count() + 40;
  EXPECT_THROW(service.solve(x, b, request), ConfigError);
  // Failures were counted; the service keeps serving.
  EXPECT_EQ(service.stats().failures, 2);
  request.accuracy_index = 0;
  EXPECT_NO_THROW(service.solve(x, b, request));
}

// ------------------------------------------------ generations & retune --

bool bitwise_equal(const Grid2D& a, const Grid2D& b) {
  return a.n() == b.n() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

TEST(ServiceDrift, InstallSwapsGenerationsAtomically) {
  SolveService service(engine(), trained());
  EXPECT_EQ(service.generation(), 1);
  const SessionRef old_session = service.session(size_of_level(3));

  service.install(trained());
  EXPECT_EQ(service.generation(), 2);
  EXPECT_EQ(service.stats().generation, 2);
  // The new generation binds fresh sessions; the old ref stays valid
  // (it pins its retired generation against reclaim).
  const SessionRef fresh = service.session(size_of_level(3));
  EXPECT_NE(old_session.get(), fresh.get());
  EXPECT_EQ(old_session->n(), size_of_level(3));

  // Post-swap solves carry the new generation id.
  const int n = size_of_level(3);
  Rng rng(21);
  const auto inst = tune::make_training_instance(
      n, InputDistribution::kUnbiased, rng, engine().scheduler());
  SolveRequest request;
  request.accuracy_index = 0;
  Grid2D x(n, 0.0);
  x.copy_from(inst.problem.x0);
  EXPECT_EQ(service.solve(x, inst.problem.b, request).generation, 2);
}

TEST(ServiceDrift, SwapIsRaceFreeUnderConcurrentSolves) {
  // Client threads hammer solve() while the main thread repeatedly
  // installs new generations.  Every solve must succeed and produce the
  // golden bits (identical config across generations ⇒ identical
  // arithmetic), whichever side of a swap it lands on.  TSan in CI
  // patrols the generation handoff itself.
  SolveService service(engine(), trained());
  const int n = size_of_level(3);
  Rng rng(31);
  const auto inst = tune::make_training_instance(
      n, InputDistribution::kUnbiased, rng, engine().scheduler());
  SolveRequest request;
  request.accuracy_index = trained().accuracy_count() - 1;
  Grid2D golden(n, 0.0);
  golden.copy_from(inst.problem.x0);
  service.solve(golden, inst.problem.b, request);

  constexpr int kClients = 4;
  constexpr int kSolvesPerClient = 24;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int r = 0; r < kSolvesPerClient; ++r) {
        Grid2D x(n, 0.0);
        x.copy_from(inst.problem.x0);
        try {
          service.solve(x, inst.problem.b, request);
        } catch (...) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (!bitwise_equal(x, golden)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (int swap = 0; swap < 6; ++swap) {
    service.install(trained());
    std::this_thread::yield();
  }
  for (auto& client : clients) client.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(service.generation(), 7);
  const auto stats = service.stats();
  EXPECT_EQ(stats.requests, kClients * kSolvesPerClient + 1);
  EXPECT_EQ(stats.failures, 0);
}

TEST(ServiceDrift, SustainedDriftTriggersBackgroundRetuneAndSwap) {
  // An implausibly fast baseline makes every real solve read as drifted —
  // a deterministic stand-in for a machine that degraded after tuning.
  // The watcher must fire once, run the retune callback on a background
  // thread, and install its result; the rebased baseline (generously slow,
  // so the verdict is deterministic) then keeps the new generation quiet.
  SolveService service(engine(), trained());
  const int n = size_of_level(3);
  obs::LatencyBaseline implausible;
  implausible.set(n, 0, snapshot_at(1e-7, 32));

  std::atomic<int> retune_calls{0};
  obs::DriftPolicy policy;
  policy.min_window_samples = 4;
  policy.sustained_windows = 2;
  service.enable_drift_watch(
      std::move(implausible), policy, [&]() -> SolveService::RetuneResult {
        retune_calls.fetch_add(1, std::memory_order_relaxed);
        // A real deployment calls tune::search_then_train here (which
        // measures an honest baseline); the test returns the same tables
        // with a slow synthetic baseline so the post-swap verdict cannot
        // depend on machine noise.
        SolveService::RetuneResult result;
        result.config = trained();
        result.baseline.set(n, 0, snapshot_at(1.0, 32));
        return result;
      });

  Rng rng(41);
  const auto inst = tune::make_training_instance(
      n, InputDistribution::kUnbiased, rng, engine().scheduler());
  SolveRequest request;
  request.accuracy_index = 0;
  request.residual.enabled = true;  // drift samples are audited solves

  // 2 windows × 4 samples close against the implausible baseline and
  // fire; the background install may land at any point afterwards.
  Grid2D x(n, 0.0);
  for (int i = 0; i < 8; ++i) {
    x.copy_from(inst.problem.x0);
    service.solve(x, inst.problem.b, request);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (service.generation() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(service.generation(), 2) << "background retune never installed";
  EXPECT_EQ(retune_calls.load(), 1);

  const auto mid = service.stats();
  EXPECT_EQ(mid.retunes, 1);
  EXPECT_GE(mid.drifted_windows, 2);

  // Post-swap: solves bind the new generation and, compared against the
  // generous baseline, never read as drifted again.
  for (int i = 0; i < 12; ++i) {
    x.copy_from(inst.problem.x0);
    EXPECT_EQ(service.solve(x, inst.problem.b, request).generation, 2);
  }
  EXPECT_EQ(service.stats().retunes, 1);
  EXPECT_EQ(service.stats().drifted_windows, mid.drifted_windows);

  const auto snapshot = service.metrics_snapshot();
  EXPECT_EQ(snapshot.counters.at("pbmg_drift_retunes_total"), 1);
  EXPECT_GE(
      snapshot.counters.at("pbmg_drift_windows_total{verdict=\"drifted\"}"),
      2);
  EXPECT_EQ(snapshot.gauges.at("pbmg_config_generation"), 2.0);
  EXPECT_EQ(snapshot.gauges.at("pbmg_retune_in_progress"), 0.0);
}

TEST(ServiceDrift, StationaryServiceNeverRetunes) {
  // Baseline built from the service's own live latencies: replaying the
  // same workload against it must never fire (the self-consistency that
  // makes the watcher deployable).  Thresholds are loosened to 3× so CI
  // scheduling jitter on these microsecond solves cannot fake a drift.
  SolveService service(engine(), trained());
  const int n = size_of_level(3);
  Rng rng(51);
  const auto inst = tune::make_training_instance(
      n, InputDistribution::kUnbiased, rng, engine().scheduler());
  SolveRequest request;
  request.accuracy_index = 0;

  obs::Histogram live;
  Grid2D x(n, 0.0);
  for (int i = 0; i < 32; ++i) {
    x.copy_from(inst.problem.x0);
    live.record(service.solve(x, inst.problem.b, request).seconds);
  }
  obs::LatencyBaseline baseline;
  baseline.set(n, 0, live.snapshot());

  std::atomic<int> retune_calls{0};
  obs::DriftPolicy policy;
  policy.p90_ratio = 3.0;
  policy.ks_threshold = 0.5;
  policy.min_window_samples = 8;
  policy.sustained_windows = 2;
  service.enable_drift_watch(std::move(baseline), policy,
                             [&]() -> SolveService::RetuneResult {
                               retune_calls.fetch_add(1);
                               return {trained(), {}, nullptr};
                             });
  for (int i = 0; i < 64; ++i) {
    x.copy_from(inst.problem.x0);
    service.solve(x, inst.problem.b, request);
  }
  EXPECT_EQ(retune_calls.load(), 0);
  EXPECT_EQ(service.generation(), 1);
  EXPECT_EQ(service.stats().retunes, 0);
}

}  // namespace
}  // namespace pbmg
