// Tests for the observability layer (src/obs/): metrics registry,
// log-scale latency histograms, and per-solve phase profiling.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "grid/problem.h"
#include "obs/metrics.h"
#include "obs/phase_profile.h"
#include "solvers/multigrid.h"
#include "support/error.h"
#include "support/rng.h"
#include "support/timer.h"

namespace pbmg {
namespace {

TEST(Counter, AccumulatesRelaxed) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(Gauge, LastWriteWins) {
  obs::Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST(Histogram, BucketIndexIsMonotonicAndInRange) {
  int previous = 0;
  for (double v = 1e-9; v < 1e4; v *= 1.07) {
    const int index = obs::Histogram::bucket_index(v);
    ASSERT_GE(index, 0);
    ASSERT_LT(index, obs::Histogram::kBucketCount);
    ASSERT_GE(index, previous) << "bucket index decreased at v=" << v;
    previous = index;
  }
  // Every value lands strictly at or below its bucket's upper bound and
  // above the previous bucket's.
  for (double v : {1e-6, 3.7e-4, 1e-2, 0.5, 1.0, 99.0}) {
    const int index = obs::Histogram::bucket_index(v);
    EXPECT_LE(v, obs::Histogram::bucket_upper_bound(index));
    if (index > 0) {
      EXPECT_GT(v, obs::Histogram::bucket_upper_bound(index - 1));
    }
  }
  // Degenerate inputs clamp into the boundary buckets, never throw.
  EXPECT_EQ(obs::Histogram::bucket_index(0.0), 0);
  EXPECT_EQ(obs::Histogram::bucket_index(-5.0), 0);
  EXPECT_EQ(obs::Histogram::bucket_index(1e9),
            obs::Histogram::kBucketCount - 1);
}

TEST(Histogram, PercentilesWithinBucketResolution) {
  obs::Histogram hist;
  // 0.1ms .. ~100ms, uniformly spaced: exact percentiles are easy.
  std::vector<double> values;
  for (int i = 1; i <= 1000; ++i) {
    values.push_back(1e-4 * static_cast<double>(i));
  }
  for (double v : values) hist.record(v);
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, 1000);
  EXPECT_NEAR(snap.sum, 1e-4 * 1000.0 * 1001.0 / 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(snap.min, 1e-4);
  EXPECT_DOUBLE_EQ(snap.max, 0.1);
  const double tol = obs::Histogram::relative_resolution();
  for (double p : {50.0, 90.0, 99.0}) {
    const double exact =
        values[static_cast<std::size_t>(std::ceil(p / 100.0 * 1000.0)) - 1];
    const double estimate = snap.percentile(p);
    EXPECT_LE(estimate, exact * tol) << "p" << p;
    EXPECT_GE(estimate, exact / tol) << "p" << p;
  }
  // Extremes clamp to the observed range.
  EXPECT_GE(snap.percentile(0.0), snap.min);
  EXPECT_LE(snap.percentile(100.0), snap.max);
}

TEST(Histogram, ConcurrentRecordingIsLossless) {
  obs::Histogram hist;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.record(1e-5 * static_cast<double>(1 + (i + t) % 100));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  std::int64_t bucket_total = 0;
  for (const auto b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
  EXPECT_GT(snap.sum, 0.0);
}

TEST(Histogram, SnapshotIsIsolatedFromLaterRecords) {
  obs::Histogram hist;
  hist.record(0.5);
  const auto before = hist.snapshot();
  hist.record(2.0);
  hist.record(4.0);
  EXPECT_EQ(before.count, 1);
  EXPECT_DOUBLE_EQ(before.sum, 0.5);
  EXPECT_EQ(hist.snapshot().count, 3);
}

TEST(MetricsRegistry, AccessorsReturnStableAddresses) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.counter("pbmg_test_total");
  obs::Counter& b = registry.counter("pbmg_test_total");
  EXPECT_EQ(&a, &b);
  obs::Histogram& h1 = registry.histogram("pbmg_test_seconds");
  obs::Histogram& h2 = registry.histogram("pbmg_test_seconds");
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistry, NameCollisionAcrossKindsThrows) {
  obs::MetricsRegistry registry;
  registry.counter("pbmg_taken");
  EXPECT_THROW(registry.gauge("pbmg_taken"), InvalidArgument);
  EXPECT_THROW(registry.histogram("pbmg_taken"), InvalidArgument);
  registry.gauge("pbmg_level");
  EXPECT_THROW(registry.counter("pbmg_level"), InvalidArgument);
}

TEST(MetricsRegistry, SnapshotAndJsonExposition) {
  obs::MetricsRegistry registry;
  registry.counter("pbmg_requests_total").add(7);
  registry.gauge("pbmg_pool_bytes").set(4096.0);
  obs::Histogram& hist =
      registry.histogram("pbmg_latency_seconds{n=\"65\",acc=\"0\"}");
  hist.record(0.01);
  hist.record(0.02);

  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("pbmg_requests_total"), 7);
  EXPECT_EQ(snap.gauges.at("pbmg_pool_bytes"), 4096.0);
  const auto& h = snap.histograms.at("pbmg_latency_seconds{n=\"65\",acc=\"0\"}");
  EXPECT_EQ(h.count, 2);
  EXPECT_NEAR(h.mean(), 0.015, 1e-12);

  const std::string json = obs::to_json(snap).dump();
  EXPECT_NE(json.find("pbmg_requests_total"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(MetricsRegistry, TextExpositionCarriesLabelsAndSeries) {
  obs::MetricsRegistry registry;
  registry.counter("pbmg_requests_total").add(3);
  registry.histogram("pbmg_latency_seconds{n=\"65\"}").record(0.25);
  const std::string text = obs::to_text(registry.snapshot());
  EXPECT_NE(text.find("# TYPE pbmg_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("pbmg_requests_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pbmg_latency_seconds histogram"),
            std::string::npos);
  // The `le` label is spliced into the existing label set.
  EXPECT_NE(text.find("pbmg_latency_seconds_bucket{n=\"65\",le=\""),
            std::string::npos);
  EXPECT_NE(text.find("pbmg_latency_seconds_bucket{n=\"65\",le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("pbmg_latency_seconds_count{n=\"65\"} 1"),
            std::string::npos);
}

TEST(PhaseProfile, RecordsPerLevelAndPhase) {
  obs::PhaseProfile profile;
  profile.record(obs::Phase::kRelax, 5, 0.25);
  profile.record(obs::Phase::kRelax, 5, 0.25);
  profile.record(obs::Phase::kRestrict, 4, 0.5);
  EXPECT_NEAR(profile.total_seconds(), 1.0, 1e-6);
  EXPECT_NEAR(profile.phase_seconds(obs::Phase::kRelax), 0.5, 1e-6);
  const auto entries = profile.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].level, 5);  // finest first
  EXPECT_EQ(entries[0].phase, obs::Phase::kRelax);
  EXPECT_EQ(entries[0].count, 2);
  EXPECT_EQ(entries[1].level, 4);
  profile.reset();
  EXPECT_EQ(profile.total_seconds(), 0.0);
  EXPECT_TRUE(profile.entries().empty());
}

TEST(PhaseProfile, NullSinkTimerIsANoOp) {
  // The un-profiled fast path: a null profile must be safe and free.
  for (int i = 0; i < 1000; ++i) {
    obs::ScopedPhaseTimer timer(nullptr, obs::Phase::kRelax, 3);
  }
  SUCCEED();
}

TEST(PhaseProfile, JsonGroupsEntriesByLevel) {
  obs::PhaseProfile profile;
  profile.record(obs::Phase::kRelax, 3, 0.1);
  profile.record(obs::Phase::kDirect, 1, 0.05);
  const std::string json = obs::to_json(profile).dump();
  EXPECT_NE(json.find("\"total_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"relax_s\""), std::string::npos);
  EXPECT_NE(json.find("\"direct_s\""), std::string::npos);
  EXPECT_NE(json.find("\"levels\""), std::string::npos);
}

TEST(PhaseProfile, VCyclePhaseSumsApproximateWallTime) {
  Engine engine(rt::MachineProfile{"test", 2, 8, 0, 16384});
  const int n = 129;
  Rng rng(4242);
  auto problem = make_problem(n, InputDistribution::kUnbiased, rng);
  Grid2D& x = problem.x0;
  const Grid2D& b = problem.b;

  auto profile = std::make_shared<obs::PhaseProfile>();
  solvers::VCycleOptions options;
  options.profile = profile.get();
  const double t0 = now_seconds();
  for (int it = 0; it < 5; ++it) {
    solvers::vcycle(x, b, options, engine.scheduler(), engine.direct(),
                    engine.scratch());
  }
  const double wall = now_seconds() - t0;

  // The scoped timers cover relaxation, transfer and direct phases; the
  // uncovered remainder is scratch-lease bookkeeping.  Bounds stay loose
  // for CI noise (and TSan's instrumented clocks).
  const double attributed = profile->total_seconds();
  EXPECT_GT(attributed, 0.0);
  EXPECT_GE(attributed, 0.1 * wall);
  EXPECT_LE(attributed, 2.0 * wall + 1e-3);

  // Every phase a V-cycle executes showed up, at more than one level.
  EXPECT_GT(profile->phase_seconds(obs::Phase::kRelax), 0.0);
  const auto entries = profile->entries();
  int distinct_levels = 0;
  int last_level = -1;
  for (const auto& entry : entries) {
    if (entry.level != last_level) {
      ++distinct_levels;
      last_level = entry.level;
    }
  }
  EXPECT_GT(distinct_levels, 2);
  bool saw_direct = false;
  bool saw_restrict = false;
  bool saw_interpolate = false;
  for (const auto& entry : entries) {
    saw_direct |= entry.phase == obs::Phase::kDirect;
    saw_restrict |= entry.phase == obs::Phase::kRestrict;
    saw_interpolate |= entry.phase == obs::Phase::kInterpolate;
  }
  EXPECT_TRUE(saw_direct);
  EXPECT_TRUE(saw_restrict);
  EXPECT_TRUE(saw_interpolate);
}

TEST(PhaseProfile, SharedAcrossConcurrentCycles) {
  Engine engine(rt::MachineProfile{"test", 2, 8, 0, 16384});
  const int n = 65;
  obs::PhaseProfile profile;
  constexpr int kThreads = 3;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&engine, &profile, n, t] {
      Rng rng(1000 + t);
      auto problem = make_problem(n, InputDistribution::kUnbiased, rng);
      Grid2D& x = problem.x0;
      const Grid2D& b = problem.b;
      solvers::VCycleOptions options;
      options.profile = &profile;
      for (int it = 0; it < 3; ++it) {
        solvers::vcycle(x, b, options, engine.scheduler(), engine.direct(),
                        engine.scratch());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_GT(profile.total_seconds(), 0.0);
  // 3 threads × 3 cycles × (pre+post) relax sweeps at the finest level.
  double fine_relax_count = 0;
  for (const auto& entry : profile.entries()) {
    if (entry.level == 6 && entry.phase == obs::Phase::kRelax) {
      fine_relax_count = static_cast<double>(entry.count);
    }
  }
  EXPECT_EQ(fine_relax_count, kThreads * 3 * 2);
}

}  // namespace
}  // namespace pbmg
