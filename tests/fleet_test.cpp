// Fleet-serving suite: the byte-budgeted session cache (LRU eviction,
// SessionRef pinning, retired-generation reclaim) and the batched
// multi-RHS solve path.  Eviction must never destroy a pinned session,
// an evicted size must rebind to bit-identical solves, solve_batch must
// bitwise-match K solo solves under any thread count, and binds /
// batches / installs / trims must be race-free under concurrent clients
// (this suite runs under TSan and UBSan in CI).

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/solve_service.h"
#include "grid/level.h"
#include "support/rng.h"
#include "tune/accuracy.h"
#include "tune/trainer.h"

namespace pbmg {
namespace {

constexpr int kMaxLevel = 4;

Engine& engine() {
  static Engine instance([] {
    rt::MachineProfile p;
    p.name = "fleet-test";
    p.threads = 4;
    p.grain_rows = 4;
    return p;
  }());
  return instance;
}

const tune::TunedConfig& trained() {
  static const tune::TunedConfig config = [] {
    tune::TrainerOptions options;
    options.max_level = kMaxLevel;
    options.seed = 1313;
    tune::Trainer trainer(options, engine());
    return trainer.train();
  }();
  return config;
}

bool bitwise_equal(const Grid2D& a, const Grid2D& b) {
  return a.n() == b.n() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// Footprint of one bound session of side `n` under the trained config,
/// measured on a throwaway unlimited service.
std::size_t session_footprint(int n) {
  SolveService probe(engine(), trained());
  return probe.session(n)->footprint_bytes();
}

// ---------------------------------------------------------- eviction --

TEST(FleetCache, ByteBudgetBoundsResidentSessions) {
  const std::size_t biggest = session_footprint(size_of_level(kMaxLevel));
  ServicePolicy policy;
  policy.max_session_bytes = biggest + biggest / 10;  // room for one big only
  SolveService service(engine(), trained(), policy);
  // Bind every size, largest last; unpinned smaller sessions must be
  // evicted to keep the resident bytes bounded.
  for (int level = 2; level <= kMaxLevel; ++level) {
    service.session(size_of_level(level));
  }
  const ServiceStats stats = service.stats();
  EXPECT_GT(stats.evictions, 0);
  EXPECT_LE(stats.session_bytes, policy.max_session_bytes);
  EXPECT_LT(stats.sessions, static_cast<std::size_t>(kMaxLevel - 1));
}

TEST(FleetCache, SessionCountCapEvictsLeastRecentlyUsed) {
  ServicePolicy policy;
  policy.max_sessions = 2;
  SolveService service(engine(), trained(), policy);
  service.session(size_of_level(2));
  service.session(size_of_level(3));
  // Touch level 2 so level 3 is the LRU victim when level 4 binds.
  service.session(size_of_level(2));
  service.session(size_of_level(4));
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.sessions, 2u);
  EXPECT_EQ(stats.evictions, 1);
  // The victim must have been level 3 (stale), not the just-touched
  // level 2 (which a key-ordered sweep would have picked first): level 2
  // is still cached, so re-binding it inserts nothing and evicts nothing.
  service.session(size_of_level(2));
  EXPECT_EQ(service.stats().sessions, 2u);
  EXPECT_EQ(service.stats().evictions, 1);
}

TEST(FleetCache, PinnedSessionsAreNeverEvicted) {
  ServicePolicy policy;
  policy.max_sessions = 1;
  SolveService service(engine(), trained(), policy);
  SessionRef small = service.session(size_of_level(2));
  SessionRef mid = service.session(size_of_level(3));
  // Both pinned: the cap is unenforceable and the cache must prefer
  // overshooting the budget to destroying a session in use.
  EXPECT_EQ(service.stats().sessions, 2u);
  EXPECT_EQ(service.stats().evictions, 0);
  EXPECT_EQ(small->n(), size_of_level(2));
  EXPECT_EQ(mid->n(), size_of_level(3));
  // Dropping one pin makes it evictable; the next bind drains the cache
  // back toward the cap and the still-pinned session survives.
  small = SessionRef();
  const SessionRef big = service.session(size_of_level(4));
  EXPECT_GT(service.stats().evictions, 0);
  EXPECT_EQ(mid->n(), size_of_level(3));  // pinned ⇒ alive and usable
}

TEST(FleetCache, EvictedSizeRebindsToBitIdenticalSolves) {
  ServicePolicy policy;
  policy.max_sessions = 1;
  SolveService service(engine(), trained(), policy);
  const int n = size_of_level(3);
  Rng rng(505);
  auto problem = make_problem(n, InputDistribution::kUnbiased, rng);
  SolveRequest request;
  request.accuracy_index = trained().accuracy_count() - 1;
  Grid2D first(n, 0.0);
  first.copy_from(problem.x0);
  service.solve(first, problem.b, request);
  // Evict the size by binding another, then rebind: the fresh session
  // must reproduce the retired one's arithmetic exactly.
  service.session(size_of_level(4));
  ASSERT_GT(service.stats().evictions, 0);
  Grid2D second(n, 0.0);
  second.copy_from(problem.x0);
  service.solve(second, problem.b, request);
  EXPECT_TRUE(bitwise_equal(first, second));
}

// ------------------------------------------------------ batched solves --

TEST(FleetBatch, BatchBitwiseMatchesSoloAcrossThreadCounts) {
  constexpr int kBatch = 4;
  for (const int threads : {1, 4}) {
    Engine local([threads] {
      rt::MachineProfile p;
      p.name = "fleet-batch-" + std::to_string(threads) + "t";
      p.threads = threads;
      p.grain_rows = 4;
      return p;
    }());
    SolveService service(local, trained());
    const int n = size_of_level(kMaxLevel);
    Rng rng(606);
    auto problem = make_problem(n, InputDistribution::kUnbiased, rng);
    for (const bool fmg : {false, true}) {
      SolveRequest request;
      request.accuracy_index = 0;
      request.fmg = fmg;
      Grid2D solo(n, 0.0);
      solo.copy_from(problem.x0);
      service.solve(solo, problem.b, request);

      std::vector<Grid2D> batch(kBatch, Grid2D(n, 0.0));
      std::vector<Grid2D*> xs;
      for (auto& x : batch) {
        x.copy_from(problem.x0);
        xs.push_back(&x);
      }
      const std::vector<SolveStats> stats =
          service.solve_batch(xs, problem.b, request);
      ASSERT_EQ(stats.size(), static_cast<std::size_t>(kBatch));
      for (int k = 0; k < kBatch; ++k) {
        EXPECT_TRUE(bitwise_equal(batch[k], solo))
            << "threads=" << threads << " fmg=" << fmg << " slot=" << k;
        EXPECT_EQ(stats[k].iterations, stats[0].iterations);
        EXPECT_EQ(stats[k].generation, 1);
      }
    }
  }
}

TEST(FleetBatch, BatchAccountingCountsEveryRhsAndOneLatencySample) {
  Engine local([] {
    rt::MachineProfile p;
    p.name = "fleet-batch-metrics";
    p.threads = 2;
    p.grain_rows = 4;
    return p;
  }());
  SolveService service(local, trained());
  const int n = size_of_level(3);
  Rng rng(707);
  auto problem = make_problem(n, InputDistribution::kUnbiased, rng);
  SolveRequest request;
  request.accuracy_index = 0;
  constexpr int kBatch = 3;
  std::vector<Grid2D> batch(kBatch, Grid2D(n, 0.0));
  std::vector<Grid2D*> xs;
  for (auto& x : batch) {
    x.copy_from(problem.x0);
    xs.push_back(&x);
  }
  service.solve_batch(xs, problem.b, request);
  EXPECT_EQ(service.stats().requests, kBatch);
  const obs::RegistrySnapshot snapshot = service.metrics_snapshot();
  EXPECT_EQ(snapshot.counters.at("pbmg_solve_requests_total{outcome=\"ok\"}"),
            kBatch);
  // One wall-clock, one healthy latency sample — K per-RHS samples would
  // overcount the histogram the drift watcher reads.
  const std::string series = "pbmg_solve_latency_seconds{n=\"" +
                             std::to_string(n) + "\",acc=\"0\"}";
  EXPECT_EQ(snapshot.histograms.at(series).count, 1);
  ASSERT_TRUE(snapshot.histograms.count("pbmg_batch_size"));
  EXPECT_EQ(snapshot.histograms.at("pbmg_batch_size").count, 1);
  EXPECT_DOUBLE_EQ(snapshot.histograms.at("pbmg_batch_size").sum, kBatch);
}

// ---------------------------------------------------------------- races --

TEST(FleetRace, BindsBatchesInstallsAndTrimsAreRaceFree) {
  // Client threads bind, solve, and batch under a byte budget tight
  // enough to force continuous eviction, while the main thread installs
  // fresh generations and trims.  Identical configs across generations
  // mean every result must still carry the golden bits — and TSan in CI
  // patrols the cache bookkeeping itself.
  Engine local([] {
    rt::MachineProfile p;
    p.name = "fleet-race";
    p.threads = 4;
    p.grain_rows = 4;
    return p;
  }());
  ServicePolicy policy;
  policy.max_sessions = 1;  // every size change evicts
  SolveService service(local, trained(), policy);

  struct Golden {
    PoissonProblem problem;
    Grid2D bits;
  };
  std::vector<Golden> goldens;
  {
    Engine serial(rt::serial_profile());
    SolveService golden_service(serial, trained());
    Rng rng(808);
    for (int level = 2; level <= kMaxLevel; ++level) {
      const int n = size_of_level(level);
      Golden g{make_problem(n, InputDistribution::kUnbiased, rng),
               Grid2D(n, 0.0)};
      g.bits.copy_from(g.problem.x0);
      SolveRequest request;
      request.accuracy_index = 0;
      golden_service.solve(g.bits, g.problem.b, request);
      goldens.push_back(std::move(g));
    }
  }

  constexpr int kClients = 4;
  constexpr int kItersPerClient = 8;
  std::atomic<bool> go{false};
  std::atomic<int> mismatches{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      SolveRequest request;
      request.accuracy_index = 0;
      for (int i = 0; i < kItersPerClient; ++i) {
        const Golden& g = goldens[(c + i) % goldens.size()];
        const int n = g.bits.n();
        if ((c + i) % 2 == 0) {
          Grid2D x(n, 0.0);
          x.copy_from(g.problem.x0);
          service.solve(x, g.problem.b, request);
          if (!bitwise_equal(x, g.bits)) mismatches.fetch_add(1);
        } else {
          std::vector<Grid2D> batch(3, Grid2D(n, 0.0));
          std::vector<Grid2D*> xs;
          for (auto& x : batch) {
            x.copy_from(g.problem.x0);
            xs.push_back(&x);
          }
          service.solve_batch(xs, g.problem.b, request);
          for (const Grid2D& x : batch) {
            if (!bitwise_equal(x, g.bits)) mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  std::thread swapper([&] {
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    while (!done.load(std::memory_order_acquire)) {
      service.install(trained());
      service.trim();
      std::this_thread::yield();
    }
  });
  go.store(true, std::memory_order_release);
  for (auto& client : clients) client.join();
  done.store(true, std::memory_order_release);
  swapper.join();

  EXPECT_EQ(mismatches.load(), 0);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.failures, 0);
  EXPECT_EQ(stats.requests, kClients * kItersPerClient * 2);  // 1 or 3 RHS
  // After the storm every generation but the live one is unpinned; one
  // more trim reclaims them all.
  service.trim();
  EXPECT_EQ(service.stats().retired_generations, 0u);
}

}  // namespace
}  // namespace pbmg
