// End-to-end integration tests across modules: the full train → save →
// load → execute pipeline on multiple distributions and profiles, scratch
// pool behaviour under the real solvers, cross-profile execution of tuned
// configs, and the heuristic-vs-autotuned dominance relation the paper's
// Figure 8 rests on.

#include <cmath>
#include <filesystem>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "grid/grid_ops.h"
#include "grid/level.h"
#include "grid/scratch.h"
#include "solvers/multigrid.h"
#include "support/rng.h"
#include "trace/cycle_trace.h"
#include "tune/accuracy.h"
#include "tune/config_cache.h"
#include "tune/executor.h"
#include "tune/trainer.h"

namespace pbmg {
namespace {

Engine& engine() {
  static Engine instance([] {
    rt::MachineProfile p;
    p.name = "integration";
    p.threads = 4;
    p.grain_rows = 4;
    return p;
  }());
  return instance;
}

rt::Scheduler& sched() { return engine().scheduler(); }

inline std::string dist_label(int index) {
  switch (index) {
    case 0: return "unbiased";
    case 1: return "biased";
    default: return "pointsources";
  }
}

class DistributionPipeline : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Dists, DistributionPipeline,
                         ::testing::Values(0, 1, 2),
                         [](const auto& info) {
                           return dist_label(info.param);
                         });

TEST_P(DistributionPipeline, TrainSaveLoadSolveMeetsContract) {
  const auto dist = static_cast<InputDistribution>(GetParam());
  tune::TrainerOptions options;
  options.max_level = 5;
  options.distribution = dist;
  options.seed = 99 + static_cast<std::uint64_t>(GetParam());
  tune::Trainer trainer(options, engine());
  const tune::TunedConfig trained = trainer.train();

  const auto path = std::filesystem::temp_directory_path() /
                    ("pbmg_pipeline_" + to_string(dist) + ".json");
  trained.save(path.string());
  const tune::TunedConfig loaded = tune::TunedConfig::load(path.string());
  std::filesystem::remove(path);

  // The loaded config must execute identically: same traced shape, and
  // accuracy contract on a held-out instance.
  const int n = size_of_level(5);
  Rng rng(777);
  auto inst = tune::make_training_instance(n, dist, rng, sched());
  for (int i = 0; i < loaded.accuracy_count(); ++i) {
    trace::CycleTracer t1, t2;
    Grid2D x1(n, 0.0), x2(n, 0.0);
    x1.copy_from(inst.problem.x0);
    x2.copy_from(inst.problem.x0);
    tune::TunedExecutor e1(trained, sched(), engine().direct(),
                           engine().scratch(), &t1);
    tune::TunedExecutor e2(loaded, sched(), engine().direct(),
                           engine().scratch(), &t2);
    e1.run_v(x1, inst.problem.b, i);
    e2.run_v(x2, inst.problem.b, i);
    ASSERT_EQ(t1.events().size(), t2.events().size());
    const double target =
        loaded.accuracies()[static_cast<std::size_t>(i)];
    EXPECT_GE(tune::accuracy_of(inst, x2, sched()), 0.2 * target)
        << to_string(dist) << " accuracy " << target;
  }
}

TEST(Integration, TunedConfigRunsUnderDifferentProfile) {
  // §4.3: a config tuned for machine A still *works* on machine B (it is
  // just slower than the native config); execution must stay correct.
  tune::TrainerOptions options;
  options.max_level = 5;
  tune::Trainer trainer(options, engine());
  const tune::TunedConfig config = trainer.train();

  // Machine B is a second, coexisting Engine — not a global profile swap.
  Engine serial_engine(rt::serial_profile());
  auto& serial = serial_engine.scheduler();
  const int n = size_of_level(5);
  Rng rng(888);
  auto inst = tune::make_training_instance(n, InputDistribution::kUnbiased,
                                           rng, serial);
  tune::TunedExecutor executor(config, serial, serial_engine.direct(),
                               serial_engine.scratch());
  Grid2D x(n, 0.0);
  x.copy_from(inst.problem.x0);
  executor.run_v(x, inst.problem.b, config.accuracy_count() - 1);
  EXPECT_GE(tune::accuracy_of(inst, x, serial),
            0.2 * config.accuracies().back());
}

TEST(Integration, HeuristicsNeverBeatAutotunedByMuch) {
  // The DP tuner's candidate space strictly contains every heuristic's
  // space, so the tuned expected time can exceed a heuristic's only by
  // measurement noise (paper Fig. 8: ratios >= ~1).
  tune::TrainerOptions options;
  options.max_level = 5;
  options.train_fmg = false;
  tune::Trainer tuner(options, engine());
  const tune::TunedConfig autotuned = tuner.train();
  const int top = autotuned.accuracy_count() - 1;
  const double tuned_time =
      autotuned.v_entry(5, top).expected_time;
  for (int j = 0; j < autotuned.accuracy_count(); ++j) {
    tune::Trainer htrainer(options, engine());
    const tune::TunedConfig heuristic = htrainer.train_heuristic(j);
    const double h_time = heuristic.v_entry(5, top).expected_time;
    EXPECT_GE(h_time, 0.5 * tuned_time)
        << "heuristic " << j << " implausibly beat the autotuner";
  }
}

TEST(Integration, FmgTableNeverSlowerThanVTableByMuch) {
  // FULL-MULTIGRID_i's candidate space includes (estimate + the same
  // RECURSE iteration the V table uses), so its expected time should not
  // exceed the V table's by more than noise at any cell.
  tune::TrainerOptions options;
  options.max_level = 6;
  tune::Trainer trainer(options, engine());
  const tune::TunedConfig config = trainer.train();
  for (int level = 3; level <= config.max_level(); ++level) {
    for (int i = 0; i < config.accuracy_count(); ++i) {
      const double v = config.v_entry(level, i).expected_time;
      const double f = config.fmg_entry(level, i).expected_time;
      EXPECT_LE(f, 2.0 * v + 1e-4)
          << "FMG cell (" << level << "," << i << ") much slower than V";
    }
  }
}

TEST(Integration, ScratchPoolRecyclesAcrossSolves) {
  grid::ScratchPool pool;  // dedicated pool: counts are deterministic
  Rng rng(999);
  auto problem = make_problem(65, InputDistribution::kUnbiased, rng);
  Grid2D x = problem.x0;
  solvers::vcycle(x, problem.b, solvers::VCycleOptions{}, sched(),
                  engine().direct(), pool);
  const std::size_t after_first = pool.pooled();
  EXPECT_GT(after_first, 0u);  // temporaries returned to the pool
  solvers::vcycle(x, problem.b, solvers::VCycleOptions{}, sched(),
                  engine().direct(), pool);
  // Steady state: the second cycle reuses what the first returned.
  EXPECT_EQ(pool.pooled(), after_first);
  const auto stats = pool.stats();
  EXPECT_GT(stats.hits, 0);
  EXPECT_EQ(stats.acquires, stats.hits + stats.misses);
}

TEST(Integration, TracedShapeMatchesTableIterations) {
  // The number of fine-grid relaxations in the trace must equal
  // 2 × (iterations at the top level) when the top choice is RECURSE
  // (one pre- and one post-sweep per iteration).
  tune::TrainerOptions options;
  options.max_level = 5;
  options.train_fmg = false;
  tune::Trainer trainer(options, engine());
  const tune::TunedConfig config = trainer.train();
  const int top = config.accuracy_count() - 1;
  const auto& entry = config.v_entry(5, top);
  if (entry.choice.kind != tune::VKind::kRecurse) {
    GTEST_SKIP() << "top choice is not RECURSE on this machine";
  }
  trace::CycleTracer tracer;
  tune::TunedExecutor executor(config, sched(), engine().direct(),
                               engine().scratch(), &tracer);
  const int n = size_of_level(5);
  Rng rng(555);
  auto problem = make_problem(n, InputDistribution::kUnbiased, rng);
  Grid2D x = problem.x0;
  executor.run_v(x, problem.b, top);
  int fine_relaxations = 0;
  for (const auto& event : tracer.events()) {
    if (event.op == trace::Op::kRelax && event.level == 5) {
      ++fine_relaxations;
    }
  }
  EXPECT_EQ(fine_relaxations, 2 * entry.choice.iterations);
}

TEST(Integration, AccuracyLaddersOtherThanPaperDefaultWork) {
  // The tuner is generic in the ladder; train with 3 levels.
  tune::TrainerOptions options;
  options.accuracies = {1e2, 1e4, 1e8};
  options.max_level = 4;
  options.train_fmg = false;
  tune::Trainer trainer(options, engine());
  const tune::TunedConfig config = trainer.train();
  EXPECT_EQ(config.accuracy_count(), 3);
  const int n = size_of_level(4);
  Rng rng(444);
  auto inst = tune::make_training_instance(n, InputDistribution::kUnbiased,
                                           rng, sched());
  tune::TunedExecutor executor(config, sched(), engine().direct(),
                               engine().scratch());
  for (int i = 0; i < 3; ++i) {
    Grid2D x(n, 0.0);
    x.copy_from(inst.problem.x0);
    executor.run_v(x, inst.problem.b, i);
    EXPECT_GE(tune::accuracy_of(inst, x, sched()),
              0.2 * options.accuracies[static_cast<std::size_t>(i)]);
  }
}

}  // namespace
}  // namespace pbmg
