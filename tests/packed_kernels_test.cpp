// Packed-kernel suite: the StencilLayout::kPacked SoA sweeps
// (grid/packed_kernels.h) promise *bitwise* identity with the legacy
// per-grid kernels for every operator family, SIMD width, smoother and
// thread count.  That contract is what lets the tuner race the layout
// and width axes as pure performance knobs — no candidate can change the
// numerics — so this suite pins it with exact (memcmp-grade) equality,
// not tolerances: residual/apply, coloured SOR, weighted Jacobi and the
// zebra line solves, on 5-point and 9-point operators, down the Galerkin
// RAP ladder, at n = 3 and 5 edge sizes, and across thread counts.
// Also covered: the PackedStencil layout itself (alignment, stream
// mapping, fused 5-point diagonal), the Poisson passthrough, width
// clamping, and KernelPolicy validation.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "grid/grid_ops.h"
#include "grid/level.h"
#include "grid/packed_kernels.h"
#include "grid/packed_stencil.h"
#include "grid/problem.h"
#include "grid/stencil_op.h"
#include "solvers/line_relax.h"
#include "solvers/relax.h"
#include "support/rng.h"

namespace pbmg::grid {
namespace {

Engine& engine_with(int threads) {
  static Engine one([] {
    rt::MachineProfile p;
    p.name = "packed-test-1t";
    p.threads = 1;
    return EngineOptions{p, {}, {}, 0};
  }());
  static Engine four([] {
    rt::MachineProfile p;
    p.name = "packed-test-4t";
    p.threads = 4;
    p.grain_rows = 2;  // force real slicing so races would surface
    return EngineOptions{p, {}, {}, 0};
  }());
  return threads == 1 ? one : four;
}

/// Deterministic dense test data; magnitudes mixed so any dropped term or
/// re-associated sum flips low-order bits the comparisons below catch.
Grid2D random_grid(int n, std::uint64_t seed) {
  Grid2D g(n, 0.0);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      g(i, j) = rng.uniform(-1.0e3, 1.0e3);
    }
  }
  return g;
}

::testing::AssertionResult bitwise_equal(const Grid2D& a, const Grid2D& b) {
  if (a.n() != b.n()) {
    return ::testing::AssertionFailure() << "size mismatch";
  }
  const std::size_t cells =
      static_cast<std::size_t>(a.n()) * static_cast<std::size_t>(a.n());
  if (std::memcmp(a.data(), b.data(), cells * sizeof(double)) == 0) {
    return ::testing::AssertionSuccess();
  }
  for (int i = 0; i < a.n(); ++i) {
    for (int j = 0; j < a.n(); ++j) {
      const double av = a(i, j);
      const double bv = b(i, j);
      if (std::memcmp(&av, &bv, sizeof(double)) != 0) {
        return ::testing::AssertionFailure()
               << "first divergence at (" << i << ", " << j << "): " << av
               << " vs " << bv;
      }
    }
  }
  return ::testing::AssertionFailure() << "memcmp failed (padding?)";
}

/// Families that exercise every packed code path: 5-point variable
/// coefficients (smooth, high-contrast, extreme anisotropy, piecewise
/// rotation) and the 9-point tensor discretisations.
constexpr OperatorFamily kParityFamilies[] = {
    OperatorFamily::kSmoothVariable,  OperatorFamily::kJumpCoefficient,
    OperatorFamily::kAnisotropic1000, OperatorFamily::kAnisoRotated,
    OperatorFamily::kAnisoTheta30,    OperatorFamily::kAnisoTheta45};

constexpr int kWidths[] = {1, 2, 4};

KernelPolicy packed_policy(int width) {
  KernelPolicy policy;
  policy.layout = StencilLayout::kPacked;
  policy.simd_width = width;
  return policy;
}

// ------------------------------------------------------ layout & policy --

TEST(PackedStencil, LayoutAlignmentAndStreamMapping) {
  const int n = 17;
  const StencilOp op = make_operator(n, OperatorFamily::kSmoothVariable);
  const PackedStencil& p = op.packed();
  EXPECT_EQ(p.n(), n);
  EXPECT_FALSE(p.nine_point());
  EXPECT_EQ(p.stream_count(), 5);
  EXPECT_EQ(p.padded() % 8, 0);
  EXPECT_GE(p.padded(), n);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p.base()) % 64, 0u);
  const Grid2D& ax = op.ax_grid();
  const Grid2D& ay = op.ay_grid();
  for (int i = 1; i < n - 1; ++i) {
    const double* aw = p.stream(i, PackedStencil::kAw);
    const double* ae = p.stream(i, PackedStencil::kAe);
    const double* an = p.stream(i, PackedStencil::kAn);
    const double* as = p.stream(i, PackedStencil::kAs);
    const double* diag = p.stream(i, PackedStencil::kDiag5);
    for (int j = 1; j < n - 1; ++j) {
      EXPECT_EQ(aw[j], ax(i, j - 1));
      EXPECT_EQ(ae[j], ax(i, j));
      EXPECT_EQ(an[j], ay(i - 1, j));
      EXPECT_EQ(as[j], ay(i, j));
      // The fused diagonal must carry the legacy association exactly.
      const double expect = ((ax(i, j - 1) + ax(i, j)) + ay(i - 1, j)) +
                            ay(i, j);
      EXPECT_EQ(diag[j], expect);
    }
  }
}

TEST(PackedStencil, NinePointPackCarriesCornerStreams) {
  const int n = 17;
  const StencilOp op = make_operator(n, OperatorFamily::kAnisoTheta30);
  ASSERT_TRUE(op.is_nine_point());
  const PackedStencil& p = op.packed();
  EXPECT_TRUE(p.nine_point());
  EXPECT_EQ(p.stream_count(), 9);
  const Grid2D& ase = op.ase_grid();
  const Grid2D& asw = op.asw_grid();
  for (int i = 1; i < n - 1; ++i) {
    const double* nw = p.stream(i, PackedStencil::kNw);
    const double* ne = p.stream(i, PackedStencil::kNe);
    const double* sw = p.stream(i, PackedStencil::kSw);
    const double* se = p.stream(i, PackedStencil::kSe);
    const double* ctr = p.stream(i, PackedStencil::kCtr);
    for (int j = 1; j < n - 1; ++j) {
      EXPECT_EQ(nw[j], ase(i - 1, j - 1));
      EXPECT_EQ(ne[j], asw(i - 1, j + 1));
      EXPECT_EQ(sw[j], asw(i, j));
      EXPECT_EQ(se[j], ase(i, j));
      EXPECT_EQ(ctr[j], NinePointRows(op, i).center[j]);
    }
  }
}

TEST(PackedStencil, SharedAcrossCopiesAndPackedOncePerOperator) {
  const StencilOp op = make_operator(33, OperatorFamily::kJumpCoefficient);
  const StencilOp copy = op;  // copies share the packed slot
  EXPECT_EQ(&op.packed(), &copy.packed());
  EXPECT_EQ(&op.packed(), &op.packed());
}

TEST(KernelPolicy, ValidationAndLayoutNames) {
  KernelPolicy ok;
  validate_kernel_policy(ok);  // defaults are valid
  validate_kernel_policy(packed_policy(4));
  KernelPolicy bad = packed_policy(3);
  EXPECT_THROW(validate_kernel_policy(bad), InvalidArgument);
  EXPECT_EQ(to_string(StencilLayout::kLegacy), "legacy");
  EXPECT_EQ(to_string(StencilLayout::kPacked), "packed");
  EXPECT_EQ(parse_stencil_layout("packed"), StencilLayout::kPacked);
  EXPECT_EQ(parse_stencil_layout("legacy"), StencilLayout::kLegacy);
  EXPECT_THROW(parse_stencil_layout("soa"), InvalidArgument);
}

TEST(KernelPolicy, WidthClampIsMonotoneAndValid) {
  const int supported = packed_simd_width_supported();
  EXPECT_TRUE(supported == 1 || supported == 2 || supported == 4);
  for (const int w : kWidths) {
    const int clamped = clamp_simd_width(w);
    EXPECT_LE(clamped, w);
    EXPECT_LE(clamped, supported);
    EXPECT_TRUE(clamped == 1 || clamped == 2 || clamped == 4);
  }
  EXPECT_EQ(clamp_simd_width(1), 1);
}

// ------------------------------------------------------------- sweeps --

/// Runs `sweep(x, b, policy)` twice from identical state — once legacy,
/// once packed at `width` — and requires bitwise-identical iterates.
template <typename Sweep>
void expect_sweep_parity(const StencilOp& op, int width, int threads,
                         std::uint64_t seed, const Sweep& sweep) {
  const int n = op.n();
  const Grid2D b = random_grid(n, seed ^ 0xB0B);
  Grid2D x_legacy = random_grid(n, seed);
  Grid2D x_packed = x_legacy;
  sweep(x_legacy, b, KernelPolicy{}, threads);
  sweep(x_packed, b, packed_policy(width), threads);
  EXPECT_TRUE(bitwise_equal(x_legacy, x_packed))
      << "n=" << n << " width=" << width << " threads=" << threads;
}

void expect_all_sweeps_parity(const StencilOp& op, int width, int threads,
                              std::uint64_t seed) {
  const auto sor = [&](Grid2D& x, const Grid2D& b, const KernelPolicy& k,
                       int t) {
    rt::Scheduler& sched = engine_with(t).scheduler();
    // Three chained sweeps: any drift compounds and must stay zero.
    for (int s = 0; s < 3; ++s) solvers::sor_sweep(op, x, b, 1.15, sched, k);
  };
  const auto jacobi = [&](Grid2D& x, const Grid2D& b, const KernelPolicy& k,
                          int t) {
    rt::Scheduler& sched = engine_with(t).scheduler();
    Grid2D scratch(x.n(), 0.0);
    for (int s = 0; s < 3; ++s) {
      solvers::jacobi_sweep(op, x, b, 2.0 / 3.0, scratch, sched, k);
    }
  };
  const auto lines = [&](solvers::RelaxKind kind) {
    return [&, kind](Grid2D& x, const Grid2D& b, const KernelPolicy& k,
                     int t) {
      Engine& eng = engine_with(t);
      for (int s = 0; s < 2; ++s) {
        solvers::line_relax_sweep(op, x, b, kind, eng.scheduler(),
                                  eng.scratch(), k);
      }
    };
  };
  const auto residual = [&](Grid2D& x, const Grid2D& b,
                            const KernelPolicy& k, int t) {
    rt::Scheduler& sched = engine_with(t).scheduler();
    Grid2D r(x.n(), 1.0);  // overwritten; nonzero so stale cells surface
    residual_op(op, x, b, r, sched, k);
    x = r;
  };
  const auto apply = [&](Grid2D& x, const Grid2D& b, const KernelPolicy& k,
                         int t) {
    (void)b;
    rt::Scheduler& sched = engine_with(t).scheduler();
    Grid2D out(x.n(), 1.0);
    apply_op(op, x, out, sched, k);
    x = out;
  };
  expect_sweep_parity(op, width, threads, seed, residual);
  expect_sweep_parity(op, width, threads, seed, apply);
  expect_sweep_parity(op, width, threads, seed, sor);
  expect_sweep_parity(op, width, threads, seed, jacobi);
  expect_sweep_parity(op, width, threads, seed, lines(solvers::RelaxKind::kLineX));
  expect_sweep_parity(op, width, threads, seed, lines(solvers::RelaxKind::kLineY));
  expect_sweep_parity(op, width, threads, seed,
                      lines(solvers::RelaxKind::kLineZebraAlt));
}

TEST(PackedParity, AllKernelsAllFamiliesAllWidths) {
  const int n = 33;
  std::uint64_t seed = 0x5EED;
  for (const OperatorFamily family : kParityFamilies) {
    const StencilOp op = make_operator(n, family);
    for (const int width : kWidths) {
      SCOPED_TRACE("family=" + to_string(family) +
                   " width=" + std::to_string(width));
      expect_all_sweeps_parity(op, width, /*threads=*/4, ++seed);
    }
  }
}

TEST(PackedParity, ThreadCountsAgree) {
  const StencilOp op = make_operator(65, OperatorFamily::kAnisoTheta45);
  for (const int threads : {1, 4}) {
    expect_all_sweeps_parity(op, /*width=*/4, threads, 0xC0FFEE);
  }
}

TEST(PackedParity, DownTheGalerkinRapLadder) {
  // RAP of a 9-point tensor operator stays 9-point on every coarse level;
  // RAP of a 5-point operator *becomes* 9-point below the finest.  Both
  // ladders must hold parity level by level.
  for (const OperatorFamily family :
       {OperatorFamily::kAnisoTheta30, OperatorFamily::kAnisoRotated}) {
    const StencilOp fine = make_operator(33, family);
    const StencilHierarchy ladder(fine, Coarsening::kRap);
    std::uint64_t seed = 0xAB1E;
    for (int level = ladder.top_level(); level >= 1; --level) {
      const StencilOp op = ladder.at(level);
      SCOPED_TRACE("family=" + to_string(family) +
                   " level=" + std::to_string(level) +
                   " n=" + std::to_string(op.n()));
      expect_all_sweeps_parity(op, /*width=*/4, /*threads=*/4, ++seed);
    }
  }
}

TEST(PackedParity, TinyGridsIncludingCoarsestSolvable) {
  // n = 3 has a single interior point (and a single interior line); n = 5
  // is the smallest size where the line sweeps' lane batching is real.
  // The line kernels clamp the width internally below n = 5.
  std::uint64_t seed = 0x71AD;
  for (const int n : {3, 5}) {
    const StencilOp op = make_operator(n, OperatorFamily::kJumpCoefficient);
    for (const int width : kWidths) {
      SCOPED_TRACE("n=" + std::to_string(n) +
                   " width=" + std::to_string(width));
      expect_all_sweeps_parity(op, width, /*threads=*/4, ++seed);
    }
  }
}

TEST(PackedParity, PoissonPassthroughBitwiseMatchesLegacy) {
  // The Poisson fast path keeps its dedicated constant-coefficient
  // kernels under either layout, so a packed policy on the Poisson
  // operator must be a pure passthrough.
  const StencilOp op = StencilOp::poisson(33);
  EXPECT_TRUE(op.is_poisson());
  expect_all_sweeps_parity(op, /*width=*/4, /*threads=*/4, 0xBEEF);
}

TEST(PackedParity, PrewarmedHierarchyMatchesLazyPacking) {
  // prewarm_packed is an optimisation, never a semantic switch: packing
  // eagerly up front and packing lazily on first sweep give the same
  // bits.
  const StencilOp fine = make_operator(17, OperatorFamily::kAnisoTheta30);
  const StencilHierarchy warm(fine, Coarsening::kRap);
  warm.prewarm_packed();
  const StencilHierarchy lazy(fine, Coarsening::kRap);
  rt::Scheduler& sched = engine_with(4).scheduler();
  for (int level = warm.top_level(); level >= 1; --level) {
    const int n = warm.at(level).n();
    const Grid2D x = random_grid(n, 0x11 + static_cast<std::uint64_t>(level));
    const Grid2D b = random_grid(n, 0x22 + static_cast<std::uint64_t>(level));
    Grid2D r_warm(n, 0.0);
    Grid2D r_lazy(n, 0.0);
    residual_op(warm.at(level), x, b, r_warm, sched, packed_policy(4));
    residual_op(lazy.at(level), x, b, r_lazy, sched, packed_policy(4));
    EXPECT_TRUE(bitwise_equal(r_warm, r_lazy)) << "level=" << level;
  }
}

// ---------------------------------------------------------- multi-RHS --

/// Solo-vs-batched check: runs `solo(x, b)` on each of K slots and
/// `multi(xs, bs)` on identically-seeded copies; every slot must finish
/// bitwise identical.  The fused multi-RHS kernels reorder only memory
/// traffic (one coefficient-row load serves all K), never any single
/// slot's accumulation order, so exact equality is the contract the
/// batched serving path (SolveService::solve_batch) stands on.
template <typename Solo, typename Multi>
void expect_multi_matches_solo(int n, int k_count, std::uint64_t seed,
                               const Solo& solo, const Multi& multi) {
  std::vector<Grid2D> b_store;
  std::vector<Grid2D> solo_store;
  std::vector<Grid2D> multi_store;
  for (int k = 0; k < k_count; ++k) {
    b_store.push_back(random_grid(n, seed + 1000 + static_cast<unsigned>(k)));
    solo_store.push_back(random_grid(n, seed + static_cast<unsigned>(k)));
    multi_store.push_back(solo_store.back());
  }
  for (int k = 0; k < k_count; ++k) solo(solo_store[k], b_store[k]);
  std::vector<Grid2D*> xs;
  std::vector<const Grid2D*> bs;
  for (int k = 0; k < k_count; ++k) {
    xs.push_back(&multi_store[k]);
    bs.push_back(&b_store[k]);
  }
  multi(xs, bs);
  for (int k = 0; k < k_count; ++k) {
    EXPECT_TRUE(bitwise_equal(solo_store[k], multi_store[k]))
        << "slot " << k << " of " << k_count;
  }
}

void expect_all_multi_parity(const StencilOp& op, const KernelPolicy& policy,
                             int k_count, int threads, std::uint64_t seed) {
  const int n = op.n();
  Engine& eng = engine_with(threads);
  rt::Scheduler& sched = eng.scheduler();
  expect_multi_matches_solo(
      n, k_count, seed,
      [&](Grid2D& x, const Grid2D& b) {
        Grid2D r(n, 1.0);
        residual_op(op, x, b, r, sched, policy);
        x = r;
      },
      [&](std::vector<Grid2D*>& xs, std::vector<const Grid2D*>& bs) {
        std::vector<Grid2D> r_store(xs.size(), Grid2D(n, 1.0));
        std::vector<Grid2D*> rs;
        std::vector<const Grid2D*> xs_read;
        for (std::size_t k = 0; k < xs.size(); ++k) {
          rs.push_back(&r_store[k]);
          xs_read.push_back(xs[k]);
        }
        residual_op_multi(op, xs_read, bs, rs, sched, policy);
        for (std::size_t k = 0; k < xs.size(); ++k) *xs[k] = r_store[k];
      });
  expect_multi_matches_solo(
      n, k_count, seed ^ 0x50F,
      [&](Grid2D& x, const Grid2D& b) {
        // Three chained sweeps: any drift compounds and must stay zero.
        for (int s = 0; s < 3; ++s) {
          solvers::sor_sweep(op, x, b, 1.15, sched, policy);
        }
      },
      [&](std::vector<Grid2D*>& xs, std::vector<const Grid2D*>& bs) {
        for (int s = 0; s < 3; ++s) {
          solvers::sor_sweep_multi(op, xs, bs, 1.15, sched, policy);
        }
      });
  expect_multi_matches_solo(
      n, k_count, seed ^ 0x11E,
      [&](Grid2D& x, const Grid2D& b) {
        for (int s = 0; s < 2; ++s) {
          solvers::line_relax_sweep(op, x, b,
                                    solvers::RelaxKind::kLineZebraAlt,
                                    sched, eng.scratch(), policy);
        }
      },
      [&](std::vector<Grid2D*>& xs, std::vector<const Grid2D*>& bs) {
        for (int s = 0; s < 2; ++s) {
          solvers::line_relax_sweep_multi(op, xs, bs,
                                          solvers::RelaxKind::kLineZebraAlt,
                                          sched, eng.scratch(), policy);
        }
      });
}

TEST(MultiRhsParity, AllFamiliesWidthsAndLayoutsMatchSolo) {
  const int n = 33;
  std::uint64_t seed = 0x3A7C;
  for (const OperatorFamily family : kParityFamilies) {
    const StencilOp op = make_operator(n, family);
    SCOPED_TRACE("family=" + to_string(family) + " legacy");
    expect_all_multi_parity(op, KernelPolicy{}, /*k_count=*/4,
                            /*threads=*/4, ++seed);
    for (const int width : kWidths) {
      SCOPED_TRACE("family=" + to_string(family) +
                   " packed width=" + std::to_string(width));
      expect_all_multi_parity(op, packed_policy(width), /*k_count=*/4,
                              /*threads=*/4, ++seed);
    }
  }
}

TEST(MultiRhsParity, PoissonFastPathAndThreadCountsMatchSolo) {
  const StencilOp op = StencilOp::poisson(33);
  std::uint64_t seed = 0xF00D;
  for (const int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_all_multi_parity(op, KernelPolicy{}, /*k_count=*/3, threads,
                            ++seed);
  }
}

TEST(MultiRhsParity, BatchSizesIncludingSingleAndOddMatchSolo) {
  // K = 1 routes to the solo code path outright; K = 5 leaves a partial
  // trailing element in any would-be unrolling.  Both must hold parity.
  const StencilOp op = make_operator(17, OperatorFamily::kAnisoTheta45);
  std::uint64_t seed = 0x0DD;
  for (const int k_count : {1, 2, 5}) {
    SCOPED_TRACE("k=" + std::to_string(k_count));
    expect_all_multi_parity(op, packed_policy(4), k_count, /*threads=*/4,
                            ++seed);
  }
}

TEST(PackedParity, RepeatedRunsAreDeterministic) {
  // The packed sweeps keep the legacy determinism guarantee: identical
  // inputs give identical bits run over run under a threaded scheduler.
  const StencilOp op = make_operator(65, OperatorFamily::kAnisotropic1000);
  Engine& eng = engine_with(4);
  const Grid2D b = random_grid(65, 0xD0);
  Grid2D first = random_grid(65, 0xD1);
  Grid2D second = first;
  const KernelPolicy policy = packed_policy(4);
  for (int s = 0; s < 3; ++s) {
    solvers::line_relax_sweep(op, first, b, solvers::RelaxKind::kLineZebraAlt,
                              eng.scheduler(), eng.scratch(), policy);
  }
  for (int s = 0; s < 3; ++s) {
    solvers::line_relax_sweep(op, second, b, solvers::RelaxKind::kLineZebraAlt,
                              eng.scheduler(), eng.scratch(), policy);
  }
  EXPECT_TRUE(bitwise_equal(first, second));
}

}  // namespace
}  // namespace pbmg::grid
