// Tests for the FFT substrate: radix-2 FFT against a naive DFT, DST-I
// against its definition, and the fast Poisson solver against the banded
// direct solver and manufactured solutions.

#include <cmath>
#include <complex>
#include <vector>

#include <gtest/gtest.h>

#include "fft/fast_poisson.h"
#include "fft/fft.h"
#include "grid/grid_ops.h"
#include "grid/level.h"
#include "grid/problem.h"
#include "linalg/band_matrix.h"
#include "linalg/poisson_assembly.h"
#include "runtime/scheduler.h"
#include "support/error.h"
#include "support/rng.h"

namespace pbmg::fft {
namespace {

rt::Scheduler& sched() {
  static rt::Scheduler instance([] {
    rt::MachineProfile p;
    p.name = "fft-test";
    p.threads = 4;
    p.grain_rows = 2;
    return p;
  }());
  return instance;
}

std::vector<std::complex<double>> naive_dft(
    const std::vector<std::complex<double>>& a, bool inverse) {
  const std::size_t n = a.size();
  std::vector<std::complex<double>> out(n);
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc(0.0, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = sign * 2.0 * M_PI * static_cast<double>(j * k) /
                           static_cast<double>(n);
      acc += a[j] * std::complex<double>(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

TEST(Fft, MatchesNaiveDftForward) {
  Rng rng(3);
  for (std::size_t n : {1u, 2u, 4u, 8u, 32u, 128u}) {
    std::vector<std::complex<double>> a(n);
    for (auto& c : a) c = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    auto fast = a;
    fft_inplace(fast, false);
    const auto slow = naive_dft(a, false);
    for (std::size_t k = 0; k < n; ++k) {
      ASSERT_NEAR(std::abs(fast[k] - slow[k]), 0.0, 1e-9 * (1.0 + std::abs(slow[k])))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(Fft, InverseRoundTripsToIdentity) {
  Rng rng(4);
  std::vector<std::complex<double>> a(64);
  for (auto& c : a) c = {rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)};
  auto b = a;
  fft_inplace(b, false);
  fft_inplace(b, true);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(std::abs(b[i] / 64.0 - a[i]), 0.0, 1e-12);
  }
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> a(6);
  EXPECT_THROW(fft_inplace(a, false), InvalidArgument);
}

TEST(Dst1, MatchesDefinition) {
  Rng rng(5);
  for (int m : {1, 3, 7, 31, 63}) {
    std::vector<double> v(static_cast<std::size_t>(m));
    for (auto& x : v) x = rng.uniform(-1.0, 1.0);
    const auto original = v;
    std::vector<std::complex<double>> work(2 * static_cast<std::size_t>(m + 1));
    dst1_inplace(v.data(), m, work);
    for (int k = 1; k <= m; ++k) {
      double expected = 0.0;
      for (int j = 1; j <= m; ++j) {
        expected += original[static_cast<std::size_t>(j - 1)] *
                    std::sin(M_PI * j * k / (m + 1));
      }
      ASSERT_NEAR(v[static_cast<std::size_t>(k - 1)], expected, 1e-10)
          << "m=" << m << " k=" << k;
    }
  }
}

TEST(Dst1, SelfInverseUpToNormalisation) {
  Rng rng(6);
  const int m = 15;
  std::vector<double> v(static_cast<std::size_t>(m));
  for (auto& x : v) x = rng.uniform(-3.0, 3.0);
  const auto original = v;
  std::vector<std::complex<double>> work(2 * static_cast<std::size_t>(m + 1));
  dst1_inplace(v.data(), m, work);
  dst1_inplace(v.data(), m, work);
  const double scale = 2.0 / (m + 1);
  for (int i = 0; i < m; ++i) {
    ASSERT_NEAR(v[static_cast<std::size_t>(i)] * scale,
                original[static_cast<std::size_t>(i)], 1e-10);
  }
}

TEST(Dst1, RejectsBadLengths) {
  std::vector<double> v(5);  // m+1 = 6, not a power of two
  std::vector<std::complex<double>> work(12);
  EXPECT_THROW(dst1_inplace(v.data(), 5, work), InvalidArgument);
  std::vector<double> v3(3);
  std::vector<std::complex<double>> wrong(4);  // needs 8
  EXPECT_THROW(dst1_inplace(v3.data(), 3, wrong), InvalidArgument);
}

// --------------------------------------------------------- FastPoisson --

TEST(FastPoisson, MatchesBandedDirectSolver) {
  Rng rng(7);
  for (int n : {3, 5, 9, 17, 33}) {
    auto problem = make_problem(n, InputDistribution::kUnbiased, rng);
    // Band solve.
    linalg::BandMatrix a = linalg::assemble_poisson_band(n);
    auto rhs = linalg::gather_poisson_rhs(problem.b, problem.x0);
    linalg::band_spd_solve(a, rhs);
    Grid2D direct(n, 0.0);
    direct.copy_boundary_from(problem.x0);
    linalg::scatter_interior(rhs, direct);
    // Spectral solve.
    FastPoissonSolver solver(n);
    Grid2D spectral(n, 0.0);
    solver.solve(problem.b, problem.x0, spectral, sched());
    const double scale = grid::max_abs_interior(direct, sched()) + 1.0;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        ASSERT_NEAR(spectral(i, j), direct(i, j), 1e-9 * scale)
            << "n=" << n << " (" << i << "," << j << ")";
      }
    }
  }
}

TEST(FastPoisson, ReproducesManufacturedSolution) {
  for (int n : {9, 33, 65}) {
    const auto mp = make_manufactured_problem(n, sched());
    FastPoissonSolver solver(n);
    Grid2D out(n, 0.0);
    solver.solve(mp.problem.b, mp.problem.x0, out, sched());
    const double err = grid::norm2_diff_interior(out, mp.exact, sched());
    const double ref = grid::norm2_interior(mp.exact, sched()) + 1.0;
    EXPECT_LE(err / ref, 1e-11) << "n=" << n;
  }
}

TEST(FastPoisson, ResidualAtMachinePrecision) {
  Rng rng(8);
  const int n = 129;
  const auto problem = make_problem(n, InputDistribution::kBiased, rng);
  FastPoissonSolver solver(n);
  Grid2D x(n, 0.0);
  solver.solve(problem.b, problem.x0, x, sched());
  Grid2D r(n, 0.0);
  grid::residual(x, problem.b, r, sched());
  // Inputs are O(2³²) and inv_h² is ~1.6e4, so ~1e-16 relative rounding
  // shows up at O(1); require residual tiny relative to the data scale.
  const double scale = grid::max_abs_interior(problem.b, sched()) +
                       grid::max_abs_interior(x, sched()) * (n - 1.0) * (n - 1.0);
  EXPECT_LE(grid::max_abs_interior(r, sched()) / scale, 1e-10);
}

TEST(FastPoisson, ValidatesSizes) {
  EXPECT_THROW(FastPoissonSolver(8), InvalidArgument);
  FastPoissonSolver solver(5);
  Grid2D b(9, 0.0), x(9, 0.0), out(9, 0.0);
  EXPECT_THROW(solver.solve(b, x, out, sched()), InvalidArgument);
}

TEST(FastPoisson, ExactSolutionHelperSolvesOnGivenScheduler) {
  Rng rng(9);
  const auto problem = make_problem(17, InputDistribution::kUnbiased, rng);
  const Grid2D x = exact_solution(problem, sched());
  Grid2D r(17, 0.0);
  grid::residual(x, problem.b, r, sched());
  const double scale = grid::max_abs_interior(problem.b, sched()) + 1.0;
  EXPECT_LE(grid::max_abs_interior(r, sched()) / scale, 1e-9);
}

}  // namespace
}  // namespace pbmg::fft
