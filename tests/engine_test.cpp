// Tests for the Engine/SolveSession ownership layer: engines own their
// scheduler/scratch/direct resources, coexist with different machine
// profiles in one process, validate their inputs, amortize session setup
// through the scratch pool, and produce bit-identical solutions
// regardless of the worker count they run with.

#include <cstring>
#include <filesystem>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/solve_session.h"
#include "grid/level.h"
#include "support/rng.h"
#include "tune/accuracy.h"
#include "tune/trainer.h"

namespace pbmg {
namespace {

rt::MachineProfile test_profile(int threads) {
  rt::MachineProfile p;
  p.name = "engine-test";
  p.threads = threads;
  p.grain_rows = 4;
  return p;
}

Engine& engine() {
  static Engine instance(test_profile(4));
  return instance;
}

/// Config trained once on the shared engine (max_level 5, V + FMG).
const tune::TunedConfig& trained() {
  static const tune::TunedConfig config = [] {
    tune::TrainerOptions options;
    options.max_level = 5;
    options.seed = 4242;
    tune::Trainer trainer(options, engine());
    return trainer.train();
  }();
  return config;
}

bool bitwise_equal(const Grid2D& a, const Grid2D& b) {
  return a.n() == b.n() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

TEST(Engine, OwnsSchedulerBuiltFromProfile) {
  Engine two(test_profile(2));
  EXPECT_EQ(two.scheduler().thread_count(), 2);
  EXPECT_EQ(two.profile().name, "engine-test");
  EXPECT_FALSE(two.cache_dir().empty());
}

TEST(Engine, EnginesWithDifferentProfilesCoexist) {
  Engine serial(rt::serial_profile());
  Engine wide(test_profile(4));
  EXPECT_EQ(serial.scheduler().thread_count(), 1);
  EXPECT_EQ(wide.scheduler().thread_count(), 4);
  // Pools are independent: leases from one never appear in the other.
  { auto lease = serial.scratch().acquire(17); }
  EXPECT_EQ(serial.scratch().pooled(), 1u);
  EXPECT_EQ(wide.scratch().pooled(), 0u);
}

TEST(Engine, ValidatesProfileAndRelaxTunables) {
  rt::MachineProfile bad = test_profile(0);
  EXPECT_THROW(Engine{bad}, InvalidArgument);
  solvers::RelaxTunables divergent;
  divergent.recurse_omega = 2.5;  // outside SOR's (0, 2) stability interval
  EXPECT_THROW(Engine(test_profile(1), divergent), InvalidArgument);
}

TEST(Engine, CarriesSearchedRelaxTunables) {
  solvers::RelaxTunables searched;
  searched.recurse_omega = 1.3;
  searched.omega_scale = 0.9;
  Engine tuned(test_profile(1), searched);
  EXPECT_DOUBLE_EQ(tuned.relax().recurse_omega, 1.3);
  EXPECT_DOUBLE_EQ(tuned.relax().omega_scale, 0.9);
}

TEST(SolveSession, PreallocatesTheLevelHierarchy) {
  Engine local(test_profile(2));
  SolveSession session(local, trained(), size_of_level(5));
  EXPECT_GT(local.scratch().pooled(), 0u);
  const auto warm = local.scratch().stats();
  // The first solve draws from the warmed free-list instead of malloc.
  Rng rng(11);
  auto inst = tune::make_training_instance(
      session.n(), InputDistribution::kUnbiased, rng, local.scheduler());
  Grid2D x(session.n(), 0.0);
  x.copy_from(inst.problem.x0);
  session.solve_reference_v(x, inst.problem.b, /*max_cycles=*/2,
                            [](const Grid2D&, int it) { return it >= 2; });
  const auto after = local.scratch().stats();
  EXPECT_GT(after.hits, warm.hits);
  EXPECT_EQ(after.misses, warm.misses);  // nothing allocated on the path
}

TEST(SolveSession, SolveVMeetsAccuracyContractAndReportsStats) {
  const int n = size_of_level(5);
  SolveSession session(engine(), trained(), n);
  Rng rng(22);
  auto inst = tune::make_training_instance(n, InputDistribution::kUnbiased,
                                           rng, engine().scheduler());
  for (int i = 0; i < trained().accuracy_count(); ++i) {
    Grid2D x(n, 0.0);
    x.copy_from(inst.problem.x0);
    const SolveStats stats = session.solve_v(x, inst.problem.b, i);
    EXPECT_EQ(stats.n, n);
    EXPECT_EQ(stats.level, 5);
    EXPECT_EQ(stats.accuracy_index, i);
    EXPECT_GE(stats.seconds, 0.0);
    const double target =
        trained().accuracies()[static_cast<std::size_t>(i)];
    EXPECT_GE(tune::accuracy_of(inst, x, engine().scheduler()), 0.2 * target);
  }
}

TEST(SolveSession, ReferenceSolversRunOnTheEngine) {
  const int n = size_of_level(4);
  SolveSession session(engine(), trained(), n);
  Rng rng(33);
  auto inst = tune::make_training_instance(n, InputDistribution::kUnbiased,
                                           rng, engine().scheduler());
  Grid2D x(n, 0.0);
  x.copy_from(inst.problem.x0);
  const auto stop = [&](const Grid2D& state, int) {
    return tune::accuracy_of(inst, state, engine().scheduler()) >= 1e5;
  };
  const SolveStats stats = session.solve_reference_v(x, inst.problem.b,
                                                     /*max_cycles=*/100, stop);
  EXPECT_TRUE(stats.converged);
  EXPECT_GT(stats.iterations, 0);
}

TEST(SolveSession, RejectsMismatchedOperandsAndUntrainedLevels) {
  const int n = size_of_level(4);
  SolveSession session(engine(), trained(), n);
  Grid2D small(size_of_level(3), 0.0), b(n, 0.0), x(n, 0.0);
  EXPECT_THROW(session.solve_v(small, b, 0), Error);
  EXPECT_THROW(session.solve_v(x, small, 0), Error);
  // trained() covers levels up to 5; a level-6 session is invalid.
  EXPECT_THROW(SolveSession(engine(), trained(), size_of_level(6)), Error);
  EXPECT_THROW(SolveSession(engine(), trained(), 10), Error);
}

TEST(SolveSession, SolutionsAreBitIdenticalAcrossWorkerCounts) {
  // The solve path has no floating-point reductions, so the same config
  // must produce the same bits on a serial engine and a 4-thread engine —
  // the property the concurrent-service stress test leans on.
  const int n = size_of_level(5);
  Engine serial(rt::serial_profile());
  SolveSession parallel_session(engine(), trained(), n);
  SolveSession serial_session(serial, trained(), n);
  Rng rng(44);
  auto inst = tune::make_training_instance(n, InputDistribution::kBiased, rng,
                                           serial.scheduler());
  const int top = trained().accuracy_count() - 1;
  Grid2D xp(n, 0.0), xs(n, 0.0);
  xp.copy_from(inst.problem.x0);
  xs.copy_from(inst.problem.x0);
  parallel_session.solve_v(xp, inst.problem.b, top);
  serial_session.solve_v(xs, inst.problem.b, top);
  EXPECT_TRUE(bitwise_equal(xp, xs));
  xp.copy_from(inst.problem.x0);
  xs.copy_from(inst.problem.x0);
  parallel_session.solve_fmg(xp, inst.problem.b, top);
  serial_session.solve_fmg(xs, inst.problem.b, top);
  EXPECT_TRUE(bitwise_equal(xp, xs));
}

TEST(Engine, TunedConfigRoundTripsThroughTheDiskCache) {
  const auto dir =
      std::filesystem::temp_directory_path() / "pbmg_engine_cache_test";
  std::filesystem::remove_all(dir);
  EngineOptions options;
  options.profile = rt::serial_profile();
  options.cache_dir = dir.string();
  Engine cached(options);
  tune::TrainerOptions trainer_options;
  trainer_options.max_level = 3;
  trainer_options.train_fmg = false;
  bool from_cache = true;
  const auto first = cached.tuned_config(trainer_options, -1, &from_cache);
  EXPECT_FALSE(from_cache);
  const auto second = cached.tuned_config(trainer_options, -1, &from_cache);
  EXPECT_TRUE(from_cache);
  EXPECT_EQ(first.to_json().dump(), second.to_json().dump());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace pbmg
