// Tests for the linear-algebra substrate: band storage, banded Cholesky
// (the DPBSV equivalent), dense Cholesky cross-checks, and the Poisson
// assembly with boundary lifting.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "grid/grid2d.h"
#include "grid/level.h"
#include "linalg/band_matrix.h"
#include "linalg/poisson_assembly.h"
#include "support/error.h"
#include "support/rng.h"

namespace pbmg::linalg {
namespace {

/// Builds a random SPD band matrix: A = Bᵀ·B restricted to the band plus a
/// diagonal boost that keeps it well-conditioned and definite.
BandMatrix random_spd_band(int dim, int bandwidth, std::uint64_t seed) {
  Rng rng(seed);
  BandMatrix a(dim, bandwidth);
  for (int j = 0; j < dim; ++j) {
    a.band(j, 0) = 4.0 + 2.0 * bandwidth + rng.uniform01();
    for (int d = 1; d <= bandwidth && j + d < dim; ++d) {
      a.band(j, d) = rng.uniform(-1.0, 1.0);
    }
  }
  return a;
}

std::vector<double> random_vector(int dim, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(static_cast<std::size_t>(dim));
  for (auto& x : v) x = rng.uniform(-5.0, 5.0);
  return v;
}

std::vector<double> dense_matvec(const std::vector<double>& a, int m,
                                 const std::vector<double>& x) {
  std::vector<double> y(static_cast<std::size_t>(m), 0.0);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      y[static_cast<std::size_t>(i)] +=
          a[static_cast<std::size_t>(i) * m + j] * x[static_cast<std::size_t>(j)];
    }
  }
  return y;
}

// ---------------------------------------------------------- BandMatrix --

TEST(BandMatrix, StorageAndSymmetricGet) {
  BandMatrix a(4, 1);
  a.set(0, 0, 2.0);
  a.set(1, 0, -1.0);
  a.set(1, 1, 2.0);
  EXPECT_DOUBLE_EQ(a.get(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.get(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(a.get(0, 1), -1.0);  // symmetric read
  EXPECT_DOUBLE_EQ(a.get(0, 2), 0.0);   // outside band reads zero
  EXPECT_THROW(a.set(0, 1, 1.0), InvalidArgument);  // upper triangle write
  EXPECT_THROW(a.set(3, 0, 1.0), InvalidArgument);  // outside band write
  EXPECT_THROW(a.get(4, 0), InvalidArgument);
}

TEST(BandMatrix, InvalidShapesThrow) {
  EXPECT_THROW(BandMatrix(0, 0), InvalidArgument);
  EXPECT_THROW(BandMatrix(3, 3), InvalidArgument);
  EXPECT_THROW(BandMatrix(3, -1), InvalidArgument);
}

TEST(BandMatrix, ToDenseReconstructsSymmetry) {
  const BandMatrix a = random_spd_band(6, 2, 17);
  const auto dense = a.to_dense();
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      EXPECT_DOUBLE_EQ(dense[static_cast<std::size_t>(i) * 6 + j],
                       dense[static_cast<std::size_t>(j) * 6 + i]);
      EXPECT_DOUBLE_EQ(dense[static_cast<std::size_t>(i) * 6 + j], a.get(i, j));
    }
  }
}

// ------------------------------------------------------- band Cholesky --

TEST(BandCholesky, SolvesKnownTridiagonalSystem) {
  // 1-D Poisson matrix [2,-1] of dim 3 with rhs = (1,0,1): solution (1,1,1).
  BandMatrix a(3, 1);
  for (int j = 0; j < 3; ++j) a.band(j, 0) = 2.0;
  a.band(0, 1) = -1.0;
  a.band(1, 1) = -1.0;
  std::vector<double> rhs{1.0, 0.0, 1.0};
  band_spd_solve(a, rhs);
  EXPECT_NEAR(rhs[0], 1.0, 1e-14);
  EXPECT_NEAR(rhs[1], 1.0, 1e-14);
  EXPECT_NEAR(rhs[2], 1.0, 1e-14);
}

TEST(BandCholesky, MatchesDenseCholeskyOnRandomSystems) {
  for (int dim : {1, 2, 5, 12, 40}) {
    for (int bw : {0, 1, 3, 7}) {
      if (bw >= dim) continue;
      BandMatrix a = random_spd_band(dim, bw, 1000u + static_cast<std::uint64_t>(dim * 10 + bw));
      auto dense = a.to_dense();
      const auto b = random_vector(dim, 55);
      std::vector<double> band_solution = b;
      band_spd_solve(a, band_solution);
      std::vector<double> dense_solution = b;
      dense_spd_solve(dense, dim, dense_solution);
      for (int i = 0; i < dim; ++i) {
        ASSERT_NEAR(band_solution[static_cast<std::size_t>(i)],
                    dense_solution[static_cast<std::size_t>(i)], 1e-9)
            << "dim=" << dim << " bw=" << bw << " i=" << i;
      }
    }
  }
}

TEST(BandCholesky, ResidualIsTiny) {
  const int dim = 30, bw = 5;
  BandMatrix a = random_spd_band(dim, bw, 77);
  const auto dense = a.to_dense();
  const auto b = random_vector(dim, 78);
  std::vector<double> x = b;
  band_spd_solve(a, x);
  const auto ax = dense_matvec(dense, dim, x);
  for (int i = 0; i < dim; ++i) {
    ASSERT_NEAR(ax[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)],
                1e-9);
  }
}

TEST(BandCholesky, RejectsIndefiniteMatrix) {
  BandMatrix a(3, 1);
  a.band(0, 0) = 1.0;
  a.band(1, 0) = -2.0;  // negative pivot
  a.band(2, 0) = 1.0;
  EXPECT_THROW(band_cholesky_factor(a), NumericalError);
}

TEST(BandCholesky, RejectsSemidefiniteMatrix) {
  // [1 1; 1 1] is singular.
  BandMatrix a(2, 1);
  a.band(0, 0) = 1.0;
  a.band(1, 0) = 1.0;
  a.band(0, 1) = 1.0;
  EXPECT_THROW(band_cholesky_factor(a), NumericalError);
}

TEST(BandCholesky, SolveValidatesRhsSize) {
  BandMatrix a = random_spd_band(4, 1, 5);
  band_cholesky_factor(a);
  std::vector<double> wrong(3, 0.0);
  EXPECT_THROW(band_cholesky_solve(a, wrong), InvalidArgument);
}

TEST(DenseCholesky, ValidatesInputs) {
  std::vector<double> a(4, 1.0);  // singular 2x2 of ones
  std::vector<double> b{1.0, 1.0};
  EXPECT_THROW(dense_spd_solve(a, 2, b), NumericalError);
  std::vector<double> bad(3, 1.0);
  EXPECT_THROW(dense_spd_solve(bad, 2, b), InvalidArgument);
}

// ------------------------------------------------------ Poisson assembly --

TEST(PoissonAssembly, MatrixMatchesStencil) {
  const int n = 5;  // interior 3x3, dim 9, bandwidth 3
  const BandMatrix a = assemble_poisson_band(n);
  EXPECT_EQ(a.dim(), 9);
  EXPECT_EQ(a.bandwidth(), 3);
  const double inv_h2 = 16.0;  // h = 1/4
  for (int idx = 0; idx < 9; ++idx) {
    EXPECT_DOUBLE_EQ(a.get(idx, idx), 4.0 * inv_h2);
  }
  // East neighbour present except across row boundaries.
  EXPECT_DOUBLE_EQ(a.get(1, 0), -inv_h2);
  EXPECT_DOUBLE_EQ(a.get(3, 2), 0.0);  // (row 1, col 0)-(row 0, col 2) break
  // South neighbour (offset 3).
  EXPECT_DOUBLE_EQ(a.get(3, 0), -inv_h2);
  EXPECT_DOUBLE_EQ(a.get(8, 5), -inv_h2);
}

TEST(PoissonAssembly, BaseCaseIsOneByOne) {
  const BandMatrix a = assemble_poisson_band(3);
  EXPECT_EQ(a.dim(), 1);
  EXPECT_EQ(a.bandwidth(), 0);
  EXPECT_DOUBLE_EQ(a.get(0, 0), 16.0);  // 4 / h², h = 1/2
}

TEST(PoissonAssembly, GatherLiftsBoundaryScatterRoundTrips) {
  const int n = 5;
  Grid2D b(n, 0.0), x(n, 0.0);
  Rng rng(3);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      b(i, j) = rng.uniform(-1.0, 1.0);
      x(i, j) = rng.uniform(-1.0, 1.0);
    }
  }
  const auto rhs = gather_poisson_rhs(b, x);
  ASSERT_EQ(rhs.size(), 9u);
  const double inv_h2 = 16.0;
  // Corner interior cell (1,1) receives north and west boundary lift.
  EXPECT_NEAR(rhs[0], b(1, 1) + inv_h2 * (x(0, 1) + x(1, 0)), 1e-12);
  // Centre cell (2,2) receives no lift.
  EXPECT_NEAR(rhs[4], b(2, 2), 1e-12);
  // Scatter writes only the interior.
  Grid2D out(n, -7.0);
  scatter_interior(rhs, out);
  EXPECT_DOUBLE_EQ(out(0, 0), -7.0);
  EXPECT_NEAR(out(2, 2), rhs[4], 1e-12);
  std::vector<double> wrong(4, 0.0);
  EXPECT_THROW(scatter_interior(wrong, out), InvalidArgument);
}

TEST(PoissonAssembly, DirectBandSolveReproducesManufacturedSolution) {
  // Solve A x = gather(b, boundary) for a problem built from a known
  // discrete solution and compare.
  for (int n : {3, 5, 9, 17}) {
    Grid2D exact(n, 0.0);
    Rng rng(200 + static_cast<std::uint64_t>(n));
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) exact(i, j) = rng.uniform(-1.0, 1.0);
    }
    // b = A·exact computed by the band matrix itself (dense check path).
    BandMatrix a = assemble_poisson_band(n);
    const auto dense = a.to_dense();
    const int m = (n - 2) * (n - 2);
    std::vector<double> xe(static_cast<std::size_t>(m));
    for (int i = 1; i < n - 1; ++i) {
      for (int j = 1; j < n - 1; ++j) {
        xe[static_cast<std::size_t>((i - 1) * (n - 2) + (j - 1))] = exact(i, j);
      }
    }
    auto rhs_vec = dense_matvec(dense, m, xe);
    // Convert to grid RHS by removing the boundary lift that gather adds.
    Grid2D b(n, 0.0);
    scatter_interior(rhs_vec, b);
    const double inv_h2 =
        static_cast<double>(n - 1) * static_cast<double>(n - 1);
    for (int j = 1; j < n - 1; ++j) {
      b(1, j) -= inv_h2 * exact(0, j);
      b(n - 2, j) -= inv_h2 * exact(n - 1, j);
    }
    for (int i = 1; i < n - 1; ++i) {
      b(i, 1) -= inv_h2 * exact(i, 0);
      b(i, n - 2) -= inv_h2 * exact(i, n - 1);
    }
    auto rhs = gather_poisson_rhs(b, exact);
    band_spd_solve(a, rhs);
    for (int i = 0; i < m; ++i) {
      ASSERT_NEAR(rhs[static_cast<std::size_t>(i)],
                  xe[static_cast<std::size_t>(i)], 1e-8)
          << "n=" << n;
    }
  }
}

TEST(PoissonAssembly, RejectsInvalidSizes) {
  EXPECT_THROW(assemble_poisson_band(4), InvalidArgument);
  Grid2D b(6, 0.0), x(6, 0.0);
  EXPECT_THROW(gather_poisson_rhs(b, x), InvalidArgument);
}

}  // namespace
}  // namespace pbmg::linalg
