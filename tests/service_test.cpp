// Multi-client stress tests for the SolveService front-end: N client
// threads × M solves with mixed sizes and accuracies through one Engine,
// every concurrent result bit-checked against a serial golden run; plus
// session caching, failure accounting, and trim-under-load behaviour.

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/solve_service.h"
#include "grid/level.h"
#include "obs/phase_profile.h"
#include "support/rng.h"
#include "tune/accuracy.h"
#include "tune/trainer.h"

namespace pbmg {
namespace {

constexpr int kMaxLevel = 5;

Engine& engine() {
  static Engine instance([] {
    rt::MachineProfile p;
    p.name = "service-test";
    p.threads = 4;
    p.grain_rows = 4;
    return p;
  }());
  return instance;
}

const tune::TunedConfig& trained() {
  static const tune::TunedConfig config = [] {
    tune::TrainerOptions options;
    options.max_level = kMaxLevel;
    options.seed = 9090;
    tune::Trainer trainer(options, engine());
    return trainer.train();
  }();
  return config;
}

/// One stress case: a problem plus the request that solves it and the
/// golden (serial-engine) solution bits.
struct Case {
  PoissonProblem problem;
  SolveRequest request;
  Grid2D golden;
};

/// Mixed sizes (levels 3..kMaxLevel) × accuracies × V/FMG, goldens
/// computed on a dedicated single-threaded engine.
std::vector<Case> make_cases() {
  std::vector<Case> cases;
  Engine serial(rt::serial_profile());
  SolveService golden_service(serial, trained());
  Rng rng(777);
  const int m = trained().accuracy_count();
  for (int level = 3; level <= kMaxLevel; ++level) {
    const int n = size_of_level(level);
    for (int acc : {0, m / 2, m - 1}) {
      for (bool fmg : {false, true}) {
        Case c;
        c.problem = make_problem(n, InputDistribution::kUnbiased, rng);
        c.request.accuracy_index = acc;
        c.request.fmg = fmg;
        c.golden = Grid2D(n, 0.0);
        c.golden.copy_from(c.problem.x0);
        golden_service.solve(c.golden, c.problem.b, c.request);
        cases.push_back(std::move(c));
      }
    }
  }
  return cases;
}

bool bitwise_equal(const Grid2D& a, const Grid2D& b) {
  return a.n() == b.n() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

TEST(SolveService, ConcurrentMixedSolvesMatchSerialRunsBitwise) {
  const auto cases = make_cases();
  SolveService service(engine(), trained());
  const auto before = service.stats();

  constexpr int kClients = 6;
  constexpr int kSolvesPerClient = 12;
  std::atomic<int> mismatches{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int r = 0; r < kSolvesPerClient; ++r) {
        // Every client walks the case list from its own offset, so at any
        // moment different sizes/accuracies are in flight concurrently.
        const Case& item =
            cases[static_cast<std::size_t>(c * 5 + r) % cases.size()];
        Grid2D x(item.problem.n(), 0.0);
        x.copy_from(item.problem.x0);
        service.solve(x, item.problem.b, item.request);
        if (!bitwise_equal(x, item.golden)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& client : clients) client.join();

  EXPECT_EQ(mismatches.load(), 0);
  const auto after = service.stats();
  EXPECT_EQ(after.requests - before.requests, kClients * kSolvesPerClient);
  EXPECT_EQ(after.failures, before.failures);
  EXPECT_EQ(after.sessions, static_cast<std::size_t>(kMaxLevel - 2));
  EXPECT_GT(after.busy_seconds, before.busy_seconds);
  // The shared pool must have been serving (not growing unboundedly):
  // steady-state concurrent solves run almost entirely on recycled grids.
  EXPECT_GT(engine().scratch().stats().hit_rate(), 0.5);
}

TEST(SolveService, SessionsAreCachedPerSize) {
  SolveService service(engine(), trained());
  const SessionRef a = service.session(size_of_level(4));
  const SessionRef b = service.session(size_of_level(4));
  const SessionRef c = service.session(size_of_level(3));
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(service.stats().sessions, 2u);
}

TEST(SolveService, TargetAccuracyRequestsResolveToLadderIndex) {
  SolveService service(engine(), trained());
  const int n = size_of_level(4);
  Rng rng(55);
  auto inst = tune::make_training_instance(n, InputDistribution::kUnbiased,
                                           rng, engine().scheduler());
  Grid2D x(n, 0.0);
  x.copy_from(inst.problem.x0);
  SolveRequest request;
  request.target_accuracy = 1e5;  // no explicit index
  const SolveStats stats = service.solve(x, inst.problem.b, request);
  EXPECT_EQ(stats.accuracy_index, trained().accuracy_index(1e5));
  EXPECT_GE(tune::accuracy_of(inst, x, engine().scheduler()), 0.2 * 1e5);
}

TEST(SolveService, CountsFailuresAndKeepsServing) {
  SolveService service(engine(), trained());
  const int n = size_of_level(3);
  Grid2D x(n, 0.0), b(n, 0.0);
  SolveRequest bad;
  bad.accuracy_index = trained().accuracy_count() + 7;
  EXPECT_THROW(service.solve(x, b, bad), Error);
  EXPECT_EQ(service.stats().failures, 1);
  SolveRequest good;
  good.accuracy_index = 0;
  EXPECT_NO_THROW(service.solve(x, b, good));
  EXPECT_EQ(service.stats().requests, 1);
}

TEST(SolveService, TrimUnderLoadFreesMemoryAndServiceRecovers) {
  // A dedicated engine so pooled-byte accounting is not shared with the
  // other tests in this binary.
  Engine local([] {
    rt::MachineProfile p;
    p.name = "service-trim";
    p.threads = 2;
    p.grain_rows = 4;
    return p;
  }());
  SolveService service(local, trained());
  const int n = size_of_level(4);
  Rng rng(66);
  auto problem = make_problem(n, InputDistribution::kUnbiased, rng);
  SolveRequest request;
  request.accuracy_index = trained().accuracy_count() - 1;
  Grid2D x(n, 0.0);
  x.copy_from(problem.x0);
  service.solve(x, problem.b, request);
  EXPECT_GT(local.scratch().pooled(), 0u);
  EXPECT_GT(service.trim(), 0u);  // idle shrink releases the free-list
  EXPECT_EQ(local.scratch().pooled(), 0u);
  // The service keeps working after the trim (pool refills as it runs).
  x.copy_from(problem.x0);
  service.solve(x, problem.b, request);
  EXPECT_EQ(service.stats().requests, 2);
  // A reference solve always leases level temporaries (the tuned plan may
  // legitimately be lease-free, e.g. an all-Direct table), so drive one
  // through the same session to watch the free-list re-stock.
  x.copy_from(problem.x0);
  service.session(n)->solve_reference_v(
      x, problem.b, /*max_cycles=*/2,
      [](const Grid2D&, int it) { return it >= 2; });
  EXPECT_GT(local.scratch().pooled(), 0u);
  // Satellite telemetry: the trim shows up in ServiceStats (count + bytes)
  // and the sampled pool/scheduler gauges ride along.
  const auto stats = service.stats();
  EXPECT_EQ(stats.trims, 1);
  EXPECT_GT(stats.trim_bytes, 0);
  EXPECT_GT(stats.scratch_hit_rate, 0.0);
  EXPECT_LE(stats.scratch_hit_rate, 1.0);
  EXPECT_GE(stats.scheduler_steals, 0);
}

TEST(SolveService, MetricsSnapshotCountsEveryRequestPerSizeAndAccuracy) {
  Engine local([] {
    rt::MachineProfile p;
    p.name = "service-metrics";
    p.threads = 2;
    p.grain_rows = 4;
    return p;
  }());
  SolveService service(local, trained());
  Rng rng(44);
  const int solves_small = 3;
  const int solves_big = 2;
  const auto drive = [&](int level, int count, int acc) {
    const int n = size_of_level(level);
    auto problem = make_problem(n, InputDistribution::kUnbiased, rng);
    SolveRequest request;
    request.accuracy_index = acc;
    for (int i = 0; i < count; ++i) {
      Grid2D x(n, 0.0);
      x.copy_from(problem.x0);
      service.solve(x, problem.b, request);
    }
  };
  drive(3, solves_small, 0);
  drive(4, solves_big, 1);

  const obs::RegistrySnapshot snapshot = service.metrics_snapshot();
  // Requests carry an outcome label whose series sum to *all* requests
  // (Prometheus `_total` convention): so far everything succeeded.
  EXPECT_EQ(snapshot.counters.at("pbmg_solve_requests_total{outcome=\"ok\"}"),
            solves_small + solves_big);
  EXPECT_EQ(snapshot.counters.at(
                "pbmg_solve_requests_total{outcome=\"unconverged\"}"),
            0);
  EXPECT_EQ(
      snapshot.counters.at("pbmg_solve_requests_total{outcome=\"error\"}"),
      0);
  EXPECT_EQ(snapshot.counters.at("pbmg_solve_failures_total"), 0);
  EXPECT_EQ(snapshot.histograms.at("pbmg_solve_failure_seconds").count, 0);
  const std::string small_series =
      "pbmg_solve_latency_seconds{n=\"" + std::to_string(size_of_level(3)) +
      "\",acc=\"0\"}";
  const std::string big_series =
      "pbmg_solve_latency_seconds{n=\"" + std::to_string(size_of_level(4)) +
      "\",acc=\"1\"}";
  ASSERT_TRUE(snapshot.histograms.count(small_series));
  ASSERT_TRUE(snapshot.histograms.count(big_series));
  EXPECT_EQ(snapshot.histograms.at(small_series).count, solves_small);
  EXPECT_EQ(snapshot.histograms.at(big_series).count, solves_big);
  EXPECT_GT(snapshot.histograms.at(small_series).sum, 0.0);
  // Engine gauges are published into the same registry on snapshot.
  EXPECT_EQ(snapshot.gauges.at("pbmg_service_sessions"), 2.0);
  EXPECT_GT(snapshot.gauges.at("pbmg_service_busy_seconds"), 0.0);
  ASSERT_TRUE(snapshot.gauges.count("pbmg_scratch_hit_rate"));
  ASSERT_TRUE(snapshot.gauges.count("pbmg_scheduler_steals"));

  // A rejected request lands in the failure counter, the error-outcome
  // request series, and the failure latency histogram — not the
  // per-(n, acc) success histograms.
  Grid2D x(size_of_level(3), 0.0), b(size_of_level(3), 0.0);
  SolveRequest bad;
  bad.accuracy_index = trained().accuracy_count() + 3;
  EXPECT_THROW(service.solve(x, b, bad), Error);
  const obs::RegistrySnapshot after = service.metrics_snapshot();
  EXPECT_EQ(after.counters.at("pbmg_solve_failures_total"), 1);
  EXPECT_EQ(
      after.counters.at("pbmg_solve_requests_total{outcome=\"error\"}"), 1);
  EXPECT_EQ(after.histograms.at("pbmg_solve_failure_seconds").count, 1);
  EXPECT_EQ(after.histograms.at(small_series).count, solves_small);
}

TEST(SolveService, UnconvergedSolvesLandInFailureHistogramNotHealthy) {
  // The per-(n, acc) latency histograms are the healthy-serving
  // distributions the drift watcher compares against; a solve that failed
  // its residual audit must be accounted with the failures
  // (pbmg_solve_failure_seconds), not mixed into them.
  Engine local([] {
    rt::MachineProfile p;
    p.name = "service-unconverged";
    p.threads = 2;
    p.grain_rows = 4;
    return p;
  }());
  SolveService service(local, trained());
  const int n = size_of_level(3);
  Rng rng(88);
  auto problem = make_problem(n, InputDistribution::kUnbiased, rng);
  SolveRequest request;
  request.accuracy_index = 0;
  request.residual.enabled = true;
  Grid2D x(n, 0.0);
  x.copy_from(problem.x0);
  ASSERT_TRUE(service.solve(x, problem.b, request).converged);

  // An impossible audit bound makes an otherwise-fine solve unconverged.
  request.residual.ratio_limit = 1e-300;
  x.copy_from(problem.x0);
  const SolveStats stats = service.solve(x, problem.b, request);
  ASSERT_FALSE(stats.converged);

  const obs::RegistrySnapshot snapshot = service.metrics_snapshot();
  const std::string series = "pbmg_solve_latency_seconds{n=\"" +
                             std::to_string(n) + "\",acc=\"0\"}";
  EXPECT_EQ(snapshot.histograms.at(series).count, 1);  // only the healthy one
  EXPECT_EQ(snapshot.histograms.at("pbmg_solve_failure_seconds").count, 1);
  EXPECT_EQ(snapshot.counters.at("pbmg_solve_requests_total{outcome=\"ok\"}"),
            1);
  EXPECT_EQ(snapshot.counters.at(
                "pbmg_solve_requests_total{outcome=\"unconverged\"}"),
            1);
}

TEST(SolveService, TrimAfterInstallFreesRetiredGenerationsPool) {
  // Regression: trim() used to shrink only the LIVE generation's engine,
  // so after an install with a fresh engine the retired engine's prewarmed
  // pool stayed resident until process exit.
  Engine local([] {
    rt::MachineProfile p;
    p.name = "service-retired-trim";
    p.threads = 2;
    p.grain_rows = 4;
    return p;
  }());
  SolveService service(local, trained());
  const int n = size_of_level(4);
  Rng rng(99);
  auto problem = make_problem(n, InputDistribution::kUnbiased, rng);
  SolveRequest request;
  request.accuracy_index = 0;
  Grid2D x(n, 0.0);
  x.copy_from(problem.x0);
  service.solve(x, problem.b, request);
  ASSERT_GT(local.scratch().pooled(), 0u);

  // Pin the retiring generation so reclaim cannot free the pool for us —
  // the trim itself must reach the retired engine.
  const SessionRef pin = service.session(n);
  auto fresh_engine = std::make_shared<Engine>([] {
    rt::MachineProfile p;
    p.name = "service-retired-trim-gen2";
    p.threads = 2;
    p.grain_rows = 4;
    return p;
  }());
  service.install(trained(), {}, fresh_engine);
  ASSERT_GT(local.scratch().pooled(), 0u);  // retired pool still resident
  EXPECT_GT(service.trim(), 0u);
  EXPECT_EQ(local.scratch().pooled(), 0u);  // freed by the all-gen trim
}

TEST(SolveService, RetiredGenerationsAreReclaimedOnceUnpinned) {
  Engine local([] {
    rt::MachineProfile p;
    p.name = "service-reclaim";
    p.threads = 2;
    p.grain_rows = 4;
    return p;
  }());
  SolveService service(local, trained());
  const int n = size_of_level(3);
  {
    const SessionRef pin = service.session(n);
    ASSERT_GT(service.stats().session_bytes, 0u);
    service.install(trained());
    service.trim();  // sweep runs, but the pin holds the retired gen
    EXPECT_EQ(service.stats().retired_generations, 1u);
    EXPECT_GT(service.stats().session_bytes, 0u);
    EXPECT_EQ(pin->n(), n);  // still fully usable while retired
  }
  service.trim();  // last pin dropped: the sweep reclaims the generation
  EXPECT_EQ(service.stats().retired_generations, 0u);
  EXPECT_EQ(service.stats().session_bytes, 0u);  // gen 2 has no sessions
}

TEST(SolveService, RequestProfileAttachesPhaseBreakdownToStats) {
  SolveService service(engine(), trained());
  const int n = size_of_level(4);
  Rng rng(77);
  auto problem = make_problem(n, InputDistribution::kUnbiased, rng);
  Grid2D x(n, 0.0);
  x.copy_from(problem.x0);

  // Default request: profiling off, no phases attached.
  SolveRequest plain;
  plain.accuracy_index = trained().accuracy_count() - 1;
  EXPECT_EQ(service.solve(x, problem.b, plain).phases, nullptr);

  // Profiled request: the same shared profile comes back through stats and
  // accumulates across requests.
  SolveRequest profiled = plain;
  profiled.profile = std::make_shared<obs::PhaseProfile>();
  x.copy_from(problem.x0);
  const SolveStats first = service.solve(x, problem.b, profiled);
  ASSERT_NE(first.phases, nullptr);
  EXPECT_EQ(first.phases.get(), profiled.profile.get());
  const double after_one = first.phases->total_seconds();
  EXPECT_GT(after_one, 0.0);
  x.copy_from(problem.x0);
  service.solve(x, problem.b, profiled);
  EXPECT_GT(profiled.profile->total_seconds(), after_one);
  EXPECT_FALSE(profiled.profile->entries().empty());
}

}  // namespace
}  // namespace pbmg
