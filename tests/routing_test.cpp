// Operator fingerprinting + dynamic routing: every canonical family's
// fingerprint must self-match across grid sizes (the features are scale-
// and size-stable), rotated diffusion tensors must route to the rotated
// families, and SolveService::solve_op must serve a never-trained family
// via the nearest stand-in, fire exactly one background family retune,
// and reroute post-install with zero bit-divergence on untouched routes.
// The service test hammers solve_op from several threads while the
// retune + install_family race the binding cache — it runs under TSan in
// CI alongside drift_test.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <numbers>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/solve_service.h"
#include "grid/fingerprint.h"
#include "grid/level.h"
#include "grid/problem.h"
#include "support/rng.h"
#include "tune/table.h"

namespace pbmg {
namespace {

// ---------------------------------------------------- fingerprint props --

TEST(Fingerprint, EveryFamilySelfMatchesAcrossGridSizes) {
  // The reference fingerprints are sampled at one fixed side; routing is
  // only sound if a family's fingerprint stays put as the grid refines.
  for (const int n : {17, 33, 65, 129}) {
    for (const OperatorFamily family : kAllOperatorFamilies) {
      const grid::OperatorFingerprint fp =
          grid::fingerprint(make_operator(n, family));
      const grid::FamilyMatch match = grid::nearest_family(fp);
      EXPECT_EQ(match.family, family)
          << to_string(family) << " at n=" << n << " routed to "
          << to_string(match.family);
      EXPECT_LT(match.distance, 0.5)
          << to_string(family) << " drifted at n=" << n;
    }
  }
}

TEST(Fingerprint, PoissonIsTheAllZeroFastPath) {
  const grid::OperatorFingerprint fp =
      grid::fingerprint(grid::StencilOp::poisson(65));
  EXPECT_EQ(fp.anisotropy, 0.0);
  EXPECT_EQ(fp.local_anisotropy, 0.0);
  EXPECT_EQ(fp.heterogeneity, 0.0);
  EXPECT_EQ(fp.rotation, 0.0);
  EXPECT_EQ(fp.reaction, 0.0);
}

TEST(Fingerprint, ScaleInvariant) {
  // Scaling the whole operator leaves every feature (ratios and
  // normalized differences) in place: the metric compares shape, not
  // magnitude.
  const int n = 65;
  const auto base = [](double x, double y) {
    return 1.0 + 0.5 * x + 0.25 * y;
  };
  const grid::OperatorFingerprint one =
      grid::fingerprint(grid::StencilOp::from_coefficient(n, base));
  const grid::OperatorFingerprint scaled =
      grid::fingerprint(grid::StencilOp::from_coefficient(
          n, [&](double x, double y) { return 1000.0 * base(x, y); }));
  EXPECT_NEAR(grid::fingerprint_distance(one, scaled), 0.0, 1e-9);
}

TEST(Fingerprint, RotatedTensorsRouteToRotatedFamilies) {
  // Any strongly rotated diffusion tensor — not just the two canonical
  // angles — must land on a rotated-tensor family, never on an
  // axis-aligned or isotropic one: the rotation feature is what carries
  // the cross-term signal the axis-aligned families cannot express.
  const int n = 65;
  const double eps = 1e-2;
  for (const double theta_deg : {30.0, 35.0, 40.0, 45.0}) {
    const double theta = theta_deg * std::numbers::pi / 180.0;
    const double c = std::cos(theta);
    const double s = std::sin(theta);
    const grid::StencilOp op = grid::StencilOp::from_tensor(
        n, [&](double, double) { return c * c + eps * s * s; },
        [&](double, double) { return (1.0 - eps) * s * c; },
        [&](double, double) { return s * s + eps * c * c; }, 0.0);
    const grid::FamilyMatch match =
        grid::nearest_family(grid::fingerprint(op));
    EXPECT_TRUE(match.family == OperatorFamily::kAnisoTheta30 ||
                match.family == OperatorFamily::kAnisoTheta45)
        << "theta=" << theta_deg << " routed to "
        << to_string(match.family);
  }
}

TEST(Fingerprint, RankIsDeterministicAndCoversEveryFamily) {
  const auto ranked =
      grid::rank_families(grid::fingerprint(grid::StencilOp::poisson(33)));
  ASSERT_EQ(ranked.size(), std::size(kAllOperatorFamilies));
  EXPECT_EQ(ranked.front().family, OperatorFamily::kPoisson);
  EXPECT_EQ(ranked.front().distance, 0.0);
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LE(ranked[i - 1].distance, ranked[i].distance);
  }
}

// ------------------------------------------------------ service routing --

Engine& engine() {
  static Engine instance([] {
    rt::MachineProfile p;
    p.name = "routing-test";
    p.threads = 4;
    p.grain_rows = 4;
    return p;
  }());
  return instance;
}

/// Deterministic hand-built tables (no training run): every non-base
/// cell recurses with 2·(i+1) iterations against the requested ladder.
tune::TunedConfig handmade(int max_level, const std::string& family,
                           grid::Coarsening mode) {
  tune::TunedConfig config(tune::paper_accuracies(), max_level);
  for (int level = 2; level <= max_level; ++level) {
    for (int i = 0; i < config.accuracy_count(); ++i) {
      tune::VEntry& cell = config.v_entry(level, i);
      cell.choice.kind = tune::VKind::kRecurse;
      cell.choice.sub_accuracy = tune::kClassicalCoarse;
      cell.choice.iterations = 2 * (i + 1);
      cell.choice.coarsening = mode;
      cell.trained = true;
    }
  }
  config.op_family = family;
  config.strategy = "hand-built";
  return config;
}

bool bitwise_equal(const Grid2D& a, const Grid2D& b) {
  return a.n() == b.n() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

TEST(OperatorRouting, NovelFamilyServesRetunesOnceAndReroutes) {
  const int level = 5;
  const int n = size_of_level(level);
  SolveService service(
      engine(), handmade(level, "poisson", grid::Coarsening::kAverage));
  std::atomic<int> retunes{0};
  std::atomic<bool> saw_jump_request{false};
  service.enable_operator_routing(
      RoutePolicy{}, [&](OperatorFamily family) {
        retunes.fetch_add(1, std::memory_order_relaxed);
        if (family == OperatorFamily::kJumpCoefficient) {
          saw_jump_request.store(true, std::memory_order_relaxed);
        }
        return handmade(level, to_string(family), grid::Coarsening::kRap);
      });
  Rng rng(7);
  auto problem = make_problem(n, InputDistribution::kUnbiased, rng);
  SolveRequest request;
  request.target_accuracy = 1e3;

  // Golden pre-install result on the matched route.
  const grid::StencilOp poisson = grid::StencilOp::poisson(n);
  Grid2D golden = problem.x0;
  tune::DynamicResult matched;
  const SolveStats first =
      service.solve_op(poisson, golden, problem.b, request, &matched);
  EXPECT_TRUE(first.converged);
  EXPECT_TRUE(first.residual_checked);
  EXPECT_EQ(matched.final_family, "poisson");
  EXPECT_EQ(first.generation, 1);

  // Hammer the never-trained jump family from several threads while the
  // background retune and its install_family race the binding cache
  // (this is the TSan-raced half of the acceptance criterion).  Every
  // request must complete and converge — served by the poisson stand-in
  // before the install, by the fresh jump tables after.
  const grid::StencilOp jump =
      make_operator(n, OperatorFamily::kJumpCoefficient);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 3;
  std::atomic<int> converged{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int k = 0; k < kPerThread; ++k) {
        Grid2D x = problem.x0;
        const SolveStats stats =
            service.solve_op(jump, x, problem.b, request);
        if (stats.converged) {
          converged.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(converged.load(), kThreads * kPerThread);

  // The retune fired exactly once despite the concurrent hammering, for
  // the right family, and installed as a generation EXTENSION — the id
  // did not move and in-flight sessions were untouched.
  for (int i = 0; i < 1000 && service.retune_in_progress(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_FALSE(service.retune_in_progress());
  EXPECT_EQ(retunes.load(), 1);
  EXPECT_TRUE(saw_jump_request.load());
  EXPECT_EQ(service.stats().family_retunes, 1);
  EXPECT_EQ(service.generation(), 1);

  // Post-install, the same fingerprint reroutes onto the fresh family:
  // the first tuned-variant invocation runs the jump tables.  (An easy
  // target keeps the whole solve on that rung — the hand-built tables
  // don't honour the deep accuracy classes' promises, and mid-solve
  // escalation behaviour is dynamic_test's subject, not routing's.)
  Grid2D x = problem.x0;
  tune::DynamicResult routed;
  SolveRequest easy = request;
  easy.target_accuracy = 10.0;
  const SolveStats post =
      service.solve_op(jump, x, problem.b, easy, &routed);
  EXPECT_TRUE(post.converged);
  ASSERT_FALSE(routed.variants.empty());
  EXPECT_EQ(routed.variants.front().family, "jump");
  EXPECT_EQ(routed.final_family, "jump");
  EXPECT_EQ(routed.family_switches, 0);
  EXPECT_GE(routed.residual_reduction, 10.0);

  // Zero bit-divergence across the install swap: the poisson route's
  // binding was never dropped, so the same input reproduces the golden
  // bits exactly.
  Grid2D again = problem.x0;
  tune::DynamicResult still_matched;
  const SolveStats replay =
      service.solve_op(poisson, again, problem.b, request, &still_matched);
  EXPECT_TRUE(replay.converged);
  EXPECT_EQ(still_matched.final_family, "poisson");
  EXPECT_TRUE(bitwise_equal(golden, again));

  // Routing telemetry: route outcomes and the fingerprint-distance
  // histogram are exported.
  const auto snapshot = service.metrics_snapshot();
  EXPECT_GE(snapshot.counters.at(
                "pbmg_route_total{family=\"poisson\",outcome=\"matched\"}"),
            2);
  EXPECT_GE(snapshot.counters.at(
                "pbmg_route_total{family=\"jump\",outcome=\"matched\"}"),
            1);
  EXPECT_GE(
      snapshot.histograms.at("pbmg_route_fingerprint_distance").count,
      2 + kThreads * kPerThread);
  const auto stats = service.stats();
  EXPECT_EQ(stats.routed_requests, 3 + kThreads * kPerThread);
}

TEST(OperatorRouting, RejectsFmgAndUnsetAccuracy) {
  const int level = 4;
  const int n = size_of_level(level);
  SolveService service(
      engine(), handmade(level, "poisson", grid::Coarsening::kAverage));
  Grid2D x(n, 0.0), b(n, 0.0);
  SolveRequest fmg;
  fmg.fmg = true;
  fmg.target_accuracy = 1e3;
  EXPECT_THROW(service.solve_op(grid::StencilOp::poisson(n), x, b, fmg),
               ConfigError);
  EXPECT_THROW(
      service.solve_op(grid::StencilOp::poisson(n), x, b, SolveRequest{}),
      ConfigError);
  SolveRequest deep;
  deep.accuracy_index = 99;
  EXPECT_THROW(service.solve_op(grid::StencilOp::poisson(n), x, b, deep),
               ConfigError);
  EXPECT_EQ(service.stats().failures, 3);
}

TEST(OperatorRouting, AccuracyIndexSelectsServedLadderTarget) {
  const int level = 4;
  const int n = size_of_level(level);
  SolveService service(
      engine(), handmade(level, "poisson", grid::Coarsening::kAverage));
  Rng rng(11);
  auto problem = make_problem(n, InputDistribution::kUnbiased, rng);
  SolveRequest request;
  request.accuracy_index = 2;  // paper ladder: 1e5
  Grid2D x = problem.x0;
  tune::DynamicResult detail;
  const SolveStats stats = service.solve_op(grid::StencilOp::poisson(n), x,
                                            problem.b, request, &detail);
  EXPECT_TRUE(stats.converged);
  EXPECT_GE(detail.residual_reduction, 1e5);
}

}  // namespace
}  // namespace pbmg
