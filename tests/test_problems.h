#pragma once

#include <cctype>
#include <cstdint>
#include <string>

#include "fft/fast_poisson.h"
#include "grid/grid2d.h"
#include "grid/grid_ops.h"
#include "grid/problem.h"
#include "grid/stencil_op.h"
#include "runtime/scheduler.h"
#include "support/rng.h"
#include "tune/accuracy.h"

/// \file test_problems.h
/// Shared manufactured-problem helpers for the test suites.
///
/// Several suites (stencil_test, property_solver_test, tune_test,
/// line_relax_test) need the same two fixtures: an operator-family
/// instance with a known exact discrete solution, and a Poisson instance
/// solved by the DST oracle.  These used to be copy-pasted per suite with
/// subtly divergent RHS scaling (one variant built b = A·exact from a
/// unit-magnitude exact solution, another drew ±2³²-scale data), which
/// made tolerances silently incomparable across suites.  One definition
/// here; every suite cites the same scaling.
///
/// All helpers are deterministic in (inputs, seed) and take the caller's
/// scheduler so each suite keeps its own engine/profile.

namespace pbmg::testing {

/// gtest parameterized-test names may only contain [A-Za-z0-9_]; family
/// tokens like "aniso-rot" (stable in cache keys, so not renamed there)
/// must be sanitized before use as a test-name suffix.
inline std::string gtest_name(std::string s) {
  for (char& c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (!(std::isalnum(u) != 0 || c == '_')) c = '_';
  }
  return s;
}

/// An instance of `family` at side n with its exact discrete solution:
/// tune::make_training_instance's manufactured construction (x_opt drawn
/// from the unbiased ±2³² distribution, b = A·x_opt with the *discrete*
/// operator, x0 = x_opt's Dirichlet ring + zero interior).  The Poisson
/// family routes through the DST oracle instead, bit-for-bit.
inline tune::TrainingInstance make_family_instance(OperatorFamily family,
                                                   int n, std::uint64_t seed,
                                                   rt::Scheduler& sched) {
  const grid::StencilOp op = make_operator(n, family);
  Rng rng(seed);
  return tune::make_training_instance(op, InputDistribution::kUnbiased, rng,
                                      sched);
}

/// Interior L2 error of an iterate against the instance's exact solution.
inline double error_against_exact(const tune::TrainingInstance& inst,
                                  const Grid2D& x, rt::Scheduler& sched) {
  return grid::norm2_diff_interior(x, inst.x_opt, sched);
}

/// A Poisson instance with the DST oracle's exact solution and the error
/// norm of the canonical zero-interior start (the shape the solver sweeps
/// historically used).
struct PoissonInstance {
  PoissonProblem problem;
  Grid2D exact;
  double e0 = 0.0;
};

inline PoissonInstance make_poisson_instance(int n, InputDistribution dist,
                                             std::uint64_t seed,
                                             rt::Scheduler& sched) {
  Rng rng(seed);
  PoissonInstance inst;
  inst.problem = make_problem(n, dist, rng);
  inst.exact = fft::exact_solution(inst.problem, sched);
  inst.e0 = grid::norm2_diff_interior(inst.problem.x0, inst.exact, sched);
  return inst;
}

}  // namespace pbmg::testing
