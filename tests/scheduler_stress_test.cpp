// Stress and failure-injection tests for the work-stealing runtime:
// randomised nested spawns, many concurrent groups, exception storms,
// oversubscription, and profile edge cases.

#include <atomic>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/scheduler.h"
#include "support/error.h"
#include "support/rng.h"

namespace pbmg::rt {
namespace {

MachineProfile stress_profile(int threads) {
  MachineProfile p;
  p.name = "stress";
  p.threads = threads;
  p.grain_rows = 1;
  p.sequential_cutoff_cells = 1;
  return p;
}

TEST(SchedulerStress, RandomNestedParallelForsSumCorrectly) {
  Scheduler sched(stress_profile(8));
  Rng rng(1);
  for (int round = 0; round < 20; ++round) {
    const std::int64_t outer = 1 + static_cast<std::int64_t>(rng.uniform_index(32));
    const std::int64_t inner = 1 + static_cast<std::int64_t>(rng.uniform_index(64));
    std::atomic<std::int64_t> total{0};
    sched.parallel_for(0, outer, 1, [&](std::int64_t ob, std::int64_t oe) {
      for (std::int64_t o = ob; o < oe; ++o) {
        sched.parallel_for(0, inner, 4, [&](std::int64_t b, std::int64_t e) {
          total.fetch_add(e - b, std::memory_order_relaxed);
        });
      }
    });
    ASSERT_EQ(total.load(), outer * inner) << "round " << round;
  }
}

TEST(SchedulerStress, ThreeLevelNestingDoesNotDeadlock) {
  Scheduler sched(stress_profile(4));
  std::atomic<std::int64_t> total{0};
  sched.parallel_for(0, 4, 1, [&](std::int64_t, std::int64_t) {
    sched.parallel_for(0, 4, 1, [&](std::int64_t, std::int64_t) {
      sched.parallel_for(0, 16, 2, [&](std::int64_t b, std::int64_t e) {
        total.fetch_add(e - b, std::memory_order_relaxed);
      });
    });
  });
  EXPECT_EQ(total.load(), 4 * 4 * 16);
}

TEST(SchedulerStress, ManyConcurrentGroupsFromExternalThread) {
  Scheduler sched(stress_profile(4));
  constexpr int kGroups = 16;
  constexpr int kTasksPerGroup = 64;
  std::vector<std::unique_ptr<TaskGroup>> groups;
  std::atomic<int> count{0};
  for (int g = 0; g < kGroups; ++g) {
    groups.push_back(std::make_unique<TaskGroup>());
    for (int t = 0; t < kTasksPerGroup; ++t) {
      sched.spawn(*groups.back(), [&count] { count.fetch_add(1); });
    }
  }
  for (auto& group : groups) sched.wait(*group);
  EXPECT_EQ(count.load(), kGroups * kTasksPerGroup);
}

TEST(SchedulerStress, ExceptionStormDeliversOnePerGroupAndSurvives) {
  Scheduler sched(stress_profile(4));
  for (int round = 0; round < 10; ++round) {
    TaskGroup group;
    for (int t = 0; t < 32; ++t) {
      sched.spawn(group, [t] {
        if (t % 2 == 0) throw NumericalError("boom " + std::to_string(t));
      });
    }
    EXPECT_THROW(sched.wait(group), NumericalError);
  }
  // Scheduler still healthy afterwards.
  std::atomic<int> ok{0};
  TaskGroup group;
  for (int t = 0; t < 100; ++t) sched.spawn(group, [&ok] { ok.fetch_add(1); });
  sched.wait(group);
  EXPECT_EQ(ok.load(), 100);
}

TEST(SchedulerStress, OversubscribedPoolStillCorrect) {
  // More workers than cores: correctness must not depend on the ratio.
  Scheduler sched(stress_profile(48));
  std::atomic<std::int64_t> total{0};
  sched.parallel_for(0, 10000, 8, [&](std::int64_t b, std::int64_t e) {
    total.fetch_add(e - b, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 10000);
}

TEST(SchedulerStress, RepeatedConstructionAndDestruction) {
  // Pools must come up and shut down cleanly even when work was pending
  // recently (worker threads parked or spinning).
  for (int round = 0; round < 12; ++round) {
    Scheduler sched(stress_profile(1 + round % 6));
    std::atomic<int> hits{0};
    TaskGroup group;
    for (int t = 0; t < 10; ++t) sched.spawn(group, [&hits] { hits++; });
    sched.wait(group);
    ASSERT_EQ(hits.load(), 10);
  }
}

TEST(SchedulerStress, ParallelReduceUnderContention) {
  Scheduler sched(stress_profile(8));
  // Sum of i^2 with tiny grain: maximum task churn.
  const std::int64_t n = 4096;
  const double result = sched.parallel_reduce_sum(
      0, n, 1, [](std::int64_t b, std::int64_t e) {
        double acc = 0.0;
        for (std::int64_t i = b; i < e; ++i) {
          acc += static_cast<double>(i) * static_cast<double>(i);
        }
        return acc;
      });
  const double expected =
      static_cast<double>(n - 1) * n * (2 * n - 1) / 6.0;
  EXPECT_DOUBLE_EQ(result, expected);
}

TEST(SchedulerStress, GrainForRespectsSequentialCutoff) {
  MachineProfile p = stress_profile(4);
  p.sequential_cutoff_cells = 1000;
  p.grain_rows = 8;
  Scheduler sched(p);
  // 10 rows x 50 cells = 500 <= cutoff: whole range as one grain.
  EXPECT_EQ(sched.grain_for(10, 50), 10);
  // 100 rows x 50 cells = 5000 > cutoff: profile grain.
  EXPECT_EQ(sched.grain_for(100, 50), 8);
  // Degenerate row counts stay positive.
  EXPECT_GE(sched.grain_for(0, 50), 1);
}

TEST(SchedulerStress, SpawnOverheadScalesWithProfileKnob) {
  MachineProfile slow = stress_profile(2);
  slow.spawn_overhead_ns = 100000;
  MachineProfile fast = stress_profile(2);
  fast.spawn_overhead_ns = 0;
  const auto time_spawns = [](Scheduler& sched) {
    TaskGroup group;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < 50; ++i) sched.spawn(group, [] {});
    const auto dt = std::chrono::steady_clock::now() - t0;
    sched.wait(group);
    return std::chrono::duration<double>(dt).count();
  };
  Scheduler sched_slow(slow);
  Scheduler sched_fast(fast);
  EXPECT_GT(time_spawns(sched_slow), time_spawns(sched_fast));
}

TEST(SchedulerStress, WorkDistributionReachesMultipleWorkers) {
  // With long-running leaf tasks, at least half the pool must participate
  // (validates that stealing spreads work, not just that results are
  // correct).
  Scheduler sched(stress_profile(8));
  std::atomic<std::uint64_t> worker_mask{0};
  std::atomic<int> counter{0};
  sched.parallel_for(0, 64, 1, [&](std::int64_t, std::int64_t) {
    // Identify the executing worker via a per-thread hash.
    const auto id = std::hash<std::thread::id>{}(std::this_thread::get_id());
    worker_mask.fetch_or(std::uint64_t{1} << (id % 61));
    // Busy work so the region lasts long enough for thieves to engage.
    volatile double sink = 0.0;
    for (int i = 0; i < 200000; ++i) sink = sink + i;
    counter.fetch_add(1);
  });
  EXPECT_EQ(counter.load(), 64);
  EXPECT_GE(__builtin_popcountll(worker_mask.load()), 3);
}

}  // namespace
}  // namespace pbmg::rt
