// Unit tests for the support module: JSON, RNG, stats, argparse, tables,
// timers, error checks.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "support/argparse.h"
#include "support/error.h"
#include "support/json.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"
#include "support/timer.h"

namespace pbmg {
namespace {

// ---------------------------------------------------------------- JSON --

TEST(Json, ParsesPrimitives) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_EQ(Json::parse("42").as_int(), 42);
  EXPECT_EQ(Json::parse("-17").as_int(), -17);
  EXPECT_DOUBLE_EQ(Json::parse("3.5").as_double(), 3.5);
  EXPECT_DOUBLE_EQ(Json::parse("1e9").as_double(), 1e9);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const Json doc = Json::parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  ASSERT_TRUE(doc.is_object());
  const auto& arr = doc.at("a").as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr[0].as_int(), 1);
  EXPECT_TRUE(arr[2].at("b").as_bool());
  EXPECT_EQ(doc.at("c").as_string(), "x");
}

TEST(Json, RoundTripsThroughDump) {
  Json obj = Json::object();
  obj.set("name", "pbmg");
  obj.set("level", 9);
  obj.set("ratio", 0.125);
  Json arr = Json::array();
  arr.push_back(1).push_back("two").push_back(Json());
  obj.set("items", std::move(arr));
  for (int indent : {0, 2}) {
    const Json parsed = Json::parse(obj.dump(indent));
    EXPECT_EQ(parsed, obj) << "indent=" << indent;
  }
}

TEST(Json, EscapesStrings) {
  Json s(std::string("a\"b\\c\nd\te"));
  const Json parsed = Json::parse(s.dump());
  EXPECT_EQ(parsed.as_string(), "a\"b\\c\nd\te");
}

TEST(Json, ParsesUnicodeEscapes) {
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");  // é
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), ConfigError);
  EXPECT_THROW(Json::parse("{"), ConfigError);
  EXPECT_THROW(Json::parse("[1,]"), ConfigError);
  EXPECT_THROW(Json::parse("{\"a\":}"), ConfigError);
  EXPECT_THROW(Json::parse("tru"), ConfigError);
  EXPECT_THROW(Json::parse("1 2"), ConfigError);
  EXPECT_THROW(Json::parse("{'a': 1}"), ConfigError);
}

TEST(Json, TypeMismatchesThrow) {
  const Json doc = Json::parse("{\"a\": 1}");
  EXPECT_THROW(doc.at("a").as_string(), ConfigError);
  EXPECT_THROW(doc.at("missing"), ConfigError);
  EXPECT_THROW(Json(1.5).as_int(), ConfigError);
  EXPECT_EQ(Json(2.0).as_int(), 2);  // integral double converts
}

TEST(Json, GetWithFallback) {
  const Json doc = Json::parse("{\"x\": 7}");
  EXPECT_EQ(doc.get("x", std::int64_t{0}), 7);
  EXPECT_EQ(doc.get("y", std::int64_t{5}), 5);
  EXPECT_EQ(doc.get("z", std::string("d")), "d");
  EXPECT_EQ(doc.get("w", true), true);
}

// ----------------------------------------------------------------- RNG --

TEST(Rng, IsDeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  bool all_equal = true;
  bool any_differs_from_c = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    const auto vb = b.next_u64();
    const auto vc = c.next_u64();
    all_equal = all_equal && (va == vb);
    any_differs_from_c = any_differs_from_c || (va != vc);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_differs_from_c);
}

TEST(Rng, Uniform01StaysInRangeAndLooksUniform) {
  Rng rng(7);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-4.0, 9.0);
    ASSERT_GE(v, -4.0);
    ASSERT_LT(v, 9.0);
  }
  EXPECT_THROW(rng.uniform(1.0, 0.0), InvalidArgument);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_THROW(rng.uniform_index(0), InvalidArgument);
}

TEST(Rng, SplitStreamsAreDecorrelatedAndStable) {
  const Rng base(42);
  Rng s1 = base.split(1);
  Rng s1_again = base.split(1);
  Rng s2 = base.split(2);
  EXPECT_EQ(s1.next_u64(), s1_again.next_u64());
  // Streams 1 and 2 should differ immediately with overwhelming probability.
  Rng t1 = base.split(1);
  EXPECT_NE(t1.next_u64(), s2.next_u64());
}

// --------------------------------------------------------------- stats --

TEST(SampleStats, BasicMoments) {
  SampleStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_NEAR(s.geomean(), std::pow(24.0, 0.25), 1e-12);
}

TEST(SampleStats, PercentileInterpolates) {
  SampleStats s;
  for (double x : {10.0, 20.0, 30.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 20.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 30.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 15.0);
}

TEST(SampleStats, EmptyAndInvalidInputsThrow) {
  SampleStats s;
  EXPECT_THROW(s.mean(), InvalidArgument);
  EXPECT_THROW(s.median(), InvalidArgument);
  s.add(-1.0);
  EXPECT_THROW(s.geomean(), InvalidArgument);
  EXPECT_THROW(s.percentile(101), InvalidArgument);
}

TEST(Stats, LogLogSlopeRecoversExponent) {
  std::vector<double> xs, ys;
  for (double x : {8.0, 16.0, 32.0, 64.0, 128.0}) {
    xs.push_back(x);
    ys.push_back(3.0 * std::pow(x, 2.5));
  }
  EXPECT_NEAR(log_log_slope(xs, ys), 2.5, 1e-9);
  EXPECT_THROW(log_log_slope({1.0}, {1.0}), InvalidArgument);
  EXPECT_THROW(log_log_slope({1.0, -2.0}, {1.0, 2.0}), InvalidArgument);
}

// ------------------------------------------------------------ argparse --

TEST(ArgParser, ParsesAllFlagKinds) {
  ArgParser parser("prog", "test");
  parser.add_string("name", "default", "a name");
  parser.add_int("count", 3, "a count");
  parser.add_double("ratio", 0.5, "a ratio");
  parser.add_flag("verbose", "chatty");
  const char* argv[] = {"prog",    "--name",    "abc",  "--count=7",
                        "--ratio", "2.25",      "--verbose", "pos1"};
  ASSERT_TRUE(parser.parse(8, argv));
  EXPECT_EQ(parser.get_string("name"), "abc");
  EXPECT_EQ(parser.get_int("count"), 7);
  EXPECT_DOUBLE_EQ(parser.get_double("ratio"), 2.25);
  EXPECT_TRUE(parser.get_flag("verbose"));
  ASSERT_EQ(parser.positional().size(), 1u);
  EXPECT_EQ(parser.positional()[0], "pos1");
}

TEST(ArgParser, DefaultsSurviveWhenUnset) {
  ArgParser parser("prog", "test");
  parser.add_int("n", 10, "n");
  parser.add_flag("quick", "q");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parser.parse(1, argv));
  EXPECT_EQ(parser.get_int("n"), 10);
  EXPECT_FALSE(parser.get_flag("quick"));
}

TEST(ArgParser, HelpRequestedReturnsFalse) {
  ArgParser parser("prog", "test");
  parser.add_int("n", 10, "the n flag");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(parser.parse(2, argv));
  EXPECT_NE(parser.help_text().find("--n"), std::string::npos);
}

TEST(ArgParser, RejectsUnknownAndMalformed) {
  ArgParser parser("prog", "test");
  parser.add_int("n", 1, "n");
  {
    const char* argv[] = {"prog", "--bogus", "1"};
    EXPECT_THROW(parser.parse(3, argv), InvalidArgument);
  }
  {
    const char* argv[] = {"prog", "--n", "xyz"};
    EXPECT_THROW(parser.parse(3, argv), InvalidArgument);
  }
  {
    const char* argv[] = {"prog", "--n"};
    EXPECT_THROW(parser.parse(2, argv), InvalidArgument);
  }
  EXPECT_THROW(parser.get_string("n"), InvalidArgument);  // wrong type
}

// --------------------------------------------------------------- table --

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"size", "time"});
  table.add_row({"64", "1.5"});
  table.add_row({"12800", "2.25"});
  const std::string text = table.render();
  EXPECT_NE(text.find("size"), std::string::npos);
  EXPECT_NE(text.find("12800"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTable, CsvQuotesSpecialCells) {
  TextTable table({"a", "b"});
  table.add_row({"x,y", "he said \"hi\""});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTable, ArityMismatchThrows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), InvalidArgument);
}

TEST(Format, Doubles) {
  EXPECT_EQ(format_double(std::nan("")), "n/a");
  EXPECT_EQ(format_double(INFINITY), "inf");
  EXPECT_EQ(format_double(1.5), "1.5");
}

TEST(Format, Seconds) {
  EXPECT_EQ(format_seconds(2.0), "2.000 s");
  EXPECT_EQ(format_seconds(0.002), "2.000 ms");
  EXPECT_EQ(format_seconds(5e-6), "5.0 us");
}

TEST(Format, Accuracy) {
  EXPECT_EQ(format_accuracy(1e9), "10^9");
  EXPECT_EQ(format_accuracy(10.0), "10^1");
}

// --------------------------------------------------------------- timer --

TEST(Timer, MeasuresElapsedTime) {
  WallTimer timer;
  const double t0 = timer.elapsed();
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  EXPECT_GE(timer.elapsed(), t0);
  timer.restart();
  EXPECT_LT(timer.elapsed(), 1.0);
}

TEST(Deadline, ExpiresAndUnlimitedNever) {
  Deadline past(-1.0);
  EXPECT_TRUE(past.expired());
  Deadline unlimited = Deadline::unlimited();
  EXPECT_FALSE(unlimited.expired());
  EXPECT_GT(unlimited.remaining(), 1e17);
}

// --------------------------------------------------------------- error --

TEST(Error, CheckMacroThrowsWithContext) {
  try {
    PBMG_CHECK(1 == 2, "custom message");
    FAIL() << "PBMG_CHECK did not throw";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom message"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(Error, HierarchyIsCatchable) {
  EXPECT_THROW(throw ConfigError("x"), Error);
  EXPECT_THROW(throw NumericalError("x"), Error);
  EXPECT_THROW(throw InvalidArgument("x"), Error);
}

}  // namespace
}  // namespace pbmg
