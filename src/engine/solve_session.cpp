#include "engine/solve_session.h"

#include <cmath>
#include <vector>

#include "grid/grid_ops.h"
#include "grid/level.h"
#include "solvers/relax.h"
#include "support/timer.h"

namespace pbmg {

SolveSession::SolveSession(Engine& engine, tune::TunedConfig config, int n)
    : SolveSession(engine, std::move(config), grid::StencilOp::poisson(n)) {}

SolveSession::SolveSession(Engine& engine, tune::TunedConfig config,
                           grid::StencilOp op)
    : engine_(engine),
      config_(std::move(config)),
      n_(op.n()),
      level_(level_of_size(op.n())),
      // Prewarm the coarse coefficient hierarchies: coarsening happens
      // here, once, so no solve ever re-coarsens coefficients (the Poisson
      // fast path stores no grids and costs nothing; the Galerkin RAP
      // ladder is materialized only when some tuned cell asks for it).
      ops_(std::move(op)),
      ops_rap_(tune::config_uses_rap(config_, level_)
                   ? grid::StencilHierarchy(ops_.at(level_),
                                            grid::Coarsening::kRap)
                   : grid::StencilHierarchy()),
      executor_(config_, engine.scheduler(), engine.direct(),
                engine.scratch(), nullptr, engine.relax(), &ops_,
                ops_rap_.top_level() >= 1 ? &ops_rap_ : nullptr) {
  PBMG_CHECK(config_.max_level() >= level_,
             "SolveSession: config trained up to level " +
                 std::to_string(config_.max_level()) +
                 " cannot solve level " + std::to_string(level_));
  // Preallocate the level hierarchy: a V/FMG recursion holds at most
  // three scratch grids per side length at once (residual at the fine
  // side plus restricted-residual and error at the coarse side of the
  // level above), so warming three per level means the first request —
  // and every concurrent request after it, once the pool refills —
  // allocates nothing on the solve path.  Configs that relax with line
  // smoothers additionally lease the two Thomas workspace grids per
  // sweep level; warm those too so a line-smoothed session is just as
  // allocation-free on its first request.
  const int per_level =
      tune::config_uses_line_smoothers(config_, level_) ? 5 : 3;
  std::size_t scratch_bytes = 0;
  for (int k = 1; k <= level_; ++k) {
    const int side = size_of_level(k);
    scratch_bytes += static_cast<std::size_t>(per_level) *
                     static_cast<std::size_t>(side) *
                     static_cast<std::size_t>(side) * sizeof(double);
    std::vector<grid::ScratchPool::Lease> warm;
    warm.reserve(static_cast<std::size_t>(per_level));
    for (int c = 0; c < per_level; ++c) {
      warm.push_back(engine_.scratch().acquire(side));
    }
  }  // leases release here, stocking the free-list
  // Sessions whose engine tuned the packed kernel layout pack every level
  // here, once, for the same reason the coefficient ladders coarsen here:
  // no solve ever pays the O(n²) pack on its timed path.
  if (engine_.relax().kernels.layout == grid::StencilLayout::kPacked) {
    ops_.prewarm_packed();
    if (ops_rap_.top_level() >= 1) ops_rap_.prewarm_packed();
  }
  // Footprint accounting happens last so the packed streams the prewarm
  // just materialized are counted.  The scratch term is what the prewarm
  // above stocked, an admission estimate (the pool shares grids across
  // this engine's sessions).
  footprint_bytes_ = ops_.bytes() + ops_rap_.bytes() + scratch_bytes;
}

SolveStats SolveSession::stats_for(double seconds, int accuracy_index,
                                   int iterations, bool converged) const {
  SolveStats stats;
  stats.seconds = seconds;
  stats.n = n_;
  stats.level = level_;
  stats.accuracy_index = accuracy_index;
  stats.iterations = iterations;
  stats.converged = converged;
  return stats;
}

void SolveSession::check_operands(const Grid2D& x, const Grid2D& b) const {
  PBMG_CHECK(x.n() == n_ && b.n() == n_,
             "SolveSession: operand size mismatch (session is bound to n=" +
                 std::to_string(n_) + ")");
}

double SolveSession::residual_norm(const Grid2D& x, const Grid2D& b) const {
  auto lease = engine_.scratch().acquire(n_);
  grid::residual_op(op(), x, b, lease.get(), engine_.scheduler(),
                    engine_.relax().kernels);
  return grid::norm2_interior(lease.get(), engine_.scheduler());
}

namespace {

// final ≤ limit·initial, with the r0 == 0 edge (already-exact guess, or an
// all-zero problem) demanding the solve kept it exact.
bool residual_converged(double r0, double r1, double ratio_limit) {
  if (!std::isfinite(r1)) return false;
  if (r0 == 0.0) return r1 == 0.0;
  return r1 <= ratio_limit * r0;
}

}  // namespace

SolveStats SolveSession::solve_v(Grid2D& x, const Grid2D& b,
                                 int accuracy_index,
                                 std::shared_ptr<obs::PhaseProfile> profile,
                                 const ResidualPolicy& check) const {
  check_operands(x, b);
  const double r0 = check.enabled ? residual_norm(x, b) : 0.0;
  const double t0 = now_seconds();
  const int iterations = executor_.run_v(x, b, accuracy_index, profile.get());
  const double seconds = now_seconds() - t0;
  SolveStats stats = stats_for(seconds, accuracy_index, iterations, true);
  if (check.enabled) {
    stats.initial_residual = r0;
    stats.final_residual = residual_norm(x, b);
    stats.residual_checked = true;
    stats.converged =
        residual_converged(r0, stats.final_residual, check.ratio_limit);
  }
  stats.phases = std::move(profile);
  return stats;
}

std::vector<SolveStats> SolveSession::solve_batch_v(
    std::span<Grid2D* const> xs, const Grid2D& b, int accuracy_index,
    std::shared_ptr<obs::PhaseProfile> profile,
    const ResidualPolicy& check) const {
  std::vector<SolveStats> all;
  if (xs.empty()) return all;
  for (const Grid2D* x : xs) {
    PBMG_CHECK(x != nullptr, "solve_batch_v: null iterate");
    check_operands(*x, b);
  }
  std::vector<double> r0(xs.size(), 0.0);
  if (check.enabled) {
    for (std::size_t k = 0; k < xs.size(); ++k) {
      r0[k] = residual_norm(*xs[k], b);
    }
  }
  const std::vector<const Grid2D*> bs(xs.size(), &b);
  const double t0 = now_seconds();
  const int iterations =
      executor_.run_v_multi(xs, bs, accuracy_index, profile.get());
  const double seconds = now_seconds() - t0;
  all.reserve(xs.size());
  for (std::size_t k = 0; k < xs.size(); ++k) {
    // Every entry carries the batch wall-clock (see the header: the K
    // solves are one fused walk, there is no honest per-request share).
    SolveStats stats = stats_for(seconds, accuracy_index, iterations, true);
    if (check.enabled) {
      stats.initial_residual = r0[k];
      stats.final_residual = residual_norm(*xs[k], b);
      stats.residual_checked = true;
      stats.converged =
          residual_converged(r0[k], stats.final_residual, check.ratio_limit);
    }
    stats.phases = profile;
    all.push_back(std::move(stats));
  }
  return all;
}

SolveStats SolveSession::solve_fmg(Grid2D& x, const Grid2D& b,
                                   int accuracy_index,
                                   std::shared_ptr<obs::PhaseProfile> profile,
                                   const ResidualPolicy& check) const {
  check_operands(x, b);
  const double r0 = check.enabled ? residual_norm(x, b) : 0.0;
  const double t0 = now_seconds();
  const int iterations =
      executor_.run_fmg(x, b, accuracy_index, profile.get());
  const double seconds = now_seconds() - t0;
  SolveStats stats = stats_for(seconds, accuracy_index, iterations, true);
  if (check.enabled) {
    stats.initial_residual = r0;
    stats.final_residual = residual_norm(x, b);
    stats.residual_checked = true;
    stats.converged =
        residual_converged(r0, stats.final_residual, check.ratio_limit);
  }
  stats.phases = std::move(profile);
  return stats;
}

SolveStats SolveSession::solve_reference_v(
    Grid2D& x, const Grid2D& b, int max_cycles, const solvers::StopFn& stop,
    std::shared_ptr<obs::PhaseProfile> profile) const {
  check_operands(x, b);
  solvers::VCycleOptions options;
  options.profile = profile.get();
  const double t0 = now_seconds();
  const auto outcome = solvers::solve_reference_v(
      ops_, x, b, options, max_cycles, stop, engine_.scheduler(),
      engine_.direct(), engine_.scratch());
  SolveStats stats = stats_for(now_seconds() - t0, -1, outcome.iterations,
                               outcome.converged);
  stats.phases = std::move(profile);
  return stats;
}

SolveStats SolveSession::solve_reference_fmg(
    Grid2D& x, const Grid2D& b, int max_cycles, const solvers::StopFn& stop,
    std::shared_ptr<obs::PhaseProfile> profile) const {
  check_operands(x, b);
  solvers::VCycleOptions options;
  options.profile = profile.get();
  const double t0 = now_seconds();
  const auto outcome = solvers::solve_reference_fmg(
      ops_, x, b, options, max_cycles, stop, engine_.scheduler(),
      engine_.direct(), engine_.scratch());
  SolveStats stats = stats_for(now_seconds() - t0, -1, outcome.iterations,
                               outcome.converged);
  stats.phases = std::move(profile);
  return stats;
}

SolveStats SolveSession::solve_iterated_sor(Grid2D& x, const Grid2D& b,
                                            int max_sweeps,
                                            const solvers::StopFn& stop) const {
  check_operands(x, b);
  const double omega =
      solvers::scaled_omega_opt(n_, engine_.relax().omega_scale);
  const double t0 = now_seconds();
  const auto outcome = solvers::solve_iterated_sor(
      op(), x, b, omega, max_sweeps, stop, engine_.scheduler());
  return stats_for(now_seconds() - t0, -1, outcome.iterations,
                   outcome.converged);
}

}  // namespace pbmg
