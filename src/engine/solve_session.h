#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "engine/engine.h"
#include "grid/grid2d.h"
#include "grid/stencil_op.h"
#include "obs/phase_profile.h"
#include "solvers/multigrid.h"
#include "tune/executor.h"
#include "tune/table.h"

/// \file solve_session.h
/// A prepared solve context: Engine + TunedConfig + operator + grid size.
///
/// Sessions amortize per-request setup for a service that answers many
/// solves of one size: the tuned executor is bound once, the bound
/// operator's coarse coefficient hierarchy is restricted once (stencil
/// coefficients never re-coarsen on the solve path), and the level
/// hierarchy's scratch grids are preallocated into the engine's pool so
/// the first request pays no allocation bursts.  All solve entry points
/// are const and thread-safe (the underlying scheduler and scratch pool
/// are concurrent); many client threads may solve through one session as
/// long as each brings its own x/b grids.
///
/// Sessions constructed without an operator bind the constant-coefficient
/// Poisson operator — StencilOp's fast path — and execute bit-for-bit the
/// same arithmetic as before operators existed.

namespace pbmg {

/// Per-request outcome of a session solve.
struct SolveStats {
  double seconds = 0.0;     ///< wall-clock time of the solve
  int n = 0;                ///< grid side solved
  int level = 0;            ///< recursion level (n = 2^level + 1)
  int accuracy_index = -1;  ///< tuned-ladder index (tuned solves; else -1)
  /// Iterations actually executed: the stop-predicate count for reference
  /// drivers, the tuned plan's top-level iteration count (RECURSE bodies
  /// or SOR sweeps; 1 for a direct solve) for solve_v/solve_fmg.
  int iterations = 0;
  /// Reference drivers: stop predicate fired.  Tuned solves: true unless
  /// a requested residual check failed — a tuned plan runs a fixed
  /// iteration budget, so without the check this only asserts the plan
  /// completed, not that it met its trained accuracy.
  bool converged = true;
  double initial_residual = 0.0;  ///< ||b − A·x₀|| (residual_checked only)
  double final_residual = 0.0;    ///< ||b − A·x₁|| (residual_checked only)
  bool residual_checked = false;  ///< a ResidualPolicy check actually ran
  /// Config generation that served the solve (SolveService fills this;
  /// bare sessions leave 0).  Lets clients attribute samples across a
  /// background-retune swap.
  std::int64_t generation = 0;
  /// The per-(level, phase) breakdown the caller requested, or null when
  /// the solve ran unprofiled (the default).  Shared so callers can keep
  /// aggregating into the same profile across many solves.
  std::shared_ptr<const obs::PhaseProfile> phases;
};

/// Optional convergence audit for tuned solves.  When enabled, the session
/// measures ||b − A·x|| before and after the solve (outside the timed
/// window — SolveStats::seconds stays comparable with unchecked solves)
/// and reports converged = final ≤ ratio_limit · initial.  The default
/// ratio_limit of 1.0 only demands the solve did not diverge, which is
/// the cheap honesty the drift watcher needs: latency samples from solves
/// that blew up must not be mistaken for healthy load.
struct ResidualPolicy {
  bool enabled = false;
  double ratio_limit = 1.0;
};

/// Binds an Engine and a tuned configuration to one grid size.
class SolveSession {
 public:
  /// Binds `engine` + a copy of `config` to side-n Poisson solves.  Throws
  /// InvalidArgument when n is not 2^k+1 or exceeds the config's trained
  /// levels.  Preallocates the level hierarchy's scratch grids.
  SolveSession(Engine& engine, tune::TunedConfig config, int n);

  /// Binds a variable-coefficient operator (grid size comes from the
  /// operator).  Prewarms the operator's coarse coefficient hierarchy in
  /// addition to the scratch grids.  The config should have been trained
  /// for the operator's family (tune::TrainerOptions::op_family) — a
  /// mismatched config still converges, just with mistuned iteration
  /// counts (that delta is what bench/fig18_operator_families measures).
  SolveSession(Engine& engine, tune::TunedConfig config, grid::StencilOp op);

  SolveSession(const SolveSession&) = delete;
  SolveSession& operator=(const SolveSession&) = delete;

  int n() const { return n_; }
  int level() const { return level_; }
  Engine& engine() const { return engine_; }
  const tune::TunedConfig& config() const { return config_; }

  /// The bound fine-grid operator (Poisson fast path for the int ctor).
  const grid::StencilOp& op() const { return ops_.at(level_); }

  /// The prewarmed per-level operator ladder.
  const grid::StencilHierarchy& operators() const { return ops_; }

  /// Ladder index of the cheapest tuned accuracy >= target.
  int accuracy_index(double target_accuracy) const {
    return config_.accuracy_index(target_accuracy);
  }

  /// Resident bytes this session pins for its lifetime: the coefficient
  /// ladders (averaged + RAP, packed streams included) plus the scratch
  /// grids its solves cycle through.  The scratch term is the prewarm
  /// estimate — pool grids are shared across sessions on one engine, so
  /// this is an admission/eviction accounting figure (what binding the
  /// session added to the fleet's footprint), not an exclusive-ownership
  /// measurement.  Computed once at construction, after prewarming.
  std::size_t footprint_bytes() const { return footprint_bytes_; }

  /// Tuned MULTIGRID-V_i at `accuracy_index` (x: Dirichlet ring + guess).
  /// `profile`, when non-null, receives the solve's per-(level, phase)
  /// wall-time breakdown and is returned in SolveStats::phases; a shared
  /// profile may aggregate across many solves (and threads).  `check`
  /// optionally audits convergence via pre/post residual norms (see
  /// ResidualPolicy); both norms run outside the timed window.
  SolveStats solve_v(Grid2D& x, const Grid2D& b, int accuracy_index,
                     std::shared_ptr<obs::PhaseProfile> profile = nullptr,
                     const ResidualPolicy& check = {}) const;

  /// Tuned FULL-MULTIGRID_i at `accuracy_index`; same contract as solve_v.
  SolveStats solve_fmg(Grid2D& x, const Grid2D& b, int accuracy_index,
                       std::shared_ptr<obs::PhaseProfile> profile = nullptr,
                       const ResidualPolicy& check = {}) const;

  /// Batched MULTIGRID-V: solves all K iterates xs[k] against the shared
  /// right-hand side `b` in ONE fused plan walk (TunedExecutor::
  /// run_v_multi), so per-sweep setup and every coefficient-stream load
  /// are paid once for the whole batch instead of once per request.  Each
  /// xs[k] finishes bitwise identical to solve_v(xs[k], b, ...) solo.
  /// Returns one SolveStats per iterate; `seconds` on every entry is the
  /// batch wall-clock (the K solves are inseparable by construction — a
  /// per-request share would be fiction), which is why SolveService
  /// records batch latency once per batch, not per RHS.  Residual audits,
  /// when enabled, run per iterate outside the timed window as in solve_v.
  std::vector<SolveStats> solve_batch_v(
      std::span<Grid2D* const> xs, const Grid2D& b, int accuracy_index,
      std::shared_ptr<obs::PhaseProfile> profile = nullptr,
      const ResidualPolicy& check = {}) const;

  /// Reference V-cycles until `stop` or `max_cycles` (paper §4.2.2).
  SolveStats solve_reference_v(Grid2D& x, const Grid2D& b, int max_cycles,
                               const solvers::StopFn& stop,
                               std::shared_ptr<obs::PhaseProfile> profile =
                                   nullptr) const;

  /// Reference full multigrid: one FMG ramp, then V-cycles until `stop`.
  SolveStats solve_reference_fmg(Grid2D& x, const Grid2D& b, int max_cycles,
                                 const solvers::StopFn& stop,
                                 std::shared_ptr<obs::PhaseProfile> profile =
                                     nullptr) const;

  /// Iterated Red-Black SOR at ω_opt(n) scaled by the engine's tunables.
  SolveStats solve_iterated_sor(Grid2D& x, const Grid2D& b, int max_sweeps,
                                const solvers::StopFn& stop) const;

 private:
  SolveStats stats_for(double seconds, int accuracy_index, int iterations,
                       bool converged) const;
  void check_operands(const Grid2D& x, const Grid2D& b) const;
  /// ||b − A·x|| over the interior, on a pool-leased scratch grid.
  double residual_norm(const Grid2D& x, const Grid2D& b) const;

  Engine& engine_;
  tune::TunedConfig config_;
  int n_;
  int level_;
  grid::StencilHierarchy ops_;      // built before executor_, which binds it
  grid::StencilHierarchy ops_rap_;  // Galerkin ladder; empty unless a tuned
                                    // cell asks for rap coarsening
  tune::TunedExecutor executor_;    // bound to config_ (stable: non-movable)
  std::size_t footprint_bytes_ = 0;  // see footprint_bytes()
};

}  // namespace pbmg
