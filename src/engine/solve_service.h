#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "engine/solve_session.h"
#include "obs/metrics.h"

/// \file solve_service.h
/// Multi-tenant front-end: concurrent solve requests onto one Engine.
///
/// Many client threads call solve() concurrently; the service binds each
/// grid size to a cached SolveSession (created once, reused by every
/// later request of that size) and runs the solve on the caller's thread.
/// The work-stealing scheduler composes nested parallelism, so requests
/// submitted from different client threads interleave on one worker pool
/// instead of fighting over oversubscribed thread pools — this is what
/// makes aggregate throughput scale with client count
/// (bench/fig17_concurrent_service).
///
/// The service also owns an obs::MetricsRegistry: every completed solve
/// lands in a per-(grid size × accuracy) latency histogram
/// (`pbmg_solve_latency_seconds{n="...",acc="..."}`), failures and trims
/// feed counters, and metrics_snapshot() samples engine health (scheduler
/// steals, scratch-pool hit rate) into gauges on the way out.

namespace pbmg {

/// One solve request.  The operand grids stay caller-owned: `x` enters
/// with the Dirichlet ring + initial guess and leaves with the solution.
struct SolveRequest {
  int accuracy_index = -1;        ///< tuned-ladder index; < 0 uses target
  double target_accuracy = 0.0;   ///< used when accuracy_index < 0
  bool fmg = false;               ///< FULL-MULTIGRID instead of MULTIGRID-V
  /// Optional per-(level, phase) time attribution: when set, the solve
  /// records into it and SolveStats::phases returns it.  Requests may
  /// share one profile to aggregate a workload-wide breakdown.
  std::shared_ptr<obs::PhaseProfile> profile;
};

/// Service-level counters (monotonic since construction).
struct ServiceStats {
  std::int64_t requests = 0;     ///< solves completed
  std::int64_t failures = 0;     ///< solves that threw
  double busy_seconds = 0.0;     ///< sum of per-request solve seconds
  std::size_t sessions = 0;      ///< distinct grid sizes bound so far
  std::int64_t trims = 0;        ///< trim() calls since construction
  std::int64_t trim_bytes = 0;   ///< total bytes freed by those trims
  double scratch_hit_rate = 0.0;    ///< pool hit rate, sampled at stats()
  std::int64_t scheduler_steals = 0;  ///< work steals, sampled at stats()
};

/// Thread-safe solve front-end over one Engine + one tuned config.
class SolveService {
 public:
  /// The service keeps its own copy of `config`; `engine` must outlive it.
  SolveService(Engine& engine, tune::TunedConfig config);

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Solves one request on the calling thread.  Thread-safe; throws what
  /// the underlying solve throws (after counting the failure).
  SolveStats solve(Grid2D& x, const Grid2D& b, const SolveRequest& request);

  /// The session bound to side `n`, created on first use.  Thread-safe.
  SolveSession& session(int n);

  /// Counter snapshot.  scratch_hit_rate and scheduler_steals are sampled
  /// from the engine at call time; the rest are service counters.
  ServiceStats stats() const;

  /// Releases pooled scratch memory (idle shrink); sessions stay bound.
  /// Returns bytes freed (also accumulated into ServiceStats::trim_bytes).
  std::size_t trim();

  /// The service's metrics registry (live handles; see obs/metrics.h).
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// Registry snapshot with engine health gauges refreshed first
  /// (Engine::publish_metrics) — the one-call exposition entry point.
  obs::RegistrySnapshot metrics_snapshot();

  Engine& engine() const { return engine_; }
  const tune::TunedConfig& config() const { return config_; }

 private:
  /// Latency histogram for (n, accuracy index), resolved once per pair
  /// and cached so the solve path never re-walks the registry map.
  obs::Histogram& latency_histogram(int n, int accuracy_index);

  Engine& engine_;
  tune::TunedConfig config_;

  obs::MetricsRegistry metrics_;
  obs::Counter& requests_total_;  // resolved once; stable addresses
  obs::Counter& failures_total_;
  obs::Counter& trims_total_;
  obs::Counter& trim_bytes_total_;

  mutable std::mutex mutex_;  // guards sessions_, stats_ and latency_
  std::map<int, std::unique_ptr<SolveSession>> sessions_;
  ServiceStats stats_;
  std::map<std::pair<int, int>, obs::Histogram*> latency_;
};

}  // namespace pbmg
