#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/solve_session.h"
#include "grid/fingerprint.h"
#include "obs/drift.h"
#include "obs/metrics.h"
#include "tune/dynamic.h"

/// \file solve_service.h
/// Multi-tenant front-end: concurrent solve requests onto one Engine.
///
/// Many client threads call solve() concurrently; the service binds each
/// grid size to a cached SolveSession (created once, reused by every
/// later request of that size) and runs the solve on the caller's thread.
/// The work-stealing scheduler composes nested parallelism, so requests
/// submitted from different client threads interleave on one worker pool
/// instead of fighting over oversubscribed thread pools — this is what
/// makes aggregate throughput scale with client count
/// (bench/fig17_concurrent_service).
///
/// The service also owns an obs::MetricsRegistry: every *converged*
/// solve lands in a per-(grid size × accuracy) latency histogram
/// (`pbmg_solve_latency_seconds{n="...",acc="..."}`); solves that threw
/// OR failed their residual audit land in `pbmg_solve_failure_seconds`
/// instead — the healthy histograms feed the drift watcher, and a
/// latency sample from a solve that did not do its job is not healthy
/// load.  Every request increments
/// `pbmg_solve_requests_total{outcome=...}` (ok / unconverged / error —
/// the label sums to *all* requests, per the Prometheus `_total`
/// convention), and metrics_snapshot() samples engine health (scheduler
/// steals, scratch-pool hit rate) into gauges on the way out.
///
/// Config generations & drift-triggered retunes: the tuned config, its
/// engine, and its sessions form one immutable *generation*.  When
/// enable_drift_watch is armed, live latencies feed an obs::DriftWatcher
/// against the tune-time baseline; sustained drift launches the retune
/// callback on a background thread, and its result is installed as a new
/// generation with one pointer swap — in-flight solves finish on the
/// generation they bound (snapshotted at entry), new requests bind the
/// fresh one.
///
/// Operator routing (solve_op): arbitrary-coefficient requests are
/// fingerprinted (grid/fingerprint.h), routed to the nearest tuned
/// family, and served by a cached per-operator DynamicSolver with
/// cross-family escalation (tune/dynamic.h).  Fingerprints outside every
/// tuned family's match threshold fire a once-per-family background
/// retune whose tables install as a generation *extension*
/// (install_family) — the generation id and in-flight solves are
/// untouched.  Route outcomes export as
/// `pbmg_route_total{family,outcome=matched|escalated|retune}` plus a
/// fingerprint-distance histogram.
///
/// Fleet-scale memory: sessions are the expensive resident state (packed
/// coefficient streams, RAP ladders, prewarmed scratch), so the session
/// cache is byte-budgeted.  ServicePolicy caps resident session bytes
/// and/or session count; binding a size past the budget evicts the
/// least-recently-used *unpinned* sessions
/// (`pbmg_session_evictions_total`), and session() hands out a pinning
/// SessionRef so a session in use is never destroyed under its caller.
/// The same pin keeps the whole generation alive: a retired generation is
/// reclaimed — sessions, and its engine when generation-owned — as soon
/// as its last SessionRef drops and no solve is in flight on it, instead
/// of being retained for the service's lifetime.  Resident bytes across
/// all generations are exported as `pbmg_session_bytes`.

namespace pbmg {

/// One solve request.  The operand grids stay caller-owned: `x` enters
/// with the Dirichlet ring + initial guess and leaves with the solution.
struct SolveRequest {
  int accuracy_index = -1;        ///< tuned-ladder index; < 0 uses target
  double target_accuracy = 0.0;   ///< used when accuracy_index < 0
  bool fmg = false;               ///< FULL-MULTIGRID instead of MULTIGRID-V
  /// Optional per-(level, phase) time attribution: when set, the solve
  /// records into it and SolveStats::phases returns it.  Requests may
  /// share one profile to aggregate a workload-wide breakdown.
  std::shared_ptr<obs::PhaseProfile> profile;
  /// Optional convergence audit (solve_session.h).  Off by default; the
  /// drift bench/tests enable it so latency samples provably come from
  /// solves that did their job, not from ones that diverged quickly.
  ResidualPolicy residual;
};

/// Operator-routing knobs (SolveService::solve_op).
struct RoutePolicy {
  /// A request whose fingerprint sits within this distance of the served
  /// family's reference fingerprint counts as matched; beyond it the
  /// request is served anyway (nearest family) but flagged escalated,
  /// and — when the overall-nearest family has no tuned tables — a
  /// background family retune fires.  0.75 sits under the smallest
  /// inter-family reference gap that matters for routing (≈ 1.0 between
  /// the rotated-tensor families) while absorbing discretization drift
  /// of one family across grid sizes (≪ 0.1).
  double match_threshold = 0.75;
  /// Tuned-variant invocation budget per routed solve.
  int max_iterations = 64;
};

/// Admission/eviction budget for the session cache.  Zero means
/// unlimited (the historical behaviour).  The byte budget counts
/// SolveSession::footprint_bytes across every retained generation; a bind
/// that would exceed it evicts LRU-first among the live generation's
/// unpinned sessions.  A single session larger than the budget is still
/// admitted (the service must be able to serve it) — the budget then
/// empties everything else.
struct ServicePolicy {
  std::size_t max_session_bytes = 0;  ///< resident footprint cap (0 = off)
  std::size_t max_sessions = 0;       ///< live-generation count cap (0 = off)
};

/// Service-level counters (monotonic since construction, except the
/// gauges noted).
struct ServiceStats {
  std::int64_t requests = 0;     ///< solves completed (batch counts each RHS)
  std::int64_t failures = 0;     ///< solves that threw
  double busy_seconds = 0.0;     ///< sum of per-request solve seconds
  std::size_t sessions = 0;      ///< grid sizes bound in the live generation
  std::int64_t evictions = 0;    ///< sessions evicted by the cache budget
  std::size_t session_bytes = 0;  ///< resident session bytes, all generations
  std::size_t retired_generations = 0;  ///< retired gens still pinned alive
  std::int64_t trims = 0;        ///< trim() calls since construction
  std::int64_t trim_bytes = 0;   ///< total bytes freed by those trims
  double scratch_hit_rate = 0.0;    ///< pool hit rate, sampled at stats()
  std::int64_t scheduler_steals = 0;  ///< work steals, sampled at stats()
  std::int64_t drift_windows = 0;   ///< comparison windows closed
  std::int64_t drifted_windows = 0;  ///< windows that failed both tests
  std::int64_t retunes = 0;      ///< background retunes launched
  std::int64_t generation = 1;   ///< live config generation (starts at 1)
  std::int64_t routed_requests = 0;  ///< solve_op requests completed
  std::int64_t family_retunes = 0;   ///< background family retunes launched
};

/// Pinning handle to a cached SolveSession.  While any SessionRef to a
/// session exists, the eviction sweep will not destroy it, and the
/// generation that owns it (config + engine + sibling sessions) stays
/// alive even after being retired by an install().  Dropping the last
/// ref makes the session evictable again and lets a retired generation's
/// memory be reclaimed.  Copyable and cheap (two shared_ptrs); the
/// session API behind it is const-thread-safe, so refs may be shared
/// across threads.
class SessionRef {
 public:
  SessionRef() = default;
  SolveSession& operator*() const { return *session_; }
  SolveSession* operator->() const { return session_.get(); }
  SolveSession* get() const { return session_.get(); }
  explicit operator bool() const { return session_ != nullptr; }

 private:
  friend class SolveService;
  SessionRef(std::shared_ptr<SolveSession> session,
             std::shared_ptr<void> generation)
      : session_(std::move(session)), generation_(std::move(generation)) {}

  std::shared_ptr<SolveSession> session_;
  std::shared_ptr<void> generation_;  ///< keeps the owning generation alive
};

/// Thread-safe solve front-end over one Engine + one tuned config.
class SolveService {
 public:
  /// What a retune produces: fresh tables, their healthy-latency
  /// baseline, and optionally a fresh Engine (a re-search usually finds
  /// new runtime parameters; null keeps the current generation's engine).
  struct RetuneResult {
    tune::TunedConfig config;
    obs::LatencyBaseline baseline;
    std::shared_ptr<Engine> engine;
  };
  using RetuneFn = std::function<RetuneResult()>;

  /// The service keeps its own copy of `config`; `engine` must outlive it.
  /// `policy` bounds the session cache (default: unlimited, the
  /// historical behaviour).
  SolveService(Engine& engine, tune::TunedConfig config,
               ServicePolicy policy = {});

  /// Joins any in-flight background retune.
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Arms drift detection: live solve latencies are compared against
  /// `baseline` under `policy`, and sustained drift runs `retune` on a
  /// background thread followed by an atomic install() of its result.
  /// Call once, before serving traffic (the watcher pointer itself is
  /// unsynchronized; everything behind it is thread-safe).  A null
  /// `retune` detects and counts drift without ever swapping.
  void enable_drift_watch(obs::LatencyBaseline baseline,
                          obs::DriftPolicy policy, RetuneFn retune);

  /// Atomically installs a new generation: new requests bind the fresh
  /// config (and engine, when non-null — otherwise the live generation's
  /// engine is inherited), in-flight solves finish where they started,
  /// and the drift watcher — if armed — is rebased onto `baseline`.
  /// Thread-safe; called by the background retune and usable directly.
  void install(tune::TunedConfig config, obs::LatencyBaseline baseline = {},
               std::shared_ptr<Engine> engine = nullptr);

  /// Solves one request on the calling thread.  Thread-safe; throws what
  /// the underlying solve throws (after counting the failure), and
  /// ConfigError for an accuracy_index outside the tuned ladder or the
  /// unset default (accuracy_index < 0 with target_accuracy <= 0).
  SolveStats solve(Grid2D& x, const Grid2D& b, const SolveRequest& request);

  /// What a family retune produces: tuned tables for the requested
  /// family (TunedConfig::op_family must name it).  Runs on a background
  /// thread; throwing keeps serving the stand-in family and re-arms the
  /// retune for later requests.
  using FamilyRetuneFn = std::function<tune::TunedConfig(OperatorFamily)>;

  /// Arms operator routing (solve_op): sets the match threshold /
  /// iteration budget and the background retune callback invoked the
  /// first time a request's fingerprint lands outside every tuned
  /// family's threshold.  Call once, before serving routed traffic (the
  /// policy fields themselves are unsynchronized).  A null `retune`
  /// routes and escalates without ever training new families; solve_op
  /// works without this call under the default policy, retune-less.
  void enable_operator_routing(RoutePolicy policy, FamilyRetuneFn retune);

  /// Extends the LIVE generation with tuned tables for one operator
  /// family (keyed by config.op_family): future solve_op requests whose
  /// fingerprint routes to that family serve from these tables.  Unlike
  /// install(), this is a generation *extension* — the generation id,
  /// its engine, its sessions, and every in-flight solve are untouched;
  /// only routed bindings that were standing in for this family are
  /// dropped so their next request re-routes.  Thread-safe; called by
  /// the background family retune and usable directly.
  void install_family(tune::TunedConfig config);

  /// Serves one arbitrary-operator request: fingerprints `op` (cached
  /// per operator identity × size), routes to the nearest tuned family
  /// within the match threshold (escalating across families when the
  /// input underperforms, tune/dynamic.h), and solves on the calling
  /// thread.  A fingerprint outside every tuned family's threshold is
  /// still served (nearest family) and — once per family — fires the
  /// background retune armed by enable_operator_routing, whose result
  /// installs via install_family.  `request.accuracy_index` selects the
  /// target reduction from the served family's ladder (target_accuracy
  /// is used directly when the index is unset); `request.fmg` is
  /// rejected — routed solves drive tuned V variants.  The returned
  /// stats carry the honest dynamic outcome (real variant invocations,
  /// out-of-window residual audit); `detail`, when non-null, receives
  /// the full per-variant breakdown.  Routed solves never feed the
  /// latency histograms or the drift watcher (their adaptive iteration
  /// count is not comparable to the fixed-shape baseline); they land in
  /// pbmg_route_total{family,outcome} and the fingerprint-distance
  /// histogram instead.  Thread-safe; throws like solve().
  SolveStats solve_op(const grid::StencilOp& op, Grid2D& x, const Grid2D& b,
                      const SolveRequest& request,
                      tune::DynamicResult* detail = nullptr);

  /// Solves K iterates against one shared right-hand side `b_template`
  /// in a single fused multi-RHS plan walk (SolveSession::solve_batch_v):
  /// every relax/residual sweep loads each coefficient row once and
  /// applies it to all K iterates, so throughput grows with K while each
  /// xs[k] finishes bitwise identical to a solo solve(xs[k], b, request).
  /// `request.fmg` batches degrade gracefully to a loop of solo FMG
  /// solves (the ramp has no fused walk).  Returns one SolveStats per
  /// iterate; for the fused V path their `seconds` all carry the batch
  /// wall-clock, and the service records ONE latency sample per batch —
  /// into the healthy histogram only when every RHS converged — plus a
  /// `pbmg_batch_size` histogram sample.  Batched samples do not feed
  /// the drift watcher: batch wall-clock is not comparable to the solo
  /// per-solve baseline.  Thread-safe; throws like solve() (a throw
  /// fails all K requests).
  std::vector<SolveStats> solve_batch(std::span<Grid2D* const> xs,
                                      const Grid2D& b_template,
                                      const SolveRequest& request);

  /// The live generation's session bound to side `n`, created on first
  /// use (evicting LRU unpinned sessions if the bind exceeds the
  /// policy budget).  Thread-safe.  The returned SessionRef pins the
  /// session — and its whole generation — against eviction and
  /// retired-generation reclaim; hold it only as long as needed.  After
  /// an install() the ref stays valid but no longer receives new solve()
  /// traffic.
  SessionRef session(int n);

  /// Counter snapshot.  scratch_hit_rate and scheduler_steals are sampled
  /// from the live generation's engine at call time; the rest are service
  /// counters.
  ServiceStats stats() const;

  /// Releases pooled scratch memory (idle shrink); sessions stay bound.
  /// Trims every retained generation's engine, not just the live one —
  /// a post-install trim must free the *retired* engine's pool too, or a
  /// config swap silently doubles resident scratch (engines shared
  /// across generations are trimmed once).  Also reclaims retired
  /// generations whose last pin has dropped.  Returns bytes freed (also
  /// accumulated into ServiceStats::trim_bytes).
  std::size_t trim();

  /// The service's metrics registry (live handles; see obs/metrics.h).
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// Registry snapshot with engine health gauges refreshed first
  /// (Engine::publish_metrics) — the one-call exposition entry point.
  obs::RegistrySnapshot metrics_snapshot();

  /// Live generation id (1 until the first install).
  std::int64_t generation() const {
    return generation_id_.load(std::memory_order_acquire);
  }

  /// True while a background retune is running.
  bool retune_in_progress() const {
    return retune_in_progress_.load(std::memory_order_acquire);
  }

  /// The live generation's engine / tuned config.  The references are
  /// valid at least until that generation is retired by an install() AND
  /// its last pin drops (retired generations are reclaimed); callers
  /// that outlive installs should copy the config or hold a SessionRef.
  Engine& engine() const;
  const tune::TunedConfig& config() const;

 private:
  /// One cache entry: the session plus its eviction bookkeeping.
  struct SessionSlot {
    std::shared_ptr<SolveSession> session;
    std::size_t bytes = 0;        ///< footprint_bytes() at bind time
    std::uint64_t last_used = 0;  ///< global LRU tick of the last bind
  };

  /// One cached routing decision: an operator's fingerprint, the family
  /// it routed to, and the bound DynamicSolver (prewarmed hierarchies +
  /// executors).  Immutable once published; the StencilOp copy keeps the
  /// coefficient storage — and with it the identity() cache key — alive
  /// for the binding's lifetime.
  struct OpBinding {
    grid::StencilOp op;
    grid::OperatorFingerprint fp;
    std::string nearest_family;      ///< overall-nearest canonical family
    OperatorFamily nearest = OperatorFamily::kPoisson;
    double nearest_distance = 0.0;
    std::string served_family;       ///< nearest family WITH tuned tables
    double served_distance = 0.0;
    bool matched = false;  ///< served_distance within the match threshold
    std::shared_ptr<const tune::DynamicSolver> solver;
    std::shared_ptr<const tune::TunedConfig> served_config;
  };

  /// One immutable (config, engine, sessions) unit.  `owned` is null
  /// when the engine is caller-owned (generation 1, and config-only
  /// installs that inherited it); `engine` always points at the engine
  /// this generation executes on.  Installs inherit `owned` as a
  /// shared_ptr — never a raw pointer into a retired generation — so
  /// reclaiming a retired generation can release a generation-owned
  /// engine exactly when its last co-owner goes.
  struct Generation {
    std::int64_t id = 1;
    std::shared_ptr<Engine> owned;
    Engine* engine = nullptr;
    tune::TunedConfig config;
    std::mutex mutex;  // guards sessions + resident_bytes + the two maps
                       // below (family_configs, bindings)
    std::map<int, SessionSlot> sessions;
    std::size_t resident_bytes = 0;  ///< sum of slot bytes in this gen
    /// Generation extensions: per-family tuned tables installed after
    /// this generation went live (install_family).  The construction
    /// config stays the fallback for its own op_family.
    std::map<std::string, std::shared_ptr<const tune::TunedConfig>>
        family_configs;
    /// Routed-operator cache keyed by (StencilOp::identity, n).
    std::map<std::pair<const void*, int>, std::shared_ptr<const OpBinding>>
        bindings;
  };

  std::shared_ptr<Generation> current_generation() const;
  SessionRef session_in(const std::shared_ptr<Generation>& gen, int n);
  /// Evicts LRU unpinned slots from `gen` until the policy is satisfied
  /// (or nothing evictable remains).  Caller must hold gen->mutex.
  void enforce_policy_locked(Generation& gen);
  /// Moves retired generations nobody pins into `out` for destruction
  /// outside the lock.  Caller must hold mutex_.
  void reclaim_retired_locked(
      std::vector<std::shared_ptr<Generation>>& out);
  void validate_request(const Generation& gen,
                        const SolveRequest& request) const;
  void observe_drift(const std::shared_ptr<Generation>& gen,
                     const SolveStats& stats, int accuracy_index, bool fmg);
  void start_retune();
  /// The cached routing decision for `op` in `gen`, fingerprinting and
  /// binding a DynamicSolver on first sight (construction happens outside
  /// the generation lock; an emplace race keeps the winner).
  std::shared_ptr<const OpBinding> binding_for(
      const std::shared_ptr<Generation>& gen, const grid::StencilOp& op);
  /// Launches the once-per-family background retune; returns true when
  /// THIS call fired it (false: no callback, family already handled, or
  /// another retune is mid-flight — the family stays unhandled so a
  /// later request retries).
  bool start_family_retune(OperatorFamily family);

  /// Latency histogram for (n, accuracy index), resolved once per pair
  /// and cached so the solve path never re-walks the registry map.
  obs::Histogram& latency_histogram(int n, int accuracy_index);
  /// pbmg_route_total{family,outcome} counter, cached like latency_.
  obs::Counter& route_counter(const std::string& family,
                              const std::string& outcome);

  Engine& engine_;  ///< construction-time engine (generation 1)
  ServicePolicy policy_;

  obs::MetricsRegistry metrics_;
  obs::Counter& requests_ok_;  // resolved once; stable addresses
  obs::Counter& requests_unconverged_;
  obs::Counter& requests_error_;
  obs::Counter& failures_total_;
  obs::Counter& session_evictions_;
  obs::Counter& trims_total_;
  obs::Counter& trim_bytes_total_;
  obs::Counter& drift_windows_ok_;
  obs::Counter& drift_windows_drifted_;
  obs::Counter& retunes_total_;
  obs::Counter& retune_failures_total_;
  obs::Counter& route_escalations_;
  obs::Counter& route_switches_;
  obs::Counter& family_retunes_total_;
  obs::Gauge& generation_gauge_;
  obs::Gauge& retune_gauge_;
  obs::Gauge& session_bytes_gauge_;
  obs::Histogram& failure_seconds_;
  obs::Histogram& batch_size_;
  obs::Histogram& route_distance_;

  mutable std::mutex mutex_;  // guards current_/retired_, stats_, latency_,
                              // route_counters_
  std::shared_ptr<Generation> current_;
  std::vector<std::shared_ptr<Generation>> retired_;
  ServiceStats stats_;
  std::map<std::pair<int, int>, obs::Histogram*> latency_;
  std::map<std::pair<std::string, std::string>, obs::Counter*> route_counters_;

  std::atomic<std::int64_t> generation_id_{1};
  std::atomic<std::uint64_t> lru_tick_{0};  ///< global session-use clock
  /// Resident session bytes across all generations; atomic because binds
  /// and evictions happen under per-generation mutexes, reclaim under
  /// mutex_.  Mirrored into pbmg_session_bytes at every change.
  std::atomic<std::size_t> session_bytes_{0};
  std::atomic<std::int64_t> evictions_{0};
  std::unique_ptr<obs::DriftWatcher> watcher_;  // set once, before serving
  RetuneFn retune_fn_;
  std::atomic<bool> retune_in_progress_{false};
  std::thread retune_thread_;  // joined before reuse and in the dtor

  RoutePolicy route_policy_;        // set once, before routed traffic
  FamilyRetuneFn family_retune_fn_;
  std::mutex route_mutex_;  // guards retuned_families_
  /// Families whose background retune has launched (and not failed):
  /// the exactly-once guarantee for family retunes.  Deliberately NOT
  /// per-generation — a drift install must not re-train every routed
  /// family from scratch.
  std::set<std::string> retuned_families_;
};

}  // namespace pbmg
