#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "engine/solve_session.h"
#include "obs/drift.h"
#include "obs/metrics.h"

/// \file solve_service.h
/// Multi-tenant front-end: concurrent solve requests onto one Engine.
///
/// Many client threads call solve() concurrently; the service binds each
/// grid size to a cached SolveSession (created once, reused by every
/// later request of that size) and runs the solve on the caller's thread.
/// The work-stealing scheduler composes nested parallelism, so requests
/// submitted from different client threads interleave on one worker pool
/// instead of fighting over oversubscribed thread pools — this is what
/// makes aggregate throughput scale with client count
/// (bench/fig17_concurrent_service).
///
/// The service also owns an obs::MetricsRegistry: every solve lands in a
/// per-(grid size × accuracy) latency histogram
/// (`pbmg_solve_latency_seconds{n="...",acc="..."}`) on success or the
/// `pbmg_solve_failure_seconds` histogram on a throw, every request
/// increments `pbmg_solve_requests_total{outcome=...}` (ok / unconverged
/// / error — the label sums to *all* requests, per the Prometheus
/// `_total` convention), and metrics_snapshot() samples engine health
/// (scheduler steals, scratch-pool hit rate) into gauges on the way out.
///
/// Config generations & drift-triggered retunes: the tuned config, its
/// engine, and its sessions form one immutable *generation*.  When
/// enable_drift_watch is armed, live latencies feed an obs::DriftWatcher
/// against the tune-time baseline; sustained drift launches the retune
/// callback on a background thread, and its result is installed as a new
/// generation with one pointer swap — in-flight solves finish on the
/// generation they bound (snapshotted at entry), new requests bind the
/// fresh one.  Retired generations are kept alive for the service's
/// lifetime, so session references handed out earlier never dangle.

namespace pbmg {

/// One solve request.  The operand grids stay caller-owned: `x` enters
/// with the Dirichlet ring + initial guess and leaves with the solution.
struct SolveRequest {
  int accuracy_index = -1;        ///< tuned-ladder index; < 0 uses target
  double target_accuracy = 0.0;   ///< used when accuracy_index < 0
  bool fmg = false;               ///< FULL-MULTIGRID instead of MULTIGRID-V
  /// Optional per-(level, phase) time attribution: when set, the solve
  /// records into it and SolveStats::phases returns it.  Requests may
  /// share one profile to aggregate a workload-wide breakdown.
  std::shared_ptr<obs::PhaseProfile> profile;
  /// Optional convergence audit (solve_session.h).  Off by default; the
  /// drift bench/tests enable it so latency samples provably come from
  /// solves that did their job, not from ones that diverged quickly.
  ResidualPolicy residual;
};

/// Service-level counters (monotonic since construction).
struct ServiceStats {
  std::int64_t requests = 0;     ///< solves completed
  std::int64_t failures = 0;     ///< solves that threw
  double busy_seconds = 0.0;     ///< sum of per-request solve seconds
  std::size_t sessions = 0;      ///< grid sizes bound in the live generation
  std::int64_t trims = 0;        ///< trim() calls since construction
  std::int64_t trim_bytes = 0;   ///< total bytes freed by those trims
  double scratch_hit_rate = 0.0;    ///< pool hit rate, sampled at stats()
  std::int64_t scheduler_steals = 0;  ///< work steals, sampled at stats()
  std::int64_t drift_windows = 0;   ///< comparison windows closed
  std::int64_t drifted_windows = 0;  ///< windows that failed both tests
  std::int64_t retunes = 0;      ///< background retunes launched
  std::int64_t generation = 1;   ///< live config generation (starts at 1)
};

/// Thread-safe solve front-end over one Engine + one tuned config.
class SolveService {
 public:
  /// What a retune produces: fresh tables, their healthy-latency
  /// baseline, and optionally a fresh Engine (a re-search usually finds
  /// new runtime parameters; null keeps the current generation's engine).
  struct RetuneResult {
    tune::TunedConfig config;
    obs::LatencyBaseline baseline;
    std::shared_ptr<Engine> engine;
  };
  using RetuneFn = std::function<RetuneResult()>;

  /// The service keeps its own copy of `config`; `engine` must outlive it.
  SolveService(Engine& engine, tune::TunedConfig config);

  /// Joins any in-flight background retune.
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Arms drift detection: live solve latencies are compared against
  /// `baseline` under `policy`, and sustained drift runs `retune` on a
  /// background thread followed by an atomic install() of its result.
  /// Call once, before serving traffic (the watcher pointer itself is
  /// unsynchronized; everything behind it is thread-safe).  A null
  /// `retune` detects and counts drift without ever swapping.
  void enable_drift_watch(obs::LatencyBaseline baseline,
                          obs::DriftPolicy policy, RetuneFn retune);

  /// Atomically installs a new generation: new requests bind the fresh
  /// config (and engine, when non-null — otherwise the live generation's
  /// engine is inherited), in-flight solves finish where they started,
  /// and the drift watcher — if armed — is rebased onto `baseline`.
  /// Thread-safe; called by the background retune and usable directly.
  void install(tune::TunedConfig config, obs::LatencyBaseline baseline = {},
               std::shared_ptr<Engine> engine = nullptr);

  /// Solves one request on the calling thread.  Thread-safe; throws what
  /// the underlying solve throws (after counting the failure), and
  /// ConfigError for an accuracy_index outside the tuned ladder or the
  /// unset default (accuracy_index < 0 with target_accuracy <= 0).
  SolveStats solve(Grid2D& x, const Grid2D& b, const SolveRequest& request);

  /// The live generation's session bound to side `n`, created on first
  /// use.  Thread-safe.  The reference stays valid for the service's
  /// lifetime even across installs (retired generations are retained),
  /// but after a swap it no longer receives new solve() traffic.
  SolveSession& session(int n);

  /// Counter snapshot.  scratch_hit_rate and scheduler_steals are sampled
  /// from the live generation's engine at call time; the rest are service
  /// counters.
  ServiceStats stats() const;

  /// Releases pooled scratch memory (idle shrink); sessions stay bound.
  /// Returns bytes freed (also accumulated into ServiceStats::trim_bytes).
  std::size_t trim();

  /// The service's metrics registry (live handles; see obs/metrics.h).
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// Registry snapshot with engine health gauges refreshed first
  /// (Engine::publish_metrics) — the one-call exposition entry point.
  obs::RegistrySnapshot metrics_snapshot();

  /// Live generation id (1 until the first install).
  std::int64_t generation() const {
    return generation_id_.load(std::memory_order_acquire);
  }

  /// True while a background retune is running.
  bool retune_in_progress() const {
    return retune_in_progress_.load(std::memory_order_acquire);
  }

  /// The live generation's engine / tuned config.
  Engine& engine() const;
  const tune::TunedConfig& config() const;

 private:
  /// One immutable (config, engine, sessions) unit.  `owned` is null for
  /// the construction-time engine (caller-owned); `engine` always points
  /// at the engine this generation executes on.
  struct Generation {
    std::int64_t id = 1;
    std::shared_ptr<Engine> owned;
    Engine* engine = nullptr;
    tune::TunedConfig config;
    std::mutex mutex;  // guards sessions
    std::map<int, std::shared_ptr<SolveSession>> sessions;
  };

  std::shared_ptr<Generation> current_generation() const;
  SolveSession& session_in(Generation& gen, int n);
  void validate_request(const Generation& gen,
                        const SolveRequest& request) const;
  void observe_drift(const std::shared_ptr<Generation>& gen,
                     const SolveStats& stats, int accuracy_index);
  void start_retune();

  /// Latency histogram for (n, accuracy index), resolved once per pair
  /// and cached so the solve path never re-walks the registry map.
  obs::Histogram& latency_histogram(int n, int accuracy_index);

  Engine& engine_;  ///< construction-time engine (generation 1)

  obs::MetricsRegistry metrics_;
  obs::Counter& requests_ok_;  // resolved once; stable addresses
  obs::Counter& requests_unconverged_;
  obs::Counter& requests_error_;
  obs::Counter& failures_total_;
  obs::Counter& trims_total_;
  obs::Counter& trim_bytes_total_;
  obs::Counter& drift_windows_ok_;
  obs::Counter& drift_windows_drifted_;
  obs::Counter& retunes_total_;
  obs::Counter& retune_failures_total_;
  obs::Gauge& generation_gauge_;
  obs::Gauge& retune_gauge_;
  obs::Histogram& failure_seconds_;

  mutable std::mutex mutex_;  // guards current_/retired_, stats_, latency_
  std::shared_ptr<Generation> current_;
  std::vector<std::shared_ptr<Generation>> retired_;
  ServiceStats stats_;
  std::map<std::pair<int, int>, obs::Histogram*> latency_;

  std::atomic<std::int64_t> generation_id_{1};
  std::unique_ptr<obs::DriftWatcher> watcher_;  // set once, before serving
  RetuneFn retune_fn_;
  std::atomic<bool> retune_in_progress_{false};
  std::thread retune_thread_;  // joined before reuse and in the dtor
};

}  // namespace pbmg
