#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "engine/solve_session.h"

/// \file solve_service.h
/// Multi-tenant front-end: concurrent solve requests onto one Engine.
///
/// Many client threads call solve() concurrently; the service binds each
/// grid size to a cached SolveSession (created once, reused by every
/// later request of that size) and runs the solve on the caller's thread.
/// The work-stealing scheduler composes nested parallelism, so requests
/// submitted from different client threads interleave on one worker pool
/// instead of fighting over oversubscribed thread pools — this is what
/// makes aggregate throughput scale with client count
/// (bench/fig17_concurrent_service).

namespace pbmg {

/// One solve request.  The operand grids stay caller-owned: `x` enters
/// with the Dirichlet ring + initial guess and leaves with the solution.
struct SolveRequest {
  int accuracy_index = -1;        ///< tuned-ladder index; < 0 uses target
  double target_accuracy = 0.0;   ///< used when accuracy_index < 0
  bool fmg = false;               ///< FULL-MULTIGRID instead of MULTIGRID-V
};

/// Service-level counters (monotonic since construction).
struct ServiceStats {
  std::int64_t requests = 0;     ///< solves completed
  std::int64_t failures = 0;     ///< solves that threw
  double busy_seconds = 0.0;     ///< sum of per-request solve seconds
  std::size_t sessions = 0;      ///< distinct grid sizes bound so far
};

/// Thread-safe solve front-end over one Engine + one tuned config.
class SolveService {
 public:
  /// The service keeps its own copy of `config`; `engine` must outlive it.
  SolveService(Engine& engine, tune::TunedConfig config);

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Solves one request on the calling thread.  Thread-safe; throws what
  /// the underlying solve throws (after counting the failure).
  SolveStats solve(Grid2D& x, const Grid2D& b, const SolveRequest& request);

  /// The session bound to side `n`, created on first use.  Thread-safe.
  SolveSession& session(int n);

  /// Counter snapshot.
  ServiceStats stats() const;

  /// Releases pooled scratch memory (idle shrink); sessions stay bound.
  /// Returns bytes freed.
  std::size_t trim();

  Engine& engine() const { return engine_; }
  const tune::TunedConfig& config() const { return config_; }

 private:
  Engine& engine_;
  tune::TunedConfig config_;

  mutable std::mutex mutex_;  // guards sessions_ and stats_
  std::map<int, std::unique_ptr<SolveSession>> sessions_;
  ServiceStats stats_;
};

}  // namespace pbmg
