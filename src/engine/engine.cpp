#include "engine/engine.h"

#include "tune/config_cache.h"
#include "tune/trainer.h"

namespace pbmg {

Engine::Engine(EngineOptions options)
    : relax_(options.relax),
      cache_dir_(options.cache_dir.empty() ? tune::default_cache_dir()
                                           : options.cache_dir),
      scheduler_(options.profile),
      direct_(options.direct_max_cached_n) {
  solvers::validate_relax_tunables(relax_);
}

tune::TunedConfig Engine::tuned_config(const tune::TrainerOptions& options,
                                       int heuristic_sub_accuracy,
                                       bool* from_cache) {
  return tune::load_or_train(options, *this, cache_dir_,
                             heuristic_sub_accuracy, from_cache);
}

}  // namespace pbmg
