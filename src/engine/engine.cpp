#include "engine/engine.h"

#include "obs/metrics.h"
#include "tune/config_cache.h"
#include "tune/trainer.h"

namespace pbmg {

Engine::Engine(EngineOptions options)
    : relax_(options.relax),
      cache_dir_(options.cache_dir.empty() ? tune::default_cache_dir()
                                           : options.cache_dir),
      scheduler_(options.profile),
      direct_(options.direct_max_cached_n) {
  solvers::validate_relax_tunables(relax_);
}

tune::TunedConfig Engine::tuned_config(const tune::TrainerOptions& options,
                                       int heuristic_sub_accuracy,
                                       bool* from_cache) {
  return tune::load_or_train(options, *this, cache_dir_,
                             heuristic_sub_accuracy, from_cache);
}

void Engine::publish_metrics(obs::MetricsRegistry& registry) {
  registry.gauge("pbmg_scheduler_threads")
      .set(static_cast<double>(profile().threads));
  registry.gauge("pbmg_scheduler_steals")
      .set(static_cast<double>(scheduler_.steal_count()));
  const grid::ScratchPool::Stats pool = scratch_.stats();
  registry.gauge("pbmg_scratch_acquires")
      .set(static_cast<double>(pool.acquires));
  registry.gauge("pbmg_scratch_hits").set(static_cast<double>(pool.hits));
  registry.gauge("pbmg_scratch_misses").set(static_cast<double>(pool.misses));
  registry.gauge("pbmg_scratch_trims").set(static_cast<double>(pool.trims));
  registry.gauge("pbmg_scratch_pooled_grids")
      .set(static_cast<double>(pool.pooled_grids));
  registry.gauge("pbmg_scratch_pooled_bytes")
      .set(static_cast<double>(pool.pooled_bytes));
  registry.gauge("pbmg_scratch_high_water_bytes")
      .set(static_cast<double>(pool.high_water_bytes));
  registry.gauge("pbmg_scratch_hit_rate").set(pool.hit_rate());
}

}  // namespace pbmg
