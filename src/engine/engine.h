#pragma once

#include <string>

#include "grid/scratch.h"
#include "runtime/machine_profile.h"
#include "runtime/scheduler.h"
#include "solvers/direct.h"
#include "solvers/relax.h"
#include "tune/table.h"

/// \file engine.h
/// Explicit ownership root for everything a tuned solve needs.
///
/// The paper's autotuned binaries are single-shot: one process, one
/// machine profile, one solve — which the seed code mirrored with
/// process-wide singletons (a global scheduler and a global scratch
/// pool).  A production service must run many tuned solves concurrently,
/// possibly under *different* profiles (each profile-search candidate is
/// its own runtime), so tuner and solver state lives in an explicit
/// long-lived context object instead:
///
///   Engine        owns one rt::Scheduler (built from a MachineProfile),
///                 one grid::ScratchPool, one solvers::DirectSolver, the
///                 relaxation tunables, and a tuned-config cache handle.
///   SolveSession  binds an Engine + TunedConfig + grid size n and serves
///                 tuned/reference solves with per-request SolveStats
///                 (engine/solve_session.h).
///   SolveService  multiplexes concurrent solve requests from many client
///                 threads onto one Engine (engine/solve_service.h).
///
/// Engines are independent: two engines with different profiles coexist
/// in one process, and constructing one never disturbs another.

namespace pbmg::tune {
struct TrainerOptions;  // tune/trainer.h (included by engine.cpp only)
}

namespace pbmg::obs {
class MetricsRegistry;  // obs/metrics.h (included by engine.cpp only)
}

namespace pbmg {

/// Construction parameters of an Engine.
struct EngineOptions {
  /// Machine profile the scheduler is built from.
  rt::MachineProfile profile;

  /// Relaxation weights tuned executors and trainers run with (defaults
  /// reproduce the paper; the profile search may supply searched values).
  solvers::RelaxTunables relax;

  /// Tuned-config cache directory for Engine::tuned_config; empty selects
  /// tune::default_cache_dir() ($PBMG_CACHE_DIR or ./pbmg_tuned_cache).
  std::string cache_dir;

  /// Factor-cache bound of the owned DirectSolver (0 = cache-free, the
  /// paper-faithful DPBSV behaviour; see solvers/direct.h).
  int direct_max_cached_n = 0;
};

/// Owns the runtime resources of one tuned-solver instance.
class Engine {
 public:
  /// Engine over the default machine profile.
  Engine() : Engine(EngineOptions{}) {}

  /// Engine over `profile` with paper-default relaxation weights.
  explicit Engine(const rt::MachineProfile& profile)
      : Engine(EngineOptions{profile, {}, {}, 0}) {}

  /// Engine over searched runtime parameters (profile + relax weights).
  Engine(const rt::MachineProfile& profile,
         const solvers::RelaxTunables& relax)
      : Engine(EngineOptions{profile, relax, {}, 0}) {}

  /// Fully specified construction.  Throws InvalidArgument for an invalid
  /// profile (non-positive threads) or relax weights outside SOR's
  /// stability interval.
  explicit Engine(EngineOptions options);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// The engine's work-stealing scheduler.
  rt::Scheduler& scheduler() { return scheduler_; }

  /// Profile the scheduler was built from.
  const rt::MachineProfile& profile() const { return scheduler_.profile(); }

  /// The engine's scratch-grid pool (trim()/stats() for observability).
  grid::ScratchPool& scratch() { return scratch_; }

  /// The engine's direct solver.
  solvers::DirectSolver& direct() { return direct_; }

  /// Relaxation weights executors and trainers built on this engine use.
  const solvers::RelaxTunables& relax() const { return relax_; }

  /// Tuned-config cache directory (resolved, never empty).
  const std::string& cache_dir() const { return cache_dir_; }

  /// Loads (or trains and persists) the tuned config for this engine's
  /// profile via tune::load_or_train against this engine's resources.
  /// `heuristic_sub_accuracy` >= 0 trains the Figure-7 heuristic instead;
  /// `from_cache`, when non-null, reports whether a disk hit occurred.
  tune::TunedConfig tuned_config(const tune::TrainerOptions& options,
                                 int heuristic_sub_accuracy = -1,
                                 bool* from_cache = nullptr);

  /// Samples this engine's runtime health into `registry` gauges
  /// (pbmg_scheduler_*, pbmg_scratch_*): work-steal count, thread count,
  /// and the scratch pool's acquire/hit/miss/trim counters, pooled and
  /// high-water bytes, and hit rate.  Call before snapshotting the
  /// registry; safe to call concurrently with solves.
  void publish_metrics(obs::MetricsRegistry& registry);

 private:
  solvers::RelaxTunables relax_;
  std::string cache_dir_;
  rt::Scheduler scheduler_;
  grid::ScratchPool scratch_;
  solvers::DirectSolver direct_;
};

}  // namespace pbmg
