#include "engine/solve_service.h"

#include <string>
#include <utility>

namespace pbmg {

SolveService::SolveService(Engine& engine, tune::TunedConfig config)
    : engine_(engine),
      config_(std::move(config)),
      requests_total_(metrics_.counter("pbmg_solve_requests_total")),
      failures_total_(metrics_.counter("pbmg_solve_failures_total")),
      trims_total_(metrics_.counter("pbmg_scratch_trims_total")),
      trim_bytes_total_(metrics_.counter("pbmg_scratch_trim_bytes_total")) {}

obs::Histogram& SolveService::latency_histogram(int n, int accuracy_index) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = latency_.find({n, accuracy_index});
    if (it != latency_.end()) return *it->second;
  }
  // Registry accessors hand out stable addresses, so resolving outside
  // mutex_ is safe even when two threads race on one (n, acc) pair.
  obs::Histogram& hist = metrics_.histogram(
      "pbmg_solve_latency_seconds{n=\"" + std::to_string(n) + "\",acc=\"" +
      std::to_string(accuracy_index) + "\"}");
  std::lock_guard<std::mutex> lock(mutex_);
  latency_.emplace(std::make_pair(n, accuracy_index), &hist);
  return hist;
}

SolveSession& SolveService::session(int n) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(n);
    if (it != sessions_.end()) return *it->second;
  }
  // Construct outside the lock: prewarming a large level hierarchy
  // allocates and zero-fills megabytes, and must not stall unrelated
  // in-flight solves of other sizes.  If two threads race to bind the
  // same size, emplace keeps the winner and the loser's session is
  // discarded (its prewarmed grids are already in the shared pool).
  auto fresh = std::make_unique<SolveSession>(engine_, config_, n);
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = sessions_.emplace(n, std::move(fresh));
  if (inserted) stats_.sessions = sessions_.size();
  return *it->second;
}

SolveStats SolveService::solve(Grid2D& x, const Grid2D& b,
                               const SolveRequest& request) {
  SolveStats stats;
  int index = -1;
  try {
    SolveSession& bound = session(x.n());
    index = request.accuracy_index >= 0
                ? request.accuracy_index
                : bound.accuracy_index(request.target_accuracy);
    stats = request.fmg ? bound.solve_fmg(x, b, index, request.profile)
                        : bound.solve_v(x, b, index, request.profile);
  } catch (...) {
    failures_total_.add(1);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.failures;
    throw;
  }
  latency_histogram(stats.n, index).record(stats.seconds);
  requests_total_.add(1);
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.requests;
  stats_.busy_seconds += stats.seconds;
  return stats;
}

ServiceStats SolveService::stats() const {
  ServiceStats out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = stats_;
  }
  out.scratch_hit_rate = engine_.scratch().stats().hit_rate();
  out.scheduler_steals = engine_.scheduler().steal_count();
  return out;
}

std::size_t SolveService::trim() {
  const std::size_t freed = engine_.scratch().trim();
  trims_total_.add(1);
  trim_bytes_total_.add(static_cast<std::int64_t>(freed));
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.trims;
  stats_.trim_bytes += static_cast<std::int64_t>(freed);
  return freed;
}

obs::RegistrySnapshot SolveService::metrics_snapshot() {
  engine_.publish_metrics(metrics_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    metrics_.gauge("pbmg_service_busy_seconds").set(stats_.busy_seconds);
    metrics_.gauge("pbmg_service_sessions")
        .set(static_cast<double>(sessions_.size()));
  }
  return metrics_.snapshot();
}

}  // namespace pbmg
