#include "engine/solve_service.h"

#include <string>
#include <utility>

#include "grid/problem.h"
#include "support/error.h"
#include "support/timer.h"

namespace pbmg {

SolveService::SolveService(Engine& engine, tune::TunedConfig config)
    : engine_(engine),
      requests_ok_(
          metrics_.counter("pbmg_solve_requests_total{outcome=\"ok\"}")),
      requests_unconverged_(metrics_.counter(
          "pbmg_solve_requests_total{outcome=\"unconverged\"}")),
      requests_error_(
          metrics_.counter("pbmg_solve_requests_total{outcome=\"error\"}")),
      failures_total_(metrics_.counter("pbmg_solve_failures_total")),
      trims_total_(metrics_.counter("pbmg_scratch_trims_total")),
      trim_bytes_total_(metrics_.counter("pbmg_scratch_trim_bytes_total")),
      drift_windows_ok_(
          metrics_.counter("pbmg_drift_windows_total{verdict=\"ok\"}")),
      drift_windows_drifted_(
          metrics_.counter("pbmg_drift_windows_total{verdict=\"drifted\"}")),
      retunes_total_(metrics_.counter("pbmg_drift_retunes_total")),
      retune_failures_total_(
          metrics_.counter("pbmg_drift_retune_failures_total")),
      generation_gauge_(metrics_.gauge("pbmg_config_generation")),
      retune_gauge_(metrics_.gauge("pbmg_retune_in_progress")),
      failure_seconds_(metrics_.histogram("pbmg_solve_failure_seconds")) {
  current_ = std::make_shared<Generation>();
  current_->engine = &engine_;
  current_->config = std::move(config);
  generation_gauge_.set(1.0);
}

SolveService::~SolveService() {
  if (retune_thread_.joinable()) retune_thread_.join();
}

void SolveService::enable_drift_watch(obs::LatencyBaseline baseline,
                                      obs::DriftPolicy policy,
                                      RetuneFn retune) {
  watcher_ = std::make_unique<obs::DriftWatcher>(std::move(baseline), policy);
  retune_fn_ = std::move(retune);
}

void SolveService::install(tune::TunedConfig config,
                           obs::LatencyBaseline baseline,
                           std::shared_ptr<Engine> engine) {
  auto fresh = std::make_shared<Generation>();
  fresh->owned = std::move(engine);
  fresh->config = std::move(config);
  std::int64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = current_->id + 1;
    fresh->id = id;
    // A config-only install inherits the live engine; keeping the retired
    // generation in retired_ keeps that engine (and every session
    // reference ever handed out) alive for the service's lifetime.
    fresh->engine = fresh->owned ? fresh->owned.get() : current_->engine;
    retired_.push_back(current_);
    current_ = std::move(fresh);
    stats_.generation = id;
  }
  generation_id_.store(id, std::memory_order_release);
  generation_gauge_.set(static_cast<double>(id));
  // Rebase after the swap so live windows restart against the new
  // baseline; samples still in flight on the old generation are filtered
  // out by observe_drift's generation check.
  if (watcher_) watcher_->rebase(std::move(baseline));
}

std::shared_ptr<SolveService::Generation> SolveService::current_generation()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

obs::Histogram& SolveService::latency_histogram(int n, int accuracy_index) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = latency_.find({n, accuracy_index});
    if (it != latency_.end()) return *it->second;
  }
  // Registry accessors hand out stable addresses, so resolving outside
  // mutex_ is safe even when two threads race on one (n, acc) pair.
  obs::Histogram& hist = metrics_.histogram(
      "pbmg_solve_latency_seconds{n=\"" + std::to_string(n) + "\",acc=\"" +
      std::to_string(accuracy_index) + "\"}");
  std::lock_guard<std::mutex> lock(mutex_);
  latency_.emplace(std::make_pair(n, accuracy_index), &hist);
  return hist;
}

SolveSession& SolveService::session_in(Generation& gen, int n) {
  {
    std::lock_guard<std::mutex> lock(gen.mutex);
    auto it = gen.sessions.find(n);
    if (it != gen.sessions.end()) return *it->second;
  }
  // Construct outside the lock: prewarming a large level hierarchy
  // allocates and zero-fills megabytes, and must not stall unrelated
  // in-flight solves of other sizes.  If two threads race to bind the
  // same size, emplace keeps the winner and the loser's session is
  // discarded (its prewarmed grids are already in the shared pool).
  // The operator comes from the config's own family, so a service over
  // non-Poisson tables solves the operator it was tuned for (the Poisson
  // family takes StencilOp's constant-coefficient fast path, bit-for-bit
  // the historical behaviour).
  auto fresh = std::make_shared<SolveSession>(
      *gen.engine, gen.config,
      make_operator(n, parse_operator_family(gen.config.op_family)));
  std::lock_guard<std::mutex> lock(gen.mutex);
  auto [it, inserted] = gen.sessions.emplace(n, std::move(fresh));
  return *it->second;
}

SolveSession& SolveService::session(int n) {
  const std::shared_ptr<Generation> gen = current_generation();
  return session_in(*gen, n);
}

void SolveService::validate_request(const Generation& gen,
                                    const SolveRequest& request) const {
  if (request.accuracy_index >= gen.config.accuracy_count()) {
    throw ConfigError(
        "SolveService: accuracy_index " +
        std::to_string(request.accuracy_index) +
        " is outside the tuned ladder [0, " +
        std::to_string(gen.config.accuracy_count()) + ")");
  }
  if (request.accuracy_index < 0 && request.target_accuracy <= 0.0) {
    throw ConfigError(
        "SolveService: request selects no accuracy — set accuracy_index to "
        "a tuned ladder index or target_accuracy to a positive accuracy "
        "level (the default-constructed request is deliberately invalid)");
  }
}

SolveStats SolveService::solve(Grid2D& x, const Grid2D& b,
                               const SolveRequest& request) {
  SolveStats stats;
  int index = -1;
  const std::shared_ptr<Generation> gen = current_generation();
  const double t0 = now_seconds();
  try {
    validate_request(*gen, request);
    SolveSession& bound = session_in(*gen, x.n());
    index = request.accuracy_index >= 0
                ? request.accuracy_index
                : bound.accuracy_index(request.target_accuracy);
    stats = request.fmg
                ? bound.solve_fmg(x, b, index, request.profile,
                                  request.residual)
                : bound.solve_v(x, b, index, request.profile,
                                request.residual);
    stats.generation = gen->id;
  } catch (...) {
    failures_total_.add(1);
    requests_error_.add(1);
    // Failed solves cost wall-clock too; without this histogram a wave of
    // fast-failing requests would be invisible in latency telemetry.
    failure_seconds_.record(now_seconds() - t0);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.failures;
    throw;
  }
  latency_histogram(stats.n, index).record(stats.seconds);
  (stats.converged ? requests_ok_ : requests_unconverged_).add(1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.requests;
    stats_.busy_seconds += stats.seconds;
  }
  observe_drift(gen, stats, index);
  return stats;
}

void SolveService::observe_drift(const std::shared_ptr<Generation>& gen,
                                 const SolveStats& stats,
                                 int accuracy_index) {
  if (watcher_ == nullptr) return;
  // Stragglers that bound a generation which has since been swapped out
  // measured the *old* config; mixing them into the fresh baseline's
  // windows would read as instant drift of the new generation.
  if (gen->id != generation()) return;
  // A solve that failed its residual audit is not a healthy latency
  // sample — this is why the honest converged flag had to come first.
  if (!stats.converged) return;
  const obs::DriftObservation verdict =
      watcher_->observe(stats.n, accuracy_index, stats.seconds);
  if (verdict.window_complete) {
    (verdict.drifted ? drift_windows_drifted_ : drift_windows_ok_).add(1);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.drift_windows;
    if (verdict.drifted) ++stats_.drifted_windows;
  }
  if (verdict.retune) start_retune();
}

void SolveService::start_retune() {
  if (!retune_fn_) return;
  bool expected = false;
  if (!retune_in_progress_.compare_exchange_strong(
          expected, true, std::memory_order_acq_rel)) {
    return;  // a retune is already running; the watcher will re-fire later
  }
  // The CAS read false, so any previous retune thread has published its
  // result and is exiting; join reclaims it before the handle is reused.
  if (retune_thread_.joinable()) retune_thread_.join();
  retunes_total_.add(1);
  retune_gauge_.set(1.0);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.retunes;
  }
  retune_thread_ = std::thread([this] {
    try {
      RetuneResult result = retune_fn_();
      install(std::move(result.config), std::move(result.baseline),
              std::move(result.engine));
    } catch (...) {
      // A failed retune keeps serving the current generation; the watcher
      // streak was reset when it fired, so it re-arms on continued drift.
      retune_failures_total_.add(1);
    }
    retune_gauge_.set(0.0);
    retune_in_progress_.store(false, std::memory_order_release);
  });
}

ServiceStats SolveService::stats() const {
  ServiceStats out;
  std::shared_ptr<Generation> gen;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = stats_;
    gen = current_;
  }
  {
    std::lock_guard<std::mutex> lock(gen->mutex);
    out.sessions = gen->sessions.size();
  }
  out.scratch_hit_rate = gen->engine->scratch().stats().hit_rate();
  out.scheduler_steals = gen->engine->scheduler().steal_count();
  return out;
}

std::size_t SolveService::trim() {
  const std::size_t freed = engine().scratch().trim();
  trims_total_.add(1);
  trim_bytes_total_.add(static_cast<std::int64_t>(freed));
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.trims;
  stats_.trim_bytes += static_cast<std::int64_t>(freed);
  return freed;
}

Engine& SolveService::engine() const { return *current_generation()->engine; }

const tune::TunedConfig& SolveService::config() const {
  // Safe to return by reference: generations are retained (retired_) for
  // the service's lifetime, so the referent outlives every caller.
  return current_generation()->config;
}

obs::RegistrySnapshot SolveService::metrics_snapshot() {
  const std::shared_ptr<Generation> gen = current_generation();
  gen->engine->publish_metrics(metrics_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    metrics_.gauge("pbmg_service_busy_seconds").set(stats_.busy_seconds);
  }
  {
    std::lock_guard<std::mutex> lock(gen->mutex);
    metrics_.gauge("pbmg_service_sessions")
        .set(static_cast<double>(gen->sessions.size()));
  }
  return metrics_.snapshot();
}

}  // namespace pbmg
