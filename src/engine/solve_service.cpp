#include "engine/solve_service.h"

#include <utility>

namespace pbmg {

SolveService::SolveService(Engine& engine, tune::TunedConfig config)
    : engine_(engine), config_(std::move(config)) {}

SolveSession& SolveService::session(int n) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(n);
    if (it != sessions_.end()) return *it->second;
  }
  // Construct outside the lock: prewarming a large level hierarchy
  // allocates and zero-fills megabytes, and must not stall unrelated
  // in-flight solves of other sizes.  If two threads race to bind the
  // same size, emplace keeps the winner and the loser's session is
  // discarded (its prewarmed grids are already in the shared pool).
  auto fresh = std::make_unique<SolveSession>(engine_, config_, n);
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = sessions_.emplace(n, std::move(fresh));
  if (inserted) stats_.sessions = sessions_.size();
  return *it->second;
}

SolveStats SolveService::solve(Grid2D& x, const Grid2D& b,
                               const SolveRequest& request) {
  SolveStats stats;
  try {
    SolveSession& bound = session(x.n());
    const int index = request.accuracy_index >= 0
                          ? request.accuracy_index
                          : bound.accuracy_index(request.target_accuracy);
    stats = request.fmg ? bound.solve_fmg(x, b, index)
                        : bound.solve_v(x, b, index);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.failures;
    throw;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.requests;
  stats_.busy_seconds += stats.seconds;
  return stats;
}

ServiceStats SolveService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t SolveService::trim() { return engine_.scratch().trim(); }

}  // namespace pbmg
