#include "engine/solve_service.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "grid/level.h"
#include "grid/problem.h"
#include "support/error.h"
#include "support/timer.h"

namespace pbmg {

SolveService::SolveService(Engine& engine, tune::TunedConfig config,
                           ServicePolicy policy)
    : engine_(engine),
      policy_(policy),
      requests_ok_(
          metrics_.counter("pbmg_solve_requests_total{outcome=\"ok\"}")),
      requests_unconverged_(metrics_.counter(
          "pbmg_solve_requests_total{outcome=\"unconverged\"}")),
      requests_error_(
          metrics_.counter("pbmg_solve_requests_total{outcome=\"error\"}")),
      failures_total_(metrics_.counter("pbmg_solve_failures_total")),
      session_evictions_(metrics_.counter("pbmg_session_evictions_total")),
      trims_total_(metrics_.counter("pbmg_scratch_trims_total")),
      trim_bytes_total_(metrics_.counter("pbmg_scratch_trim_bytes_total")),
      drift_windows_ok_(
          metrics_.counter("pbmg_drift_windows_total{verdict=\"ok\"}")),
      drift_windows_drifted_(
          metrics_.counter("pbmg_drift_windows_total{verdict=\"drifted\"}")),
      retunes_total_(metrics_.counter("pbmg_drift_retunes_total")),
      retune_failures_total_(
          metrics_.counter("pbmg_drift_retune_failures_total")),
      route_escalations_(metrics_.counter("pbmg_route_escalations_total")),
      route_switches_(
          metrics_.counter("pbmg_route_family_switches_total")),
      family_retunes_total_(metrics_.counter("pbmg_family_retunes_total")),
      generation_gauge_(metrics_.gauge("pbmg_config_generation")),
      retune_gauge_(metrics_.gauge("pbmg_retune_in_progress")),
      session_bytes_gauge_(metrics_.gauge("pbmg_session_bytes")),
      failure_seconds_(metrics_.histogram("pbmg_solve_failure_seconds")),
      batch_size_(metrics_.histogram("pbmg_batch_size")),
      route_distance_(
          metrics_.histogram("pbmg_route_fingerprint_distance")) {
  current_ = std::make_shared<Generation>();
  current_->engine = &engine_;
  current_->config = std::move(config);
  generation_gauge_.set(1.0);
}

SolveService::~SolveService() {
  if (retune_thread_.joinable()) retune_thread_.join();
}

void SolveService::enable_drift_watch(obs::LatencyBaseline baseline,
                                      obs::DriftPolicy policy,
                                      RetuneFn retune) {
  watcher_ = std::make_unique<obs::DriftWatcher>(std::move(baseline), policy);
  retune_fn_ = std::move(retune);
}

void SolveService::install(tune::TunedConfig config,
                           obs::LatencyBaseline baseline,
                           std::shared_ptr<Engine> engine) {
  auto fresh = std::make_shared<Generation>();
  fresh->config = std::move(config);
  std::int64_t id = 0;
  std::vector<std::shared_ptr<Generation>> reclaimed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = current_->id + 1;
    fresh->id = id;
    // A config-only install inherits the live engine as a CO-OWNING
    // shared_ptr (when the retiring generation owned one), never a raw
    // pointer into the retired generation — reclaiming that generation
    // must not pull the engine out from under the fresh one.  A null
    // `owned` on both sides means the construction-time, caller-owned
    // engine, which outlives the service by contract.
    fresh->owned = engine ? std::move(engine) : current_->owned;
    fresh->engine = fresh->owned ? fresh->owned.get() : current_->engine;
    retired_.push_back(current_);
    current_ = std::move(fresh);
    stats_.generation = id;
    reclaim_retired_locked(reclaimed);
  }
  generation_id_.store(id, std::memory_order_release);
  generation_gauge_.set(static_cast<double>(id));
  // Rebase after the swap so live windows restart against the new
  // baseline; samples still in flight on the old generation are filtered
  // out by observe_drift's generation check.
  if (watcher_) watcher_->rebase(std::move(baseline));
  // `reclaimed` destructs here, outside every lock: tearing down session
  // hierarchies (and possibly a generation-owned engine) is heavy.
}

void SolveService::reclaim_retired_locked(
    std::vector<std::shared_ptr<Generation>>& out) {
  // A retired generation with use_count 1 is pinned by nobody: no
  // SessionRef holds its aliased pointer, no in-flight solve snapshotted
  // it, only retired_ itself keeps it alive.  Its sessions — and its
  // engine, when no later generation co-owns it — are dead weight.
  auto it = retired_.begin();
  while (it != retired_.end()) {
    if (it->use_count() == 1) {
      const std::size_t bytes = (*it)->resident_bytes;
      if (bytes > 0) {
        session_bytes_gauge_.set(static_cast<double>(
            session_bytes_.fetch_sub(bytes, std::memory_order_acq_rel) -
            bytes));
      }
      out.push_back(std::move(*it));
      it = retired_.erase(it);
    } else {
      ++it;
    }
  }
}

std::shared_ptr<SolveService::Generation> SolveService::current_generation()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

obs::Histogram& SolveService::latency_histogram(int n, int accuracy_index) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = latency_.find({n, accuracy_index});
    if (it != latency_.end()) return *it->second;
  }
  // Registry accessors hand out stable addresses, so resolving outside
  // mutex_ is safe even when two threads race on one (n, acc) pair.
  obs::Histogram& hist = metrics_.histogram(
      "pbmg_solve_latency_seconds{n=\"" + std::to_string(n) + "\",acc=\"" +
      std::to_string(accuracy_index) + "\"}");
  std::lock_guard<std::mutex> lock(mutex_);
  latency_.emplace(std::make_pair(n, accuracy_index), &hist);
  return hist;
}

SessionRef SolveService::session_in(const std::shared_ptr<Generation>& gen,
                                    int n) {
  {
    std::lock_guard<std::mutex> lock(gen->mutex);
    auto it = gen->sessions.find(n);
    if (it != gen->sessions.end()) {
      it->second.last_used =
          lru_tick_.fetch_add(1, std::memory_order_relaxed) + 1;
      return SessionRef(it->second.session, gen);
    }
  }
  // Construct outside the lock: prewarming a large level hierarchy
  // allocates and zero-fills megabytes, and must not stall unrelated
  // in-flight solves of other sizes.  If two threads race to bind the
  // same size, emplace keeps the winner and the loser's session is
  // discarded (its prewarmed grids are already in the shared pool).
  // The operator comes from the config's own family, so a service over
  // non-Poisson tables solves the operator it was tuned for (the Poisson
  // family takes StencilOp's constant-coefficient fast path, bit-for-bit
  // the historical behaviour).
  auto fresh = std::make_shared<SolveSession>(
      *gen->engine, gen->config,
      make_operator(n, parse_operator_family(gen->config.op_family)));
  const std::size_t bytes = fresh->footprint_bytes();
  SessionRef ref;
  {
    std::lock_guard<std::mutex> lock(gen->mutex);
    auto [it, inserted] = gen->sessions.emplace(n, SessionSlot{});
    if (inserted) {
      it->second.session = std::move(fresh);
      it->second.bytes = bytes;
      gen->resident_bytes += bytes;
      session_bytes_gauge_.set(static_cast<double>(
          session_bytes_.fetch_add(bytes, std::memory_order_acq_rel) +
          bytes));
    }
    it->second.last_used =
        lru_tick_.fetch_add(1, std::memory_order_relaxed) + 1;
    // Pin before enforcing, so the slot we are about to hand out is
    // never its own eviction victim (use_count > 1 excludes it).
    ref = SessionRef(it->second.session, gen);
    if (inserted) enforce_policy_locked(*gen);
  }
  return ref;
}

void SolveService::enforce_policy_locked(Generation& gen) {
  const auto over = [&] {
    if (policy_.max_sessions > 0 &&
        gen.sessions.size() > policy_.max_sessions) {
      return true;
    }
    return policy_.max_session_bytes > 0 &&
           session_bytes_.load(std::memory_order_acquire) >
               policy_.max_session_bytes;
  };
  while (over()) {
    // LRU among this generation's UNPINNED slots (use_count 1: only the
    // cache itself holds the session — no SessionRef, no in-flight
    // batch).  Pinned sessions are untouchable no matter how stale, so
    // a workload that pins everything can exceed the budget; it drains
    // back under it as pins drop and later binds re-enforce.
    auto victim = gen.sessions.end();
    for (auto it = gen.sessions.begin(); it != gen.sessions.end(); ++it) {
      if (it->second.session.use_count() != 1) continue;
      if (victim == gen.sessions.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == gen.sessions.end()) return;  // everything pinned
    const std::size_t bytes = victim->second.bytes;
    gen.resident_bytes -= bytes;
    gen.sessions.erase(victim);
    session_bytes_gauge_.set(static_cast<double>(
        session_bytes_.fetch_sub(bytes, std::memory_order_acq_rel) -
        bytes));
    session_evictions_.add(1);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

SessionRef SolveService::session(int n) {
  return session_in(current_generation(), n);
}

void SolveService::validate_request(const Generation& gen,
                                    const SolveRequest& request) const {
  if (request.accuracy_index >= gen.config.accuracy_count()) {
    throw ConfigError(
        "SolveService: accuracy_index " +
        std::to_string(request.accuracy_index) +
        " is outside the tuned ladder [0, " +
        std::to_string(gen.config.accuracy_count()) + ")");
  }
  if (request.accuracy_index < 0 && request.target_accuracy <= 0.0) {
    throw ConfigError(
        "SolveService: request selects no accuracy — set accuracy_index to "
        "a tuned ladder index or target_accuracy to a positive accuracy "
        "level (the default-constructed request is deliberately invalid)");
  }
}

SolveStats SolveService::solve(Grid2D& x, const Grid2D& b,
                               const SolveRequest& request) {
  SolveStats stats;
  int index = -1;
  const std::shared_ptr<Generation> gen = current_generation();
  const double t0 = now_seconds();
  try {
    validate_request(*gen, request);
    const SessionRef bound = session_in(gen, x.n());
    index = request.accuracy_index >= 0
                ? request.accuracy_index
                : bound->accuracy_index(request.target_accuracy);
    stats = request.fmg
                ? bound->solve_fmg(x, b, index, request.profile,
                                   request.residual)
                : bound->solve_v(x, b, index, request.profile,
                                 request.residual);
    stats.generation = gen->id;
  } catch (...) {
    failures_total_.add(1);
    requests_error_.add(1);
    // Failed solves cost wall-clock too; without this histogram a wave of
    // fast-failing requests would be invisible in latency telemetry.
    failure_seconds_.record(now_seconds() - t0);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.failures;
    throw;
  }
  // Healthy and unhealthy latency split: the per-(n, acc) histograms are
  // what the drift watcher (and any operator reading them) treats as
  // healthy serving latency, and observe_drift already refuses
  // unconverged samples — recording them here anyway would quietly skew
  // the very distribution the watcher compares against.  A solve that
  // failed its residual audit is accounted where thrown solves go.
  if (stats.converged) {
    latency_histogram(stats.n, index).record(stats.seconds);
    requests_ok_.add(1);
  } else {
    failure_seconds_.record(stats.seconds);
    requests_unconverged_.add(1);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.requests;
    stats_.busy_seconds += stats.seconds;
  }
  observe_drift(gen, stats, index, request.fmg);
  return stats;
}

std::vector<SolveStats> SolveService::solve_batch(std::span<Grid2D* const> xs,
                                                  const Grid2D& b_template,
                                                  const SolveRequest& request) {
  std::vector<SolveStats> all;
  if (xs.empty()) return all;
  const auto count = static_cast<std::int64_t>(xs.size());
  const std::shared_ptr<Generation> gen = current_generation();
  const double t0 = now_seconds();
  int index = -1;
  try {
    validate_request(*gen, request);
    const SessionRef bound = session_in(gen, b_template.n());
    index = request.accuracy_index >= 0
                ? request.accuracy_index
                : bound->accuracy_index(request.target_accuracy);
    batch_size_.record(static_cast<double>(xs.size()));
    if (request.fmg) {
      // FULL-MULTIGRID has no fused multi-RHS walk (its ESTIMATE ramp is
      // inherently per-iterate), so an FMG batch is a loop of solo
      // solves — same results, no amortization.
      all.reserve(xs.size());
      for (Grid2D* x : xs) {
        all.push_back(bound->solve_fmg(*x, b_template, index,
                                       request.profile, request.residual));
      }
    } else {
      all = bound->solve_batch_v(xs, b_template, index, request.profile,
                                 request.residual);
    }
    for (SolveStats& stats : all) stats.generation = gen->id;
  } catch (...) {
    // A throw mid-walk fails every request in the batch.
    failures_total_.add(count);
    requests_error_.add(count);
    failure_seconds_.record(now_seconds() - t0);
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.failures += count;
    throw;
  }
  // One latency sample per batch: the fused walk has one wall-clock (the
  // FMG loop's per-solve times sum to it), so per-RHS samples would
  // overcount the histogram K-fold.  The sample is healthy only when
  // EVERY RHS converged; outcome counters still split per RHS.  Batched
  // samples never feed the drift watcher — batch wall-clock grows with K
  // and is incomparable to the solo per-solve baseline.
  std::int64_t converged = 0;
  for (const SolveStats& stats : all) {
    if (stats.converged) ++converged;
  }
  const double seconds = now_seconds() - t0;
  if (converged == count) {
    latency_histogram(b_template.n(), index).record(seconds);
  } else {
    failure_seconds_.record(seconds);
  }
  requests_ok_.add(converged);
  requests_unconverged_.add(count - converged);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.requests += count;
    stats_.busy_seconds += seconds;
  }
  return all;
}

void SolveService::observe_drift(const std::shared_ptr<Generation>& gen,
                                 const SolveStats& stats, int accuracy_index,
                                 bool fmg) {
  if (watcher_ == nullptr) return;
  // Stragglers that bound a generation which has since been swapped out
  // measured the *old* config; mixing them into the fresh baseline's
  // windows would read as instant drift of the new generation.
  if (gen->id != generation()) return;
  // A solve that failed its residual audit is not a healthy latency
  // sample — this is why the honest converged flag had to come first.
  if (!stats.converged) return;
  // V-cycle and FMG latencies live in separate baseline keys: FMG solves
  // are legitimately slower (the ramp), and mixing the two modes into
  // one window reads as drift whenever the workload mix shifts.  The
  // initial residual (when the request's audit measured one) feeds the
  // watcher's input-distribution summary alongside the latency sample.
  const obs::DriftObservation verdict = watcher_->observe(
      stats.n, accuracy_index, stats.seconds, fmg,
      stats.residual_checked
          ? stats.initial_residual
          : std::numeric_limits<double>::quiet_NaN());
  if (verdict.window_complete) {
    (verdict.drifted ? drift_windows_drifted_ : drift_windows_ok_).add(1);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.drift_windows;
    if (verdict.drifted) ++stats_.drifted_windows;
  }
  if (verdict.retune) start_retune();
}

void SolveService::start_retune() {
  if (!retune_fn_) return;
  bool expected = false;
  if (!retune_in_progress_.compare_exchange_strong(
          expected, true, std::memory_order_acq_rel)) {
    return;  // a retune is already running; the watcher will re-fire later
  }
  // The CAS read false, so any previous retune thread has published its
  // result and is exiting; join reclaims it before the handle is reused.
  if (retune_thread_.joinable()) retune_thread_.join();
  retunes_total_.add(1);
  retune_gauge_.set(1.0);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.retunes;
  }
  retune_thread_ = std::thread([this] {
    try {
      RetuneResult result = retune_fn_();
      install(std::move(result.config), std::move(result.baseline),
              std::move(result.engine));
    } catch (...) {
      // A failed retune keeps serving the current generation; the watcher
      // streak was reset when it fired, so it re-arms on continued drift.
      retune_failures_total_.add(1);
    }
    retune_gauge_.set(0.0);
    retune_in_progress_.store(false, std::memory_order_release);
  });
}

void SolveService::enable_operator_routing(RoutePolicy policy,
                                           FamilyRetuneFn retune) {
  route_policy_ = policy;
  family_retune_fn_ = std::move(retune);
}

obs::Counter& SolveService::route_counter(const std::string& family,
                                          const std::string& outcome) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = route_counters_.find({family, outcome});
    if (it != route_counters_.end()) return *it->second;
  }
  obs::Counter& counter = metrics_.counter("pbmg_route_total{family=\"" +
                                           family + "\",outcome=\"" +
                                           outcome + "\"}");
  std::lock_guard<std::mutex> lock(mutex_);
  route_counters_.emplace(std::make_pair(family, outcome), &counter);
  return counter;
}

void SolveService::install_family(tune::TunedConfig config) {
  const std::string name = config.op_family;
  auto fresh = std::make_shared<const tune::TunedConfig>(std::move(config));
  const std::shared_ptr<Generation> gen = current_generation();
  std::vector<std::shared_ptr<const OpBinding>> dropped;
  {
    std::lock_guard<std::mutex> lock(gen->mutex);
    gen->family_configs[name] = std::move(fresh);
    // Drop the bindings this install supersedes: operators whose nearest
    // family is the one just trained but which were being served by a
    // stand-in.  Their next request re-routes onto the new tables; every
    // other binding — and every in-flight solve, which holds its own
    // shared_ptr — is untouched.
    auto it = gen->bindings.begin();
    while (it != gen->bindings.end()) {
      if (it->second->nearest_family == name &&
          it->second->served_family != name) {
        dropped.push_back(std::move(it->second));
        it = gen->bindings.erase(it);
      } else {
        ++it;
      }
    }
  }
  // `dropped` destructs here, outside the lock: each binding tears down a
  // DynamicSolver's coefficient hierarchies and executors.
}

std::shared_ptr<const SolveService::OpBinding> SolveService::binding_for(
    const std::shared_ptr<Generation>& gen, const grid::StencilOp& op) {
  const std::pair<const void*, int> key{op.identity(), op.n()};
  for (;;) {
    std::map<std::string, std::shared_ptr<const tune::TunedConfig>> table;
    {
      std::lock_guard<std::mutex> lock(gen->mutex);
      auto it = gen->bindings.find(key);
      if (it != gen->bindings.end()) return it->second;
      table = gen->family_configs;
    }
    // Fingerprint + solver construction run outside the generation lock:
    // the fingerprint sweep is O(n²) and the bind coarsens/prewarms a
    // full hierarchy, neither of which may stall in-flight requests.
    auto binding = std::make_shared<OpBinding>();
    binding->op = op;  // pins identity() against allocator reuse
    binding->fp = grid::fingerprint(op);
    const std::vector<grid::FamilyMatch> ranked =
        grid::rank_families(binding->fp);
    binding->nearest = ranked.front().family;
    binding->nearest_family = to_string(ranked.front().family);
    binding->nearest_distance = ranked.front().distance;
    // The construction config serves as the fallback tables for its own
    // family unless an install_family extension superseded it.  Reading
    // gen->config without the lock is safe: it is immutable for the
    // generation's lifetime.
    const std::string primary_family = gen->config.op_family;
    if (table.find(primary_family) == table.end()) {
      table[primary_family] =
          std::shared_ptr<const tune::TunedConfig>(gen, &gen->config);
    }
    // Escalation ladder: every family with tables deep enough for this
    // operator, nearest first.  The served family is the first rung.
    const int level = level_of_size(op.n());
    std::vector<tune::FamilyConfig> ladder;
    for (const grid::FamilyMatch& match : ranked) {
      const std::string name = to_string(match.family);
      auto it = table.find(name);
      if (it == table.end() || it->second->max_level() < level) continue;
      if (ladder.empty()) {
        binding->served_family = name;
        binding->served_distance = match.distance;
      }
      ladder.push_back({name, it->second});
    }
    if (ladder.empty()) {
      throw ConfigError(
          "SolveService: no tuned family covers level " +
          std::to_string(level) + " (n=" + std::to_string(op.n()) +
          ") — train deeper tables before routing this size");
    }
    binding->matched =
        binding->served_distance <= route_policy_.match_threshold;
    binding->served_config = ladder.front().config;
    binding->solver = std::make_shared<const tune::DynamicSolver>(
        op, std::move(ladder), gen->engine->scheduler(),
        gen->engine->direct(), gen->engine->scratch(),
        gen->engine->relax());
    {
      std::lock_guard<std::mutex> lock(gen->mutex);
      // install_family may have landed while this binding was building;
      // if the freshly installed tables are exactly the ones this binding
      // settled for a stand-in over, rebuild against the new map rather
      // than caching a decision the install just invalidated.
      if (binding->served_family != binding->nearest_family &&
          gen->family_configs.count(binding->nearest_family) != 0 &&
          table.count(binding->nearest_family) == 0) {
        continue;
      }
      auto [it, inserted] = gen->bindings.emplace(key, std::move(binding));
      // An emplace race keeps the winner; the loser's solver (and its
      // prewarmed grids, already returned to the shared pool) is dropped.
      return it->second;
    }
  }
}

bool SolveService::start_family_retune(OperatorFamily family) {
  if (!family_retune_fn_) return false;
  const std::string name = to_string(family);
  {
    std::lock_guard<std::mutex> lock(route_mutex_);
    if (retuned_families_.count(name) != 0) return false;
  }
  bool expected = false;
  if (!retune_in_progress_.compare_exchange_strong(
          expected, true, std::memory_order_acq_rel)) {
    // A drift or family retune is mid-flight.  Deliberately do NOT mark
    // this family handled: a later request for the same fingerprint
    // retries once the thread frees up.
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(route_mutex_);
    if (!retuned_families_.insert(name).second) {
      // Lost a race with another thread that marked it first.
      retune_in_progress_.store(false, std::memory_order_release);
      return false;
    }
  }
  // The CAS read false, so any previous retune thread has published its
  // result and is exiting; join reclaims it before the handle is reused.
  if (retune_thread_.joinable()) retune_thread_.join();
  family_retunes_total_.add(1);
  retune_gauge_.set(1.0);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.family_retunes;
  }
  retune_thread_ = std::thread([this, family, name] {
    try {
      install_family(family_retune_fn_(family));
    } catch (...) {
      retune_failures_total_.add(1);
      // A failed training run keeps serving the stand-in family and
      // re-arms: the next request for this fingerprint retries.
      std::lock_guard<std::mutex> lock(route_mutex_);
      retuned_families_.erase(name);
    }
    retune_gauge_.set(0.0);
    retune_in_progress_.store(false, std::memory_order_release);
  });
  return true;
}

SolveStats SolveService::solve_op(const grid::StencilOp& op, Grid2D& x,
                                  const Grid2D& b,
                                  const SolveRequest& request,
                                  tune::DynamicResult* detail) {
  SolveStats stats;
  std::shared_ptr<const OpBinding> binding;
  tune::DynamicResult result;
  bool retune_fired = false;
  const std::shared_ptr<Generation> gen = current_generation();
  const double t0 = now_seconds();
  try {
    if (request.fmg) {
      throw ConfigError(
          "SolveService: solve_op drives tuned V variants; FMG requests "
          "must go through solve() on a trained family");
    }
    binding = binding_for(gen, op);
    if (!binding->matched) {
      // Outside every tuned family's threshold: serve from the nearest
      // stand-in, and train the real family in the background — once.
      // (When the nearest family already has tables, the binding is
      // served by them and there is nothing better to train.)
      if (binding->served_family != binding->nearest_family) {
        retune_fired = start_family_retune(binding->nearest);
      }
    }
    double target = request.target_accuracy;
    if (request.accuracy_index >= 0) {
      if (request.accuracy_index >=
          binding->served_config->accuracy_count()) {
        throw ConfigError(
            "SolveService: accuracy_index " +
            std::to_string(request.accuracy_index) +
            " is outside family '" + binding->served_family +
            "' tuned ladder [0, " +
            std::to_string(binding->served_config->accuracy_count()) + ")");
      }
      target = binding->served_config
                   ->accuracies()[static_cast<std::size_t>(
                       request.accuracy_index)];
    } else if (request.target_accuracy <= 0.0) {
      throw ConfigError(
          "SolveService: request selects no accuracy — set accuracy_index "
          "to a tuned ladder index or target_accuracy to a positive "
          "accuracy level (the default-constructed request is deliberately "
          "invalid)");
    }
    result = binding->solver->solve(x, b, target,
                                    route_policy_.max_iterations,
                                    request.profile.get());
    stats.seconds = result.seconds;
    stats.n = binding->solver->n();
    stats.level = binding->solver->level();
    stats.accuracy_index = result.final_accuracy_index;
    stats.iterations = result.iterations;
    stats.converged = result.converged;
    stats.initial_residual = result.initial_residual;
    stats.final_residual = result.final_residual;
    stats.residual_checked = true;
    stats.generation = gen->id;
    stats.phases = request.profile;
  } catch (...) {
    failures_total_.add(1);
    requests_error_.add(1);
    failure_seconds_.record(now_seconds() - t0);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.failures;
    throw;
  }
  // Routing telemetry.  Outcome precedence: a request that fired a
  // family retune is the interesting event even if it also escalated;
  // an escalated request (cross-family switch mid-solve, or served
  // outside the threshold) beats a plain match.
  const char* outcome = retune_fired ? "retune"
                        : (result.family_switches > 0 || !binding->matched)
                            ? "escalated"
                            : "matched";
  route_counter(binding->served_family, outcome).add(1);
  route_distance_.record(binding->served_distance);
  if (result.escalations > 0) route_escalations_.add(result.escalations);
  if (result.family_switches > 0) {
    route_switches_.add(result.family_switches);
  }
  // Routed solves do not land in the per-(n, acc) latency histograms or
  // the drift watcher: their adaptive invocation count makes the latency
  // incomparable to the fixed-shape baseline distribution.
  if (stats.converged) {
    requests_ok_.add(1);
  } else {
    failure_seconds_.record(stats.seconds);
    requests_unconverged_.add(1);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.requests;
    ++stats_.routed_requests;
    stats_.busy_seconds += stats.seconds;
  }
  if (detail != nullptr) *detail = std::move(result);
  return stats;
}

ServiceStats SolveService::stats() const {
  ServiceStats out;
  std::shared_ptr<Generation> gen;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = stats_;
    out.retired_generations = retired_.size();
    gen = current_;
  }
  {
    std::lock_guard<std::mutex> lock(gen->mutex);
    out.sessions = gen->sessions.size();
  }
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.session_bytes = session_bytes_.load(std::memory_order_acquire);
  out.scratch_hit_rate = gen->engine->scratch().stats().hit_rate();
  out.scheduler_steals = gen->engine->scheduler().steal_count();
  return out;
}

std::size_t SolveService::trim() {
  // Trim EVERY retained generation's engine, deduplicated by identity —
  // after an install the retired generation's engine still holds its
  // prewarmed pool, and trimming only the live engine (the old bug) left
  // those bytes resident until process exit.  Generations that share an
  // engine (config-only installs) are trimmed once.
  std::vector<std::shared_ptr<Generation>> gens;
  std::vector<std::shared_ptr<Generation>> reclaimed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Reclaim first: an unpinned retired generation's pool bytes are
    // better returned by destruction than kept hot by a trim.
    reclaim_retired_locked(reclaimed);
    gens.reserve(retired_.size() + 1);
    for (const auto& gen : retired_) gens.push_back(gen);
    gens.push_back(current_);
  }
  reclaimed.clear();  // destruct retired sessions/engines outside mutex_
  std::size_t freed = 0;
  std::vector<Engine*> seen;
  for (const auto& gen : gens) {
    if (std::find(seen.begin(), seen.end(), gen->engine) != seen.end()) {
      continue;
    }
    seen.push_back(gen->engine);
    freed += gen->engine->scratch().trim();
  }
  trims_total_.add(1);
  trim_bytes_total_.add(static_cast<std::int64_t>(freed));
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.trims;
  stats_.trim_bytes += static_cast<std::int64_t>(freed);
  return freed;
}

Engine& SolveService::engine() const { return *current_generation()->engine; }

const tune::TunedConfig& SolveService::config() const {
  // Safe to return by reference: generations are retained (retired_) for
  // the service's lifetime, so the referent outlives every caller.
  return current_generation()->config;
}

obs::RegistrySnapshot SolveService::metrics_snapshot() {
  const std::shared_ptr<Generation> gen = current_generation();
  gen->engine->publish_metrics(metrics_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    metrics_.gauge("pbmg_service_busy_seconds").set(stats_.busy_seconds);
  }
  {
    std::lock_guard<std::mutex> lock(gen->mutex);
    metrics_.gauge("pbmg_service_sessions")
        .set(static_cast<double>(gen->sessions.size()));
  }
  return metrics_.snapshot();
}

}  // namespace pbmg
