#include "tune/table.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "grid/level.h"
#include "support/error.h"

namespace pbmg::tune {

namespace {

const char* v_kind_name(VKind kind) {
  switch (kind) {
    case VKind::kDirect: return "direct";
    case VKind::kIterSor: return "sor";
    case VKind::kRecurse: return "recurse";
  }
  throw InvalidArgument("invalid VKind");
}

VKind parse_v_kind(const std::string& name) {
  if (name == "direct") return VKind::kDirect;
  if (name == "sor") return VKind::kIterSor;
  if (name == "recurse") return VKind::kRecurse;
  throw ConfigError("unknown V choice kind '" + name + "'");
}

const char* fmg_kind_name(FmgKind kind) {
  switch (kind) {
    case FmgKind::kDirect: return "direct";
    case FmgKind::kEstimateThenSor: return "estimate+sor";
    case FmgKind::kEstimateThenRecurse: return "estimate+recurse";
  }
  throw InvalidArgument("invalid FmgKind");
}

FmgKind parse_fmg_kind(const std::string& name) {
  if (name == "direct") return FmgKind::kDirect;
  if (name == "estimate+sor") return FmgKind::kEstimateThenSor;
  if (name == "estimate+recurse") return FmgKind::kEstimateThenRecurse;
  throw ConfigError("unknown FMG choice kind '" + name + "'");
}

/// JSON cannot represent infinities; exact solves report infinite accuracy,
/// which we clamp to a huge finite sentinel for serialization.
double finite_cap(double v) {
  if (std::isnan(v)) return 0.0;
  return std::isfinite(v) ? v : 1e300;
}

/// Parses a serialized smoother name; a missing key (configs written
/// before the line-smoother era) reads as the historical point SOR.  The
/// cache key's v3 → v4 bump keeps stale *cache* entries from being loaded
/// at all; this default is for explicitly saved config files.  An
/// *unrecognised* name (e.g. from a future-version file) surfaces as
/// ConfigError, which every cache loader treats as a clean miss.
solvers::RelaxKind smoother_from_json(const Json& j) {
  const std::string name = j.get("smoother", std::string("point_rb"));
  try {
    return solvers::parse_relax_kind(name);
  } catch (const InvalidArgument& e) {
    throw ConfigError(std::string("tuned-config: ") + e.what());
  }
}

/// Same contract for the coarsening field: missing reads as the legacy
/// averaged ladder (configs written before Galerkin RAP existed), an
/// unrecognised name is a ConfigError / clean cache miss.
grid::Coarsening coarsening_from_json(const Json& j) {
  const std::string name = j.get("coarsening", std::string("avg"));
  try {
    return grid::parse_coarsening(name);
  } catch (const InvalidArgument& e) {
    throw ConfigError(std::string("tuned-config: ") + e.what());
  }
}

Json v_entry_to_json(const VEntry& e) {
  Json j = Json::object();
  j.set("kind", v_kind_name(e.choice.kind));
  j.set("sub_accuracy", e.choice.sub_accuracy);
  j.set("iterations", e.choice.iterations);
  j.set("smoother", solvers::to_string(e.choice.smoother));
  j.set("coarsening", grid::to_string(e.choice.coarsening));
  j.set("expected_time", finite_cap(e.expected_time));
  j.set("measured_accuracy", finite_cap(e.measured_accuracy));
  j.set("trained", e.trained);
  return j;
}

VEntry v_entry_from_json(const Json& j) {
  VEntry e;
  e.choice.kind = parse_v_kind(j.at("kind").as_string());
  e.choice.sub_accuracy = static_cast<int>(j.at("sub_accuracy").as_int());
  e.choice.iterations = static_cast<int>(j.at("iterations").as_int());
  e.choice.smoother = smoother_from_json(j);
  e.choice.coarsening = coarsening_from_json(j);
  e.expected_time = j.at("expected_time").as_double();
  e.measured_accuracy = j.at("measured_accuracy").as_double();
  e.trained = j.at("trained").as_bool();
  return e;
}

Json fmg_entry_to_json(const FmgEntry& e) {
  Json j = Json::object();
  j.set("kind", fmg_kind_name(e.choice.kind));
  j.set("estimate_accuracy", e.choice.estimate_accuracy);
  j.set("solve_accuracy", e.choice.solve_accuracy);
  j.set("iterations", e.choice.iterations);
  j.set("smoother", solvers::to_string(e.choice.smoother));
  j.set("coarsening", grid::to_string(e.choice.coarsening));
  j.set("expected_time", finite_cap(e.expected_time));
  j.set("measured_accuracy", finite_cap(e.measured_accuracy));
  j.set("trained", e.trained);
  return j;
}

FmgEntry fmg_entry_from_json(const Json& j) {
  FmgEntry e;
  e.choice.kind = parse_fmg_kind(j.at("kind").as_string());
  e.choice.estimate_accuracy =
      static_cast<int>(j.at("estimate_accuracy").as_int());
  e.choice.solve_accuracy = static_cast<int>(j.at("solve_accuracy").as_int());
  e.choice.iterations = static_cast<int>(j.at("iterations").as_int());
  e.choice.smoother = smoother_from_json(j);
  e.choice.coarsening = coarsening_from_json(j);
  e.expected_time = j.at("expected_time").as_double();
  e.measured_accuracy = j.at("measured_accuracy").as_double();
  e.trained = j.at("trained").as_bool();
  return e;
}

}  // namespace

TunedConfig::TunedConfig(std::vector<double> accuracies, int max_level)
    : accuracies_(std::move(accuracies)), max_level_(max_level) {
  PBMG_CHECK(!accuracies_.empty(), "TunedConfig: empty accuracy ladder");
  for (std::size_t i = 1; i < accuracies_.size(); ++i) {
    PBMG_CHECK(accuracies_[i] > accuracies_[i - 1],
               "TunedConfig: accuracies must be strictly ascending");
  }
  PBMG_CHECK(accuracies_.front() > 1.0,
             "TunedConfig: accuracy levels must exceed 1 (no-op ratio)");
  PBMG_CHECK(max_level_ >= 1 && max_level_ <= 20,
             "TunedConfig: max_level must be in [1, 20]");
  v_.assign(static_cast<std::size_t>(max_level_) + 1,
            std::vector<VEntry>(accuracies_.size()));
  fmg_.assign(static_cast<std::size_t>(max_level_) + 1,
              std::vector<FmgEntry>(accuracies_.size()));
  // Level 1 (N = 3) is the base case: solved directly at every accuracy.
  for (std::size_t i = 0; i < accuracies_.size(); ++i) {
    VEntry& ve = v_[1][i];
    ve.choice.kind = VKind::kDirect;
    ve.trained = true;
    ve.measured_accuracy = std::numeric_limits<double>::infinity();
    FmgEntry& fe = fmg_[1][i];
    fe.choice.kind = FmgKind::kDirect;
    fe.trained = true;
    fe.measured_accuracy = std::numeric_limits<double>::infinity();
  }
}

int TunedConfig::accuracy_index(double accuracy) const {
  for (std::size_t i = 0; i < accuracies_.size(); ++i) {
    if (std::abs(std::log10(accuracies_[i]) - std::log10(accuracy)) < 1e-9) {
      return static_cast<int>(i);
    }
  }
  throw InvalidArgument("accuracy " + std::to_string(accuracy) +
                        " is not in this config's ladder");
}

void TunedConfig::check_cell(int level, int accuracy_index) const {
  PBMG_CHECK(level >= 1 && level <= max_level_,
             "TunedConfig: level out of range");
  PBMG_CHECK(accuracy_index >= 0 &&
                 accuracy_index < static_cast<int>(accuracies_.size()),
             "TunedConfig: accuracy index out of range");
}

VEntry& TunedConfig::v_entry(int level, int accuracy_index) {
  check_cell(level, accuracy_index);
  return v_[static_cast<std::size_t>(level)]
           [static_cast<std::size_t>(accuracy_index)];
}

const VEntry& TunedConfig::v_entry(int level, int accuracy_index) const {
  check_cell(level, accuracy_index);
  return v_[static_cast<std::size_t>(level)]
           [static_cast<std::size_t>(accuracy_index)];
}

FmgEntry& TunedConfig::fmg_entry(int level, int accuracy_index) {
  check_cell(level, accuracy_index);
  return fmg_[static_cast<std::size_t>(level)]
             [static_cast<std::size_t>(accuracy_index)];
}

const FmgEntry& TunedConfig::fmg_entry(int level, int accuracy_index) const {
  check_cell(level, accuracy_index);
  return fmg_[static_cast<std::size_t>(level)]
             [static_cast<std::size_t>(accuracy_index)];
}

Json TunedConfig::to_json() const {
  Json root = Json::object();
  root.set("format", "pbmg-tuned-config-v1");
  Json acc = Json::array();
  for (double a : accuracies_) acc.push_back(a);
  root.set("accuracies", std::move(acc));
  root.set("max_level", max_level_);
  root.set("profile", profile_name);
  root.set("distribution", distribution);
  root.set("op_family", op_family);
  root.set("seed", static_cast<std::int64_t>(seed));
  root.set("strategy", strategy);
  Json v_levels = Json::array();
  Json fmg_levels = Json::array();
  for (int level = 1; level <= max_level_; ++level) {
    Json v_row = Json::array();
    Json fmg_row = Json::array();
    for (int i = 0; i < accuracy_count(); ++i) {
      v_row.push_back(v_entry_to_json(v_entry(level, i)));
      fmg_row.push_back(fmg_entry_to_json(fmg_entry(level, i)));
    }
    v_levels.push_back(std::move(v_row));
    fmg_levels.push_back(std::move(fmg_row));
  }
  root.set("multigrid_v", std::move(v_levels));
  root.set("full_multigrid", std::move(fmg_levels));
  return root;
}

TunedConfig TunedConfig::from_json(const Json& json) {
  const std::string format = json.get("format", std::string());
  if (format != "pbmg-tuned-config-v1") {
    throw ConfigError("unsupported tuned-config format '" + format + "'");
  }
  std::vector<double> accuracies;
  for (const Json& a : json.at("accuracies").as_array()) {
    accuracies.push_back(a.as_double());
  }
  const int max_level = static_cast<int>(json.at("max_level").as_int());
  TunedConfig config(std::move(accuracies), max_level);
  config.profile_name = json.get("profile", std::string());
  config.distribution = json.get("distribution", std::string());
  // Configs written before operator families existed are Poisson by
  // definition (the cache key's version bump keeps them from being loaded
  // for any other operator).
  config.op_family = json.get("op_family", std::string("poisson"));
  config.seed = static_cast<std::uint64_t>(json.get("seed", std::int64_t{0}));
  config.strategy = json.get("strategy", std::string("autotuned"));
  const auto& v_levels = json.at("multigrid_v").as_array();
  const auto& fmg_levels = json.at("full_multigrid").as_array();
  if (static_cast<int>(v_levels.size()) != max_level ||
      static_cast<int>(fmg_levels.size()) != max_level) {
    throw ConfigError("tuned-config level tables have wrong size");
  }
  for (int level = 1; level <= max_level; ++level) {
    const auto& v_row = v_levels[static_cast<std::size_t>(level - 1)].as_array();
    const auto& fmg_row =
        fmg_levels[static_cast<std::size_t>(level - 1)].as_array();
    if (static_cast<int>(v_row.size()) != config.accuracy_count() ||
        static_cast<int>(fmg_row.size()) != config.accuracy_count()) {
      throw ConfigError("tuned-config accuracy rows have wrong size");
    }
    for (int i = 0; i < config.accuracy_count(); ++i) {
      config.v_entry(level, i) =
          v_entry_from_json(v_row[static_cast<std::size_t>(i)]);
      config.fmg_entry(level, i) =
          fmg_entry_from_json(fmg_row[static_cast<std::size_t>(i)]);
    }
  }
  // Semantic validation: recursion must reference valid accuracy indices.
  for (int level = 1; level <= max_level; ++level) {
    for (int i = 0; i < config.accuracy_count(); ++i) {
      const VChoice& vc = config.v_entry(level, i).choice;
      if (vc.kind == VKind::kRecurse) {
        // kClassicalCoarse (-1) is the classical single-body V-cycle.
        if (vc.sub_accuracy < kClassicalCoarse ||
            vc.sub_accuracy >= config.accuracy_count()) {
          throw ConfigError("tuned-config: recurse sub_accuracy out of range");
        }
        if (level <= 1) {
          throw ConfigError("tuned-config: level 1 cannot recurse");
        }
      }
      const FmgChoice& fc = config.fmg_entry(level, i).choice;
      if (fc.kind != FmgKind::kDirect) {
        if (fc.estimate_accuracy < 0 ||
            fc.estimate_accuracy >= config.accuracy_count()) {
          throw ConfigError(
              "tuned-config: estimate_accuracy out of range");
        }
        if (level <= 1) {
          throw ConfigError("tuned-config: level 1 cannot estimate");
        }
      }
      if (fc.kind == FmgKind::kEstimateThenRecurse &&
          (fc.solve_accuracy < 0 ||
           fc.solve_accuracy >= config.accuracy_count())) {
        throw ConfigError("tuned-config: solve_accuracy out of range");
      }
    }
  }
  return config;
}

void TunedConfig::save(const std::string& path) const {
  write_text_file(path, to_json().dump(2) + "\n");
}

TunedConfig TunedConfig::load(const std::string& path) {
  return from_json(Json::parse(read_text_file(path)));
}

std::vector<double> paper_accuracies() {
  return {1e1, 1e3, 1e5, 1e7, 1e9};
}

namespace {

/// Shared walker over the trained RECURSE-style cells (V kRecurse and
/// FMG kEstimateThenRecurse — the cells that carry the smoother and
/// coarsening axes): true when `pred` holds for any of them in levels
/// [2, max_level].  One walker, so session prewarm / ladder
/// materialization can never desynchronize from what the executor runs.
template <typename Pred>
bool any_recurse_cell(const TunedConfig& config, int max_level, Pred pred) {
  const int top = std::min(max_level, config.max_level());
  for (int level = 2; level <= top; ++level) {
    for (int i = 0; i < config.accuracy_count(); ++i) {
      const VEntry& v = config.v_entry(level, i);
      if (v.trained && v.choice.kind == VKind::kRecurse &&
          pred(v.choice.smoother, v.choice.coarsening)) {
        return true;
      }
      const FmgEntry& f = config.fmg_entry(level, i);
      if (f.trained && f.choice.kind == FmgKind::kEstimateThenRecurse &&
          pred(f.choice.smoother, f.choice.coarsening)) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

bool config_uses_rap(const TunedConfig& config, int max_level) {
  return any_recurse_cell(
      config, max_level, [](solvers::RelaxKind, grid::Coarsening coarsening) {
        return coarsening == grid::Coarsening::kRap;
      });
}

bool config_uses_line_smoothers(const TunedConfig& config, int max_level) {
  return any_recurse_cell(
      config, max_level, [](solvers::RelaxKind smoother, grid::Coarsening) {
        return solvers::is_line_relax(smoother);
      });
}

namespace {

std::string accuracy_label(const TunedConfig& config, int index) {
  const double a = config.accuracies()[static_cast<std::size_t>(index)];
  const int exp = static_cast<int>(std::lround(std::log10(a)));
  std::ostringstream oss;
  oss << "10^" << exp;
  return oss.str();
}

}  // namespace

std::string smoother_tag(solvers::RelaxKind kind) {
  return kind == solvers::RelaxKind::kSor
             ? std::string()
             : " {" + solvers::to_string(kind) + "}";
}

std::string coarsening_tag(grid::Coarsening mode) {
  return mode == grid::Coarsening::kAverage
             ? std::string()
             : " {" + grid::to_string(mode) + "}";
}

std::string render_call_stack(const TunedConfig& config, int level,
                              int accuracy_index) {
  std::ostringstream out;
  int k = level;
  int i = accuracy_index;
  while (k >= 1) {
    const VEntry& entry = config.v_entry(k, i);
    out << "level " << (k < 10 ? " " : "") << k << " (N=" << size_of_level(k)
        << "): MULTIGRID-V[" << accuracy_label(config, i) << "] -> ";
    switch (entry.choice.kind) {
      case VKind::kDirect:
        out << "DIRECT\n";
        return out.str();
      case VKind::kIterSor:
        out << "SOR(w_opt) x" << entry.choice.iterations << "\n";
        return out.str();
      case VKind::kRecurse:
        if (entry.choice.sub_accuracy == kClassicalCoarse) {
          // The rest of the stack is the classical V ramp: one body per
          // level down to the direct base case.
          out << "RECURSE[classic-V] x" << entry.choice.iterations
              << smoother_tag(entry.choice.smoother)
              << coarsening_tag(entry.choice.coarsening) << "\n";
          return out.str();
        }
        out << "RECURSE[" << accuracy_label(config, entry.choice.sub_accuracy)
            << "] x" << entry.choice.iterations
            << smoother_tag(entry.choice.smoother)
            << coarsening_tag(entry.choice.coarsening) << "\n";
        i = entry.choice.sub_accuracy;
        k -= 1;
        break;
    }
  }
  return out.str();
}

std::string render_fmg_call_stack(const TunedConfig& config, int level,
                                  int accuracy_index) {
  std::ostringstream out;
  int k = level;
  int i = accuracy_index;
  while (k >= 1) {
    const FmgEntry& entry = config.fmg_entry(k, i);
    out << "level " << (k < 10 ? " " : "") << k << " (N=" << size_of_level(k)
        << "): FULL-MG[" << accuracy_label(config, i) << "] -> ";
    switch (entry.choice.kind) {
      case FmgKind::kDirect:
        out << "DIRECT\n";
        return out.str();
      case FmgKind::kEstimateThenSor:
        out << "ESTIMATE[" << accuracy_label(config, entry.choice.estimate_accuracy)
            << "] + SOR(w_opt) x" << entry.choice.iterations << "\n";
        i = entry.choice.estimate_accuracy;
        k -= 1;
        break;
      case FmgKind::kEstimateThenRecurse:
        out << "ESTIMATE[" << accuracy_label(config, entry.choice.estimate_accuracy)
            << "] + RECURSE[" << accuracy_label(config, entry.choice.solve_accuracy)
            << "] x" << entry.choice.iterations
            << smoother_tag(entry.choice.smoother)
            << coarsening_tag(entry.choice.coarsening) << "\n";
        i = entry.choice.estimate_accuracy;
        k -= 1;
        break;
    }
  }
  return out.str();
}

}  // namespace pbmg::tune
