#pragma once

#include <string>
#include <vector>

#include "solvers/relax.h"
#include "support/json.h"

/// \file table.h
/// The tuned-algorithm representation: the data a PetaBricks configuration
/// file would hold after autotuning (§3.2.1).
///
/// For each recursion level k (grid side 2^k + 1) and each discrete
/// accuracy index i, the tables record which choice the dynamic program
/// selected for MULTIGRID-V_i (paper §2.3) and FULL-MULTIGRID_i (§2.4),
/// together with the iteration counts the trainer measured.  Executors
/// (tune/executor.h) interpret these tables; they are the reified
/// equivalent of the code paths a PetaBricks binary would specialise.

namespace pbmg::tune {

/// The three algorithmic choices of MULTIGRID-V_i (paper §2.3, line 1-5).
enum class VKind {
  kDirect,   ///< banded Cholesky solve
  kIterSor,  ///< SOR(ω_opt) iterated `iterations` times
  kRecurse,  ///< RECURSE body iterated `iterations` times with coarse call
             ///< MULTIGRID-V_{sub_accuracy}
};

/// Sentinel sub-accuracy for kRecurse: the coarse call is a *single*
/// recursion body per level (the classical V-cycle) instead of an
/// accuracy-certified MULTIGRID-V_j.  The paper's space bottoms out at
/// accuracy 10¹, which over-solves coarse corrections on slowly
/// converging operators (each level then needs several certified bodies
/// and the work compounds exponentially down the hierarchy); the
/// classical cycle is the escape hatch the autotuner may select.
inline constexpr int kClassicalCoarse = -1;

/// One tuned decision for MULTIGRID-V_i at a level.
struct VChoice {
  VKind kind = VKind::kDirect;
  int sub_accuracy = -1;  ///< j of the coarse MULTIGRID-V_j, or
                          ///< kClassicalCoarse (kRecurse only)
  int iterations = 0;     ///< SOR sweeps or RECURSE iterations (non-direct)
  /// Smoother of the RECURSE body's pre/post sweeps (kRecurse only; the
  /// kIterSor shortcut stays point SOR at ω_opt, the paper's iterative
  /// baseline).  The trainer enumerates this per level — the relaxation
  /// axis of the choice space — so line smoothers are *discovered* for
  /// the anisotropic operator families rather than hard-coded.
  solvers::RelaxKind smoother = solvers::RelaxKind::kSor;
  /// Which coarse-operator ladder the RECURSE body corrects against
  /// (kRecurse only): the legacy averaged-coefficient 5-point ladder or
  /// the exact Galerkin R·A·P 9-point ladder (grid/stencil_op.h).  The
  /// second tuned axis this table carries; serialized as "coarsening"
  /// with a missing field reading as the legacy kAverage.
  grid::Coarsening coarsening = grid::Coarsening::kAverage;
};

/// The choices of FULL-MULTIGRID_i (paper §2.4): direct, or an ESTIMATE_j
/// phase followed by either SOR or RECURSE_m iteration.
enum class FmgKind {
  kDirect,
  kEstimateThenSor,
  kEstimateThenRecurse,
};

/// One tuned decision for FULL-MULTIGRID_i at a level.
struct FmgChoice {
  FmgKind kind = FmgKind::kDirect;
  int estimate_accuracy = -1;  ///< j of ESTIMATE_j (non-direct kinds)
  int solve_accuracy = -1;     ///< m of RECURSE_m (kEstimateThenRecurse)
  int iterations = 0;          ///< SOR sweeps or RECURSE iterations
  /// Smoother of the solve phase's RECURSE bodies (kEstimateThenRecurse
  /// only); inherited from the V cell that tuned RECURSE_m at this level
  /// so the FMG candidate count stays unchanged (see trainer.cpp).
  solvers::RelaxKind smoother = solvers::RelaxKind::kSor;
  /// Coarsening of the solve phase's RECURSE bodies, inherited from the
  /// same V cell as the smoother; missing ⇒ legacy kAverage.
  grid::Coarsening coarsening = grid::Coarsening::kAverage;
};

/// A tuned table cell together with the measurements that selected it.
template <typename Choice>
struct TunedEntry {
  Choice choice;
  double expected_time = 0.0;      ///< trainer's time estimate (seconds)
  double measured_accuracy = 0.0;  ///< worst accuracy over training inputs
  bool trained = false;            ///< false for never-trained cells
};

using VEntry = TunedEntry<VChoice>;
using FmgEntry = TunedEntry<FmgChoice>;

/// Complete autotuned configuration: both tables plus provenance.
class TunedConfig {
 public:
  TunedConfig() = default;

  /// Creates an untrained config covering levels [1, max_level] with the
  /// given discrete accuracy ladder (ascending, e.g. {10,1e3,...,1e9}).
  /// Level-1 (N = 3) cells are pre-set to the direct solve, the base case
  /// of every algorithm in the paper.
  TunedConfig(std::vector<double> accuracies, int max_level);

  int max_level() const { return max_level_; }
  int accuracy_count() const { return static_cast<int>(accuracies_.size()); }
  const std::vector<double>& accuracies() const { return accuracies_; }

  /// Index of the given accuracy value in the ladder; throws
  /// InvalidArgument when absent.
  int accuracy_index(double accuracy) const;

  /// Cell accessors; level in [1, max_level], index in [0, accuracy_count).
  VEntry& v_entry(int level, int accuracy_index);
  const VEntry& v_entry(int level, int accuracy_index) const;
  FmgEntry& fmg_entry(int level, int accuracy_index);
  const FmgEntry& fmg_entry(int level, int accuracy_index) const;

  /// Provenance (stored in the config file for reproducibility).
  std::string profile_name;   ///< machine profile tuned on
  std::string distribution;   ///< training distribution name
  std::string op_family = "poisson";  ///< operator family tuned on
  std::uint64_t seed = 0;     ///< training RNG seed
  std::string strategy;       ///< "autotuned" or a heuristic label

  /// Serialization (see config file format in README).
  Json to_json() const;
  static TunedConfig from_json(const Json& json);

  /// File convenience wrappers.
  void save(const std::string& path) const;
  static TunedConfig load(const std::string& path);

 private:
  void check_cell(int level, int accuracy_index) const;

  std::vector<double> accuracies_;
  int max_level_ = 0;
  // Indexed [level][accuracy]; level 0 is unused padding so that
  // tables_[k] corresponds to recursion level k.
  std::vector<std::vector<VEntry>> v_;
  std::vector<std::vector<FmgEntry>> fmg_;
};

/// The accuracy ladder used throughout the paper's evaluation:
/// {10, 10³, 10⁵, 10⁷, 10⁹}.
std::vector<double> paper_accuracies();

/// True when any trained cell at levels [2, max_level] corrects against
/// the Galerkin RAP ladder — executors and sessions use this to decide
/// whether the second operator hierarchy must be materialized at all.
bool config_uses_rap(const TunedConfig& config, int max_level);

/// True when any trained cell at levels [2, max_level] relaxes with a
/// line smoother — sessions use this to prewarm the Thomas workspace
/// grids next to the cycle temporaries.
bool config_uses_line_smoothers(const TunedConfig& config, int max_level);

/// " {line_x}"-style rendering suffix for non-default smoothers; empty
/// for point SOR, so the historical point-only renderings are unchanged.
/// Shared by the call-stack renderers and the trainer's progress log.
std::string smoother_tag(solvers::RelaxKind kind);

/// " {rap}"-style suffix for non-default coarsening; empty for the legacy
/// averaged ladder, so historical renderings are unchanged.
std::string coarsening_tag(grid::Coarsening mode);

/// Renders the call-stack view of a tuned MULTIGRID-V_i (paper Figure 4):
/// one line per recursion level showing which accuracy variant the tuned
/// algorithm invokes and what it does there.
std::string render_call_stack(const TunedConfig& config, int level,
                              int accuracy_index);

/// Same for FULL-MULTIGRID_i.
std::string render_fmg_call_stack(const TunedConfig& config, int level,
                                  int accuracy_index);

}  // namespace pbmg::tune
