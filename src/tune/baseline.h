#pragma once

#include <cstdint>

#include "engine/engine.h"
#include "obs/drift.h"
#include "tune/table.h"

/// \file baseline.h
/// Baseline latency measurement for tuned configurations.
///
/// A tuned config's expected per-request latency is part of what the
/// tuning measured — it is only meaningful on the machine state the DP
/// ran under.  This module captures that expectation explicitly: right
/// after training, measure_latency_baseline times a handful of solves
/// per (n × accuracy) cell through a real SolveSession-equivalent path
/// (a TunedExecutor on the tuning engine) and snapshots the resulting
/// histograms into an obs::LatencyBaseline.  The baseline travels with
/// the tuned tables (config-cache schema v7 stores both in one JSON
/// document) and seeds SolveService's DriftWatcher, closing the loop the
/// ROADMAP calls "drift detection on live telemetry".

namespace pbmg::tune {

/// Knobs for measure_latency_baseline.  The defaults keep the
/// measurement a small constant addition to training time: a few timed
/// solves per cell is enough, because the drift tests compare p90s at
/// ≈1.16× bucket resolution against thresholds of 1.5×, not exact
/// quantiles.
struct BaselineOptions {
  int samples = 5;           ///< timed solves per (level × accuracy) cell
  int min_level = 2;         ///< smallest measured level (side 2^k + 1)
  int max_level = 0;         ///< 0 = the config's trained top level
  bool include_fmg = false;  ///< also time FMG solves (own fmg=true keys)
  std::uint64_t seed = 20091114;  ///< RHS draw for the timed instances
};

/// Measures the baseline latency distribution of `config` executed on
/// `engine` (which must carry the profile/relax the config was trained
/// under — same contract as executing the config at all).  Operators are
/// built from the config's own op_family, so non-Poisson families are
/// timed against the coefficient hierarchies they serve.  One untimed
/// warm-up solve per level precedes the samples, mirroring a session's
/// prewarmed steady state.
obs::LatencyBaseline measure_latency_baseline(Engine& engine,
                                              const TunedConfig& config,
                                              const BaselineOptions& options =
                                                  {});

}  // namespace pbmg::tune
