#include "tune/config_cache.h"

#include <cmath>
#include <filesystem>
#include <sstream>

#include "support/argparse.h"

namespace pbmg::tune {

std::string default_cache_dir() {
  return env_string("PBMG_CACHE_DIR", "pbmg_tuned_cache");
}

namespace {

/// Compact token for the smoother candidate list, order included (the
/// measurement order drives budget pruning, so two orders can produce
/// different tables): point_rb → 'p', line_x → 'x', line_y → 'y',
/// line_zebra_alt → 'z' (default list: "zxyp").
std::string smoother_token(const TrainerOptions& options) {
  std::string token;
  for (const solvers::RelaxKind kind : options.smoothers) {
    switch (kind) {
      case solvers::RelaxKind::kSor: token += 'p'; break;
      case solvers::RelaxKind::kJacobi: token += 'j'; break;
      case solvers::RelaxKind::kLineX: token += 'x'; break;
      case solvers::RelaxKind::kLineY: token += 'y'; break;
      case solvers::RelaxKind::kLineZebraAlt: token += 'z'; break;
    }
  }
  return token;
}

/// Compact token for the coarsening candidate list, order included (the
/// measurement order drives budget pruning): kRap → 'r', kAverage → 'a'
/// (default list: "ra").
std::string coarsening_token(const TrainerOptions& options) {
  std::string token;
  for (const grid::Coarsening mode : options.coarsenings) {
    token += mode == grid::Coarsening::kRap ? 'r' : 'a';
  }
  return token;
}

}  // namespace

std::string config_cache_key(const TrainerOptions& options,
                             const std::string& profile_name,
                             const std::string& strategy) {
  std::ostringstream oss;
  // "v7": bump when runtime characteristics change enough to invalidate
  // previously tuned tables (v2 → v3: scenarios became first-class — the
  // operator family joined the key via ProblemSpec; v3 → v4: the smoother
  // became a tuned per-level choice; v4 → v5: coarsening became a tuned
  // per-level choice — tables gained the Galerkin-RAP axis; v5 → v6: the
  // kernel policy joined the searched-profile schema — the layout and
  // simd_width axes change the candidate stream and the timings behind
  // every stored table, so every v5 entry is a clean miss and gets
  // retrained with the packed-kernel dimensions enabled; v6 → v7:
  // searched entries gained the "latency_baseline" section — the tuned
  // tables' healthy latency distribution, which the serving-time drift
  // watcher needs, so baseline-less v6 entries are clean misses).
  oss << "v7_" << strategy << "_" << profile_name << "_"
      << options.problem_spec().cache_token() << "_m"
      << options.accuracies.size() << "_p"
      << static_cast<int>(std::lround(std::log10(options.accuracies.back())))
      << "_i" << options.training_instances << "_s" << options.seed << "_sm"
      << smoother_token(options) << "_co" << coarsening_token(options);
  return oss.str();
}

TunedConfig load_or_train(const TrainerOptions& options, Engine& engine,
                          const std::string& cache_dir,
                          int heuristic_sub_accuracy, bool* from_cache) {
  const std::string strategy =
      heuristic_sub_accuracy < 0
          ? "autotuned"
          : "heuristic" + std::to_string(heuristic_sub_accuracy);
  const std::string key =
      config_cache_key(options, engine.profile().name, strategy);
  const std::filesystem::path path =
      std::filesystem::path(cache_dir) / (key + ".json");

  if (std::filesystem::exists(path)) {
    try {
      TunedConfig config = TunedConfig::load(path.string());
      if (from_cache != nullptr) *from_cache = true;
      return config;
    } catch (const std::exception&) {
      // Corrupt or stale cache entry: retrain below and overwrite.  The
      // wide catch is deliberate — a truncated file surfaces as ConfigError,
      // but a damaged number literal can escape the JSON layer as
      // std::out_of_range, and both must count as cache misses.
    }
  }

  Trainer trainer(options, engine);
  TunedConfig config = heuristic_sub_accuracy < 0
                           ? trainer.train()
                           : trainer.train_heuristic(heuristic_sub_accuracy);
  std::error_code ec;
  std::filesystem::create_directories(cache_dir, ec);
  if (!ec) config.save(path.string());
  if (from_cache != nullptr) *from_cache = false;
  return config;
}

std::string searched_config_cache_key(
    const TrainerOptions& options,
    const search::ProfileSearchOptions& search_options) {
  const search::PopulationOptions& pop = search_options.population;
  std::ostringstream oss;
  // Everything that changes the candidate stream or its scores must be in
  // the key: search seed and budget (generations/population/offspring mix
  // — mutants and immigrants separately, they consume RNG differently),
  // plus the workload (level, operator family, distribution, accuracy to
  // two decimals of its exponent, cycle cap, instance count).
  oss << config_cache_key(options, search_options.base.name, "searched")
      << "_ss" << search_options.seed << "_g" << pop.generations << "_p"
      << pop.population << "_mu" << pop.mutants_per_elite << "_im"
      << pop.immigrants << "_wL" << search_options.level << "_wo"
      << to_string(search_options.op_family)
      << (search_options.relax_only ? "_wr1" : "") << "_wd"
      << to_string(search_options.distribution) << "_wa"
      << std::lround(100.0 * std::log10(search_options.target_accuracy))
      << "_wc" << search_options.max_cycles << "_wi"
      << search_options.instances;
  return oss.str();
}

SearchTrainResult load_or_search_train(
    const TrainerOptions& options,
    const search::ProfileSearchOptions& search_options,
    const std::string& cache_dir, bool* from_cache) {
  const std::string key = searched_config_cache_key(options, search_options);
  const std::filesystem::path path =
      std::filesystem::path(cache_dir) / (key + ".json");

  if (std::filesystem::exists(path)) {
    try {
      const Json doc = Json::parse(read_text_file(path.string()));
      SearchTrainResult result;
      // The tuned tables and the searched profile live in one document so
      // they cannot drift apart; from_json ignores the extra section.
      result.config = TunedConfig::from_json(doc);
      result.searched =
          search::SearchedProfile::from_json(doc.at("searched_profile"));
      // The baseline is mandatory in schema v7: a searched entry without
      // one cannot seed a drift watcher, so treat it as corrupt (a clean
      // miss) rather than silently serving a blind service.
      result.baseline =
          obs::LatencyBaseline::from_json(doc.at("latency_baseline"));
      // Validate the deserialized runtime parameters *here*, symmetric
      // with load_or_train's schema validation: callers install
      // result.searched straight into an Engine, whose constructor throws
      // (uncaught) for out-of-range tunables.  A corrupted entry must
      // surface as a cache miss and a re-search, never as a crash at
      // Engine construction.  SearchedProfile::from_json also validates;
      // the explicit call keeps the contract even if that serializer
      // loosens, and turns any violation into the catch below.
      solvers::validate_relax_tunables(result.searched.relax);
      PBMG_CHECK(result.searched.profile.threads >= 1,
                 "searched profile: threads must be >= 1");
      if (from_cache != nullptr) *from_cache = true;
      return result;
    } catch (const std::exception&) {
      // Corrupt or stale entry: redo the search and training below.
    }
  }

  SearchTrainResult result = search_then_train(options, search_options);
  Json doc = result.config.to_json();
  doc.set("searched_profile", result.searched.to_json());
  doc.set("latency_baseline", result.baseline.to_json());
  std::error_code ec;
  std::filesystem::create_directories(cache_dir, ec);
  if (!ec) write_text_file(path.string(), doc.dump(2) + "\n");
  if (from_cache != nullptr) *from_cache = false;
  return result;
}

}  // namespace pbmg::tune
