#include "tune/config_cache.h"

#include <cmath>
#include <filesystem>
#include <sstream>

#include "support/argparse.h"

namespace pbmg::tune {

std::string default_cache_dir() {
  return env_string("PBMG_CACHE_DIR", "pbmg_tuned_cache");
}

std::string config_cache_key(const TrainerOptions& options,
                             const std::string& profile_name,
                             const std::string& strategy) {
  std::ostringstream oss;
  // "v2": bump when runtime characteristics change enough to invalidate
  // previously tuned tables (e.g. the sequential-cutoff addition).
  oss << "v2_" << strategy << "_" << profile_name << "_"
      << to_string(options.distribution) << "_L" << options.max_level << "_m"
      << options.accuracies.size() << "_p"
      << static_cast<int>(std::lround(std::log10(options.accuracies.back())))
      << "_i" << options.training_instances << "_s" << options.seed;
  return oss.str();
}

TunedConfig load_or_train(const TrainerOptions& options, rt::Scheduler& sched,
                          solvers::DirectSolver& direct,
                          const std::string& cache_dir,
                          int heuristic_sub_accuracy, bool* from_cache) {
  const std::string strategy =
      heuristic_sub_accuracy < 0
          ? "autotuned"
          : "heuristic" + std::to_string(heuristic_sub_accuracy);
  const std::string key =
      config_cache_key(options, sched.profile().name, strategy);
  const std::filesystem::path path =
      std::filesystem::path(cache_dir) / (key + ".json");

  if (std::filesystem::exists(path)) {
    try {
      TunedConfig config = TunedConfig::load(path.string());
      if (from_cache != nullptr) *from_cache = true;
      return config;
    } catch (const Error&) {
      // Corrupt or stale cache entry: retrain below and overwrite.
    }
  }

  Trainer trainer(options, sched, direct);
  TunedConfig config = heuristic_sub_accuracy < 0
                           ? trainer.train()
                           : trainer.train_heuristic(heuristic_sub_accuracy);
  std::error_code ec;
  std::filesystem::create_directories(cache_dir, ec);
  if (!ec) config.save(path.string());
  if (from_cache != nullptr) *from_cache = false;
  return config;
}

}  // namespace pbmg::tune
