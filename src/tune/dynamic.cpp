#include "tune/dynamic.h"

#include <cmath>
#include <limits>
#include <utility>

#include "grid/grid_ops.h"
#include "grid/level.h"
#include "support/timer.h"

namespace pbmg::tune {

namespace {

std::vector<FamilyConfig> single_rung(const TunedConfig& config) {
  std::vector<FamilyConfig> ladder;
  ladder.push_back(
      {config.op_family, std::make_shared<const TunedConfig>(config)});
  return ladder;
}

}  // namespace

DynamicSolver::DynamicSolver(grid::StencilOp op,
                             std::vector<FamilyConfig> ladder,
                             rt::Scheduler& sched,
                             solvers::DirectSolver& direct,
                             grid::ScratchPool& pool,
                             const solvers::RelaxTunables& relax)
    : n_(op.n()),
      level_(level_of_size(op.n())),
      ladder_(std::move(ladder)),
      sched_(sched),
      direct_(direct),
      pool_(pool),
      relax_(relax),
      ops_(std::move(op)) {
  PBMG_CHECK(!ladder_.empty(), "DynamicSolver: escalation ladder is empty");
  bool any_rap = false;
  for (const FamilyConfig& rung : ladder_) {
    PBMG_CHECK(rung.config != nullptr,
               "DynamicSolver: null config in escalation ladder");
    PBMG_CHECK(rung.config->max_level() >= level_,
               "DynamicSolver: ladder config for family '" + rung.family +
                   "' trained up to level " +
                   std::to_string(rung.config->max_level()) +
                   " cannot solve level " + std::to_string(level_));
    any_rap = any_rap || config_uses_rap(*rung.config, level_);
  }
  // Bind-time prewarm, mirroring SolveSession: coarsen the coefficient
  // ladders once (the Galerkin ladder only if some bound config asks for
  // RAP cells), build one executor per family against the shared
  // hierarchies, and pack the SoA streams when the tuned kernel layout is
  // packed — so no solve() call ever pays setup inside its timed window.
  if (any_rap) {
    ops_rap_ =
        grid::StencilHierarchy(ops_.at(level_), grid::Coarsening::kRap);
  }
  executors_.reserve(ladder_.size());
  for (const FamilyConfig& rung : ladder_) {
    executors_.push_back(std::make_unique<TunedExecutor>(
        *rung.config, sched_, direct_, pool_, nullptr, relax_, &ops_,
        ops_rap_.top_level() >= 1 ? &ops_rap_ : nullptr));
  }
  if (relax_.kernels.layout == grid::StencilLayout::kPacked) {
    ops_.prewarm_packed();
    if (ops_rap_.top_level() >= 1) ops_rap_.prewarm_packed();
  }
}

DynamicSolver::DynamicSolver(const TunedConfig& config, grid::StencilOp op,
                             rt::Scheduler& sched,
                             solvers::DirectSolver& direct,
                             grid::ScratchPool& pool,
                             const solvers::RelaxTunables& relax)
    : DynamicSolver(std::move(op), single_rung(config), sched, direct, pool,
                    relax) {}

std::vector<std::string> DynamicSolver::families() const {
  std::vector<std::string> names;
  names.reserve(ladder_.size());
  for (const FamilyConfig& rung : ladder_) names.push_back(rung.family);
  return names;
}

double DynamicSolver::residual_norm(const Grid2D& x, const Grid2D& b) const {
  auto lease = pool_.acquire(n_);
  grid::residual_op(op(), x, b, lease.get(), sched_, relax_.kernels);
  return grid::norm2_interior(lease.get(), sched_);
}

DynamicResult DynamicSolver::solve(Grid2D& x, const Grid2D& b,
                                   double target_reduction,
                                   int max_iterations,
                                   obs::PhaseProfile* profile) const {
  PBMG_CHECK(target_reduction >= 1.0,
             "DynamicSolver: target_reduction must be >= 1");
  PBMG_CHECK(x.n() == n_ && b.n() == n_,
             "DynamicSolver: operand size mismatch (solver is bound to n=" +
                 std::to_string(n_) + ")");

  DynamicResult result;
  result.final_family = ladder_.front().family;
  const double r0 = residual_norm(x, b);
  result.initial_residual = r0;
  result.final_residual = r0;
  if (r0 == 0.0) {
    // Already exact (or an all-zero problem): nothing to run, and by the
    // residual-audit contract an exact iterate counts as converged.
    result.converged = true;
    result.residual_reduction = std::numeric_limits<double>::infinity();
    return result;
  }
  const double r_target = r0 / target_reduction;

  std::size_t rung = 0;  // current family on the cross-family ladder
  int index = 0;         // accuracy index within the current family
  double r_prev = r0;
  double r_now = r0;
  for (int it = 1; it <= max_iterations; ++it) {
    const TunedConfig& config = *ladder_[rung].config;
    // Only tuned-variant invocations are timed; the feedback residual
    // norms below run outside the window (honest-stats contract).
    const double t0 = now_seconds();
    const int cycles =
        executors_[rung]->run_v(x, b, index, profile);
    result.seconds += now_seconds() - t0;
    result.iterations = it;
    r_now = residual_norm(x, b);
    result.variants.push_back({ladder_[rung].family, index, cycles,
                               r_prev > 0.0 ? r_prev / r_now : 1.0});
    if (r_now <= r_target) break;
    // Feature of the intermediate state (paper §6): the per-invocation
    // residual reduction.  A variant of accuracy class p_i should shrink
    // the residual by roughly p_i on inputs of the family it was trained
    // on; demand a conservative slice of that and escalate when the input
    // responds worse than its class promises — first up the current
    // family's accuracy ladder, then across to the next-nearest family's
    // tables once this family's ladder is exhausted.
    const double measured = r_prev > 0.0 ? r_prev / r_now : 1.0;
    const double promised =
        config.accuracies()[static_cast<std::size_t>(index)];
    if (measured < std::sqrt(promised)) {
      if (index + 1 < config.accuracy_count()) {
        ++index;
        ++result.escalations;
      } else if (rung + 1 < ladder_.size()) {
        ++rung;
        ++result.family_switches;
        // Carry the escalation depth into the new family (its tables are
        // presumed better matched, but the input already proved it needs
        // the deep end of a ladder); clamp in case ladders differ.
        index = std::min(index, ladder_[rung].config->accuracy_count() - 1);
      }
    }
    r_prev = r_now;
  }
  // Out-of-timed-window residual audit: convergence is judged from a
  // fresh residual of the final iterate, not the in-loop feedback value.
  const double r_final = residual_norm(x, b);
  result.final_residual = r_final;
  result.residual_reduction =
      r_final > 0.0 ? r0 / r_final : std::numeric_limits<double>::infinity();
  result.converged = std::isfinite(r_final) && r_final <= r_target;
  result.final_accuracy_index = index;
  result.final_family = ladder_[rung].family;
  return result;
}

}  // namespace pbmg::tune
