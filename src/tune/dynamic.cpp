#include "tune/dynamic.h"

#include <cmath>

#include "grid/grid_ops.h"

namespace pbmg::tune {

DynamicSolver::DynamicSolver(const TunedConfig& config, rt::Scheduler& sched,
                             solvers::DirectSolver& direct,
                             grid::ScratchPool& pool,
                             const solvers::RelaxTunables& relax)
    : config_(config),
      sched_(sched),
      direct_(direct),
      pool_(pool),
      relax_(relax) {}

double DynamicSolver::residual_norm(const Grid2D& x, const Grid2D& b) const {
  auto lease = pool_.acquire(x.n());
  grid::residual(x, b, lease.get(), sched_);
  return grid::norm2_interior(lease.get(), sched_);
}

DynamicResult DynamicSolver::solve(Grid2D& x, const Grid2D& b,
                                   double target_reduction,
                                   int max_iterations) const {
  PBMG_CHECK(target_reduction >= 1.0,
             "DynamicSolver: target_reduction must be >= 1");
  PBMG_CHECK(x.n() == b.n(), "DynamicSolver: grid size mismatch");
  TunedExecutor executor(config_, sched_, direct_, pool_, nullptr, relax_);

  DynamicResult result;
  const double r0 = residual_norm(x, b);
  if (r0 == 0.0) {
    result.converged = true;
    result.residual_reduction = std::numeric_limits<double>::infinity();
    return result;
  }
  const double r_target = r0 / target_reduction;

  int index = 0;  // start with the cheapest tuned variant
  double r_prev = r0;
  for (int it = 1; it <= max_iterations; ++it) {
    executor.run_v(x, b, index);
    result.iterations = it;
    const double r_now = residual_norm(x, b);
    result.residual_reduction = r0 / r_now;
    if (r_now <= r_target) {
      result.converged = true;
      break;
    }
    // Feature of the intermediate state (paper §6): the per-invocation
    // residual reduction.  A variant of accuracy class p_i should shrink
    // the residual by roughly p_i on in-distribution inputs; demand a
    // conservative slice of that and escalate when the input responds
    // worse than its class promises.
    const double measured = r_prev > 0.0 ? r_prev / r_now : 1.0;
    const double promised =
        config_.accuracies()[static_cast<std::size_t>(index)];
    if (measured < std::sqrt(promised) &&
        index + 1 < config_.accuracy_count()) {
      ++index;
      ++result.escalations;
    }
    r_prev = r_now;
  }
  result.final_accuracy_index = index;
  return result;
}

}  // namespace pbmg::tune
