#pragma once

#include "grid/grid2d.h"
#include "grid/scratch.h"
#include "runtime/scheduler.h"
#include "solvers/direct.h"
#include "tune/executor.h"
#include "tune/table.h"

/// \file dynamic.h
/// Dynamic tuning — the paper's §6 future-work extension.
///
/// "Another direction we plan to explore is the use of dynamic tuning
///  where an algorithm has the ability to adapt during execution based on
///  some features of the intermediate state … switch between tuned
///  versions of itself, providing better performance across a broader
///  range of inputs."
///
/// DynamicSolver drives the statically tuned MULTIGRID-V_i family with a
/// runtime feedback loop: it starts from the cheapest accuracy variant
/// and watches the *residual norm* (the only convergence signal available
/// without an oracle).  When a variant underperforms its trained
/// error-reduction class — e.g. because the input comes from a different
/// distribution than the training data — the solver escalates to a
/// higher-accuracy variant mid-run.  Iteration stops once the residual has
/// dropped by the requested factor.

namespace pbmg::tune {

/// Outcome of a dynamic solve.
struct DynamicResult {
  int iterations = 0;          ///< tuned-variant invocations performed
  int escalations = 0;         ///< times the solver moved up the ladder
  int final_accuracy_index = 0;  ///< ladder index in use when stopping
  double residual_reduction = 1.0;  ///< ||r_0|| / ||r_final||
  bool converged = false;      ///< reached the requested reduction
};

/// Runtime-adaptive driver over a statically tuned configuration.
class DynamicSolver {
 public:
  /// Binds to a trained config (must cover x's level) and resources
  /// (normally one pbmg::Engine's scheduler/direct/scratch trio).
  DynamicSolver(const TunedConfig& config, rt::Scheduler& sched,
                solvers::DirectSolver& direct, grid::ScratchPool& pool,
                const solvers::RelaxTunables& relax =
                    solvers::relax_tunables());

  /// Solves A·x = b until the residual norm has dropped by
  /// `target_reduction` (≥ 1), invoking tuned variants at most
  /// `max_iterations` times.  `x` carries the Dirichlet ring and initial
  /// guess, and is updated in place.
  DynamicResult solve(Grid2D& x, const Grid2D& b, double target_reduction,
                      int max_iterations = 64) const;

 private:
  double residual_norm(const Grid2D& x, const Grid2D& b) const;

  const TunedConfig& config_;
  rt::Scheduler& sched_;
  solvers::DirectSolver& direct_;
  grid::ScratchPool& pool_;
  solvers::RelaxTunables relax_;
};

}  // namespace pbmg::tune
