#pragma once

#include <memory>
#include <string>
#include <vector>

#include "grid/grid2d.h"
#include "grid/scratch.h"
#include "grid/stencil_op.h"
#include "obs/phase_profile.h"
#include "runtime/scheduler.h"
#include "solvers/direct.h"
#include "tune/executor.h"
#include "tune/table.h"

/// \file dynamic.h
/// Dynamic tuning — the paper's §6 future-work extension.
///
/// "Another direction we plan to explore is the use of dynamic tuning
///  where an algorithm has the ability to adapt during execution based on
///  some features of the intermediate state … switch between tuned
///  versions of itself, providing better performance across a broader
///  range of inputs."
///
/// DynamicSolver drives statically tuned MULTIGRID-V_i variants with a
/// runtime feedback loop, generalized across *operators* and *families*:
///
///  - It binds one grid::StencilOp at construction and measures op-aware
///    residuals, so any elliptic operator — not just Poisson — gets honest
///    convergence feedback.
///  - It binds an ordered ladder of per-family tuned configs
///    (nearest-family first, as ranked by grid/fingerprint.h).  Within the
///    current family it escalates up the accuracy ladder when a variant
///    underperforms its trained error-reduction class; when that ladder is
///    exhausted and the input still responds worse than the class
///    promises, it switches to the next family's tables instead of
///    stalling — the cross-family half of the §6 loop.
///  - Everything expensive happens once, at bind time: the averaged
///    coefficient hierarchy, the Galerkin RAP ladder (when any bound
///    config uses it), one TunedExecutor per family, and the packed SoA
///    streams.  solve() touches none of it — two consecutive solves share
///    every prewarmed structure (dynamic_test pins this).
///
/// Honest stats contract (PR 8): DynamicResult reports the executor's
/// *real* per-variant iteration counts, times only the tuned-variant
/// invocations (residual feedback norms run outside the timed window),
/// and sets `converged` from a final residual audit, not the in-loop
/// feedback value.

namespace pbmg::tune {

/// One rung of the cross-family escalation ladder: a family name (stable
/// grid/problem.h token, used in results and metrics labels) and its
/// tuned tables.  The shared_ptr keeps the config alive for the solver's
/// lifetime (service generations hand out aliased pointers).
struct FamilyConfig {
  std::string family;
  std::shared_ptr<const TunedConfig> config;
};

/// One tuned-variant invocation of a dynamic solve, with the executor's
/// real iteration count — the per-variant half of the honest-stats
/// contract.
struct VariantRun {
  std::string family;       ///< family whose tables ran
  int accuracy_index = 0;   ///< ladder index invoked
  int cycles = 0;           ///< top-level iterations the plan executed
  double reduction = 1.0;   ///< residual reduction this invocation measured
};

/// Outcome of a dynamic solve.
struct DynamicResult {
  int iterations = 0;       ///< tuned-variant invocations performed
  int escalations = 0;      ///< in-family moves up the accuracy ladder
  int family_switches = 0;  ///< cross-family ladder switches
  int final_accuracy_index = 0;  ///< ladder index in use when stopping
  std::string final_family;      ///< family in use when stopping
  double initial_residual = 0.0;  ///< ||b − A·x₀|| (audit, untimed)
  double final_residual = 0.0;    ///< ||b − A·x₁|| (audit, untimed)
  double residual_reduction = 1.0;  ///< ||r_0|| / ||r_final||
  double seconds = 0.0;     ///< summed tuned-variant wall-clock (timed
                            ///< window excludes every residual norm)
  bool converged = false;   ///< final residual audit met the target
  std::vector<VariantRun> variants;  ///< one entry per invocation
};

/// Runtime-adaptive driver over per-family tuned configurations, bound to
/// one operator and grid size.  All solve entry points are const and
/// thread-safe (the scheduler and scratch pool are concurrent); callers
/// bring their own x/b grids.
class DynamicSolver {
 public:
  /// Binds `op` and an ordered escalation ladder (nearest family first;
  /// must be non-empty, every config trained to op's level) to execution
  /// resources (normally one pbmg::Engine's scheduler/direct/scratch
  /// trio).  Construction coarsens the coefficient hierarchies, builds
  /// one executor per family and prewarms packed streams when the relax
  /// tunables select the packed kernel layout — solve() reuses all of it.
  DynamicSolver(grid::StencilOp op, std::vector<FamilyConfig> ladder,
                rt::Scheduler& sched, solvers::DirectSolver& direct,
                grid::ScratchPool& pool,
                const solvers::RelaxTunables& relax =
                    solvers::relax_tunables());

  /// Single-family convenience: the historical one-config binding (the
  /// config is copied; its op_family provenance names the ladder rung).
  DynamicSolver(const TunedConfig& config, grid::StencilOp op,
                rt::Scheduler& sched, solvers::DirectSolver& direct,
                grid::ScratchPool& pool,
                const solvers::RelaxTunables& relax =
                    solvers::relax_tunables());

  /// Not movable: the bound executors hold the hierarchies by address.
  DynamicSolver(const DynamicSolver&) = delete;
  DynamicSolver& operator=(const DynamicSolver&) = delete;

  /// Grid side / recursion level the solver is bound to.
  int n() const { return n_; }
  int level() const { return level_; }

  /// The bound fine-grid operator and its prewarmed averaged ladder.
  const grid::StencilOp& op() const { return ops_.at(level_); }
  const grid::StencilHierarchy& operators() const { return ops_; }

  /// Family names of the bound escalation ladder, in escalation order.
  std::vector<std::string> families() const;

  /// Solves A·x = b until the residual norm has dropped by
  /// `target_reduction` (>= 1), invoking tuned variants at most
  /// `max_iterations` times.  `x` carries the Dirichlet ring and initial
  /// guess and must match the bound operator's side; it is updated in
  /// place.  `profile`, when non-null, receives the tuned invocations'
  /// per-(level, phase) breakdown (the untimed residual norms are not
  /// attributed).
  DynamicResult solve(Grid2D& x, const Grid2D& b, double target_reduction,
                      int max_iterations = 64,
                      obs::PhaseProfile* profile = nullptr) const;

 private:
  double residual_norm(const Grid2D& x, const Grid2D& b) const;

  int n_ = 0;
  int level_ = 0;
  std::vector<FamilyConfig> ladder_;
  rt::Scheduler& sched_;
  solvers::DirectSolver& direct_;
  grid::ScratchPool& pool_;
  solvers::RelaxTunables relax_;
  grid::StencilHierarchy ops_;      // built before the executors below
  grid::StencilHierarchy ops_rap_;  // Galerkin ladder; empty unless some
                                    // bound config asks for rap cells
  /// One executor per ladder rung, bound once at construction to the
  /// shared hierarchies (TunedExecutor is non-movable).
  std::vector<std::unique_ptr<TunedExecutor>> executors_;
};

}  // namespace pbmg::tune
