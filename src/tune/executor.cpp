#include "tune/executor.h"

#include <vector>

#include "grid/grid_ops.h"
#include "grid/level.h"
#include "grid/scratch.h"
#include "solvers/line_relax.h"
#include "solvers/relax.h"

namespace pbmg::tune {

TunedExecutor::TunedExecutor(const TunedConfig& config, rt::Scheduler& sched,
                             solvers::DirectSolver& direct,
                             grid::ScratchPool& pool,
                             trace::CycleTracer* tracer,
                             const solvers::RelaxTunables& relax,
                             const grid::StencilHierarchy* ops,
                             const grid::StencilHierarchy* ops_rap)
    : config_(config),
      sched_(sched),
      direct_(direct),
      pool_(pool),
      tracer_(tracer),
      relax_(relax),
      ops_(ops),
      ops_rap_(ops_rap),
      config_uses_rap_(config_uses_rap(config, config.max_level())) {
  solvers::validate_relax_tunables(relax_);
  PBMG_CHECK(ops_ == nullptr || ops_->top_level() >= 1,
             "TunedExecutor: empty operator hierarchy");
  PBMG_CHECK(ops_rap_ == nullptr || ops_rap_->top_level() >= 1,
             "TunedExecutor: empty RAP operator hierarchy");
}

grid::StencilOp TunedExecutor::op_at(int level, grid::Coarsening coarsening,
                                     const grid::StencilHierarchy* rap) const {
  if (coarsening == grid::Coarsening::kRap) {
    PBMG_CHECK(rap != nullptr,
               "TunedExecutor: config cell tuned for RAP coarsening but no "
               "RAP ladder was bound for its operator hierarchy");
    return rap->at(level);
  }
  return ops_ != nullptr ? ops_->at(level)
                         : grid::StencilOp::poisson(size_of_level(level));
}

const grid::StencilHierarchy* TunedExecutor::rap_for_top(
    int top_level, obs::PhaseProfile* profile) const {
  if (ops_rap_ != nullptr) return ops_rap_;
  if (ops_ != nullptr || !config_uses_rap_) return nullptr;
  // Bare (Poisson fast path) executor with RAP cells in its tables: own
  // the Galerkin ladder of the Poisson operator at this top, built once
  // per distinct top level and shared by every subsequent solve.  Guarded
  // so concurrent solves through one executor stay safe; the lock is per
  // public entry, never inside the recursion.
  std::lock_guard<std::mutex> lock(poisson_rap_mutex_);
  auto& slot = poisson_rap_cache_[top_level];
  if (slot == nullptr) {
    obs::ScopedPhaseTimer timer(profile, obs::Phase::kRapSetup, top_level);
    slot = std::make_shared<const grid::StencilHierarchy>(
        grid::StencilOp::poisson(size_of_level(top_level)),
        grid::Coarsening::kRap);
  }
  return slot.get();
}

void TunedExecutor::trace(trace::Op op, int level, int detail) const {
  if (tracer_ != nullptr) tracer_->record(op, level, detail);
}

int TunedExecutor::run_v(Grid2D& x, const Grid2D& b, int accuracy_index,
                         obs::PhaseProfile* profile) const {
  PBMG_CHECK(x.n() == b.n(), "run_v: grid size mismatch");
  const int level = level_of_size(x.n());
  return run_v_at(x, b, level, accuracy_index, rap_for_top(level, profile),
                  profile);
}

int TunedExecutor::run_v_multi(std::span<Grid2D* const> xs,
                               std::span<const Grid2D* const> bs,
                               int accuracy_index,
                               obs::PhaseProfile* profile) const {
  PBMG_CHECK(xs.size() == bs.size(), "run_v_multi: span size mismatch");
  if (xs.empty()) return 0;
  const int n = xs[0]->n();
  for (std::size_t k = 0; k < xs.size(); ++k) {
    PBMG_CHECK(xs[k] != nullptr && bs[k] != nullptr,
               "run_v_multi: null grid slot");
    PBMG_CHECK(xs[k]->n() == n && bs[k]->n() == n,
               "run_v_multi: grid size mismatch");
  }
  if (xs.size() == 1) return run_v(*xs[0], *bs[0], accuracy_index, profile);
  const int level = level_of_size(n);
  return run_v_multi_at(xs, bs, level, accuracy_index,
                        rap_for_top(level, profile), profile);
}

int TunedExecutor::run_fmg(Grid2D& x, const Grid2D& b, int accuracy_index,
                           obs::PhaseProfile* profile) const {
  PBMG_CHECK(x.n() == b.n(), "run_fmg: grid size mismatch");
  const int level = level_of_size(x.n());
  return run_fmg_at(x, b, level, accuracy_index, rap_for_top(level, profile),
                    profile);
}

void TunedExecutor::recurse_body(Grid2D& x, const Grid2D& b,
                                 int sub_accuracy_index,
                                 solvers::RelaxKind smoother,
                                 grid::Coarsening coarsening,
                                 obs::PhaseProfile* profile) const {
  PBMG_CHECK(x.n() == b.n(), "recurse_body: grid size mismatch");
  const int level = level_of_size(x.n());
  recurse_body_at(x, b, level, sub_accuracy_index, smoother, coarsening,
                  rap_for_top(level, profile), profile);
}

void TunedExecutor::estimate(Grid2D& x, const Grid2D& b,
                             int estimate_accuracy_index,
                             obs::PhaseProfile* profile) const {
  PBMG_CHECK(x.n() == b.n(), "estimate: grid size mismatch");
  const int level = level_of_size(x.n());
  estimate_at(x, b, level, estimate_accuracy_index,
              rap_for_top(level, profile), profile);
}

int TunedExecutor::run_v_at(Grid2D& x, const Grid2D& b, int level,
                            int accuracy_index,
                            const grid::StencilHierarchy* rap,
                            obs::PhaseProfile* profile) const {
  const VEntry& entry = config_.v_entry(level, accuracy_index);
  PBMG_CHECK(entry.trained, "run_v: cell (" + std::to_string(level) + "," +
                                std::to_string(accuracy_index) +
                                ") was never trained");
  switch (entry.choice.kind) {
    case VKind::kDirect: {
      obs::ScopedPhaseTimer timer(profile, obs::Phase::kDirect, level);
      direct_.solve(op_at(level, grid::Coarsening::kAverage, rap), b, x);
      trace(trace::Op::kDirect, level);
      return 1;
    }
    case VKind::kIterSor: {
      const grid::StencilOp op =
          op_at(level, grid::Coarsening::kAverage, rap);
      const double omega =
          solvers::scaled_omega_opt(x.n(), relax_.omega_scale);
      for (int it = 0; it < entry.choice.iterations; ++it) {
        obs::ScopedPhaseTimer timer(profile, obs::Phase::kRelax, level);
        solvers::sor_sweep(op, x, b, omega, sched_, relax_.kernels);
      }
      trace(trace::Op::kIterative, level, entry.choice.iterations);
      return entry.choice.iterations;
    }
    case VKind::kRecurse:
      for (int it = 0; it < entry.choice.iterations; ++it) {
        recurse_body_at(x, b, level, entry.choice.sub_accuracy,
                        entry.choice.smoother, entry.choice.coarsening, rap,
                        profile);
      }
      return entry.choice.iterations;
  }
  return 0;  // unreachable; silences -Wreturn-type
}

void TunedExecutor::recurse_body_at(Grid2D& x, const Grid2D& b, int level,
                                    int sub_accuracy_index,
                                    solvers::RelaxKind smoother,
                                    grid::Coarsening coarsening,
                                    const grid::StencilHierarchy* rap,
                                    obs::PhaseProfile* profile) const {
  PBMG_CHECK(level >= 2, "recurse_body: cannot recurse below level 2");
  PBMG_CHECK(sub_accuracy_index >= kClassicalCoarse &&
                 sub_accuracy_index < config_.accuracy_count(),
             "recurse_body: sub-accuracy index out of range");
  // Paper §2.3 RECURSE_i: one pre-relaxation, coarse-grid correction via
  // MULTIGRID-V_j, one post-relaxation.  The relaxation is the cell's
  // tuned smoother: point SOR at ω (the paper's 1.15 unless the
  // runtime-parameter search handed this executor a tuned value), or a
  // line variant for operators where point relaxation stalls.  The
  // operator comes from the cell's tuned ladder: averaged coefficients
  // (the historical path) or the exact Galerkin RAP coarse operators.
  const grid::StencilOp op = op_at(level, coarsening, rap);
  const double recurse_omega = relax_.recurse_omega;
  const obs::Phase relax_phase = solvers::is_line_relax(smoother)
                                     ? obs::Phase::kLineSolve
                                     : obs::Phase::kRelax;
  const auto relax_once = [&] {
    obs::ScopedPhaseTimer timer(profile, relax_phase, level);
    if (solvers::is_line_relax(smoother)) {
      solvers::line_relax_sweep(op, x, b, smoother, sched_, pool_,
                                relax_.kernels);
    } else {
      solvers::sor_sweep(op, x, b, recurse_omega, sched_, relax_.kernels);
    }
  };
  relax_once();
  trace(trace::Op::kRelax, level);

  const int n = x.n();
  auto r_lease = pool_.acquire(n);
  Grid2D& r = r_lease.get();  // residual() writes every cell
  const int nc = coarse_size(n);
  auto rc_lease = pool_.acquire(nc);
  Grid2D& rc = rc_lease.get();  // restriction writes interior + zeros ring
  {
    obs::ScopedPhaseTimer timer(profile, obs::Phase::kRestrict, level);
    grid::residual_op(op, x, b, r, sched_, relax_.kernels);
    grid::restrict_full_weighting(r, rc, sched_);
  }
  trace(trace::Op::kRestrict, level);

  auto e_lease = pool_.acquire(nc);
  Grid2D& e = e_lease.get();
  e.fill(0.0);  // zero guess, zero Dirichlet ring (error equation)
  if (sub_accuracy_index == kClassicalCoarse) {
    // Classical V-cycle coarse call: one recursion body per level (direct
    // at the base), never an accuracy-certified coarse solve.  Identical
    // to solvers::vcycle with ω = recurse ω, one pre/post sweep, and the
    // cell's smoother and coarsening at every level (both travel down the
    // classical ramp just as VCycleOptions would carry them).
    if (level - 1 <= 1) {
      obs::ScopedPhaseTimer timer(profile, obs::Phase::kDirect, level - 1);
      direct_.solve(op_at(level - 1, coarsening, rap), rc, e);
      trace(trace::Op::kDirect, level - 1);
    } else {
      recurse_body_at(e, rc, level - 1, kClassicalCoarse, smoother,
                      coarsening, rap, profile);
    }
  } else {
    run_v_at(e, rc, level - 1, sub_accuracy_index, rap, profile);
  }

  {
    obs::ScopedPhaseTimer timer(profile, obs::Phase::kInterpolate, level);
    grid::interpolate_add(e, x, sched_);
  }
  trace(trace::Op::kInterpolate, level);

  relax_once();
  trace(trace::Op::kRelax, level);
}

int TunedExecutor::run_v_multi_at(std::span<Grid2D* const> xs,
                                  std::span<const Grid2D* const> bs,
                                  int level, int accuracy_index,
                                  const grid::StencilHierarchy* rap,
                                  obs::PhaseProfile* profile) const {
  const VEntry& entry = config_.v_entry(level, accuracy_index);
  PBMG_CHECK(entry.trained, "run_v: cell (" + std::to_string(level) + "," +
                                std::to_string(accuracy_index) +
                                ") was never trained");
  switch (entry.choice.kind) {
    case VKind::kDirect: {
      // The direct base solve has no cross-RHS bandwidth to amortize (its
      // cost is the factorization, shared either way); a plain loop keeps
      // each slot on the solo code path.
      const grid::StencilOp op =
          op_at(level, grid::Coarsening::kAverage, rap);
      obs::ScopedPhaseTimer timer(profile, obs::Phase::kDirect, level);
      for (std::size_t k = 0; k < xs.size(); ++k) {
        direct_.solve(op, *bs[k], *xs[k]);
      }
      trace(trace::Op::kDirect, level);
      return 1;
    }
    case VKind::kIterSor: {
      const grid::StencilOp op =
          op_at(level, grid::Coarsening::kAverage, rap);
      const double omega =
          solvers::scaled_omega_opt(xs[0]->n(), relax_.omega_scale);
      for (int it = 0; it < entry.choice.iterations; ++it) {
        obs::ScopedPhaseTimer timer(profile, obs::Phase::kRelax, level);
        solvers::sor_sweep_multi(op, xs, bs, omega, sched_, relax_.kernels);
      }
      trace(trace::Op::kIterative, level, entry.choice.iterations);
      return entry.choice.iterations;
    }
    case VKind::kRecurse:
      for (int it = 0; it < entry.choice.iterations; ++it) {
        recurse_body_multi_at(xs, bs, level, entry.choice.sub_accuracy,
                              entry.choice.smoother, entry.choice.coarsening,
                              rap, profile);
      }
      return entry.choice.iterations;
  }
  return 0;  // unreachable; silences -Wreturn-type
}

void TunedExecutor::recurse_body_multi_at(std::span<Grid2D* const> xs,
                                          std::span<const Grid2D* const> bs,
                                          int level, int sub_accuracy_index,
                                          solvers::RelaxKind smoother,
                                          grid::Coarsening coarsening,
                                          const grid::StencilHierarchy* rap,
                                          obs::PhaseProfile* profile) const {
  // The solo recurse_body_at, with each kernel swapped for its fused
  // multi-RHS counterpart (or a per-k loop where there is nothing to
  // fuse).  Each k's operation sequence — and therefore its accumulation
  // order — is exactly the solo body's, so the batch stays bitwise
  // identical per slot while coefficient streams are shared across K.
  PBMG_CHECK(level >= 2, "recurse_body: cannot recurse below level 2");
  PBMG_CHECK(sub_accuracy_index >= kClassicalCoarse &&
                 sub_accuracy_index < config_.accuracy_count(),
             "recurse_body: sub-accuracy index out of range");
  const std::size_t batch = xs.size();
  const grid::StencilOp op = op_at(level, coarsening, rap);
  const double recurse_omega = relax_.recurse_omega;
  const obs::Phase relax_phase = solvers::is_line_relax(smoother)
                                     ? obs::Phase::kLineSolve
                                     : obs::Phase::kRelax;
  const auto relax_once = [&] {
    obs::ScopedPhaseTimer timer(profile, relax_phase, level);
    if (solvers::is_line_relax(smoother)) {
      solvers::line_relax_sweep_multi(op, xs, bs, smoother, sched_, pool_,
                                      relax_.kernels);
    } else {
      solvers::sor_sweep_multi(op, xs, bs, recurse_omega, sched_,
                               relax_.kernels);
    }
  };
  relax_once();
  trace(trace::Op::kRelax, level);

  const int n = xs[0]->n();
  const int nc = coarse_size(n);
  std::vector<grid::ScratchPool::Lease> r_leases;
  std::vector<grid::ScratchPool::Lease> rc_leases;
  r_leases.reserve(batch);
  rc_leases.reserve(batch);
  std::vector<const Grid2D*> xs_read(xs.begin(), xs.end());
  std::vector<Grid2D*> rs(batch);
  std::vector<Grid2D*> rcs(batch);
  for (std::size_t k = 0; k < batch; ++k) {
    r_leases.push_back(pool_.acquire(n));
    rc_leases.push_back(pool_.acquire(nc));
    rs[k] = &r_leases.back().get();
    rcs[k] = &rc_leases.back().get();
  }
  {
    obs::ScopedPhaseTimer timer(profile, obs::Phase::kRestrict, level);
    grid::residual_op_multi(op, xs_read, bs, rs, sched_, relax_.kernels);
    for (std::size_t k = 0; k < batch; ++k) {
      grid::restrict_full_weighting(*rs[k], *rcs[k], sched_);
    }
  }
  trace(trace::Op::kRestrict, level);

  std::vector<grid::ScratchPool::Lease> e_leases;
  e_leases.reserve(batch);
  std::vector<Grid2D*> es(batch);
  for (std::size_t k = 0; k < batch; ++k) {
    e_leases.push_back(pool_.acquire(nc));
    es[k] = &e_leases.back().get();
    es[k]->fill(0.0);  // zero guess, zero Dirichlet ring (error equation)
  }
  std::vector<const Grid2D*> rcs_read(rcs.begin(), rcs.end());
  if (sub_accuracy_index == kClassicalCoarse) {
    if (level - 1 <= 1) {
      const grid::StencilOp coarse_op = op_at(level - 1, coarsening, rap);
      obs::ScopedPhaseTimer timer(profile, obs::Phase::kDirect, level - 1);
      for (std::size_t k = 0; k < batch; ++k) {
        direct_.solve(coarse_op, *rcs[k], *es[k]);
      }
      trace(trace::Op::kDirect, level - 1);
    } else {
      recurse_body_multi_at(es, rcs_read, level - 1, kClassicalCoarse,
                            smoother, coarsening, rap, profile);
    }
  } else {
    run_v_multi_at(es, rcs_read, level - 1, sub_accuracy_index, rap, profile);
  }

  {
    obs::ScopedPhaseTimer timer(profile, obs::Phase::kInterpolate, level);
    for (std::size_t k = 0; k < batch; ++k) {
      grid::interpolate_add(*es[k], *xs[k], sched_);
    }
  }
  trace(trace::Op::kInterpolate, level);

  relax_once();
  trace(trace::Op::kRelax, level);
}

int TunedExecutor::run_fmg_at(Grid2D& x, const Grid2D& b, int level,
                              int accuracy_index,
                              const grid::StencilHierarchy* rap,
                              obs::PhaseProfile* profile) const {
  const FmgEntry& entry = config_.fmg_entry(level, accuracy_index);
  PBMG_CHECK(entry.trained, "run_fmg: cell (" + std::to_string(level) + "," +
                                std::to_string(accuracy_index) +
                                ") was never trained");
  switch (entry.choice.kind) {
    case FmgKind::kDirect: {
      obs::ScopedPhaseTimer timer(profile, obs::Phase::kDirect, level);
      direct_.solve(op_at(level, grid::Coarsening::kAverage, rap), b, x);
      trace(trace::Op::kDirect, level);
      return 1;
    }
    case FmgKind::kEstimateThenSor: {
      estimate_at(x, b, level, entry.choice.estimate_accuracy, rap, profile);
      const grid::StencilOp op =
          op_at(level, grid::Coarsening::kAverage, rap);
      const double omega =
          solvers::scaled_omega_opt(x.n(), relax_.omega_scale);
      for (int it = 0; it < entry.choice.iterations; ++it) {
        obs::ScopedPhaseTimer timer(profile, obs::Phase::kRelax, level);
        solvers::sor_sweep(op, x, b, omega, sched_, relax_.kernels);
      }
      trace(trace::Op::kIterative, level, entry.choice.iterations);
      return entry.choice.iterations;
    }
    case FmgKind::kEstimateThenRecurse:
      estimate_at(x, b, level, entry.choice.estimate_accuracy, rap, profile);
      for (int it = 0; it < entry.choice.iterations; ++it) {
        recurse_body_at(x, b, level, entry.choice.solve_accuracy,
                        entry.choice.smoother, entry.choice.coarsening, rap,
                        profile);
      }
      return entry.choice.iterations;
  }
  return 0;  // unreachable; silences -Wreturn-type
}

void TunedExecutor::estimate_at(Grid2D& x, const Grid2D& b, int level,
                                int estimate_accuracy_index,
                                const grid::StencilHierarchy* rap,
                                obs::PhaseProfile* profile) const {
  PBMG_CHECK(level >= 2, "estimate: cannot restrict below level 2");
  // Paper §2.4 ESTIMATE_i: coarse-grid correction whose coarse solve is
  // FULL-MULTIGRID_i one level down (no relaxations of its own).  The
  // residual always uses the averaged ladder (exact at the hierarchy's
  // top, the historical path below it); the coarsening axis applies to
  // the RECURSE bodies, whose cells carry it, not to the estimate phase —
  // training and execution share this rule, so measurements stay honest.
  const int n = x.n();
  auto r_lease = pool_.acquire(n);
  Grid2D& r = r_lease.get();
  const int nc = coarse_size(n);
  auto rc_lease = pool_.acquire(nc);
  Grid2D& rc = rc_lease.get();
  {
    obs::ScopedPhaseTimer timer(profile, obs::Phase::kRestrict, level);
    grid::residual_op(op_at(level, grid::Coarsening::kAverage, rap), x, b, r,
                      sched_, relax_.kernels);
    grid::restrict_full_weighting(r, rc, sched_);
  }
  trace(trace::Op::kRestrict, level);

  auto e_lease = pool_.acquire(nc);
  Grid2D& e = e_lease.get();
  e.fill(0.0);
  run_fmg_at(e, rc, level - 1, estimate_accuracy_index, rap, profile);

  {
    obs::ScopedPhaseTimer timer(profile, obs::Phase::kInterpolate, level);
    grid::interpolate_add(e, x, sched_);
  }
  trace(trace::Op::kInterpolate, level);
}

}  // namespace pbmg::tune
