#include "tune/baseline.h"

#include <algorithm>

#include "engine/solve_session.h"
#include "grid/level.h"
#include "grid/problem.h"
#include "support/rng.h"
#include "tune/accuracy.h"

namespace pbmg::tune {

obs::LatencyBaseline measure_latency_baseline(Engine& engine,
                                              const TunedConfig& config,
                                              const BaselineOptions& options) {
  obs::LatencyBaseline baseline;
  const OperatorFamily family = parse_operator_family(config.op_family);
  const InputDistribution dist =
      config.distribution.empty() ? InputDistribution::kUnbiased
                                  : parse_distribution(config.distribution);
  const int top = options.max_level > 0
                      ? std::min(options.max_level, config.max_level())
                      : config.max_level();
  Rng rng(options.seed);
  for (int level = std::max(2, options.min_level); level <= top; ++level) {
    const int n = size_of_level(level);
    // A real session, so the measurement includes exactly what serving
    // includes (prewarmed hierarchies, packed layouts) and excludes what
    // serving excludes (first-touch allocation bursts).
    SolveSession session(engine, config, make_operator(n, family));
    Rng level_rng = rng.split(static_cast<std::uint64_t>(level));
    const TrainingInstance inst = make_training_instance(
        session.op(), dist, level_rng, engine.scheduler());
    for (int acc = 0; acc < config.accuracy_count(); ++acc) {
      // V-cycle and FMG land in separate baseline keys: one histogram
      // holding both is bimodal, and the watcher's KS test would read
      // the mode mixture itself as drift (or use it to mask real drift).
      obs::Histogram hist;
      obs::Histogram hist_fmg;
      Grid2D x = inst.problem.x0;
      session.solve_v(x, inst.problem.b, acc);  // untimed warm-up
      for (int s = 0; s < options.samples; ++s) {
        x.copy_from(inst.problem.x0);
        hist.record(session.solve_v(x, inst.problem.b, acc).seconds);
        if (options.include_fmg) {
          x.copy_from(inst.problem.x0);
          hist_fmg.record(session.solve_fmg(x, inst.problem.b, acc).seconds);
        }
      }
      baseline.set(n, acc, hist.snapshot());
      if (options.include_fmg) {
        baseline.set(n, acc, hist_fmg.snapshot(), /*fmg=*/true);
      }
    }
  }
  return baseline;
}

}  // namespace pbmg::tune
