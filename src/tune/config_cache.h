#pragma once

#include <string>

#include "runtime/scheduler.h"
#include "solvers/direct.h"
#include "tune/table.h"
#include "tune/trainer.h"

/// \file config_cache.h
/// Disk cache of tuned configurations.
///
/// PetaBricks writes an optimised configuration file after tuning and
/// reuses it on subsequent runs (§3.2.1).  We reproduce that workflow: a
/// tuned config is stored as JSON under a cache directory, keyed by
/// everything that determines the tuning outcome (strategy, machine
/// profile, distribution, ladder, level range, seed, instance count).
/// Benchmark binaries share one cache so that, e.g., Figures 10–13 train
/// each (profile, distribution) combination once.

namespace pbmg::tune {

/// Default cache directory: $PBMG_CACHE_DIR or "./pbmg_tuned_cache".
std::string default_cache_dir();

/// Filename-safe cache key for a (options, profile, strategy) combination.
/// `strategy` is "autotuned" or "heuristic-<index>".
std::string config_cache_key(const TrainerOptions& options,
                             const std::string& profile_name,
                             const std::string& strategy);

/// Loads the cached config if present and valid, otherwise trains and
/// saves it.  `heuristic_sub_accuracy` < 0 selects full autotuning; >= 0
/// trains the Figure-7 heuristic with that fixed sub-accuracy index.
/// `from_cache`, when non-null, reports whether a disk hit occurred.
TunedConfig load_or_train(const TrainerOptions& options,
                          rt::Scheduler& sched,
                          solvers::DirectSolver& direct,
                          const std::string& cache_dir,
                          int heuristic_sub_accuracy = -1,
                          bool* from_cache = nullptr);

}  // namespace pbmg::tune
