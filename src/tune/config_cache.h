#pragma once

#include <string>

#include "engine/engine.h"
#include "tune/table.h"
#include "tune/trainer.h"

/// \file config_cache.h
/// Disk cache of tuned configurations.
///
/// PetaBricks writes an optimised configuration file after tuning and
/// reuses it on subsequent runs (§3.2.1).  We reproduce that workflow: a
/// tuned config is stored as JSON under a cache directory, keyed by
/// everything that determines the tuning outcome — the strategy, the
/// machine profile, the full ProblemSpec (operator family × distribution
/// × level range), the accuracy ladder, seed, and instance count.
/// Benchmark binaries share one cache so that, e.g., Figures 10–13 train
/// each (profile, distribution) combination once, and each operator
/// family gets its own tuned tables (bench/fig18_operator_families).

namespace pbmg::tune {

/// Default cache directory: $PBMG_CACHE_DIR or "./pbmg_tuned_cache".
std::string default_cache_dir();

/// Filename-safe cache key for a (options, profile, strategy) combination.
/// `strategy` is "autotuned" or "heuristic-<index>".
std::string config_cache_key(const TrainerOptions& options,
                             const std::string& profile_name,
                             const std::string& strategy);

/// Loads the cached config if present and valid, otherwise trains on
/// `engine` and saves it (the cache key includes the engine's profile
/// name).  A corrupt or truncated cache file (unparseable JSON, schema
/// violations, even out-of-range number literals) is treated as a cache
/// miss: the config is retrained and the entry overwritten.
/// `heuristic_sub_accuracy` < 0 selects full autotuning; >= 0 trains the
/// Figure-7 heuristic with that fixed sub-accuracy index.  `from_cache`,
/// when non-null, reports whether a disk hit occurred.
TunedConfig load_or_train(const TrainerOptions& options, Engine& engine,
                          const std::string& cache_dir,
                          int heuristic_sub_accuracy = -1,
                          bool* from_cache = nullptr);

/// Cache key for the search-then-train mode.  Extends config_cache_key
/// with everything that determines the profile search: its seed and budget
/// (generations × population × offspring counts), workload level/accuracy,
/// and instance count.
std::string searched_config_cache_key(
    const TrainerOptions& options,
    const search::ProfileSearchOptions& search_options);

/// Cached search-then-train (see tune::search_then_train): one JSON file
/// holds the tuned tables plus a "searched_profile" section with the
/// machine profile and relaxation weights the tables were trained under,
/// and (schema v7) a "latency_baseline" section with the tables' healthy
/// per-(n × accuracy) latency distribution for drift detection.
/// Corrupt entries are recomputed and overwritten, like load_or_train.
SearchTrainResult load_or_search_train(
    const TrainerOptions& options,
    const search::ProfileSearchOptions& search_options,
    const std::string& cache_dir, bool* from_cache = nullptr);

}  // namespace pbmg::tune
