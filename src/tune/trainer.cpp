#include "tune/trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <tuple>
#include <utility>

#include "grid/grid_ops.h"
#include "grid/level.h"
#include "solvers/relax.h"
#include "support/timer.h"
#include "tune/baseline.h"
#include "tune/executor.h"

namespace pbmg::tune {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Floor added to every pruning budget so that microsecond-scale timing
/// noise at small levels cannot reject viable candidates.
constexpr double kBudgetFloorSeconds = 1e-3;

std::string accuracy_tag(double a) {
  std::ostringstream oss;
  oss << "10^" << static_cast<int>(std::lround(std::log10(a)));
  return oss.str();
}

}  // namespace

Trainer::Trainer(TrainerOptions options, Engine& engine)
    : options_(std::move(options)),
      engine_(engine),
      sched_(engine.scheduler()) {
  PBMG_CHECK(options_.max_level >= 2, "Trainer: max_level must be >= 2");
  PBMG_CHECK(options_.training_instances >= 1,
             "Trainer: need at least one training instance");
  PBMG_CHECK(options_.prune_factor >= 1.0,
             "Trainer: prune_factor must be >= 1");
  PBMG_CHECK(!options_.accuracies.empty(), "Trainer: empty accuracy ladder");
  PBMG_CHECK(!options_.smoothers.empty(), "Trainer: empty smoother list");
  for (const solvers::RelaxKind kind : options_.smoothers) {
    // Jacobi exists for the ablation bench only; the executor's RECURSE
    // body dispatches point SOR or a line variant.
    PBMG_CHECK(kind == solvers::RelaxKind::kSor || solvers::is_line_relax(kind),
               "Trainer: smoother candidates must be point_rb or a line "
               "variant");
  }
  PBMG_CHECK(!options_.coarsenings.empty(), "Trainer: empty coarsening list");
  for (const grid::Coarsening mode : options_.coarsenings) {
    // A deserialized byte is not necessarily a valid enumerator.
    (void)grid::to_string(mode);
  }
}

void Trainer::log_line(const std::string& line) const {
  if (options_.log) options_.log(line);
}

Trainer::Measurement Trainer::measure_iterative(
    const std::vector<TrainingInstance>& set, const GridFn& setup,
    const GridFn& step, int max_iterations, double time_budget) {
  const int m = static_cast<int>(options_.accuracies.size());
  Measurement out;
  out.needed.assign(static_cast<std::size_t>(m), -1);
  out.accuracy.assign(static_cast<std::size_t>(m), kInf);

  double total_step_time = 0.0;
  std::int64_t total_steps = 0;
  double total_setup_time = 0.0;
  bool feasible = true;

  std::vector<std::vector<int>> cross(
      set.size(), std::vector<int>(static_cast<std::size_t>(m), -1));
  std::vector<std::vector<double>> cross_acc(
      set.size(), std::vector<double>(static_cast<std::size_t>(m), 0.0));

  for (std::size_t s = 0; s < set.size() && feasible; ++s) {
    const TrainingInstance& inst = set[s];
    Grid2D x(inst.problem.x0.n(), 0.0);
    x.copy_from(inst.problem.x0);

    if (setup) {
      const double t0 = now_seconds();
      setup(x, inst.problem.b);
      total_setup_time += now_seconds() - t0;
    }

    const auto note_crossings = [&](int iteration) {
      const double acc = accuracy_of(inst, x, sched_);
      for (int i = 0; i < m; ++i) {
        if (cross[s][static_cast<std::size_t>(i)] < 0 &&
            acc >= options_.accuracies[static_cast<std::size_t>(i)]) {
          cross[s][static_cast<std::size_t>(i)] = iteration;
          cross_acc[s][static_cast<std::size_t>(i)] = acc;
        }
      }
      return cross[s][static_cast<std::size_t>(m - 1)] >= 0;
    };

    bool done = note_crossings(0);  // a setup phase may already suffice
    for (int it = 1; it <= max_iterations && !done; ++it) {
      const double t0 = now_seconds();
      step(x, inst.problem.b);
      total_step_time += now_seconds() - t0;
      ++total_steps;
      done = note_crossings(it);
      if (total_setup_time + total_step_time > time_budget) break;
    }
  }

  for (int i = 0; i < m; ++i) {
    int worst = -1;
    double worst_acc = kInf;
    for (std::size_t s = 0; s < set.size(); ++s) {
      const int c = cross[s][static_cast<std::size_t>(i)];
      if (c < 0) {
        worst = -1;
        break;
      }
      worst = std::max(worst, c);
      worst_acc = std::min(worst_acc, cross_acc[s][static_cast<std::size_t>(i)]);
    }
    out.needed[static_cast<std::size_t>(i)] = worst;
    out.accuracy[static_cast<std::size_t>(i)] = worst < 0 ? 0.0 : worst_acc;
  }
  out.time_per_step =
      total_steps > 0 ? total_step_time / static_cast<double>(total_steps)
                      : 0.0;
  out.setup_time =
      set.empty() ? 0.0 : total_setup_time / static_cast<double>(set.size());
  return out;
}

double Trainer::measure_direct(const grid::StencilOp& op,
                               const std::vector<TrainingInstance>& set,
                               double& worst_accuracy) {
  double total = 0.0;
  worst_accuracy = kInf;
  for (const TrainingInstance& inst : set) {
    Grid2D x(inst.problem.x0.n(), 0.0);
    x.copy_from(inst.problem.x0);
    const double t0 = now_seconds();
    engine_.direct().solve(op, inst.problem.b, x);
    total += now_seconds() - t0;
    worst_accuracy = std::min(worst_accuracy, accuracy_of(inst, x, sched_));
  }
  return total / static_cast<double>(set.size());
}

double Trainer::predicted_direct_time(int level) const {
  auto it = direct_time_by_level_.find(level - 1);
  if (it == direct_time_by_level_.end()) return kInf;
  // Banded Cholesky is O(N⁴): one level up costs ~16×.
  return it->second * 16.0;
}

void Trainer::train_v_level(TunedConfig& config, int level,
                            const std::vector<TrainingInstance>& set,
                            const std::vector<int>& allowed_sub_accuracies,
                            bool allow_sor,
                            const std::vector<solvers::RelaxKind>& smoothers,
                            const std::vector<grid::Coarsening>& coarsenings,
                            const grid::StencilHierarchy* ops,
                            const grid::StencilHierarchy* ops_rap) {
  const int m = config.accuracy_count();
  const int n = size_of_level(level);
  const grid::StencilOp fine_op =
      ops != nullptr ? ops->at(level) : grid::StencilOp::poisson(n);
  TunedExecutor executor(config, sched_, engine_.direct(), engine_.scratch(),
                         nullptr, engine_.relax(), ops, ops_rap);

  struct CandidateResult {
    VChoice choice;      // iterations filled per accuracy at selection time
    Measurement meas;
    double direct_time = kInf;  // for the direct candidate
    double direct_acc = 0.0;
    bool is_direct = false;
  };
  std::vector<CandidateResult> candidates;

  // Best known time to the *top* accuracy so far — the pruning yardstick.
  double best_top_time = kInf;
  const auto budget = [&] {
    return best_top_time == kInf
               ? kInf
               : options_.prune_factor * best_top_time *
                         static_cast<double>(set.size()) +
                     kBudgetFloorSeconds;
  };

  // 1. RECURSE_j candidates, coarsening-major then smoother-major — the
  //    two tuned axes of the recursion body.  Both candidate lists put
  //    their robust member first (RAP ladders, zebra line smoothers) so
  //    that a candidate which converges on *every* operator family
  //    establishes the pruning budget before the fragile combinations
  //    burn their full iteration caps on operators where they stall
  //    (point SOR at strong axis anisotropy; averaged 5-point coarse
  //    operators at rotated anisotropy).  Within a (coarsening, smoother)
  //    pair, highest sub-accuracy first (fewest iterations, tightest
  //    budget).
  for (const grid::Coarsening coarsening : coarsenings) {
    for (const solvers::RelaxKind smoother : smoothers) {
      for (auto it = allowed_sub_accuracies.rbegin();
           it != allowed_sub_accuracies.rend(); ++it) {
        const int j = *it;
        CandidateResult cand;
        cand.choice.kind = VKind::kRecurse;
        cand.choice.sub_accuracy = j;
        cand.choice.smoother = smoother;
        cand.choice.coarsening = coarsening;
        cand.meas = measure_iterative(
            set, nullptr,
            [&](Grid2D& x, const Grid2D& b) {
              executor.recurse_body(x, b, j, smoother, coarsening);
            },
            options_.max_recurse_iterations, budget());
        const int top_needed = cand.meas.needed.back();
        if (top_needed > 0) {
          best_top_time =
              std::min(best_top_time, cand.meas.time_per_step * top_needed);
        }
        candidates.push_back(std::move(cand));
      }
    }
  }

  // 2. Direct candidate, with O(N⁴) extrapolation pruning.
  if (n <= options_.direct_max_n) {
    const double predicted = predicted_direct_time(level);
    if (predicted <= options_.prune_factor * best_top_time ||
        predicted == kInf || best_top_time == kInf) {
      CandidateResult cand;
      cand.is_direct = true;
      cand.choice.kind = VKind::kDirect;
      cand.direct_time = measure_direct(fine_op, set, cand.direct_acc);
      direct_time_by_level_[level] = cand.direct_time;
      best_top_time = std::min(best_top_time, cand.direct_time);
      candidates.push_back(std::move(cand));
    } else {
      // Too slow to ever win here; remember the extrapolation so the next
      // level can keep pruning.
      direct_time_by_level_[level] = predicted;
    }
  }

  // 3. Iterated SOR(ω_opt) candidate (excluded from the restricted
  //    heuristic search spaces, which only combine Direct and RECURSE).
  if (allow_sor) {
    CandidateResult cand;
    cand.choice.kind = VKind::kIterSor;
    const double omega =
        solvers::scaled_omega_opt(n, engine_.relax().omega_scale);
    cand.meas = measure_iterative(
        set, nullptr,
        [&](Grid2D& x, const Grid2D& b) {
          solvers::sor_sweep(fine_op, x, b, omega, sched_);
        },
        options_.max_sor_iterations, budget());
    candidates.push_back(std::move(cand));
  }

  // Selection: per accuracy, the fastest feasible candidate.
  for (int i = 0; i < m; ++i) {
    VEntry best;
    best.expected_time = kInf;
    for (const CandidateResult& cand : candidates) {
      double time = kInf;
      double acc = 0.0;
      VChoice choice = cand.choice;
      if (cand.is_direct) {
        time = cand.direct_time;
        acc = cand.direct_acc;
      } else {
        const int needed = cand.meas.needed[static_cast<std::size_t>(i)];
        if (needed < 0) continue;
        // A V-type choice must do work to claim an accuracy level.
        choice.iterations = std::max(needed, 1);
        time = cand.meas.time_per_step * choice.iterations;
        acc = cand.meas.accuracy[static_cast<std::size_t>(i)];
      }
      if (time < best.expected_time) {
        best.choice = choice;
        best.expected_time = time;
        best.measured_accuracy = acc;
        best.trained = true;
      }
    }
    PBMG_CHECK(best.trained,
               "autotuner found no feasible MULTIGRID-V candidate at level " +
                   std::to_string(level) + " accuracy " +
                   accuracy_tag(config.accuracies()[static_cast<std::size_t>(i)]));
    config.v_entry(level, i) = best;
    std::ostringstream line;
    line << "[V  ] level " << level << " (N=" << n << ") acc "
         << accuracy_tag(config.accuracies()[static_cast<std::size_t>(i)])
         << " -> ";
    switch (best.choice.kind) {
      case VKind::kDirect: line << "DIRECT"; break;
      case VKind::kIterSor: line << "SOR x" << best.choice.iterations; break;
      case VKind::kRecurse:
        if (best.choice.sub_accuracy == kClassicalCoarse) {
          line << "RECURSE[classic-V] x" << best.choice.iterations;
        } else {
          line << "RECURSE["
               << accuracy_tag(config.accuracies()[static_cast<std::size_t>(
                      best.choice.sub_accuracy)])
               << "] x" << best.choice.iterations;
        }
        line << smoother_tag(best.choice.smoother)
             << coarsening_tag(best.choice.coarsening);
        break;
    }
    line << "  (" << best.expected_time * 1e3 << " ms)";
    log_line(line.str());
  }
}

void Trainer::train_fmg_level(TunedConfig& config, int level,
                              const std::vector<TrainingInstance>& set,
                              const grid::StencilHierarchy* ops,
                              const grid::StencilHierarchy* ops_rap) {
  const int m = config.accuracy_count();
  const int n = size_of_level(level);
  const grid::StencilOp fine_op =
      ops != nullptr ? ops->at(level) : grid::StencilOp::poisson(n);
  TunedExecutor executor(config, sched_, engine_.direct(), engine_.scratch(),
                         nullptr, engine_.relax(), ops, ops_rap);

  struct CandidateResult {
    FmgChoice choice;
    Measurement meas;
    double direct_time = kInf;
    double direct_acc = 0.0;
    bool is_direct = false;
  };
  std::vector<CandidateResult> candidates;

  double best_top_time = kInf;
  const auto budget = [&] {
    return best_top_time == kInf
               ? kInf
               : options_.prune_factor * best_top_time *
                         static_cast<double>(set.size()) +
                     kBudgetFloorSeconds;
  };

  // Direct candidate first.  The V pass at this level already produced a
  // time for the direct solver (measured, or extrapolated when it pruned);
  // reuse it rather than re-running an expensive factorization, but
  // re-measure cheap systems to keep the accuracy figure honest.
  if (n <= options_.direct_max_n) {
    auto it = direct_time_by_level_.find(level);
    const double known = it == direct_time_by_level_.end()
                             ? predicted_direct_time(level)
                             : it->second;
    CandidateResult cand;
    cand.is_direct = true;
    cand.choice.kind = FmgKind::kDirect;
    if (known == kInf || known < 0.05) {
      cand.direct_time = measure_direct(fine_op, set, cand.direct_acc);
      direct_time_by_level_[level] = cand.direct_time;
    } else {
      cand.direct_time = known;
      cand.direct_acc = kInf;  // the direct solve is exact by construction
    }
    best_top_time = std::min(best_top_time, cand.direct_time);
    candidates.push_back(std::move(cand));
  }

  // The smoother and coarsening of an FMG solve phase's RECURSE_m bodies
  // are inherited from the V cell that tuned RECURSE at (level, m) — the
  // V pass runs first and already raced both axes on this exact operator
  // and level, so re-enumerating them here would multiply the FMG
  // candidate count for no new information.  Cells that chose direct/SOR
  // fall back to point SOR on the averaged ladder, the historical shape.
  const auto solve_choice_for = [&](int solve) {
    const VEntry& v = config.v_entry(level, solve);
    if (v.trained && v.choice.kind == VKind::kRecurse) {
      return std::pair{v.choice.smoother, v.choice.coarsening};
    }
    return std::pair{solvers::RelaxKind::kSor, grid::Coarsening::kAverage};
  };

  // ESTIMATE_j followed by RECURSE_m or SOR.  Estimate phases are shared
  // across the solve alternatives via the setup callback.
  for (int j = m - 1; j >= 0; --j) {
    const auto setup = [&executor, j](Grid2D& x, const Grid2D& b) {
      executor.estimate(x, b, j);
    };
    // RECURSE solves first (tight budgets), plain SOR last (solve == -1).
    for (int solve = m - 1; solve >= -1; --solve) {
      CandidateResult cand;
      GridFn step;
      int max_iterations = 0;
      if (solve == -1) {
        cand.choice.kind = FmgKind::kEstimateThenSor;
        cand.choice.estimate_accuracy = j;
        const double omega =
            solvers::scaled_omega_opt(n, engine_.relax().omega_scale);
        step = [this, omega, &fine_op](Grid2D& x, const Grid2D& b) {
          solvers::sor_sweep(fine_op, x, b, omega, sched_);
        };
        max_iterations = options_.max_sor_iterations;
      } else {
        cand.choice.kind = FmgKind::kEstimateThenRecurse;
        cand.choice.estimate_accuracy = j;
        cand.choice.solve_accuracy = solve;
        std::tie(cand.choice.smoother, cand.choice.coarsening) =
            solve_choice_for(solve);
        const solvers::RelaxKind smoother = cand.choice.smoother;
        const grid::Coarsening coarsening = cand.choice.coarsening;
        step = [&executor, solve, smoother,
                coarsening](Grid2D& x, const Grid2D& b) {
          executor.recurse_body(x, b, solve, smoother, coarsening);
        };
        max_iterations = options_.max_recurse_iterations;
      }
      cand.meas =
          measure_iterative(set, setup, step, max_iterations, budget());
      const int top_needed = cand.meas.needed.back();
      if (top_needed >= 0) {
        best_top_time = std::min(
            best_top_time,
            cand.meas.setup_time + cand.meas.time_per_step * top_needed);
      }
      candidates.push_back(std::move(cand));
    }
  }

  for (int i = 0; i < m; ++i) {
    FmgEntry best;
    best.expected_time = kInf;
    for (const CandidateResult& cand : candidates) {
      double time = kInf;
      double acc = 0.0;
      FmgChoice choice = cand.choice;
      if (cand.is_direct) {
        time = cand.direct_time;
        acc = cand.direct_acc;
      } else {
        const int needed = cand.meas.needed[static_cast<std::size_t>(i)];
        if (needed < 0) continue;
        choice.iterations = needed;  // 0 is valid: the estimate sufficed
        time = cand.meas.setup_time + cand.meas.time_per_step * needed;
        acc = cand.meas.accuracy[static_cast<std::size_t>(i)];
      }
      if (time < best.expected_time) {
        best.choice = choice;
        best.expected_time = time;
        best.measured_accuracy = acc;
        best.trained = true;
      }
    }
    PBMG_CHECK(best.trained,
               "autotuner found no feasible FULL-MULTIGRID candidate at level " +
                   std::to_string(level));
    config.fmg_entry(level, i) = best;
    std::ostringstream line;
    line << "[FMG] level " << level << " (N=" << n << ") acc "
         << accuracy_tag(config.accuracies()[static_cast<std::size_t>(i)])
         << " -> ";
    switch (best.choice.kind) {
      case FmgKind::kDirect:
        line << "DIRECT";
        break;
      case FmgKind::kEstimateThenSor:
        line << "EST["
             << accuracy_tag(config.accuracies()[static_cast<std::size_t>(
                    best.choice.estimate_accuracy)])
             << "]+SOR x" << best.choice.iterations;
        break;
      case FmgKind::kEstimateThenRecurse:
        line << "EST["
             << accuracy_tag(config.accuracies()[static_cast<std::size_t>(
                    best.choice.estimate_accuracy)])
             << "]+RECURSE["
             << accuracy_tag(config.accuracies()[static_cast<std::size_t>(
                    best.choice.solve_accuracy)])
             << "] x" << best.choice.iterations
             << smoother_tag(best.choice.smoother)
             << coarsening_tag(best.choice.coarsening);
        break;
    }
    line << "  (" << best.expected_time * 1e3 << " ms)";
    log_line(line.str());
  }
}

TunedConfig Trainer::train() {
  TunedConfig config(options_.accuracies, options_.max_level);
  config.profile_name = sched_.profile().name;
  config.distribution = to_string(options_.distribution);
  config.op_family = to_string(options_.op_family);
  config.seed = options_.seed;
  config.strategy = "autotuned";
  direct_time_by_level_.clear();

  // Coarse-call candidates: every ladder accuracy plus the classical
  // single-body V-cycle (kClassicalCoarse), which escapes the ladder's
  // accuracy floor on slowly converging operators (see tune/table.h).
  std::vector<int> all_sub;
  all_sub.push_back(kClassicalCoarse);
  for (int i = 0; i < config.accuracy_count(); ++i) all_sub.push_back(i);

  const bool poisson = options_.op_family == OperatorFamily::kPoisson;
  const bool want_rap =
      std::find(options_.coarsenings.begin(), options_.coarsenings.end(),
                grid::Coarsening::kRap) != options_.coarsenings.end();
  Rng rng(options_.seed);
  for (int level = 2; level <= options_.max_level; ++level) {
    const int n = size_of_level(level);
    // Each level trains against its own operator hierarchy — the family
    // discretised at this size with restricted coarse coefficients, i.e.
    // exactly what a SolveSession bound to (family, n) will execute.  The
    // Poisson family keeps the null-hierarchy fast path (and the DST
    // oracle inside make_training_set's size overload); its RAP ladder is
    // materialized only when the coarsening axis is actually raced.
    grid::StencilHierarchy hier;
    grid::StencilHierarchy hier_rap;
    if (!poisson) {
      hier = grid::StencilHierarchy(make_operator(n, options_.op_family));
    }
    if (want_rap) {
      hier_rap = grid::StencilHierarchy(make_operator(n, options_.op_family),
                                        grid::Coarsening::kRap);
    }
    const grid::StencilHierarchy* ops = poisson ? nullptr : &hier;
    const grid::StencilHierarchy* ops_rap = want_rap ? &hier_rap : nullptr;
    const Rng level_rng = rng.split(static_cast<std::uint64_t>(level));
    const auto set =
        poisson ? make_training_set(n, options_.distribution, level_rng,
                                    options_.training_instances, sched_)
                : make_training_set(hier.at(level), options_.distribution,
                                    level_rng, options_.training_instances,
                                    sched_);
    train_v_level(config, level, set, all_sub, /*allow_sor=*/true,
                  options_.smoothers, options_.coarsenings, ops, ops_rap);
    if (options_.train_fmg) {
      train_fmg_level(config, level, set, ops, ops_rap);
    }
  }
  return config;
}

SearchTrainResult search_then_train(
    const TrainerOptions& options,
    const search::ProfileSearchOptions& search_options) {
  SearchTrainResult result;
  result.searched = search::search_profile(search_options);
  // Train the DP under the searched parameters so its measurements (and
  // therefore its choices) reflect the runtime the config will execute
  // on: the searched candidate becomes a new Engine, not a global swap.
  Engine engine(result.searched.profile, result.searched.relax);
  Trainer trainer(options, engine);
  result.config = trainer.train();
  // Capture what "healthy" latency looks like on the very engine state
  // the tables were measured under — the reference a serving-time drift
  // watcher compares against (tune/baseline.h).
  result.baseline = measure_latency_baseline(engine, result.config);
  return result;
}

std::future<SearchTrainResult> search_then_train_async(
    TrainerOptions options, search::ProfileSearchOptions search_options) {
  return std::async(std::launch::async,
                    [options = std::move(options),
                     search_options = std::move(search_options)]() {
                      return search_then_train(options, search_options);
                    });
}

TunedConfig Trainer::train_heuristic(int fixed_sub_accuracy) {
  TunedConfig config(options_.accuracies, options_.max_level);
  PBMG_CHECK(fixed_sub_accuracy >= 0 &&
                 fixed_sub_accuracy < config.accuracy_count(),
             "train_heuristic: sub-accuracy index out of range");
  config.profile_name = sched_.profile().name;
  config.distribution = to_string(options_.distribution);
  config.op_family = to_string(options_.op_family);
  config.seed = options_.seed;
  config.strategy =
      "heuristic-" +
      accuracy_tag(
          options_.accuracies[static_cast<std::size_t>(fixed_sub_accuracy)]) +
      "/" + accuracy_tag(options_.accuracies.back());
  direct_time_by_level_.clear();

  const std::vector<int> only_fixed{fixed_sub_accuracy};
  const bool poisson = options_.op_family == OperatorFamily::kPoisson;
  Rng rng(options_.seed);
  for (int level = 2; level <= options_.max_level; ++level) {
    const int n = size_of_level(level);
    grid::StencilHierarchy hier;
    if (!poisson) {
      hier = grid::StencilHierarchy(make_operator(n, options_.op_family));
    }
    const grid::StencilHierarchy* ops = poisson ? nullptr : &hier;
    const Rng level_rng = rng.split(static_cast<std::uint64_t>(level));
    const auto set =
        poisson ? make_training_set(n, options_.distribution, level_rng,
                                    options_.training_instances, sched_)
                : make_training_set(hier.at(level), options_.distribution,
                                    level_rng, options_.training_instances,
                                    sched_);
    // The Figure-7 heuristics reproduce the paper's restricted space
    // exactly: Direct and point-SOR RECURSE only, no line smoothers, the
    // historical averaged coarse ladder.
    train_v_level(config, level, set, only_fixed, /*allow_sor=*/false,
                  {solvers::RelaxKind::kSor}, {grid::Coarsening::kAverage},
                  ops, nullptr);
  }
  return config;
}

}  // namespace pbmg::tune
