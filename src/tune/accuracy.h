#pragma once

#include <vector>

#include "fft/fast_poisson.h"
#include "grid/grid2d.h"
#include "grid/problem.h"
#include "runtime/scheduler.h"
#include "support/rng.h"

/// \file accuracy.h
/// The paper's accuracy metric (§2.2) and training instances.
///
/// An algorithm's *accuracy level* on an input is
///     acc = ||x_in − x_opt||₂ / ||x_out − x_opt||₂
/// — the factor by which it reduces the error against the optimal solution
/// (higher is better).  Measuring it requires x_opt, which we obtain to
/// machine precision from the DST-based fast Poisson solver.

namespace pbmg::tune {

/// One training (or evaluation) instance: a problem plus its exact discrete
/// solution and the error norm of the canonical zero-interior start.
struct TrainingInstance {
  PoissonProblem problem;
  Grid2D x_opt;
  double initial_error = 0.0;  ///< ||x0 − x_opt||₂ over the interior
};

/// Draws an instance of side n from `dist` and solves it exactly.
TrainingInstance make_training_instance(int n, InputDistribution dist,
                                        Rng& rng, rt::Scheduler& sched);

/// Draws `count` instances from independent RNG substreams.
std::vector<TrainingInstance> make_training_set(int n, InputDistribution dist,
                                                const Rng& base_rng, int count,
                                                rt::Scheduler& sched);

/// Instance for a variable-coefficient operator (stencil_op.h).  The
/// Poisson fast path delegates to the DST oracle above, bit-for-bit; for
/// any other operator the instance is manufactured: x_opt is drawn from
/// `dist` (interior and Dirichlet ring), b = A·x_opt is computed with the
/// *discrete* operator, and x0 carries x_opt's ring with a zero interior —
/// so x_opt is the exact discrete solution by construction, at O(n²) cost
/// for any operator.  Deterministic in (op, dist, rng state).
TrainingInstance make_training_instance(const grid::StencilOp& op,
                                        InputDistribution dist, Rng& rng,
                                        rt::Scheduler& sched);

/// Draws `count` instances of the operator from independent RNG substreams.
std::vector<TrainingInstance> make_training_set(const grid::StencilOp& op,
                                                InputDistribution dist,
                                                const Rng& base_rng, int count,
                                                rt::Scheduler& sched);

/// Error of an iterate against the instance's exact solution.
double error_against(const TrainingInstance& inst, const Grid2D& x,
                     rt::Scheduler& sched);

/// Accuracy level achieved by an iterate (paper §2.2); +inf when the error
/// reaches exactly zero.
double accuracy_of(const TrainingInstance& inst, const Grid2D& x,
                   rt::Scheduler& sched);

}  // namespace pbmg::tune
