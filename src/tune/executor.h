#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <span>

#include "grid/grid2d.h"
#include "grid/scratch.h"
#include "grid/stencil_op.h"
#include "obs/phase_profile.h"
#include "runtime/scheduler.h"
#include "solvers/direct.h"
#include "solvers/relax.h"
#include "trace/cycle_trace.h"
#include "tune/table.h"

/// \file executor.h
/// Interpreters for tuned configurations.
///
/// A TunedConfig is the data equivalent of the specialised program a
/// PetaBricks binary would run after autotuning; TunedExecutor walks the
/// tables and performs the selected algorithms:
///
///   MULTIGRID-V_i  (paper §2.3)        FULL-MULTIGRID_i  (paper §2.4)
///   ─ direct solve                      ─ direct solve
///   ─ SOR(ω_opt) × iterations           ─ ESTIMATE_j, then SOR × iters
///   ─ RECURSE_j × iterations            ─ ESTIMATE_j, then RECURSE_m × iters
///
/// where RECURSE (one pre-SOR(1.15), residual restriction, coarse call to
/// MULTIGRID-V_j, correction, one post-SOR(1.15)) and ESTIMATE (residual
/// restriction, coarse FULL-MULTIGRID_j, correction) recurse through the
/// same tables one level down.

namespace pbmg::tune {

/// Executes tuned algorithms described by a TunedConfig.
class TunedExecutor {
 public:
  /// Binds the executor to a config and execution resources (normally one
  /// pbmg::Engine's scheduler/direct/scratch trio).  The config, scheduler,
  /// direct solver and pool must outlive the executor.  `tracer` may be
  /// null; when set, every operation is recorded for cycle-shape
  /// rendering.  `relax` is captured by value so concurrent executors on
  /// different engines can run different searched weights; the default
  /// reads the process-wide tunables once, preserving the historical
  /// ScopedRelaxTunables behaviour for legacy callers.  `ops`, when
  /// non-null, is the averaged-coefficient operator hierarchy the tuned
  /// algorithms run against (it must outlive the executor and cover every
  /// level executed); null selects the constant-coefficient Poisson
  /// operator, exactly as before.  `ops_rap`, when non-null, is the
  /// Galerkin R·A·P ladder of the same fine operator: cells whose tuned
  /// coarsening is grid::Coarsening::kRap relax and correct against it.
  /// A bare executor (no hierarchies at all, the Poisson fast path)
  /// serves RAP cells by lazily building the Poisson RAP ladder for each
  /// invoked top level; an executor bound to an averaged hierarchy but
  /// no RAP ladder throws when a RAP cell executes, because the fine
  /// operator needed to build one is the caller's.
  TunedExecutor(const TunedConfig& config, rt::Scheduler& sched,
                solvers::DirectSolver& direct, grid::ScratchPool& pool,
                trace::CycleTracer* tracer = nullptr,
                const solvers::RelaxTunables& relax =
                    solvers::relax_tunables(),
                const grid::StencilHierarchy* ops = nullptr,
                const grid::StencilHierarchy* ops_rap = nullptr);

  /// Runs MULTIGRID-V at `accuracy_index` on x (ring = Dirichlet data,
  /// interior = current guess).  The level is derived from x.n(), which
  /// must be a trained level of the config.  `profile`, when non-null,
  /// receives per-(level, phase) wall-time attribution at sweep
  /// granularity (obs/phase_profile.h); the default null sink keeps the
  /// solve path free of clock reads.  Returns the number of top-level
  /// iterations the tuned plan actually executed — RECURSE bodies or SOR
  /// sweeps at the entry level, or 1 for a direct solve — so callers
  /// (SolveSession/SolveService) can report real cycle counts instead of
  /// fabricating them.
  int run_v(Grid2D& x, const Grid2D& b, int accuracy_index,
            obs::PhaseProfile* profile = nullptr) const;

  /// Runs MULTIGRID-V on K iterates xs[k] against right-hand-sides bs[k]
  /// simultaneously: one tuned plan walk whose relax/residual sweeps are
  /// the fused multi-RHS kernels (sor_sweep_multi / residual_op_multi),
  /// so each coefficient row is loaded once per sweep and reused across
  /// all K.  Every xs[k] finishes bitwise identical to a solo
  /// run_v(xs[k], bs[k], accuracy_index) — the fusion reorders memory
  /// traffic, never each iterate's accumulation — which is the batched
  /// serving contract SolveService::solve_batch exposes.  All grids must
  /// share one trained level; returns the top-level iteration count (the
  /// same for every k, since they execute one plan).
  int run_v_multi(std::span<Grid2D* const> xs,
                  std::span<const Grid2D* const> bs, int accuracy_index,
                  obs::PhaseProfile* profile = nullptr) const;

  /// Runs FULL-MULTIGRID at `accuracy_index`; same contract as run_v.
  /// The returned count covers the solve phase at the entry level (the
  /// ESTIMATE ramp's own iterations recurse through their own cells).
  int run_fmg(Grid2D& x, const Grid2D& b, int accuracy_index,
              obs::PhaseProfile* profile = nullptr) const;

  /// One application of the RECURSE_j body at x's level (exposed for the
  /// trainer, which needs to iterate it while measuring accuracy).
  /// `smoother` selects the pre/post relaxation of the body at *this*
  /// level — point red-black SOR at the tuned RECURSE ω (the default,
  /// the paper's shape) or a line variant (solvers/line_relax.h); the
  /// coarse MULTIGRID-V_j call reads its own levels' tuned smoothers
  /// from the tables.  `coarsening` selects the operator ladder the body
  /// relaxes on and corrects against at this level (the coarse call's
  /// cells again read their own tuned coarsening); at the hierarchy's top
  /// level both ladders share the fine operator, so the choice is exact
  /// there and an approximation below — which the trainer measures
  /// honestly, since candidates race under the same rule.
  void recurse_body(
      Grid2D& x, const Grid2D& b, int sub_accuracy_index,
      solvers::RelaxKind smoother = solvers::RelaxKind::kSor,
      grid::Coarsening coarsening = grid::Coarsening::kAverage,
      obs::PhaseProfile* profile = nullptr) const;

  /// One application of ESTIMATE_j at x's level (exposed for the trainer).
  void estimate(Grid2D& x, const Grid2D& b, int estimate_accuracy_index,
                obs::PhaseProfile* profile = nullptr) const;

  const TunedConfig& config() const { return config_; }

 private:
  // Every private recursion carries `rap`, the RAP ladder resolved once
  // at the public entry point for the invoked top level (see
  // rap_for_top), so deep RECURSE bodies never re-derive it.  The _at
  // entry points return the executed iteration count at *their* level
  // (the public methods surface the top level's).
  int run_v_at(Grid2D& x, const Grid2D& b, int level, int accuracy_index,
               const grid::StencilHierarchy* rap,
               obs::PhaseProfile* profile) const;
  int run_v_multi_at(std::span<Grid2D* const> xs,
                     std::span<const Grid2D* const> bs, int level,
                     int accuracy_index, const grid::StencilHierarchy* rap,
                     obs::PhaseProfile* profile) const;
  void recurse_body_multi_at(std::span<Grid2D* const> xs,
                             std::span<const Grid2D* const> bs, int level,
                             int sub_accuracy_index,
                             solvers::RelaxKind smoother,
                             grid::Coarsening coarsening,
                             const grid::StencilHierarchy* rap,
                             obs::PhaseProfile* profile) const;
  int run_fmg_at(Grid2D& x, const Grid2D& b, int level, int accuracy_index,
                 const grid::StencilHierarchy* rap,
                 obs::PhaseProfile* profile) const;
  void recurse_body_at(Grid2D& x, const Grid2D& b, int level,
                       int sub_accuracy_index, solvers::RelaxKind smoother,
                       grid::Coarsening coarsening,
                       const grid::StencilHierarchy* rap,
                       obs::PhaseProfile* profile) const;
  void estimate_at(Grid2D& x, const Grid2D& b, int level,
                   int estimate_accuracy_index,
                   const grid::StencilHierarchy* rap,
                   obs::PhaseProfile* profile) const;
  void trace(trace::Op op, int level, int detail = 0) const;

  /// Operator at `level` in the requested ladder: the averaged hierarchy
  /// (or the Poisson fast path when none was bound), or the resolved RAP
  /// ladder.
  grid::StencilOp op_at(int level, grid::Coarsening coarsening,
                        const grid::StencilHierarchy* rap) const;

  /// RAP ladder for a solve whose fine grid sits at `top_level`: the one
  /// bound at construction when present; otherwise — for executors bound
  /// to no hierarchy at all, i.e. the Poisson fast path — a lazily built,
  /// cached Galerkin ladder of the Poisson operator at that top (only
  /// when the config actually holds RAP cells).  An executor bound to an
  /// explicit averaged hierarchy but no RAP ladder returns null; its RAP
  /// cells then throw in op_at, because the fine operator needed to build
  /// the ladder is the caller's, not ours to guess.  A lazy build is
  /// attributed to `profile` as Phase::kRapSetup at `top_level`.
  const grid::StencilHierarchy* rap_for_top(int top_level,
                                            obs::PhaseProfile* profile) const;

  const TunedConfig& config_;
  rt::Scheduler& sched_;
  solvers::DirectSolver& direct_;
  grid::ScratchPool& pool_;
  trace::CycleTracer* tracer_;
  solvers::RelaxTunables relax_;
  const grid::StencilHierarchy* ops_;
  const grid::StencilHierarchy* ops_rap_;
  bool config_uses_rap_;
  mutable std::mutex poisson_rap_mutex_;  ///< guards the lazy cache below
  mutable std::map<int, std::shared_ptr<const grid::StencilHierarchy>>
      poisson_rap_cache_;  ///< keyed by top level; bare-executor path only
};

}  // namespace pbmg::tune
