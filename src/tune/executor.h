#pragma once

#include "grid/grid2d.h"
#include "grid/scratch.h"
#include "grid/stencil_op.h"
#include "runtime/scheduler.h"
#include "solvers/direct.h"
#include "solvers/relax.h"
#include "trace/cycle_trace.h"
#include "tune/table.h"

/// \file executor.h
/// Interpreters for tuned configurations.
///
/// A TunedConfig is the data equivalent of the specialised program a
/// PetaBricks binary would run after autotuning; TunedExecutor walks the
/// tables and performs the selected algorithms:
///
///   MULTIGRID-V_i  (paper §2.3)        FULL-MULTIGRID_i  (paper §2.4)
///   ─ direct solve                      ─ direct solve
///   ─ SOR(ω_opt) × iterations           ─ ESTIMATE_j, then SOR × iters
///   ─ RECURSE_j × iterations            ─ ESTIMATE_j, then RECURSE_m × iters
///
/// where RECURSE (one pre-SOR(1.15), residual restriction, coarse call to
/// MULTIGRID-V_j, correction, one post-SOR(1.15)) and ESTIMATE (residual
/// restriction, coarse FULL-MULTIGRID_j, correction) recurse through the
/// same tables one level down.

namespace pbmg::tune {

/// Executes tuned algorithms described by a TunedConfig.
class TunedExecutor {
 public:
  /// Binds the executor to a config and execution resources (normally one
  /// pbmg::Engine's scheduler/direct/scratch trio).  The config, scheduler,
  /// direct solver and pool must outlive the executor.  `tracer` may be
  /// null; when set, every operation is recorded for cycle-shape
  /// rendering.  `relax` is captured by value so concurrent executors on
  /// different engines can run different searched weights; the default
  /// reads the process-wide tunables once, preserving the historical
  /// ScopedRelaxTunables behaviour for legacy callers.  `ops`, when
  /// non-null, is the variable-coefficient operator hierarchy the tuned
  /// algorithms run against (it must outlive the executor and cover every
  /// level executed); null selects the constant-coefficient Poisson
  /// operator, exactly as before.
  TunedExecutor(const TunedConfig& config, rt::Scheduler& sched,
                solvers::DirectSolver& direct, grid::ScratchPool& pool,
                trace::CycleTracer* tracer = nullptr,
                const solvers::RelaxTunables& relax =
                    solvers::relax_tunables(),
                const grid::StencilHierarchy* ops = nullptr);

  /// Runs MULTIGRID-V at `accuracy_index` on x (ring = Dirichlet data,
  /// interior = current guess).  The level is derived from x.n(), which
  /// must be a trained level of the config.
  void run_v(Grid2D& x, const Grid2D& b, int accuracy_index) const;

  /// Runs FULL-MULTIGRID at `accuracy_index`; same contract as run_v.
  void run_fmg(Grid2D& x, const Grid2D& b, int accuracy_index) const;

  /// One application of the RECURSE_j body at x's level (exposed for the
  /// trainer, which needs to iterate it while measuring accuracy).
  /// `smoother` selects the pre/post relaxation of the body at *this*
  /// level — point red-black SOR at the tuned RECURSE ω (the default,
  /// the paper's shape) or a line variant (solvers/line_relax.h); the
  /// coarse MULTIGRID-V_j call reads its own levels' tuned smoothers
  /// from the tables.
  void recurse_body(
      Grid2D& x, const Grid2D& b, int sub_accuracy_index,
      solvers::RelaxKind smoother = solvers::RelaxKind::kSor) const;

  /// One application of ESTIMATE_j at x's level (exposed for the trainer).
  void estimate(Grid2D& x, const Grid2D& b, int estimate_accuracy_index) const;

  const TunedConfig& config() const { return config_; }

 private:
  void run_v_at(Grid2D& x, const Grid2D& b, int level,
                int accuracy_index) const;
  void run_fmg_at(Grid2D& x, const Grid2D& b, int level,
                  int accuracy_index) const;
  void recurse_body_at(Grid2D& x, const Grid2D& b, int level,
                       int sub_accuracy_index,
                       solvers::RelaxKind smoother) const;
  void estimate_at(Grid2D& x, const Grid2D& b, int level,
                   int estimate_accuracy_index) const;
  void trace(trace::Op op, int level, int detail = 0) const;

  /// Operator at `level`: hierarchy entry, or the Poisson fast path.
  grid::StencilOp op_at(int level) const;

  const TunedConfig& config_;
  rt::Scheduler& sched_;
  solvers::DirectSolver& direct_;
  grid::ScratchPool& pool_;
  trace::CycleTracer* tracer_;
  solvers::RelaxTunables relax_;
  const grid::StencilHierarchy* ops_;
};

}  // namespace pbmg::tune
