#pragma once

#include <functional>
#include <future>
#include <map>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "grid/problem.h"
#include "obs/drift.h"
#include "runtime/scheduler.h"
#include "search/profile_search.h"
#include "solvers/direct.h"
#include "tune/accuracy.h"
#include "tune/table.h"

/// \file trainer.h
/// The discrete dynamic-programming autotuner of paper §2.3–2.4.
///
/// Levels are tuned bottom-up.  At level k every candidate choice is run on
/// training instances drawn from the target input distribution; following
/// §4.1, the trainer "first computes the number of iterations needed for
/// the SOR and RECURSE_j choices before determining which is the fastest
/// option to attain accuracy p_i": one pass per candidate records the
/// iteration at which each accuracy threshold is crossed, then per-accuracy
/// expected times are compared and the fastest feasible candidate wins the
/// cell.  Candidates that fall hopelessly behind the best known time are
/// abandoned early (time-budget pruning), and the direct solver is skipped
/// outright once its extrapolated O(N⁴) cost cannot win.
///
/// The same machinery trains the restricted candidate sets of the paper's
/// Figure 7/8 heuristics ("Strategy 10^x/10^9": only Direct and
/// RECURSE_{10^x} may be used below the top level).

namespace pbmg::tune {

/// Tuning hyper-parameters.  Defaults mirror the paper where specified and
/// stay laptop-friendly elsewhere.
struct TrainerOptions {
  /// Discrete accuracy ladder p_1 < ... < p_m (paper: 10 … 10⁹).
  std::vector<double> accuracies = paper_accuracies();

  /// Highest recursion level to tune (grid side 2^max_level + 1).
  int max_level = 8;

  /// Training input distribution (paper §4).
  InputDistribution distribution = InputDistribution::kUnbiased;

  /// Operator family the tables are tuned for (grid/problem.h).  Every
  /// non-Poisson family trains against its own coefficient hierarchy:
  /// level k's candidates run on make_operator(2^k+1, op_family) with
  /// restricted coarse coefficients — exactly the hierarchy a SolveSession
  /// bound to that operator executes.  Part of the config-cache key.
  OperatorFamily op_family = OperatorFamily::kPoisson;

  /// The scenario these options tune (operator × distribution × size);
  /// the config cache keys on it.
  ProblemSpec problem_spec() const {
    return ProblemSpec{op_family, distribution, max_level};
  }

  /// RNG seed for the training set; same seed ⇒ same tuned tables on a
  /// given machine state.
  std::uint64_t seed = 20091114;  // SC'09 opening day

  /// Training instances per level.
  int training_instances = 2;

  /// Iteration cap for the RECURSE-style candidates.
  int max_recurse_iterations = 100;

  /// Iteration cap for plain SOR candidates.
  int max_sor_iterations = 100000;

  /// Largest grid side for which the direct solver is ever *attempted* as
  /// a candidate (memory/time guard; its O(N⁴) cost is extrapolated and
  /// pruned before this bound is hit on sane inputs).
  int direct_max_n = 513;

  /// Smoother candidates the DP enumerates for the RECURSE relaxations at
  /// every level — the relaxation axis of the choice space.  The default
  /// is solvers::kTunableSmoothers in its canonical order: the zebra line
  /// variants first, so a candidate that survives strong anisotropy
  /// establishes the pruning budget before point SOR burns its iteration
  /// cap on operators where it stalls.  Restrict to {RelaxKind::kSor} to
  /// reproduce the paper's point-only space (the fig19 baseline arm).
  /// Part of the config-cache key (order included: it affects pruning).
  std::vector<solvers::RelaxKind> smoothers{
      std::begin(solvers::kTunableSmoothers),
      std::end(solvers::kTunableSmoothers)};

  /// Coarse-operator ladders the DP enumerates for the RECURSE bodies —
  /// the coarsening axis of the choice space (grid/stencil_op.h): exact
  /// Galerkin R·A·P versus the heuristic averaged-coefficient ladder.
  /// RAP comes first for the same reason the zebra smoothers do: it is
  /// the robust candidate on operators (rotated anisotropy) where the
  /// 5-point averaged coarse operators misrepresent the dominant
  /// coupling, so it establishes the pruning budget.  Restrict to
  /// {Coarsening::kAverage} to reproduce the pre-RAP space (the fig20
  /// baseline arm).  Part of the config-cache key, order included.
  std::vector<grid::Coarsening> coarsenings{grid::Coarsening::kRap,
                                            grid::Coarsening::kAverage};

  /// A candidate is abandoned once it has spent more than
  /// prune_factor × (best known time to the top accuracy) summed over the
  /// training instances.
  double prune_factor = 2.0;

  /// Train the FULL-MULTIGRID table as well (paper §2.4).
  bool train_fmg = true;

  /// Optional progress sink (one line per tuned cell).
  std::function<void(const std::string&)> log;
};

/// Bottom-up dynamic-programming tuner.
class Trainer {
 public:
  /// The engine decides the runtime the tuning is performed under: its
  /// scheduler carries the machine profile, its direct solver supplies
  /// the Direct candidates, its scratch pool serves the executors, and
  /// its relax tunables set the SOR weights being measured.  Tuning a
  /// different profile means constructing a different Engine.
  Trainer(TrainerOptions options, Engine& engine);

  /// Runs the full autotuning of §2.3 (and §2.4 when options.train_fmg):
  /// all accuracies at level k are tuned before level k+1.
  TunedConfig train();

  /// Trains a Figure-7 heuristic: below the top level only Direct and
  /// RECURSE with the fixed sub-accuracy index are allowed.  The returned
  /// config's V-table implements "Strategy 10^x/10⁹" where
  /// 10^x = accuracies[fixed_sub_accuracy].  FMG cells are not trained.
  TunedConfig train_heuristic(int fixed_sub_accuracy);

  const TrainerOptions& options() const { return options_; }

 private:
  /// Per-candidate single-pass measurement (see file comment).
  struct Measurement {
    std::vector<int> needed;        ///< per accuracy: iterations, -1 unreached
    std::vector<double> accuracy;   ///< worst accuracy at the crossing
    double time_per_step = 0.0;     ///< average seconds per iteration
    double setup_time = 0.0;        ///< average seconds of setup (estimate)
  };

  using GridFn = std::function<void(Grid2D&, const Grid2D&)>;

  Measurement measure_iterative(const std::vector<TrainingInstance>& set,
                                const GridFn& setup, const GridFn& step,
                                int max_iterations, double time_budget);

  /// Measures a direct solve of `op` on the training set; returns seconds
  /// and the worst achieved accuracy via out-param.
  double measure_direct(const grid::StencilOp& op,
                        const std::vector<TrainingInstance>& set,
                        double& worst_accuracy);

  /// `ops` is the averaged coefficient hierarchy of the level being
  /// trained (null for the Poisson family, preserving the historical code
  /// path) and `ops_rap` its Galerkin ladder (null when the coarsening
  /// candidate list excludes kRap).  `smoothers` is the RECURSE relaxation
  /// candidate list and `coarsenings` the coarse-ladder candidate list
  /// (the full options_ lists for autotuning; point-only/average-only for
  /// the paper's restricted heuristics).
  void train_v_level(TunedConfig& config, int level,
                     const std::vector<TrainingInstance>& set,
                     const std::vector<int>& allowed_sub_accuracies,
                     bool allow_sor,
                     const std::vector<solvers::RelaxKind>& smoothers,
                     const std::vector<grid::Coarsening>& coarsenings,
                     const grid::StencilHierarchy* ops,
                     const grid::StencilHierarchy* ops_rap);
  void train_fmg_level(TunedConfig& config, int level,
                       const std::vector<TrainingInstance>& set,
                       const grid::StencilHierarchy* ops,
                       const grid::StencilHierarchy* ops_rap);

  /// Extrapolated direct-solve time at `level` from lower-level
  /// measurements (O(N⁴) ⇒ ×16 per level); +inf when unknown.
  double predicted_direct_time(int level) const;

  void log_line(const std::string& line) const;

  TrainerOptions options_;
  Engine& engine_;
  rt::Scheduler& sched_;  // engine_.scheduler(), cached for brevity
  std::map<int, double> direct_time_by_level_;
};

/// Result of the combined search-then-train mode.
struct SearchTrainResult {
  search::SearchedProfile searched;  ///< runtime parameters the DP ran under
  TunedConfig config;                ///< DP tables trained on that profile
  /// Per-(n × accuracy) latency distribution of the tuned tables measured
  /// right after training on the searched-profile engine (tune/baseline.h).
  /// This is what "healthy" looks like: SolveService's drift watcher
  /// compares live latencies against it.
  obs::LatencyBaseline baseline;
};

/// The two-stage tuning mode: first a population search over runtime
/// parameters (machine profile tunables + relaxation weights, see
/// search/profile_search.h), then the paper's dynamic program trained on
/// an Engine built from the searched profile with the searched relaxation
/// weights.  The returned config must be *executed* under the same
/// parameters to reproduce its expected times — run it on an
/// Engine(result.searched.profile, result.searched.relax), or via
/// load_or_search_train's cache which stores both halves together.
/// Finishes by measuring the tables' latency baseline on that engine.
SearchTrainResult search_then_train(
    const TrainerOptions& options,
    const search::ProfileSearchOptions& search_options);

/// search_then_train on a worker thread (std::async): the retune entry
/// point for a service that detected drift and wants fresh tables without
/// stalling its solve path.  The future owns the thread; it joins when
/// the result is consumed (or the future destroyed).
std::future<SearchTrainResult> search_then_train_async(
    TrainerOptions options, search::ProfileSearchOptions search_options);

}  // namespace pbmg::tune
