#include "tune/accuracy.h"

#include <limits>

#include "grid/grid_ops.h"

namespace pbmg::tune {

TrainingInstance make_training_instance(int n, InputDistribution dist,
                                        Rng& rng, rt::Scheduler& sched) {
  TrainingInstance inst;
  inst.problem = make_problem(n, dist, rng);
  inst.x_opt = Grid2D(n, 0.0);
  fft::FastPoissonSolver oracle(n);
  oracle.solve(inst.problem.b, inst.problem.x0, inst.x_opt, sched);
  inst.initial_error =
      grid::norm2_diff_interior(inst.problem.x0, inst.x_opt, sched);
  return inst;
}

std::vector<TrainingInstance> make_training_set(int n, InputDistribution dist,
                                                const Rng& base_rng, int count,
                                                rt::Scheduler& sched) {
  PBMG_CHECK(count >= 1, "make_training_set: count must be >= 1");
  std::vector<TrainingInstance> set;
  set.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Rng rng = base_rng.split(static_cast<std::uint64_t>(i) + 1);
    set.push_back(make_training_instance(n, dist, rng, sched));
  }
  return set;
}

TrainingInstance make_training_instance(const grid::StencilOp& op,
                                        InputDistribution dist, Rng& rng,
                                        rt::Scheduler& sched) {
  if (op.is_poisson()) {
    return make_training_instance(op.n(), dist, rng, sched);
  }
  constexpr double kTwo32 = 4294967296.0;  // value range of paper §4 inputs
  constexpr double kTwo31 = 2147483648.0;
  const int n = op.n();
  TrainingInstance inst;
  inst.x_opt = Grid2D(n, 0.0);
  switch (dist) {
    case InputDistribution::kUnbiased:
    case InputDistribution::kBiased: {
      const double shift = dist == InputDistribution::kBiased ? kTwo31 : 0.0;
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          inst.x_opt(i, j) = rng.uniform(-kTwo32, kTwo32) + shift;
        }
      }
      break;
    }
    case InputDistribution::kPointSources: {
      // Mirrors make_problem's sparse flavour: a handful of strong spikes
      // in an otherwise zero solution with a grounded boundary.
      const int sources = 5;
      for (int s = 0; s < sources; ++s) {
        const int i = 1 + static_cast<int>(rng.uniform_index(
                              static_cast<std::uint64_t>(n - 2)));
        const int j = 1 + static_cast<int>(rng.uniform_index(
                              static_cast<std::uint64_t>(n - 2)));
        inst.x_opt(i, j) += rng.uniform01() < 0.5 ? -kTwo32 : kTwo32;
      }
      break;
    }
  }
  inst.problem.b = Grid2D(n, 0.0);
  grid::apply_op(op, inst.x_opt, inst.problem.b, sched);
  inst.problem.x0 = Grid2D(n, 0.0);
  inst.problem.x0.copy_boundary_from(inst.x_opt);
  inst.initial_error =
      grid::norm2_diff_interior(inst.problem.x0, inst.x_opt, sched);
  return inst;
}

std::vector<TrainingInstance> make_training_set(const grid::StencilOp& op,
                                                InputDistribution dist,
                                                const Rng& base_rng, int count,
                                                rt::Scheduler& sched) {
  PBMG_CHECK(count >= 1, "make_training_set: count must be >= 1");
  std::vector<TrainingInstance> set;
  set.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Rng rng = base_rng.split(static_cast<std::uint64_t>(i) + 1);
    set.push_back(make_training_instance(op, dist, rng, sched));
  }
  return set;
}

double error_against(const TrainingInstance& inst, const Grid2D& x,
                     rt::Scheduler& sched) {
  return grid::norm2_diff_interior(x, inst.x_opt, sched);
}

double accuracy_of(const TrainingInstance& inst, const Grid2D& x,
                   rt::Scheduler& sched) {
  const double err = error_against(inst, x, sched);
  if (err == 0.0) return std::numeric_limits<double>::infinity();
  return inst.initial_error / err;
}

}  // namespace pbmg::tune
