#include "tune/accuracy.h"

#include <limits>

#include "grid/grid_ops.h"

namespace pbmg::tune {

TrainingInstance make_training_instance(int n, InputDistribution dist,
                                        Rng& rng, rt::Scheduler& sched) {
  TrainingInstance inst;
  inst.problem = make_problem(n, dist, rng);
  inst.x_opt = Grid2D(n, 0.0);
  fft::FastPoissonSolver oracle(n);
  oracle.solve(inst.problem.b, inst.problem.x0, inst.x_opt, sched);
  inst.initial_error =
      grid::norm2_diff_interior(inst.problem.x0, inst.x_opt, sched);
  return inst;
}

std::vector<TrainingInstance> make_training_set(int n, InputDistribution dist,
                                                const Rng& base_rng, int count,
                                                rt::Scheduler& sched) {
  PBMG_CHECK(count >= 1, "make_training_set: count must be >= 1");
  std::vector<TrainingInstance> set;
  set.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Rng rng = base_rng.split(static_cast<std::uint64_t>(i) + 1);
    set.push_back(make_training_instance(n, dist, rng, sched));
  }
  return set;
}

double error_against(const TrainingInstance& inst, const Grid2D& x,
                     rt::Scheduler& sched) {
  return grid::norm2_diff_interior(x, inst.x_opt, sched);
}

double accuracy_of(const TrainingInstance& inst, const Grid2D& x,
                   rt::Scheduler& sched) {
  const double err = error_against(inst, x, sched);
  if (err == 0.0) return std::numeric_limits<double>::infinity();
  return inst.initial_error / err;
}

}  // namespace pbmg::tune
