#include "runtime/machine_profile.h"

#include <algorithm>
#include <thread>

#include "support/error.h"

namespace pbmg::rt {

namespace {

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 8 : static_cast<int>(hw);
}

}  // namespace

MachineProfile harpertown_profile() {
  MachineProfile p;
  p.name = "harpertown";
  p.threads = std::min(8, hardware_threads());
  p.grain_rows = 8;
  p.spawn_overhead_ns = 0;
  p.sequential_cutoff_cells = 16384;
  return p;
}

MachineProfile barcelona_profile() {
  MachineProfile p;
  p.name = "barcelona";
  p.threads = std::min(8, hardware_threads());
  p.grain_rows = 32;
  p.spawn_overhead_ns = 500;
  p.sequential_cutoff_cells = 32768;
  return p;
}

MachineProfile niagara_profile() {
  MachineProfile p;
  p.name = "niagara";
  p.threads = std::min(24, hardware_threads());
  p.grain_rows = 4;
  p.spawn_overhead_ns = 4000;
  p.sequential_cutoff_cells = 8192;
  return p;
}

MachineProfile serial_profile() {
  MachineProfile p;
  p.name = "serial";
  p.threads = 1;
  p.grain_rows = 1 << 30;  // never split
  p.spawn_overhead_ns = 0;
  p.sequential_cutoff_cells = std::int64_t{1} << 62;
  return p;
}

MachineProfile profile_by_name(const std::string& name) {
  if (name == "harpertown") return harpertown_profile();
  if (name == "barcelona") return barcelona_profile();
  if (name == "niagara") return niagara_profile();
  if (name == "serial") return serial_profile();
  if (name == "default") return MachineProfile{};
  throw InvalidArgument("unknown machine profile '" + name +
                        "' (expected harpertown|barcelona|niagara|serial|"
                        "default)");
}

std::vector<std::string> profile_names() {
  return {"harpertown", "barcelona", "niagara", "serial", "default"};
}

std::vector<ProfileTunable> profile_tunables(const MachineProfile& profile) {
  const auto clamp64 = [](std::int64_t v, std::int64_t lo, std::int64_t hi) {
    return std::min(std::max(v, lo), hi);
  };
  // Thread count may range over the actual hardware, not the profile's
  // modelled testbed, so a search can exploit bigger machines.
  const std::int64_t max_threads =
      std::max<std::int64_t>(hardware_threads(), profile.threads);
  std::vector<ProfileTunable> tunables;
  tunables.push_back({"threads", 1, max_threads,
                      clamp64(profile.threads, 1, max_threads), false});
  tunables.push_back({"grain_rows", 1, 512,
                      clamp64(profile.grain_rows, 1, 512), true});
  tunables.push_back(
      {"sequential_cutoff_cells", 64, std::int64_t{1} << 21,
       clamp64(profile.sequential_cutoff_cells, 64, std::int64_t{1} << 21),
       true});
  return tunables;
}

MachineProfile with_tunable(const MachineProfile& base, const std::string& name,
                            std::int64_t value) {
  MachineProfile p = base;
  for (const ProfileTunable& t : profile_tunables(base)) {
    if (t.name != name) continue;
    const std::int64_t v = std::min(std::max(value, t.lo), t.hi);
    if (name == "threads") {
      p.threads = static_cast<int>(v);
    } else if (name == "grain_rows") {
      p.grain_rows = static_cast<int>(v);
    } else {
      p.sequential_cutoff_cells = v;
    }
    return p;
  }
  throw InvalidArgument("with_tunable: unknown tunable '" + name + "'");
}

Json profile_to_json(const MachineProfile& profile) {
  Json j = Json::object();
  j.set("name", profile.name);
  j.set("threads", std::int64_t{profile.threads});
  j.set("grain_rows", std::int64_t{profile.grain_rows});
  j.set("spawn_overhead_ns", std::int64_t{profile.spawn_overhead_ns});
  j.set("sequential_cutoff_cells", profile.sequential_cutoff_cells);
  return j;
}

MachineProfile profile_from_json(const Json& json) {
  MachineProfile p;
  p.name = json.get("name", p.name);
  p.threads = static_cast<int>(json.get("threads", std::int64_t{p.threads}));
  p.grain_rows =
      static_cast<int>(json.get("grain_rows", std::int64_t{p.grain_rows}));
  p.spawn_overhead_ns = static_cast<int>(
      json.get("spawn_overhead_ns", std::int64_t{p.spawn_overhead_ns}));
  p.sequential_cutoff_cells =
      json.get("sequential_cutoff_cells", p.sequential_cutoff_cells);
  if (p.threads < 1 || p.grain_rows < 1 || p.spawn_overhead_ns < 0 ||
      p.sequential_cutoff_cells < 0) {
    throw ConfigError("machine profile JSON has out-of-range fields");
  }
  return p;
}

}  // namespace pbmg::rt
