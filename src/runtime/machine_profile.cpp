#include "runtime/machine_profile.h"

#include <algorithm>
#include <thread>

#include "support/error.h"

namespace pbmg::rt {

namespace {

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 8 : static_cast<int>(hw);
}

}  // namespace

MachineProfile harpertown_profile() {
  MachineProfile p;
  p.name = "harpertown";
  p.threads = std::min(8, hardware_threads());
  p.grain_rows = 8;
  p.spawn_overhead_ns = 0;
  p.sequential_cutoff_cells = 16384;
  return p;
}

MachineProfile barcelona_profile() {
  MachineProfile p;
  p.name = "barcelona";
  p.threads = std::min(8, hardware_threads());
  p.grain_rows = 32;
  p.spawn_overhead_ns = 500;
  p.sequential_cutoff_cells = 32768;
  return p;
}

MachineProfile niagara_profile() {
  MachineProfile p;
  p.name = "niagara";
  p.threads = std::min(24, hardware_threads());
  p.grain_rows = 4;
  p.spawn_overhead_ns = 4000;
  p.sequential_cutoff_cells = 8192;
  return p;
}

MachineProfile serial_profile() {
  MachineProfile p;
  p.name = "serial";
  p.threads = 1;
  p.grain_rows = 1 << 30;  // never split
  p.spawn_overhead_ns = 0;
  p.sequential_cutoff_cells = std::int64_t{1} << 62;
  return p;
}

MachineProfile profile_by_name(const std::string& name) {
  if (name == "harpertown") return harpertown_profile();
  if (name == "barcelona") return barcelona_profile();
  if (name == "niagara") return niagara_profile();
  if (name == "serial") return serial_profile();
  if (name == "default") return MachineProfile{};
  throw InvalidArgument("unknown machine profile '" + name +
                        "' (expected harpertown|barcelona|niagara|serial|"
                        "default)");
}

std::vector<std::string> profile_names() {
  return {"harpertown", "barcelona", "niagara", "serial", "default"};
}

}  // namespace pbmg::rt
