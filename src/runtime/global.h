#pragma once

#include <memory>

#include "runtime/machine_profile.h"
#include "runtime/scheduler.h"

/// \file global.h
/// Process-wide scheduler instance.
///
/// Solvers and the tuner run against one active scheduler so that tuned
/// timings reflect the machine profile under test (the paper tunes per
/// machine; we tune per profile).  Benchmarks switch profiles between runs
/// via set_global_profile or the RAII ScopedProfile.

namespace pbmg::rt {

/// Returns the active global scheduler, creating it with the default
/// profile on first use.
Scheduler& global_scheduler();

/// Replaces the global scheduler with one built from `profile`.  Must not
/// be called while tasks are in flight (callers sequence configuration
/// between solves; this is a setup-path API).
void set_global_profile(const MachineProfile& profile);

/// Profile of the currently active global scheduler.
MachineProfile global_profile();

/// RAII helper: swaps the global profile in, restores the previous profile
/// on destruction.  Used by tests and the per-architecture benchmarks.
class ScopedProfile {
 public:
  explicit ScopedProfile(const MachineProfile& profile);
  ~ScopedProfile();

  ScopedProfile(const ScopedProfile&) = delete;
  ScopedProfile& operator=(const ScopedProfile&) = delete;

 private:
  MachineProfile previous_;
};

}  // namespace pbmg::rt
