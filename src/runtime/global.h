#pragma once

#include <memory>

#include "runtime/machine_profile.h"
#include "runtime/scheduler.h"

/// \file global.h
/// DEPRECATED process-wide scheduler shim.
///
/// Historical API: solvers and the tuner used to run against one global
/// scheduler, with benchmarks swapping machine profiles in and out via
/// set_global_profile / ScopedProfile.  That model cannot serve two
/// concurrent tuned solves with different profiles, so the library now
/// routes every consumer through an explicit pbmg::Engine
/// (engine/engine.h), which owns its own rt::Scheduler, grid::ScratchPool
/// and solvers::DirectSolver.
///
/// This shim is kept for ONE release so out-of-tree callers keep
/// compiling.  Nothing inside the repository may call it (enforced by the
/// `no_singleton_calls` test).  Migration:
///
///   // before                              // after
///   rt::ScopedProfile scoped(profile);     pbmg::Engine engine(profile);
///   auto& sched = rt::global_scheduler();  auto& sched = engine.scheduler();
///   use(sched, ScratchPool::global());     use(sched, engine.scratch());

namespace pbmg::rt {

/// \deprecated Construct a pbmg::Engine and use engine.scheduler().
[[deprecated("use pbmg::Engine::scheduler() instead")]]
Scheduler& global_scheduler();

/// \deprecated Construct a new pbmg::Engine from the profile instead of
/// swapping a process-wide scheduler.
[[deprecated("construct a pbmg::Engine from the profile instead")]]
void set_global_profile(const MachineProfile& profile);

/// \deprecated Profile of the deprecated global scheduler.
[[deprecated("use pbmg::Engine::profile() instead")]]
MachineProfile global_profile();

/// \deprecated RAII profile swap on the deprecated global scheduler.  A
/// profile under test is now a *new Engine*, not a global swap.
class [[deprecated("construct a pbmg::Engine from the profile instead")]]
ScopedProfile {
 public:
  explicit ScopedProfile(const MachineProfile& profile);
  ~ScopedProfile();

  ScopedProfile(const ScopedProfile&) = delete;
  ScopedProfile& operator=(const ScopedProfile&) = delete;

 private:
  MachineProfile previous_;
};

}  // namespace pbmg::rt
