#include "runtime/scheduler.h"

#include <chrono>

#include "support/error.h"

namespace pbmg::rt {

namespace {

// Identifies the worker index of the current thread within the scheduler it
// belongs to (or -1 on external threads).
thread_local const Scheduler* tls_scheduler = nullptr;
thread_local int tls_worker_index = -1;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

}  // namespace

void TaskGroup::record_exception(std::exception_ptr e) {
  std::lock_guard<std::mutex> lock(exception_mutex_);
  if (!first_exception_) first_exception_ = e;
}

Scheduler::Scheduler(const MachineProfile& profile) : profile_(profile) {
  PBMG_CHECK(profile.threads >= 1, "scheduler requires >= 1 thread");
  active_workers_.store(profile.threads, std::memory_order_release);
  workers_.reserve(static_cast<std::size_t>(profile.threads));
  for (int i = 0; i < profile.threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(workers_.size());
  for (int i = 0; i < profile.threads; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

Scheduler::~Scheduler() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  sleep_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

bool Scheduler::on_worker_thread() const { return tls_scheduler == this; }

void Scheduler::set_active_workers(int count) {
  if (count < 1) count = 1;
  if (count > thread_count()) count = thread_count();
  active_workers_.store(count, std::memory_order_release);
  {
    // Empty critical section: orders the store against the condvar waits
    // so no worker can miss the limit change between its predicate check
    // and its sleep.
    std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  sleep_cv_.notify_all();
}

void Scheduler::inject_spawn_overhead() const {
  if (profile_.spawn_overhead_ns <= 0) return;
  const auto start = std::chrono::steady_clock::now();
  const auto budget = std::chrono::nanoseconds(profile_.spawn_overhead_ns);
  while (std::chrono::steady_clock::now() - start < budget) cpu_relax();
}

void Scheduler::push_task(int worker_index, Task task) {
  Worker& worker = *workers_[static_cast<std::size_t>(worker_index)];
  {
    std::lock_guard<Spinlock> lock(worker.lock);
    worker.deque.push_back(std::move(task));
    worker.approx_size.store(static_cast<int>(worker.deque.size()),
                             std::memory_order_release);
  }
  ready_tasks_.fetch_add(1, std::memory_order_release);
  if (sleeper_count_.load(std::memory_order_acquire) > 0) {
    // Wake everyone: pushes come in bursts at the start of a parallel
    // region, and a notify_one cascade (each woken worker waking the next)
    // costs one futex round-trip per worker — serialising the ramp-up.
    sleep_cv_.notify_all();
  }
}

void Scheduler::spawn(TaskGroup& group, std::function<void()> fn) {
  inject_spawn_overhead();
  group.pending_.fetch_add(1, std::memory_order_acq_rel);
  Task task;
  task.fn = std::move(fn);
  task.group = &group;
  int target;
  if (tls_scheduler == this) {
    target = tls_worker_index;
  } else {
    target = static_cast<int>(
        external_round_robin_.fetch_add(1, std::memory_order_relaxed) %
        workers_.size());
  }
  push_task(target, std::move(task));
}

bool Scheduler::try_pop_local(int index, Task& out) {
  Worker& worker = *workers_[static_cast<std::size_t>(index)];
  if (worker.approx_size.load(std::memory_order_acquire) == 0) return false;
  std::lock_guard<Spinlock> lock(worker.lock);
  if (worker.deque.empty()) return false;
  out = std::move(worker.deque.back());
  worker.deque.pop_back();
  worker.approx_size.store(static_cast<int>(worker.deque.size()),
                           std::memory_order_release);
  return true;
}

bool Scheduler::try_steal(int thief_index, Task& out) {
  const int n = thread_count();
  // Deterministic round starting at a pseudo-random victim: cheap and good
  // enough for victim selection.
  const auto start = static_cast<int>(
      (static_cast<std::uint64_t>(thief_index) * 0x9e3779b9u +
       static_cast<std::uint64_t>(
           steal_count_.load(std::memory_order_relaxed))) %
      static_cast<std::uint64_t>(n));
  for (int offset = 0; offset < n; ++offset) {
    const int victim = (start + offset) % n;
    if (victim == thief_index) continue;
    Worker& worker = *workers_[static_cast<std::size_t>(victim)];
    // Occupancy hint first: empty victims are skipped without locking so
    // idle thieves never contend with a busy owner's deque mutex.
    if (worker.approx_size.load(std::memory_order_acquire) == 0) continue;
    // try_lock: if the owner (or another thief) holds the lock, move on to
    // the next victim instead of convoying here.
    if (!worker.lock.try_lock()) continue;
    std::lock_guard<Spinlock> lock(worker.lock, std::adopt_lock);
    if (worker.deque.empty()) continue;
    out = std::move(worker.deque.front());
    worker.deque.pop_front();
    worker.approx_size.store(static_cast<int>(worker.deque.size()),
                             std::memory_order_release);
    steal_count_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool Scheduler::try_acquire_task(int index, Task& out) {
  if (index >= 0 && try_pop_local(index, out)) return true;
  if (thread_count() > 1 || index < 0) {
    const int thief = index >= 0 ? index : 0;
    if (try_steal(thief, out)) return true;
    // An external waiter (index < 0) may also need to drain worker 0's own
    // deque; try_steal skips the thief's index, so check it explicitly.
    if (index < 0 && try_pop_local(0, out)) return true;
  }
  return false;
}

void Scheduler::spawn_range(TaskGroup& group, Task::RangeFn fn, void* context,
                            std::int64_t begin, std::int64_t end) {
  inject_spawn_overhead();
  group.pending_.fetch_add(1, std::memory_order_acq_rel);
  Task task;
  task.range_fn = fn;
  task.context = context;
  task.begin = begin;
  task.end = end;
  task.group = &group;
  int target;
  if (tls_scheduler == this) {
    target = tls_worker_index;
  } else {
    target = static_cast<int>(
        external_round_robin_.fetch_add(1, std::memory_order_relaxed) %
        workers_.size());
  }
  push_task(target, std::move(task));
}

void Scheduler::execute(Task task) {
  ready_tasks_.fetch_sub(1, std::memory_order_acq_rel);
  TaskGroup* group = task.group;
  try {
    if (task.range_fn != nullptr) {
      task.range_fn(task.context, task.begin, task.end);
    } else {
      task.fn();
    }
  } catch (...) {
    group->record_exception(std::current_exception());
  }
  const std::int64_t left =
      group->pending_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  if (left == 0) group->pending_.notify_all();
}

void Scheduler::worker_main(int index) {
  tls_scheduler = this;
  tls_worker_index = index;
  // Spin a few hundred microseconds before parking: multigrid issues
  // bursts of short parallel regions (one per sweep per level) separated
  // by brief serial glue, and paying a condvar wake-up between regions
  // would dominate small-grid kernels.
  constexpr int kSpinRounds = 65536;
  while (!stop_.load(std::memory_order_acquire)) {
    // Throttled worker: park until the active-worker limit readmits this
    // index.  Tasks left in (or round-robined into) this worker's deque
    // stay stealable by the active workers, so parking never strands work.
    if (index >= active_workers_.load(std::memory_order_acquire)) {
      std::unique_lock<std::mutex> lock(sleep_mutex_);
      sleep_cv_.wait(lock, [&] {
        return stop_.load(std::memory_order_acquire) ||
               index < active_workers_.load(std::memory_order_acquire);
      });
      continue;
    }
    Task task;
    bool found = false;
    for (int round = 0; round < kSpinRounds && !found; ++round) {
      found = try_acquire_task(index, task);
      if (!found) cpu_relax();
    }
    if (found) {
      execute(std::move(task));
      continue;
    }
    // Nothing after spinning: sleep until a push, a throttle change (the
    // limit may have dropped below this index — re-check the park branch),
    // or shutdown.
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    sleeper_count_.fetch_add(1, std::memory_order_release);
    sleep_cv_.wait(lock, [&] {
      return stop_.load(std::memory_order_acquire) ||
             ready_tasks_.load(std::memory_order_acquire) > 0 ||
             index >= active_workers_.load(std::memory_order_acquire);
    });
    sleeper_count_.fetch_sub(1, std::memory_order_release);
  }
  tls_scheduler = nullptr;
  tls_worker_index = -1;
}

void Scheduler::wait(TaskGroup& group) {
  if (on_worker_thread()) {
    // Help: keep running tasks (any tasks — depth-first locality) until the
    // group drains.  Never blocks, so nested waits cannot deadlock.
    while (group.pending_.load(std::memory_order_acquire) > 0) {
      Task task;
      if (try_acquire_task(tls_worker_index, task)) {
        execute(std::move(task));
      } else {
        cpu_relax();
      }
    }
  } else {
    // External thread: wait for the group.  It deliberately does NOT
    // execute tasks, so a pool of T workers performs exactly T threads of
    // work (the paper's thread-count semantics, Fig. 9).  Short regions
    // finish in microseconds, so spin briefly before the futex sleep.
    constexpr int kWaiterSpinRounds = 16384;
    for (int round = 0; round < kWaiterSpinRounds; ++round) {
      if (group.pending_.load(std::memory_order_acquire) == 0) break;
      cpu_relax();
    }
    while (true) {
      const std::int64_t pending =
          group.pending_.load(std::memory_order_acquire);
      if (pending == 0) break;
      group.pending_.wait(pending, std::memory_order_acquire);
    }
  }
  std::exception_ptr e;
  {
    std::lock_guard<std::mutex> lock(group.exception_mutex_);
    e = group.first_exception_;
    group.first_exception_ = nullptr;
  }
  if (e) std::rethrow_exception(e);
}

void Scheduler::parallel_for(std::int64_t begin, std::int64_t end,
                             std::int64_t grain, const RangeBody& body) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  if (thread_count() == 1 || end - begin <= grain) {
    body(begin, end);
    return;
  }
  TaskGroup group;
  // Recursive range splitting: each task halves its range, spawning the
  // right half and keeping the left, until chunks reach the grain.  The
  // shared state (body, group, grain) outlives the tasks because we wait
  // before returning.  Splits travel as allocation-free range tasks.
  struct Splitter {
    Scheduler* self;
    TaskGroup* group;
    std::int64_t grain;
    const RangeBody* body;

    static void entry(void* context, std::int64_t b, std::int64_t e) {
      static_cast<Splitter*>(context)->run(b, e);
    }

    void run(std::int64_t b, std::int64_t e) const {
      while (e - b > grain) {
        const std::int64_t mid = b + (e - b) / 2;
        self->spawn_range(*group, &Splitter::entry,
                          const_cast<Splitter*>(this), mid, e);
        e = mid;
      }
      (*body)(b, e);
    }
  };
  Splitter splitter{this, &group, grain, &body};
  if (on_worker_thread()) {
    // Work-first on a worker: keep the left half, spawn the right.
    splitter.run(begin, end);
  } else {
    // External caller: hand the whole range to the pool so that exactly
    // thread_count() workers execute it, then block.  The splitter lives on
    // this frame until wait() returns, so child tasks may point into it.
    spawn_range(group, &Splitter::entry, &splitter, begin, end);
  }
  wait(group);
}

double Scheduler::parallel_reduce_sum(std::int64_t begin, std::int64_t end,
                                      std::int64_t grain,
                                      const RangeSum& chunk_fn) {
  if (end <= begin) return 0.0;
  if (grain < 1) grain = 1;
  if (thread_count() == 1 || end - begin <= grain) {
    return chunk_fn(begin, end);
  }
  std::mutex sum_mutex;
  double total = 0.0;
  parallel_for(begin, end, grain,
               [&](std::int64_t b, std::int64_t e) {
                 const double partial = chunk_fn(b, e);
                 std::lock_guard<std::mutex> lock(sum_mutex);
                 total += partial;
               });
  return total;
}

}  // namespace pbmg::rt
