#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/json.h"

/// \file machine_profile.h
/// Machine profiles stand in for the paper's three physical testbeds.
///
/// The paper (§4.3) shows that the optimal tuned cycle shape depends on the
/// machine: Intel Xeon E7340 (Harpertown), AMD Opteron 2356 (Barcelona) and
/// Sun Fire T200 (Niagara) each produce different cycles.  We cannot ship
/// that silicon, so a profile captures the *mechanism* through which the
/// architecture influences tuning: how many workers run, how finely work is
/// sliced, and how expensive task creation is (Niagara's many slow threads
/// are modelled as high per-spawn overhead).  Profiles change the relative
/// cost of the sequential direct solver versus parallel relaxations, which
/// is exactly what moves the tuner's decisions.

namespace pbmg::rt {

/// Execution-environment description used to configure the scheduler.
struct MachineProfile {
  /// Identifier used in configs, tables and figure labels.
  std::string name = "default";

  /// Number of worker threads (>= 1).
  int threads = 8;

  /// Minimum rows per leaf task when slicing grid sweeps; larger values
  /// model architectures where fine-grained tasks are not profitable.
  int grain_rows = 8;

  /// Busy-wait injected on every task spawn, in nanoseconds.  Models
  /// scheduling cost on architectures with slow scalar cores.
  int spawn_overhead_ns = 0;

  /// Parallel/sequential cutoff: grid kernels whose total work (in cells)
  /// is at most this bound run inline instead of forking tasks.  This is
  /// the "parallel-sequential cutoff point" PetaBricks tunes per machine
  /// (§3.2.2); profiles carry representative values.
  std::int64_t sequential_cutoff_cells = 16384;
};

/// Profile modelled on the paper's Intel Xeon E7340 testbed: 8 fast cores,
/// cheap task spawns, fine grain.
MachineProfile harpertown_profile();

/// Profile modelled on the paper's AMD Opteron 2356 testbed: 8 cores,
/// moderate spawn cost, coarser grain.
MachineProfile barcelona_profile();

/// Profile modelled on the paper's Sun Fire T200 testbed: many hardware
/// threads with weak scalar performance (modelled as high spawn overhead and
/// fine grain).
MachineProfile niagara_profile();

/// Single-threaded profile (reference measurements, deterministic tests).
MachineProfile serial_profile();

/// Looks up a profile by name: "harpertown", "barcelona", "niagara",
/// "serial", or "default".  Throws pbmg::InvalidArgument for unknown names.
MachineProfile profile_by_name(const std::string& name);

/// Names accepted by profile_by_name, in presentation order.
std::vector<std::string> profile_names();

/// One runtime parameter a search may vary, with its admissible range.
/// This is the profile's side of the src/search contract: the search
/// subsystem turns these into ParamSpace dimensions without knowing what
/// the fields mean.
struct ProfileTunable {
  std::string name;         ///< "threads", "grain_rows", ...
  std::int64_t lo = 0;      ///< inclusive lower bound
  std::int64_t hi = 0;      ///< inclusive upper bound
  std::int64_t value = 0;   ///< the profile's current value (search default)
  bool log_scale = false;   ///< explore multiplicatively (grains, cutoffs)
};

/// The searchable runtime parameters of a profile: worker count, grain
/// rows, and the parallel/sequential cutoff.  spawn_overhead_ns is *not*
/// tunable — it models the machine, it does not configure it.
std::vector<ProfileTunable> profile_tunables(const MachineProfile& profile);

/// Returns a copy of `base` with the named tunable set to `value` (clamped
/// into the tunable's range).  Throws InvalidArgument for unknown names.
MachineProfile with_tunable(const MachineProfile& base,
                            const std::string& name, std::int64_t value);

/// JSON round trip, used by the tuned-config disk cache to persist searched
/// profiles alongside tuned tables.
Json profile_to_json(const MachineProfile& profile);
MachineProfile profile_from_json(const Json& json);

}  // namespace pbmg::rt
