#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/machine_profile.h"
#include "support/rng.h"

/// \file scheduler.h
/// Work-stealing task scheduler.
///
/// This reproduces the PetaBricks runtime library described in §3.2.3 of
/// the paper: dynamic task scheduling over per-worker deques with a task
/// stealing protocol in the style of Cilk-5.  Owners push and pop at the
/// bottom of their own deque (depth-first, locality-friendly); idle workers
/// steal from the top of a random victim (breadth-first, load balancing).
///
/// Tasks are grouped into TaskGroups; `Scheduler::wait` blocks until a
/// group drains, and a worker that waits keeps executing tasks instead of
/// blocking, so nested parallelism (relaxations inside recursive multigrid
/// calls) composes without thread explosion.

namespace pbmg::rt {

class Scheduler;

/// Test-and-test-and-set spinlock for the worker deques.  Deque critical
/// sections are tens of nanoseconds; a futex-based std::mutex turns every
/// contended access into a syscall, which measures at hundreds of
/// microseconds of fork/join latency per parallel region.
class Spinlock {
 public:
  void lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
      while (flag_.test(std::memory_order_relaxed)) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#elif defined(__aarch64__)
        // ISB stalls the pipeline briefly, the recommended aarch64
        // spin-wait (plain `yield` is a no-op on most cores).
        asm volatile("isb" ::: "memory");
#else
        // Unknown architecture: give the core away rather than burning it.
        std::this_thread::yield();
#endif
      }
    }
  }
  bool try_lock() { return !flag_.test_and_set(std::memory_order_acquire); }
  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

/// Completion tracker for a set of spawned tasks.  A group may be waited on
/// exactly once per drain and can be reused after the wait returns.  The
/// first exception thrown by a task is captured and rethrown from wait().
class TaskGroup {
 public:
  TaskGroup() = default;
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

 private:
  friend class Scheduler;

  void record_exception(std::exception_ptr e);

  std::atomic<std::int64_t> pending_{0};
  std::mutex exception_mutex_;
  std::exception_ptr first_exception_;
};

/// Work-stealing scheduler with a fixed worker pool.
class Scheduler {
 public:
  /// Chunk body for parallel loops: invoked as body(chunk_begin, chunk_end).
  using RangeBody = std::function<void(std::int64_t, std::int64_t)>;

  /// Chunk function for reductions: returns the partial sum of a chunk.
  using RangeSum = std::function<double(std::int64_t, std::int64_t)>;

  /// Creates `profile.threads` workers.  Throws InvalidArgument for a
  /// non-positive thread count.
  explicit Scheduler(const MachineProfile& profile);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Number of worker threads.
  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// Profile this scheduler was built from.
  const MachineProfile& profile() const { return profile_; }

  /// Spawns a task into `group`.  Called from a worker thread the task goes
  /// to that worker's deque; from an external thread it is distributed
  /// round-robin.
  void spawn(TaskGroup& group, std::function<void()> fn);

  /// Waits for all tasks in `group` to complete.  A worker thread helps by
  /// executing tasks while waiting; an external thread blocks.  Rethrows
  /// the first task exception.
  void wait(TaskGroup& group);

  /// Parallel loop over [begin, end): splits recursively until chunks are
  /// at most `grain` long and invokes body(chunk_begin, chunk_end) on each.
  /// Runs inline when the range is small or the pool has a single worker.
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    const RangeBody& body);

  /// Parallel sum-reduction over [begin, end): chunk_fn returns each chunk's
  /// partial sum.  Result ordering is non-deterministic (floating-point
  /// sums may differ across runs by rounding).
  double parallel_reduce_sum(std::int64_t begin, std::int64_t end,
                             std::int64_t grain, const RangeSum& chunk_fn);

  /// True when the calling thread is one of this scheduler's workers.
  bool on_worker_thread() const;

  /// Grain for a row-sliced kernel over `rows` rows of `cells_per_row`
  /// cells: applies the profile's parallel/sequential cutoff (small kernels
  /// return a grain spanning the whole range, i.e. run inline) and its
  /// grain_rows otherwise.
  std::int64_t grain_for(std::int64_t rows, std::int64_t cells_per_row) const {
    if (rows * cells_per_row <= profile_.sequential_cutoff_cells) {
      return rows > 0 ? rows : 1;
    }
    return profile_.grain_rows;
  }

  /// Total number of successful steals since construction (observability;
  /// used by tests to verify stealing actually happens).
  std::int64_t steal_count() const {
    return steal_count_.load(std::memory_order_relaxed);
  }

  /// Limits how many of the pool's workers actively execute tasks
  /// (clamped to [1, thread_count()]).  Workers at index >= `count` park
  /// on the sleep condvar until the limit is raised again; tasks already
  /// sitting in a parked worker's deque remain stealable, so nothing is
  /// lost or stalled — the pool just runs narrower.  This deliberately
  /// models a machine whose effective core count shrank under the service
  /// (noisy neighbours, thermal throttling, a resized container): the
  /// drift bench and tests use it to degrade latency mid-run without
  /// rebuilding the engine.  Thread-safe.
  void set_active_workers(int count);

  /// Current active-worker limit (thread_count() unless throttled).
  int active_workers() const {
    return active_workers_.load(std::memory_order_acquire);
  }

 private:
  struct Task {
    /// Allocation-free fast path used by parallel_for's range splitting:
    /// a plain function pointer plus context, avoiding one heap-allocated
    /// std::function per split (which would be freed cross-thread and
    /// serialise on the allocator).
    using RangeFn = void (*)(void* context, std::int64_t begin,
                             std::int64_t end);
    RangeFn range_fn = nullptr;
    void* context = nullptr;
    std::int64_t begin = 0;
    std::int64_t end = 0;
    /// General path for Scheduler::spawn.
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };

  struct Worker {
    std::deque<Task> deque;
    Spinlock lock;
    /// Lock-free occupancy hint: lets idle thieves skip empty victims
    /// without touching `lock`, so spinning workers do not contend with
    /// the owner's push/pop traffic.
    std::atomic<int> approx_size{0};
  };

  void worker_main(int index);
  bool try_pop_local(int index, Task& out);
  bool try_steal(int thief_index, Task& out);
  bool try_acquire_task(int index, Task& out);
  void execute(Task task);
  void push_task(int worker_index, Task task);
  void spawn_range(TaskGroup& group, Task::RangeFn fn, void* context,
                   std::int64_t begin, std::int64_t end);
  void inject_spawn_overhead() const;

  MachineProfile profile_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  std::atomic<int> active_workers_{0};  // set to thread_count() in the ctor
  std::atomic<std::int64_t> ready_tasks_{0};
  std::atomic<std::int64_t> steal_count_{0};
  std::atomic<std::uint64_t> external_round_robin_{0};
  std::atomic<int> sleeper_count_{0};
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
};

}  // namespace pbmg::rt
