#include "runtime/global.h"

#include <mutex>

// This translation unit implements the deprecated shim in terms of itself;
// silence the self-referential deprecation warnings.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

namespace pbmg::rt {

namespace {

std::mutex g_mutex;
std::unique_ptr<Scheduler> g_scheduler;

}  // namespace

Scheduler& global_scheduler() {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (!g_scheduler) {
    g_scheduler = std::make_unique<Scheduler>(MachineProfile{});
  }
  return *g_scheduler;
}

void set_global_profile(const MachineProfile& profile) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_scheduler.reset();  // join old workers before spawning new ones
  g_scheduler = std::make_unique<Scheduler>(profile);
}

MachineProfile global_profile() {
  return global_scheduler().profile();
}

ScopedProfile::ScopedProfile(const MachineProfile& profile)
    : previous_(global_profile()) {
  set_global_profile(profile);
}

ScopedProfile::~ScopedProfile() { set_global_profile(previous_); }

}  // namespace pbmg::rt
