#pragma once

#include <cstdint>
#include <functional>

#include "grid/problem.h"
#include "runtime/machine_profile.h"
#include "search/population.h"
#include "solvers/relax.h"

/// \file profile_search.h
/// The concrete runtime-parameter search: machine profile + relaxation
/// weights.
///
/// The DP trainer (tune/trainer.h) takes the machine profile as a fixed
/// input.  This module closes the loop the way PetaBricks' sgatuner does:
/// expose the profile's tunables (rt::profile_tunables) and the relaxation
/// weights (solvers::RelaxTunables) as one ParamSpace, race candidates on
/// a representative multigrid workload, and hand back a SearchedProfile
/// the trainer and executors can run under.  Every candidate is evaluated
/// on its own pbmg::Engine (scheduler + scratch pool + relax weights built
/// from the decoded parameters), so the search never mutates process-wide
/// state and may coexist with concurrent serving engines.
/// tune::search_then_train composes the two tuners;
/// tune::load_or_search_train persists the result.

namespace pbmg::search {

/// Builds the searchable space over `base`: the profile's tunables
/// (threads, grain_rows, sequential_cutoff_cells) plus RECURSE ω and the
/// ω_opt scale from solvers/relax.  Defaults reproduce `base` exactly.
/// With include_machine_tunables = false only the relaxation weights are
/// searched (see ProfileSearchOptions::relax_only).
ParamSpace make_profile_space(const rt::MachineProfile& base,
                              bool include_machine_tunables = true);

/// A candidate decoded into concrete runtime parameters.
struct RuntimeParams {
  rt::MachineProfile profile;
  solvers::RelaxTunables relax;
  /// Coarse-operator ladder of the candidate's V-cycle workload (the
  /// "coarsening" categorical axis): legacy averaged coefficients or
  /// exact Galerkin R·A·P (grid/stencil_op.h).
  grid::Coarsening coarsening = grid::Coarsening::kAverage;
};

/// Decodes a candidate of make_profile_space(base, ...).  Machine
/// tunables absent from the space keep their `base` values.
RuntimeParams decode_runtime_params(const ParamSpace& space,
                                    const Candidate& candidate,
                                    const rt::MachineProfile& base);

/// Hyper-parameters of the profile search.
struct ProfileSearchOptions {
  /// Profile the search starts from (and whose tunable ranges apply).
  rt::MachineProfile base;

  /// Workload grid level: candidates are raced on N = 2^level + 1 grids.
  int level = 6;

  /// Operator family the workload solves (grid/problem.h).  Runtime
  /// parameters are scenario-sensitive — e.g. the best RECURSE ω for the
  /// axis-anisotropic family sits far from the paper's Poisson-tuned
  /// 1.15 — so the search must race candidates on the operator the tuned
  /// tables will serve.  Part of the searched-config cache key.
  OperatorFamily op_family = OperatorFamily::kPoisson;

  /// Restricts the search space to the relaxation weights (RECURSE ω and
  /// the ω_opt scale), keeping the machine tunables at `base`'s values.
  /// Use when comparing scenarios on one fixed machine — e.g.
  /// bench/fig18_operator_families isolates the operator-dependent
  /// parameters so machine-knob timing noise cannot masquerade as a
  /// retuning effect.  Part of the searched-config cache key.
  bool relax_only = false;

  /// Accuracy the workload's V-cycle phase must reach (see objective note
  /// in profile_search.cpp).
  double target_accuracy = 1e5;

  /// V-cycle cap before a candidate is declared non-convergent.
  int max_cycles = 80;

  /// Training instances raced per candidate.
  int instances = 2;

  InputDistribution distribution = InputDistribution::kUnbiased;

  /// Seed for both the training set and the population RNG (overrides
  /// population.seed).  Part of the cache key.
  std::uint64_t seed = 20091114;

  PopulationOptions population;  ///< engine knobs (budget: generations etc.)
  TesterOptions tester;          ///< pruning knobs

  std::function<void(const std::string&)> log;

  /// Optional telemetry sink shared by the tester and the population
  /// engine (candidates tested / DNFs / early abandons / best-so-far);
  /// forwarded into population.metrics and tester.metrics unless those
  /// are already set.  Must outlive the search.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Search outcome: concrete runtime parameters plus the provenance needed
/// to persist and reproduce them.
struct SearchedProfile {
  rt::MachineProfile profile;     ///< name gains a "+searched" suffix
  solvers::RelaxTunables relax;
  /// Winning coarsening of the workload's V-cycle phase (serialized as
  /// "coarsening"; documents written before the RAP axis read as the
  /// legacy averaged ladder).
  grid::Coarsening coarsening = grid::Coarsening::kAverage;

  double default_seconds = 0.0;   ///< workload total under `base`
  double searched_seconds = 0.0;  ///< workload total under the winner
  int evaluations = 0;            ///< objective invocations spent

  std::uint64_t seed = 0;         ///< ProfileSearchOptions::seed
  int generations = 0;            ///< population budget actually configured
  int population = 0;

  /// Serialization for the config cache's "searched_profile" section.
  Json to_json() const;
  static SearchedProfile from_json(const Json& json);
};

/// Runs the population search over runtime parameters.  Deterministic in
/// options.seed up to wall-clock measurement noise (candidate *scores* are
/// real timings; the candidate *stream* is seeded).
SearchedProfile search_profile(const ProfileSearchOptions& options);

}  // namespace pbmg::search
