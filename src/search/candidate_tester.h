#pragma once

#include <functional>
#include <limits>
#include <vector>

#include "obs/metrics.h"
#include "search/param_space.h"
#include "support/timer.h"
#include "tune/accuracy.h"

/// \file candidate_tester.h
/// Measures one candidate on a set of training instances with pruning.
///
/// This is the racing half of PetaBricks' population tuner: a candidate is
/// only worth measuring precisely while it can still beat the incumbent.
/// Two guards bound the cost of a bad candidate:
///
///   - early abandon: the per-instance costs reported by the objective are
///     accumulated, and once the running total exceeds
///     `early_abandon_factor ×` the best known total, remaining instances
///     are skipped (deterministic — driven by reported costs, not wall
///     time, so unit tests and replays behave identically);
///   - timeout: a wall-clock Deadline (support/timer.h) handed to the
///     objective, which should poll it inside long iteration loops and bail
///     out, protecting the search from pathological candidates (e.g. a
///     divergent relaxation weight).
///
/// The tester itself owns no runtime state: objectives that need a
/// scheduler or scratch pool construct (and may cache) a pbmg::Engine per
/// candidate — see search/profile_search.cpp — so candidate evaluation
/// never touches process-wide singletons and testers on different
/// threads cannot interfere.

namespace pbmg::search {

/// Pruning knobs for candidate measurement.
struct TesterOptions {
  /// Hard wall-clock cap per candidate, in seconds.
  double timeout_seconds = std::numeric_limits<double>::infinity();

  /// A candidate is abandoned once its accumulated cost exceeds this factor
  /// times the best known total (same role as TrainerOptions::prune_factor).
  double early_abandon_factor = 2.0;

  /// Floor added to the abandon budget so timing noise at microsecond
  /// scales cannot reject viable candidates.
  double budget_floor_seconds = 1e-3;

  /// Optional telemetry sink (must outlive the tester).  When set, the
  /// tester feeds pbmg_search_candidates_tested_total / _completed_total,
  /// pbmg_search_early_abandons_total, pbmg_search_dnfs_total, and the
  /// pbmg_search_candidate_seconds histogram of completed-candidate
  /// totals.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Outcome of measuring one candidate.
struct TestResult {
  /// Sum of per-instance costs; +inf when the candidate failed or was
  /// abandoned before finishing every instance.
  double total_seconds = std::numeric_limits<double>::infinity();

  /// total_seconds / instance count (only meaningful when `completed`).
  double mean_seconds = std::numeric_limits<double>::infinity();

  bool completed = false;   ///< every instance ran and reported finite cost
  bool abandoned = false;   ///< pruned by the early-abandon budget (not DNF)
  int instances_run = 0;    ///< instances measured before completion/abandon
};

/// Runs candidates against training instances under the pruning rules.
class CandidateTester {
 public:
  /// The objective measures one candidate on one instance and returns its
  /// cost in seconds (+inf when the candidate cannot solve the instance).
  /// It should poll `deadline` inside long loops and return +inf once
  /// expired.
  using Objective = std::function<double(
      const Candidate&, const tune::TrainingInstance&, const Deadline&)>;

  /// The space is used for candidate validation and must outlive the
  /// tester.
  CandidateTester(const ParamSpace& space, Objective objective,
                  std::vector<tune::TrainingInstance> instances,
                  TesterOptions options = {});

  /// Measures `candidate`.  `best_known_total` is the incumbent's
  /// total_seconds and sets the abandon budget (+inf disables abandoning).
  TestResult test(const Candidate& candidate,
                  double best_known_total =
                      std::numeric_limits<double>::infinity());

  const ParamSpace& space() const { return space_; }
  const std::vector<tune::TrainingInstance>& instances() const {
    return instances_;
  }
  const TesterOptions& options() const { return options_; }

  /// Objective invocations so far (observability; search budget reporting).
  int evaluations() const { return evaluations_; }

 private:
  const ParamSpace& space_;
  Objective objective_;
  std::vector<tune::TrainingInstance> instances_;
  TesterOptions options_;
  int evaluations_ = 0;
  // Telemetry handles resolved once at construction (null without a
  // registry); registry accessors guarantee stable addresses.
  obs::Counter* tested_total_ = nullptr;
  obs::Counter* completed_total_ = nullptr;
  obs::Counter* abandons_total_ = nullptr;
  obs::Counter* dnfs_total_ = nullptr;
  obs::Histogram* candidate_seconds_ = nullptr;
};

}  // namespace pbmg::search
