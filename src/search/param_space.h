#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/json.h"
#include "support/rng.h"

/// \file param_space.h
/// Generic description of a runtime-parameter search space.
///
/// The paper's dynamic program (tune/trainer.h) optimizes over *algorithmic*
/// choices; PetaBricks pairs it with a stochastic search over the remaining
/// runtime parameters — grain sizes, cutoffs, worker counts, relaxation
/// weights (§3.2.2).  This module is the substrate of that second search: a
/// named list of dimensions (integer, log-scaled integer, float, or
/// categorical), each with a range, a default, and a mutation operator.
/// Candidates are flat value vectors, cheap to copy, mutate, and persist.

namespace pbmg::search {

/// How a dimension's values are distributed and mutated.
enum class DimKind {
  kInt,          ///< uniform integer in [lo, hi]
  kLogInt,       ///< integer in [lo, hi] explored multiplicatively
  kFloat,        ///< uniform float in [lo, hi]
  kCategorical,  ///< index into a fixed label set
};

/// One searchable dimension.
struct Dimension {
  std::string name;
  DimKind kind = DimKind::kInt;
  double lo = 0.0;   ///< inclusive lower bound (categorical: always 0)
  double hi = 0.0;   ///< inclusive upper bound (categorical: #options − 1)
  double def = 0.0;  ///< default value (what the un-searched system uses)
  std::vector<std::string> options;  ///< categorical labels (else empty)
};

/// A point in a ParamSpace: one value per dimension, in dimension order.
/// Integer and categorical dimensions store exact integral doubles.
struct Candidate {
  std::vector<double> values;
};

/// An ordered collection of dimensions with candidate construction,
/// mutation, typed access, and JSON round-tripping.
class ParamSpace {
 public:
  /// Builders (chainable).  All throw InvalidArgument on malformed ranges
  /// or duplicate names.
  ParamSpace& add_int(const std::string& name, std::int64_t lo,
                      std::int64_t hi, std::int64_t def);
  ParamSpace& add_log_int(const std::string& name, std::int64_t lo,
                          std::int64_t hi, std::int64_t def);
  ParamSpace& add_float(const std::string& name, double lo, double hi,
                        double def);
  ParamSpace& add_categorical(const std::string& name,
                              std::vector<std::string> options,
                              std::size_t default_index);

  int size() const { return static_cast<int>(dims_.size()); }
  const std::vector<Dimension>& dimensions() const { return dims_; }

  /// Index of the named dimension; throws InvalidArgument when absent.
  int index_of(const std::string& name) const;

  /// The candidate holding every dimension's default value.
  Candidate default_candidate() const;

  /// A candidate drawn uniformly (log-uniformly for kLogInt) per dimension.
  Candidate random_candidate(Rng& rng) const;

  /// Returns a copy of `base` with one randomly chosen dimension mutated:
  /// integers step or resample, log-integers scale by a factor, floats
  /// perturb by a fraction of the range, categoricals switch label.  The
  /// result is always in-bounds.  Deterministic in (base, rng state).
  Candidate mutated(const Candidate& base, Rng& rng) const;

  /// Clamps every value into its dimension's range and snaps integral
  /// dimensions to whole numbers.
  void clamp(Candidate& candidate) const;

  /// Typed accessors; throw InvalidArgument on name/kind mismatch.
  std::int64_t int_value(const Candidate& candidate,
                         const std::string& name) const;
  double float_value(const Candidate& candidate,
                     const std::string& name) const;
  const std::string& categorical_value(const Candidate& candidate,
                                       const std::string& name) const;

  /// Serialization: an object keyed by dimension name (categoricals by
  /// label).  from_json accepts missing keys (default used) so spaces can
  /// gain dimensions without invalidating stored candidates; unknown keys
  /// are ignored for the same reason.
  Json to_json(const Candidate& candidate) const;
  Candidate from_json(const Json& json) const;

  /// Human-readable "name=value name=value ..." rendering.
  std::string describe(const Candidate& candidate) const;

  /// Canonical compact key for deduplication within a search run.
  std::string fingerprint(const Candidate& candidate) const;

 private:
  void check_candidate(const Candidate& candidate) const;
  double clamp_dim(const Dimension& dim, double value) const;
  const Dimension& named(const std::string& name) const;

  std::vector<Dimension> dims_;
};

}  // namespace pbmg::search
