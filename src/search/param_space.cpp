#include "search/param_space.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/error.h"

namespace pbmg::search {

namespace {

bool is_integral_kind(DimKind kind) {
  return kind == DimKind::kInt || kind == DimKind::kLogInt ||
         kind == DimKind::kCategorical;
}

}  // namespace

ParamSpace& ParamSpace::add_int(const std::string& name, std::int64_t lo,
                                std::int64_t hi, std::int64_t def) {
  PBMG_CHECK(lo <= hi, "ParamSpace: empty range for '" + name + "'");
  PBMG_CHECK(def >= lo && def <= hi,
             "ParamSpace: default out of range for '" + name + "'");
  for (const Dimension& d : dims_) {
    PBMG_CHECK(d.name != name, "ParamSpace: duplicate dimension '" + name + "'");
  }
  Dimension dim;
  dim.name = name;
  dim.kind = DimKind::kInt;
  dim.lo = static_cast<double>(lo);
  dim.hi = static_cast<double>(hi);
  dim.def = static_cast<double>(def);
  dims_.push_back(std::move(dim));
  return *this;
}

ParamSpace& ParamSpace::add_log_int(const std::string& name, std::int64_t lo,
                                    std::int64_t hi, std::int64_t def) {
  PBMG_CHECK(lo >= 1, "ParamSpace: log-int '" + name + "' requires lo >= 1");
  add_int(name, lo, hi, def);
  dims_.back().kind = DimKind::kLogInt;
  return *this;
}

ParamSpace& ParamSpace::add_float(const std::string& name, double lo,
                                  double hi, double def) {
  PBMG_CHECK(lo <= hi, "ParamSpace: empty range for '" + name + "'");
  PBMG_CHECK(def >= lo && def <= hi,
             "ParamSpace: default out of range for '" + name + "'");
  for (const Dimension& d : dims_) {
    PBMG_CHECK(d.name != name, "ParamSpace: duplicate dimension '" + name + "'");
  }
  Dimension dim;
  dim.name = name;
  dim.kind = DimKind::kFloat;
  dim.lo = lo;
  dim.hi = hi;
  dim.def = def;
  dims_.push_back(std::move(dim));
  return *this;
}

ParamSpace& ParamSpace::add_categorical(const std::string& name,
                                        std::vector<std::string> options,
                                        std::size_t default_index) {
  PBMG_CHECK(!options.empty(), "ParamSpace: categorical '" + name +
                                   "' needs at least one option");
  PBMG_CHECK(default_index < options.size(),
             "ParamSpace: default index out of range for '" + name + "'");
  for (const Dimension& d : dims_) {
    PBMG_CHECK(d.name != name, "ParamSpace: duplicate dimension '" + name + "'");
  }
  Dimension dim;
  dim.name = name;
  dim.kind = DimKind::kCategorical;
  dim.lo = 0.0;
  dim.hi = static_cast<double>(options.size() - 1);
  dim.def = static_cast<double>(default_index);
  dim.options = std::move(options);
  dims_.push_back(std::move(dim));
  return *this;
}

int ParamSpace::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (dims_[i].name == name) return static_cast<int>(i);
  }
  throw InvalidArgument("ParamSpace: unknown dimension '" + name + "'");
}

const Dimension& ParamSpace::named(const std::string& name) const {
  return dims_[static_cast<std::size_t>(index_of(name))];
}

void ParamSpace::check_candidate(const Candidate& candidate) const {
  PBMG_CHECK(candidate.values.size() == dims_.size(),
             "ParamSpace: candidate arity mismatch");
}

double ParamSpace::clamp_dim(const Dimension& dim, double value) const {
  double v = std::clamp(value, dim.lo, dim.hi);
  if (is_integral_kind(dim.kind)) v = std::round(v);
  return std::clamp(v, dim.lo, dim.hi);
}

void ParamSpace::clamp(Candidate& candidate) const {
  check_candidate(candidate);
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    candidate.values[i] = clamp_dim(dims_[i], candidate.values[i]);
  }
}

Candidate ParamSpace::default_candidate() const {
  Candidate c;
  c.values.reserve(dims_.size());
  for (const Dimension& dim : dims_) c.values.push_back(dim.def);
  return c;
}

Candidate ParamSpace::random_candidate(Rng& rng) const {
  Candidate c;
  c.values.reserve(dims_.size());
  for (const Dimension& dim : dims_) {
    double v = 0.0;
    switch (dim.kind) {
      case DimKind::kInt:
        v = dim.lo + static_cast<double>(rng.uniform_index(
                         static_cast<std::uint64_t>(dim.hi - dim.lo) + 1));
        break;
      case DimKind::kLogInt:
        // Log-uniform: uniform in log space so 1..8 is as likely as
        // 64..512; this matches how grain sizes and cutoffs behave.
        v = std::exp(rng.uniform(std::log(dim.lo), std::log(dim.hi + 1.0)));
        break;
      case DimKind::kFloat:
        v = rng.uniform(dim.lo, dim.hi);
        break;
      case DimKind::kCategorical:
        v = static_cast<double>(rng.uniform_index(
            static_cast<std::uint64_t>(dim.options.size())));
        break;
    }
    c.values.push_back(clamp_dim(dim, v));
  }
  return c;
}

Candidate ParamSpace::mutated(const Candidate& base, Rng& rng) const {
  check_candidate(base);
  PBMG_CHECK(!dims_.empty(), "ParamSpace: cannot mutate an empty space");
  Candidate c = base;
  const std::size_t i = static_cast<std::size_t>(
      rng.uniform_index(static_cast<std::uint64_t>(dims_.size())));
  const Dimension& dim = dims_[i];
  const double v = c.values[i];
  double next = v;
  switch (dim.kind) {
    case DimKind::kInt: {
      const double u = rng.uniform01();
      if (u < 0.25) {
        // Occasional uniform restart keeps the search ergodic.
        next = dim.lo + static_cast<double>(rng.uniform_index(
                            static_cast<std::uint64_t>(dim.hi - dim.lo) + 1));
      } else {
        const double range = dim.hi - dim.lo;
        const double step =
            1.0 + std::floor(rng.uniform01() * std::max(0.0, range / 8.0));
        next = v + (rng.uniform01() < 0.5 ? -step : step);
      }
      break;
    }
    case DimKind::kLogInt: {
      // Multiplicative step, the sgatuner idiom for power-of-two-ish knobs.
      const double factor = std::exp2(rng.uniform(0.5, 1.5));
      next = rng.uniform01() < 0.5 ? v / factor : v * factor;
      if (std::round(next) == std::round(v)) {
        next = v + (next > v ? 1.0 : -1.0);  // guarantee movement
      }
      break;
    }
    case DimKind::kFloat: {
      if (rng.uniform01() < 0.2) {
        next = rng.uniform(dim.lo, dim.hi);
      } else {
        next = v + rng.uniform(-1.0, 1.0) * 0.15 * (dim.hi - dim.lo);
      }
      break;
    }
    case DimKind::kCategorical: {
      const std::size_t count = dim.options.size();
      if (count > 1) {
        // Uniform over the *other* labels so mutation always moves.
        std::uint64_t pick = rng.uniform_index(count - 1);
        if (static_cast<double>(pick) >= v) ++pick;
        next = static_cast<double>(pick);
      }
      break;
    }
  }
  c.values[i] = clamp_dim(dim, next);
  return c;
}

std::int64_t ParamSpace::int_value(const Candidate& candidate,
                                   const std::string& name) const {
  check_candidate(candidate);
  const int i = index_of(name);
  const Dimension& dim = dims_[static_cast<std::size_t>(i)];
  PBMG_CHECK(dim.kind == DimKind::kInt || dim.kind == DimKind::kLogInt,
             "ParamSpace: '" + name + "' is not an integer dimension");
  return static_cast<std::int64_t>(
      std::llround(candidate.values[static_cast<std::size_t>(i)]));
}

double ParamSpace::float_value(const Candidate& candidate,
                               const std::string& name) const {
  check_candidate(candidate);
  const int i = index_of(name);
  PBMG_CHECK(dims_[static_cast<std::size_t>(i)].kind == DimKind::kFloat,
             "ParamSpace: '" + name + "' is not a float dimension");
  return candidate.values[static_cast<std::size_t>(i)];
}

const std::string& ParamSpace::categorical_value(
    const Candidate& candidate, const std::string& name) const {
  check_candidate(candidate);
  const int i = index_of(name);
  const Dimension& dim = dims_[static_cast<std::size_t>(i)];
  PBMG_CHECK(dim.kind == DimKind::kCategorical,
             "ParamSpace: '" + name + "' is not a categorical dimension");
  const auto idx = static_cast<std::size_t>(
      std::llround(candidate.values[static_cast<std::size_t>(i)]));
  PBMG_CHECK(idx < dim.options.size(),
             "ParamSpace: categorical index out of range for '" + name + "'");
  return dim.options[idx];
}

Json ParamSpace::to_json(const Candidate& candidate) const {
  check_candidate(candidate);
  Json obj = Json::object();
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    const Dimension& dim = dims_[i];
    switch (dim.kind) {
      case DimKind::kInt:
      case DimKind::kLogInt:
        obj.set(dim.name,
                static_cast<std::int64_t>(std::llround(candidate.values[i])));
        break;
      case DimKind::kFloat:
        obj.set(dim.name, candidate.values[i]);
        break;
      case DimKind::kCategorical:
        obj.set(dim.name,
                dim.options[static_cast<std::size_t>(
                    std::llround(candidate.values[i]))]);
        break;
    }
  }
  return obj;
}

Candidate ParamSpace::from_json(const Json& json) const {
  PBMG_CHECK(json.is_object(), "ParamSpace: candidate JSON must be an object");
  Candidate c = default_candidate();
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    const Dimension& dim = dims_[i];
    if (!json.contains(dim.name)) continue;
    const Json& field = json.at(dim.name);
    if (dim.kind == DimKind::kCategorical) {
      const std::string& label = field.as_string();
      const auto it =
          std::find(dim.options.begin(), dim.options.end(), label);
      if (it == dim.options.end()) {
        throw ConfigError("ParamSpace: unknown label '" + label + "' for '" +
                          dim.name + "'");
      }
      c.values[i] = static_cast<double>(it - dim.options.begin());
    } else {
      c.values[i] = field.as_double();
    }
  }
  clamp(c);
  return c;
}

std::string ParamSpace::describe(const Candidate& candidate) const {
  check_candidate(candidate);
  std::ostringstream oss;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) oss << ' ';
    const Dimension& dim = dims_[i];
    oss << dim.name << '=';
    if (dim.kind == DimKind::kCategorical) {
      oss << dim.options[static_cast<std::size_t>(
          std::llround(candidate.values[i]))];
    } else if (is_integral_kind(dim.kind)) {
      oss << static_cast<std::int64_t>(std::llround(candidate.values[i]));
    } else {
      oss << candidate.values[i];
    }
  }
  return oss.str();
}

std::string ParamSpace::fingerprint(const Candidate& candidate) const {
  check_candidate(candidate);
  std::ostringstream oss;
  oss.precision(17);
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) oss << '|';
    oss << candidate.values[i];
  }
  return oss.str();
}

}  // namespace pbmg::search
