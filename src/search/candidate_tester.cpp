#include "search/candidate_tester.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace pbmg::search {

CandidateTester::CandidateTester(const ParamSpace& space, Objective objective,
                                 std::vector<tune::TrainingInstance> instances,
                                 TesterOptions options)
    : space_(space),
      objective_(std::move(objective)),
      instances_(std::move(instances)),
      options_(options) {
  PBMG_CHECK(static_cast<bool>(objective_),
             "CandidateTester: objective must be callable");
  PBMG_CHECK(!instances_.empty(),
             "CandidateTester: need at least one training instance");
  PBMG_CHECK(options_.early_abandon_factor >= 1.0,
             "CandidateTester: early_abandon_factor must be >= 1");
  PBMG_CHECK(options_.timeout_seconds > 0.0,
             "CandidateTester: timeout must be positive");
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& m = *options_.metrics;
    tested_total_ = &m.counter("pbmg_search_candidates_tested_total");
    completed_total_ = &m.counter("pbmg_search_candidates_completed_total");
    abandons_total_ = &m.counter("pbmg_search_early_abandons_total");
    dnfs_total_ = &m.counter("pbmg_search_dnfs_total");
    candidate_seconds_ = &m.histogram("pbmg_search_candidate_seconds");
  }
}

TestResult CandidateTester::test(const Candidate& candidate,
                                 double best_known_total) {
  Candidate clamped = candidate;
  space_.clamp(clamped);

  const double abandon_budget =
      std::isfinite(best_known_total)
          ? options_.early_abandon_factor * best_known_total +
                options_.budget_floor_seconds
          : std::numeric_limits<double>::infinity();
  Deadline deadline(options_.timeout_seconds);

  if (tested_total_ != nullptr) tested_total_->add(1);
  TestResult result;
  double total = 0.0;
  const int count = static_cast<int>(instances_.size());
  for (int i = 0; i < count; ++i) {
    const double cost = objective_(
        clamped, instances_[static_cast<std::size_t>(i)], deadline);
    ++evaluations_;
    result.instances_run = i + 1;
    if (!std::isfinite(cost) || cost < 0.0 || deadline.expired()) {
      if (dnfs_total_ != nullptr) dnfs_total_->add(1);
      return result;  // failed / timed out: totals stay infinite
    }
    total += cost;
    if (i + 1 < count && total > abandon_budget) {
      result.abandoned = true;
      if (abandons_total_ != nullptr) abandons_total_->add(1);
      return result;  // early abandon: cannot beat the incumbent
    }
  }
  result.total_seconds = total;
  result.mean_seconds = total / static_cast<double>(count);
  result.completed = true;
  if (completed_total_ != nullptr) completed_total_->add(1);
  if (candidate_seconds_ != nullptr) candidate_seconds_->record(total);
  return result;
}

}  // namespace pbmg::search
