#include "search/profile_search.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>

#include "engine/engine.h"
#include "grid/level.h"
#include "solvers/line_relax.h"
#include "solvers/multigrid.h"
#include "support/error.h"
#include "support/timer.h"
#include "tune/accuracy.h"

namespace pbmg::search {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// First accuracy rung the SOR phase of the workload must reach; matches
/// the bottom of the paper's ladder.
constexpr double kSorPhaseAccuracy = 10.0;

}  // namespace

ParamSpace make_profile_space(const rt::MachineProfile& base,
                              bool include_machine_tunables) {
  ParamSpace space;
  if (include_machine_tunables) {
    for (const rt::ProfileTunable& t : rt::profile_tunables(base)) {
      if (t.log_scale) {
        space.add_log_int(t.name, t.lo, t.hi, t.value);
      } else {
        space.add_int(t.name, t.lo, t.hi, t.value);
      }
    }
  }
  // Relaxation weights from solvers/relax: RECURSE's ω (paper: 1.15) and
  // the scale on ω_opt(N) used by the iterative shortcut.  Ranges stay
  // inside SOR's (0, 2) stability interval and set_relax_tunables' bounds.
  space.add_float("recurse_omega", 0.6, 1.9, solvers::kRecurseOmega);
  space.add_float("omega_scale", 0.7, 1.3, 1.0);
  // The smoother is a first-class *categorical* choice dimension (like
  // KTT's kernel variants): point red-black SOR or one of the zebra line
  // variants (solvers/line_relax.h).  It belongs to the relaxation group,
  // so a relax_only space still races it — the axis an operator family
  // needs most (aniso1000 is unsolvable without it) must never be pinned
  // by the machine-knob toggle.  Jacobi is excluded, as in the trainer.
  space.add_categorical("smoother",
                        {"point_rb", "line_x", "line_y", "line_zebra_alt"},
                        /*default_index=*/0);
  // Coarse-operator formation is the second algorithmic categorical: the
  // legacy averaged-coefficient ladder versus exact Galerkin R·A·P
  // (grid/stencil_op.h).  Like the smoother it rides in the relaxation
  // group — the rotated-anisotropy families are exactly the scenarios
  // where the averaged ladder misrepresents the operator, so a relax_only
  // search must still be able to flip it.
  space.add_categorical("coarsening", {"avg", "rap"}, /*default_index=*/0);
  // Kernel implementation axes (grid/stencil_op.h KernelPolicy): the
  // coefficient layout the sweeps stream (legacy per-grid vs packed
  // SoA blocks) and the SIMD lane count of the packed kernels.  Both are
  // bitwise result-invariant — pure memory-traffic/ILP knobs — so the
  // tuner races them like any machine parameter; they sit in the
  // relaxation group because the win is operator-family-dependent (the
  // packed layout pays off on the 9-point/RAP ladders where legacy
  // sweeps stream nine separate grids).  Widths the CPU lacks are
  // clamped at dispatch (clamp_simd_width), also result-invariant.
  space.add_categorical("layout", {"legacy", "packed"}, /*default_index=*/0);
  space.add_categorical("simd_width", {"1", "2", "4"}, /*default_index=*/0);
  return space;
}

RuntimeParams decode_runtime_params(const ParamSpace& space,
                                    const Candidate& candidate,
                                    const rt::MachineProfile& base) {
  RuntimeParams params;
  params.profile = base;
  for (const rt::ProfileTunable& t : rt::profile_tunables(base)) {
    // A relax-only space carries no machine dimensions; those tunables
    // keep their base values.
    const bool searched = std::any_of(
        space.dimensions().begin(), space.dimensions().end(),
        [&](const auto& dim) { return dim.name == t.name; });
    if (!searched) continue;
    params.profile =
        rt::with_tunable(params.profile, t.name,
                         space.int_value(candidate, t.name));
  }
  params.relax.recurse_omega = space.float_value(candidate, "recurse_omega");
  params.relax.omega_scale = space.float_value(candidate, "omega_scale");
  params.relax.smoother = solvers::parse_relax_kind(
      space.categorical_value(candidate, "smoother"));
  params.coarsening = grid::parse_coarsening(
      space.categorical_value(candidate, "coarsening"));
  params.relax.kernels.layout = grid::parse_stencil_layout(
      space.categorical_value(candidate, "layout"));
  params.relax.kernels.simd_width =
      std::stoi(space.categorical_value(candidate, "simd_width"));
  return params;
}

Json SearchedProfile::to_json() const {
  // JSON cannot represent infinities (a failed default candidate reports
  // +inf); clamp to a huge finite sentinel so the document stays loadable.
  const auto finite_cap = [](double v) {
    if (std::isnan(v)) return 0.0;
    return std::isfinite(v) ? v : 1e300;
  };
  Json j = Json::object();
  j.set("profile", rt::profile_to_json(profile));
  j.set("recurse_omega", relax.recurse_omega);
  j.set("omega_scale", relax.omega_scale);
  j.set("smoother", solvers::to_string(relax.smoother));
  j.set("coarsening", grid::to_string(coarsening));
  j.set("layout", grid::to_string(relax.kernels.layout));
  j.set("simd_width", std::int64_t{relax.kernels.simd_width});
  j.set("default_seconds", finite_cap(default_seconds));
  j.set("searched_seconds", finite_cap(searched_seconds));
  j.set("evaluations", std::int64_t{evaluations});
  j.set("seed", static_cast<std::int64_t>(seed));
  j.set("generations", std::int64_t{generations});
  j.set("population", std::int64_t{population});
  return j;
}

SearchedProfile SearchedProfile::from_json(const Json& json) {
  SearchedProfile out;
  out.profile = rt::profile_from_json(json.at("profile"));
  out.relax.recurse_omega = json.at("recurse_omega").as_double();
  out.relax.omega_scale = json.at("omega_scale").as_double();
  try {
    // Documents from before the smoother / coarsening axes read as point
    // SOR on the averaged ladder.
    out.relax.smoother = solvers::parse_relax_kind(
        json.get("smoother", std::string("point_rb")));
    out.coarsening = grid::parse_coarsening(
        json.get("coarsening", std::string("avg")));
    // Documents from before the kernel-policy axes read as the legacy
    // scalar kernels.
    out.relax.kernels.layout = grid::parse_stencil_layout(
        json.get("layout", std::string("legacy")));
    out.relax.kernels.simd_width =
        static_cast<int>(json.get("simd_width", std::int64_t{1}));
    solvers::validate_relax_tunables(out.relax);
  } catch (const InvalidArgument& e) {
    throw ConfigError(std::string("searched profile: ") + e.what());
  }
  out.default_seconds = json.get("default_seconds", 0.0);
  out.searched_seconds = json.get("searched_seconds", 0.0);
  out.evaluations =
      static_cast<int>(json.get("evaluations", std::int64_t{0}));
  out.seed = static_cast<std::uint64_t>(json.get("seed", std::int64_t{0}));
  out.generations = static_cast<int>(json.get("generations", std::int64_t{0}));
  out.population = static_cast<int>(json.get("population", std::int64_t{0}));
  return out;
}

SearchedProfile search_profile(const ProfileSearchOptions& options) {
  PBMG_CHECK(options.level >= 2 && options.level <= 14,
             "search_profile: level out of range");
  PBMG_CHECK(options.instances >= 1,
             "search_profile: need at least one instance");
  PBMG_CHECK(options.target_accuracy > 1.0,
             "search_profile: target accuracy must exceed 1");

  const ParamSpace space =
      make_profile_space(options.base, !options.relax_only);
  const int n = size_of_level(options.level);

  // The base engine serves instance construction and the (untimed)
  // accuracy oracle; candidate engines are built per evaluation.
  Engine base_engine(options.base);
  rt::Scheduler& base_sched = base_engine.scheduler();
  // The workload's operator: candidates are raced on the same scenario
  // the trained tables will serve (the Poisson fast path reproduces the
  // historical workload bit for bit).
  const grid::StencilOp op = make_operator(n, options.op_family);
  const grid::StencilHierarchy ops(op);
  const grid::StencilHierarchy ops_rap(op, grid::Coarsening::kRap);
  // Candidates flip the packed-layout axis freely; pack both ladders once
  // up front so no candidate's timed sweeps pay the one-time O(n²) pack
  // (a no-op for Poisson levels, which keep their dedicated kernels).
  ops.prewarm_packed();
  ops_rap.prewarm_packed();
  Rng rng(options.seed);
  auto instances =
      tune::make_training_set(op, options.distribution, rng.split(0x5EA7C4),
                              options.instances, base_sched);

  // Workload: what a tuned binary actually spends time in — (a) iterated
  // SOR at the scaled ω_opt to the ladder's first rung, exercising the
  // ω_opt scale and the scheduler's slicing of row sweeps, then (b)
  // reference V-cycles at the candidate's RECURSE ω to target_accuracy,
  // exercising the recursion's fork/join behaviour.  Accuracy checks are
  // oracle lookups and stay untimed, mirroring bench/common's
  // probe-then-time discipline.
  const int max_sweeps = std::max(4 * n, 200);
  // A candidate is a *new Engine* built from its decoded parameters, not
  // a mutation of process-wide state.  The tester runs every instance of
  // one candidate back to back; reuse the candidate's engine across them
  // instead of paying a thread-pool spawn/teardown per
  // (candidate, instance) pair.
  std::string cached_fingerprint;
  std::unique_ptr<Engine> cached_engine;
  const auto objective = [&](const Candidate& candidate,
                             const tune::TrainingInstance& inst,
                             const Deadline& deadline) -> double {
    const RuntimeParams params =
        decode_runtime_params(space, candidate, options.base);
    const std::string fingerprint = space.fingerprint(candidate);
    if (!cached_engine || fingerprint != cached_fingerprint) {
      cached_engine = std::make_unique<Engine>(params.profile, params.relax);
      cached_fingerprint = fingerprint;
    }
    Engine& engine = *cached_engine;
    rt::Scheduler& sched = engine.scheduler();
    const double sor_omega =
        solvers::scaled_omega_opt(n, params.relax.omega_scale);
    // The candidate's smoother drives both workload phases: the iterative
    // shortcut becomes iterated line relaxation when a line variant is
    // selected (point SOR at the scaled ω_opt otherwise), and the V-cycle
    // phase relaxes with it inside the recursion.
    const solvers::RelaxKind smoother = params.relax.smoother;
    Grid2D x(n, 0.0);
    x.copy_from(inst.problem.x0);
    double elapsed = 0.0;

    bool reached = false;
    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
      const double t0 = now_seconds();
      if (solvers::is_line_relax(smoother)) {
        solvers::line_relax_sweep(op, x, inst.problem.b, smoother, sched,
                                  engine.scratch(), params.relax.kernels);
      } else {
        solvers::sor_sweep(op, x, inst.problem.b, sor_omega, sched,
                           params.relax.kernels);
      }
      elapsed += now_seconds() - t0;
      if (deadline.expired()) return kInf;
      if (tune::accuracy_of(inst, x, base_sched) >= kSorPhaseAccuracy) {
        reached = true;
        break;
      }
    }
    if (!reached) return kInf;

    solvers::VCycleOptions vopts;
    vopts.omega = params.relax.recurse_omega;
    vopts.relaxation = smoother;
    vopts.kernels = params.relax.kernels;
    // The candidate's coarsening picks which prebuilt ladder the V-cycle
    // phase corrects against (both share the fine operator, so the SOR
    // phase above is unaffected).
    const grid::StencilHierarchy& vops_ladder =
        params.coarsening == grid::Coarsening::kRap ? ops_rap : ops;
    for (int cycle = 0; cycle < options.max_cycles; ++cycle) {
      const double t0 = now_seconds();
      solvers::vcycle(vops_ladder, x, inst.problem.b, vopts, sched,
                      engine.direct(), engine.scratch());
      elapsed += now_seconds() - t0;
      if (deadline.expired()) return kInf;
      if (tune::accuracy_of(inst, x, base_sched) >=
          options.target_accuracy) {
        return elapsed;
      }
    }
    return kInf;  // never converged: the candidate is unusable
  };

  TesterOptions topts = options.tester;
  if (topts.metrics == nullptr) topts.metrics = options.metrics;
  CandidateTester tester(space, objective, std::move(instances), topts);
  PopulationOptions popts = options.population;
  popts.seed = options.seed;
  if (!popts.log && options.log) popts.log = options.log;
  if (popts.metrics == nullptr) popts.metrics = options.metrics;
  PopulationSearch engine(space, tester, popts);
  const SearchResult result = engine.run();

  const RuntimeParams best =
      decode_runtime_params(space, result.best.candidate, options.base);
  SearchedProfile out;
  out.profile = best.profile;
  out.profile.name = options.base.name + "+searched";
  out.relax = best.relax;
  out.coarsening = best.coarsening;
  out.default_seconds = result.default_total_seconds;
  out.searched_seconds = result.best.total_seconds;
  out.evaluations = result.evaluations;
  out.seed = options.seed;
  out.generations = popts.generations;
  out.population = popts.population;
  if (options.log) {
    std::ostringstream oss;
    oss << "[search] done: " << space.describe(result.best.candidate)
        << "  workload " << out.default_seconds * 1e3 << " -> "
        << out.searched_seconds * 1e3 << " ms over " << out.evaluations
        << " evaluations";
    options.log(oss.str());
  }
  return out;
}

}  // namespace pbmg::search
