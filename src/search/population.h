#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "search/candidate_tester.h"
#include "search/param_space.h"

/// \file population.h
/// Elitist mutate-and-race population search (PetaBricks sgatuner style).
///
/// Each generation mutates every elite, mixes in fresh random immigrants,
/// races the offspring against the incumbents through CandidateTester's
/// pruning, and keeps the fastest `population` survivors.  The default
/// candidate is always evaluated first so the search result can never be
/// worse than the un-searched configuration, and the RNG is a seeded
/// support/rng stream: with a deterministic objective the whole search is
/// bit-reproducible.

namespace pbmg::search {

/// Population-search hyper-parameters.
struct PopulationOptions {
  int population = 4;         ///< elites kept between generations
  int mutants_per_elite = 2;  ///< mutation offspring per elite per generation
  int immigrants = 1;         ///< fresh random candidates per generation
  int generations = 8;        ///< mutation rounds
  std::uint64_t seed = 20091114;  ///< RNG seed (same seed ⇒ same search)

  /// Overall wall-clock budget; generations stop once exceeded.
  double time_budget_seconds = std::numeric_limits<double>::infinity();

  /// Optional progress sink (one line per generation).
  std::function<void(const std::string&)> log;

  /// Optional telemetry sink (must outlive the search).  When set, run()
  /// feeds pbmg_search_generations_total / pbmg_search_evaluations_total
  /// counters and tracks the best-so-far trajectory in the
  /// pbmg_search_best_total_seconds gauge.  Usually the same registry the
  /// tester writes to (TesterOptions::metrics).
  obs::MetricsRegistry* metrics = nullptr;
};

/// A candidate together with its measured cost.
struct Evaluated {
  Candidate candidate;
  double total_seconds = std::numeric_limits<double>::infinity();
  double mean_seconds = std::numeric_limits<double>::infinity();
};

/// Outcome of a population search.
struct SearchResult {
  Evaluated best;                    ///< fastest candidate found
  double default_total_seconds =     ///< score of the space's default
      std::numeric_limits<double>::infinity();
  int evaluations = 0;               ///< objective invocations consumed
  int generations_run = 0;
  std::vector<double> best_history;  ///< best total after each generation
};

/// Elitist mutate-and-race engine.
class PopulationSearch {
 public:
  /// Space and tester must outlive the search.
  PopulationSearch(const ParamSpace& space, CandidateTester& tester,
                   PopulationOptions options);

  /// Runs the search.  Throws NumericalError when no candidate (including
  /// the default) completes the test set — the objective is then unusable.
  SearchResult run();

 private:
  void log_line(const std::string& line) const;

  const ParamSpace& space_;
  CandidateTester& tester_;
  PopulationOptions options_;
};

}  // namespace pbmg::search
