#include "search/population.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "support/error.h"
#include "support/timer.h"

namespace pbmg::search {

PopulationSearch::PopulationSearch(const ParamSpace& space,
                                   CandidateTester& tester,
                                   PopulationOptions options)
    : space_(space), tester_(tester), options_(std::move(options)) {
  PBMG_CHECK(options_.population >= 1,
             "PopulationSearch: population must be >= 1");
  PBMG_CHECK(options_.mutants_per_elite >= 0 && options_.immigrants >= 0,
             "PopulationSearch: offspring counts must be >= 0");
  PBMG_CHECK(options_.mutants_per_elite + options_.immigrants >= 1,
             "PopulationSearch: each generation needs at least one offspring");
  PBMG_CHECK(options_.generations >= 0,
             "PopulationSearch: generations must be >= 0");
  PBMG_CHECK(space_.size() >= 1, "PopulationSearch: empty parameter space");
}

void PopulationSearch::log_line(const std::string& line) const {
  if (options_.log) options_.log(line);
}

SearchResult PopulationSearch::run() {
  Rng rng(options_.seed);
  WallTimer timer;
  SearchResult result;
  std::vector<Evaluated> population;
  std::set<std::string> seen;
  const int evaluations_before = tester_.evaluations();
  obs::Gauge* best_gauge =
      options_.metrics != nullptr
          ? &options_.metrics->gauge("pbmg_search_best_total_seconds")
          : nullptr;
  obs::Counter* generations_total =
      options_.metrics != nullptr
          ? &options_.metrics->counter("pbmg_search_generations_total")
          : nullptr;

  double best_known = std::numeric_limits<double>::infinity();
  const auto race = [&](Candidate candidate) {
    space_.clamp(candidate);
    const std::string key = space_.fingerprint(candidate);
    if (!seen.insert(key).second) return;  // already measured this point
    const TestResult tested = tester_.test(candidate, best_known);
    if (!tested.completed) return;         // abandoned, timed out, or failed
    if (tested.total_seconds < best_known && best_gauge != nullptr) {
      best_gauge->set(tested.total_seconds);
    }
    best_known = std::min(best_known, tested.total_seconds);
    population.push_back(Evaluated{std::move(candidate), tested.total_seconds,
                                   tested.mean_seconds});
  };

  // Seed the population: the default configuration first (its score is the
  // baseline the search must beat), then random exploration up to size.
  race(space_.default_candidate());
  result.default_total_seconds =
      population.empty() ? std::numeric_limits<double>::infinity()
                         : population.front().total_seconds;
  for (int i = 1; i < options_.population; ++i) {
    race(space_.random_candidate(rng));
  }

  const auto select = [&] {
    // Stable sort: ties resolve to the earlier (incumbent) candidate, which
    // keeps the search deterministic and biased toward proven points.
    std::stable_sort(population.begin(), population.end(),
                     [](const Evaluated& a, const Evaluated& b) {
                       return a.total_seconds < b.total_seconds;
                     });
    if (static_cast<int>(population.size()) > options_.population) {
      population.resize(static_cast<std::size_t>(options_.population));
    }
  };
  select();

  for (int gen = 1; gen <= options_.generations; ++gen) {
    if (timer.elapsed() > options_.time_budget_seconds) break;

    // Breed first (fixed RNG consumption regardless of test outcomes),
    // then race: keeps runs with the same seed on identical paths.
    std::vector<Candidate> offspring;
    for (const Evaluated& elite : population) {
      for (int m = 0; m < options_.mutants_per_elite; ++m) {
        offspring.push_back(space_.mutated(elite.candidate, rng));
      }
    }
    // Immigrants always flow — and when *nothing* has completed yet, the
    // elites' whole breeding budget goes to fresh random candidates too.
    // A categorical axis can make most of the space infeasible on some
    // workloads (e.g. only alternating-zebra smoothing converges on the
    // rotated-anisotropy operator family), so an all-DNF seed round must
    // keep hunting for the feasible region, not give up.
    const int immigrants =
        population.empty()
            ? options_.immigrants +
                  options_.population * options_.mutants_per_elite
            : options_.immigrants;
    for (int i = 0; i < immigrants; ++i) {
      offspring.push_back(space_.random_candidate(rng));
    }
    for (Candidate& candidate : offspring) race(std::move(candidate));

    select();
    ++result.generations_run;
    if (generations_total != nullptr) generations_total->add(1);
    result.best_history.push_back(population.empty()
                                      ? std::numeric_limits<double>::infinity()
                                      : population.front().total_seconds);
    if (options_.log && !population.empty()) {
      std::ostringstream oss;
      oss << "[search] gen " << gen << "/" << options_.generations
          << " best " << population.front().total_seconds * 1e3 << " ms ("
          << space_.describe(population.front().candidate) << ")";
      log_line(oss.str());
    }
  }

  result.evaluations = tester_.evaluations() - evaluations_before;
  if (options_.metrics != nullptr) {
    options_.metrics->counter("pbmg_search_evaluations_total")
        .add(result.evaluations);
  }
  if (population.empty()) {
    throw NumericalError(
        "PopulationSearch: no candidate completed the test set (objective "
        "infeasible under the given timeout)");
  }
  result.best = population.front();
  return result;
}

}  // namespace pbmg::search
