#include "obs/phase_profile.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace pbmg::obs {

namespace {

constexpr double kNanosPerSecond = 1e9;

int clamp_level(int level) {
  return std::clamp(level, 0, PhaseProfile::kMaxLevel);
}

}  // namespace

const char* to_string(Phase phase) {
  switch (phase) {
    case Phase::kRelax:
      return "relax";
    case Phase::kLineSolve:
      return "line_solve";
    case Phase::kRestrict:
      return "restrict";
    case Phase::kInterpolate:
      return "interpolate";
    case Phase::kDirect:
      return "direct";
    case Phase::kRapSetup:
      return "rap_setup";
  }
  return "unknown";
}

const PhaseProfile::Cell& PhaseProfile::cell(Phase phase, int level) const {
  return cells_[static_cast<std::size_t>(clamp_level(level) * kPhaseCount +
                                         static_cast<int>(phase))];
}

PhaseProfile::Cell& PhaseProfile::cell(Phase phase, int level) {
  return cells_[static_cast<std::size_t>(clamp_level(level) * kPhaseCount +
                                         static_cast<int>(phase))];
}

void PhaseProfile::record(Phase phase, int level, double seconds) {
  Cell& c = cell(phase, level);
  c.nanos.fetch_add(static_cast<std::int64_t>(seconds * kNanosPerSecond),
                    std::memory_order_relaxed);
  c.count.fetch_add(1, std::memory_order_relaxed);
}

double PhaseProfile::total_seconds() const {
  std::int64_t nanos = 0;
  for (const Cell& c : cells_) {
    nanos += c.nanos.load(std::memory_order_relaxed);
  }
  return static_cast<double>(nanos) / kNanosPerSecond;
}

double PhaseProfile::phase_seconds(Phase phase) const {
  std::int64_t nanos = 0;
  for (int level = 0; level <= kMaxLevel; ++level) {
    nanos += cell(phase, level).nanos.load(std::memory_order_relaxed);
  }
  return static_cast<double>(nanos) / kNanosPerSecond;
}

std::vector<PhaseProfile::Entry> PhaseProfile::entries() const {
  std::vector<Entry> out;
  for (int level = kMaxLevel; level >= 0; --level) {
    for (int p = 0; p < kPhaseCount; ++p) {
      const Cell& c = cell(static_cast<Phase>(p), level);
      const std::int64_t count = c.count.load(std::memory_order_relaxed);
      if (count == 0) continue;
      Entry entry;
      entry.level = level;
      entry.phase = static_cast<Phase>(p);
      entry.seconds =
          static_cast<double>(c.nanos.load(std::memory_order_relaxed)) /
          kNanosPerSecond;
      entry.count = count;
      out.push_back(entry);
    }
  }
  return out;
}

void PhaseProfile::reset() {
  for (Cell& c : cells_) {
    c.nanos.store(0, std::memory_order_relaxed);
    c.count.store(0, std::memory_order_relaxed);
  }
}

Json to_json(const PhaseProfile& profile) {
  const auto entries = profile.entries();
  Json doc = Json::object();
  doc.set("total_seconds", profile.total_seconds());
  Json levels = Json::array();
  int current_level = -1;
  Json* row = nullptr;
  for (const auto& entry : entries) {
    if (entry.level != current_level) {
      Json fresh = Json::object();
      fresh.set("level", entry.level);
      levels.push_back(std::move(fresh));
      row = &levels.as_array().back();
      current_level = entry.level;
    }
    const std::string phase = to_string(entry.phase);
    row->set(phase + "_s", entry.seconds);
    row->set(phase + "_count", entry.count);
  }
  doc.set("levels", std::move(levels));
  return doc;
}

}  // namespace pbmg::obs
