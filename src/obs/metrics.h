#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/json.h"

/// \file metrics.h
/// Unified metrics substrate: named counters, gauges, and log-scale
/// latency histograms behind a thread-safe registry, with JSON and
/// Prometheus-style text exposition.
///
/// Design constraints (this layer sits under a concurrent solve service
/// whose hot path is tens of microseconds per sweep):
///
///   - recording is lock-free: counters and histogram buckets are relaxed
///     atomics, so concurrent solves never serialize on a metrics mutex;
///   - lookups are amortized away: registry accessors return references
///     with stable addresses, resolved once at wiring time and then
///     updated without touching the registry again;
///   - snapshots are cheap and isolated: a snapshot is a plain value copy
///     (relaxed reads), so exposition never blocks writers and a taken
///     snapshot never changes under further recording.
///
/// The "Sustainable Performance Portability" framing in PAPERS.md is the
/// motivation: detecting when a deployed tuned configuration drifts off
/// its optimum requires continuous measurement, and this registry is the
/// substrate the ROADMAP's drift-detection follow-on reads.

namespace pbmg::obs {

/// Monotonic relaxed-atomic counter.
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins gauge (a sampled level, not an accumulation).
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Consistent value copy of one histogram (see Histogram::snapshot).
struct HistogramSnapshot {
  std::int64_t count = 0;  ///< total recorded samples (sum of buckets)
  double sum = 0.0;        ///< sum of recorded values
  double min = 0.0;        ///< smallest recorded value (0 when count == 0)
  double max = 0.0;        ///< largest recorded value (0 when count == 0)
  std::vector<std::int64_t> buckets;  ///< per-bucket counts (see Histogram)

  double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }

  /// p-th percentile estimate, p in [0, 100]: the geometric midpoint of
  /// the bucket holding the p-th sample, clamped to [min, max].  Accuracy
  /// is bounded by the bucket resolution (Histogram::kRelativeResolution);
  /// returns 0 when the histogram is empty.
  double percentile(double p) const;
};

/// Fixed-bucket log-scale histogram for latency-shaped values (seconds).
///
/// Buckets are logarithmically spaced with kBucketsPerDecade buckets per
/// decade from 10^kMinExp (values at or below the first boundary land in
/// bucket 0) up to 10^kMaxExp, plus one overflow bucket.  Recording is one
/// std::log10 plus one relaxed fetch_add — no locks, no allocation — so
/// concurrent recording is lossless: every record lands in exactly one
/// bucket and snapshot counts equal the number of record() calls that
/// completed before the snapshot.
class Histogram {
 public:
  static constexpr int kBucketsPerDecade = 8;
  static constexpr int kMinExp = -7;  ///< first boundary 10^-7 s (100 ns)
  static constexpr int kMaxExp = 2;   ///< last bounded boundary 100 s
  static constexpr int kBucketCount =
      (kMaxExp - kMinExp) * kBucketsPerDecade + 1;  ///< + overflow bucket

  /// Worst-case relative error of percentile estimates: half a bucket in
  /// log space, i.e. a factor of 10^(1/(2·kBucketsPerDecade)) ≈ 1.155.
  static double relative_resolution();

  /// Upper bound of bucket `i` (+inf for the overflow bucket).
  static double bucket_upper_bound(int i);

  /// Geometric midpoint of bucket `i` (percentile representative).
  static double bucket_midpoint(int i);

  /// Bucket index for `value` (non-finite and negative values clamp into
  /// the boundary buckets rather than being dropped).
  static int bucket_index(double value);

  /// Records one sample.  Thread-safe, lock-free.
  void record(double value);

  /// Samples recorded so far.
  std::int64_t count() const;

  /// Value copy of the current state.  Relaxed reads: concurrent records
  /// may or may not be included, but the snapshot itself is internally
  /// consistent (count == sum of buckets) and immutable once taken.
  HistogramSnapshot snapshot() const;

 private:
  std::array<std::atomic<std::int64_t>, kBucketCount> buckets_{};
  std::atomic<double> sum_{0.0};
  // Sentinels collapse min/max updates to plain CAS loops; snapshots only
  // report them once count > 0.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::atomic<std::int64_t> count_{0};
};

/// Value copy of a whole registry (see MetricsRegistry::snapshot).
struct RegistrySnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Thread-safe name → metric registry.  Accessors create on first use and
/// return references whose addresses are stable for the registry's
/// lifetime, so callers resolve a metric once and then update it without
/// locking.  A name identifies exactly one metric kind; asking for the
/// same name as a different kind throws InvalidArgument.
///
/// Names follow the Prometheus convention and may carry labels:
/// `pbmg_solve_latency_seconds{n="129",acc="3"}`.  The exposition
/// functions understand the brace form (text exposition splices the
/// histogram `le` label into an existing label set).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Cheap consistent snapshot: copies every metric's current value under
  /// the registry lock (the lock orders only registration and snapshot —
  /// recording never takes it).
  RegistrySnapshot snapshot() const;

 private:
  void check_name_free(const std::string& name, const char* wanted) const;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// JSON exposition: {"counters": {...}, "gauges": {...}, "histograms":
/// {name: {count, sum, mean, min, max, p50, p90, p99}}}.  Designed to
/// embed into BENCH_*.json documents and service snapshots.
Json to_json(const RegistrySnapshot& snapshot);

/// Prometheus-style text exposition (`# TYPE` lines, cumulative
/// `_bucket{le="..."}` histogram series, `_sum`/`_count`).
std::string to_text(const RegistrySnapshot& snapshot);

}  // namespace pbmg::obs
