#include "obs/drift.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.h"

namespace pbmg::obs {

double ks_distance(const HistogramSnapshot& a, const HistogramSnapshot& b) {
  if (a.count <= 0 || b.count <= 0) return 0.0;
  const std::size_t buckets = std::max(a.buckets.size(), b.buckets.size());
  double cdf_a = 0.0;
  double cdf_b = 0.0;
  double worst = 0.0;
  for (std::size_t i = 0; i < buckets; ++i) {
    if (i < a.buckets.size()) {
      cdf_a += static_cast<double>(a.buckets[i]) /
               static_cast<double>(a.count);
    }
    if (i < b.buckets.size()) {
      cdf_b += static_cast<double>(b.buckets[i]) /
               static_cast<double>(b.count);
    }
    worst = std::max(worst, std::abs(cdf_a - cdf_b));
  }
  return std::min(worst, 1.0);
}

Json snapshot_to_json(const HistogramSnapshot& snapshot) {
  Json json = Json::object();
  json.set("count", snapshot.count);
  json.set("sum", snapshot.sum);
  json.set("min", snapshot.min);
  json.set("max", snapshot.max);
  Json buckets = Json::array();
  std::size_t last = snapshot.buckets.size();
  while (last > 0 && snapshot.buckets[last - 1] == 0) --last;
  for (std::size_t i = 0; i < last; ++i) {
    buckets.push_back(snapshot.buckets[i]);
  }
  json.set("buckets", std::move(buckets));
  return json;
}

HistogramSnapshot snapshot_from_json(const Json& json) {
  HistogramSnapshot snapshot;
  snapshot.count = json.at("count").as_int();
  snapshot.sum = json.at("sum").as_double();
  snapshot.min = json.at("min").as_double();
  snapshot.max = json.at("max").as_double();
  const auto& buckets = json.at("buckets").as_array();
  if (buckets.size() > static_cast<std::size_t>(Histogram::kBucketCount)) {
    throw ConfigError("latency baseline: histogram has " +
                      std::to_string(buckets.size()) +
                      " buckets, expected at most " +
                      std::to_string(Histogram::kBucketCount));
  }
  snapshot.buckets.assign(static_cast<std::size_t>(Histogram::kBucketCount),
                          0);
  std::int64_t total = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    snapshot.buckets[i] = buckets[i].as_int();
    total += snapshot.buckets[i];
  }
  if (total != snapshot.count) {
    throw ConfigError("latency baseline: bucket sum " + std::to_string(total) +
                      " does not match count " +
                      std::to_string(snapshot.count));
  }
  return snapshot;
}

Json LatencyBaseline::to_json() const {
  Json entries = Json::array();
  for (const auto& [key, snapshot] : entries_) {
    Json entry = snapshot_to_json(snapshot);
    entry.set("n", key.n);
    entry.set("accuracy_index", key.accuracy_index);
    // Written only when true: v7 documents that predate the cycle-type
    // split have no "fmg" field, and absent reads as false below.
    if (key.fmg) entry.set("fmg", true);
    entries.push_back(std::move(entry));
  }
  Json json = Json::object();
  json.set("entries", std::move(entries));
  return json;
}

LatencyBaseline LatencyBaseline::from_json(const Json& json) {
  LatencyBaseline baseline;
  for (const Json& entry : json.at("entries").as_array()) {
    baseline.set(static_cast<int>(entry.at("n").as_int()),
                 static_cast<int>(entry.at("accuracy_index").as_int()),
                 snapshot_from_json(entry),
                 entry.contains("fmg") && entry.at("fmg").as_bool());
  }
  return baseline;
}

namespace {

void record_into(HistogramSnapshot& window, double seconds) {
  if (window.buckets.empty()) {
    window.buckets.assign(static_cast<std::size_t>(Histogram::kBucketCount),
                          0);
  }
  const int bucket = Histogram::bucket_index(seconds);
  window.buckets[static_cast<std::size_t>(bucket)] += 1;
  window.sum += seconds;
  window.min = window.count == 0 ? seconds : std::min(window.min, seconds);
  window.max = window.count == 0 ? seconds : std::max(window.max, seconds);
  window.count += 1;
}

}  // namespace

DriftObservation DriftWatcher::observe(int n, int accuracy_index,
                                       double seconds, bool fmg,
                                       double initial_residual) {
  DriftObservation obs;
  std::lock_guard<std::mutex> lock(mutex_);
  KeyState& state = windows_[LatencyBaseline::Key{n, accuracy_index, fmg}];
  // Input-distribution summary first, before the baseline gate below:
  // workload statistics are meaningful (and wanted) for request shapes
  // that have never been latency-baselined.
  if (std::isfinite(initial_residual) && initial_residual > 0.0) {
    const double value = std::log10(initial_residual);
    state.r_count += 1;
    const double delta = value - state.r_mean;
    state.r_mean += delta / static_cast<double>(state.r_count);
    state.r_m2 += delta * (value - state.r_mean);
  }
  const HistogramSnapshot* baseline = baseline_.find(n, accuracy_index, fmg);
  if (baseline == nullptr || baseline->count <= 0) {
    // Never-measured request shape: nothing to compare against.  Skipping
    // is honest — inventing a baseline from early live samples would make
    // the watcher blind to drift that was already present at install.
    return obs;
  }
  obs.baselined = true;
  record_into(state.window, seconds);
  if (state.window.count < policy_.min_window_samples) return obs;

  obs.window_complete = true;
  const double live_p90 = state.window.percentile(90.0);
  const double base_p90 = baseline->percentile(90.0);
  obs.p90_ratio = base_p90 > 0.0
                      ? live_p90 / base_p90
                      : (live_p90 > 0.0
                             ? std::numeric_limits<double>::infinity()
                             : 1.0);
  obs.ks = ks_distance(state.window, *baseline);
  obs.drifted =
      obs.p90_ratio > policy_.p90_ratio && obs.ks > policy_.ks_threshold;
  state.window = HistogramSnapshot{};  // windows are tumbling, not sliding
  if (obs.drifted) {
    state.drift_streak += 1;
    if (state.drift_streak >= policy_.sustained_windows) {
      obs.retune = true;
      state.drift_streak = 0;  // don't re-fire every window mid-retune
    }
  } else {
    state.drift_streak = 0;
  }
  return obs;
}

std::map<LatencyBaseline::Key, ResidualStats> DriftWatcher::residual_stats()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<LatencyBaseline::Key, ResidualStats> stats;
  for (const auto& [key, state] : windows_) {
    if (state.r_count <= 0) continue;
    ResidualStats entry;
    entry.count = state.r_count;
    entry.mean_log10 = state.r_mean;
    entry.stddev_log10 =
        state.r_count > 1
            ? std::sqrt(state.r_m2 / static_cast<double>(state.r_count))
            : 0.0;
    stats[key] = entry;
  }
  return stats;
}

void DriftWatcher::rebase(LatencyBaseline baseline) {
  std::lock_guard<std::mutex> lock(mutex_);
  baseline_ = std::move(baseline);
  windows_.clear();
}

}  // namespace pbmg::obs
