#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "support/error.h"

namespace pbmg::obs {

namespace {

/// Relaxed-CAS add for atomic doubles (fetch_add on floating atomics is
/// C++20 but not yet universal across the toolchains CI runs).
void atomic_add(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double value) {
  double cur = target.load(std::memory_order_relaxed);
  while (value < cur && !target.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double value) {
  double cur = target.load(std::memory_order_relaxed);
  while (value > cur && !target.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

/// Splits a Prometheus-convention name into (base, labels): the labels
/// include the braces and are empty when the name carries none.
std::pair<std::string, std::string> split_labels(const std::string& name) {
  const auto brace = name.find('{');
  if (brace == std::string::npos) return {name, ""};
  return {name.substr(0, brace), name.substr(brace)};
}

/// Formats a double the way Prometheus text exposition expects.
std::string format_value(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::ostringstream oss;
  oss << v;
  return oss.str();
}

}  // namespace

// ------------------------------------------------------------ Histogram --

double Histogram::relative_resolution() {
  return std::pow(10.0, 1.0 / (2.0 * kBucketsPerDecade));
}

double Histogram::bucket_upper_bound(int i) {
  if (i >= kBucketCount - 1) return std::numeric_limits<double>::infinity();
  return std::pow(10.0, kMinExp + static_cast<double>(i + 1) /
                                      kBucketsPerDecade);
}

double Histogram::bucket_midpoint(int i) {
  if (i >= kBucketCount - 1) {
    // Overflow bucket has no geometric midpoint; its lower bound is the
    // best representative (snapshots clamp by the recorded max anyway).
    return std::pow(10.0, kMaxExp);
  }
  return std::pow(10.0, kMinExp + (static_cast<double>(i) + 0.5) /
                                      kBucketsPerDecade);
}

int Histogram::bucket_index(double value) {
  if (!(value > 0.0)) return 0;  // zero, negative, NaN → first bucket
  const double position =
      (std::log10(value) - kMinExp) * kBucketsPerDecade;
  const int index = static_cast<int>(std::ceil(position)) - 1;
  return std::clamp(index, 0, kBucketCount - 1);
}

void Histogram::record(double value) {
  buckets_[static_cast<std::size_t>(bucket_index(value))].fetch_add(
      1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_min(min_, value);
  atomic_max(max_, value);
}

std::int64_t Histogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kBucketCount);
  std::int64_t total = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    snap.buckets[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    total += snap.buckets[static_cast<std::size_t>(i)];
  }
  // Count derives from the bucket reads so the snapshot is internally
  // consistent even while writers keep recording.
  snap.count = total;
  snap.sum = sum_.load(std::memory_order_relaxed);
  if (total > 0) {
    snap.min = min_.load(std::memory_order_relaxed);
    snap.max = max_.load(std::memory_order_relaxed);
  }
  return snap;
}

double HistogramSnapshot::percentile(double p) const {
  if (count <= 0) return 0.0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  const std::int64_t rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(clamped / 100.0 *
                                             static_cast<double>(count))));
  std::int64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      const double estimate =
          Histogram::bucket_midpoint(static_cast<int>(i));
      return std::clamp(estimate, min, max);
    }
  }
  return max;
}

// ----------------------------------------------------- MetricsRegistry --

void MetricsRegistry::check_name_free(const std::string& name,
                                      const char* wanted) const {
  const bool taken = (wanted != std::string("counter") &&
                      counters_.find(name) != counters_.end()) ||
                     (wanted != std::string("gauge") &&
                      gauges_.find(name) != gauges_.end()) ||
                     (wanted != std::string("histogram") &&
                      histograms_.find(name) != histograms_.end());
  PBMG_CHECK(!taken, "MetricsRegistry: metric '" + name +
                         "' already registered as a different kind than " +
                         wanted);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    check_name_free(name, "counter");
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    check_name_free(name, "gauge");
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    check_name_free(name, "histogram");
    it = histograms_.emplace(name, std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace(name, histogram->snapshot());
  }
  return snap;
}

// ---------------------------------------------------------- exposition --

Json to_json(const RegistrySnapshot& snapshot) {
  Json doc = Json::object();
  Json counters = Json::object();
  for (const auto& [name, value] : snapshot.counters) {
    counters.set(name, value);
  }
  doc.set("counters", std::move(counters));
  Json gauges = Json::object();
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.set(name, value);
  }
  doc.set("gauges", std::move(gauges));
  Json histograms = Json::object();
  for (const auto& [name, hist] : snapshot.histograms) {
    Json h = Json::object();
    h.set("count", hist.count);
    h.set("sum", hist.sum);
    if (hist.count > 0) {
      h.set("mean", hist.mean());
      h.set("min", hist.min);
      h.set("max", hist.max);
      h.set("p50", hist.percentile(50.0));
      h.set("p90", hist.percentile(90.0));
      h.set("p99", hist.percentile(99.0));
    }
    histograms.set(name, std::move(h));
  }
  doc.set("histograms", std::move(histograms));
  return doc;
}

std::string to_text(const RegistrySnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    const auto [base, labels] = split_labels(name);
    out << "# TYPE " << base << " counter\n";
    out << base << labels << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const auto [base, labels] = split_labels(name);
    out << "# TYPE " << base << " gauge\n";
    out << base << labels << ' ' << format_value(value) << '\n';
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const auto [base, labels] = split_labels(name);
    out << "# TYPE " << base << " histogram\n";
    // Splice `le` into an existing label set: {a="b"} → {a="b",le="..."}.
    const auto bucket_labels = [&](double upper) {
      std::string le = "le=\"" + format_value(upper) + "\"";
      if (labels.empty()) return "{" + le + "}";
      return labels.substr(0, labels.size() - 1) + "," + le + "}";
    };
    std::int64_t cumulative = 0;
    for (std::size_t i = 0; i < hist.buckets.size(); ++i) {
      if (hist.buckets[i] == 0 && i + 1 < hist.buckets.size()) continue;
      cumulative += hist.buckets[i];
      out << base << "_bucket"
          << bucket_labels(Histogram::bucket_upper_bound(static_cast<int>(i)))
          << ' ' << cumulative << '\n';
    }
    out << base << "_sum" << labels << ' ' << format_value(hist.sum) << '\n';
    out << base << "_count" << labels << ' ' << hist.count << '\n';
  }
  return out.str();
}

}  // namespace pbmg::obs
