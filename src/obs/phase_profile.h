#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "support/json.h"
#include "support/timer.h"

/// \file phase_profile.h
/// Per-solve wall-time attribution: which multigrid level spent how long
/// in which phase.
///
/// A PhaseProfile is a (level × phase) grid of relaxed-atomic
/// accumulators; solvers wrap each sweep-granularity operation (one
/// relaxation sweep, one residual+restriction, one interpolation, one
/// direct solve, one Galerkin RAP ladder build) in a ScopedPhaseTimer.
/// The hooks sit *between* kernels, never inside their parallel loops, so
/// a profile adds two clock reads per sweep — microseconds against
/// sweeps that cost tens of microseconds to milliseconds — and the
/// null-sink fast path (a null profile pointer) reduces every hook to one
/// predictable branch, keeping the un-profiled solve path unmeasurably
/// close to the pre-instrumentation code.
///
/// Profiles are thread-safe: concurrent solves may share one profile to
/// aggregate a workload-wide breakdown (bench/fig17_concurrent_service),
/// or each request can carry its own (SolveRequest::profile).

namespace pbmg::obs {

/// Phases a solve's wall time is attributed to.
enum class Phase {
  kRelax = 0,     ///< point relaxation sweeps (SOR / Jacobi)
  kLineSolve,     ///< zebra line-relaxation sweeps (batched Thomas)
  kRestrict,      ///< residual/problem formation + restriction
  kInterpolate,   ///< correction/solution interpolation
  kDirect,        ///< banded-Cholesky base solves
  kRapSetup,      ///< lazy Galerkin R·A·P ladder construction
};

inline constexpr int kPhaseCount = 6;

/// Short stable identifier ("relax", "line_solve", ...).
const char* to_string(Phase phase);

/// Accumulates per-(level, phase) wall time and call counts.
class PhaseProfile {
 public:
  /// Highest attributable level; records above it clamp (level 15 is
  /// N = 32769, beyond every trained configuration).
  static constexpr int kMaxLevel = 15;

  PhaseProfile() = default;
  PhaseProfile(const PhaseProfile&) = delete;
  PhaseProfile& operator=(const PhaseProfile&) = delete;

  /// Adds `seconds` to the (level, phase) cell.  Thread-safe, lock-free.
  void record(Phase phase, int level, double seconds);

  /// Total attributed time across all cells.
  double total_seconds() const;

  /// Total attributed time of one phase across all levels.
  double phase_seconds(Phase phase) const;

  /// One non-empty cell of the profile.
  struct Entry {
    int level = 0;
    Phase phase = Phase::kRelax;
    double seconds = 0.0;
    std::int64_t count = 0;  ///< scoped-timer activations
  };

  /// All non-empty cells, finest level first, phases in enum order.
  std::vector<Entry> entries() const;

  /// Zeroes every cell (reuse across solves).
  void reset();

 private:
  struct Cell {
    std::atomic<std::int64_t> nanos{0};
    std::atomic<std::int64_t> count{0};
  };

  const Cell& cell(Phase phase, int level) const;
  Cell& cell(Phase phase, int level);

  std::array<Cell, (kMaxLevel + 1) * kPhaseCount> cells_{};
};

/// RAII hook: times its scope into `profile`, or does nothing at all —
/// not even a clock read — when `profile` is null (the fast path every
/// un-profiled solve takes).
class ScopedPhaseTimer {
 public:
  ScopedPhaseTimer(PhaseProfile* profile, Phase phase, int level)
      : profile_(profile), phase_(phase), level_(level) {
    if (profile_ != nullptr) start_ = now_seconds();
  }
  ~ScopedPhaseTimer() {
    if (profile_ != nullptr) {
      profile_->record(phase_, level_, now_seconds() - start_);
    }
  }
  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  PhaseProfile* profile_;
  Phase phase_;
  int level_;
  double start_ = 0.0;
};

/// JSON exposition: {"total_seconds": ..., "levels": [{"level": L,
/// "<phase>_s": ..., "<phase>_count": ...}, ...]} — one row per level
/// that recorded anything, finest first.
Json to_json(const PhaseProfile& profile);

}  // namespace pbmg::obs
