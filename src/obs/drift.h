#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <utility>

#include "obs/metrics.h"
#include "support/json.h"

/// \file drift.h
/// Latency-drift detection against a tuned baseline.
///
/// A tuned configuration is only optimal for the machine state it was
/// measured on (PAPERS.md: "Software Autotuning for Sustainable
/// Performance Portability").  This module supplies the comparison half
/// of the re-tune-over-time loop: at tune/install time the service
/// snapshots a per-(n × accuracy) latency distribution (LatencyBaseline,
/// persisted alongside the tuned-table JSON); at serving time a
/// DriftWatcher accumulates live samples into per-key windows and, each
/// time a window fills, compares it against the baseline with two
/// tunable tests — a p90 ratio threshold (is the tail slower, and by how
/// much?) and a KS-style bucket-mass distance (did the distribution's
/// shape actually move, or did one outlier drag the percentile?).  Only
/// when both tests fail for `sustained_windows` consecutive windows does
/// the watcher signal a retune, which keeps one noisy window — a page
/// cache miss, a CPU migration — from triggering a full re-search.

namespace pbmg::obs {

/// Kolmogorov–Smirnov-style distance between two histograms: the maximum
/// absolute difference of their cumulative bucket-mass distributions
/// (each histogram's buckets normalized by its own count).  Shared log
/// bucket boundaries make this a pure array walk.  Returns 0 when either
/// histogram is empty; range [0, 1].
double ks_distance(const HistogramSnapshot& a, const HistogramSnapshot& b);

/// Serialization of one histogram snapshot (count/sum/min/max/buckets),
/// used by LatencyBaseline persistence.  Trailing zero buckets are
/// elided; from_json re-pads to Histogram::kBucketCount.
Json snapshot_to_json(const HistogramSnapshot& snapshot);
HistogramSnapshot snapshot_from_json(const Json& json);

/// Baseline latency distributions keyed by (n, accuracy_index, cycle
/// type): what the service should expect per request shape when the
/// machine behaves like it did at tune time.  V-cycle and FMG solves of
/// the same (n, accuracy) have structurally different latencies, so
/// mixing them in one key makes the baseline bimodal — KS distance then
/// reads the mode mixture as drift (or masks real drift).  Plain value
/// type — measured by tune-side code, persisted in the config cache
/// (schema v7; the "fmg" field is optional so v7 documents written
/// before the split still load), handed to DriftWatcher.
class LatencyBaseline {
 public:
  /// (grid side n, accuracy index, FMG vs V-cycle).
  struct Key {
    int n = 0;
    int accuracy_index = 0;
    bool fmg = false;
    auto operator<=>(const Key&) const = default;
  };

  void set(int n, int accuracy_index, HistogramSnapshot snapshot,
           bool fmg = false) {
    entries_[Key{n, accuracy_index, fmg}] = std::move(snapshot);
  }

  /// Baseline for one request shape, or null when that shape was never
  /// measured (the watcher skips such keys rather than guessing).
  const HistogramSnapshot* find(int n, int accuracy_index,
                                bool fmg = false) const {
    auto it = entries_.find(Key{n, accuracy_index, fmg});
    return it == entries_.end() ? nullptr : &it->second;
  }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  const std::map<Key, HistogramSnapshot>& entries() const { return entries_; }

  /// {"entries": [{"n", "accuracy_index", ["fmg",] <snapshot fields>}]}.
  Json to_json() const;
  static LatencyBaseline from_json(const Json& json);

 private:
  std::map<Key, HistogramSnapshot> entries_;
};

/// Tunable drift-detection thresholds.  Defaults are deliberately far
/// above the histogram's own resolution (percentiles carry ≈1.16×
/// relative error, Histogram::relative_resolution), so bucket-boundary
/// jitter alone can never read as drift.
struct DriftPolicy {
  /// Fire when live p90 exceeds baseline p90 by this factor.
  double p90_ratio = 1.5;
  /// ...and the bucket-mass distance also exceeds this (range [0, 1]).
  double ks_threshold = 0.30;
  /// Samples per comparison window (the sample-count cadence).
  int min_window_samples = 32;
  /// Consecutive drifted windows (per key) required to request a retune.
  int sustained_windows = 2;
};

/// Verdict for one observed sample (see DriftWatcher::observe).
struct DriftObservation {
  bool baselined = false;        ///< key had a baseline entry to compare to
  bool window_complete = false;  ///< this sample closed a comparison window
  bool drifted = false;          ///< closed window failed both tests
  bool retune = false;           ///< drift sustained: caller should retune
  double p90_ratio = 0.0;        ///< live p90 / baseline p90 (closed windows)
  double ks = 0.0;               ///< bucket-mass distance (closed windows)
};

/// Running summary of a key's initial-residual magnitudes (log10 scale —
/// residuals span decades, so the arithmetic mean of the raw values would
/// be dominated by the largest input ever seen).  This is the
/// input-distribution half of drift: latency windows say how fast the
/// machine is, these say what kind of right-hand sides are arriving.  A
/// workload shift (harder inputs, different forcing amplitudes) moves
/// mean_log10 / stddev_log10 even while every solve stays fast.
struct ResidualStats {
  std::int64_t count = 0;      ///< samples with a finite positive residual
  double mean_log10 = 0.0;     ///< mean of log10(initial residual)
  double stddev_log10 = 0.0;   ///< population stddev of log10(residual)
};

/// Accumulates live latency samples into per-(n × accuracy) windows and
/// compares each full window against the baseline.  Thread-safe: observe
/// and rebase serialize on an internal mutex, which is fine because a
/// sample is one bucket increment and a window close is one array walk —
/// both invisible next to the multi-millisecond solves being measured.
class DriftWatcher {
 public:
  DriftWatcher(LatencyBaseline baseline, DriftPolicy policy = {})
      : baseline_(std::move(baseline)), policy_(policy) {}

  /// Records one live latency sample for (n, accuracy_index, cycle
  /// type).  Returns the verdict: retune=true means drift was sustained
  /// for the policy's window count and the caller should start a
  /// background retune (the watcher resets that key's streak so it will
  /// not re-fire every window while the retune runs).  FMG and V-cycle
  /// samples accumulate into separate windows and compare against
  /// separate baseline entries.
  ///
  /// `initial_residual`, when finite and positive, additionally feeds the
  /// key's input-distribution summary (ResidualStats) — recorded even for
  /// keys with no latency baseline, so workload statistics accumulate
  /// from the first request, not the first retune.  Pass NaN (the
  /// default) when the caller did not measure a residual.
  DriftObservation observe(int n, int accuracy_index, double seconds,
                           bool fmg = false,
                           double initial_residual =
                               std::numeric_limits<double>::quiet_NaN());

  /// Per-key initial-residual summaries accumulated so far (keys with no
  /// residual samples are omitted).  Snapshot under the lock.
  std::map<LatencyBaseline::Key, ResidualStats> residual_stats() const;

  /// Installs a fresh baseline (after a retune + config swap) and drops
  /// all in-flight windows, drift streaks, and residual summaries.
  void rebase(LatencyBaseline baseline);

  const DriftPolicy& policy() const { return policy_; }

 private:
  struct KeyState {
    HistogramSnapshot window;  ///< accumulating live window (plain, locked)
    int drift_streak = 0;      ///< consecutive drifted windows
    // Welford accumulator over log10(initial residual).
    std::int64_t r_count = 0;
    double r_mean = 0.0;
    double r_m2 = 0.0;
  };

  mutable std::mutex mutex_;
  LatencyBaseline baseline_;
  DriftPolicy policy_;
  std::map<LatencyBaseline::Key, KeyState> windows_;
};

}  // namespace pbmg::obs
