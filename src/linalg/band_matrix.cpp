#include "linalg/band_matrix.h"

#include <algorithm>
#include <cmath>

namespace pbmg::linalg {

BandMatrix::BandMatrix(int dim, int bandwidth)
    : dim_(dim), bandwidth_(bandwidth) {
  PBMG_CHECK(dim >= 1, "BandMatrix dimension must be >= 1");
  PBMG_CHECK(bandwidth >= 0 && bandwidth < dim,
             "BandMatrix bandwidth must be in [0, dim)");
  storage_.assign(static_cast<std::size_t>(dim) *
                      static_cast<std::size_t>(bandwidth + 1),
                  0.0);
}

double BandMatrix::get(int i, int j) const {
  PBMG_CHECK(i >= 0 && i < dim_ && j >= 0 && j < dim_,
             "BandMatrix::get index out of range");
  if (i < j) std::swap(i, j);  // symmetric read
  const int d = i - j;
  if (d > bandwidth_) return 0.0;
  return band(j, d);
}

void BandMatrix::set(int i, int j, double value) {
  PBMG_CHECK(i >= 0 && i < dim_ && j >= 0 && j < dim_,
             "BandMatrix::set index out of range");
  PBMG_CHECK(i >= j, "BandMatrix::set expects lower-triangle indices");
  const int d = i - j;
  PBMG_CHECK(d <= bandwidth_, "BandMatrix::set outside the band");
  band(j, d) = value;
}

std::vector<double> BandMatrix::to_dense() const {
  std::vector<double> dense(static_cast<std::size_t>(dim_) *
                                static_cast<std::size_t>(dim_),
                            0.0);
  for (int j = 0; j < dim_; ++j) {
    for (int d = 0; d <= bandwidth_ && j + d < dim_; ++d) {
      const double v = band(j, d);
      dense[static_cast<std::size_t>(j + d) * dim_ + j] = v;
      dense[static_cast<std::size_t>(j) * dim_ + (j + d)] = v;
    }
  }
  return dense;
}

void band_cholesky_factor(BandMatrix& a) {
  const int m = a.dim();
  const int kd = a.bandwidth();
  for (int j = 0; j < m; ++j) {
    double ajj = a.band(j, 0);
    if (!(ajj > 0.0) || !std::isfinite(ajj)) {
      throw NumericalError(
          "band_cholesky_factor: non-positive pivot at column " +
          std::to_string(j) + " (matrix is not positive definite)");
    }
    ajj = std::sqrt(ajj);
    a.band(j, 0) = ajj;
    const int kn = std::min(kd, m - 1 - j);
    if (kn == 0) continue;
    const double inv = 1.0 / ajj;
    for (int d = 1; d <= kn; ++d) a.band(j, d) *= inv;
    // Rank-1 update of the trailing band: for columns j+c, subtract
    // x(c) * x(c..kn) from the stored lower band.
    for (int c = 1; c <= kn; ++c) {
      const double xc = a.band(j, c);
      if (xc == 0.0) continue;
      for (int r = c; r <= kn; ++r) {
        a.band(j + c, r - c) -= a.band(j, r) * xc;
      }
    }
  }
}

void band_cholesky_solve(const BandMatrix& chol, std::vector<double>& rhs) {
  const int m = chol.dim();
  const int kd = chol.bandwidth();
  PBMG_CHECK(static_cast<int>(rhs.size()) == m,
             "band_cholesky_solve: rhs size mismatch");
  // Forward substitution L·y = rhs.
  for (int j = 0; j < m; ++j) {
    const double yj = rhs[static_cast<std::size_t>(j)] / chol.band(j, 0);
    rhs[static_cast<std::size_t>(j)] = yj;
    const int kn = std::min(kd, m - 1 - j);
    for (int d = 1; d <= kn; ++d) {
      rhs[static_cast<std::size_t>(j + d)] -= chol.band(j, d) * yj;
    }
  }
  // Back substitution Lᵀ·x = y.
  for (int j = m - 1; j >= 0; --j) {
    double s = rhs[static_cast<std::size_t>(j)];
    const int kn = std::min(kd, m - 1 - j);
    for (int d = 1; d <= kn; ++d) {
      s -= chol.band(j, d) * rhs[static_cast<std::size_t>(j + d)];
    }
    rhs[static_cast<std::size_t>(j)] = s / chol.band(j, 0);
  }
}

void band_spd_solve(BandMatrix& a, std::vector<double>& rhs) {
  band_cholesky_factor(a);
  band_cholesky_solve(a, rhs);
}

void dense_spd_solve(std::vector<double>& a, int m, std::vector<double>& rhs) {
  PBMG_CHECK(static_cast<int>(a.size()) == m * m,
             "dense_spd_solve: matrix size mismatch");
  PBMG_CHECK(static_cast<int>(rhs.size()) == m,
             "dense_spd_solve: rhs size mismatch");
  const auto idx = [m](int i, int j) {
    return static_cast<std::size_t>(i) * static_cast<std::size_t>(m) +
           static_cast<std::size_t>(j);
  };
  // Unblocked dense Cholesky (lower).
  for (int j = 0; j < m; ++j) {
    double d = a[idx(j, j)];
    for (int k = 0; k < j; ++k) d -= a[idx(j, k)] * a[idx(j, k)];
    if (!(d > 0.0) || !std::isfinite(d)) {
      throw NumericalError("dense_spd_solve: matrix is not positive definite");
    }
    const double ljj = std::sqrt(d);
    a[idx(j, j)] = ljj;
    for (int i = j + 1; i < m; ++i) {
      double s = a[idx(i, j)];
      for (int k = 0; k < j; ++k) s -= a[idx(i, k)] * a[idx(j, k)];
      a[idx(i, j)] = s / ljj;
    }
  }
  // Forward then backward substitution.
  for (int i = 0; i < m; ++i) {
    double s = rhs[static_cast<std::size_t>(i)];
    for (int k = 0; k < i; ++k) s -= a[idx(i, k)] * rhs[static_cast<std::size_t>(k)];
    rhs[static_cast<std::size_t>(i)] = s / a[idx(i, i)];
  }
  for (int i = m - 1; i >= 0; --i) {
    double s = rhs[static_cast<std::size_t>(i)];
    for (int k = i + 1; k < m; ++k) {
      s -= a[idx(k, i)] * rhs[static_cast<std::size_t>(k)];
    }
    rhs[static_cast<std::size_t>(i)] = s / a[idx(i, i)];
  }
}

}  // namespace pbmg::linalg
