#pragma once

#include <vector>

#include "support/error.h"

/// \file band_matrix.h
/// Symmetric positive-definite band matrix in lower-band storage.
///
/// This mirrors LAPACK's 'L' band layout used by DPBSV, the routine the
/// paper employs for its Direct method: entry A(j+d, j) of the lower
/// triangle lives at band(j, d) for diagonal offset d in [0, bandwidth].
/// Columns are stored contiguously, which matches the access pattern of
/// the banded Cholesky factorization.

namespace pbmg::linalg {

/// SPD band matrix (lower storage).  Only the lower band is stored; the
/// symmetric upper part is implicit.
class BandMatrix {
 public:
  /// Creates a dim×dim zero matrix with `bandwidth` sub-diagonals.
  BandMatrix(int dim, int bandwidth);

  /// Matrix dimension.
  int dim() const { return dim_; }

  /// Number of stored sub-diagonals.
  int bandwidth() const { return bandwidth_; }

  /// Entry A(j+d, j): column j, diagonal offset d in [0, bandwidth].
  /// Unchecked hot-path accessor.
  double& band(int j, int d) {
    return storage_[static_cast<std::size_t>(j) *
                        static_cast<std::size_t>(bandwidth_ + 1) +
                    static_cast<std::size_t>(d)];
  }
  double band(int j, int d) const {
    return storage_[static_cast<std::size_t>(j) *
                        static_cast<std::size_t>(bandwidth_ + 1) +
                    static_cast<std::size_t>(d)];
  }

  /// Checked general accessor A(i, j) for i >= j (lower triangle).  Entries
  /// outside the band read as zero; writing outside the band (or the lower
  /// triangle) throws InvalidArgument.
  double get(int i, int j) const;
  void set(int i, int j, double value);

  /// Reconstructs the full dense symmetric matrix (row-major dim×dim);
  /// for tests and small-problem verification only.
  std::vector<double> to_dense() const;

 private:
  int dim_;
  int bandwidth_;
  std::vector<double> storage_;
};

/// In-place banded Cholesky factorization A = L·Lᵀ (lower band layout,
/// LAPACK DPBTRF-style unblocked algorithm).  Throws pbmg::NumericalError
/// when a non-positive pivot is met (matrix not positive definite).
void band_cholesky_factor(BandMatrix& a);

/// Solves L·Lᵀ·x = rhs in place given the factor produced by
/// band_cholesky_factor.  rhs.size() must equal a.dim().
void band_cholesky_solve(const BandMatrix& chol, std::vector<double>& rhs);

/// Convenience: factor + solve (the DPBSV equivalent).  Destroys `a`.
void band_spd_solve(BandMatrix& a, std::vector<double>& rhs);

/// Dense Cholesky solve for verification: `a` is a row-major m×m SPD
/// matrix (destroyed), `rhs` is overwritten with the solution.  O(m³).
void dense_spd_solve(std::vector<double>& a, int m, std::vector<double>& rhs);

}  // namespace pbmg::linalg
