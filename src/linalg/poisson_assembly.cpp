#include "linalg/poisson_assembly.h"

#include "grid/level.h"

namespace pbmg::linalg {

BandMatrix assemble_poisson_band(int n) {
  PBMG_CHECK(is_valid_grid_size(n), "assemble_poisson_band: n must be 2^k+1");
  const int m_side = n - 2;
  const int dim = m_side * m_side;
  const int kd = m_side;
  const double inv_h2 =
      static_cast<double>(n - 1) * static_cast<double>(n - 1);
  // A 1x1 matrix has bandwidth 0; otherwise the north neighbour sits m_side
  // columns away.
  BandMatrix a(dim, dim == 1 ? 0 : kd);
  for (int i = 0; i < m_side; ++i) {
    for (int j = 0; j < m_side; ++j) {
      const int idx = i * m_side + j;
      a.band(idx, 0) = 4.0 * inv_h2;
      if (j + 1 < m_side) a.band(idx, 1) = -inv_h2;       // east neighbour
      if (i + 1 < m_side) a.band(idx, m_side) = -inv_h2;  // south neighbour
    }
  }
  return a;
}

std::vector<double> gather_poisson_rhs(const Grid2D& b,
                                       const Grid2D& x_boundary) {
  const int n = b.n();
  PBMG_CHECK(is_valid_grid_size(n), "gather_poisson_rhs: n must be 2^k+1");
  PBMG_CHECK(x_boundary.n() == n, "gather_poisson_rhs: size mismatch");
  const int m_side = n - 2;
  const double inv_h2 =
      static_cast<double>(n - 1) * static_cast<double>(n - 1);
  std::vector<double> rhs(static_cast<std::size_t>(m_side) *
                          static_cast<std::size_t>(m_side));
  for (int i = 1; i <= m_side; ++i) {
    for (int j = 1; j <= m_side; ++j) {
      double v = b(i, j);
      if (i == 1) v += inv_h2 * x_boundary(0, j);
      if (i == m_side) v += inv_h2 * x_boundary(n - 1, j);
      if (j == 1) v += inv_h2 * x_boundary(i, 0);
      if (j == m_side) v += inv_h2 * x_boundary(i, n - 1);
      rhs[static_cast<std::size_t>(i - 1) * m_side + (j - 1)] = v;
    }
  }
  return rhs;
}

BandMatrix assemble_stencil_band(const grid::StencilOp& op) {
  const int n = op.n();
  if (op.is_poisson()) return assemble_poisson_band(n);
  PBMG_CHECK(is_valid_grid_size(n), "assemble_stencil_band: n must be 2^k+1");
  const int m_side = n - 2;
  const int dim = m_side * m_side;
  const bool nine = op.is_nine_point();
  // Corner couplings add the (i+1, j∓1) neighbours at offsets m_side∓1,
  // widening the band by one.
  const int kd = nine ? m_side + 1 : m_side;
  const double inv_h2 =
      static_cast<double>(n - 1) * static_cast<double>(n - 1);
  const double c = op.c();
  BandMatrix a(dim, dim == 1 ? 0 : kd);
  for (int i = 0; i < m_side; ++i) {
    const int gi = i + 1;  // grid row of this unknown
    for (int j = 0; j < m_side; ++j) {
      const int gj = j + 1;
      const int idx = i * m_side + j;
      const double diag = op.center(gi, gj) * inv_h2 + c;
      PBMG_NUM_ASSERT(diag > 0.0,
                      "assemble_stencil_band: non-positive diagonal");
      a.band(idx, 0) = diag;
      if (j + 1 < m_side) a.band(idx, 1) = -op.ax(gi, gj) * inv_h2;  // east
      if (i + 1 < m_side) {
        a.band(idx, m_side) = -op.ay(gi, gj) * inv_h2;  // south
        if (nine) {
          if (j > 0) {  // south-west: coupling (gi,gj)↔(gi+1,gj−1)
            a.band(idx, m_side - 1) = -op.asw(gi, gj) * inv_h2;
          }
          if (j + 1 < m_side) {  // south-east: (gi,gj)↔(gi+1,gj+1)
            a.band(idx, m_side + 1) = -op.ase(gi, gj) * inv_h2;
          }
        }
      }
    }
  }
  return a;
}

std::vector<double> gather_stencil_rhs(const grid::StencilOp& op,
                                       const Grid2D& b,
                                       const Grid2D& x_boundary) {
  const int n = b.n();
  if (op.is_poisson()) return gather_poisson_rhs(b, x_boundary);
  PBMG_CHECK(is_valid_grid_size(n), "gather_stencil_rhs: n must be 2^k+1");
  PBMG_CHECK(op.n() == n && x_boundary.n() == n,
             "gather_stencil_rhs: size mismatch");
  const int m_side = n - 2;
  const double inv_h2 =
      static_cast<double>(n - 1) * static_cast<double>(n - 1);
  std::vector<double> rhs(static_cast<std::size_t>(m_side) *
                          static_cast<std::size_t>(m_side));
  if (op.is_nine_point()) {
    // Corner couplings can also cross the boundary; enumerate all eight
    // neighbours and lift every boundary-crossing coupling.
    for (int i = 1; i <= m_side; ++i) {
      for (int j = 1; j <= m_side; ++j) {
        double v = b(i, j);
        for (int si = -1; si <= 1; ++si) {
          for (int sj = -1; sj <= 1; ++sj) {
            if (si == 0 && sj == 0) continue;
            const int ni = i + si;
            const int nj = j + sj;
            const bool on_boundary =
                ni == 0 || ni == n - 1 || nj == 0 || nj == n - 1;
            if (!on_boundary) continue;
            v += op.coupling(i, j, si, sj) * inv_h2 * x_boundary(ni, nj);
          }
        }
        rhs[static_cast<std::size_t>(i - 1) * m_side + (j - 1)] = v;
      }
    }
    return rhs;
  }
  for (int i = 1; i <= m_side; ++i) {
    for (int j = 1; j <= m_side; ++j) {
      double v = b(i, j);
      if (i == 1) v += op.ay(0, j) * inv_h2 * x_boundary(0, j);
      if (i == m_side) v += op.ay(n - 2, j) * inv_h2 * x_boundary(n - 1, j);
      if (j == 1) v += op.ax(i, 0) * inv_h2 * x_boundary(i, 0);
      if (j == m_side) v += op.ax(i, n - 2) * inv_h2 * x_boundary(i, n - 1);
      rhs[static_cast<std::size_t>(i - 1) * m_side + (j - 1)] = v;
    }
  }
  return rhs;
}

void scatter_interior(const std::vector<double>& x, Grid2D& out) {
  const int n = out.n();
  const int m_side = n - 2;
  PBMG_CHECK(static_cast<int>(x.size()) == m_side * m_side,
             "scatter_interior: vector/grid size mismatch");
  for (int i = 1; i <= m_side; ++i) {
    for (int j = 1; j <= m_side; ++j) {
      out(i, j) = x[static_cast<std::size_t>(i - 1) * m_side + (j - 1)];
    }
  }
}

}  // namespace pbmg::linalg
