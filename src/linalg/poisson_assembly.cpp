#include "linalg/poisson_assembly.h"

#include "grid/level.h"

namespace pbmg::linalg {

BandMatrix assemble_poisson_band(int n) {
  PBMG_CHECK(is_valid_grid_size(n), "assemble_poisson_band: n must be 2^k+1");
  const int m_side = n - 2;
  const int dim = m_side * m_side;
  const int kd = m_side;
  const double inv_h2 =
      static_cast<double>(n - 1) * static_cast<double>(n - 1);
  // A 1x1 matrix has bandwidth 0; otherwise the north neighbour sits m_side
  // columns away.
  BandMatrix a(dim, dim == 1 ? 0 : kd);
  for (int i = 0; i < m_side; ++i) {
    for (int j = 0; j < m_side; ++j) {
      const int idx = i * m_side + j;
      a.band(idx, 0) = 4.0 * inv_h2;
      if (j + 1 < m_side) a.band(idx, 1) = -inv_h2;       // east neighbour
      if (i + 1 < m_side) a.band(idx, m_side) = -inv_h2;  // south neighbour
    }
  }
  return a;
}

std::vector<double> gather_poisson_rhs(const Grid2D& b,
                                       const Grid2D& x_boundary) {
  const int n = b.n();
  PBMG_CHECK(is_valid_grid_size(n), "gather_poisson_rhs: n must be 2^k+1");
  PBMG_CHECK(x_boundary.n() == n, "gather_poisson_rhs: size mismatch");
  const int m_side = n - 2;
  const double inv_h2 =
      static_cast<double>(n - 1) * static_cast<double>(n - 1);
  std::vector<double> rhs(static_cast<std::size_t>(m_side) *
                          static_cast<std::size_t>(m_side));
  for (int i = 1; i <= m_side; ++i) {
    for (int j = 1; j <= m_side; ++j) {
      double v = b(i, j);
      if (i == 1) v += inv_h2 * x_boundary(0, j);
      if (i == m_side) v += inv_h2 * x_boundary(n - 1, j);
      if (j == 1) v += inv_h2 * x_boundary(i, 0);
      if (j == m_side) v += inv_h2 * x_boundary(i, n - 1);
      rhs[static_cast<std::size_t>(i - 1) * m_side + (j - 1)] = v;
    }
  }
  return rhs;
}

BandMatrix assemble_stencil_band(const grid::StencilOp& op) {
  const int n = op.n();
  if (op.is_poisson()) return assemble_poisson_band(n);
  PBMG_CHECK(is_valid_grid_size(n), "assemble_stencil_band: n must be 2^k+1");
  const int m_side = n - 2;
  const int dim = m_side * m_side;
  const int kd = m_side;
  const double inv_h2 =
      static_cast<double>(n - 1) * static_cast<double>(n - 1);
  const double c = op.c();
  BandMatrix a(dim, dim == 1 ? 0 : kd);
  for (int i = 0; i < m_side; ++i) {
    const int gi = i + 1;  // grid row of this unknown
    for (int j = 0; j < m_side; ++j) {
      const int gj = j + 1;
      const int idx = i * m_side + j;
      const double aw = op.ax(gi, gj - 1);
      const double ae = op.ax(gi, gj);
      const double an = op.ay(gi - 1, gj);
      const double as = op.ay(gi, gj);
      const double diag = (((aw + ae) + an) + as) * inv_h2 + c;
      PBMG_NUM_ASSERT(diag > 0.0,
                      "assemble_stencil_band: non-positive diagonal");
      a.band(idx, 0) = diag;
      if (j + 1 < m_side) a.band(idx, 1) = -ae * inv_h2;       // east
      if (i + 1 < m_side) a.band(idx, m_side) = -as * inv_h2;  // south
    }
  }
  return a;
}

std::vector<double> gather_stencil_rhs(const grid::StencilOp& op,
                                       const Grid2D& b,
                                       const Grid2D& x_boundary) {
  const int n = b.n();
  if (op.is_poisson()) return gather_poisson_rhs(b, x_boundary);
  PBMG_CHECK(is_valid_grid_size(n), "gather_stencil_rhs: n must be 2^k+1");
  PBMG_CHECK(op.n() == n && x_boundary.n() == n,
             "gather_stencil_rhs: size mismatch");
  const int m_side = n - 2;
  const double inv_h2 =
      static_cast<double>(n - 1) * static_cast<double>(n - 1);
  std::vector<double> rhs(static_cast<std::size_t>(m_side) *
                          static_cast<std::size_t>(m_side));
  for (int i = 1; i <= m_side; ++i) {
    for (int j = 1; j <= m_side; ++j) {
      double v = b(i, j);
      if (i == 1) v += op.ay(0, j) * inv_h2 * x_boundary(0, j);
      if (i == m_side) v += op.ay(n - 2, j) * inv_h2 * x_boundary(n - 1, j);
      if (j == 1) v += op.ax(i, 0) * inv_h2 * x_boundary(i, 0);
      if (j == m_side) v += op.ax(i, n - 2) * inv_h2 * x_boundary(i, n - 1);
      rhs[static_cast<std::size_t>(i - 1) * m_side + (j - 1)] = v;
    }
  }
  return rhs;
}

void scatter_interior(const std::vector<double>& x, Grid2D& out) {
  const int n = out.n();
  const int m_side = n - 2;
  PBMG_CHECK(static_cast<int>(x.size()) == m_side * m_side,
             "scatter_interior: vector/grid size mismatch");
  for (int i = 1; i <= m_side; ++i) {
    for (int j = 1; j <= m_side; ++j) {
      out(i, j) = x[static_cast<std::size_t>(i - 1) * m_side + (j - 1)];
    }
  }
}

}  // namespace pbmg::linalg
