#pragma once

#include <vector>

#include "grid/grid2d.h"
#include "linalg/band_matrix.h"

/// \file poisson_assembly.h
/// Assembly of the 2-D Poisson system as a band matrix.
///
/// Interior unknowns of an n×n grid are ordered lexicographically
/// (idx = (i−1)·(n−2) + (j−1)), giving an SPD band matrix of dimension
/// (n−2)² with bandwidth n−2 — exactly the system the paper hands to
/// LAPACK's DPBSV in its Direct method.  Dirichlet boundary values are
/// lifted into the right-hand side.

namespace pbmg::linalg {

/// Assembles A (with the 1/h² scaling of DESIGN.md §4) for grid side n.
/// Requires n = 2^k + 1, n >= 3.
BandMatrix assemble_poisson_band(int n);

/// Builds the right-hand-side vector for interior unknowns from the grid
/// RHS `b` and the Dirichlet ring carried by `x_boundary` (only its ring is
/// read).  Requires matching valid sizes.
std::vector<double> gather_poisson_rhs(const Grid2D& b,
                                       const Grid2D& x_boundary);

/// Writes a solution vector (interior, lexicographic) into the interior of
/// `out`.  Requires out.n() consistent with x.size() == (n−2)².
void scatter_interior(const std::vector<double>& x, Grid2D& out);

}  // namespace pbmg::linalg
