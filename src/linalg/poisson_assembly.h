#pragma once

#include <vector>

#include "grid/grid2d.h"
#include "grid/stencil_op.h"
#include "linalg/band_matrix.h"

/// \file poisson_assembly.h
/// Assembly of the 2-D elliptic systems as band matrices.
///
/// Interior unknowns of an n×n grid are ordered lexicographically
/// (idx = (i−1)·(n−2) + (j−1)), giving an SPD band matrix of dimension
/// (n−2)² with bandwidth n−2 — exactly the system the paper hands to
/// LAPACK's DPBSV in its Direct method.  Dirichlet boundary values are
/// lifted into the right-hand side.  The variable-coefficient entry
/// points assemble the same band structure from a grid::StencilOp; the
/// Poisson-named functions remain the specialised constant-coefficient
/// path.

namespace pbmg::linalg {

/// Assembles A (with the 1/h² scaling of DESIGN.md §4) for grid side n.
/// Requires n = 2^k + 1, n >= 3.
BandMatrix assemble_poisson_band(int n);

/// Builds the right-hand-side vector for interior unknowns from the grid
/// RHS `b` and the Dirichlet ring carried by `x_boundary` (only its ring is
/// read).  Requires matching valid sizes.
std::vector<double> gather_poisson_rhs(const Grid2D& b,
                                       const Grid2D& x_boundary);

/// Writes a solution vector (interior, lexicographic) into the interior of
/// `out`.  Requires out.n() consistent with x.size() == (n−2)².
void scatter_interior(const std::vector<double>& x, Grid2D& out);

/// Assembles a variable-coefficient operator (see stencil_op.h) as an SPD
/// band matrix: diag = center/h² + c, east/south off-diagonals −ax/h²,
/// −ay/h².  A 9-point operator additionally stores its south-west/south-
/// east corner couplings at offsets m∓1 (bandwidth m+1, m = n−2).  For
/// the Poisson fast path this reproduces assemble_poisson_band exactly.
BandMatrix assemble_stencil_band(const grid::StencilOp& op);

/// Right-hand-side vector for a variable-coefficient operator: boundary
/// lifting uses the actual edge coefficient of each boundary-crossing
/// edge.  For the Poisson fast path this reproduces gather_poisson_rhs.
std::vector<double> gather_stencil_rhs(const grid::StencilOp& op,
                                       const Grid2D& b,
                                       const Grid2D& x_boundary);

}  // namespace pbmg::linalg
