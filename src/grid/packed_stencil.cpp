#include "grid/packed_stencil.h"

#include <algorithm>

#include "grid/stencil_op.h"

namespace pbmg::grid {

PackedStencil PackedStencil::pack(const StencilOp& op) {
  PBMG_CHECK(!op.is_poisson(),
             "PackedStencil::pack: the Poisson fast path has no coefficient "
             "grids to pack");
  const int n = op.n();
  const bool nine = op.is_nine_point();
  PackedStencil p;
  p.n_ = n;
  p.streams_ = nine ? 9 : 5;
  // Pad each stream to a 64-byte multiple so every stream of every row
  // block starts on its own cache line (the buffer itself comes from
  // aligned_alloc(64, …), whose size contract the padding also satisfies).
  p.padded_ = (static_cast<long>(n) + 7) & ~long{7};
  p.row_stride_ = p.streams_ * p.padded_;
  const long count = static_cast<long>(n - 2) * p.row_stride_;
  double* raw = static_cast<double*>(std::aligned_alloc(
      64, static_cast<std::size_t>(count) * sizeof(double)));
  PBMG_CHECK(raw != nullptr, "PackedStencil::pack: allocation failed");
  std::fill(raw, raw + count, 0.0);
  p.data_.reset(raw);

  const Grid2D& ax = op.ax_grid();
  const Grid2D& ay = op.ay_grid();
  for (int i = 1; i <= n - 2; ++i) {
    double* aw = p.mutable_stream(i, kAw);
    double* ae = p.mutable_stream(i, kAe);
    double* an = p.mutable_stream(i, kAn);
    double* as = p.mutable_stream(i, kAs);
    for (int j = 1; j <= n - 2; ++j) {
      aw[j] = ax(i, j - 1);
      ae[j] = ax(i, j);
      an[j] = ay(i - 1, j);
      as[j] = ay(i, j);
    }
    if (nine) {
      // Pre-shifted corner streams (see NinePointRows for the aliasing
      // this folds away): entry [j] is the coupling column j's update
      // reads from the row above/below.
      double* nw = p.mutable_stream(i, kNw);
      double* ne = p.mutable_stream(i, kNe);
      double* sw = p.mutable_stream(i, kSw);
      double* se = p.mutable_stream(i, kSe);
      double* ctr = p.mutable_stream(i, kCtr);
      const Grid2D& ase = op.ase_grid();
      const Grid2D& asw = op.asw_grid();
      const Grid2D& center = op.center_grid();
      for (int j = 1; j <= n - 2; ++j) {
        nw[j] = ase(i - 1, j - 1);
        ne[j] = asw(i - 1, j + 1);
        sw[j] = asw(i, j);
        se[j] = ase(i, j);
        ctr[j] = center(i, j);
      }
    } else {
      // Same summation order as every legacy 5-point kernel
      // (((aW+aE)+aN)+aS), so a packed sweep divides by bitwise the same
      // diagonal the legacy sweep recomputes per point.
      double* diag = p.mutable_stream(i, kDiag5);
      for (int j = 1; j <= n - 2; ++j) {
        diag[j] = ((aw[j] + ae[j]) + an[j]) + as[j];
      }
    }
  }
  return p;
}

}  // namespace pbmg::grid
