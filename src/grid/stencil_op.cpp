#include "grid/stencil_op.h"

#include <algorithm>
#include <cmath>

#include "grid/level.h"

namespace pbmg::grid {

namespace {

/// Series (harmonic) combination of two fine edges spanning one coarse
/// edge: the effective conductance of two unit-length conductors in
/// series, scaled back to the coarse edge length.  Exact for constant
/// coefficients: H(a, a) = a.
double series(double a1, double a2) {
  const double sum = a1 + a2;
  PBMG_NUM_ASSERT(sum > 0.0, "StencilOp: degenerate edge pair in restriction");
  return 2.0 * a1 * a2 / sum;
}

void check_coefficients(const Grid2D& ax, const Grid2D& ay, int n) {
  // Only edges adjacent to interior equations matter, but a single bad
  // value anywhere is almost always a construction bug, so the assertion
  // build scans every stored edge.
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j + 1 < n; ++j) {
      PBMG_NUM_ASSERT(std::isfinite(ax(i, j)) && ax(i, j) > 0.0,
                      "StencilOp: ax edge coefficient must be finite and > 0");
      PBMG_NUM_ASSERT(std::isfinite(ay(j, i)) && ay(j, i) > 0.0,
                      "StencilOp: ay edge coefficient must be finite and > 0");
    }
  }
}

}  // namespace

StencilOp StencilOp::poisson(int n) {
  PBMG_CHECK(is_valid_grid_size(n), "StencilOp::poisson: n must be 2^k + 1");
  StencilOp op;
  op.n_ = n;
  return op;
}

StencilOp StencilOp::variable(Grid2D ax, Grid2D ay, double c) {
  const int n = ax.n();
  PBMG_CHECK(is_valid_grid_size(n), "StencilOp::variable: n must be 2^k + 1");
  PBMG_CHECK(ay.n() == n, "StencilOp::variable: ax/ay size mismatch");
  PBMG_CHECK(std::isfinite(c) && c >= 0.0,
             "StencilOp::variable: c must be finite and >= 0");
  check_coefficients(ax, ay, n);
  StencilOp op;
  op.n_ = n;
  op.c_ = c;
  auto coeff = std::make_shared<Coefficients>();
  coeff->ax = std::move(ax);
  coeff->ay = std::move(ay);
  op.coeff_ = std::move(coeff);
  return op;
}

StencilOp StencilOp::from_coefficients(
    int n, const std::function<double(double, double)>& ax_fn,
    const std::function<double(double, double)>& ay_fn, double c) {
  PBMG_CHECK(is_valid_grid_size(n),
             "StencilOp::from_coefficients: n must be 2^k + 1");
  PBMG_CHECK(ax_fn != nullptr && ay_fn != nullptr,
             "StencilOp::from_coefficients: null coefficient function");
  const double h = mesh_width(n);
  Grid2D ax(n, 1.0);
  Grid2D ay(n, 1.0);
  // Convention matches grid/problem.cpp: row i is y = i·h, column j is
  // x = j·h.  Edge coefficients are sampled at edge midpoints.
  for (int i = 0; i < n; ++i) {
    const double y = i * h;
    for (int j = 0; j + 1 < n; ++j) {
      ax(i, j) = ax_fn((j + 0.5) * h, y);
    }
  }
  for (int i = 0; i + 1 < n; ++i) {
    const double y = (i + 0.5) * h;
    for (int j = 0; j < n; ++j) {
      ay(i, j) = ay_fn(j * h, y);
    }
  }
  return variable(std::move(ax), std::move(ay), c);
}

StencilOp StencilOp::from_coefficient(
    int n, const std::function<double(double, double)>& a_fn, double c) {
  return from_coefficients(n, a_fn, a_fn, c);
}

const Grid2D& StencilOp::ax_grid() const {
  PBMG_CHECK(coeff_ != nullptr,
             "StencilOp::ax_grid: Poisson fast path stores no grids");
  return coeff_->ax;
}

const Grid2D& StencilOp::ay_grid() const {
  PBMG_CHECK(coeff_ != nullptr,
             "StencilOp::ay_grid: Poisson fast path stores no grids");
  return coeff_->ay;
}

double StencilOp::diag(int i, int j) const {
  PBMG_CHECK(i >= 1 && i < n_ - 1 && j >= 1 && j < n_ - 1,
             "StencilOp::diag: (i,j) must be an interior cell");
  const double inv_h2 =
      static_cast<double>(n_ - 1) * static_cast<double>(n_ - 1);
  const double sum = ((ax(i, j - 1) + ax(i, j)) + ay(i - 1, j)) + ay(i, j);
  return sum * inv_h2 + c_;
}

StencilOp StencilOp::restricted() const {
  PBMG_CHECK(n_ >= 5, "StencilOp::restricted: cannot coarsen below N = 5");
  const int nc = coarse_size(n_);
  if (is_poisson()) return poisson(nc);  // constants restrict to themselves

  const int n = n_;
  const auto clamp_row = [n](int r) { return std::clamp(r, 0, n - 1); };
  Grid2D ax_c(nc, 1.0);
  Grid2D ay_c(nc, 1.0);
  // Coarse edge (I,J)-(I,J+1) spans fine nodes (2I,2J)..(2I,2J+2): series
  // conductance of the two in-line fine edges, averaged with the parallel
  // paths one fine row above and below (weights ½/¼/¼; rows clamped at the
  // boundary so the weights always sum to 1 and constants are preserved).
  const auto x_path = [&](int row, int cj) {
    const int r = clamp_row(row);
    return series(ax(r, 2 * cj), ax(r, 2 * cj + 1));
  };
  const auto y_path = [&](int col, int ci) {
    const int c = clamp_row(col);
    return series(ay(2 * ci, c), ay(2 * ci + 1, c));
  };
  for (int ci = 0; ci < nc; ++ci) {
    for (int cj = 0; cj + 1 < nc; ++cj) {
      ax_c(ci, cj) = 0.5 * x_path(2 * ci, cj) +
                     0.25 * (x_path(2 * ci - 1, cj) + x_path(2 * ci + 1, cj));
      ay_c(cj, ci) = 0.5 * y_path(2 * ci, cj) +
                     0.25 * (y_path(2 * ci - 1, cj) + y_path(2 * ci + 1, cj));
    }
  }
  return variable(std::move(ax_c), std::move(ay_c), c_);
}

StencilHierarchy::StencilHierarchy(StencilOp fine) {
  PBMG_CHECK(fine.n() >= 3, "StencilHierarchy: empty fine operator");
  const int top = level_of_size(fine.n());
  ops_.resize(static_cast<std::size_t>(top) + 1);
  ops_[static_cast<std::size_t>(top)] = std::move(fine);
  for (int k = top - 1; k >= 1; --k) {
    ops_[static_cast<std::size_t>(k)] =
        ops_[static_cast<std::size_t>(k) + 1].restricted();
  }
}

int StencilHierarchy::n() const {
  return ops_.empty() ? 0 : ops_.back().n();
}

bool StencilHierarchy::is_poisson() const {
  for (std::size_t k = 1; k < ops_.size(); ++k) {
    if (!ops_[k].is_poisson()) return false;
  }
  return !ops_.empty();
}

const StencilOp& StencilHierarchy::at(int level) const {
  PBMG_CHECK(level >= 1 && level <= top_level(),
             "StencilHierarchy::at: level " + std::to_string(level) +
                 " outside [1, " + std::to_string(top_level()) + "]");
  return ops_[static_cast<std::size_t>(level)];
}

}  // namespace pbmg::grid
