#include "grid/stencil_op.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>

#include "grid/level.h"
#include "grid/packed_stencil.h"

namespace pbmg::grid {

namespace {

/// Series (harmonic) combination of two fine edges spanning one coarse
/// edge: the effective conductance of two unit-length conductors in
/// series, scaled back to the coarse edge length.  Exact for constant
/// coefficients: H(a, a) = a.  The guard is a PBMG_CHECK (active in every
/// build): a degenerate pair (a1 + a2 <= 0) would otherwise produce an
/// Inf/NaN coefficient that propagates silently through the whole coarse
/// hierarchy in plain Release, where the construction-time positivity
/// scan (PBMG_NUM_ASSERT) is compiled out.
double series(double a1, double a2) {
  const double sum = a1 + a2;
  PBMG_CHECK(sum > 0.0, "StencilOp: degenerate edge pair in restriction");
  return 2.0 * a1 * a2 / sum;
}

void check_coefficients(const Grid2D& ax, const Grid2D& ay, int n) {
  // Only edges adjacent to interior equations matter, but a single bad
  // value anywhere is almost always a construction bug, so the assertion
  // build scans every stored edge.
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j + 1 < n; ++j) {
      PBMG_NUM_ASSERT(std::isfinite(ax(i, j)) && ax(i, j) > 0.0,
                      "StencilOp: ax edge coefficient must be finite and > 0");
      PBMG_NUM_ASSERT(std::isfinite(ay(j, i)) && ay(j, i) > 0.0,
                      "StencilOp: ay edge coefficient must be finite and > 0");
    }
  }
}

void check_nine_point(const Grid2D& ax, const Grid2D& ay, const Grid2D& ase,
                      const Grid2D& asw, const Grid2D& center, int n) {
  // Unlike the 5-point factory, couplings may legitimately be negative
  // here (mixed-derivative corners; Galerkin coarse operators need not
  // be M-matrices even on their edges), so only finiteness is scanned;
  // the centre must be a positive diagonal.  Edge bounds mirror
  // check_coefficients so every stored edge is covered.
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j + 1 < n; ++j) {
      PBMG_NUM_ASSERT(std::isfinite(ax(i, j)),
                      "StencilOp: ax edge coupling must be finite");
      PBMG_NUM_ASSERT(std::isfinite(ay(j, i)),
                      "StencilOp: ay edge coupling must be finite");
    }
  }
  for (int i = 0; i + 1 < n; ++i) {
    for (int j = 0; j + 1 < n; ++j) {
      PBMG_NUM_ASSERT(std::isfinite(ase(i, j)),
                      "StencilOp: ase corner coupling must be finite");
      PBMG_NUM_ASSERT(std::isfinite(asw(i, j + 1)),
                      "StencilOp: asw corner coupling must be finite");
    }
  }
  for (int i = 1; i + 1 < n; ++i) {
    for (int j = 1; j + 1 < n; ++j) {
      PBMG_NUM_ASSERT(std::isfinite(center(i, j)) && center(i, j) > 0.0,
                      "StencilOp: centre coefficient must be finite and > 0");
    }
  }
}

}  // namespace

std::string to_string(Coarsening mode) {
  switch (mode) {
    case Coarsening::kAverage: return "avg";
    case Coarsening::kRap: return "rap";
  }
  throw InvalidArgument("to_string: invalid Coarsening");
}

Coarsening parse_coarsening(const std::string& name) {
  if (name == "avg") return Coarsening::kAverage;
  if (name == "rap") return Coarsening::kRap;
  throw InvalidArgument("unknown coarsening '" + name +
                        "' (expected avg|rap)");
}

std::string to_string(StencilLayout layout) {
  switch (layout) {
    case StencilLayout::kLegacy: return "legacy";
    case StencilLayout::kPacked: return "packed";
  }
  throw InvalidArgument("to_string: invalid StencilLayout");
}

StencilLayout parse_stencil_layout(const std::string& name) {
  if (name == "legacy") return StencilLayout::kLegacy;
  if (name == "packed") return StencilLayout::kPacked;
  throw InvalidArgument("unknown stencil layout '" + name +
                        "' (expected legacy|packed)");
}

void validate_kernel_policy(const KernelPolicy& policy) {
  // A deserialized byte is not necessarily a valid enumerator.
  (void)to_string(policy.layout);
  PBMG_CHECK(policy.simd_width == 1 || policy.simd_width == 2 ||
                 policy.simd_width == 4,
             "kernel policy: simd_width must be 1, 2 or 4");
}

/// Shared lazily-packed coefficients: every copy of a StencilOp holds the
/// same slot, so a level is packed at most once process-wide no matter how
/// many sessions, executors or search candidates sweep it.
struct StencilOp::PackedSlot {
  std::once_flag once;
  PackedStencil packed;
  /// Published size of `packed`, readable without synchronizing on `once`
  /// (footprint accounting must not race a concurrent first pack).
  std::atomic<std::size_t> bytes{0};
};

const PackedStencil& StencilOp::packed() const {
  PBMG_CHECK(packed_slot_ != nullptr,
             "StencilOp::packed: Poisson fast path has nothing to pack");
  std::call_once(packed_slot_->once, [this] {
    packed_slot_->packed = PackedStencil::pack(*this);
    packed_slot_->bytes.store(packed_slot_->packed.bytes(),
                              std::memory_order_release);
  });
  return packed_slot_->packed;
}

std::size_t StencilOp::bytes() const {
  std::size_t total = 0;
  if (coeff_ != nullptr) {
    total += 2 * coeff_->ax.size() * sizeof(double);
  }
  if (corner_ != nullptr) {
    total += 3 * corner_->ase.size() * sizeof(double);
  }
  // An unpacked legacy-layout operator genuinely holds no packed block
  // yet, so bytes() may grow after the first packed sweep; sessions
  // compute their footprint post-prewarm.
  if (packed_slot_ != nullptr) {
    total += packed_slot_->bytes.load(std::memory_order_acquire);
  }
  return total;
}

StencilOp StencilOp::poisson(int n) {
  PBMG_CHECK(is_valid_grid_size(n), "StencilOp::poisson: n must be 2^k + 1");
  StencilOp op;
  op.n_ = n;
  return op;
}

StencilOp StencilOp::variable(Grid2D ax, Grid2D ay, double c) {
  const int n = ax.n();
  PBMG_CHECK(is_valid_grid_size(n), "StencilOp::variable: n must be 2^k + 1");
  PBMG_CHECK(ay.n() == n, "StencilOp::variable: ax/ay size mismatch");
  PBMG_CHECK(std::isfinite(c) && c >= 0.0,
             "StencilOp::variable: c must be finite and >= 0");
  check_coefficients(ax, ay, n);
  StencilOp op;
  op.n_ = n;
  op.c_ = c;
  auto coeff = std::make_shared<Coefficients>();
  coeff->ax = std::move(ax);
  coeff->ay = std::move(ay);
  op.coeff_ = std::move(coeff);
  op.packed_slot_ = std::make_shared<PackedSlot>();
  return op;
}

StencilOp StencilOp::nine_point(Grid2D ax, Grid2D ay, Grid2D ase, Grid2D asw,
                                Grid2D center, double c) {
  const int n = ax.n();
  PBMG_CHECK(is_valid_grid_size(n),
             "StencilOp::nine_point: n must be 2^k + 1");
  PBMG_CHECK(ay.n() == n && ase.n() == n && asw.n() == n && center.n() == n,
             "StencilOp::nine_point: coefficient grid size mismatch");
  PBMG_CHECK(std::isfinite(c) && c >= 0.0,
             "StencilOp::nine_point: c must be finite and >= 0");
  check_nine_point(ax, ay, ase, asw, center, n);
  StencilOp op;
  op.n_ = n;
  op.c_ = c;
  auto coeff = std::make_shared<Coefficients>();
  coeff->ax = std::move(ax);
  coeff->ay = std::move(ay);
  op.coeff_ = std::move(coeff);
  auto corner = std::make_shared<CornerCoefficients>();
  corner->ase = std::move(ase);
  corner->asw = std::move(asw);
  corner->center = std::move(center);
  op.corner_ = std::move(corner);
  op.packed_slot_ = std::make_shared<PackedSlot>();
  return op;
}

StencilOp StencilOp::from_tensor(
    int n, const std::function<double(double, double)>& a11_fn,
    const std::function<double(double, double)>& a12_fn,
    const std::function<double(double, double)>& a22_fn, double c) {
  PBMG_CHECK(is_valid_grid_size(n),
             "StencilOp::from_tensor: n must be 2^k + 1");
  PBMG_CHECK(a11_fn != nullptr && a12_fn != nullptr && a22_fn != nullptr,
             "StencilOp::from_tensor: null coefficient function");
  const double h = mesh_width(n);
  Grid2D ax(n, 0.0);
  Grid2D ay(n, 0.0);
  Grid2D ase(n, 0.0);
  Grid2D asw(n, 0.0);
  Grid2D center(n, 0.0);
  // Convention matches from_coefficients: row i is y = i·h, column j is
  // x = j·h.  Edge couplings sample the in-line tensor entry at the edge
  // midpoint; the mixed term −2·a12·u_xy discretises with the standard
  // 4-corner cross stencil, giving coupling +a12/2 on the "\" diagonal
  // and −a12/2 on the "/" diagonal, each sampled at its own midpoint so
  // the coupling is shared symmetrically by its two endpoints.
  for (int i = 0; i < n; ++i) {
    const double y = i * h;
    for (int j = 0; j + 1 < n; ++j) {
      ax(i, j) = a11_fn((j + 0.5) * h, y);
    }
  }
  for (int i = 0; i + 1 < n; ++i) {
    const double y = (i + 0.5) * h;
    for (int j = 0; j < n; ++j) {
      ay(i, j) = a22_fn(j * h, y);
      // Diagonal midpoints stay inside [0,1]²: ase is read for j <= n−2
      // and asw for j >= 1, so the out-of-range columns are never
      // sampled (a12_fn need only be defined on the unit square).
      if (j + 1 < n) {
        ase(i, j) = 0.5 * a12_fn((j + 0.5) * h, y);
        // SPD precondition scan, matching check_coefficients' convention
        // for the 5-point factories: an indefinite tensor would otherwise
        // surface only as a non-positive Cholesky pivot (or silent cycle
        // divergence) far from the bad coefficient function.
        PBMG_NUM_ASSERT(
            [&] {
              const double x = (j + 0.5) * h;
              const double m11 = a11_fn(x, y);
              const double m22 = a22_fn(x, y);
              const double m12 = a12_fn(x, y);
              return m11 > 0.0 && m22 > 0.0 && m12 * m12 < m11 * m22;
            }(),
            "StencilOp::from_tensor: tensor must be SPD on [0,1]^2");
      }
      if (j > 0) asw(i, j) = -0.5 * a12_fn((j - 0.5) * h, y);
    }
  }
  // The centre is the row sum of the node's eight couplings, so the
  // operator annihilates constants exactly (A·1 = 0 away from the
  // boundary when c = 0), matching the flux-form 5-point convention.
  for (int i = 1; i + 1 < n; ++i) {
    for (int j = 1; j + 1 < n; ++j) {
      center(i, j) = ((ax(i, j - 1) + ax(i, j)) + (ay(i - 1, j) + ay(i, j))) +
                     ((ase(i, j) + ase(i - 1, j - 1)) +
                      (asw(i, j) + asw(i - 1, j + 1)));
    }
  }
  return nine_point(std::move(ax), std::move(ay), std::move(ase),
                    std::move(asw), std::move(center), c);
}

StencilOp StencilOp::from_coefficients(
    int n, const std::function<double(double, double)>& ax_fn,
    const std::function<double(double, double)>& ay_fn, double c) {
  PBMG_CHECK(is_valid_grid_size(n),
             "StencilOp::from_coefficients: n must be 2^k + 1");
  PBMG_CHECK(ax_fn != nullptr && ay_fn != nullptr,
             "StencilOp::from_coefficients: null coefficient function");
  const double h = mesh_width(n);
  Grid2D ax(n, 1.0);
  Grid2D ay(n, 1.0);
  // Convention matches grid/problem.cpp: row i is y = i·h, column j is
  // x = j·h.  Edge coefficients are sampled at edge midpoints.
  for (int i = 0; i < n; ++i) {
    const double y = i * h;
    for (int j = 0; j + 1 < n; ++j) {
      ax(i, j) = ax_fn((j + 0.5) * h, y);
    }
  }
  for (int i = 0; i + 1 < n; ++i) {
    const double y = (i + 0.5) * h;
    for (int j = 0; j < n; ++j) {
      ay(i, j) = ay_fn(j * h, y);
    }
  }
  return variable(std::move(ax), std::move(ay), c);
}

StencilOp StencilOp::from_coefficient(
    int n, const std::function<double(double, double)>& a_fn, double c) {
  return from_coefficients(n, a_fn, a_fn, c);
}

const Grid2D& StencilOp::ax_grid() const {
  PBMG_CHECK(coeff_ != nullptr,
             "StencilOp::ax_grid: Poisson fast path stores no grids");
  return coeff_->ax;
}

const Grid2D& StencilOp::ay_grid() const {
  PBMG_CHECK(coeff_ != nullptr,
             "StencilOp::ay_grid: Poisson fast path stores no grids");
  return coeff_->ay;
}

const Grid2D& StencilOp::ase_grid() const {
  PBMG_CHECK(corner_ != nullptr,
             "StencilOp::ase_grid: operator has no corner couplings");
  return corner_->ase;
}

const Grid2D& StencilOp::asw_grid() const {
  PBMG_CHECK(corner_ != nullptr,
             "StencilOp::asw_grid: operator has no corner couplings");
  return corner_->asw;
}

const Grid2D& StencilOp::center_grid() const {
  PBMG_CHECK(corner_ != nullptr,
             "StencilOp::center_grid: operator has no corner couplings");
  return corner_->center;
}

double StencilOp::diag(int i, int j) const {
  PBMG_CHECK(i >= 1 && i < n_ - 1 && j >= 1 && j < n_ - 1,
             "StencilOp::diag: (i,j) must be an interior cell");
  const double inv_h2 =
      static_cast<double>(n_ - 1) * static_cast<double>(n_ - 1);
  return center(i, j) * inv_h2 + c_;
}

StencilOp StencilOp::restricted() const {
  PBMG_CHECK(n_ >= 5, "StencilOp::restricted: cannot coarsen below N = 5");
  const int nc = coarse_size(n_);
  if (is_poisson()) return poisson(nc);  // constants restrict to themselves

  const int n = n_;
  const auto clamp_row = [n](int r) { return std::clamp(r, 0, n - 1); };
  Grid2D ax_c(nc, 1.0);
  Grid2D ay_c(nc, 1.0);
  // Coarse edge (I,J)-(I,J+1) spans fine nodes (2I,2J)..(2I,2J+2): series
  // conductance of the two in-line fine edges, averaged with the parallel
  // paths one fine row above and below (weights ½/¼/¼; rows clamped at the
  // boundary so the weights always sum to 1 and constants are preserved).
  // Corner couplings of a 9-point operator are dropped here — this is the
  // 5-point averaged-coefficient approximation the tuner races against
  // galerkin_coarse().
  const auto x_path = [&](int row, int cj) {
    const int r = clamp_row(row);
    return series(ax(r, 2 * cj), ax(r, 2 * cj + 1));
  };
  const auto y_path = [&](int col, int ci) {
    const int c = clamp_row(col);
    return series(ay(2 * ci, c), ay(2 * ci + 1, c));
  };
  for (int ci = 0; ci < nc; ++ci) {
    for (int cj = 0; cj + 1 < nc; ++cj) {
      ax_c(ci, cj) = 0.5 * x_path(2 * ci, cj) +
                     0.25 * (x_path(2 * ci - 1, cj) + x_path(2 * ci + 1, cj));
      ay_c(cj, ci) = 0.5 * y_path(2 * ci, cj) +
                     0.25 * (y_path(2 * ci - 1, cj) + y_path(2 * ci + 1, cj));
    }
  }
  return variable(std::move(ax_c), std::move(ay_c), c_);
}

StencilOp StencilOp::galerkin_coarse() const {
  PBMG_CHECK(n_ >= 5,
             "StencilOp::galerkin_coarse: cannot coarsen below N = 5");
  const int n = n_;
  const int nc = coarse_size(n);
  const double hf2 = mesh_width(n) * mesh_width(n);

  Grid2D ax_c(nc, 0.0);
  Grid2D ay_c(nc, 0.0);
  Grid2D ase_c(nc, 0.0);
  Grid2D asw_c(nc, 0.0);
  Grid2D ctr_c(nc, 0.0);

  // A_c(C,D) = Σ_p Σ_q R(C,p) · A(p,q) · P(q,D): R is the full-weighting
  // stencil [1 2 1; 2 4 2; 1 2 1]/16 over the 3×3 fine nodes around 2C
  // (boundary p excluded — restriction zeroes the ring), A runs over the
  // interior fine matrix (couplings to the boundary are Dirichlet-lifted,
  // not matrix entries), and P is bilinear interpolation (q contributes
  // to the coarse nodes D with |q − 2D|∞ <= 1, weight 2^-(|dx|+|dy|)).
  // Since q stays within ±2 of 2C and 2D within ±1 of q, |D − C|∞ <= 1:
  // the Galerkin coarse operator is again 9-point.  Entries are stored in
  // coarse coupling units (×h_c² = 4·h_f², so matrix scaling cancels to
  // the factor 4 below) with the fine reaction term c folded into the
  // coarse stencil (the coarse operator carries c = 0).
  constexpr double kRw[3] = {0.25, 0.5, 0.25};  // per-axis FW weights
  for (int ci = 1; ci + 1 < nc; ++ci) {
    for (int cj = 1; cj + 1 < nc; ++cj) {
      double acc[3][3] = {};
      for (int dpi = -1; dpi <= 1; ++dpi) {
        const int pi = 2 * ci + dpi;
        if (pi < 1 || pi > n - 2) continue;
        for (int dpj = -1; dpj <= 1; ++dpj) {
          const int pj = 2 * cj + dpj;
          if (pj < 1 || pj > n - 2) continue;
          const double wr = kRw[dpi + 1] * kRw[dpj + 1];
          for (int si = -1; si <= 1; ++si) {
            const int qi = pi + si;
            if (qi < 1 || qi > n - 2) continue;
            for (int sj = -1; sj <= 1; ++sj) {
              const int qj = pj + sj;
              if (qj < 1 || qj > n - 2) continue;
              const double entry =
                  (si == 0 && sj == 0)
                      ? 4.0 * (center(pi, pj) + c_ * hf2)
                      : -4.0 * coupling(pi, pj, si, sj);
              if (entry == 0.0) continue;
              // Bilinear P: an even fine index maps to one coarse node
              // with weight 1, an odd one to its two neighbours with ½.
              const int di0 = qi / 2;
              const int dj0 = qj / 2;
              const bool odd_i = (qi & 1) != 0;
              const bool odd_j = (qj & 1) != 0;
              const double wi = odd_i ? 0.5 : 1.0;
              const double wj = odd_j ? 0.5 : 1.0;
              const double w = wr * entry * (wi * wj);
              for (int ti = 0; ti <= (odd_i ? 1 : 0); ++ti) {
                for (int tj = 0; tj <= (odd_j ? 1 : 0); ++tj) {
                  acc[di0 + ti - ci + 1][dj0 + tj - cj + 1] += w;
                }
              }
            }
          }
        }
      }
      ctr_c(ci, cj) = acc[1][1];
      // Couplings are the negated off-diagonal entries, written from this
      // node's perspective; shared edges/diagonals are written twice with
      // values equal up to summation-order rounding, keeping the stored
      // representation exactly symmetric.
      ax_c(ci, cj) = -acc[1][2];
      ax_c(ci, cj - 1) = -acc[1][0];
      ay_c(ci, cj) = -acc[2][1];
      ay_c(ci - 1, cj) = -acc[0][1];
      ase_c(ci, cj) = -acc[2][2];
      ase_c(ci - 1, cj - 1) = -acc[0][0];
      asw_c(ci, cj) = -acc[2][0];
      asw_c(ci - 1, cj + 1) = -acc[0][2];
    }
  }
  return nine_point(std::move(ax_c), std::move(ay_c), std::move(ase_c),
                    std::move(asw_c), std::move(ctr_c), 0.0);
}

StencilOp StencilOp::coarsened(Coarsening mode) const {
  return mode == Coarsening::kRap ? galerkin_coarse() : restricted();
}

StencilHierarchy::StencilHierarchy(StencilOp fine, Coarsening mode)
    : mode_(mode) {
  PBMG_CHECK(fine.n() >= 3, "StencilHierarchy: empty fine operator");
  const int top = level_of_size(fine.n());
  ops_.resize(static_cast<std::size_t>(top) + 1);
  ops_[static_cast<std::size_t>(top)] = std::move(fine);
  for (int k = top - 1; k >= 1; --k) {
    ops_[static_cast<std::size_t>(k)] =
        ops_[static_cast<std::size_t>(k) + 1].coarsened(mode);
  }
}

int StencilHierarchy::n() const {
  return ops_.empty() ? 0 : ops_.back().n();
}

bool StencilHierarchy::is_poisson() const {
  for (std::size_t k = 1; k < ops_.size(); ++k) {
    if (!ops_[k].is_poisson()) return false;
  }
  return !ops_.empty();
}

void StencilHierarchy::prewarm_packed() const {
  for (std::size_t k = 1; k < ops_.size(); ++k) {
    // Poisson levels dispatch to the dedicated constant-coefficient
    // kernels under either layout, so there is nothing to pack; every
    // other level (including RAP coarsenings of a Poisson fine operator,
    // which are 9-point) packs here.
    if (!ops_[k].is_poisson()) (void)ops_[k].packed();
  }
}

std::size_t StencilHierarchy::bytes() const {
  std::size_t total = 0;
  for (std::size_t k = 1; k < ops_.size(); ++k) total += ops_[k].bytes();
  return total;
}

const StencilOp& StencilHierarchy::at(int level) const {
  PBMG_CHECK(level >= 1 && level <= top_level(),
             "StencilHierarchy::at: level " + std::to_string(level) +
                 " outside [1, " + std::to_string(top_level()) + "]");
  return ops_[static_cast<std::size_t>(level)];
}

}  // namespace pbmg::grid
