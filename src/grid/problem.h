#pragma once

#include <string>

#include "grid/grid2d.h"
#include "grid/stencil_op.h"
#include "runtime/scheduler.h"
#include "support/json.h"
#include "support/rng.h"

/// \file problem.h
/// Problem instances, the training/benchmark input distributions used in
/// the paper (§4) — right-hand sides and Dirichlet boundary values drawn
/// uniformly from [−2³², 2³²] ("unbiased"), the same distribution shifted
/// by +2³¹ ("biased"), and the point-source variant the paper mentions
/// alongside them — plus the ready-made operator families that extend the
/// paper's notion of "scenario" beyond the constant-coefficient Poisson
/// operator (see stencil_op.h).  A ProblemSpec names one full scenario
/// (operator family × input distribution × size); the tuning layer keys
/// its config cache on it so every scenario gets its own tuned tables.

namespace pbmg {

/// Input distributions from §4 of the paper.
enum class InputDistribution {
  /// Uniform over [−2³², 2³²].
  kUnbiased,
  /// Uniform over [−2³² + 2³¹, 2³² + 2³¹].
  kBiased,
  /// Sparse right-hand side: a handful of random ±2³² point sources/sinks,
  /// zero Dirichlet boundary.
  kPointSources,
};

/// Human-readable name ("unbiased", "biased", "point-sources").
std::string to_string(InputDistribution dist);

/// Parses the names produced by to_string.  Throws InvalidArgument for
/// anything else.
InputDistribution parse_distribution(const std::string& name);

/// Ready-made elliptic operator families (−∇·(a∇u) + c·u; see
/// stencil_op.h).  Tuned choices shift materially between families — the
/// high-contrast and anisotropic operators converge differently enough
/// that a Poisson-tuned cycle shape is no longer the fastest — so each
/// family is a first-class tuning scenario (bench/fig18_operator_families
/// measures the retuning payoff).
enum class OperatorFamily {
  /// a ≡ 1, c = 0: the paper's operator (StencilOp's fast path).
  kPoisson,
  /// Smooth isotropic variation: a(x,y) = 1 + 0.6·sin(πx)·sin(πy).
  kSmoothVariable,
  /// High-contrast "jump": a = 100 inside the centred box [¼,¾)², 1
  /// outside (interface aligned with coarse-grid lines for n >= 5).
  kJumpCoefficient,
  /// Axis-anisotropic: ax ≡ 1, ay ≡ 1/32 (weak vertical coupling).  A
  /// V(1,1) cycle with point red-black SOR still contracts at ~0.75–0.8
  /// per cycle at this ratio — slow enough that Poisson-tuned iteration
  /// counts are badly mistuned (the fig18 payoff); x-line relaxation
  /// (solvers/line_relax.h) restores textbook rates.
  kAnisotropic,
  /// Extreme axis anisotropy: ax ≡ 1, ay ≡ 10⁻³ (1000:1).  Point
  /// relaxation stalls outright here (~0.999 per V(1,1) cycle); this
  /// family *requires* the line smoothers and is the workload on which
  /// the autotuner must discover them (bench/fig19_line_smoothers).
  kAnisotropic1000,
  /// Direction-varying ("rotated") anisotropy: the strong axis flips
  /// across the x = ½ grid line — ax = 1, ay = 10⁻³ on the left half,
  /// ax = 10⁻³, ay = 1 on the right.  Neither x-lines nor y-lines alone
  /// smooth the whole domain; the alternating zebra smoother does.
  /// (Still 5-point-representable: the axis-aligned-by-parts analogue of
  /// the genuinely rotated kAnisoTheta* families below.)
  kAnisoRotated,
  /// True rotated anisotropy: −∇·(R(θ)ᵀ·diag(1,ε)·R(θ) ∇u) with ε = 10⁻²
  /// and θ = 30° — a full diffusion tensor whose mixed derivative needs
  /// the 9-point stencil's corner couplings.  Averaged-coefficient
  /// coarsening drops those corners, so this family is where Galerkin RAP
  /// coarse operators (grid::Coarsening::kRap) earn their keep
  /// (bench/fig20_rotated_anisotropy).
  kAnisoTheta30,
  /// Same tensor at θ = 45°, the hardest angle: the characteristic
  /// direction lies exactly between the grid axes, so neither x- nor
  /// y-line relaxation follows it and 5-point coarse operators misrepresent
  /// the dominant coupling entirely.
  kAnisoTheta45,
};

/// All families, in declaration order (for sweeping tests/benches).
inline constexpr OperatorFamily kAllOperatorFamilies[] = {
    OperatorFamily::kPoisson,         OperatorFamily::kSmoothVariable,
    OperatorFamily::kJumpCoefficient, OperatorFamily::kAnisotropic,
    OperatorFamily::kAnisotropic1000, OperatorFamily::kAnisoRotated,
    OperatorFamily::kAnisoTheta30,    OperatorFamily::kAnisoTheta45};

/// Short stable name ("poisson", "smooth", "jump", "aniso", "aniso1000",
/// "aniso-rot", "aniso-t30", "aniso-t45") — used in cache keys and config
/// provenance, so renaming invalidates tuned tables.
std::string to_string(OperatorFamily family);

/// Parses the names produced by to_string.  Throws InvalidArgument for
/// anything else.
OperatorFamily parse_operator_family(const std::string& name);

/// Builds the family's operator discretised on an n×n grid.
grid::StencilOp make_operator(int n, OperatorFamily family);

/// One full tuning scenario: which operator, which input distribution,
/// and how large.  Part of the tuned-config cache key (tune/config_cache);
/// two specs that differ in any field must never share tuned tables.
struct ProblemSpec {
  OperatorFamily op = OperatorFamily::kPoisson;
  InputDistribution distribution = InputDistribution::kUnbiased;
  int level = 8;  ///< fine-grid recursion level (side 2^level + 1)

  bool operator==(const ProblemSpec&) const = default;

  /// Filename-safe token, e.g. "poisson_unbiased_L8".
  std::string cache_token() const;

  /// Serialization (bitwise round trip: from_json(to_json(s)) == s).
  Json to_json() const;
  static ProblemSpec from_json(const Json& json);
};

/// One instance of the discrete Poisson problem A·x = b with Dirichlet
/// boundary data.  `x0` carries the boundary values on its ring and a zero
/// interior (the canonical starting guess); solvers update its interior.
struct PoissonProblem {
  Grid2D b;   ///< right-hand side (interior entries are meaningful)
  Grid2D x0;  ///< initial guess: Dirichlet ring + zero interior

  int n() const { return b.n(); }
};

/// Draws a problem of side n from the given distribution.  Deterministic in
/// (n, dist, rng state).
PoissonProblem make_problem(int n, InputDistribution dist, Rng& rng);

/// A problem whose exact *discrete* solution is known: `exact` sampled from
/// a smooth function, b = A·exact, boundary of x0 = exact's boundary.
/// Solvers can be validated against `exact` to machine precision.
struct ManufacturedProblem {
  PoissonProblem problem;
  Grid2D exact;
};

/// Builds a manufactured problem from u(x,y) = sin(πx)·sinh(πy) + x² − y²
/// scaled to O(1) magnitudes.  `sched` runs the b = A·exact evaluation.
ManufacturedProblem make_manufactured_problem(int n, rt::Scheduler& sched);

}  // namespace pbmg
