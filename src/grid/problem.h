#pragma once

#include <string>

#include "grid/grid2d.h"
#include "runtime/scheduler.h"
#include "support/rng.h"

/// \file problem.h
/// Poisson problem instances and the training/benchmark input
/// distributions used in the paper (§4): right-hand sides and Dirichlet
/// boundary values drawn uniformly from [−2³², 2³²] ("unbiased"), the same
/// distribution shifted by +2³¹ ("biased"), and the point-source variant
/// the paper mentions alongside them.

namespace pbmg {

/// Input distributions from §4 of the paper.
enum class InputDistribution {
  /// Uniform over [−2³², 2³²].
  kUnbiased,
  /// Uniform over [−2³² + 2³¹, 2³² + 2³¹].
  kBiased,
  /// Sparse right-hand side: a handful of random ±2³² point sources/sinks,
  /// zero Dirichlet boundary.
  kPointSources,
};

/// Human-readable name ("unbiased", "biased", "point-sources").
std::string to_string(InputDistribution dist);

/// Parses the names produced by to_string.  Throws InvalidArgument for
/// anything else.
InputDistribution parse_distribution(const std::string& name);

/// One instance of the discrete Poisson problem A·x = b with Dirichlet
/// boundary data.  `x0` carries the boundary values on its ring and a zero
/// interior (the canonical starting guess); solvers update its interior.
struct PoissonProblem {
  Grid2D b;   ///< right-hand side (interior entries are meaningful)
  Grid2D x0;  ///< initial guess: Dirichlet ring + zero interior

  int n() const { return b.n(); }
};

/// Draws a problem of side n from the given distribution.  Deterministic in
/// (n, dist, rng state).
PoissonProblem make_problem(int n, InputDistribution dist, Rng& rng);

/// A problem whose exact *discrete* solution is known: `exact` sampled from
/// a smooth function, b = A·exact, boundary of x0 = exact's boundary.
/// Solvers can be validated against `exact` to machine precision.
struct ManufacturedProblem {
  PoissonProblem problem;
  Grid2D exact;
};

/// Builds a manufactured problem from u(x,y) = sin(πx)·sinh(πy) + x² − y²
/// scaled to O(1) magnitudes.  `sched` runs the b = A·exact evaluation.
ManufacturedProblem make_manufactured_problem(int n, rt::Scheduler& sched);

}  // namespace pbmg
