// 4-lane instantiation of the packed row kernels.  On x86-64 this TU —
// and only this TU — is compiled with -mavx2 (see CMakeLists.txt), which
// turns on the AVX2 Vec<4> specialization in simd.h; the dispatcher
// never calls into it unless __builtin_cpu_supports("avx2") at runtime.
// On other targets the generic 4-lane struct compiles to baseline code
// (e.g. NEON register pairs on aarch64), so width 4 is safe everywhere.
#include "grid/packed_kernels_body.h"

PBMG_INSTANTIATE_PACKED_KERNELS(4)
