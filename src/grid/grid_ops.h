#pragma once

#include <span>

#include "grid/grid2d.h"
#include "grid/stencil_op.h"
#include "runtime/scheduler.h"

/// \file grid_ops.h
/// Numerical kernels on grids: the 5-point Laplacian, residuals, norms, and
/// the inter-grid transfer operators used by every multigrid variant.
///
/// Conventions (see DESIGN.md §4):
///  - the discrete operator on an n×n grid is
///      (A x)(i,j) = (4·x(i,j) − x(i±1,j) − x(i,j±1)) / h²,  h = 1/(n−1);
///  - interior cells are (1..n−2)²; the boundary ring carries Dirichlet data;
///  - restriction is full weighting, interpolation is bilinear.
///
/// Every kernel takes the scheduler explicitly so callers control which
/// machine profile executes (the tuner measures under the active profile).

namespace pbmg::grid {

/// out(i,j) = (A x)(i,j) on the interior; out's boundary ring is zeroed.
/// Requires x and out to be the same valid size.
void apply_poisson(const Grid2D& x, Grid2D& out, rt::Scheduler& sched);

/// r = b − A x on the interior; r's boundary ring is zeroed.
/// Requires all three grids to share the same valid size.
void residual(const Grid2D& x, const Grid2D& b, Grid2D& r,
              rt::Scheduler& sched);

/// out(i,j) = (A x)(i,j) for a variable-coefficient operator (see
/// stencil_op.h); out's boundary ring is zeroed.  The Poisson fast path
/// dispatches to apply_poisson, bit-for-bit, and a 5-point operator keeps
/// its pre-9-point loop bit-for-bit; 9-point operators take the corner-
/// coupled kernel.  A KernelPolicy selecting StencilLayout::kPacked runs
/// the SoA-packed SIMD kernels instead (packed_kernels.h) — bitwise
/// identical results, different memory traffic (Poisson still takes its
/// dedicated kernel).  Requires x.n() == op.n().
void apply_op(const StencilOp& op, const Grid2D& x, Grid2D& out,
              rt::Scheduler& sched, const KernelPolicy& kernels = {});

/// r = b − A x for a variable-coefficient operator; r's boundary ring is
/// zeroed.  The Poisson fast path dispatches to residual(), bit-for-bit;
/// the kernel policy selects legacy vs packed sweeps as in apply_op.
void residual_op(const StencilOp& op, const Grid2D& x, const Grid2D& b,
                 Grid2D& r, rt::Scheduler& sched,
                 const KernelPolicy& kernels = {});

/// Batched residual: rs[k] = bs[k] − A·xs[k] for K right-hand-sides of
/// one operator, fused so each coefficient row is loaded once per row
/// sweep and reused across all K (the batched-serving amortization —
/// coefficients dominate the 9-point sweep's bandwidth).  Each k's
/// per-point accumulation order is exactly the solo residual_op order,
/// so every slot is bitwise identical to K separate calls; the fusion
/// changes only *when* coefficient loads happen, never the arithmetic.
/// Requires equal span sizes and all grids matching op.n().
void residual_op_multi(const StencilOp& op,
                       std::span<const Grid2D* const> xs,
                       std::span<const Grid2D* const> bs,
                       std::span<Grid2D* const> rs, rt::Scheduler& sched,
                       const KernelPolicy& kernels = {});

/// Full-weighting restriction of the fine interior onto the coarse grid:
/// coarse(I,J) = 1/16 · [1 2 1; 2 4 2; 1 2 1] stencil at fine (2I, 2J).
/// The coarse boundary ring is zeroed (restriction is applied to residuals,
/// whose error equation has homogeneous Dirichlet boundaries).
/// Requires coarse.n() == coarse_size(fine.n()).
void restrict_full_weighting(const Grid2D& fine, Grid2D& coarse,
                             rt::Scheduler& sched);

/// Injection restriction: coarse(I,J) = fine(2I,2J) over the whole grid,
/// boundary included.  Used by full multigrid to coarsen the *problem*
/// (boundary conditions travel by injection).
void restrict_inject(const Grid2D& fine, Grid2D& coarse,
                     rt::Scheduler& sched);

/// Adds the bilinear interpolation of `coarse` to the fine interior:
/// fine += P·coarse.  Used for coarse-grid corrections.  The fine boundary
/// ring is untouched.  Requires coarse.n() == coarse_size(fine.n()).
void interpolate_add(const Grid2D& coarse, Grid2D& fine,
                     rt::Scheduler& sched);

/// Overwrites the fine interior with the bilinear interpolation of
/// `coarse`: fine = P·coarse.  Used by full multigrid to lift a coarse
/// solution into an initial guess.  The fine boundary ring is untouched.
void interpolate_assign(const Grid2D& coarse, Grid2D& fine,
                        rt::Scheduler& sched);

/// Discrete L2 norm over the interior: sqrt(Σ g(i,j)²).
double norm2_interior(const Grid2D& g, rt::Scheduler& sched);

/// Discrete L2 norm of (a − b) over the interior.
/// Requires matching sizes.
double norm2_diff_interior(const Grid2D& a, const Grid2D& b,
                           rt::Scheduler& sched);

/// Largest absolute interior value.
double max_abs_interior(const Grid2D& g, rt::Scheduler& sched);

/// axpy on the interior: y += alpha · x.  Requires matching sizes.
void axpy_interior(double alpha, const Grid2D& x, Grid2D& y,
                   rt::Scheduler& sched);

}  // namespace pbmg::grid
