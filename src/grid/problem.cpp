#include "grid/problem.h"

#include <cmath>

#include "grid/grid_ops.h"
#include "grid/level.h"

namespace pbmg {

namespace {

constexpr double kTwo32 = 4294967296.0;  // 2^32
constexpr double kTwo31 = 2147483648.0;  // 2^31

/// Rotated-anisotropy tensor M = R(θ)ᵀ·diag(1, ε)·R(θ) with ε = 10⁻²,
/// discretised as a constant-coefficient 9-point operator.  M is SPD for
/// any θ (eigenvalues 1 and ε), so the discrete operator is SPD too.
grid::StencilOp make_rotated_operator(int n, double theta_degrees) {
  constexpr double kEpsilon = 1e-2;
  const double theta = theta_degrees * M_PI / 180.0;
  const double s = std::sin(theta);
  const double c = std::cos(theta);
  const double a11 = c * c + kEpsilon * s * s;
  const double a22 = s * s + kEpsilon * c * c;
  const double a12 = (1.0 - kEpsilon) * s * c;
  return grid::StencilOp::from_tensor(
      n, [a11](double, double) { return a11; },
      [a12](double, double) { return a12; },
      [a22](double, double) { return a22; }, 0.0);
}

}  // namespace

std::string to_string(InputDistribution dist) {
  switch (dist) {
    case InputDistribution::kUnbiased: return "unbiased";
    case InputDistribution::kBiased: return "biased";
    case InputDistribution::kPointSources: return "point-sources";
  }
  throw InvalidArgument("to_string: invalid InputDistribution");
}

InputDistribution parse_distribution(const std::string& name) {
  if (name == "unbiased") return InputDistribution::kUnbiased;
  if (name == "biased") return InputDistribution::kBiased;
  if (name == "point-sources") return InputDistribution::kPointSources;
  throw InvalidArgument("unknown input distribution '" + name +
                        "' (expected unbiased|biased|point-sources)");
}

std::string to_string(OperatorFamily family) {
  switch (family) {
    case OperatorFamily::kPoisson: return "poisson";
    case OperatorFamily::kSmoothVariable: return "smooth";
    case OperatorFamily::kJumpCoefficient: return "jump";
    case OperatorFamily::kAnisotropic: return "aniso";
    case OperatorFamily::kAnisotropic1000: return "aniso1000";
    case OperatorFamily::kAnisoRotated: return "aniso-rot";
    case OperatorFamily::kAnisoTheta30: return "aniso-t30";
    case OperatorFamily::kAnisoTheta45: return "aniso-t45";
  }
  throw InvalidArgument("to_string: invalid OperatorFamily");
}

OperatorFamily parse_operator_family(const std::string& name) {
  if (name == "poisson") return OperatorFamily::kPoisson;
  if (name == "smooth") return OperatorFamily::kSmoothVariable;
  if (name == "jump") return OperatorFamily::kJumpCoefficient;
  if (name == "aniso") return OperatorFamily::kAnisotropic;
  if (name == "aniso1000") return OperatorFamily::kAnisotropic1000;
  if (name == "aniso-rot") return OperatorFamily::kAnisoRotated;
  if (name == "aniso-t30") return OperatorFamily::kAnisoTheta30;
  if (name == "aniso-t45") return OperatorFamily::kAnisoTheta45;
  throw InvalidArgument(
      "unknown operator family '" + name +
      "' (expected poisson|smooth|jump|aniso|aniso1000|aniso-rot|"
      "aniso-t30|aniso-t45)");
}

grid::StencilOp make_operator(int n, OperatorFamily family) {
  PBMG_CHECK(is_valid_grid_size(n), "make_operator: n must be 2^k + 1");
  switch (family) {
    case OperatorFamily::kPoisson:
      return grid::StencilOp::poisson(n);
    case OperatorFamily::kSmoothVariable:
      return grid::StencilOp::from_coefficient(n, [](double x, double y) {
        return 1.0 + 0.6 * std::sin(M_PI * x) * std::sin(M_PI * y);
      });
    case OperatorFamily::kJumpCoefficient:
      // Half-open box so edge midpoints on the upper interface sample the
      // background value; the jump sits on x,y = ¼ and ¾, which are grid
      // lines of every level with n >= 5, keeping the interface aligned
      // under coarsening.
      return grid::StencilOp::from_coefficient(n, [](double x, double y) {
        const bool inside = x >= 0.25 && x < 0.75 && y >= 0.25 && y < 0.75;
        return inside ? 100.0 : 1.0;
      });
    case OperatorFamily::kAnisotropic:
      return grid::StencilOp::from_coefficients(
          n, [](double, double) { return 1.0; },
          [](double, double) { return 0.03125; }, 0.0);
    case OperatorFamily::kAnisotropic1000:
      return grid::StencilOp::from_coefficients(
          n, [](double, double) { return 1.0; },
          [](double, double) { return 1e-3; }, 0.0);
    case OperatorFamily::kAnisoRotated:
      // The strong axis flips across x = ½ (a grid line of every level,
      // keeping the interface aligned under coefficient restriction like
      // the jump family's box).  Half-open: y-edges sampled exactly on
      // the interface column take the right-region value.
      return grid::StencilOp::from_coefficients(
          n, [](double x, double) { return x < 0.5 ? 1.0 : 1e-3; },
          [](double x, double) { return x < 0.5 ? 1e-3 : 1.0; }, 0.0);
    case OperatorFamily::kAnisoTheta30:
      return make_rotated_operator(n, 30.0);
    case OperatorFamily::kAnisoTheta45:
      return make_rotated_operator(n, 45.0);
  }
  throw InvalidArgument("make_operator: invalid OperatorFamily");
}

std::string ProblemSpec::cache_token() const {
  return to_string(op) + "_" + to_string(distribution) + "_L" +
         std::to_string(level);
}

Json ProblemSpec::to_json() const {
  Json j = Json::object();
  j.set("operator", to_string(op));
  j.set("distribution", to_string(distribution));
  j.set("level", std::int64_t{level});
  return j;
}

ProblemSpec ProblemSpec::from_json(const Json& json) {
  ProblemSpec spec;
  spec.op = parse_operator_family(json.at("operator").as_string());
  spec.distribution = parse_distribution(json.at("distribution").as_string());
  spec.level = static_cast<int>(json.at("level").as_int());
  PBMG_CHECK(spec.level >= 1 && spec.level <= 30,
             "ProblemSpec: level out of range");
  return spec;
}

PoissonProblem make_problem(int n, InputDistribution dist, Rng& rng) {
  PBMG_CHECK(is_valid_grid_size(n), "make_problem: n must be 2^k + 1");
  PoissonProblem p;
  p.b = Grid2D(n, 0.0);
  p.x0 = Grid2D(n, 0.0);

  const auto draw = [&](double shift) {
    return rng.uniform(-kTwo32, kTwo32) + shift;
  };

  switch (dist) {
    case InputDistribution::kUnbiased:
    case InputDistribution::kBiased: {
      const double shift =
          dist == InputDistribution::kBiased ? kTwo31 : 0.0;
      for (int i = 1; i < n - 1; ++i) {
        for (int j = 1; j < n - 1; ++j) {
          p.b(i, j) = draw(shift);
        }
      }
      // Dirichlet boundary values on the ring of x0.
      for (int j = 0; j < n; ++j) {
        p.x0(0, j) = draw(shift);
        p.x0(n - 1, j) = draw(shift);
      }
      for (int i = 1; i < n - 1; ++i) {
        p.x0(i, 0) = draw(shift);
        p.x0(i, n - 1) = draw(shift);
      }
      break;
    }
    case InputDistribution::kPointSources: {
      // A handful of strong sources/sinks in an otherwise zero RHS with a
      // grounded (zero) boundary.
      const int sources = 5;
      for (int s = 0; s < sources; ++s) {
        const int i =
            1 + static_cast<int>(rng.uniform_index(
                    static_cast<std::uint64_t>(n - 2)));
        const int j =
            1 + static_cast<int>(rng.uniform_index(
                    static_cast<std::uint64_t>(n - 2)));
        p.b(i, j) += (rng.uniform01() < 0.5 ? -kTwo32 : kTwo32);
      }
      break;
    }
  }
  return p;
}

ManufacturedProblem make_manufactured_problem(int n, rt::Scheduler& sched) {
  PBMG_CHECK(is_valid_grid_size(n),
             "make_manufactured_problem: n must be 2^k + 1");
  ManufacturedProblem mp;
  mp.exact = Grid2D(n, 0.0);
  const double h = mesh_width(n);
  for (int i = 0; i < n; ++i) {
    const double y = i * h;
    for (int j = 0; j < n; ++j) {
      const double x = j * h;
      mp.exact(i, j) =
          std::sin(M_PI * x) * std::sinh(M_PI * y) / std::sinh(M_PI) +
          x * x - y * y;
    }
  }
  mp.problem.b = Grid2D(n, 0.0);
  mp.problem.x0 = Grid2D(n, 0.0);
  // b = A·exact computed with the *discrete* operator, so `exact` is the
  // exact solution of the discrete system (not just of the PDE).
  grid::apply_poisson(mp.exact, mp.problem.b, sched);
  mp.problem.x0.copy_boundary_from(mp.exact);
  return mp;
}

}  // namespace pbmg
