#include "grid/problem.h"

#include <cmath>

#include "grid/grid_ops.h"
#include "grid/level.h"

namespace pbmg {

namespace {

constexpr double kTwo32 = 4294967296.0;  // 2^32
constexpr double kTwo31 = 2147483648.0;  // 2^31

}  // namespace

std::string to_string(InputDistribution dist) {
  switch (dist) {
    case InputDistribution::kUnbiased: return "unbiased";
    case InputDistribution::kBiased: return "biased";
    case InputDistribution::kPointSources: return "point-sources";
  }
  throw InvalidArgument("to_string: invalid InputDistribution");
}

InputDistribution parse_distribution(const std::string& name) {
  if (name == "unbiased") return InputDistribution::kUnbiased;
  if (name == "biased") return InputDistribution::kBiased;
  if (name == "point-sources") return InputDistribution::kPointSources;
  throw InvalidArgument("unknown input distribution '" + name +
                        "' (expected unbiased|biased|point-sources)");
}

PoissonProblem make_problem(int n, InputDistribution dist, Rng& rng) {
  PBMG_CHECK(is_valid_grid_size(n), "make_problem: n must be 2^k + 1");
  PoissonProblem p;
  p.b = Grid2D(n, 0.0);
  p.x0 = Grid2D(n, 0.0);

  const auto draw = [&](double shift) {
    return rng.uniform(-kTwo32, kTwo32) + shift;
  };

  switch (dist) {
    case InputDistribution::kUnbiased:
    case InputDistribution::kBiased: {
      const double shift =
          dist == InputDistribution::kBiased ? kTwo31 : 0.0;
      for (int i = 1; i < n - 1; ++i) {
        for (int j = 1; j < n - 1; ++j) {
          p.b(i, j) = draw(shift);
        }
      }
      // Dirichlet boundary values on the ring of x0.
      for (int j = 0; j < n; ++j) {
        p.x0(0, j) = draw(shift);
        p.x0(n - 1, j) = draw(shift);
      }
      for (int i = 1; i < n - 1; ++i) {
        p.x0(i, 0) = draw(shift);
        p.x0(i, n - 1) = draw(shift);
      }
      break;
    }
    case InputDistribution::kPointSources: {
      // A handful of strong sources/sinks in an otherwise zero RHS with a
      // grounded (zero) boundary.
      const int sources = 5;
      for (int s = 0; s < sources; ++s) {
        const int i =
            1 + static_cast<int>(rng.uniform_index(
                    static_cast<std::uint64_t>(n - 2)));
        const int j =
            1 + static_cast<int>(rng.uniform_index(
                    static_cast<std::uint64_t>(n - 2)));
        p.b(i, j) += (rng.uniform01() < 0.5 ? -kTwo32 : kTwo32);
      }
      break;
    }
  }
  return p;
}

ManufacturedProblem make_manufactured_problem(int n, rt::Scheduler& sched) {
  PBMG_CHECK(is_valid_grid_size(n),
             "make_manufactured_problem: n must be 2^k + 1");
  ManufacturedProblem mp;
  mp.exact = Grid2D(n, 0.0);
  const double h = mesh_width(n);
  for (int i = 0; i < n; ++i) {
    const double y = i * h;
    for (int j = 0; j < n; ++j) {
      const double x = j * h;
      mp.exact(i, j) =
          std::sin(M_PI * x) * std::sinh(M_PI * y) / std::sinh(M_PI) +
          x * x - y * y;
    }
  }
  mp.problem.b = Grid2D(n, 0.0);
  mp.problem.x0 = Grid2D(n, 0.0);
  // b = A·exact computed with the *discrete* operator, so `exact` is the
  // exact solution of the discrete system (not just of the PDE).
  grid::apply_poisson(mp.exact, mp.problem.b, sched);
  mp.problem.x0.copy_boundary_from(mp.exact);
  return mp;
}

}  // namespace pbmg
