#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "grid/grid2d.h"

/// \file stencil_op.h
/// Variable-coefficient elliptic operators: 5-point flux stencils and the
/// 9-point (corner-coupled) generalisation.
///
/// A StencilOp describes the discrete operator
///
///     (A u)(i,j) = −∇·(M(x,y) ∇u)(i,j) + c·u(i,j)
///
/// on an n×n grid with Dirichlet boundaries.  For a diagonal diffusion
/// tensor M = diag(ax, ay) the standard flux form suffices: each interior
/// cell couples to its four edge neighbours through a per-edge coefficient,
///
///     (A u)(i,j) = [ aW·(u−uW) + aE·(u−uE) + aN·(u−uN) + aS·(u−uS) ] / h²
///                  + c·u ,
///
/// where aW = ax(i,j−1), aE = ax(i,j), aN = ay(i−1,j), aS = ay(i,j) are
/// the diffusion coefficients sampled at edge midpoints.  The operator is
/// symmetric by construction (every edge coefficient is shared by its two
/// endpoints) and positive definite whenever all edge coefficients are
/// positive and c >= 0.
///
/// A full tensor (mixed derivative −2·a12·u_xy, i.e. *rotated* anisotropy)
/// is not 5-point-representable: the cross term discretises onto the four
/// corner neighbours.  The 9-point extension adds two diagonal coupling
/// grids and an explicit centre coefficient:
///
///     (A u)(i,j) = [ cC·u − Σ_nb c_nb·u_nb ] / h² + c·u
///
/// over all eight neighbours, with the couplings shared per node pair so
/// symmetry again holds by construction.  The centre is stored explicitly
/// because Galerkin coarse operators (below) do not have zero row sums
/// near the boundary.  Corner couplings may legitimately be negative (the
/// mixed term makes one diagonal negative); positive definiteness holds
/// whenever the underlying tensor M is SPD.
///
/// The constant-coefficient Poisson operator (M ≡ I, c = 0) is the
/// zero-overhead fast path: `StencilOp::poisson(n)` stores no coefficient
/// grids, and every kernel that takes a StencilOp dispatches it to the
/// original specialised Poisson kernel, bit-for-bit identical to calling
/// that kernel directly.  Likewise a 5-point operator (no corner grids)
/// dispatches to the pre-9-point kernels bit for bit.
///
/// Coarse-grid operators come in two flavours — the `Coarsening` choice
/// dimension the autotuner races (tune/trainer.h):
///
///  - `Coarsening::kAverage` (`restricted()`): the historical heuristic —
///    the coarse edge coefficient is the harmonic (series) combination of
///    the two in-line fine edges, averaged with the two adjacent parallel
///    fine paths with weights ½/¼/¼ (Alcouffe et al.).  Corner couplings
///    of a 9-point fine operator are *dropped* (a 5-point approximation);
///    the Poisson fast path restricts to itself with no arithmetic.
///  - `Coarsening::kRap` (`galerkin_coarse()`): the exact Galerkin triple
///    product A_c = R·A·P with full-weighting restriction and bilinear
///    interpolation — the classical robust-multigrid recipe (BoxMG/hypre
///    style).  The coarse operator is always 9-point (RAP of the 5-point
///    Poisson stencil is the standard 9-point coarse Poisson stencil with
///    edge couplings ½ and corner couplings ¼).
///
/// `StencilHierarchy` precomputes a whole ladder once per solve context,
/// in either mode.
///
/// Numerical kernels (apply/residual) live in grid_ops.h as free functions
/// like every other grid kernel; this header only defines the data types.

namespace pbmg::grid {

class PackedStencil;

/// How coarse-grid operators are formed — a tuned choice dimension (see
/// file comment).  Serialized in tuned tables as "avg" / "rap"; a missing
/// field reads as the legacy kAverage.
enum class Coarsening {
  kAverage,  ///< heuristic edge-coefficient averaging (5-point coarse ops)
  kRap,      ///< exact Galerkin R·A·P (9-point coarse ops)
};

/// Stable names used in tuned tables and cache keys: "avg", "rap".
std::string to_string(Coarsening mode);

/// Parses the names produced by to_string; throws InvalidArgument for
/// anything else.
Coarsening parse_coarsening(const std::string& name);

/// How the sweep kernels read a level's coefficients — a tuned choice
/// dimension like Coarsening.  kLegacy streams the separate n×n grids;
/// kPacked streams the interleaved SoA row blocks of grid::PackedStencil
/// (see packed_stencil.h) with SIMD inner loops.  Both produce bitwise
/// identical results; only the memory traffic differs, so the tuner picks
/// per (machine × operator family × size).  Serialized as "legacy" /
/// "packed"; a missing field reads as kLegacy.
enum class StencilLayout {
  kLegacy,  ///< separate coefficient grids, scalar sweeps (the seed path)
  kPacked,  ///< interleaved SoA row blocks + SIMD sweeps
};

/// Stable names used in tuned tables and cache keys: "legacy", "packed".
std::string to_string(StencilLayout layout);

/// Parses the names produced by to_string; throws InvalidArgument for
/// anything else.
StencilLayout parse_stencil_layout(const std::string& name);

/// The kernel-implementation choices a sweep runs under, carried alongside
/// the algorithmic tunables (solvers::RelaxTunables holds one, VCycleOptions
/// forwards it).  simd_width is the *requested* lane count in {1, 2, 4};
/// the dispatcher clamps it to what the running CPU supports — safe because
/// every width is bitwise identical, so clamping never changes results.
/// Width only matters under kPacked (legacy sweeps ignore it).
struct KernelPolicy {
  StencilLayout layout = StencilLayout::kLegacy;
  int simd_width = 1;
};

/// Throws InvalidArgument unless layout is a valid enumerator and
/// simd_width ∈ {1, 2, 4}.  Shared by solvers::validate_relax_tunables and
/// the search deserializers.
void validate_kernel_policy(const KernelPolicy& policy);

/// A variable-coefficient 5- or 9-point operator (see file comment).
/// Value type: copies share the underlying coefficient grids.
class StencilOp {
 public:
  /// Empty operator (n = 0); assign before use.
  StencilOp() = default;

  /// The constant-coefficient Poisson operator on an n×n grid — the fast
  /// path.  Stores no coefficient grids.
  static StencilOp poisson(int n);

  /// Builds a 5-point operator from explicit edge-coefficient grids.  `ax`
  /// and `ay` must be n×n: ax(i,j) is the coefficient of the edge between
  /// nodes (i,j) and (i,j+1) (read for j in [0, n−2]); ay(i,j) is the
  /// coefficient of the edge between (i,j) and (i+1,j) (read for i in
  /// [0, n−2]).  Requires every read edge coefficient > 0 and c >= 0.
  static StencilOp variable(Grid2D ax, Grid2D ay, double c);

  /// Builds a 9-point operator from explicit coupling grids.  In addition
  /// to the edge grids above: ase(i,j) couples nodes (i,j) and (i+1,j+1)
  /// (the "\" diagonal, read for i,j in [0, n−2]); asw(i,j) couples (i,j)
  /// and (i+1,j−1) (the "/" diagonal, read for i in [0, n−2], j in
  /// [1, n−1]); center(i,j) is the explicit centre coefficient at interior
  /// nodes (coupling units — the assembled diagonal is center/h² + c).
  /// Corner couplings may be negative; requires center > 0 on the
  /// interior and c >= 0.
  static StencilOp nine_point(Grid2D ax, Grid2D ay, Grid2D ase, Grid2D asw,
                              Grid2D center, double c);

  /// Samples a full symmetric diffusion tensor M = [[a11,a12],[a12,a22]]
  /// at the appropriate midpoints and discretises −∇·(M∇u) + c·u as a
  /// 9-point operator (x = column·h, y = row·h over the unit square;
  /// mixed term via the standard 4-corner cross-derivative stencil).  The
  /// centre is the row sum of the couplings, so constants are annihilated
  /// exactly.  Requires M SPD on [0,1]² (a11,a22 > 0, a12² < a11·a22).
  static StencilOp from_tensor(
      int n, const std::function<double(double, double)>& a11_fn,
      const std::function<double(double, double)>& a12_fn,
      const std::function<double(double, double)>& a22_fn, double c);

  /// Samples per-direction coefficient functions at edge midpoints
  /// (x = column·h, y = row·h over the unit square).  `ax_fn`/`ay_fn`
  /// must be positive on [0,1]².
  static StencilOp from_coefficients(
      int n, const std::function<double(double, double)>& ax_fn,
      const std::function<double(double, double)>& ay_fn, double c);

  /// Isotropic convenience: one coefficient function for both directions.
  static StencilOp from_coefficient(
      int n, const std::function<double(double, double)>& a_fn,
      double c = 0.0);

  /// Grid side the operator acts on.
  int n() const { return n_; }

  /// True for the constant-coefficient Poisson fast path.
  bool is_poisson() const { return coeff_ == nullptr; }

  /// Identity of the shared coefficient storage: two StencilOps have equal
  /// identity iff they are copies of one operator (Poisson fast-path ops
  /// all share the null identity — they have no coefficients to differ
  /// in).  Routing caches key on (identity(), n()); holding a StencilOp
  /// copy keeps the identity from being reused by a later allocation.
  const void* identity() const { return coeff_.get(); }

  /// True when the operator carries corner couplings (9-point kernels).
  bool is_nine_point() const { return corner_ != nullptr; }

  /// The constant reaction term c (>= 0).
  double c() const { return c_; }

  /// Edge coefficients (1.0 on the Poisson fast path).
  double ax(int i, int j) const {
    return coeff_ == nullptr ? 1.0 : coeff_->ax(i, j);
  }
  double ay(int i, int j) const {
    return coeff_ == nullptr ? 1.0 : coeff_->ay(i, j);
  }

  /// Diagonal couplings (0.0 unless 9-point): ase couples (i,j)↔(i+1,j+1),
  /// asw couples (i,j)↔(i+1,j−1).
  double ase(int i, int j) const {
    return corner_ == nullptr ? 0.0 : corner_->ase(i, j);
  }
  double asw(int i, int j) const {
    return corner_ == nullptr ? 0.0 : corner_->asw(i, j);
  }

  /// Centre coefficient in coupling units (no 1/h², no c): 4.0 on the
  /// Poisson fast path, the edge sum for 5-point operators, the stored
  /// grid for 9-point ones.
  double center(int i, int j) const {
    if (corner_ != nullptr) return corner_->center(i, j);
    return ((ax(i, j - 1) + ax(i, j)) + ay(i - 1, j)) + ay(i, j);
  }

  /// Coupling (coupling units) between interior node (i,j) and its
  /// neighbour at offset (si,sj) ∈ {−1,0,1}² \ {0} — the single source
  /// of truth for the edge/diagonal index convention, shared by Galerkin
  /// coarsening and the direct solver's boundary lifting.
  double coupling(int i, int j, int si, int sj) const {
    if (si == 0) return sj == 1 ? ax(i, j) : ax(i, j - 1);
    if (sj == 0) return si == 1 ? ay(i, j) : ay(i - 1, j);
    if (si == 1) return sj == 1 ? ase(i, j) : asw(i, j);
    return sj == -1 ? ase(i - 1, j - 1) : asw(i - 1, j + 1);
  }

  /// Raw coefficient grids; requires !is_poisson() (the fast path stores
  /// none).  Hot kernels use these to get row pointers.
  const Grid2D& ax_grid() const;
  const Grid2D& ay_grid() const;

  /// Raw 9-point grids; requires is_nine_point().
  const Grid2D& ase_grid() const;
  const Grid2D& asw_grid() const;
  const Grid2D& center_grid() const;

  /// Diagonal of the assembled matrix at interior cell (i,j):
  /// center(i,j)/h² + c.
  double diag(int i, int j) const;

  /// The next-coarser operator by coefficient averaging (see file
  /// comment).  Restriction of the Poisson fast path is again the Poisson
  /// fast path, with no arithmetic; a 9-point operator loses its corner
  /// couplings (5-point approximation).  Requires n() >= 5.
  StencilOp restricted() const;

  /// The next-coarser operator by the exact Galerkin triple product
  /// R·A·P (full-weighting R, bilinear P) — always a 9-point operator,
  /// including for the Poisson fast path.  Requires n() >= 5.
  StencilOp galerkin_coarse() const;

  /// Dispatch helper: restricted() or galerkin_coarse() by mode.
  StencilOp coarsened(Coarsening mode) const;

  /// The operator's packed (SoA-block) coefficients, built on first call
  /// and cached in the slot every copy of this operator shares — so a
  /// hierarchy packs each level at most once no matter how many sessions
  /// run it.  Thread-safe (std::call_once); requires !is_poisson() (the
  /// fast path dispatches to the legacy Poisson kernels before packing is
  /// ever consulted).
  const PackedStencil& packed() const;

  /// Heap bytes held by this operator's coefficient grids plus its packed
  /// block if one has been built (0 for the Poisson fast path).  Safe to
  /// call concurrently with a first pack(); counts what is resident *now*,
  /// so callers that budget against it should measure after prewarming.
  std::size_t bytes() const;

 private:
  struct Coefficients {
    Grid2D ax;
    Grid2D ay;
  };
  struct CornerCoefficients {
    Grid2D ase;
    Grid2D asw;
    Grid2D center;
  };
  struct PackedSlot;  // once_flag + PackedStencil, defined in the .cpp

  int n_ = 0;
  double c_ = 0.0;
  std::shared_ptr<const Coefficients> coeff_;  ///< null ⇒ Poisson fast path
  std::shared_ptr<const CornerCoefficients> corner_;  ///< null ⇒ 5-point
  std::shared_ptr<PackedSlot> packed_slot_;  ///< null ⇒ Poisson fast path
};

/// Row-pointer view of a 9-point operator's coefficients around grid row
/// i, for the row-sweeping kernels (apply/residual, SOR, Jacobi, x-line
/// solves).  It encodes the offset aliasing of the shared-coupling layout
/// — aNW = se_up[j−1], aNE = sw_up[j+1], aSW = sw_dn[j], aSE = se_dn[j] —
/// in one place, so the kernels cannot drift from the convention that
/// StencilOp::coupling() defines.  Requires is_nine_point() and an
/// interior row i.
struct NinePointRows {
  NinePointRows(const StencilOp& op, int i)
      : ax(op.ax_grid().row(i)),
        ay_up(op.ay_grid().row(i - 1)),
        ay_dn(op.ay_grid().row(i)),
        se_up(op.ase_grid().row(i - 1)),
        se_dn(op.ase_grid().row(i)),
        sw_up(op.asw_grid().row(i - 1)),
        sw_dn(op.asw_grid().row(i)),
        center(op.center_grid().row(i)) {}

  const double* ax;     ///< aW = ax[j−1], aE = ax[j]
  const double* ay_up;  ///< aN = ay_up[j]
  const double* ay_dn;  ///< aS = ay_dn[j]
  const double* se_up;  ///< aNW = se_up[j−1]
  const double* se_dn;  ///< aSE = se_dn[j]
  const double* sw_up;  ///< aNE = sw_up[j+1]
  const double* sw_dn;  ///< aSW = sw_dn[j]
  const double* center;

  /// Coupling-weighted sum of the six neighbours in rows i±1 — the terms
  /// a row-wise line solve folds into its right-hand side.
  double cross_row_sum(const double* up, const double* down, int j) const {
    return ay_up[j] * up[j] + ay_dn[j] * down[j] +
           se_up[j - 1] * up[j - 1] + sw_up[j + 1] * up[j + 1] +
           sw_dn[j] * down[j - 1] + se_dn[j] * down[j + 1];
  }

  /// Coupling-weighted sum of all eight neighbours.
  double neighbour_sum(const double* up, const double* mid,
                       const double* down, int j) const {
    return ax[j - 1] * mid[j - 1] + ax[j] * mid[j + 1] +
           cross_row_sum(up, down, j);
  }
};

/// The per-level operator ladder a multigrid solve runs against: ops at
/// recursion levels [1, top_level], level k acting on 2^k+1 grids.  Built
/// once by repeated coarsening (averaged or Galerkin, see Coarsening) and
/// carried next to the scratch grids by solve sessions, executors and
/// trainers.  Cheap to copy (levels share coefficient storage with the
/// ops they were coarsened from).
class StencilHierarchy {
 public:
  /// Empty hierarchy; assign before use.
  StencilHierarchy() = default;

  /// Coarsens `fine` down to level 1 (N = 3) with the given mode.
  explicit StencilHierarchy(StencilOp fine,
                            Coarsening mode = Coarsening::kAverage);

  /// Fine-grid recursion level (0 for an empty hierarchy).
  int top_level() const { return static_cast<int>(ops_.size()) - 1; }

  /// Fine-grid side.
  int n() const;

  /// Coarsening mode the ladder was built with.
  Coarsening coarsening() const { return mode_; }

  /// True when every level is the Poisson fast path.
  bool is_poisson() const;

  /// Operator at recursion level `level` in [1, top_level].
  const StencilOp& at(int level) const;

  /// Packs every non-Poisson level's coefficients now (idempotent, shared
  /// with every copy of the ladder), so a kPacked solve never pays the
  /// packing cost inside a timed sweep.  Sessions and the profile-search
  /// setup call this ahead of racing candidates.
  void prewarm_packed() const;

  /// Sum of StencilOp::bytes() over the ladder — the coefficient-side
  /// footprint a session pays to keep this hierarchy resident.
  std::size_t bytes() const;

 private:
  std::vector<StencilOp> ops_;  ///< ops_[k] at level k; [0] unused padding
  Coarsening mode_ = Coarsening::kAverage;
};

}  // namespace pbmg::grid
