#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "grid/grid2d.h"

/// \file stencil_op.h
/// Variable-coefficient 5-point elliptic operators.
///
/// A StencilOp describes the discrete operator
///
///     (A u)(i,j) = −∇·(a(x,y) ∇u)(i,j) + c·u(i,j)
///
/// on an n×n grid with Dirichlet boundaries, discretised with the standard
/// flux form: each interior cell couples to its four neighbours through a
/// per-edge coefficient,
///
///     (A u)(i,j) = [ aW·(u−uW) + aE·(u−uE) + aN·(u−uN) + aS·(u−uS) ] / h²
///                  + c·u ,
///
/// where aW = ax(i,j−1), aE = ax(i,j), aN = ay(i−1,j), aS = ay(i,j) are
/// the diffusion coefficients sampled at edge midpoints.  The operator is
/// symmetric by construction (every edge coefficient is shared by its two
/// endpoints) and positive definite whenever all edge coefficients are
/// positive and c >= 0.
///
/// The constant-coefficient Poisson operator (a ≡ 1, c = 0) is the
/// zero-overhead fast path: `StencilOp::poisson(n)` stores no coefficient
/// grids, and every kernel that takes a StencilOp dispatches it to the
/// original specialised Poisson kernel, bit-for-bit identical to calling
/// that kernel directly.
///
/// Coarse-grid operators are obtained by coefficient restriction
/// (`restricted()`): the coarse edge coefficient is the harmonic (series)
/// combination of the two in-line fine edges, averaged with the two
/// adjacent parallel fine paths with weights ½/¼/¼ — the classical
/// Galerkin-flavoured coarsening for flux-form stencils (Alcouffe et al.).
/// `StencilHierarchy` precomputes the whole ladder once per solve context.
///
/// Numerical kernels (apply/residual) live in grid_ops.h as free functions
/// like every other grid kernel; this header only defines the data types.

namespace pbmg::grid {

/// A variable-coefficient 5-point operator (see file comment).
/// Value type: copies share the underlying coefficient grids.
class StencilOp {
 public:
  /// Empty operator (n = 0); assign before use.
  StencilOp() = default;

  /// The constant-coefficient Poisson operator on an n×n grid — the fast
  /// path.  Stores no coefficient grids.
  static StencilOp poisson(int n);

  /// Builds an operator from explicit edge-coefficient grids.  `ax` and
  /// `ay` must be n×n: ax(i,j) is the coefficient of the edge between
  /// nodes (i,j) and (i,j+1) (read for j in [0, n−2]); ay(i,j) is the
  /// coefficient of the edge between (i,j) and (i+1,j) (read for i in
  /// [0, n−2]).  Requires every read edge coefficient > 0 and c >= 0.
  static StencilOp variable(Grid2D ax, Grid2D ay, double c);

  /// Samples per-direction coefficient functions at edge midpoints
  /// (x = column·h, y = row·h over the unit square).  `ax_fn`/`ay_fn`
  /// must be positive on [0,1]².
  static StencilOp from_coefficients(
      int n, const std::function<double(double, double)>& ax_fn,
      const std::function<double(double, double)>& ay_fn, double c);

  /// Isotropic convenience: one coefficient function for both directions.
  static StencilOp from_coefficient(
      int n, const std::function<double(double, double)>& a_fn,
      double c = 0.0);

  /// Grid side the operator acts on.
  int n() const { return n_; }

  /// True for the constant-coefficient Poisson fast path.
  bool is_poisson() const { return coeff_ == nullptr; }

  /// The constant reaction term c (>= 0).
  double c() const { return c_; }

  /// Edge coefficients (1.0 on the Poisson fast path).
  double ax(int i, int j) const {
    return coeff_ == nullptr ? 1.0 : coeff_->ax(i, j);
  }
  double ay(int i, int j) const {
    return coeff_ == nullptr ? 1.0 : coeff_->ay(i, j);
  }

  /// Raw coefficient grids; requires !is_poisson() (the fast path stores
  /// none).  Hot kernels use these to get row pointers.
  const Grid2D& ax_grid() const;
  const Grid2D& ay_grid() const;

  /// Diagonal of the assembled matrix at interior cell (i,j):
  /// (aW + aE + aN + aS)/h² + c.
  double diag(int i, int j) const;

  /// The next-coarser operator by coefficient restriction (see file
  /// comment).  Restriction of the Poisson fast path is again the Poisson
  /// fast path, with no arithmetic.  Requires n() >= 5.
  StencilOp restricted() const;

 private:
  struct Coefficients {
    Grid2D ax;
    Grid2D ay;
  };

  int n_ = 0;
  double c_ = 0.0;
  std::shared_ptr<const Coefficients> coeff_;  ///< null ⇒ Poisson fast path
};

/// The per-level operator ladder a multigrid solve runs against: ops at
/// recursion levels [1, top_level], level k acting on 2^k+1 grids.  Built
/// once by repeated restriction and carried next to the scratch grids by
/// solve sessions, executors and trainers.  Cheap to copy (levels share
/// coefficient storage with the ops they were restricted from).
class StencilHierarchy {
 public:
  /// Empty hierarchy; assign before use.
  StencilHierarchy() = default;

  /// Restricts `fine` down to level 1 (N = 3).
  explicit StencilHierarchy(StencilOp fine);

  /// Fine-grid recursion level (0 for an empty hierarchy).
  int top_level() const { return static_cast<int>(ops_.size()) - 1; }

  /// Fine-grid side.
  int n() const;

  /// True when every level is the Poisson fast path.
  bool is_poisson() const;

  /// Operator at recursion level `level` in [1, top_level].
  const StencilOp& at(int level) const;

 private:
  std::vector<StencilOp> ops_;  ///< ops_[k] at level k; [0] unused padding
};

}  // namespace pbmg::grid
