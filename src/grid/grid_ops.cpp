#include "grid/grid_ops.h"

#include <algorithm>
#include <cmath>

#include "grid/level.h"
#include "grid/packed_kernels.h"

namespace pbmg::grid {

namespace {

void check_same_size(const Grid2D& a, const Grid2D& b, const char* what) {
  PBMG_CHECK(a.n() == b.n(), std::string(what) + ": grid size mismatch");
}

void check_valid(const Grid2D& g, const char* what) {
  PBMG_CHECK(is_valid_grid_size(g.n()),
             std::string(what) + ": grid size must be 2^k + 1");
}

void zero_boundary(Grid2D& g) {
  const int n = g.n();
  for (int j = 0; j < n; ++j) {
    g(0, j) = 0.0;
    g(n - 1, j) = 0.0;
  }
  for (int i = 0; i < n; ++i) {
    g(i, 0) = 0.0;
    g(i, n - 1) = 0.0;
  }
}

}  // namespace

void apply_poisson(const Grid2D& x, Grid2D& out, rt::Scheduler& sched) {
  check_valid(x, "apply_poisson");
  check_same_size(x, out, "apply_poisson");
  const int n = x.n();
  const double inv_h2 = static_cast<double>(n - 1) * static_cast<double>(n - 1);
  sched.parallel_for(1, n - 1, sched.grain_for(n - 2, n - 2),
                     [&](std::int64_t ib, std::int64_t ie) {
                       for (int i = static_cast<int>(ib);
                            i < static_cast<int>(ie); ++i) {
                         const double* up = x.row(i - 1);
                         const double* mid = x.row(i);
                         const double* down = x.row(i + 1);
                         double* o = out.row(i);
                         for (int j = 1; j < n - 1; ++j) {
                           o[j] = (4.0 * mid[j] - up[j] - down[j] -
                                   mid[j - 1] - mid[j + 1]) *
                                  inv_h2;
                         }
                       }
                     });
  zero_boundary(out);
}

void residual(const Grid2D& x, const Grid2D& b, Grid2D& r,
              rt::Scheduler& sched) {
  check_valid(x, "residual");
  check_same_size(x, b, "residual");
  check_same_size(x, r, "residual");
  const int n = x.n();
  const double inv_h2 = static_cast<double>(n - 1) * static_cast<double>(n - 1);
  sched.parallel_for(1, n - 1, sched.grain_for(n - 2, n - 2),
                     [&](std::int64_t ib, std::int64_t ie) {
                       for (int i = static_cast<int>(ib);
                            i < static_cast<int>(ie); ++i) {
                         const double* up = x.row(i - 1);
                         const double* mid = x.row(i);
                         const double* down = x.row(i + 1);
                         const double* rhs = b.row(i);
                         double* o = r.row(i);
                         for (int j = 1; j < n - 1; ++j) {
                           o[j] = rhs[j] - (4.0 * mid[j] - up[j] - down[j] -
                                            mid[j - 1] - mid[j + 1]) *
                                               inv_h2;
                         }
                       }
                     });
  zero_boundary(r);
}

namespace {

/// Shared variable-coefficient stencil loop; WithRhs selects residual
/// (rhs − A·x) versus plain application (A·x).  The accumulation order of
/// the generic path mirrors the Poisson kernels term for term, so a
/// variable operator whose coefficients happen to be exactly 1 (c = 0)
/// reproduces the fast path to the last ulp.
template <bool WithRhs>
void stencil_loop(const StencilOp& op, const Grid2D& x, const Grid2D* b,
                  Grid2D& out, rt::Scheduler& sched) {
  const int n = x.n();
  const double inv_h2 = static_cast<double>(n - 1) * static_cast<double>(n - 1);
  const double c = op.c();
  const Grid2D& ax = op.ax_grid();
  const Grid2D& ay = op.ay_grid();
  sched.parallel_for(
      1, n - 1, sched.grain_for(n - 2, n - 2),
      [&](std::int64_t ib, std::int64_t ie) {
        for (int i = static_cast<int>(ib); i < static_cast<int>(ie); ++i) {
          const double* up = x.row(i - 1);
          const double* mid = x.row(i);
          const double* down = x.row(i + 1);
          const double* axr = ax.row(i);      // aW = axr[j-1], aE = axr[j]
          const double* ay_up = ay.row(i - 1);  // aN = ay_up[j]
          const double* ay_dn = ay.row(i);      // aS = ay_dn[j]
          const double* rhs = WithRhs ? b->row(i) : nullptr;
          double* o = out.row(i);
          for (int j = 1; j < n - 1; ++j) {
            const double aw = axr[j - 1];
            const double ae = axr[j];
            const double an = ay_up[j];
            const double as = ay_dn[j];
            const double diag = ((aw + ae) + an) + as;
            const double av = (diag * mid[j] - an * up[j] - as * down[j] -
                               aw * mid[j - 1] - ae * mid[j + 1]) *
                                  inv_h2 +
                              c * mid[j];
            if constexpr (WithRhs) o[j] = rhs[j] - av;
            else o[j] = av;
          }
        }
      });
  zero_boundary(out);
}

/// 9-point variant: corner couplings and the explicit centre coefficient
/// join the accumulation (see stencil_op.h for the coupling layout).  The
/// 5-point loop above stays untouched so operators without corners keep
/// their bitwise-stable code path.
template <bool WithRhs>
void stencil_loop9(const StencilOp& op, const Grid2D& x, const Grid2D* b,
                   Grid2D& out, rt::Scheduler& sched) {
  const int n = x.n();
  const double inv_h2 = static_cast<double>(n - 1) * static_cast<double>(n - 1);
  const double c = op.c();
  sched.parallel_for(
      1, n - 1, sched.grain_for(n - 2, n - 2),
      [&](std::int64_t ib, std::int64_t ie) {
        for (int i = static_cast<int>(ib); i < static_cast<int>(ie); ++i) {
          const double* up = x.row(i - 1);
          const double* mid = x.row(i);
          const double* down = x.row(i + 1);
          const NinePointRows rows(op, i);
          const double* rhs = WithRhs ? b->row(i) : nullptr;
          double* o = out.row(i);
          for (int j = 1; j < n - 1; ++j) {
            const double nb = rows.neighbour_sum(up, mid, down, j);
            const double av =
                (rows.center[j] * mid[j] - nb) * inv_h2 + c * mid[j];
            if constexpr (WithRhs) o[j] = rhs[j] - av;
            else o[j] = av;
          }
        }
      });
  zero_boundary(out);
}

}  // namespace

void apply_op(const StencilOp& op, const Grid2D& x, Grid2D& out,
              rt::Scheduler& sched, const KernelPolicy& kernels) {
  check_valid(x, "apply_op");
  check_same_size(x, out, "apply_op");
  PBMG_CHECK(op.n() == x.n(), "apply_op: operator/grid size mismatch");
  if (op.is_poisson()) {
    apply_poisson(x, out, sched);
    return;
  }
  if (kernels.layout == StencilLayout::kPacked) {
    packed_apply(op, x, out, sched, kernels.simd_width);
    return;
  }
  if (op.is_nine_point()) {
    stencil_loop9<false>(op, x, nullptr, out, sched);
    return;
  }
  stencil_loop<false>(op, x, nullptr, out, sched);
}

void residual_op(const StencilOp& op, const Grid2D& x, const Grid2D& b,
                 Grid2D& r, rt::Scheduler& sched,
                 const KernelPolicy& kernels) {
  check_valid(x, "residual_op");
  check_same_size(x, b, "residual_op");
  check_same_size(x, r, "residual_op");
  PBMG_CHECK(op.n() == x.n(), "residual_op: operator/grid size mismatch");
  if (op.is_poisson()) {
    residual(x, b, r, sched);
    return;
  }
  if (kernels.layout == StencilLayout::kPacked) {
    packed_residual(op, x, b, r, sched, kernels.simd_width);
    return;
  }
  if (op.is_nine_point()) {
    stencil_loop9<true>(op, x, &b, r, sched);
    return;
  }
  stencil_loop<true>(op, x, &b, r, sched);
}

namespace {

/// Validates one batched-kernel call: equal span sizes, no null slots,
/// every grid matching the operator's size.
void check_multi(const StencilOp& op, std::span<const Grid2D* const> xs,
                 std::span<const Grid2D* const> bs,
                 std::span<Grid2D* const> rs, const char* what) {
  PBMG_CHECK(xs.size() == bs.size() && xs.size() == rs.size(),
             std::string(what) + ": span size mismatch");
  for (std::size_t k = 0; k < xs.size(); ++k) {
    PBMG_CHECK(xs[k] != nullptr && bs[k] != nullptr && rs[k] != nullptr,
               std::string(what) + ": null grid slot");
    PBMG_CHECK(xs[k]->n() == op.n() && bs[k]->n() == op.n() &&
                   rs[k]->n() == op.n(),
               std::string(what) + ": operator/grid size mismatch");
  }
}

/// Fused Poisson residual over K right-hand-sides: one row task walks all
/// K solution/rhs rows before moving on.  Per-k arithmetic is the solo
/// residual() loop verbatim.
void residual_poisson_multi(std::span<const Grid2D* const> xs,
                            std::span<const Grid2D* const> bs,
                            std::span<Grid2D* const> rs,
                            rt::Scheduler& sched) {
  const int n = xs[0]->n();
  const double inv_h2 = static_cast<double>(n - 1) * static_cast<double>(n - 1);
  sched.parallel_for(
      1, n - 1, sched.grain_for(n - 2, n - 2),
      [&](std::int64_t ib, std::int64_t ie) {
        for (int i = static_cast<int>(ib); i < static_cast<int>(ie); ++i) {
          for (std::size_t k = 0; k < xs.size(); ++k) {
            const Grid2D& x = *xs[k];
            const double* up = x.row(i - 1);
            const double* mid = x.row(i);
            const double* down = x.row(i + 1);
            const double* rhs = bs[k]->row(i);
            double* o = rs[k]->row(i);
            for (int j = 1; j < n - 1; ++j) {
              o[j] = rhs[j] - (4.0 * mid[j] - up[j] - down[j] - mid[j - 1] -
                               mid[j + 1]) *
                                  inv_h2;
            }
          }
        }
      });
  for (Grid2D* r : rs) zero_boundary(*r);
}

/// Fused 5-point residual: coefficient rows are resolved once per grid
/// row and reused across all K inner sweeps — the coefficient-bandwidth
/// amortization batching exists for.  Per-k accumulation mirrors
/// stencil_loop<true> term for term.
void residual_5pt_multi(const StencilOp& op,
                        std::span<const Grid2D* const> xs,
                        std::span<const Grid2D* const> bs,
                        std::span<Grid2D* const> rs, rt::Scheduler& sched) {
  const int n = op.n();
  const double inv_h2 = static_cast<double>(n - 1) * static_cast<double>(n - 1);
  const double c = op.c();
  const Grid2D& ax = op.ax_grid();
  const Grid2D& ay = op.ay_grid();
  sched.parallel_for(
      1, n - 1, sched.grain_for(n - 2, n - 2),
      [&](std::int64_t ib, std::int64_t ie) {
        for (int i = static_cast<int>(ib); i < static_cast<int>(ie); ++i) {
          const double* axr = ax.row(i);
          const double* ay_up = ay.row(i - 1);
          const double* ay_dn = ay.row(i);
          for (std::size_t k = 0; k < xs.size(); ++k) {
            const Grid2D& x = *xs[k];
            const double* up = x.row(i - 1);
            const double* mid = x.row(i);
            const double* down = x.row(i + 1);
            const double* rhs = bs[k]->row(i);
            double* o = rs[k]->row(i);
            for (int j = 1; j < n - 1; ++j) {
              const double aw = axr[j - 1];
              const double ae = axr[j];
              const double an = ay_up[j];
              const double as = ay_dn[j];
              const double diag = ((aw + ae) + an) + as;
              o[j] = rhs[j] - ((diag * mid[j] - an * up[j] - as * down[j] -
                                aw * mid[j - 1] - ae * mid[j + 1]) *
                                   inv_h2 +
                               c * mid[j]);
            }
          }
        }
      });
  for (Grid2D* r : rs) zero_boundary(*r);
}

/// Fused 9-point residual; per-k accumulation mirrors stencil_loop9<true>.
void residual_9pt_multi(const StencilOp& op,
                        std::span<const Grid2D* const> xs,
                        std::span<const Grid2D* const> bs,
                        std::span<Grid2D* const> rs, rt::Scheduler& sched) {
  const int n = op.n();
  const double inv_h2 = static_cast<double>(n - 1) * static_cast<double>(n - 1);
  const double c = op.c();
  sched.parallel_for(
      1, n - 1, sched.grain_for(n - 2, n - 2),
      [&](std::int64_t ib, std::int64_t ie) {
        for (int i = static_cast<int>(ib); i < static_cast<int>(ie); ++i) {
          const NinePointRows rows(op, i);
          for (std::size_t k = 0; k < xs.size(); ++k) {
            const Grid2D& x = *xs[k];
            const double* up = x.row(i - 1);
            const double* mid = x.row(i);
            const double* down = x.row(i + 1);
            const double* rhs = bs[k]->row(i);
            double* o = rs[k]->row(i);
            for (int j = 1; j < n - 1; ++j) {
              const double nb = rows.neighbour_sum(up, mid, down, j);
              o[j] = rhs[j] -
                     ((rows.center[j] * mid[j] - nb) * inv_h2 + c * mid[j]);
            }
          }
        }
      });
  for (Grid2D* r : rs) zero_boundary(*r);
}

}  // namespace

void residual_op_multi(const StencilOp& op,
                       std::span<const Grid2D* const> xs,
                       std::span<const Grid2D* const> bs,
                       std::span<Grid2D* const> rs, rt::Scheduler& sched,
                       const KernelPolicy& kernels) {
  check_multi(op, xs, bs, rs, "residual_op_multi");
  if (xs.empty()) return;
  if (xs.size() == 1) {
    // K = 1 takes the solo kernel so batch-of-one and solo are the same
    // code path, not merely bitwise-equal ones.
    residual_op(op, *xs[0], *bs[0], *rs[0], sched, kernels);
    return;
  }
  if (op.is_poisson()) {
    residual_poisson_multi(xs, bs, rs, sched);
    return;
  }
  if (kernels.layout == StencilLayout::kPacked) {
    packed_residual_multi(op, xs, bs, rs, sched, kernels.simd_width);
    return;
  }
  if (op.is_nine_point()) {
    residual_9pt_multi(op, xs, bs, rs, sched);
    return;
  }
  residual_5pt_multi(op, xs, bs, rs, sched);
}

void restrict_full_weighting(const Grid2D& fine, Grid2D& coarse,
                             rt::Scheduler& sched) {
  check_valid(fine, "restrict_full_weighting");
  PBMG_CHECK(coarse.n() == coarse_size(fine.n()),
             "restrict_full_weighting: coarse grid has wrong size");
  const int nc = coarse.n();
  sched.parallel_for(
      1, nc - 1, sched.grain_for(nc - 2, 4 * (nc - 2)),
      [&](std::int64_t ib, std::int64_t ie) {
        for (int ci = static_cast<int>(ib); ci < static_cast<int>(ie); ++ci) {
          const int fi = 2 * ci;
          const double* up = fine.row(fi - 1);
          const double* mid = fine.row(fi);
          const double* down = fine.row(fi + 1);
          double* out = coarse.row(ci);
          for (int cj = 1; cj < nc - 1; ++cj) {
            const int fj = 2 * cj;
            out[cj] = (4.0 * mid[fj] +
                       2.0 * (up[fj] + down[fj] + mid[fj - 1] + mid[fj + 1]) +
                       up[fj - 1] + up[fj + 1] + down[fj - 1] + down[fj + 1]) *
                      (1.0 / 16.0);
          }
        }
      });
  zero_boundary(coarse);
}

void restrict_inject(const Grid2D& fine, Grid2D& coarse,
                     rt::Scheduler& sched) {
  check_valid(fine, "restrict_inject");
  PBMG_CHECK(coarse.n() == coarse_size(fine.n()),
             "restrict_inject: coarse grid has wrong size");
  const int nc = coarse.n();
  sched.parallel_for(0, nc, sched.grain_for(nc, nc),
                     [&](std::int64_t ib, std::int64_t ie) {
                       for (int ci = static_cast<int>(ib);
                            ci < static_cast<int>(ie); ++ci) {
                         const double* src = fine.row(2 * ci);
                         double* out = coarse.row(ci);
                         for (int cj = 0; cj < nc; ++cj) {
                           out[cj] = src[2 * cj];
                         }
                       }
                     });
}

namespace {

/// Shared bilinear-interpolation loop; Assign selects overwrite vs add.
template <bool Assign>
void interpolate_impl(const Grid2D& coarse, Grid2D& fine,
                      rt::Scheduler& sched) {
  PBMG_CHECK(coarse.n() == coarse_size(fine.n()),
             "interpolate: coarse grid has wrong size");
  const int n = fine.n();
  sched.parallel_for(
      1, n - 1, sched.grain_for(n - 2, n - 2),
      [&](std::int64_t ib, std::int64_t ie) {
        for (int i = static_cast<int>(ib); i < static_cast<int>(ie); ++i) {
          double* out = fine.row(i);
          if (i % 2 == 0) {
            const double* c = coarse.row(i / 2);
            for (int j = 1; j < n - 1; ++j) {
              const double v = (j % 2 == 0)
                                   ? c[j / 2]
                                   : 0.5 * (c[j / 2] + c[j / 2 + 1]);
              if constexpr (Assign) out[j] = v;
              else out[j] += v;
            }
          } else {
            const double* c0 = coarse.row(i / 2);
            const double* c1 = coarse.row(i / 2 + 1);
            for (int j = 1; j < n - 1; ++j) {
              const double v =
                  (j % 2 == 0)
                      ? 0.5 * (c0[j / 2] + c1[j / 2])
                      : 0.25 * (c0[j / 2] + c0[j / 2 + 1] + c1[j / 2] +
                                c1[j / 2 + 1]);
              if constexpr (Assign) out[j] = v;
              else out[j] += v;
            }
          }
        }
      });
}

}  // namespace

void interpolate_add(const Grid2D& coarse, Grid2D& fine,
                     rt::Scheduler& sched) {
  check_valid(fine, "interpolate_add");
  interpolate_impl<false>(coarse, fine, sched);
}

void interpolate_assign(const Grid2D& coarse, Grid2D& fine,
                        rt::Scheduler& sched) {
  check_valid(fine, "interpolate_assign");
  interpolate_impl<true>(coarse, fine, sched);
}

double norm2_interior(const Grid2D& g, rt::Scheduler& sched) {
  const int n = g.n();
  if (n <= 2) return 0.0;
  const double sum = sched.parallel_reduce_sum(
      1, n - 1, sched.grain_for(n - 2, n - 2),
      [&](std::int64_t ib, std::int64_t ie) {
        double acc = 0.0;
        for (int i = static_cast<int>(ib); i < static_cast<int>(ie); ++i) {
          const double* r = g.row(i);
          for (int j = 1; j < n - 1; ++j) acc += r[j] * r[j];
        }
        return acc;
      });
  return std::sqrt(sum);
}

double norm2_diff_interior(const Grid2D& a, const Grid2D& b,
                           rt::Scheduler& sched) {
  check_same_size(a, b, "norm2_diff_interior");
  const int n = a.n();
  if (n <= 2) return 0.0;
  const double sum = sched.parallel_reduce_sum(
      1, n - 1, sched.grain_for(n - 2, n - 2),
      [&](std::int64_t ib, std::int64_t ie) {
        double acc = 0.0;
        for (int i = static_cast<int>(ib); i < static_cast<int>(ie); ++i) {
          const double* ra = a.row(i);
          const double* rb = b.row(i);
          for (int j = 1; j < n - 1; ++j) {
            const double d = ra[j] - rb[j];
            acc += d * d;
          }
        }
        return acc;
      });
  return std::sqrt(sum);
}

double max_abs_interior(const Grid2D& g, rt::Scheduler& sched) {
  const int n = g.n();
  if (n <= 2) return 0.0;
  // Reduce via max encoded in a sum-free way: compute per-chunk maxima and
  // combine under a mutex inside the chunk function.
  std::mutex mutex;
  double result = 0.0;
  sched.parallel_for(1, n - 1, sched.grain_for(n - 2, n - 2),
                     [&](std::int64_t ib, std::int64_t ie) {
                       double local = 0.0;
                       for (int i = static_cast<int>(ib);
                            i < static_cast<int>(ie); ++i) {
                         const double* r = g.row(i);
                         for (int j = 1; j < n - 1; ++j) {
                           local = std::max(local, std::abs(r[j]));
                         }
                       }
                       std::lock_guard<std::mutex> lock(mutex);
                       result = std::max(result, local);
                     });
  return result;
}

void axpy_interior(double alpha, const Grid2D& x, Grid2D& y,
                   rt::Scheduler& sched) {
  check_same_size(x, y, "axpy_interior");
  const int n = x.n();
  sched.parallel_for(1, n - 1, sched.grain_for(n - 2, n - 2),
                     [&](std::int64_t ib, std::int64_t ie) {
                       for (int i = static_cast<int>(ib);
                            i < static_cast<int>(ie); ++i) {
                         const double* xr = x.row(i);
                         double* yr = y.row(i);
                         for (int j = 1; j < n - 1; ++j) {
                           yr[j] += alpha * xr[j];
                         }
                       }
                     });
}

}  // namespace pbmg::grid
