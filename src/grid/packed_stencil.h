#pragma once

#include <cstdlib>
#include <memory>

/// \file packed_stencil.h
/// Interleaved SoA-block layout of a StencilOp's coefficients — the
/// "packed" side of the grid::StencilLayout choice dimension.
///
/// The legacy layout stores a 9-point level as five separate n×n grids
/// (ax/ay/ase/asw/center); a sweep over row i then streams eight
/// coefficient rows from five distinct allocations, several of them read
/// at offsets j−1/j+1.  The packed layout regroups everything a row sweep
/// needs into one contiguous block per interior row:
///
///     row 1:  [ aW | aE | aN | aS | … ]        one stream per coupling,
///     row 2:  [ aW | aE | aN | aS | … ]        each padded to a 64-byte
///       ⋮                                      multiple and indexed by j
///
/// Every stream is pre-shifted so entry [j] is the coefficient the update
/// of column j reads (aW[j] = ax(i,j−1), aN[j] = ay(i−1,j), …): the inner
/// loop becomes W-wide unit-stride loads with no cross-grid pointer
/// chasing, which is what the SIMD kernels in packed_kernels.h vectorize
/// over.  A 5-point operator packs five streams (the sum diagonal
/// ((aW+aE)+aN)+aS is precomputed — exactly the accumulation order the
/// legacy kernels use, so results stay bitwise identical); a 9-point
/// operator packs nine.
///
/// Packing is a one-time cost per level: StencilOp caches the packed form
/// next to its coefficient grids (copies share it) and
/// StencilHierarchy::prewarm_packed() / SolveSession build it ahead of
/// any timed sweep.
namespace pbmg::grid {

class StencilOp;

/// The packed coefficients of one operator.  Move-only value; built by
/// pack() and normally owned by the StencilOp's shared cache slot.
class PackedStencil {
 public:
  /// Stream indices within a row block.  Both layouts share the four edge
  /// streams; slot 4 is the precomputed diagonal for 5-point operators
  /// and the first corner stream for 9-point ones.
  enum Stream : int {
    kAw = 0,    ///< aW[j] = ax(i, j−1)
    kAe = 1,    ///< aE[j] = ax(i, j)
    kAn = 2,    ///< aN[j] = ay(i−1, j)
    kAs = 3,    ///< aS[j] = ay(i, j)
    kDiag5 = 4, ///< 5-point only: ((aW+aE)+aN)+aS
    kNw = 4,    ///< 9-point only: aNW[j] = ase(i−1, j−1)
    kNe = 5,    ///< 9-point only: aNE[j] = asw(i−1, j+1)
    kSw = 6,    ///< 9-point only: aSW[j] = asw(i, j)
    kSe = 7,    ///< 9-point only: aSE[j] = ase(i, j)
    kCtr = 8,   ///< 9-point only: explicit centre coefficient
  };

  /// Empty; assign from pack().
  PackedStencil() = default;

  /// Packs `op`'s coefficients.  Requires !op.is_poisson() — the fast
  /// path stores no grids (callers dispatch Poisson to the legacy
  /// kernels, which need no coefficients at all).
  static PackedStencil pack(const StencilOp& op);

  int n() const { return n_; }
  bool nine_point() const { return streams_ == 9; }
  int stream_count() const { return streams_; }

  /// Doubles per stream: n rounded up to a multiple of 8 (64 bytes), so
  /// every stream starts 64-byte aligned.  Entries outside [1, n−2] are
  /// zero.
  long padded() const { return padded_; }

  /// Doubles between the blocks of consecutive interior rows
  /// (= stream_count() · padded()).
  long row_stride() const { return row_stride_; }

  /// Stream `s` of interior grid row i (i in [1, n−2]); entry [j] is the
  /// coefficient column j's update reads, valid for j in [1, n−2].
  const double* stream(int i, int s) const {
    return data_.get() + static_cast<long>(i - 1) * row_stride_ +
           static_cast<long>(s) * padded_;
  }

  /// Block base (row 1, stream 0) for kernels that stride manually.
  const double* base() const { return data_.get(); }

  /// Heap bytes held by the packed block (0 while empty).  Feeds the
  /// per-session footprint accounting SolveService budgets against.
  std::size_t bytes() const {
    return data_ == nullptr
               ? 0
               : static_cast<std::size_t>(n_ - 2) *
                     static_cast<std::size_t>(row_stride_) * sizeof(double);
  }

 private:
  struct FreeDeleter {
    void operator()(double* p) const { std::free(p); }
  };

  double* mutable_stream(int i, int s) {
    return data_.get() + static_cast<long>(i - 1) * row_stride_ +
           static_cast<long>(s) * padded_;
  }

  int n_ = 0;
  int streams_ = 0;
  long padded_ = 0;
  long row_stride_ = 0;
  std::unique_ptr<double[], FreeDeleter> data_;
};

}  // namespace pbmg::grid
