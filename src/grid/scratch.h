#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "grid/grid2d.h"

/// \file scratch.h
/// Recycling pool for temporary grids.
///
/// Every multigrid cycle needs residual/restricted/error temporaries at
/// each level.  Allocating them per call puts multi-megabyte zero-fills on
/// the serial path between parallel regions, which both wastes time and
/// lets workers fall asleep mid-cycle; recycling keeps the glue between
/// parallel regions near zero.  Leased grids come back with *unspecified
/// contents* — callers must fully overwrite (or explicitly fill) them.
///
/// There is deliberately no process-wide pool: every pool is owned by a
/// pbmg::Engine (or a test), so concurrent engines never share free-lists
/// and a long-lived service can observe and trim each pool independently.

namespace pbmg::grid {

/// Thread-safe free-list of grids keyed by side length.
class ScratchPool {
 public:
  /// Pool observability counters (see stats()).  A long-lived service
  /// watches hit rate (pool effectiveness) and high_water_bytes (the
  /// leak-shaped liability a monotonically growing free-list would be).
  struct Stats {
    std::int64_t acquires = 0;   ///< total acquire() calls
    std::int64_t hits = 0;       ///< acquires served from the free-list
    std::int64_t misses = 0;     ///< acquires that allocated a fresh grid
    std::int64_t trims = 0;      ///< trim() calls (no-op trims included)
    std::size_t pooled_grids = 0;      ///< grids currently in the free-list
    std::size_t pooled_bytes = 0;      ///< bytes currently in the free-list
    std::size_t high_water_bytes = 0;  ///< max pooled_bytes ever observed

    /// Free-list effectiveness in [0, 1]; 0 when nothing was acquired yet.
    double hit_rate() const {
      return acquires > 0 ? static_cast<double>(hits) /
                                static_cast<double>(acquires)
                          : 0.0;
    }
  };

  /// RAII lease: returns the grid to the pool on destruction.
  class Lease {
   public:
    Lease(Grid2D grid, ScratchPool* pool)
        : grid_(std::move(grid)), pool_(pool) {}
    ~Lease() {
      if (pool_ != nullptr) pool_->release(std::move(grid_));
    }
    Lease(Lease&& other) noexcept
        : grid_(std::move(other.grid_)), pool_(other.pool_) {
      other.pool_ = nullptr;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;

    /// The leased grid.  Contents are unspecified on acquisition.
    Grid2D& get() { return grid_; }

   private:
    Grid2D grid_;
    ScratchPool* pool_;
  };

  /// Leases an n×n grid with unspecified contents.
  Lease acquire(int n);

  /// Drops all pooled grids (memory pressure / idle shrink) without
  /// resetting the counters; returns the number of bytes released.  Leases
  /// currently out stay valid and return to the pool as usual.
  std::size_t trim();

  /// Drops all pooled grids *and* resets the counters (tests).
  void clear();

  /// Snapshot of the pool counters.
  Stats stats() const;

  /// Number of grids currently pooled (observability).
  std::size_t pooled() const;

 private:
  friend class Lease;

  void release(Grid2D grid);

  mutable std::mutex mutex_;
  std::map<int, std::vector<Grid2D>> free_;
  Stats stats_;
};

}  // namespace pbmg::grid
