#pragma once

#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "grid/grid2d.h"

/// \file scratch.h
/// Recycling pool for temporary grids.
///
/// Every multigrid cycle needs residual/restricted/error temporaries at
/// each level.  Allocating them per call puts multi-megabyte zero-fills on
/// the serial path between parallel regions, which both wastes time and
/// lets workers fall asleep mid-cycle; recycling keeps the glue between
/// parallel regions near zero.  Leased grids come back with *unspecified
/// contents* — callers must fully overwrite (or explicitly fill) them.

namespace pbmg::grid {

/// Thread-safe free-list of grids keyed by side length.
class ScratchPool {
 public:
  /// RAII lease: returns the grid to the pool on destruction.
  class Lease {
   public:
    Lease(Grid2D grid, ScratchPool* pool)
        : grid_(std::move(grid)), pool_(pool) {}
    ~Lease() {
      if (pool_ != nullptr) pool_->release(std::move(grid_));
    }
    Lease(Lease&& other) noexcept
        : grid_(std::move(other.grid_)), pool_(other.pool_) {
      other.pool_ = nullptr;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;

    /// The leased grid.  Contents are unspecified on acquisition.
    Grid2D& get() { return grid_; }

   private:
    Grid2D grid_;
    ScratchPool* pool_;
  };

  /// Leases an n×n grid with unspecified contents.
  Lease acquire(int n) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = free_.find(n);
      if (it != free_.end() && !it->second.empty()) {
        Grid2D grid = std::move(it->second.back());
        it->second.pop_back();
        return Lease(std::move(grid), this);
      }
    }
    return Lease(Grid2D(n, 0.0), this);
  }

  /// Drops all pooled grids (tests / memory pressure).
  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    free_.clear();
  }

  /// Number of grids currently pooled (observability).
  std::size_t pooled() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t count = 0;
    for (const auto& [n, grids] : free_) count += grids.size();
    return count;
  }

  /// Process-wide pool shared by all solvers.
  static ScratchPool& global();

 private:
  void release(Grid2D grid) {
    std::lock_guard<std::mutex> lock(mutex_);
    free_[grid.n()].push_back(std::move(grid));
  }

  mutable std::mutex mutex_;
  std::map<int, std::vector<Grid2D>> free_;
};

}  // namespace pbmg::grid
