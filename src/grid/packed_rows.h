#pragma once

/// \file packed_rows.h
/// Width-templated flat row kernels over a PackedStencil row block.
///
/// Everything here works on raw `double*` streams — no Grid2D, no
/// scheduler, no StencilOp — so the per-width translation units
/// (packed_kernels_w1/w2/w4.cpp) that define these templates can be
/// compiled with different ISA flags without any shared inline code
/// crossing TU boundaries (packed_kernels_w4.cpp is built with -mavx2 on
/// x86; mixing ISAs in merged inline functions would be an ODR bug).
/// Only declarations live here; packed_kernels_body.h holds the
/// definitions and each width TU explicitly instantiates one W, so the
/// dispatching TU (packed_kernels.cpp, compiled with baseline flags)
/// links against exactly one copy per width.
///
/// Parity contract: every kernel reproduces the corresponding legacy
/// loop's floating-point expression tree verbatim (same association,
/// same negations), so for any W the results are bitwise identical to
/// the scalar legacy sweep.  See simd.h for why that holds per lane.

namespace pbmg::grid::pk {

/// One interior row of 5-point streams, pre-shifted so entry [j] is what
/// column j's update reads (PackedStencil::Stream order).
struct View5 {
  const double* aw;
  const double* ae;
  const double* an;
  const double* as;
  const double* diag;  ///< ((aW+aE)+aN)+aS, precomputed at pack time
};

/// One interior row of 9-point streams.
struct View9 {
  const double* aw;
  const double* ae;
  const double* an;
  const double* as;
  const double* nw;
  const double* ne;
  const double* sw;
  const double* se;
  const double* ctr;
};

/// Residual/apply over one interior row: out[j] = A·x (rhs == nullptr)
/// or rhs[j] − A·x (residual).  Unit-stride W-wide inner loop + scalar
/// tail; j runs over [1, n−2].
template <int W>
void stencil_row5(const View5& s, const double* up, const double* mid,
                  const double* down, const double* rhs, double* out,
                  double inv_h2, double c, int n);

template <int W>
void stencil_row9(const View9& s, const double* up, const double* mid,
                  const double* down, const double* rhs, double* out,
                  double inv_h2, double c, int n);

/// One coloured Gauss–Seidel/SOR pass over a row: updates mid[j] in
/// place for j = j0, j0+2, … (the row's active colour), vectorized
/// across same-colour points with stride-2 gathers and per-lane scalar
/// stores (no writes to the untouched colour).
template <int W>
void sor_row5(const View5& s, const double* up, double* mid,
              const double* down, const double* rhs, double h2, double ch2,
              double omega, double keep, int j0, int n);

template <int W>
void sor_row9(const View9& s, const double* up, double* mid,
              const double* down, const double* rhs, double h2, double ch2,
              double omega, double keep, int j0, int n);

/// Weighted-Jacobi row: like SOR but out-of-place (reads mid, writes
/// out) and over every interior column, so loads are unit-stride.
template <int W>
void jacobi_row5(const View5& s, const double* up, const double* mid,
                 const double* down, const double* rhs, double* out,
                 double h2, double ch2, double omega, double keep, int n);

template <int W>
void jacobi_row9(const View9& s, const double* up, const double* mid,
                 const double* down, const double* rhs, double* out,
                 double h2, double ch2, double omega, double keep, int n);

/// Batched Thomas solve of W same-parity x-lines (grid rows).  Lane l
/// works on grid row i0 + 2l: its streams sit at `s.* + l*pstride`
/// (pstride = 2·PackedStencil::row_stride()) and its grid rows at
/// `{up,mid,rhs,down} + l*gstride` (gstride = 2n).  `lanes` ≤ W active
/// lanes; inactive tail lanes duplicate the last active line's loads and
/// are never stored.  cp/dp are W-interleaved scratch (entry [k·W+l]),
/// each at least (n−1)·W doubles.
template <int W>
void x_lines5(const View5& s, long pstride, const double* up, double* mid,
              const double* down, const double* rhs, long gstride, int lanes,
              double* cp, double* dp, double h2, double ch2, int n);

template <int W>
void x_lines9(const View9& s, long pstride, const double* up, double* mid,
              const double* down, const double* rhs, long gstride, int lanes,
              double* cp, double* dp, double h2, double ch2, int n);

/// Batched Thomas solve of W same-parity y-lines (grid columns).  Lane l
/// works on column j0 + 2l of the n×n grids xb (solution, updated in
/// place) and bb (rhs).  Packed streams are addressed from the block
/// base: stream `s` of grid row i is `pbase + (i−1)·prow + s·ppad`
/// (stream slots follow PackedStencil::Stream).
template <int W>
void y_lines5(double* xb, const double* bb, const double* pbase, long prow,
              long ppad, int j0, int lanes, double* cp, double* dp,
              double h2, double ch2, int n);

template <int W>
void y_lines9(double* xb, const double* bb, const double* pbase, long prow,
              long ppad, int j0, int lanes, double* cp, double* dp,
              double h2, double ch2, int n);

/// Multi-RHS Thomas split.  The forward-elimination pivots are a pure
/// function of the operator, so a batch of K right-hand sides factors
/// each line group once and replays only the rhs recurrence per
/// iterate.  x_factor*/y_factor* store cp exactly as x_lines*/y_lines*
/// compute it, plus sub[k·W+l] = −sub-diagonal(k) and inv[k·W+l] =
/// 1/pivot(k); x_apply*/y_apply* then reproduce the solo dp forward
/// recurrence and back substitution operation-for-operation (same band
/// rhs chain, multiplied by the identical stored inv), so every iterate
/// of the batch is bitwise identical to its solo solve.
template <int W>
void x_factor5(const View5& s, long pstride, int lanes, double* cp,
               double* sub, double* inv, double ch2, int n);

template <int W>
void x_factor9(const View9& s, long pstride, int lanes, double* cp,
               double* sub, double* inv, double ch2, int n);

template <int W>
void x_apply5(const View5& s, long pstride, const double* up, double* mid,
              const double* down, const double* rhs, long gstride, int lanes,
              const double* cp, const double* sub, const double* inv,
              double* dp, double h2, int n);

template <int W>
void x_apply9(const View9& s, long pstride, const double* up, double* mid,
              const double* down, const double* rhs, long gstride, int lanes,
              const double* cp, const double* sub, const double* inv,
              double* dp, double h2, int n);

template <int W>
void y_factor5(const double* pbase, long prow, long ppad, int j0, int lanes,
               double* cp, double* sub, double* inv, double ch2, int n);

template <int W>
void y_factor9(const double* pbase, long prow, long ppad, int j0, int lanes,
               double* cp, double* sub, double* inv, double ch2, int n);

template <int W>
void y_apply5(double* xb, const double* bb, const double* pbase, long prow,
              long ppad, int j0, int lanes, const double* cp,
              const double* sub, const double* inv, double* dp, double h2,
              int n);

template <int W>
void y_apply9(double* xb, const double* bb, const double* pbase, long prow,
              long ppad, int j0, int lanes, const double* cp,
              const double* sub, const double* inv, double* dp, double h2,
              int n);

}  // namespace pbmg::grid::pk
