#include "grid/fingerprint.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <utility>

#include "support/error.h"

namespace pbmg::grid {

namespace {

/// Reference side the canonical family fingerprints are sampled at.  Any
/// side works (the features are size-stable means/ratios); 65 keeps the
/// once-per-process setup sweep at ~4k nodes per family.
constexpr int kReferenceSide = 65;

}  // namespace

OperatorFingerprint fingerprint(const StencilOp& op) {
  const int n = op.n();
  PBMG_CHECK(n >= 3, "fingerprint: operator needs an interior (n >= 3)");
  OperatorFingerprint fp;
  // The constant-coefficient fast path is the definition of "no
  // structure": every feature is identically zero, no sweep needed.
  if (op.is_poisson()) return fp;

  double sum_ex = 0.0;
  double sum_ey = 0.0;
  double sum_abs_log = 0.0;
  double sum_rot = 0.0;
  double sum_center = 0.0;
  double min_m = std::numeric_limits<double>::infinity();
  double max_m = 0.0;
  for (int i = 1; i <= n - 2; ++i) {
    for (int j = 1; j <= n - 2; ++j) {
      const double aw = op.coupling(i, j, 0, -1);
      const double ae = op.coupling(i, j, 0, 1);
      const double an = op.coupling(i, j, -1, 0);
      const double as = op.coupling(i, j, 1, 0);
      const double ex = 0.5 * (aw + ae);
      const double ey = 0.5 * (an + as);
      sum_ex += ex;
      sum_ey += ey;
      sum_abs_log += std::abs(std::log10(ex / ey));
      const double m = 0.5 * (ex + ey);
      min_m = std::min(min_m, m);
      max_m = std::max(max_m, m);
      // Signed diagonal sums: the mixed derivative loads the two
      // diagonals antisymmetrically (±a12/2), so their *difference* is a
      // pure cross-term signal while symmetric corner couplings (RAP
      // coarse operators) cancel exactly.
      const double s1 = op.coupling(i, j, 1, 1) + op.coupling(i, j, -1, -1);
      const double s2 = op.coupling(i, j, 1, -1) + op.coupling(i, j, -1, 1);
      const double denom = ex + ey + std::abs(s1) + std::abs(s2);
      if (denom > 0.0) sum_rot += (s2 - s1) / denom;
      sum_center += op.center(i, j);
    }
  }
  const double count = static_cast<double>(n - 2) * static_cast<double>(n - 2);
  fp.anisotropy = std::log10(sum_ex / sum_ey);
  fp.local_anisotropy = sum_abs_log / count;
  fp.heterogeneity =
      (min_m > 0.0 && max_m > 0.0) ? std::log10(max_m / min_m) : 0.0;
  fp.rotation = sum_rot / count;
  if (op.c() > 0.0) {
    const double h = 1.0 / static_cast<double>(n - 1);
    const double c_coupling = op.c() * h * h;  // reaction in coupling units
    fp.reaction = c_coupling / (c_coupling + sum_center / count);
  }
  return fp;
}

double fingerprint_distance(const OperatorFingerprint& a,
                            const OperatorFingerprint& b) {
  const double da = a.anisotropy - b.anisotropy;
  const double dl = a.local_anisotropy - b.local_anisotropy;
  const double dh = a.heterogeneity - b.heterogeneity;
  const double dr = 4.0 * (a.rotation - b.rotation);
  const double dc = 2.0 * (a.reaction - b.reaction);
  return std::sqrt(da * da + dl * dl + dh * dh + dr * dr + dc * dc);
}

std::vector<FamilyMatch> rank_families(const OperatorFingerprint& fp) {
  static const auto references = [] {
    std::array<std::pair<OperatorFamily, OperatorFingerprint>,
               std::size(kAllOperatorFamilies)>
        refs;
    std::size_t i = 0;
    for (const OperatorFamily family : kAllOperatorFamilies) {
      refs[i++] = {family, fingerprint(make_operator(kReferenceSide, family))};
    }
    return refs;
  }();
  std::vector<FamilyMatch> ranked;
  ranked.reserve(references.size());
  for (const auto& [family, ref] : references) {
    ranked.push_back({family, fingerprint_distance(fp, ref)});
  }
  // stable_sort + declaration-order input makes ties deterministic.
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const FamilyMatch& a, const FamilyMatch& b) {
                     return a.distance < b.distance;
                   });
  return ranked;
}

FamilyMatch nearest_family(const OperatorFingerprint& fp) {
  return rank_families(fp).front();
}

}  // namespace pbmg::grid
