// Scalar (W = 1) instantiation of the packed row kernels — the
// always-available fallback every wider width must match bitwise.
#include "grid/packed_kernels_body.h"

PBMG_INSTANTIATE_PACKED_KERNELS(1)
