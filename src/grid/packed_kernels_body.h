#pragma once

/// \file packed_kernels_body.h
/// Definitions of the packed_rows.h templates plus the
/// PBMG_INSTANTIATE_PACKED_KERNELS(W) macro.  Included ONLY by the
/// per-width translation units (packed_kernels_w1/w2/w4.cpp) — see
/// packed_rows.h for why the definitions must not leak into TUs built
/// with different ISA flags.
///
/// Every expression below mirrors the legacy scalar kernel it replaces
/// term by term: same left-to-right association, negation via exact
/// sign flip, no FMA (build-wide -ffp-contract=off).  Do not "simplify"
/// the arithmetic — reassociating any chain breaks the bitwise
/// packed↔legacy parity that packed_kernels_test pins.

#include "grid/packed_rows.h"
#include "grid/simd.h"

namespace pbmg::grid::pk {

// ---------------------------------------------------------------------------
// Residual / apply
// ---------------------------------------------------------------------------

// Legacy order (grid_ops.cpp stencil_loop):
//   av = (diag*mid[j] − aN*up[j] − aS*down[j] − aW*mid[j−1] − aE*mid[j+1])
//        * inv_h2 + c*mid[j]
//   out[j] = rhs ? rhs[j] − av : av
template <int W>
void stencil_row5(const View5& s, const double* up, const double* mid,
                  const double* down, const double* rhs, double* out,
                  double inv_h2, double c, int n) {
  using V = simd::Vec<W>;
  const V vinv = V::broadcast(inv_h2);
  const V vc = V::broadcast(c);
  int j = 1;
  for (; j + W <= n - 1; j += W) {
    const V m = V::load(mid + j);
    const V av = (V::load(s.diag + j) * m -
                  V::load(s.an + j) * V::load(up + j) -
                  V::load(s.as + j) * V::load(down + j) -
                  V::load(s.aw + j) * V::load(mid + j - 1) -
                  V::load(s.ae + j) * V::load(mid + j + 1)) *
                     vinv +
                 vc * m;
    if (rhs != nullptr) {
      (V::load(rhs + j) - av).store(out + j);
    } else {
      av.store(out + j);
    }
  }
  for (; j <= n - 2; ++j) {
    const double m = mid[j];
    const double av = (s.diag[j] * m - s.an[j] * up[j] - s.as[j] * down[j] -
                       s.aw[j] * mid[j - 1] - s.ae[j] * mid[j + 1]) *
                          inv_h2 +
                      c * m;
    out[j] = rhs != nullptr ? rhs[j] - av : av;
  }
}

// Legacy order (grid_ops.cpp stencil_loop9 via NinePointRows): the cross
// sum is its own left-associated chain, added to the in-row pair last —
//   cross = aN*up[j] + aS*down[j] + aNW*up[j−1] + aNE*up[j+1]
//         + aSW*down[j−1] + aSE*down[j+1]
//   nb = (aW*mid[j−1] + aE*mid[j+1]) + cross
//   av = (ctr*mid[j] − nb)*inv_h2 + c*mid[j]
template <int W>
void stencil_row9(const View9& s, const double* up, const double* mid,
                  const double* down, const double* rhs, double* out,
                  double inv_h2, double c, int n) {
  using V = simd::Vec<W>;
  const V vinv = V::broadcast(inv_h2);
  const V vc = V::broadcast(c);
  int j = 1;
  for (; j + W <= n - 1; j += W) {
    const V m = V::load(mid + j);
    const V cross = V::load(s.an + j) * V::load(up + j) +
                    V::load(s.as + j) * V::load(down + j) +
                    V::load(s.nw + j) * V::load(up + j - 1) +
                    V::load(s.ne + j) * V::load(up + j + 1) +
                    V::load(s.sw + j) * V::load(down + j - 1) +
                    V::load(s.se + j) * V::load(down + j + 1);
    const V nb = V::load(s.aw + j) * V::load(mid + j - 1) +
                 V::load(s.ae + j) * V::load(mid + j + 1) + cross;
    const V av = (V::load(s.ctr + j) * m - nb) * vinv + vc * m;
    if (rhs != nullptr) {
      (V::load(rhs + j) - av).store(out + j);
    } else {
      av.store(out + j);
    }
  }
  for (; j <= n - 2; ++j) {
    const double m = mid[j];
    const double cross = s.an[j] * up[j] + s.as[j] * down[j] +
                         s.nw[j] * up[j - 1] + s.ne[j] * up[j + 1] +
                         s.sw[j] * down[j - 1] + s.se[j] * down[j + 1];
    const double nb = s.aw[j] * mid[j - 1] + s.ae[j] * mid[j + 1] + cross;
    const double av = (s.ctr[j] * m - nb) * inv_h2 + c * m;
    out[j] = rhs != nullptr ? rhs[j] - av : av;
  }
}

// ---------------------------------------------------------------------------
// SOR / Jacobi
// ---------------------------------------------------------------------------

// Legacy order (relax.cpp sor_sweep 5-point):
//   diag = ((((aW+aE)+aN)+aS)) + c·h²          (packed: diag stream + ch2)
//   mid[j] = keep*mid[j]
//          + omega*(h²*rhs[j] + aN*up[j] + aS*down[j]
//                   + aW*mid[j−1] + aE*mid[j+1]) / diag
template <int W>
void sor_row5(const View5& s, const double* up, double* mid,
              const double* down, const double* rhs, double h2, double ch2,
              double omega, double keep, int j0, int n) {
  using V = simd::Vec<W>;
  const V vh2 = V::broadcast(h2);
  const V vch2 = V::broadcast(ch2);
  const V vom = V::broadcast(omega);
  const V vkeep = V::broadcast(keep);
  int j = j0;
  for (; j + 2 * (W - 1) <= n - 2; j += 2 * W) {
    const V m = V::gather(mid + j, 2, W);
    const V t = vh2 * V::gather(rhs + j, 2, W) +
                V::gather(s.an + j, 2, W) * V::gather(up + j, 2, W) +
                V::gather(s.as + j, 2, W) * V::gather(down + j, 2, W) +
                V::gather(s.aw + j, 2, W) * V::gather(mid + j - 1, 2, W) +
                V::gather(s.ae + j, 2, W) * V::gather(mid + j + 1, 2, W);
    const V d = V::gather(s.diag + j, 2, W) + vch2;
    (vkeep * m + vom * t / d).scatter(mid + j, 2, W);
  }
  for (; j <= n - 2; j += 2) {
    const double d = s.diag[j] + ch2;
    mid[j] = keep * mid[j] +
             omega *
                 (h2 * rhs[j] + s.an[j] * up[j] + s.as[j] * down[j] +
                  s.aw[j] * mid[j - 1] + s.ae[j] * mid[j + 1]) /
                 d;
  }
}

// Legacy order (relax.cpp sor_sweep_nine): nb via NinePointRows —
// (aW*mid[j−1] + aE*mid[j+1]) + cross — then
//   mid[j] = keep*mid[j] + omega*(h²*rhs[j] + nb)/(ctr + c·h²)
template <int W>
void sor_row9(const View9& s, const double* up, double* mid,
              const double* down, const double* rhs, double h2, double ch2,
              double omega, double keep, int j0, int n) {
  using V = simd::Vec<W>;
  const V vh2 = V::broadcast(h2);
  const V vch2 = V::broadcast(ch2);
  const V vom = V::broadcast(omega);
  const V vkeep = V::broadcast(keep);
  int j = j0;
  for (; j + 2 * (W - 1) <= n - 2; j += 2 * W) {
    const V m = V::gather(mid + j, 2, W);
    const V cross =
        V::gather(s.an + j, 2, W) * V::gather(up + j, 2, W) +
        V::gather(s.as + j, 2, W) * V::gather(down + j, 2, W) +
        V::gather(s.nw + j, 2, W) * V::gather(up + j - 1, 2, W) +
        V::gather(s.ne + j, 2, W) * V::gather(up + j + 1, 2, W) +
        V::gather(s.sw + j, 2, W) * V::gather(down + j - 1, 2, W) +
        V::gather(s.se + j, 2, W) * V::gather(down + j + 1, 2, W);
    const V nb = V::gather(s.aw + j, 2, W) * V::gather(mid + j - 1, 2, W) +
                 V::gather(s.ae + j, 2, W) * V::gather(mid + j + 1, 2, W) +
                 cross;
    const V d = V::gather(s.ctr + j, 2, W) + vch2;
    const V t = vh2 * V::gather(rhs + j, 2, W) + nb;
    (vkeep * m + vom * t / d).scatter(mid + j, 2, W);
  }
  for (; j <= n - 2; j += 2) {
    const double cross = s.an[j] * up[j] + s.as[j] * down[j] +
                         s.nw[j] * up[j - 1] + s.ne[j] * up[j + 1] +
                         s.sw[j] * down[j - 1] + s.se[j] * down[j + 1];
    const double nb = s.aw[j] * mid[j - 1] + s.ae[j] * mid[j + 1] + cross;
    const double d = s.ctr[j] + ch2;
    mid[j] = keep * mid[j] + omega * (h2 * rhs[j] + nb) / d;
  }
}

template <int W>
void jacobi_row5(const View5& s, const double* up, const double* mid,
                 const double* down, const double* rhs, double* out,
                 double h2, double ch2, double omega, double keep, int n) {
  using V = simd::Vec<W>;
  const V vh2 = V::broadcast(h2);
  const V vch2 = V::broadcast(ch2);
  const V vom = V::broadcast(omega);
  const V vkeep = V::broadcast(keep);
  int j = 1;
  for (; j + W <= n - 1; j += W) {
    const V t = vh2 * V::load(rhs + j) +
                V::load(s.an + j) * V::load(up + j) +
                V::load(s.as + j) * V::load(down + j) +
                V::load(s.aw + j) * V::load(mid + j - 1) +
                V::load(s.ae + j) * V::load(mid + j + 1);
    const V d = V::load(s.diag + j) + vch2;
    (vkeep * V::load(mid + j) + vom * t / d).store(out + j);
  }
  for (; j <= n - 2; ++j) {
    const double d = s.diag[j] + ch2;
    out[j] = keep * mid[j] +
             omega *
                 (h2 * rhs[j] + s.an[j] * up[j] + s.as[j] * down[j] +
                  s.aw[j] * mid[j - 1] + s.ae[j] * mid[j + 1]) /
                 d;
  }
}

template <int W>
void jacobi_row9(const View9& s, const double* up, const double* mid,
                 const double* down, const double* rhs, double* out,
                 double h2, double ch2, double omega, double keep, int n) {
  using V = simd::Vec<W>;
  const V vh2 = V::broadcast(h2);
  const V vch2 = V::broadcast(ch2);
  const V vom = V::broadcast(omega);
  const V vkeep = V::broadcast(keep);
  int j = 1;
  for (; j + W <= n - 1; j += W) {
    const V cross = V::load(s.an + j) * V::load(up + j) +
                    V::load(s.as + j) * V::load(down + j) +
                    V::load(s.nw + j) * V::load(up + j - 1) +
                    V::load(s.ne + j) * V::load(up + j + 1) +
                    V::load(s.sw + j) * V::load(down + j - 1) +
                    V::load(s.se + j) * V::load(down + j + 1);
    const V nb = V::load(s.aw + j) * V::load(mid + j - 1) +
                 V::load(s.ae + j) * V::load(mid + j + 1) + cross;
    const V d = V::load(s.ctr + j) + vch2;
    const V t = vh2 * V::load(rhs + j) + nb;
    (vkeep * V::load(mid + j) + vom * t / d).store(out + j);
  }
  for (; j <= n - 2; ++j) {
    const double cross = s.an[j] * up[j] + s.as[j] * down[j] +
                         s.nw[j] * up[j - 1] + s.ne[j] * up[j + 1] +
                         s.sw[j] * down[j - 1] + s.se[j] * down[j + 1];
    const double nb = s.aw[j] * mid[j - 1] + s.ae[j] * mid[j + 1] + cross;
    const double d = s.ctr[j] + ch2;
    out[j] = keep * mid[j] + omega * (h2 * rhs[j] + nb) / d;
  }
}

// ---------------------------------------------------------------------------
// Batched Thomas line solves
// ---------------------------------------------------------------------------

// All four follow line_relax.cpp solve_interior_line verbatim, one
// tridiagonal per lane:
//   inv = 1/diag(1); cp[1] = sup(1)*inv; dp[1] = rhs(1)*inv
//   k = 2..n−2: s = sub(k); pivot = diag(k) − s*cp[k−1]; inv = 1/pivot
//               cp[k] = sup(k)*inv; dp[k] = (rhs(k) − s*dp[k−1])*inv
//   put(n−2); k = n−3..1: dp[k] = dp[k] − cp[k]*dp[k+1]; put(k)
// with the legacy band definitions (sub = −coupling, diag = stream+c·h²,
// rhs folding the Dirichlet boundary at k = 1 and k = n−2; for n = 3 the
// single unknown applies both folds in sequence, like the scalar code).

template <int W>
void x_lines5(const View5& s, long pstride, const double* up, double* mid,
              const double* down, const double* rhs, long gstride, int lanes,
              double* cp, double* dp, double h2, double ch2, int n) {
  using V = simd::Vec<W>;
  const V one = V::broadcast(1.0);
  const V vh2 = V::broadcast(h2);
  const V vch2 = V::broadcast(ch2);
  const auto sv = [&](const double* p, int j) {
    return V::gather(p + j, pstride, lanes);
  };
  const auto gv = [&](const double* p, int j) {
    return V::gather(p + j, gstride, lanes);
  };
  // rhs(j) = h²*b[j] + aN*up[j] + aS*down[j] (+ boundary folds), exactly
  // the legacy chain.
  const auto band_rhs = [&](int j) {
    V r = vh2 * gv(rhs, j) + sv(s.an, j) * gv(up, j) +
          sv(s.as, j) * gv(down, j);
    if (j == 1) r = r + sv(s.aw, 1) * gv(mid, 0);
    if (j == n - 2) r = r + sv(s.ae, n - 2) * gv(mid, n - 1);
    return r;
  };
  {
    const V inv = one / (sv(s.diag, 1) + vch2);
    (-sv(s.ae, 1) * inv).store(cp + 1 * W);
    (band_rhs(1) * inv).store(dp + 1 * W);
  }
  for (int k = 2; k <= n - 2; ++k) {
    const V sub = -sv(s.aw, k);
    const V pivot = (sv(s.diag, k) + vch2) - sub * V::load(cp + (k - 1) * W);
    const V inv = one / pivot;
    (-sv(s.ae, k) * inv).store(cp + k * W);
    ((band_rhs(k) - sub * V::load(dp + (k - 1) * W)) * inv).store(dp + k * W);
  }
  V next = V::load(dp + (n - 2) * W);
  next.scatter(mid + (n - 2), gstride, lanes);
  for (int k = n - 3; k >= 1; --k) {
    next = V::load(dp + k * W) - V::load(cp + k * W) * next;
    next.store(dp + k * W);
    next.scatter(mid + k, gstride, lanes);
  }
}

template <int W>
void x_lines9(const View9& s, long pstride, const double* up, double* mid,
              const double* down, const double* rhs, long gstride, int lanes,
              double* cp, double* dp, double h2, double ch2, int n) {
  using V = simd::Vec<W>;
  const V one = V::broadcast(1.0);
  const V vh2 = V::broadcast(h2);
  const V vch2 = V::broadcast(ch2);
  const auto sv = [&](const double* p, int j) {
    return V::gather(p + j, pstride, lanes);
  };
  const auto gv = [&](const double* p, int j) {
    return V::gather(p + j, gstride, lanes);
  };
  // cross(j) = aN*up[j] + aS*down[j] + aNW*up[j−1] + aNE*up[j+1]
  //          + aSW*down[j−1] + aSE*down[j+1]  (NinePointRows order),
  // evaluated in full before the h²*b[j] add, as the legacy band does.
  const auto band_rhs = [&](int j) {
    const V cross = sv(s.an, j) * gv(up, j) + sv(s.as, j) * gv(down, j) +
                    sv(s.nw, j) * gv(up, j - 1) +
                    sv(s.ne, j) * gv(up, j + 1) +
                    sv(s.sw, j) * gv(down, j - 1) +
                    sv(s.se, j) * gv(down, j + 1);
    V r = vh2 * gv(rhs, j) + cross;
    if (j == 1) r = r + sv(s.aw, 1) * gv(mid, 0);
    if (j == n - 2) r = r + sv(s.ae, n - 2) * gv(mid, n - 1);
    return r;
  };
  {
    const V inv = one / (sv(s.ctr, 1) + vch2);
    (-sv(s.ae, 1) * inv).store(cp + 1 * W);
    (band_rhs(1) * inv).store(dp + 1 * W);
  }
  for (int k = 2; k <= n - 2; ++k) {
    const V sub = -sv(s.aw, k);
    const V pivot = (sv(s.ctr, k) + vch2) - sub * V::load(cp + (k - 1) * W);
    const V inv = one / pivot;
    (-sv(s.ae, k) * inv).store(cp + k * W);
    ((band_rhs(k) - sub * V::load(dp + (k - 1) * W)) * inv).store(dp + k * W);
  }
  V next = V::load(dp + (n - 2) * W);
  next.scatter(mid + (n - 2), gstride, lanes);
  for (int k = n - 3; k >= 1; --k) {
    next = V::load(dp + k * W) - V::load(cp + k * W) * next;
    next.store(dp + k * W);
    next.scatter(mid + k, gstride, lanes);
  }
}

// y-lines address the packed block directly (lane l = column j0 + 2l),
// so stream slots are hardcoded to PackedStencil::Stream order:
// 0 = aW, 1 = aE, 2 = aN, 3 = aS, 4 = diag (5-pt) / aNW (9-pt),
// 5 = aNE, 6 = aSW, 7 = aSE, 8 = ctr.

template <int W>
void y_lines5(double* xb, const double* bb, const double* pbase, long prow,
              long ppad, int j0, int lanes, double* cp, double* dp,
              double h2, double ch2, int n) {
  using V = simd::Vec<W>;
  const V one = V::broadcast(1.0);
  const V vh2 = V::broadcast(h2);
  const V vch2 = V::broadcast(ch2);
  const auto ps = [&](int i, int slot) {
    return V::gather(pbase + static_cast<long>(i - 1) * prow + slot * ppad + j0,
                     2, lanes);
  };
  const auto gx = [&](int i, int dj) {
    return V::gather(xb + static_cast<long>(i) * n + j0 + dj, 2, lanes);
  };
  const auto gb = [&](int i) {
    return V::gather(bb + static_cast<long>(i) * n + j0, 2, lanes);
  };
  // rhs(i) = h²*b(i,j) + aW*x(i,j−1) + aE*x(i,j+1) (+ folds): the legacy
  // ax(i,j−1)/ax(i,j) pair is exactly the aW/aE streams of row i.
  const auto band_rhs = [&](int i) {
    V r = vh2 * gb(i) + ps(i, 0) * gx(i, -1) + ps(i, 1) * gx(i, +1);
    if (i == 1) r = r + ps(1, 2) * gx(0, 0);
    if (i == n - 2) r = r + ps(n - 2, 3) * gx(n - 1, 0);
    return r;
  };
  {
    const V inv = one / (ps(1, 4) + vch2);
    (-ps(1, 3) * inv).store(cp + 1 * W);
    (band_rhs(1) * inv).store(dp + 1 * W);
  }
  for (int k = 2; k <= n - 2; ++k) {
    const V sub = -ps(k, 2);
    const V pivot = (ps(k, 4) + vch2) - sub * V::load(cp + (k - 1) * W);
    const V inv = one / pivot;
    (-ps(k, 3) * inv).store(cp + k * W);
    ((band_rhs(k) - sub * V::load(dp + (k - 1) * W)) * inv).store(dp + k * W);
  }
  V next = V::load(dp + (n - 2) * W);
  next.scatter(xb + static_cast<long>(n - 2) * n + j0, 2, lanes);
  for (int k = n - 3; k >= 1; --k) {
    next = V::load(dp + k * W) - V::load(cp + k * W) * next;
    next.store(dp + k * W);
    next.scatter(xb + static_cast<long>(k) * n + j0, 2, lanes);
  }
}

template <int W>
void y_lines9(double* xb, const double* bb, const double* pbase, long prow,
              long ppad, int j0, int lanes, double* cp, double* dp,
              double h2, double ch2, int n) {
  using V = simd::Vec<W>;
  const V one = V::broadcast(1.0);
  const V vh2 = V::broadcast(h2);
  const V vch2 = V::broadcast(ch2);
  const auto ps = [&](int i, int slot) {
    return V::gather(pbase + static_cast<long>(i - 1) * prow + slot * ppad + j0,
                     2, lanes);
  };
  const auto gx = [&](int i, int dj) {
    return V::gather(xb + static_cast<long>(i) * n + j0 + dj, 2, lanes);
  };
  const auto gb = [&](int i) {
    return V::gather(bb + static_cast<long>(i) * n + j0, 2, lanes);
  };
  // rhs(i) = h²*b + aW*x(i,j−1) + aE*x(i,j+1) + aNW*x(i−1,j−1)
  //        + aNE*x(i−1,j+1) + aSW*x(i+1,j−1) + aSE*x(i+1,j+1) (+ folds),
  // one flat chain like the legacy 9-point y band.
  const auto band_rhs = [&](int i) {
    V r = vh2 * gb(i) + ps(i, 0) * gx(i, -1) + ps(i, 1) * gx(i, +1) +
          ps(i, 4) * gx(i - 1, -1) + ps(i, 5) * gx(i - 1, +1) +
          ps(i, 6) * gx(i + 1, -1) + ps(i, 7) * gx(i + 1, +1);
    if (i == 1) r = r + ps(1, 2) * gx(0, 0);
    if (i == n - 2) r = r + ps(n - 2, 3) * gx(n - 1, 0);
    return r;
  };
  {
    const V inv = one / (ps(1, 8) + vch2);
    (-ps(1, 3) * inv).store(cp + 1 * W);
    (band_rhs(1) * inv).store(dp + 1 * W);
  }
  for (int k = 2; k <= n - 2; ++k) {
    const V sub = -ps(k, 2);
    const V pivot = (ps(k, 8) + vch2) - sub * V::load(cp + (k - 1) * W);
    const V inv = one / pivot;
    (-ps(k, 3) * inv).store(cp + k * W);
    ((band_rhs(k) - sub * V::load(dp + (k - 1) * W)) * inv).store(dp + k * W);
  }
  V next = V::load(dp + (n - 2) * W);
  next.scatter(xb + static_cast<long>(n - 2) * n + j0, 2, lanes);
  for (int k = n - 3; k >= 1; --k) {
    next = V::load(dp + k * W) - V::load(cp + k * W) * next;
    next.store(dp + k * W);
    next.scatter(xb + static_cast<long>(k) * n + j0, 2, lanes);
  }
}

// ---------------------------------------------------------------------------
// Multi-RHS Thomas split (see packed_rows.h)
// ---------------------------------------------------------------------------

// The factor kernels run the x_lines*/y_lines* coefficient subexpressions
// verbatim — same gathers, same negations, same association — so the cp
// and inv values a batch reuses carry the exact bits the solo solve
// computes inline.  sub[1·W..] is never stored (the k = 1 row has no
// sub-diagonal) and never loaded by the apply kernels.

template <int W>
void x_factor5(const View5& s, long pstride, int lanes, double* cp,
               double* sub, double* inv, double ch2, int n) {
  using V = simd::Vec<W>;
  const V one = V::broadcast(1.0);
  const V vch2 = V::broadcast(ch2);
  const auto sv = [&](const double* p, int j) {
    return V::gather(p + j, pstride, lanes);
  };
  {
    const V iv = one / (sv(s.diag, 1) + vch2);
    iv.store(inv + 1 * W);
    (-sv(s.ae, 1) * iv).store(cp + 1 * W);
  }
  for (int k = 2; k <= n - 2; ++k) {
    const V sb = -sv(s.aw, k);
    const V pivot = (sv(s.diag, k) + vch2) - sb * V::load(cp + (k - 1) * W);
    const V iv = one / pivot;
    sb.store(sub + k * W);
    iv.store(inv + k * W);
    (-sv(s.ae, k) * iv).store(cp + k * W);
  }
}

template <int W>
void x_factor9(const View9& s, long pstride, int lanes, double* cp,
               double* sub, double* inv, double ch2, int n) {
  using V = simd::Vec<W>;
  const V one = V::broadcast(1.0);
  const V vch2 = V::broadcast(ch2);
  const auto sv = [&](const double* p, int j) {
    return V::gather(p + j, pstride, lanes);
  };
  {
    const V iv = one / (sv(s.ctr, 1) + vch2);
    iv.store(inv + 1 * W);
    (-sv(s.ae, 1) * iv).store(cp + 1 * W);
  }
  for (int k = 2; k <= n - 2; ++k) {
    const V sb = -sv(s.aw, k);
    const V pivot = (sv(s.ctr, k) + vch2) - sb * V::load(cp + (k - 1) * W);
    const V iv = one / pivot;
    sb.store(sub + k * W);
    iv.store(inv + k * W);
    (-sv(s.ae, k) * iv).store(cp + k * W);
  }
}

template <int W>
void x_apply5(const View5& s, long pstride, const double* up, double* mid,
              const double* down, const double* rhs, long gstride, int lanes,
              const double* cp, const double* sub, const double* inv,
              double* dp, double h2, int n) {
  using V = simd::Vec<W>;
  const V vh2 = V::broadcast(h2);
  const auto sv = [&](const double* p, int j) {
    return V::gather(p + j, pstride, lanes);
  };
  const auto gv = [&](const double* p, int j) {
    return V::gather(p + j, gstride, lanes);
  };
  const auto band_rhs = [&](int j) {
    V r = vh2 * gv(rhs, j) + sv(s.an, j) * gv(up, j) +
          sv(s.as, j) * gv(down, j);
    if (j == 1) r = r + sv(s.aw, 1) * gv(mid, 0);
    if (j == n - 2) r = r + sv(s.ae, n - 2) * gv(mid, n - 1);
    return r;
  };
  (band_rhs(1) * V::load(inv + 1 * W)).store(dp + 1 * W);
  for (int k = 2; k <= n - 2; ++k) {
    const V sb = V::load(sub + k * W);
    ((band_rhs(k) - sb * V::load(dp + (k - 1) * W)) * V::load(inv + k * W))
        .store(dp + k * W);
  }
  V next = V::load(dp + (n - 2) * W);
  next.scatter(mid + (n - 2), gstride, lanes);
  for (int k = n - 3; k >= 1; --k) {
    next = V::load(dp + k * W) - V::load(cp + k * W) * next;
    next.store(dp + k * W);
    next.scatter(mid + k, gstride, lanes);
  }
}

template <int W>
void x_apply9(const View9& s, long pstride, const double* up, double* mid,
              const double* down, const double* rhs, long gstride, int lanes,
              const double* cp, const double* sub, const double* inv,
              double* dp, double h2, int n) {
  using V = simd::Vec<W>;
  const V vh2 = V::broadcast(h2);
  const auto sv = [&](const double* p, int j) {
    return V::gather(p + j, pstride, lanes);
  };
  const auto gv = [&](const double* p, int j) {
    return V::gather(p + j, gstride, lanes);
  };
  const auto band_rhs = [&](int j) {
    const V cross = sv(s.an, j) * gv(up, j) + sv(s.as, j) * gv(down, j) +
                    sv(s.nw, j) * gv(up, j - 1) +
                    sv(s.ne, j) * gv(up, j + 1) +
                    sv(s.sw, j) * gv(down, j - 1) +
                    sv(s.se, j) * gv(down, j + 1);
    V r = vh2 * gv(rhs, j) + cross;
    if (j == 1) r = r + sv(s.aw, 1) * gv(mid, 0);
    if (j == n - 2) r = r + sv(s.ae, n - 2) * gv(mid, n - 1);
    return r;
  };
  (band_rhs(1) * V::load(inv + 1 * W)).store(dp + 1 * W);
  for (int k = 2; k <= n - 2; ++k) {
    const V sb = V::load(sub + k * W);
    ((band_rhs(k) - sb * V::load(dp + (k - 1) * W)) * V::load(inv + k * W))
        .store(dp + k * W);
  }
  V next = V::load(dp + (n - 2) * W);
  next.scatter(mid + (n - 2), gstride, lanes);
  for (int k = n - 3; k >= 1; --k) {
    next = V::load(dp + k * W) - V::load(cp + k * W) * next;
    next.store(dp + k * W);
    next.scatter(mid + k, gstride, lanes);
  }
}

template <int W>
void y_factor5(const double* pbase, long prow, long ppad, int j0, int lanes,
               double* cp, double* sub, double* inv, double ch2, int n) {
  using V = simd::Vec<W>;
  const V one = V::broadcast(1.0);
  const V vch2 = V::broadcast(ch2);
  const auto ps = [&](int i, int slot) {
    return V::gather(pbase + static_cast<long>(i - 1) * prow + slot * ppad + j0,
                     2, lanes);
  };
  {
    const V iv = one / (ps(1, 4) + vch2);
    iv.store(inv + 1 * W);
    (-ps(1, 3) * iv).store(cp + 1 * W);
  }
  for (int k = 2; k <= n - 2; ++k) {
    const V sb = -ps(k, 2);
    const V pivot = (ps(k, 4) + vch2) - sb * V::load(cp + (k - 1) * W);
    const V iv = one / pivot;
    sb.store(sub + k * W);
    iv.store(inv + k * W);
    (-ps(k, 3) * iv).store(cp + k * W);
  }
}

template <int W>
void y_factor9(const double* pbase, long prow, long ppad, int j0, int lanes,
               double* cp, double* sub, double* inv, double ch2, int n) {
  using V = simd::Vec<W>;
  const V one = V::broadcast(1.0);
  const V vch2 = V::broadcast(ch2);
  const auto ps = [&](int i, int slot) {
    return V::gather(pbase + static_cast<long>(i - 1) * prow + slot * ppad + j0,
                     2, lanes);
  };
  {
    const V iv = one / (ps(1, 8) + vch2);
    iv.store(inv + 1 * W);
    (-ps(1, 3) * iv).store(cp + 1 * W);
  }
  for (int k = 2; k <= n - 2; ++k) {
    const V sb = -ps(k, 2);
    const V pivot = (ps(k, 8) + vch2) - sb * V::load(cp + (k - 1) * W);
    const V iv = one / pivot;
    sb.store(sub + k * W);
    iv.store(inv + k * W);
    (-ps(k, 3) * iv).store(cp + k * W);
  }
}

template <int W>
void y_apply5(double* xb, const double* bb, const double* pbase, long prow,
              long ppad, int j0, int lanes, const double* cp,
              const double* sub, const double* inv, double* dp, double h2,
              int n) {
  using V = simd::Vec<W>;
  const V vh2 = V::broadcast(h2);
  const auto ps = [&](int i, int slot) {
    return V::gather(pbase + static_cast<long>(i - 1) * prow + slot * ppad + j0,
                     2, lanes);
  };
  const auto gx = [&](int i, int dj) {
    return V::gather(xb + static_cast<long>(i) * n + j0 + dj, 2, lanes);
  };
  const auto gb = [&](int i) {
    return V::gather(bb + static_cast<long>(i) * n + j0, 2, lanes);
  };
  const auto band_rhs = [&](int i) {
    V r = vh2 * gb(i) + ps(i, 0) * gx(i, -1) + ps(i, 1) * gx(i, +1);
    if (i == 1) r = r + ps(1, 2) * gx(0, 0);
    if (i == n - 2) r = r + ps(n - 2, 3) * gx(n - 1, 0);
    return r;
  };
  (band_rhs(1) * V::load(inv + 1 * W)).store(dp + 1 * W);
  for (int k = 2; k <= n - 2; ++k) {
    const V sb = V::load(sub + k * W);
    ((band_rhs(k) - sb * V::load(dp + (k - 1) * W)) * V::load(inv + k * W))
        .store(dp + k * W);
  }
  V next = V::load(dp + (n - 2) * W);
  next.scatter(xb + static_cast<long>(n - 2) * n + j0, 2, lanes);
  for (int k = n - 3; k >= 1; --k) {
    next = V::load(dp + k * W) - V::load(cp + k * W) * next;
    next.store(dp + k * W);
    next.scatter(xb + static_cast<long>(k) * n + j0, 2, lanes);
  }
}

template <int W>
void y_apply9(double* xb, const double* bb, const double* pbase, long prow,
              long ppad, int j0, int lanes, const double* cp,
              const double* sub, const double* inv, double* dp, double h2,
              int n) {
  using V = simd::Vec<W>;
  const V vh2 = V::broadcast(h2);
  const auto ps = [&](int i, int slot) {
    return V::gather(pbase + static_cast<long>(i - 1) * prow + slot * ppad + j0,
                     2, lanes);
  };
  const auto gx = [&](int i, int dj) {
    return V::gather(xb + static_cast<long>(i) * n + j0 + dj, 2, lanes);
  };
  const auto gb = [&](int i) {
    return V::gather(bb + static_cast<long>(i) * n + j0, 2, lanes);
  };
  const auto band_rhs = [&](int i) {
    V r = vh2 * gb(i) + ps(i, 0) * gx(i, -1) + ps(i, 1) * gx(i, +1) +
          ps(i, 4) * gx(i - 1, -1) + ps(i, 5) * gx(i - 1, +1) +
          ps(i, 6) * gx(i + 1, -1) + ps(i, 7) * gx(i + 1, +1);
    if (i == 1) r = r + ps(1, 2) * gx(0, 0);
    if (i == n - 2) r = r + ps(n - 2, 3) * gx(n - 1, 0);
    return r;
  };
  (band_rhs(1) * V::load(inv + 1 * W)).store(dp + 1 * W);
  for (int k = 2; k <= n - 2; ++k) {
    const V sb = V::load(sub + k * W);
    ((band_rhs(k) - sb * V::load(dp + (k - 1) * W)) * V::load(inv + k * W))
        .store(dp + k * W);
  }
  V next = V::load(dp + (n - 2) * W);
  next.scatter(xb + static_cast<long>(n - 2) * n + j0, 2, lanes);
  for (int k = n - 3; k >= 1; --k) {
    next = V::load(dp + k * W) - V::load(cp + k * W) * next;
    next.store(dp + k * W);
    next.scatter(xb + static_cast<long>(k) * n + j0, 2, lanes);
  }
}

}  // namespace pbmg::grid::pk

// One width TU invokes this to emit the only definitions of its W.
#define PBMG_INSTANTIATE_PACKED_KERNELS(W)                                    \
  namespace pbmg::grid::pk {                                                  \
  template void stencil_row5<W>(const View5&, const double*, const double*,   \
                                const double*, const double*, double*,        \
                                double, double, int);                         \
  template void stencil_row9<W>(const View9&, const double*, const double*,   \
                                const double*, const double*, double*,        \
                                double, double, int);                         \
  template void sor_row5<W>(const View5&, const double*, double*,             \
                            const double*, const double*, double, double,     \
                            double, double, int, int);                        \
  template void sor_row9<W>(const View9&, const double*, double*,             \
                            const double*, const double*, double, double,     \
                            double, double, int, int);                        \
  template void jacobi_row5<W>(const View5&, const double*, const double*,    \
                               const double*, const double*, double*, double, \
                               double, double, double, int);                  \
  template void jacobi_row9<W>(const View9&, const double*, const double*,    \
                               const double*, const double*, double*, double, \
                               double, double, double, int);                  \
  template void x_lines5<W>(const View5&, long, const double*, double*,       \
                            const double*, const double*, long, int, double*, \
                            double*, double, double, int);                    \
  template void x_lines9<W>(const View9&, long, const double*, double*,       \
                            const double*, const double*, long, int, double*, \
                            double*, double, double, int);                    \
  template void y_lines5<W>(double*, const double*, const double*, long,      \
                            long, int, int, double*, double*, double, double, \
                            int);                                             \
  template void y_lines9<W>(double*, const double*, const double*, long,      \
                            long, int, int, double*, double*, double, double, \
                            int);                                             \
  template void x_factor5<W>(const View5&, long, int, double*, double*,       \
                             double*, double, int);                           \
  template void x_factor9<W>(const View9&, long, int, double*, double*,       \
                             double*, double, int);                           \
  template void x_apply5<W>(const View5&, long, const double*, double*,       \
                            const double*, const double*, long, int,          \
                            const double*, const double*, const double*,      \
                            double*, double, int);                            \
  template void x_apply9<W>(const View9&, long, const double*, double*,       \
                            const double*, const double*, long, int,          \
                            const double*, const double*, const double*,      \
                            double*, double, int);                            \
  template void y_factor5<W>(const double*, long, long, int, int, double*,    \
                             double*, double*, double, int);                  \
  template void y_factor9<W>(const double*, long, long, int, int, double*,    \
                             double*, double*, double, int);                  \
  template void y_apply5<W>(double*, const double*, const double*, long,      \
                            long, int, int, const double*, const double*,     \
                            const double*, double*, double, int);             \
  template void y_apply9<W>(double*, const double*, const double*, long,      \
                            long, int, int, const double*, const double*,     \
                            const double*, double*, double, int);             \
  }
