#pragma once

/// \file simd.h
/// Minimal portable SIMD vector over W doubles (W = 1, 2, 4) for the
/// packed stencil kernels.
///
/// Only lane-wise +, −, ×, ÷ and a sign-flip negation are provided — all
/// of them correctly rounded per IEEE-754, so a W-lane operation is
/// bitwise identical to W scalar operations on the same inputs.  That is
/// the whole parity story: as long as the *order* of operations per lane
/// matches the scalar kernel (and FMA contraction is disabled — the build
/// compiles with -ffp-contract=off, and this wrapper never emits fused
/// ops), every vector width produces the same bits as the scalar
/// fallback, preserving the deterministic-under-thread-count guarantee.
///
/// Specializations: SSE2 / NEON for W = 2, AVX2 for W = 4 (only where the
/// including translation unit is compiled with AVX2 — see
/// packed_kernels_w4.cpp); everything else falls back to a plain lane
/// array, which the compiler may auto-vectorize freely (lane-wise ops
/// stay correctly rounded either way).
///
/// This header is included by per-width translation units, one of which
/// is built with -mavx2.  To keep ISA-specific code from leaking into
/// functions shared across TUs (an ODR hazard), it includes nothing from
/// the rest of the project and defines only the Vec template, whose
/// instantiations are distinct types per W.

#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64)
#include <immintrin.h>
#define PBMG_SIMD_SSE2 1
#elif defined(__aarch64__)
#include <arm_neon.h>
#define PBMG_SIMD_NEON 1
#endif

namespace pbmg::grid::simd {

/// Generic lane-array fallback (and the W = 1 scalar case).  gather()
/// reads lane l at p[min(l, lanes−1)·stride]: inactive tail lanes
/// duplicate the last active lane so reads stay in bounds (their results
/// are discarded by scatter()).  scatter() writes only the first `lanes`
/// lanes, one scalar store each — concurrently relaxed columns between
/// them are never touched, which keeps the stride-2 SOR stores race-free.
template <int W>
struct Vec {
  double v[W];

  static Vec load(const double* p) {
    Vec r;
    for (int l = 0; l < W; ++l) r.v[l] = p[l];
    return r;
  }
  static Vec broadcast(double x) {
    Vec r;
    for (int l = 0; l < W; ++l) r.v[l] = x;
    return r;
  }
  static Vec gather(const double* p, long stride, int lanes) {
    Vec r;
    for (int l = 0; l < W; ++l) {
      r.v[l] = p[(l < lanes ? l : lanes - 1) * stride];
    }
    return r;
  }
  void store(double* p) const {
    for (int l = 0; l < W; ++l) p[l] = v[l];
  }
  void scatter(double* p, long stride, int lanes) const {
    for (int l = 0; l < lanes; ++l) p[l * stride] = v[l];
  }
  friend Vec operator+(Vec a, Vec b) {
    Vec r;
    for (int l = 0; l < W; ++l) r.v[l] = a.v[l] + b.v[l];
    return r;
  }
  friend Vec operator-(Vec a, Vec b) {
    Vec r;
    for (int l = 0; l < W; ++l) r.v[l] = a.v[l] - b.v[l];
    return r;
  }
  friend Vec operator*(Vec a, Vec b) {
    Vec r;
    for (int l = 0; l < W; ++l) r.v[l] = a.v[l] * b.v[l];
    return r;
  }
  friend Vec operator/(Vec a, Vec b) {
    Vec r;
    for (int l = 0; l < W; ++l) r.v[l] = a.v[l] / b.v[l];
    return r;
  }
  Vec operator-() const {
    Vec r;
    for (int l = 0; l < W; ++l) r.v[l] = -v[l];
    return r;
  }
};

#if defined(PBMG_SIMD_SSE2)

template <>
struct Vec<2> {
  __m128d v;

  static Vec load(const double* p) { return {_mm_loadu_pd(p)}; }
  static Vec broadcast(double x) { return {_mm_set1_pd(x)}; }
  static Vec gather(const double* p, long stride, int lanes) {
    return {_mm_set_pd(p[(1 < lanes ? 1 : lanes - 1) * stride], p[0])};
  }
  void store(double* p) const { _mm_storeu_pd(p, v); }
  void scatter(double* p, long stride, int lanes) const {
    double tmp[2];
    _mm_storeu_pd(tmp, v);
    for (int l = 0; l < lanes; ++l) p[l * stride] = tmp[l];
  }
  friend Vec operator+(Vec a, Vec b) { return {_mm_add_pd(a.v, b.v)}; }
  friend Vec operator-(Vec a, Vec b) { return {_mm_sub_pd(a.v, b.v)}; }
  friend Vec operator*(Vec a, Vec b) { return {_mm_mul_pd(a.v, b.v)}; }
  friend Vec operator/(Vec a, Vec b) { return {_mm_div_pd(a.v, b.v)}; }
  Vec operator-() const {
    // Sign-bit flip: exactly IEEE negation, matching scalar -x (0 − x
    // would differ on signed zeros).
    return {_mm_xor_pd(v, _mm_set1_pd(-0.0))};
  }
};

#if defined(__AVX2__)

template <>
struct Vec<4> {
  __m256d v;

  static Vec load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static Vec broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static Vec gather(const double* p, long stride, int lanes) {
    // Scalar composes beat microcoded hardware gathers at these strides.
    const double a = p[0];
    const double b = p[(1 < lanes ? 1 : lanes - 1) * stride];
    const double c = p[(2 < lanes ? 2 : lanes - 1) * stride];
    const double d = p[(3 < lanes ? 3 : lanes - 1) * stride];
    return {_mm256_set_pd(d, c, b, a)};
  }
  void store(double* p) const { _mm256_storeu_pd(p, v); }
  void scatter(double* p, long stride, int lanes) const {
    double tmp[4];
    _mm256_storeu_pd(tmp, v);
    for (int l = 0; l < lanes; ++l) p[l * stride] = tmp[l];
  }
  friend Vec operator+(Vec a, Vec b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend Vec operator-(Vec a, Vec b) { return {_mm256_sub_pd(a.v, b.v)}; }
  friend Vec operator*(Vec a, Vec b) { return {_mm256_mul_pd(a.v, b.v)}; }
  friend Vec operator/(Vec a, Vec b) { return {_mm256_div_pd(a.v, b.v)}; }
  Vec operator-() const {
    return {_mm256_xor_pd(v, _mm256_set1_pd(-0.0))};
  }
};

#endif  // __AVX2__

#elif defined(PBMG_SIMD_NEON)

template <>
struct Vec<2> {
  float64x2_t v;

  static Vec load(const double* p) { return {vld1q_f64(p)}; }
  static Vec broadcast(double x) { return {vdupq_n_f64(x)}; }
  static Vec gather(const double* p, long stride, int lanes) {
    const double tmp[2] = {p[0], p[(1 < lanes ? 1 : lanes - 1) * stride]};
    return {vld1q_f64(tmp)};
  }
  void store(double* p) const { vst1q_f64(p, v); }
  void scatter(double* p, long stride, int lanes) const {
    double tmp[2];
    vst1q_f64(tmp, v);
    for (int l = 0; l < lanes; ++l) p[l * stride] = tmp[l];
  }
  friend Vec operator+(Vec a, Vec b) { return {vaddq_f64(a.v, b.v)}; }
  friend Vec operator-(Vec a, Vec b) { return {vsubq_f64(a.v, b.v)}; }
  friend Vec operator*(Vec a, Vec b) { return {vmulq_f64(a.v, b.v)}; }
  friend Vec operator/(Vec a, Vec b) { return {vdivq_f64(a.v, b.v)}; }
  Vec operator-() const { return {vnegq_f64(v)}; }
};

#endif  // PBMG_SIMD_SSE2 / PBMG_SIMD_NEON

}  // namespace pbmg::grid::simd
