#pragma once

#include <span>

#include "grid/grid2d.h"
#include "grid/scratch.h"
#include "grid/stencil_op.h"
#include "runtime/scheduler.h"

/// \file packed_kernels.h
/// Packed-layout sweep kernels: the StencilLayout::kPacked implementations
/// of apply/residual, coloured SOR, weighted Jacobi, and the zebra
/// batched-Thomas line solves, vectorized with the simd.h wrapper.
///
/// The public entry points in grid_ops.h / solvers::relax.h /
/// solvers::line_relax.h dispatch here when a KernelPolicy selects the
/// packed layout; callers rarely use these directly.  All of them:
///  - require a non-Poisson operator (the fast path keeps its dedicated
///    constant-coefficient kernels under either layout);
///  - read coefficients from op.packed(), packing lazily on first touch
///    (prewarm via StencilHierarchy::prewarm_packed to keep it off timed
///    sweeps);
///  - are bitwise identical to the legacy kernels for every simd_width
///    and thread count (see packed_kernels_body.h for the contract);
///  - clamp simd_width to what the running CPU supports, which is
///    result-invariant for the same reason.
///
/// Vectorization shapes: residual/apply/Jacobi vectorize unit-stride
/// along the row; coloured SOR vectorizes across same-colour points
/// (stride-2 gathers, per-lane scalar stores); the line solves vectorize
/// across independent same-parity lines (lane l = line i0 + 2l), which
/// turns the serial Thomas recurrences into W independent chains.

namespace pbmg::grid {

/// Widest SIMD lane count worth requesting on this machine: 4 when the
/// CPU runs AVX2 (or is aarch64, where the 4-lane kernels compile to NEON
/// pairs), 2 for baseline x86-64 SSE2, 1 elsewhere.
int packed_simd_width_supported();

/// Halves `width` (a valid KernelPolicy width in {1, 2, 4}) until the
/// running CPU supports it.  Clamping never changes results — every width
/// is bitwise identical — so tuned tables stay portable across machines.
int clamp_simd_width(int width);

/// out = A·x under the packed layout.  Pre/post-conditions match
/// apply_op; requires !op.is_poisson().
void packed_apply(const StencilOp& op, const Grid2D& x, Grid2D& out,
                  rt::Scheduler& sched, int simd_width);

/// r = b − A·x under the packed layout.  Matches residual_op.
void packed_residual(const StencilOp& op, const Grid2D& x, const Grid2D& b,
                     Grid2D& r, rt::Scheduler& sched, int simd_width);

/// Batched rs[k] = bs[k] − A·xs[k] under the packed layout: each packed
/// coefficient row block is loaded once and swept across all K
/// right-hand-sides before the next row (coefficient bandwidth amortized
/// K-fold).  Each k runs the exact solo pk:: row kernel, so every slot is
/// bitwise identical to K packed_residual calls.  Requires equal span
/// sizes; see residual_op_multi for the caller-facing dispatch.
void packed_residual_multi(const StencilOp& op,
                           std::span<const Grid2D* const> xs,
                           std::span<const Grid2D* const> bs,
                           std::span<Grid2D* const> rs, rt::Scheduler& sched,
                           int simd_width);

/// One coloured SOR sweep under the packed layout (red-black for 5-point
/// operators, four-colour for 9-point).  Matches solvers::sor_sweep's
/// operator overload.
void packed_sor_sweep(const StencilOp& op, Grid2D& x, const Grid2D& b,
                      double omega, rt::Scheduler& sched, int simd_width);

/// Batched coloured SOR: one sweep of each xs[k] against bs[k], the K
/// sweeps fused per colour × row so coefficient blocks are reused across
/// right-hand-sides.  Bitwise identical per slot to K packed_sor_sweep
/// calls (per-k update order is untouched; the RHS never couple).
void packed_sor_sweep_multi(const StencilOp& op, std::span<Grid2D* const> xs,
                            std::span<const Grid2D* const> bs, double omega,
                            rt::Scheduler& sched, int simd_width);

/// One weighted-Jacobi sweep under the packed layout; `scratch` holds the
/// old iterate on return (contents swapped), like solvers::jacobi_sweep.
void packed_jacobi_sweep(const StencilOp& op, Grid2D& x, const Grid2D& b,
                         double omega, Grid2D& scratch, rt::Scheduler& sched,
                         int simd_width);

/// One x-line (row) zebra pass under the packed layout: odd rows then
/// even rows, each group of `simd_width` same-parity rows solved as one
/// batched Thomas elimination.  Matches line_x of
/// solvers::line_relax_sweep.
void packed_line_x(const StencilOp& op, Grid2D& x, const Grid2D& b,
                   rt::Scheduler& sched, ScratchPool& pool, int simd_width);

/// One y-line (column) zebra pass under the packed layout.
void packed_line_y(const StencilOp& op, Grid2D& x, const Grid2D& b,
                   rt::Scheduler& sched, ScratchPool& pool, int simd_width);

/// Batched x-line zebra pass: the Thomas forward-elimination pivots
/// depend only on the operator, so each line group is factored once
/// (pivot reciprocals + super-diagonal, including every divide) and the
/// rhs recurrence replays per iterate against the cached factors — K
/// right-hand sides per coefficient-stream load AND per pivot divide.
/// Bitwise identical per slot to K packed_line_x calls: the apply pass
/// multiplies by the exact inv values the solo elimination computes.
void packed_line_x_multi(const StencilOp& op, std::span<Grid2D* const> xs,
                         std::span<const Grid2D* const> bs,
                         rt::Scheduler& sched, ScratchPool& pool,
                         int simd_width);

/// Batched y-line zebra pass; same factor-once/apply-per-RHS contract.
void packed_line_y_multi(const StencilOp& op, std::span<Grid2D* const> xs,
                         std::span<const Grid2D* const> bs,
                         rt::Scheduler& sched, ScratchPool& pool,
                         int simd_width);

}  // namespace pbmg::grid
