// 2-lane instantiation of the packed row kernels: SSE2 on x86-64
// (baseline, no extra flags) or NEON on aarch64; generic lane array
// elsewhere.
#include "grid/packed_kernels_body.h"

PBMG_INSTANTIATE_PACKED_KERNELS(2)
