#pragma once

#include <vector>

#include "grid/problem.h"
#include "grid/stencil_op.h"

/// \file fingerprint.h
/// Operator fingerprinting: the request-time half of dynamic tuning.
///
/// A tuned table is only optimal for the operator family it was trained on
/// (bench/fig18 measures the 1.3–2.4× retuning payoff), so a service that
/// accepts arbitrary user-supplied coefficients must decide, per request,
/// which trained family an incoming StencilOp most resembles.  The
/// fingerprint condenses the coefficient structure the autotuner's choices
/// actually respond to into five scale-invariant features:
///
///   anisotropy        signed log10 of mean x-coupling over mean
///                     y-coupling — the global strength ratio, with sign
///                     naming the strong axis (positive = x).
///   local_anisotropy  mean |log10(ex/ey)| per node.  Distinguishes
///                     direction-*varying* anisotropy (aniso-rot: strong
///                     axis flips at x = ½, global ratio ≈ 1 but every
///                     node is 1000:1) from genuinely isotropic operators.
///   heterogeneity     log10 of max/min per-node coupling magnitude — the
///                     coefficient-jump contrast (2.0 for the 100× jump
///                     family, ≈ 0 for smooth operators).
///   rotation          normalized signed difference of the two diagonal
///                     coupling sums.  The mixed term −2·a12·u_xy puts
///                     +a12/2 on one diagonal and −a12/2 on the other, so
///                     only a genuine cross term moves this; Galerkin RAP
///                     coarse Poisson operators (equal positive corners)
///                     correctly read 0.
///   reaction          c·h² / (c·h² + mean centre coupling) ∈ [0, 1) —
///                     the reaction term's share of the diagonal.
///
/// Every feature is a ratio or a normalized difference, so scaling the
/// whole operator (coefficients and c together) leaves the fingerprint
/// bitwise-stable — the distance metric compares operator *shape*, not
/// magnitude.  Computation is one O(n²) pass over the couplings; routing
/// layers cache it per operator identity (StencilOp::identity), so it
/// never lands on a hot solve path.

namespace pbmg::grid {

/// Scale-invariant structural summary of a StencilOp (see file comment).
struct OperatorFingerprint {
  double anisotropy = 0.0;        ///< signed log10(mean ex / mean ey)
  double local_anisotropy = 0.0;  ///< mean |log10(ex/ey)| per node
  double heterogeneity = 0.0;     ///< log10(max/min node coupling magnitude)
  double rotation = 0.0;          ///< normalized diagonal-sum asymmetry
  double reaction = 0.0;          ///< reaction share of the diagonal
};

/// Computes the fingerprint in one pass over the interior couplings.
/// Requires n >= 3 (at least one interior node).  The Poisson fast path
/// returns the all-zero fingerprint without sweeping.
OperatorFingerprint fingerprint(const StencilOp& op);

/// Weighted Euclidean distance between two fingerprints.  Rotation is
/// weighted 4× and reaction 2× so their small numeric ranges (±0.5 and
/// [0,1)) carry the same routing authority as the log-scaled features
/// (ranges of several decades).  Symmetric, zero iff equal.
double fingerprint_distance(const OperatorFingerprint& a,
                            const OperatorFingerprint& b);

/// One candidate routing target: a canonical family and how far the query
/// fingerprint sits from that family's reference fingerprint.
struct FamilyMatch {
  OperatorFamily family = OperatorFamily::kPoisson;
  double distance = 0.0;
};

/// All canonical operator families ordered by ascending distance to `fp`
/// (ties broken by declaration order, so ranking is deterministic).  The
/// reference fingerprints are computed once per process from
/// make_operator at a fixed side (the features are means and ratios, so
/// they are stable across grid sizes — routing_test pins self-matching
/// from n = 17 up).
std::vector<FamilyMatch> rank_families(const OperatorFingerprint& fp);

/// rank_families(fp).front(): the nearest canonical family.
FamilyMatch nearest_family(const OperatorFingerprint& fp);

}  // namespace pbmg::grid
