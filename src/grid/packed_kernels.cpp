#include "grid/packed_kernels.h"

#include <algorithm>

#include "grid/level.h"
#include "grid/packed_rows.h"
#include "grid/packed_stencil.h"

// This TU is compiled with baseline flags only — all ISA-specific code
// lives behind the explicit template instantiations in the per-width TUs
// (packed_kernels_w*.cpp), which this file reaches through the
// declarations in packed_rows.h.  Keep it that way: adding -mavx2 here
// would let the compiler leak AVX2 into code that runs on any CPU.

namespace pbmg::grid {

namespace {

void zero_boundary(Grid2D& g) {
  const int n = g.n();
  for (int j = 0; j < n; ++j) {
    g(0, j) = 0.0;
    g(n - 1, j) = 0.0;
  }
  for (int i = 0; i < n; ++i) {
    g(i, 0) = 0.0;
    g(i, n - 1) = 0.0;
  }
}

pk::View5 view5(const PackedStencil& p, int i) {
  return {p.stream(i, PackedStencil::kAw), p.stream(i, PackedStencil::kAe),
          p.stream(i, PackedStencil::kAn), p.stream(i, PackedStencil::kAs),
          p.stream(i, PackedStencil::kDiag5)};
}

pk::View9 view9(const PackedStencil& p, int i) {
  return {p.stream(i, PackedStencil::kAw), p.stream(i, PackedStencil::kAe),
          p.stream(i, PackedStencil::kAn), p.stream(i, PackedStencil::kAs),
          p.stream(i, PackedStencil::kNw), p.stream(i, PackedStencil::kNe),
          p.stream(i, PackedStencil::kSw), p.stream(i, PackedStencil::kSe),
          p.stream(i, PackedStencil::kCtr)};
}

/// Line-group geometry for one zebra parity: lines first, first+2, …,
/// n−2 split into ceil(count / w) groups of up to w lanes.
struct LineGroups {
  int first = 0;
  int count = 0;
  int groups = 0;
};

LineGroups line_groups(int n, int parity, int w) {
  LineGroups g;
  g.first = parity == 1 ? 1 : 2;
  g.count = g.first <= n - 2 ? (n - 2 - g.first) / 2 + 1 : 0;
  g.groups = (g.count + w - 1) / w;
  return g;
}

/// The Thomas workspaces lease one n×n grid each and hand group g the w
/// consecutive rows starting at row g·w (cp/dp entry [k·W + lane]).  The
/// highest row touched is groups·w − 1 <= count + w − 2 <= (n−1)/2 + w − 2,
/// which fits inside the n rows for w = 4 whenever n >= 5 and for w = 2
/// even at n = 3, so the line sweeps clamp w to 2 on the 3×3 coarsest
/// grid.
int clamp_line_width(int w, int n) {
  return n < 5 ? std::min(w, 2) : w;
}

}  // namespace

int packed_simd_width_supported() {
#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2") ? 4 : 2;
#elif defined(__aarch64__)
  // The 4-lane kernels compile to plain NEON register pairs (baseline on
  // aarch64), so the widest request is always safe here.
  return 4;
#else
  return 1;
#endif
}

int clamp_simd_width(int width) {
  PBMG_CHECK(width == 1 || width == 2 || width == 4,
             "clamp_simd_width: width must be 1, 2 or 4");
  const int supported = packed_simd_width_supported();
  int w = width;
  while (w > supported) w /= 2;
  return w < 1 ? 1 : w;
}

namespace {

void check_packed_operands(const StencilOp& op, const Grid2D& x,
                           const char* what) {
  PBMG_CHECK(!op.is_poisson(),
             std::string(what) + ": Poisson fast path has no packed form");
  PBMG_CHECK(is_valid_grid_size(x.n()),
             std::string(what) + ": grid size must be 2^k+1");
  PBMG_CHECK(op.n() == x.n(),
             std::string(what) + ": operator/grid size mismatch");
}

void packed_stencil_sweep(const StencilOp& op, const Grid2D& x,
                          const Grid2D* b, Grid2D& out, rt::Scheduler& sched,
                          int simd_width) {
  const PackedStencil& p = op.packed();
  const int n = x.n();
  const double inv_h2 = static_cast<double>(n - 1) * static_cast<double>(n - 1);
  const double c = op.c();
  const int w = clamp_simd_width(simd_width);
  const bool nine = p.nine_point();
  sched.parallel_for(
      1, n - 1, sched.grain_for(n - 2, n - 2),
      [&](std::int64_t ib, std::int64_t ie) {
        for (int i = static_cast<int>(ib); i < static_cast<int>(ie); ++i) {
          const double* up = x.row(i - 1);
          const double* mid = x.row(i);
          const double* down = x.row(i + 1);
          const double* rhs = b != nullptr ? b->row(i) : nullptr;
          double* o = out.row(i);
          if (nine) {
            const pk::View9 v = view9(p, i);
            switch (w) {
              case 4: pk::stencil_row9<4>(v, up, mid, down, rhs, o, inv_h2,
                                          c, n); break;
              case 2: pk::stencil_row9<2>(v, up, mid, down, rhs, o, inv_h2,
                                          c, n); break;
              default: pk::stencil_row9<1>(v, up, mid, down, rhs, o, inv_h2,
                                           c, n); break;
            }
          } else {
            const pk::View5 v = view5(p, i);
            switch (w) {
              case 4: pk::stencil_row5<4>(v, up, mid, down, rhs, o, inv_h2,
                                          c, n); break;
              case 2: pk::stencil_row5<2>(v, up, mid, down, rhs, o, inv_h2,
                                          c, n); break;
              default: pk::stencil_row5<1>(v, up, mid, down, rhs, o, inv_h2,
                                           c, n); break;
            }
          }
        }
      });
  zero_boundary(out);
}

}  // namespace

void packed_apply(const StencilOp& op, const Grid2D& x, Grid2D& out,
                  rt::Scheduler& sched, int simd_width) {
  check_packed_operands(op, x, "packed_apply");
  PBMG_CHECK(x.n() == out.n(), "packed_apply: grid size mismatch");
  packed_stencil_sweep(op, x, nullptr, out, sched, simd_width);
}

void packed_residual(const StencilOp& op, const Grid2D& x, const Grid2D& b,
                     Grid2D& r, rt::Scheduler& sched, int simd_width) {
  check_packed_operands(op, x, "packed_residual");
  PBMG_CHECK(x.n() == b.n() && x.n() == r.n(),
             "packed_residual: grid size mismatch");
  packed_stencil_sweep(op, x, &b, r, sched, simd_width);
}

void packed_residual_multi(const StencilOp& op,
                           std::span<const Grid2D* const> xs,
                           std::span<const Grid2D* const> bs,
                           std::span<Grid2D* const> rs, rt::Scheduler& sched,
                           int simd_width) {
  PBMG_CHECK(xs.size() == bs.size() && xs.size() == rs.size(),
             "packed_residual_multi: span size mismatch");
  if (xs.empty()) return;
  check_packed_operands(op, *xs[0], "packed_residual_multi");
  for (std::size_t k = 0; k < xs.size(); ++k) {
    PBMG_CHECK(xs[k]->n() == op.n() && bs[k]->n() == op.n() &&
                   rs[k]->n() == op.n(),
               "packed_residual_multi: grid size mismatch");
  }
  const PackedStencil& p = op.packed();
  const int n = op.n();
  const double inv_h2 = static_cast<double>(n - 1) * static_cast<double>(n - 1);
  const double c = op.c();
  const int w = clamp_simd_width(simd_width);
  const bool nine = p.nine_point();
  sched.parallel_for(
      1, n - 1, sched.grain_for(n - 2, n - 2),
      [&](std::int64_t ib, std::int64_t ie) {
        for (int i = static_cast<int>(ib); i < static_cast<int>(ie); ++i) {
          // View built once per row; the K inner sweeps stream the same
          // coefficient block while it is hot.
          if (nine) {
            const pk::View9 v = view9(p, i);
            for (std::size_t k = 0; k < xs.size(); ++k) {
              const double* up = xs[k]->row(i - 1);
              const double* mid = xs[k]->row(i);
              const double* down = xs[k]->row(i + 1);
              const double* rhs = bs[k]->row(i);
              double* o = rs[k]->row(i);
              switch (w) {
                case 4: pk::stencil_row9<4>(v, up, mid, down, rhs, o, inv_h2,
                                            c, n); break;
                case 2: pk::stencil_row9<2>(v, up, mid, down, rhs, o, inv_h2,
                                            c, n); break;
                default: pk::stencil_row9<1>(v, up, mid, down, rhs, o,
                                             inv_h2, c, n); break;
              }
            }
          } else {
            const pk::View5 v = view5(p, i);
            for (std::size_t k = 0; k < xs.size(); ++k) {
              const double* up = xs[k]->row(i - 1);
              const double* mid = xs[k]->row(i);
              const double* down = xs[k]->row(i + 1);
              const double* rhs = bs[k]->row(i);
              double* o = rs[k]->row(i);
              switch (w) {
                case 4: pk::stencil_row5<4>(v, up, mid, down, rhs, o, inv_h2,
                                            c, n); break;
                case 2: pk::stencil_row5<2>(v, up, mid, down, rhs, o, inv_h2,
                                            c, n); break;
                default: pk::stencil_row5<1>(v, up, mid, down, rhs, o,
                                             inv_h2, c, n); break;
              }
            }
          }
        }
      });
  for (Grid2D* r : rs) zero_boundary(*r);
}

void packed_sor_sweep(const StencilOp& op, Grid2D& x, const Grid2D& b,
                      double omega, rt::Scheduler& sched, int simd_width) {
  check_packed_operands(op, x, "packed_sor_sweep");
  PBMG_CHECK(x.n() == b.n(), "packed_sor_sweep: grid size mismatch");
  const PackedStencil& p = op.packed();
  const int n = x.n();
  const double h2 = mesh_width(n) * mesh_width(n);
  const double ch2 = op.c() * h2;
  const double keep = 1.0 - omega;
  const int w = clamp_simd_width(simd_width);
  if (p.nine_point()) {
    // Four colours, like the legacy 9-point sweep: corner neighbours of a
    // (i mod 2, j mod 2) class are all in other classes, so same-colour
    // points are independent and safe to vectorize across.
    for (int color = 0; color < 4; ++color) {
      const int pi = color >> 1;
      const int pj = color & 1;
      sched.parallel_for(
          1, n - 1, sched.grain_for(n - 2, n - 2),
          [&, pi, pj](std::int64_t ib, std::int64_t ie) {
            for (int i = static_cast<int>(ib); i < static_cast<int>(ie);
                 ++i) {
              if ((i & 1) != pi) continue;
              const pk::View9 v = view9(p, i);
              const double* up = x.row(i - 1);
              double* mid = x.row(i);
              const double* down = x.row(i + 1);
              const double* rhs = b.row(i);
              const int j0 = 1 + ((1 + pj) & 1);
              switch (w) {
                case 4: pk::sor_row9<4>(v, up, mid, down, rhs, h2, ch2,
                                        omega, keep, j0, n); break;
                case 2: pk::sor_row9<2>(v, up, mid, down, rhs, h2, ch2,
                                        omega, keep, j0, n); break;
                default: pk::sor_row9<1>(v, up, mid, down, rhs, h2, ch2,
                                         omega, keep, j0, n); break;
              }
            }
          });
    }
    return;
  }
  for (int parity = 0; parity <= 1; ++parity) {
    sched.parallel_for(
        1, n - 1, sched.grain_for(n - 2, n - 2),
        [&, parity](std::int64_t ib, std::int64_t ie) {
          for (int i = static_cast<int>(ib); i < static_cast<int>(ie); ++i) {
            const pk::View5 v = view5(p, i);
            const double* up = x.row(i - 1);
            double* mid = x.row(i);
            const double* down = x.row(i + 1);
            const double* rhs = b.row(i);
            const int j0 = 1 + ((i + 1 + parity) & 1);
            switch (w) {
              case 4: pk::sor_row5<4>(v, up, mid, down, rhs, h2, ch2, omega,
                                      keep, j0, n); break;
              case 2: pk::sor_row5<2>(v, up, mid, down, rhs, h2, ch2, omega,
                                      keep, j0, n); break;
              default: pk::sor_row5<1>(v, up, mid, down, rhs, h2, ch2,
                                       omega, keep, j0, n); break;
            }
          }
        });
  }
}

void packed_sor_sweep_multi(const StencilOp& op, std::span<Grid2D* const> xs,
                            std::span<const Grid2D* const> bs, double omega,
                            rt::Scheduler& sched, int simd_width) {
  PBMG_CHECK(xs.size() == bs.size(),
             "packed_sor_sweep_multi: span size mismatch");
  if (xs.empty()) return;
  check_packed_operands(op, *xs[0], "packed_sor_sweep_multi");
  for (std::size_t k = 0; k < xs.size(); ++k) {
    PBMG_CHECK(xs[k]->n() == op.n() && bs[k]->n() == op.n(),
               "packed_sor_sweep_multi: grid size mismatch");
  }
  const PackedStencil& p = op.packed();
  const int n = op.n();
  const double h2 = mesh_width(n) * mesh_width(n);
  const double ch2 = op.c() * h2;
  const double keep = 1.0 - omega;
  const int w = clamp_simd_width(simd_width);
  if (p.nine_point()) {
    for (int color = 0; color < 4; ++color) {
      const int pi = color >> 1;
      const int pj = color & 1;
      sched.parallel_for(
          1, n - 1, sched.grain_for(n - 2, n - 2),
          [&, pi, pj](std::int64_t ib, std::int64_t ie) {
            for (int i = static_cast<int>(ib); i < static_cast<int>(ie);
                 ++i) {
              if ((i & 1) != pi) continue;
              const pk::View9 v = view9(p, i);
              const int j0 = 1 + ((1 + pj) & 1);
              for (std::size_t k = 0; k < xs.size(); ++k) {
                const double* up = xs[k]->row(i - 1);
                double* mid = xs[k]->row(i);
                const double* down = xs[k]->row(i + 1);
                const double* rhs = bs[k]->row(i);
                switch (w) {
                  case 4: pk::sor_row9<4>(v, up, mid, down, rhs, h2, ch2,
                                          omega, keep, j0, n); break;
                  case 2: pk::sor_row9<2>(v, up, mid, down, rhs, h2, ch2,
                                          omega, keep, j0, n); break;
                  default: pk::sor_row9<1>(v, up, mid, down, rhs, h2, ch2,
                                           omega, keep, j0, n); break;
                }
              }
            }
          });
    }
    return;
  }
  for (int parity = 0; parity <= 1; ++parity) {
    sched.parallel_for(
        1, n - 1, sched.grain_for(n - 2, n - 2),
        [&, parity](std::int64_t ib, std::int64_t ie) {
          for (int i = static_cast<int>(ib); i < static_cast<int>(ie); ++i) {
            const pk::View5 v = view5(p, i);
            const int j0 = 1 + ((i + 1 + parity) & 1);
            for (std::size_t k = 0; k < xs.size(); ++k) {
              const double* up = xs[k]->row(i - 1);
              double* mid = xs[k]->row(i);
              const double* down = xs[k]->row(i + 1);
              const double* rhs = bs[k]->row(i);
              switch (w) {
                case 4: pk::sor_row5<4>(v, up, mid, down, rhs, h2, ch2,
                                        omega, keep, j0, n); break;
                case 2: pk::sor_row5<2>(v, up, mid, down, rhs, h2, ch2,
                                        omega, keep, j0, n); break;
                default: pk::sor_row5<1>(v, up, mid, down, rhs, h2, ch2,
                                         omega, keep, j0, n); break;
              }
            }
          }
        });
  }
}

void packed_jacobi_sweep(const StencilOp& op, Grid2D& x, const Grid2D& b,
                         double omega, Grid2D& scratch, rt::Scheduler& sched,
                         int simd_width) {
  check_packed_operands(op, x, "packed_jacobi_sweep");
  PBMG_CHECK(x.n() == b.n() && x.n() == scratch.n(),
             "packed_jacobi_sweep: grid size mismatch");
  const PackedStencil& p = op.packed();
  const int n = x.n();
  const double h2 = mesh_width(n) * mesh_width(n);
  const double ch2 = op.c() * h2;
  const double keep = 1.0 - omega;
  const int w = clamp_simd_width(simd_width);
  const bool nine = p.nine_point();
  sched.parallel_for(
      1, n - 1, sched.grain_for(n - 2, n - 2),
      [&](std::int64_t ib, std::int64_t ie) {
        for (int i = static_cast<int>(ib); i < static_cast<int>(ie); ++i) {
          const double* up = x.row(i - 1);
          const double* mid = x.row(i);
          const double* down = x.row(i + 1);
          const double* rhs = b.row(i);
          double* out = scratch.row(i);
          if (nine) {
            const pk::View9 v = view9(p, i);
            switch (w) {
              case 4: pk::jacobi_row9<4>(v, up, mid, down, rhs, out, h2,
                                         ch2, omega, keep, n); break;
              case 2: pk::jacobi_row9<2>(v, up, mid, down, rhs, out, h2,
                                         ch2, omega, keep, n); break;
              default: pk::jacobi_row9<1>(v, up, mid, down, rhs, out, h2,
                                          ch2, omega, keep, n); break;
            }
          } else {
            const pk::View5 v = view5(p, i);
            switch (w) {
              case 4: pk::jacobi_row5<4>(v, up, mid, down, rhs, out, h2,
                                         ch2, omega, keep, n); break;
              case 2: pk::jacobi_row5<2>(v, up, mid, down, rhs, out, h2,
                                         ch2, omega, keep, n); break;
              default: pk::jacobi_row5<1>(v, up, mid, down, rhs, out, h2,
                                          ch2, omega, keep, n); break;
            }
          }
        }
      });
  scratch.copy_boundary_from(x);
  x.swap(scratch);
}

void packed_line_x(const StencilOp& op, Grid2D& x, const Grid2D& b,
                   rt::Scheduler& sched, ScratchPool& pool, int simd_width) {
  check_packed_operands(op, x, "packed_line_x");
  PBMG_CHECK(x.n() == b.n(), "packed_line_x: grid size mismatch");
  const PackedStencil& p = op.packed();
  const int n = x.n();
  const double h2 = mesh_width(n) * mesh_width(n);
  const double ch2 = op.c() * h2;
  const int w = clamp_line_width(clamp_simd_width(simd_width), n);
  const long pstride = 2 * p.row_stride();  // lane l: streams of row i0+2l
  const long gstride = 2 * static_cast<long>(n);  // lane l: grid row i0+2l
  const bool nine = p.nine_point();
  auto cp_lease = pool.acquire(n);
  auto dp_lease = pool.acquire(n);
  Grid2D& cpg = cp_lease.get();
  Grid2D& dpg = dp_lease.get();
  for (int parity = 1; parity >= 0; --parity) {
    const LineGroups lg = line_groups(n, parity, w);
    if (lg.groups == 0) continue;
    sched.parallel_for(
        0, lg.groups,
        sched.grain_for(lg.groups, static_cast<std::int64_t>(w) * (n - 2)),
        [&](std::int64_t gb, std::int64_t ge) {
          for (int g = static_cast<int>(gb); g < static_cast<int>(ge); ++g) {
            const int i0 = lg.first + 2 * g * w;
            const int lanes = std::min(w, lg.count - g * w);
            double* cp = cpg.row(g * w);
            double* dp = dpg.row(g * w);
            const double* up = x.row(i0 - 1);
            double* mid = x.row(i0);
            const double* down = x.row(i0 + 1);
            const double* rhs = b.row(i0);
            if (nine) {
              const pk::View9 v = view9(p, i0);
              switch (w) {
                case 4: pk::x_lines9<4>(v, pstride, up, mid, down, rhs,
                                        gstride, lanes, cp, dp, h2, ch2, n);
                        break;
                case 2: pk::x_lines9<2>(v, pstride, up, mid, down, rhs,
                                        gstride, lanes, cp, dp, h2, ch2, n);
                        break;
                default: pk::x_lines9<1>(v, pstride, up, mid, down, rhs,
                                         gstride, lanes, cp, dp, h2, ch2, n);
                         break;
              }
            } else {
              const pk::View5 v = view5(p, i0);
              switch (w) {
                case 4: pk::x_lines5<4>(v, pstride, up, mid, down, rhs,
                                        gstride, lanes, cp, dp, h2, ch2, n);
                        break;
                case 2: pk::x_lines5<2>(v, pstride, up, mid, down, rhs,
                                        gstride, lanes, cp, dp, h2, ch2, n);
                        break;
                default: pk::x_lines5<1>(v, pstride, up, mid, down, rhs,
                                         gstride, lanes, cp, dp, h2, ch2, n);
                         break;
              }
            }
          }
        });
  }
}

void packed_line_y(const StencilOp& op, Grid2D& x, const Grid2D& b,
                   rt::Scheduler& sched, ScratchPool& pool, int simd_width) {
  check_packed_operands(op, x, "packed_line_y");
  PBMG_CHECK(x.n() == b.n(), "packed_line_y: grid size mismatch");
  const PackedStencil& p = op.packed();
  const int n = x.n();
  const double h2 = mesh_width(n) * mesh_width(n);
  const double ch2 = op.c() * h2;
  const int w = clamp_line_width(clamp_simd_width(simd_width), n);
  const bool nine = p.nine_point();
  double* xb = x.row(0);
  const double* bb = b.row(0);
  const double* pbase = p.base();
  const long prow = p.row_stride();
  const long ppad = p.padded();
  auto cp_lease = pool.acquire(n);
  auto dp_lease = pool.acquire(n);
  Grid2D& cpg = cp_lease.get();
  Grid2D& dpg = dp_lease.get();
  for (int parity = 1; parity >= 0; --parity) {
    const LineGroups lg = line_groups(n, parity, w);
    if (lg.groups == 0) continue;
    sched.parallel_for(
        0, lg.groups,
        sched.grain_for(lg.groups, static_cast<std::int64_t>(w) * (n - 2)),
        [&](std::int64_t gb, std::int64_t ge) {
          for (int g = static_cast<int>(gb); g < static_cast<int>(ge); ++g) {
            const int j0 = lg.first + 2 * g * w;
            const int lanes = std::min(w, lg.count - g * w);
            double* cp = cpg.row(g * w);
            double* dp = dpg.row(g * w);
            if (nine) {
              switch (w) {
                case 4: pk::y_lines9<4>(xb, bb, pbase, prow, ppad, j0, lanes,
                                        cp, dp, h2, ch2, n); break;
                case 2: pk::y_lines9<2>(xb, bb, pbase, prow, ppad, j0, lanes,
                                        cp, dp, h2, ch2, n); break;
                default: pk::y_lines9<1>(xb, bb, pbase, prow, ppad, j0,
                                         lanes, cp, dp, h2, ch2, n); break;
              }
            } else {
              switch (w) {
                case 4: pk::y_lines5<4>(xb, bb, pbase, prow, ppad, j0, lanes,
                                        cp, dp, h2, ch2, n); break;
                case 2: pk::y_lines5<2>(xb, bb, pbase, prow, ppad, j0, lanes,
                                        cp, dp, h2, ch2, n); break;
                default: pk::y_lines5<1>(xb, bb, pbase, prow, ppad, j0,
                                         lanes, cp, dp, h2, ch2, n); break;
              }
            }
          }
        });
  }
}

void packed_line_x_multi(const StencilOp& op, std::span<Grid2D* const> xs,
                         std::span<const Grid2D* const> bs,
                         rt::Scheduler& sched, ScratchPool& pool,
                         int simd_width) {
  PBMG_CHECK(xs.size() == bs.size(),
             "packed_line_x_multi: span size mismatch");
  if (xs.empty()) return;
  check_packed_operands(op, *xs[0], "packed_line_x_multi");
  for (std::size_t k = 0; k < xs.size(); ++k) {
    PBMG_CHECK(xs[k]->n() == op.n() && bs[k]->n() == op.n(),
               "packed_line_x_multi: grid size mismatch");
  }
  const PackedStencil& p = op.packed();
  const int n = op.n();
  const double h2 = mesh_width(n) * mesh_width(n);
  const double ch2 = op.c() * h2;
  const int w = clamp_line_width(clamp_simd_width(simd_width), n);
  const long pstride = 2 * p.row_stride();
  const long gstride = 2 * static_cast<long>(n);
  const bool nine = p.nine_point();
  auto cp_lease = pool.acquire(n);
  auto sub_lease = pool.acquire(n);
  auto inv_lease = pool.acquire(n);
  auto dp_lease = pool.acquire(n);
  Grid2D& cpg = cp_lease.get();
  Grid2D& subg = sub_lease.get();
  Grid2D& invg = inv_lease.get();
  Grid2D& dpg = dp_lease.get();
  for (int parity = 1; parity >= 0; --parity) {
    const LineGroups lg = line_groups(n, parity, w);
    if (lg.groups == 0) continue;
    sched.parallel_for(
        0, lg.groups,
        sched.grain_for(lg.groups, static_cast<std::int64_t>(w) * (n - 2) *
                                       static_cast<std::int64_t>(xs.size())),
        [&](std::int64_t gb, std::int64_t ge) {
          for (int g = static_cast<int>(gb); g < static_cast<int>(ge); ++g) {
            const int i0 = lg.first + 2 * g * w;
            const int lanes = std::min(w, lg.count - g * w);
            double* cp = cpg.row(g * w);
            double* sub = subg.row(g * w);
            double* inv = invg.row(g * w);
            double* dp = dpg.row(g * w);
            // Factor once per group, replay per iterate: the factors (and
            // coefficient streams) stay hot across all K rhs passes.
            if (nine) {
              const pk::View9 v = view9(p, i0);
              switch (w) {
                case 4: pk::x_factor9<4>(v, pstride, lanes, cp, sub, inv,
                                         ch2, n); break;
                case 2: pk::x_factor9<2>(v, pstride, lanes, cp, sub, inv,
                                         ch2, n); break;
                default: pk::x_factor9<1>(v, pstride, lanes, cp, sub, inv,
                                          ch2, n); break;
              }
              for (std::size_t k = 0; k < xs.size(); ++k) {
                const double* up = xs[k]->row(i0 - 1);
                double* mid = xs[k]->row(i0);
                const double* down = xs[k]->row(i0 + 1);
                const double* rhs = bs[k]->row(i0);
                switch (w) {
                  case 4: pk::x_apply9<4>(v, pstride, up, mid, down, rhs,
                                          gstride, lanes, cp, sub, inv, dp,
                                          h2, n); break;
                  case 2: pk::x_apply9<2>(v, pstride, up, mid, down, rhs,
                                          gstride, lanes, cp, sub, inv, dp,
                                          h2, n); break;
                  default: pk::x_apply9<1>(v, pstride, up, mid, down, rhs,
                                           gstride, lanes, cp, sub, inv, dp,
                                           h2, n); break;
                }
              }
            } else {
              const pk::View5 v = view5(p, i0);
              switch (w) {
                case 4: pk::x_factor5<4>(v, pstride, lanes, cp, sub, inv,
                                         ch2, n); break;
                case 2: pk::x_factor5<2>(v, pstride, lanes, cp, sub, inv,
                                         ch2, n); break;
                default: pk::x_factor5<1>(v, pstride, lanes, cp, sub, inv,
                                          ch2, n); break;
              }
              for (std::size_t k = 0; k < xs.size(); ++k) {
                const double* up = xs[k]->row(i0 - 1);
                double* mid = xs[k]->row(i0);
                const double* down = xs[k]->row(i0 + 1);
                const double* rhs = bs[k]->row(i0);
                switch (w) {
                  case 4: pk::x_apply5<4>(v, pstride, up, mid, down, rhs,
                                          gstride, lanes, cp, sub, inv, dp,
                                          h2, n); break;
                  case 2: pk::x_apply5<2>(v, pstride, up, mid, down, rhs,
                                          gstride, lanes, cp, sub, inv, dp,
                                          h2, n); break;
                  default: pk::x_apply5<1>(v, pstride, up, mid, down, rhs,
                                           gstride, lanes, cp, sub, inv, dp,
                                           h2, n); break;
                }
              }
            }
          }
        });
  }
}

void packed_line_y_multi(const StencilOp& op, std::span<Grid2D* const> xs,
                         std::span<const Grid2D* const> bs,
                         rt::Scheduler& sched, ScratchPool& pool,
                         int simd_width) {
  PBMG_CHECK(xs.size() == bs.size(),
             "packed_line_y_multi: span size mismatch");
  if (xs.empty()) return;
  check_packed_operands(op, *xs[0], "packed_line_y_multi");
  for (std::size_t k = 0; k < xs.size(); ++k) {
    PBMG_CHECK(xs[k]->n() == op.n() && bs[k]->n() == op.n(),
               "packed_line_y_multi: grid size mismatch");
  }
  const PackedStencil& p = op.packed();
  const int n = op.n();
  const double h2 = mesh_width(n) * mesh_width(n);
  const double ch2 = op.c() * h2;
  const int w = clamp_line_width(clamp_simd_width(simd_width), n);
  const bool nine = p.nine_point();
  const double* pbase = p.base();
  const long prow = p.row_stride();
  const long ppad = p.padded();
  auto cp_lease = pool.acquire(n);
  auto sub_lease = pool.acquire(n);
  auto inv_lease = pool.acquire(n);
  auto dp_lease = pool.acquire(n);
  Grid2D& cpg = cp_lease.get();
  Grid2D& subg = sub_lease.get();
  Grid2D& invg = inv_lease.get();
  Grid2D& dpg = dp_lease.get();
  for (int parity = 1; parity >= 0; --parity) {
    const LineGroups lg = line_groups(n, parity, w);
    if (lg.groups == 0) continue;
    sched.parallel_for(
        0, lg.groups,
        sched.grain_for(lg.groups, static_cast<std::int64_t>(w) * (n - 2) *
                                       static_cast<std::int64_t>(xs.size())),
        [&](std::int64_t gb, std::int64_t ge) {
          for (int g = static_cast<int>(gb); g < static_cast<int>(ge); ++g) {
            const int j0 = lg.first + 2 * g * w;
            const int lanes = std::min(w, lg.count - g * w);
            double* cp = cpg.row(g * w);
            double* sub = subg.row(g * w);
            double* inv = invg.row(g * w);
            double* dp = dpg.row(g * w);
            if (nine) {
              switch (w) {
                case 4: pk::y_factor9<4>(pbase, prow, ppad, j0, lanes, cp,
                                         sub, inv, ch2, n); break;
                case 2: pk::y_factor9<2>(pbase, prow, ppad, j0, lanes, cp,
                                         sub, inv, ch2, n); break;
                default: pk::y_factor9<1>(pbase, prow, ppad, j0, lanes, cp,
                                          sub, inv, ch2, n); break;
              }
              for (std::size_t k = 0; k < xs.size(); ++k) {
                double* xb = xs[k]->row(0);
                const double* bb = bs[k]->row(0);
                switch (w) {
                  case 4: pk::y_apply9<4>(xb, bb, pbase, prow, ppad, j0,
                                          lanes, cp, sub, inv, dp, h2, n);
                          break;
                  case 2: pk::y_apply9<2>(xb, bb, pbase, prow, ppad, j0,
                                          lanes, cp, sub, inv, dp, h2, n);
                          break;
                  default: pk::y_apply9<1>(xb, bb, pbase, prow, ppad, j0,
                                           lanes, cp, sub, inv, dp, h2, n);
                           break;
                }
              }
            } else {
              switch (w) {
                case 4: pk::y_factor5<4>(pbase, prow, ppad, j0, lanes, cp,
                                         sub, inv, ch2, n); break;
                case 2: pk::y_factor5<2>(pbase, prow, ppad, j0, lanes, cp,
                                         sub, inv, ch2, n); break;
                default: pk::y_factor5<1>(pbase, prow, ppad, j0, lanes, cp,
                                          sub, inv, ch2, n); break;
              }
              for (std::size_t k = 0; k < xs.size(); ++k) {
                double* xb = xs[k]->row(0);
                const double* bb = bs[k]->row(0);
                switch (w) {
                  case 4: pk::y_apply5<4>(xb, bb, pbase, prow, ppad, j0,
                                          lanes, cp, sub, inv, dp, h2, n);
                          break;
                  case 2: pk::y_apply5<2>(xb, bb, pbase, prow, ppad, j0,
                                          lanes, cp, sub, inv, dp, h2, n);
                          break;
                  default: pk::y_apply5<1>(xb, bb, pbase, prow, ppad, j0,
                                           lanes, cp, sub, inv, dp, h2, n);
                           break;
                }
              }
            }
          }
        });
  }
}

}  // namespace pbmg::grid
