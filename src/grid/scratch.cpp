#include "grid/scratch.h"

namespace pbmg::grid {

ScratchPool& ScratchPool::global() {
  static ScratchPool instance;
  return instance;
}

}  // namespace pbmg::grid
