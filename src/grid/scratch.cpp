#include "grid/scratch.h"

namespace pbmg::grid {

namespace {

std::size_t grid_bytes(int n) {
  return static_cast<std::size_t>(n) * static_cast<std::size_t>(n) *
         sizeof(double);
}

}  // namespace

ScratchPool::Lease ScratchPool::acquire(int n) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.acquires;
    auto it = free_.find(n);
    if (it != free_.end() && !it->second.empty()) {
      Grid2D grid = std::move(it->second.back());
      it->second.pop_back();
      ++stats_.hits;
      --stats_.pooled_grids;
      stats_.pooled_bytes -= grid_bytes(n);
      return Lease(std::move(grid), this);
    }
    ++stats_.misses;
  }
  // Allocation happens outside the lock: a miss on one size must not
  // serialise concurrent solves that are hitting on other sizes.
  return Lease(Grid2D(n, 0.0), this);
}

void ScratchPool::release(Grid2D grid) {
  const std::size_t bytes = grid_bytes(grid.n());
  std::lock_guard<std::mutex> lock(mutex_);
  free_[grid.n()].push_back(std::move(grid));
  ++stats_.pooled_grids;
  stats_.pooled_bytes += bytes;
  if (stats_.pooled_bytes > stats_.high_water_bytes) {
    stats_.high_water_bytes = stats_.pooled_bytes;
  }
}

std::size_t ScratchPool::trim() {
  std::map<int, std::vector<Grid2D>> dropped;
  std::size_t freed = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    freed = stats_.pooled_bytes;
    // Every trim() call counts, including no-op trims on an empty pool:
    // ServiceStats::trims counts calls, and the two counters must agree
    // so "service trims != pool trims" can't read as a missed engine.
    ++stats_.trims;
    dropped.swap(free_);  // destructors run outside the lock
    stats_.pooled_grids = 0;
    stats_.pooled_bytes = 0;
  }
  return freed;
}

void ScratchPool::clear() {
  std::map<int, std::vector<Grid2D>> dropped;
  std::lock_guard<std::mutex> lock(mutex_);
  dropped.swap(free_);
  stats_ = Stats{};
}

ScratchPool::Stats ScratchPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ScratchPool::pooled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_.pooled_grids;
}

}  // namespace pbmg::grid
