#pragma once

#include "support/error.h"

/// \file level.h
/// Level arithmetic for the multigrid hierarchy.
///
/// Following the paper, grids at recursion level k have side
/// N = 2^k + 1; level 1 is the 3×3 base case solved directly.

namespace pbmg {

/// Returns 2^k + 1.  Requires 0 <= k <= 30.
constexpr int size_of_level(int k) {
  return (k >= 0 && k <= 30)
             ? (1 << k) + 1
             : throw InvalidArgument("size_of_level: level out of range");
}

/// Returns k such that n = 2^k + 1; throws InvalidArgument when n is not of
/// that form.
constexpr int level_of_size(int n) {
  if (n < 3) throw InvalidArgument("level_of_size: grid too small (n < 3)");
  const int m = n - 1;
  if ((m & (m - 1)) != 0) {
    throw InvalidArgument("level_of_size: n must be 2^k + 1");
  }
  int k = 0;
  for (int v = m; v > 1; v >>= 1) ++k;
  return k;
}

/// True when n = 2^k + 1 for some k >= 1.
constexpr bool is_valid_grid_size(int n) {
  if (n < 3) return false;
  const int m = n - 1;
  return (m & (m - 1)) == 0;
}

/// Mesh width of an n×n grid over the unit square.
constexpr double mesh_width(int n) { return 1.0 / (n - 1); }

/// Side length of the next-coarser grid: (n + 1) / 2.
constexpr int coarse_size(int n) { return (n + 1) / 2; }

}  // namespace pbmg
