#include "grid/grid2d.h"

#include <algorithm>

namespace pbmg {

double& Grid2D::at(int i, int j) {
  PBMG_CHECK(i >= 0 && i < n_ && j >= 0 && j < n_,
             "Grid2D::at index out of range");
  return (*this)(i, j);
}

double Grid2D::at(int i, int j) const {
  PBMG_CHECK(i >= 0 && i < n_ && j >= 0 && j < n_,
             "Grid2D::at index out of range");
  return (*this)(i, j);
}

void Grid2D::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Grid2D::fill_interior(double value) {
  for (int i = 1; i + 1 < n_; ++i) {
    double* r = row(i);
    std::fill(r + 1, r + n_ - 1, value);
  }
}

void Grid2D::copy_boundary_from(const Grid2D& src) {
  PBMG_CHECK(src.n() == n_, "copy_boundary_from: size mismatch");
  if (n_ == 0) return;
  for (int j = 0; j < n_; ++j) {
    (*this)(0, j) = src(0, j);
    (*this)(n_ - 1, j) = src(n_ - 1, j);
  }
  for (int i = 0; i < n_; ++i) {
    (*this)(i, 0) = src(i, 0);
    (*this)(i, n_ - 1) = src(i, n_ - 1);
  }
}

void Grid2D::copy_from(const Grid2D& src) {
  PBMG_CHECK(src.n() == n_, "copy_from: size mismatch");
  data_ = src.data_;
}

void Grid2D::swap(Grid2D& other) noexcept {
  std::swap(n_, other.n_);
  data_.swap(other.data_);
}

}  // namespace pbmg
