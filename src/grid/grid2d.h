#pragma once

#include <cstddef>
#include <vector>

#include "support/error.h"

/// \file grid2d.h
/// Dense square grid of doubles — the basic state object of the solver.
///
/// Grids are row-major and sized N×N where N = 2^k + 1 (one layer of
/// boundary cells around (N−2)² interior unknowns).  The class is a plain
/// value type with move semantics; all numerical kernels live in
/// grid_ops.h as free functions so they can be scheduled by the runtime.

namespace pbmg {

/// Square 2-D array of doubles with value semantics.
class Grid2D {
 public:
  /// Creates an empty (0×0) grid.
  Grid2D() = default;

  /// Creates an n×n grid initialised to `fill_value`.
  explicit Grid2D(int n, double fill_value = 0.0)
      : n_(n), data_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                     fill_value) {
    PBMG_CHECK(n >= 0, "Grid2D size must be non-negative");
  }

  /// Side length.
  int n() const { return n_; }

  /// Total number of cells (n²).
  std::size_t size() const { return data_.size(); }

  /// Element access (row i, column j); unchecked in release-path loops.
  double& operator()(int i, int j) {
    return data_[static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
                 static_cast<std::size_t>(j)];
  }
  double operator()(int i, int j) const {
    return data_[static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
                 static_cast<std::size_t>(j)];
  }

  /// Checked element access for tests and cold paths.
  double& at(int i, int j);
  double at(int i, int j) const;

  /// Raw row pointer (row-major).
  double* row(int i) {
    return data_.data() +
           static_cast<std::size_t>(i) * static_cast<std::size_t>(n_);
  }
  const double* row(int i) const {
    return data_.data() +
           static_cast<std::size_t>(i) * static_cast<std::size_t>(n_);
  }

  /// Raw storage access.
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Sets every cell to `value`.
  void fill(double value);

  /// Sets interior cells (excluding the boundary ring) to `value`.
  void fill_interior(double value);

  /// Copies the boundary ring (first/last row and column) from `src`.
  /// Requires matching sizes.
  void copy_boundary_from(const Grid2D& src);

  /// Copies everything from `src`.  Requires matching sizes.
  void copy_from(const Grid2D& src);

  /// Swaps contents with another grid.
  void swap(Grid2D& other) noexcept;

 private:
  int n_ = 0;
  std::vector<double> data_;
};

}  // namespace pbmg
